// Fig. 5/6 + Sect. 5.1: multi-query optimization through the XNF CO
// constructor. Deriving the eight deps_ARC outputs with eight separate SQL
// queries recomputes the shared subexpressions (Fig. 6); the single XNF
// query computes each shared subexpression once (Fig. 5b), the executor
// spooling it for all consumers.
//
// Reported per scale: elapsed time, base rows scanned, and spool builds.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "xnf/compiler.h"

namespace xnfdb {
namespace bench {
namespace {

std::vector<std::string> ComponentQueries() {
  return {
      "SELECT * FROM DEPT_ARC",
      "SELECT * FROM XEMP_V",
      "SELECT * FROM XPROJ_V",
      "SELECT xd.DNO, xe.ENO FROM DEPT_ARC xd, XEMP_V xe "
      "WHERE xd.DNO = xe.EDNO",
      "SELECT xd.DNO, xp.PNO FROM DEPT_ARC xd, XPROJ_V xp "
      "WHERE xd.DNO = xp.PDNO",
      "SELECT s.SNO, s.SNAME FROM SKILLS s WHERE "
      "EXISTS (SELECT 1 FROM XEMP_V xe, EMPSKILLS es "
      "        WHERE xe.ENO = es.ESENO AND es.ESSNO = s.SNO) OR "
      "EXISTS (SELECT 1 FROM XPROJ_V xp, PROJSKILLS ps "
      "        WHERE xp.PNO = ps.PSPNO AND ps.PSSNO = s.SNO)",
      "SELECT xe.ENO, es.ESSNO FROM XEMP_V xe, EMPSKILLS es "
      "WHERE xe.ENO = es.ESENO",
      "SELECT xp.PNO, ps.PSSNO FROM XPROJ_V xp, PROJSKILLS ps "
      "WHERE xp.PNO = ps.PSPNO",
  };
}

int Run() {
  std::printf(
      "Fig. 6 — 8 separate SQL derivations vs. one multi-table XNF query\n\n");
  std::printf("%-8s | %12s %12s | %12s %12s | %8s\n", "depts", "SQL(ms)",
              "scanned", "XNF(ms)", "scanned", "speedup");

  for (int departments : Scales({20, 60, 180})) {
    Database db;
    DeptDbParams params;
    params.departments = departments;
    CheckOk(PopulateDeptDb(&db, params), "populate");
    CheckOk(db.Execute("CREATE VIEW DEPT_ARC AS SELECT * FROM DEPT WHERE "
                       "LOC = 'ARC'")
                .status(),
            "view");
    CheckOk(db.Execute("CREATE VIEW XEMP_V AS SELECT e.* FROM EMP e WHERE "
                       "EXISTS (SELECT 1 FROM DEPT_ARC d WHERE "
                       "d.DNO = e.EDNO)")
                .status(),
            "view");
    CheckOk(db.Execute("CREATE VIEW XPROJ_V AS SELECT p.* FROM PROJ p "
                       "WHERE EXISTS (SELECT 1 FROM DEPT_ARC d WHERE "
                       "d.DNO = p.PDNO)")
                .status(),
            "view");

    int64_t sql_scanned = 0;
    double sql_secs = TimeSecs([&] {
      for (const std::string& q : ComponentQueries()) {
        Result<QueryResult> r = db.Query(q);
        CheckOk(r.status(), q);
        sql_scanned += r.value().stats.rows_scanned;
      }
    });

    int64_t xnf_scanned = 0;
    int64_t spools = 0;
    double xnf_secs = TimeSecs([&] {
      Result<QueryResult> r = db.Query(kDepsArcQuery);
      CheckOk(r.status(), "XNF query");
      xnf_scanned = r.value().stats.rows_scanned;
      spools = r.value().stats.spool_builds;
    });

    std::printf("%-8d | %12.2f %12lld | %12.2f %12lld | %7.1fx\n",
                departments, sql_secs * 1000.0,
                static_cast<long long>(sql_scanned), xnf_secs * 1000.0,
                static_cast<long long>(xnf_scanned), sql_secs / xnf_secs);
    if (departments == 20) {
      std::printf("         (XNF plan shares %lld spooled common "
                  "subexpressions)\n",
                  static_cast<long long>(spools));
    }
  }
  std::printf(
      "\nExpected shape: XNF scans each base table once and reuses shared "
      "subexpressions; the 8-query plan re-derives them (Table 1: 23 vs 7 "
      "operations).\n");
  WriteBenchJson("fig6_multiquery");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
