// Recursive composite objects (paper Sect. 2): the fixpoint evaluator's
// scaling on bill-of-materials hierarchies. "This cycle basically defines a
// 'derivation rule' that iterates along the cycle's relationships to
// collect the tuples until a fixed point is reached."
//
// Workload: a part tree of depth D and fan-out F (plus 20% cross edges for
// diamonds) anchored at one product. Reported: parts reached, evaluation
// time, and the time of the non-recursive 1-level / 2-level unrolled
// queries for contrast (what an application would hand-code without
// recursive CO support).

#include <cstdio>
#include <iterator>
#include <random>
#include <sstream>

#include "bench/workloads.h"

namespace xnfdb {
namespace bench {
namespace {

// Builds a BOM with `depth` levels of fan-out `fanout` under part 1.
// Returns the number of parts.
int BuildBom(Database* db, int depth, int fanout, uint32_t seed) {
  CheckOk(db->ExecuteScript(R"sql(
    CREATE TABLE PART (PNO INTEGER, PNAME VARCHAR, PRIMARY KEY (PNO));
    CREATE TABLE BOM (ASSEMBLY INTEGER, COMPONENT INTEGER);
    CREATE INDEX ON BOM (ASSEMBLY);
  )sql")
              .status(),
          "schema");
  std::mt19937 rng(seed);
  int next = 1;
  std::vector<int> level{next};
  std::ostringstream parts, edges;
  parts << "INSERT INTO PART VALUES (1, 'root')";
  bool has_edges = false;
  for (int d = 0; d < depth; ++d) {
    std::vector<int> next_level;
    for (int parent : level) {
      for (int k = 0; k < fanout; ++k) {
        int child = ++next;
        parts << ", (" << child << ", 'p" << child << "')";
        edges << (has_edges ? ", " : "INSERT INTO BOM VALUES ") << "("
              << parent << ", " << child << ")";
        has_edges = true;
        next_level.push_back(child);
      }
    }
    // Cross edges (diamonds) within the new level.
    for (size_t i = 0; i + 1 < next_level.size(); i += 5) {
      edges << ", (" << next_level[i] << ", " << next_level[i + 1] << ")";
    }
    level = std::move(next_level);
  }
  CheckOk(db->Execute(parts.str()).status(), "parts");
  if (has_edges) CheckOk(db->Execute(edges.str()).status(), "edges");
  return next;
}

const char* kRecursiveQuery = R"sql(
  OUT OF product AS (SELECT * FROM PART WHERE PNO = 1),
         xpart AS PART,
         top AS (RELATE product VIA ANCHORS, xpart USING BOM b
                 WHERE product.pno = b.assembly AND b.component = xpart.pno),
         uses AS (RELATE xpart VIA CONTAINS, xpart USING BOM b
                  WHERE contains.pno = b.assembly AND b.component = xpart.pno)
  TAKE *
)sql";

// What an application would write without recursion: a fixed 2-level
// unrolling (direct children and grandchildren only).
const char* kUnrolledQuery = R"sql(
  OUT OF product AS (SELECT * FROM PART WHERE PNO = 1),
         l1 AS PART,
         l2 AS PART,
         top AS (RELATE product VIA ANCHORS, l1 USING BOM b
                 WHERE product.pno = b.assembly AND b.component = l1.pno),
         sub AS (RELATE l1 VIA CONTAINS, l2 USING BOM b
                 WHERE l1.pno = b.assembly AND b.component = l2.pno)
  TAKE *
)sql";

int Run() {
  std::printf(
      "Recursive CO evaluation (fixpoint) on bill-of-materials "
      "hierarchies\n\n");
  std::printf("%-16s %8s | %10s %10s | %14s %10s\n", "depth x fanout",
              "parts", "reached", "fix(ms)", "2-level unroll", "reached");
  struct Config {
    int depth, fanout;
  } configs[] = {{4, 3}, {6, 3}, {8, 3}, {10, 2}};
  const size_t n_configs = SmokeMode() ? 1 : std::size(configs);
  for (size_t ci = 0; ci < n_configs; ++ci) {
    const Config& config = configs[ci];
    Database db;
    int parts = BuildBom(&db, config.depth, config.fanout, 11);
    size_t reached = 0;
    double fix_ms = TimeSecs([&] {
                      Result<QueryResult> r = db.Query(kRecursiveQuery);
                      CheckOk(r.status(), "recursive");
                      reached = r.value().RowCount(
                          r.value().FindOutput("XPART"));
                    }) *
                    1000.0;
    size_t unrolled = 0;
    double unroll_ms = TimeSecs([&] {
                         Result<QueryResult> r = db.Query(kUnrolledQuery);
                         CheckOk(r.status(), "unrolled");
                         unrolled =
                             r.value().RowCount(r.value().FindOutput("L1")) +
                             r.value().RowCount(r.value().FindOutput("L2"));
                       }) *
                       1000.0;
    std::printf("%3d x %-10d %8d | %10zu %10.2f | %14.2f %10zu\n",
                config.depth, config.fanout, parts, reached, fix_ms,
                unroll_ms, unrolled);
  }
  std::printf(
      "\nExpected shape: the fixpoint reaches the full transitive closure "
      "with time roughly linear in edges; a fixed unrolling reaches only "
      "its hard-coded depth.\n");
  WriteBenchJson("recursive");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
