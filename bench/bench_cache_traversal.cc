// Sect. 5.2 / 6: CO cache navigation performance, Cattell-benchmark style.
//
// "Using the traversal operation from that benchmark, we could access in a
// pre-loaded XNF cache more than 100,000 tuples per second which matches
// the requirements for CAD applications."
//
// The OO1 database (20k parts, 3 connections per part, 90% locality) is
// loaded into an XNF cache; the traversal operation performs a depth-7
// depth-first walk along the connection relationship, counting every tuple
// visit. Measured both with swizzled pointers (default) and with tuple-id
// hash lookups (the ablation quantifying the benefit of swizzling,
// cf. Sect. 5.3 on pointer swizzling in OODBMSs).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/workloads.h"
#include "cache/cursor.h"
#include "cache/xnf_cache.h"

namespace xnfdb {
namespace bench {
namespace {

// Per-phase tuples/s, filled in by each benchmark body and reported in the
// "results" object of BENCH_cache_traversal.json (the benchmark counters only
// reach the console reporter).
double g_traversal_swizzled_tps = 0.0;
double g_traversal_tid_lookup_tps = 0.0;
double g_independent_scan_tps = 0.0;
double g_tid_lookup_tps = 0.0;

double RatePerSec(int64_t tuples,
                  std::chrono::steady_clock::time_point t0,
                  std::chrono::steady_clock::time_point t1) {
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0.0 ? static_cast<double>(tuples) / secs : 0.0;
}

struct Fixture {
  Database db;
  std::unique_ptr<XNFCache> swizzled;
  std::unique_ptr<XNFCache> tid_lookup;

  Fixture() {
    Oo1Params params;
    if (SmokeMode()) params.parts = 1000;
    CheckOk(PopulateOo1(&db, params), "populate OO1");
    XNFCache::Options opts;
    opts.workspace.swizzle = true;
    Result<std::unique_ptr<XNFCache>> a =
        XNFCache::Evaluate(&db, kOo1Query, opts);
    CheckOk(a.status(), "evaluate swizzled");
    swizzled = std::move(a).value();
    opts.workspace.swizzle = false;
    Result<std::unique_ptr<XNFCache>> b =
        XNFCache::Evaluate(&db, kOo1Query, opts);
    CheckOk(b.status(), "evaluate tid-lookup");
    tid_lookup = std::move(b).value();
  }
};

Fixture& GetFixture() {
  static Fixture& fixture = *new Fixture();
  return fixture;
}

// Depth-first traversal counting every tuple visit (revisits included, as
// in OO1's traversal measure).
int64_t Traverse(Workspace* ws, Relationship* rel, CachedRow* part,
                 int depth) {
  int64_t visited = 1;
  if (depth == 0) return visited;
  DependentCursor cursor(ws, rel, part);
  while (cursor.Next()) {
    visited += Traverse(ws, rel, cursor.row(), depth - 1);
  }
  return visited;
}

void BM_TraversalSwizzled(benchmark::State& state) {
  Fixture& f = GetFixture();
  Workspace& ws = f.swizzled->workspace();
  ComponentTable* parts = ws.component("XPART").value();
  Relationship* rel = ws.relationship("CONN").value();
  int64_t tuples = 0;
  size_t start = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    CachedRow* row = parts->row(start % parts->size());
    start += 37;
    tuples += Traverse(&ws, rel, row, static_cast<int>(state.range(0)));
  }
  g_traversal_swizzled_tps =
      RatePerSec(tuples, t0, std::chrono::steady_clock::now());
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraversalSwizzled)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_TraversalTidLookup(benchmark::State& state) {
  Fixture& f = GetFixture();
  Workspace& ws = f.tid_lookup->workspace();
  ComponentTable* parts = ws.component("XPART").value();
  Relationship* rel = ws.relationship("CONN").value();
  int64_t tuples = 0;
  size_t start = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    CachedRow* row = parts->row(start % parts->size());
    start += 37;
    tuples += Traverse(&ws, rel, row, static_cast<int>(state.range(0)));
  }
  g_traversal_tid_lookup_tps =
      RatePerSec(tuples, t0, std::chrono::steady_clock::now());
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraversalTidLookup)->Arg(7)->Unit(benchmark::kMillisecond);

// Independent-cursor scan over all cached parts (sequential browse rate).
void BM_IndependentScan(benchmark::State& state) {
  Fixture& f = GetFixture();
  ComponentTable* parts = f.swizzled->workspace().component("XPART").value();
  int64_t tuples = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    IndependentCursor cursor(parts);
    while (cursor.Next()) {
      benchmark::DoNotOptimize(cursor.row()->values[0]);
      ++tuples;
    }
  }
  g_independent_scan_tps =
      RatePerSec(tuples, t0, std::chrono::steady_clock::now());
  state.counters["tuples_per_sec"] = benchmark::Counter(
      static_cast<double>(tuples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IndependentScan)->Unit(benchmark::kMillisecond);

// OO1 lookup: fetch cached parts by tuple id.
void BM_TidLookup(benchmark::State& state) {
  Fixture& f = GetFixture();
  ComponentTable* parts = f.swizzled->workspace().component("XPART").value();
  int64_t found = 0;
  TupleId tid = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    CachedRow* row = parts->FindByTid(tid % parts->size());
    tid += 7919;
    if (row != nullptr) ++found;
  }
  g_tid_lookup_tps = RatePerSec(found, t0, std::chrono::steady_clock::now());
  benchmark::DoNotOptimize(found);
}
BENCHMARK(BM_TidLookup);

}  // namespace
}  // namespace bench
}  // namespace xnfdb

// Reporting note printed before benchmark output (paper target).
int main(int argc, char** argv) {
  std::printf(
      "Sect. 5.2 cache-navigation benchmark (paper target: >100,000 tuples "
      "per second in a pre-loaded cache).\n");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  char results[512];
  std::snprintf(results, sizeof(results),
                "{\"traversal_swizzled_tuples_per_sec\":%.1f,"
                "\"traversal_tid_lookup_tuples_per_sec\":%.1f,"
                "\"independent_scan_tuples_per_sec\":%.1f,"
                "\"tid_lookup_tuples_per_sec\":%.1f}",
                xnfdb::bench::g_traversal_swizzled_tps,
                xnfdb::bench::g_traversal_tid_lookup_tps,
                xnfdb::bench::g_independent_scan_tps,
                xnfdb::bench::g_tid_lookup_tps);
  xnfdb::bench::WriteBenchJson("cache_traversal", results);
  return 0;
}
