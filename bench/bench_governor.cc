// Overload smoke for the query resource governor (api/governor.h): many
// client threads hammer one database whose admission cap is far below the
// offered concurrency. Measured: how the governor sheds load — admitted /
// queued / rejected / completed counts and the p99 admission queue wait —
// while every query still ends in a clean terminal status.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/workloads.h"
#include "obs/metrics.h"

namespace xnfdb {
namespace bench {
namespace {

int Run() {
  std::printf(
      "Governor overload smoke: concurrent clients vs a small admission "
      "cap\n\n");

  Database db;
  DeptDbParams params;
  params.departments = SmokeMode() ? 20 : 80;
  CheckOk(PopulateDeptDb(&db, params), "populate");

  GovernorOptions gopts = db.governor().options();
  gopts.max_concurrent = 2;
  gopts.max_queue = 4;
  db.governor().SetOptions(gopts);

  const int kClients = 16;
  const int kQueriesPerClient = SmokeMode() ? 4 : 16;

  obs::MetricsRegistry& reg = db.metrics();
  const int64_t admitted0 = reg.GetCounter("governor.admitted")->value();
  const int64_t queued0 = reg.GetCounter("governor.queued")->value();
  const int64_t rejected0 = reg.GetCounter("governor.rejected")->value();
  const int64_t completed0 = reg.GetCounter("governor.completed")->value();

  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::atomic<int> unexpected{0};
  double secs = TimeSecs([&] {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        for (int i = 0; i < kQueriesPerClient; ++i) {
          Result<QueryResult> r = db.Query(kDepsArcQuery);
          if (r.ok()) {
            ok_count.fetch_add(1);
          } else if (r.status().code() == StatusCode::kResourceExhausted) {
            shed_count.fetch_add(1);
          } else {
            unexpected.fetch_add(1);
            std::fprintf(stderr, "unexpected status: %s\n",
                         r.status().ToString().c_str());
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  });

  const int64_t admitted = reg.GetCounter("governor.admitted")->value() -
                           admitted0;
  const int64_t queued = reg.GetCounter("governor.queued")->value() - queued0;
  const int64_t rejected = reg.GetCounter("governor.rejected")->value() -
                           rejected0;
  const int64_t completed = reg.GetCounter("governor.completed")->value() -
                            completed0;
  obs::MetricsSnapshot snap = reg.Snapshot();
  int64_t wait_p50 = 0;
  int64_t wait_p99 = 0;
  auto it = snap.histograms.find("governor.queue_wait.us");
  if (it != snap.histograms.end()) {
    wait_p50 = it->second.Quantile(0.5);
    wait_p99 = it->second.Quantile(0.99);
  }

  const int total = kClients * kQueriesPerClient;
  std::printf("%-22s %8d\n", "offered queries", total);
  std::printf("%-22s %8lld (cap %lld running + %lld queued)\n", "admitted",
              static_cast<long long>(admitted),
              static_cast<long long>(gopts.max_concurrent),
              static_cast<long long>(gopts.max_queue));
  std::printf("%-22s %8lld\n", "queued", static_cast<long long>(queued));
  std::printf("%-22s %8lld\n", "rejected (shed)",
              static_cast<long long>(rejected));
  std::printf("%-22s %8lld\n", "completed",
              static_cast<long long>(completed));
  std::printf("%-22s %8lld us\n", "queue wait p50",
              static_cast<long long>(wait_p50));
  std::printf("%-22s %8lld us\n", "queue wait p99",
              static_cast<long long>(wait_p99));
  std::printf("%-22s %8.1f ms\n", "wall clock", secs * 1000.0);

  if (unexpected.load() != 0) return 1;
  if (ok_count.load() + shed_count.load() != total) return 1;
  // Accounting must balance: every offered query was admitted or rejected,
  // and every admitted query completed (none hung or leaked).
  if (admitted + rejected != total || completed != admitted) {
    std::fprintf(stderr, "governor accounting does not balance\n");
    return 1;
  }

  std::printf(
      "\nExpected shape: with 16 clients against 2 run slots + 4 queue "
      "slots the governor admits what fits, queues briefly, and sheds the "
      "overflow with ResourceExhausted instead of letting latency collapse "
      "for everyone.\n");

  std::string results = "{\"offered\": " + std::to_string(total) +
                        ", \"admitted\": " + std::to_string(admitted) +
                        ", \"queued\": " + std::to_string(queued) +
                        ", \"rejected\": " + std::to_string(rejected) +
                        ", \"completed\": " + std::to_string(completed) +
                        ", \"queue_wait_p50_us\": " +
                        std::to_string(wait_p50) +
                        ", \"queue_wait_p99_us\": " +
                        std::to_string(wait_p99) + "}";
  WriteBenchJson("governor", results);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
