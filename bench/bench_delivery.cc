// Sect. 5.1: result delivery across the process boundary.
//
// "There is no need for a 'one tuple at a time' interface. Database server
// and client workstation can cooperate in such a way that there is only one
// call (or only few calls) instead of a call for each tuple of the CO,
// thereby avoiding unnecessary crossing of process boundaries."
//
// The boundary is modelled by serializing tuples into a wire buffer: the
// batched strategy ships the whole heterogeneous stream with one call; the
// tuple-at-a-time strategy pays one call (buffer + flush) per tuple.

#include <cstdio>
#include <sstream>
#include <string>

#include "bench/workloads.h"
#include "cache/serialize.h"
#include "cache/workspace.h"

namespace xnfdb {
namespace bench {
namespace {

// Simulated per-call boundary crossing: a message header plus a flush.
size_t ShipMessage(const std::string& payload, std::string* wire) {
  wire->append("MSG ");
  wire->append(std::to_string(payload.size()));
  wire->append(payload);
  return 1;
}

int Run() {
  std::printf(
      "Sect. 5.1 — batched CO delivery vs. one-tuple-at-a-time interface\n\n");
  std::printf("%-8s %10s | %12s %10s | %12s %10s | %8s\n", "depts", "tuples",
              "batch(ms)", "calls", "per-tup(ms)", "calls", "speedup");

  for (int departments : Scales({20, 80, 320})) {
    Database db;
    DeptDbParams params;
    params.departments = departments;
    CheckOk(PopulateDeptDb(&db, params), "populate");
    Result<QueryResult> r = db.Query(kDepsArcQuery);
    CheckOk(r.status(), "query");
    const QueryResult& result = r.value();

    // Batched: one message carrying the serialized stream.
    size_t batch_calls = 0;
    double batch_secs = TimeSecs([&] {
      std::ostringstream payload;
      for (const StreamItem& item : result.stream) {
        if (item.kind == StreamItem::Kind::kRow) {
          payload << item.output << " " << item.tid << " "
                  << TupleToString(item.values) << "\n";
        } else {
          payload << item.output << " C";
          for (TupleId t : item.tids) payload << " " << t;
          payload << "\n";
        }
      }
      std::string wire;
      batch_calls += ShipMessage(payload.str(), &wire);
    });

    // Tuple at a time: one message per stream element.
    size_t tuple_calls = 0;
    double tuple_secs = TimeSecs([&] {
      std::string wire;
      for (const StreamItem& item : result.stream) {
        std::ostringstream payload;
        if (item.kind == StreamItem::Kind::kRow) {
          payload << item.output << " " << item.tid << " "
                  << TupleToString(item.values) << "\n";
        } else {
          payload << item.output << " C";
          for (TupleId t : item.tids) payload << " " << t;
          payload << "\n";
        }
        tuple_calls += ShipMessage(payload.str(), &wire);
        wire.clear();  // flush per call
      }
    });

    std::printf("%-8d %10zu | %12.3f %10zu | %12.3f %10zu | %7.1fx\n",
                departments, result.stream.size(), batch_secs * 1000.0,
                batch_calls, tuple_secs * 1000.0, tuple_calls,
                tuple_secs / batch_secs);
  }
  std::printf(
      "\nExpected shape: calls grow linearly with the CO size for the "
      "tuple-at-a-time interface and stay at 1 for batched delivery.\n");
  WriteBenchJson("delivery");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
