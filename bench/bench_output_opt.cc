// Ablation A1 — the connection-output optimization of Sect. 4.2:
//
// "Since the data for relationship employment is already captured by the
// xemp tuples, a separate output of the employment connection tuples can be
// omitted. Fortunately, this kind of output optimization is applicable to
// many relationships in an XNF query."
//
// shared   = connection boxes double as both the child derivation and the
//            relationship output (paper default),
// unshared = every component and relationship derived independently
//            (Fig. 6 world), with reachability as existential predicates.

#include <cstdio>

#include "bench/workloads.h"
#include "parser/parser.h"
#include "xnf/compiler.h"
#include "xnf/op_count.h"

namespace xnfdb {
namespace bench {
namespace {

int Run() {
  std::printf(
      "Ablation A1 — connection-output optimization / shared connection "
      "boxes (deps_ARC)\n"
      "  shared      = paper plan: connection boxes double as child "
      "derivations (7 ops)\n"
      "  uns+spool   = independent derivations, executor still spools "
      "multi-consumer boxes\n"
      "  uns-nospool = independent derivations, common subexpressions "
      "recomputed per consumer\n\n");
  std::printf("%-8s | %6s %10s %10s | %10s %10s | %10s %10s\n", "depts",
              "ops", "scanned", "shared(ms)", "scanned", "uns+spool",
              "scanned", "uns-nospool");

  for (int departments : Scales({20, 80, 320})) {
    Database db;
    DeptDbParams params;
    params.departments = departments;
    CheckOk(PopulateDeptDb(&db, params), "populate");
    Result<std::unique_ptr<ast::XnfQuery>> query =
        ParseXnfQuery(kDepsArcQuery);
    CheckOk(query.status(), "parse");

    struct Mode {
      bool share;
      bool spool;
      double ms = 0;
      int ops = 0;
      int64_t scanned = 0;
    } modes[3] = {{true, true}, {false, true}, {false, false}};

    for (Mode& mode : modes) {
      CompileOptions copts;
      copts.xnf.share_connection_boxes = mode.share;
      ExecOptions eopts;
      eopts.plan.spool_shared = mode.spool;
      Result<CompiledQuery> compiled =
          CompileXnf(db.catalog(), *query.value(), copts);
      CheckOk(compiled.status(), "compile");
      OpCounts counts = CountOps(*compiled.value().graph);
      mode.ops = counts.selections + counts.joins;
      mode.ms = TimeSecs([&] {
                  Result<QueryResult> r = ExecuteGraph(
                      db.catalog(), *compiled.value().graph, eopts);
                  CheckOk(r.status(), "execute");
                  mode.scanned = r.value().stats.rows_scanned;
                }) *
                1000.0;
    }
    std::printf("%-8d | %6d %10lld %10.2f | %10lld %10.2f | %10lld %10.2f\n",
                departments, modes[0].ops,
                static_cast<long long>(modes[0].scanned), modes[0].ms,
                static_cast<long long>(modes[1].scanned), modes[1].ms,
                static_cast<long long>(modes[2].scanned), modes[2].ms);
  }
  std::printf(
      "\nExpected shape: the shared (paper) plan does the least base-table "
      "work; without spooling, independent derivations recompute shared "
      "subexpressions and fall behind with scale.\n");
  WriteBenchJson("output_opt");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
