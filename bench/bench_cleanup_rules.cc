// Ablation A2 — Sect. 4.4: "we made some NF simplification rules already
// available to XNF rewrite. Among those were removal of unused boxes, box
// merge, and other clean-up operations."
//
// Compares the compiled plan (live boxes, operations) and execution time
// with the clean-up rules on vs. off, for the Fig. 3 query and for the
// unshared XNF derivation (whose existential reachability benefits from
// the E-to-F conversion).

#include <cstdio>

#include "bench/workloads.h"
#include "parser/parser.h"
#include "xnf/compiler.h"
#include "xnf/op_count.h"

namespace xnfdb {
namespace bench {
namespace {

struct RunResult {
  int boxes = 0;
  int ops = 0;
  double ms = 0;
};

RunResult RunXnf(Database* db, const ast::XnfQuery& query, bool rules_enabled,
                 bool naive_exists) {
  CompileOptions copts;
  copts.xnf.share_connection_boxes = false;  // exercises E2F on reachability
  copts.nf.exists_to_join = rules_enabled;
  copts.nf.select_merge = rules_enabled;
  copts.nf.remove_unused = rules_enabled;
  ExecOptions eopts;
  eopts.plan.naive_exists = naive_exists;
  Result<CompiledQuery> compiled = CompileXnf(db->catalog(), query, copts);
  CheckOk(compiled.status(), "compile");
  RunResult out;
  OpCounts counts = CountOps(*compiled.value().graph);
  out.boxes = counts.boxes;
  out.ops = counts.selections + counts.joins;
  out.ms = TimeSecs([&] {
             Result<QueryResult> r =
                 ExecuteGraph(db->catalog(), *compiled.value().graph, eopts);
             CheckOk(r.status(), "execute");
           }) *
           1000.0;
  return out;
}

int Run() {
  std::printf(
      "Ablation A2 — NF clean-up/conversion rules available to XNF rewrite "
      "(unshared deps_ARC derivation)\n"
      "  rules-on    = E-to-F conversion + merge + clean-up (Fig. 5b "
      "joins)\n"
      "  off+hash    = rules off, existential checks still hashed\n"
      "  off+naive   = rules off, per-outer-row subquery scans (the "
      "Sect. 3.2 naive strategy)\n\n");
  std::printf("%-8s | %6s %6s %12s | %12s | %12s | %10s\n", "depts", "boxes",
              "ops", "rules-on(ms)", "off+hash(ms)", "off+naive(ms)",
              "naive/on");
  for (int departments : Scales({20, 80, 320})) {
    Database db;
    DeptDbParams params;
    params.departments = departments;
    CheckOk(PopulateDeptDb(&db, params), "populate");
    Result<std::unique_ptr<ast::XnfQuery>> query =
        ParseXnfQuery(kDepsArcQuery);
    CheckOk(query.status(), "parse");

    RunResult with_rules = RunXnf(&db, *query.value(), true, false);
    RunResult off_hash = RunXnf(&db, *query.value(), false, false);
    RunResult off_naive = RunXnf(&db, *query.value(), false, true);
    std::printf("%-8d | %6d %6d %12.2f | %12.2f | %12.2f | %9.1fx\n",
                departments, with_rules.boxes, with_rules.ops, with_rules.ms,
                off_hash.ms, off_naive.ms, off_naive.ms / with_rules.ms);
  }
  std::printf(
      "\nExpected shape: without the rules *and* without hashed existential "
      "checks (the 1994 baseline), evaluation degrades sharply with scale; "
      "the rules keep the plan compact (fewer live boxes).\n");
  WriteBenchJson("cleanup_rules");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
