// Fig. 3 / Sect. 3.2: the existential-subquery-to-join rewrite.
//
// "One straightforward execution strategy used in many DBMSs is to retrieve
// employees first and for each execute the subquery ... Such a strategy may
// result in poor performance ... The performance study in [39] shows orders
// of magnitude improvement in performance of queries with existential
// predicates."
//
// Strategies compared on `SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM
// DEPT d WHERE d.LOC = 'ARC' AND d.DNO = e.EDNO)`:
//   naive      — no rewrite, per-outer-row scan of the subquery rows,
//   hash-exist — no rewrite, hashed existential check,
//   rewritten  — E-to-F conversion + SELECT merge (Fig. 3c), hash join.

#include <cstdio>

#include "bench/workloads.h"
#include "xnf/compiler.h"

namespace xnfdb {
namespace bench {
namespace {

const char* kQuery =
    "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE "
    "d.LOC = 'ARC' AND d.DNO = e.EDNO)";

struct Strategy {
  const char* name;
  bool rewrite;
  bool naive;
};

int Run() {
  std::printf(
      "Fig. 3 — existential subquery vs. rewritten join "
      "(EMP x DEPT, 10%% ARC departments)\n\n");
  std::printf("%-10s %-10s %14s %14s %14s %12s\n", "emps", "depts",
              "naive(ms)", "hash-exist(ms)", "rewritten(ms)",
              "naive/rewr");

  for (int emps : Scales({1000, 4000, 16000})) {
    int depts = emps / 10;
    Database db;
    DeptDbParams params;
    params.departments = depts;
    params.arc_fraction = 0.1;
    params.emps_per_dept = emps / depts;
    params.projs_per_dept = 0;
    params.skills = 1;
    params.skills_per_emp = 0;
    params.skills_per_proj = 0;
    CheckOk(PopulateDeptDb(&db, params), "populate");

    const Strategy strategies[] = {
        {"naive", false, true},
        {"hash-exist", false, false},
        {"rewritten", true, false},
    };
    double ms[3];
    size_t rows[3];
    for (int s = 0; s < 3; ++s) {
      CompileOptions copts;
      copts.nf.exists_to_join = strategies[s].rewrite;
      copts.nf.select_merge = strategies[s].rewrite;
      ExecOptions eopts;
      eopts.plan.naive_exists = strategies[s].naive;
      size_t row_count = 0;
      double secs = TimeSecs([&] {
        Result<QueryResult> r = db.Query(kQuery, copts, eopts);
        CheckOk(r.status(), strategies[s].name);
        row_count = r.value().RowCount(0);
      });
      ms[s] = secs * 1000.0;
      rows[s] = row_count;
    }
    if (rows[0] != rows[1] || rows[1] != rows[2]) {
      std::fprintf(stderr, "strategies disagree on row counts!\n");
      return 1;
    }
    std::printf("%-10d %-10d %14.2f %14.2f %14.2f %11.1fx\n", emps, depts,
                ms[0], ms[1], ms[2], ms[0] / ms[2]);
  }
  std::printf(
      "\nExpected shape: the rewritten join wins, increasingly with scale "
      "(paper: \"orders of magnitude improvement\").\n");
  WriteBenchJson("fig3_rewrite");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
