#include "bench/workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>

#include "common/str_util.h"
#include "obs/metrics.h"

namespace xnfdb {
namespace bench {

namespace {
// Captured at binary load so BENCH_*.json's elapsed_us covers the whole
// bench run (setup + sweep), not just the final snapshot write.
const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();
}  // namespace

void CheckOk(const Status& status, const std::string& what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
}

void WriteBenchJson(const std::string& name,
                    const std::string& results_json) {
  const char* dir = std::getenv("XNFDB_BENCH_JSON_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path =
      std::string(dir) + "/BENCH_" + name + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
    return;
  }
  int64_t elapsed_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - kProcessStart)
                           .count();
  out << "{\"schema_version\":2,\"bench\":\"" << name << "\",\"smoke\":"
      << (SmokeMode() ? "true" : "false") << ",\"elapsed_us\":" << elapsed_us
      << ",\"results\":" << results_json
      << ",\"metrics\":" << obs::MetricsRegistry::Default().ToJson() << "}\n";
}

bool SmokeMode() { return ParseEnvBool("XNFDB_BENCH_SMOKE", false); }

std::vector<int> Scales(std::vector<int> full) {
  if (SmokeMode() && full.size() > 1) full.resize(1);
  return full;
}

const char* kDepsArcQuery = R"sql(
  OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
         xemp AS EMP,
         xproj AS PROJ,
         xskills AS SKILLS,
         employment AS (RELATE xdept VIA EMPLOYS, xemp
                        WHERE xdept.dno = xemp.edno),
         ownership AS (RELATE xdept VIA HAS, xproj
                       WHERE xdept.dno = xproj.pdno),
         empproperty AS (RELATE xemp VIA POSSESSES, xskills
                         USING EMPSKILLS es
                         WHERE xemp.eno = es.eseno AND
                               es.essno = xskills.sno),
         projproperty AS (RELATE xproj VIA NEEDS, xskills
                          USING PROJSKILLS ps
                          WHERE xproj.pno = ps.pspno AND
                                ps.pssno = xskills.sno)
  TAKE *
)sql";

Status PopulateDeptDb(Database* db, const DeptDbParams& p) {
  Result<size_t> schema = db->ExecuteScript(R"sql(
    CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR, LOC VARCHAR,
                       PRIMARY KEY (DNO));
    CREATE TABLE EMP (ENO INTEGER, ENAME VARCHAR, EDNO INTEGER, SAL DOUBLE,
                      PRIMARY KEY (ENO),
                      FOREIGN KEY (EDNO) REFERENCES DEPT (DNO));
    CREATE TABLE PROJ (PNO INTEGER, PNAME VARCHAR, PDNO INTEGER,
                       PRIMARY KEY (PNO),
                       FOREIGN KEY (PDNO) REFERENCES DEPT (DNO));
    CREATE TABLE SKILLS (SNO INTEGER, SNAME VARCHAR, PRIMARY KEY (SNO));
    CREATE TABLE EMPSKILLS (ESENO INTEGER, ESSNO INTEGER,
                            FOREIGN KEY (ESENO) REFERENCES EMP (ENO),
                            FOREIGN KEY (ESSNO) REFERENCES SKILLS (SNO));
    CREATE TABLE PROJSKILLS (PSPNO INTEGER, PSSNO INTEGER,
                             FOREIGN KEY (PSPNO) REFERENCES PROJ (PNO),
                             FOREIGN KEY (PSSNO) REFERENCES SKILLS (SNO));
    CREATE INDEX ON EMP (EDNO);
    CREATE INDEX ON PROJ (PDNO);
    CREATE INDEX ON EMPSKILLS (ESENO);
    CREATE INDEX ON PROJSKILLS (PSPNO);
  )sql");
  if (!schema.ok()) return schema.status();

  std::mt19937 rng(p.seed);
  auto insert_rows = [&](const std::string& table, std::ostringstream& rows,
                         int* pending) -> Status {
    if (*pending == 0) return Status::Ok();
    Result<Database::Outcome> r =
        db->Execute("INSERT INTO " + table + " VALUES " + rows.str());
    rows.str("");
    *pending = 0;
    return r.ok() ? Status::Ok() : r.status();
  };
  auto bulk = [&](const std::string& table, auto row_fn, int n) -> Status {
    std::ostringstream rows;
    int pending = 0;
    for (int i = 0; i < n; ++i) {
      if (pending > 0) rows << ", ";
      rows << row_fn(i);
      if (++pending == 512) {
        XNFDB_RETURN_IF_ERROR(insert_rows(table, rows, &pending));
      }
    }
    return insert_rows(table, rows, &pending);
  };

  XNFDB_RETURN_IF_ERROR(bulk(
      "DEPT",
      [&](int i) {
        bool arc = i < static_cast<int>(p.departments * p.arc_fraction);
        std::ostringstream row;
        row << "(" << (i + 1) << ", 'dept" << (i + 1) << "', '"
            << (arc ? "ARC" : "YKT") << "')";
        return row.str();
      },
      p.departments));

  int nemp = p.departments * p.emps_per_dept;
  XNFDB_RETURN_IF_ERROR(bulk(
      "EMP",
      [&](int i) {
        std::ostringstream row;
        row << "(" << (i + 1) << ", 'emp" << (i + 1) << "', "
            << (i % p.departments + 1) << ", "
            << (30000 + static_cast<int>(rng() % 70000)) << ".0)";
        return row.str();
      },
      nemp));

  int nproj = p.departments * p.projs_per_dept;
  XNFDB_RETURN_IF_ERROR(bulk(
      "PROJ",
      [&](int i) {
        std::ostringstream row;
        row << "(" << (i + 1) << ", 'proj" << (i + 1) << "', "
            << (i % p.departments + 1) << ")";
        return row.str();
      },
      nproj));

  XNFDB_RETURN_IF_ERROR(bulk(
      "SKILLS",
      [&](int i) {
        std::ostringstream row;
        row << "(" << (i + 1) << ", 'skill" << (i + 1) << "')";
        return row.str();
      },
      p.skills));

  XNFDB_RETURN_IF_ERROR(bulk(
      "EMPSKILLS",
      [&](int i) {
        std::ostringstream row;
        row << "(" << (i / p.skills_per_emp + 1) << ", "
            << (1 + rng() % p.skills) << ")";
        return row.str();
      },
      nemp * p.skills_per_emp));

  return bulk(
      "PROJSKILLS",
      [&](int i) {
        std::ostringstream row;
        row << "(" << (i / p.skills_per_proj + 1) << ", "
            << (1 + rng() % p.skills) << ")";
        return row.str();
      },
      nproj * p.skills_per_proj);
}

const char* kOo1Query = R"sql(
  OUT OF root AS (SELECT * FROM PART WHERE PNO = 1),
         xpart AS PART,
         anchor AS (RELATE root VIA SEEDS, xpart USING CONNECTION c
                    WHERE root.pno = c.cfrom AND c.cto = xpart.pno),
         conn AS (RELATE xpart VIA LINKS, xpart USING CONNECTION c
                  WHERE links.pno = c.cfrom AND c.cto = xpart.pno)
  TAKE *
)sql";

Status PopulateOo1(Database* db, const Oo1Params& p) {
  Result<size_t> schema = db->ExecuteScript(R"sql(
    CREATE TABLE PART (PNO INTEGER, PTYPE VARCHAR, X INTEGER, Y INTEGER,
                       PRIMARY KEY (PNO));
    CREATE TABLE CONNECTION (CFROM INTEGER, CTO INTEGER, CTYPE VARCHAR,
                             LEN INTEGER,
                             FOREIGN KEY (CFROM) REFERENCES PART (PNO),
                             FOREIGN KEY (CTO) REFERENCES PART (PNO));
    CREATE INDEX ON CONNECTION (CFROM);
  )sql");
  if (!schema.ok()) return schema.status();

  std::mt19937 rng(p.seed);
  std::ostringstream rows;
  int pending = 0;
  auto flush = [&](const std::string& table) -> Status {
    if (pending == 0) return Status::Ok();
    Result<Database::Outcome> r =
        db->Execute("INSERT INTO " + table + " VALUES " + rows.str());
    rows.str("");
    pending = 0;
    return r.ok() ? Status::Ok() : r.status();
  };
  for (int i = 1; i <= p.parts; ++i) {
    if (pending > 0) rows << ", ";
    rows << "(" << i << ", 'part" << (i % 10) << "', "
         << static_cast<int>(rng() % 100000) << ", "
         << static_cast<int>(rng() % 100000) << ")";
    if (++pending == 512) XNFDB_RETURN_IF_ERROR(flush("PART"));
  }
  XNFDB_RETURN_IF_ERROR(flush("PART"));

  // OO1 connection rule: 90% of connections go to one of the "closest" 1%
  // of parts (by part number), 10% anywhere.
  int window = std::max(1, p.parts / 100);
  for (int i = 1; i <= p.parts; ++i) {
    for (int k = 0; k < p.connections_per_part; ++k) {
      int to;
      if ((rng() % 100) < static_cast<uint32_t>(p.locality * 100)) {
        int offset = 1 + static_cast<int>(rng() % window);
        to = (i + offset - 1) % p.parts + 1;
      } else {
        to = 1 + static_cast<int>(rng() % p.parts);
      }
      if (pending > 0) rows << ", ";
      rows << "(" << i << ", " << to << ", 'link', "
           << static_cast<int>(rng() % 1000) << ")";
      if (++pending == 512) XNFDB_RETURN_IF_ERROR(flush("CONNECTION"));
    }
  }
  return flush("CONNECTION");
}

}  // namespace bench
}  // namespace xnfdb
