// Server-side materialized CO views (src/matview/): cold extraction vs
// serving stored rows vs serving under a concurrent DML stream.
//
// Three phases over the scaled Fig. 1 database:
//  * cold          — the deps_ARC CO view is extracted from base tables on
//                    every execution (matview store disabled);
//  * materialized  — the view is pinned with MATERIALIZE and every
//                    execution is answered from stored rows;
//  * under DML     — a delta-eligible select-project-join stays fresh by
//                    incremental maintenance while single-row inserts land
//                    between executions.
//
// Self-asserting exit gates:
//  * served executions are >= 5x faster than cold extraction, and
//  * the incremental delta apply for a single-row insert is >= 10x cheaper
//    than a full recompute of the same view.

#include <cstdio>
#include <string>

#include "bench/workloads.h"

namespace xnfdb {
namespace bench {
namespace {

// Delta-eligible shape for the incremental phases: distinct-free
// select-project-join, one F-path reference per base table. SKILLS is the
// dominant input so a full recompute is scan-bound on it while a one-row
// delta only touches the small connect tables.
const char* kEmpSkillJoin =
    "SELECT E.ENAME, S.SNAME FROM EMP E, EMPSKILLS ES, SKILLS S "
    "WHERE E.ENO = ES.ESENO AND ES.ESSNO = S.SNO";

int Run() {
  std::printf(
      "Materialized CO views: cold extraction vs stored rows vs delta "
      "maintenance under DML\n\n");

  const bool smoke = SmokeMode();
  DeptDbParams params;
  params.departments = smoke ? 8 : 24;
  params.skills = smoke ? 2000 : 40000;

  Database db;
  CheckOk(PopulateDeptDb(&db, params), "populate");
  CheckOk(db.Execute(std::string("CREATE VIEW deps_ARC AS ") + kDepsArcQuery)
              .status(),
          "create deps_ARC");
  CheckOk(db.Execute(std::string("CREATE VIEW empskills_v AS ") +
                     kEmpSkillJoin)
              .status(),
          "create empskills_v");

  const int kReps = smoke ? 5 : 20;

  // --- phase 1: cold CO extraction (store disabled) -----------------------
  db.matviews().set_enabled(false);
  size_t cold_rows = 0;
  double cold_secs = TimeSecs([&] {
    for (int i = 0; i < kReps; ++i) {
      Result<QueryResult> r = db.Query("deps_ARC");
      CheckOk(r.status(), "cold deps_ARC");
      cold_rows = r.value().stream.size();
    }
  });
  const double cold_us = cold_secs * 1e6 / kReps;

  // --- phase 2: served from the materialization ---------------------------
  db.matviews().set_enabled(true);
  CheckOk(db.Execute("MATERIALIZE deps_ARC").status(), "materialize");
  size_t served_rows = 0;
  std::string served_shape;
  double served_secs = TimeSecs([&] {
    for (int i = 0; i < kReps; ++i) {
      Result<QueryResult> r = db.Query("deps_ARC");
      CheckOk(r.status(), "served deps_ARC");
      served_rows = r.value().stream.size();
      served_shape = r.value().plan_shape;
    }
  });
  const double served_us = served_secs * 1e6 / kReps;

  // --- phase 3: full recompute vs single-row delta apply ------------------
  CheckOk(db.Execute("MATERIALIZE empskills_v").status(),
          "materialize empskills_v");
  double full_secs = TimeSecs([&] {
    for (int i = 0; i < kReps; ++i) {
      db.matviews().InvalidateView("EMPSKILLS_V");
      CheckOk(db.Execute("MATERIALIZE empskills_v").status(),
              "full refresh empskills_v");
    }
  });
  const double full_us = full_secs * 1e6 / kReps;

  double delta_secs = TimeSecs([&] {
    for (int i = 0; i < kReps; ++i) {
      CheckOk(db.Execute("INSERT INTO SKILLS VALUES (" +
                         std::to_string(900000 + i) + ", 'delta" +
                         std::to_string(i) + "')")
                  .status(),
              "delta insert");
    }
  });
  const double delta_us = delta_secs * 1e6 / kReps;

  int64_t delta_applies = 0;
  bool empskills_fresh = false;
  for (const MatViewInfo& v : db.matviews().Snapshot()) {
    if (v.name == "EMPSKILLS_V") {
      delta_applies = v.delta_applies;
      empskills_fresh = v.fresh;
    }
  }

  // --- phase 4: served while the DML stream keeps landing -----------------
  double dml_query_secs = 0.0;
  size_t dml_served = 0;
  for (int i = 0; i < kReps; ++i) {
    CheckOk(db.Execute("INSERT INTO SKILLS VALUES (" +
                       std::to_string(950000 + i) + ", 'dml" +
                       std::to_string(i) + "')")
                .status(),
            "under-dml insert");
    dml_query_secs += TimeSecs([&] {
      Result<QueryResult> r = db.Query("empskills_v");
      CheckOk(r.status(), "under-dml query");
      if (r.value().plan_shape.find("matview_scan") != std::string::npos) {
        ++dml_served;
      }
    });
  }
  const double dml_us = dml_query_secs * 1e6 / kReps;

  std::printf("%-34s %10.1f us  (%zu answer tuples)\n",
              "cold CO extraction", cold_us, cold_rows);
  std::printf("%-34s %10.1f us  (%zu answer tuples)\n",
              "served from materialization", served_us, served_rows);
  std::printf("%-34s %10.2fx\n", "speedup served vs cold",
              cold_us / served_us);
  std::printf("%-34s %10.1f us\n", "full recompute (empskills_v)", full_us);
  std::printf("%-34s %10.1f us  (%lld delta applies)\n",
              "single-row insert incl. delta", delta_us,
              static_cast<long long>(delta_applies));
  std::printf("%-34s %10.2fx\n", "full refresh vs delta apply",
              full_us / delta_us);
  std::printf("%-34s %10.1f us  (%zu/%d served)\n",
              "query under DML stream", dml_us, dml_served, kReps);

  std::string results =
      "{\"cold_us\": " + std::to_string(cold_us) +
      ", \"served_us\": " + std::to_string(served_us) +
      ", \"served_speedup\": " + std::to_string(cold_us / served_us) +
      ", \"full_refresh_us\": " + std::to_string(full_us) +
      ", \"delta_insert_us\": " + std::to_string(delta_us) +
      ", \"delta_ratio\": " + std::to_string(full_us / delta_us) +
      ", \"under_dml_query_us\": " + std::to_string(dml_us) +
      ", \"delta_applies\": " + std::to_string(delta_applies) +
      ", \"answer_tuples\": " + std::to_string(cold_rows) + "}";
  WriteBenchJson("matview", results);

  // --- exit gates ---------------------------------------------------------
  int rc = 0;
  if (served_rows != cold_rows) {
    std::fprintf(stderr,
                 "GATE FAIL: served answer has %zu tuples, cold has %zu\n",
                 served_rows, cold_rows);
    rc = 1;
  }
  if (served_shape.find("matview_scan") == std::string::npos) {
    std::fprintf(stderr, "GATE FAIL: served plan is not a matview scan: %s\n",
                 served_shape.c_str());
    rc = 1;
  }
  if (cold_us < 5.0 * served_us) {
    std::fprintf(stderr,
                 "GATE FAIL: served %.1fus not >=5x faster than cold "
                 "%.1fus\n",
                 served_us, cold_us);
    rc = 1;
  }
  if (!empskills_fresh || delta_applies < kReps) {
    std::fprintf(stderr,
                 "GATE FAIL: delta path not taken (fresh=%d applies=%lld)\n",
                 empskills_fresh ? 1 : 0,
                 static_cast<long long>(delta_applies));
    rc = 1;
  }
  // At smoke scale the fixed per-apply cost (delta plan compile + the small
  // connect-table scans) dominates the tiny full recompute, so the ratio
  // gate only carries its perf meaning at full scale; smoke still proves
  // the delta apply beats recomputing.
  const double delta_gate = smoke ? 2.0 : 10.0;
  if (full_us < delta_gate * delta_us) {
    std::fprintf(stderr,
                 "GATE FAIL: delta apply %.1fus not >=%.0fx cheaper than "
                 "full recompute %.1fus\n",
                 delta_us, delta_gate, full_us);
    rc = 1;
  }
  if (dml_served != static_cast<size_t>(kReps)) {
    std::fprintf(stderr,
                 "GATE FAIL: only %zu/%d queries under DML were served from "
                 "the materialization\n",
                 dml_served, kReps);
    rc = 1;
  }

  if (rc == 0) {
    std::printf(
        "\nExpected shape: serving stored rows removes the whole extraction "
        "pipeline (>=5x here), and the counting-algorithm delta confines a "
        "one-row insert to the connect tables instead of rescanning SKILLS "
        "(>=10x cheaper than a full refresh).\n");
  }
  return rc;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
