// Workload generators shared by the benchmark binaries:
//  * the scaled dept/emp/proj/skills database of the paper's Fig. 1, and
//  * the Cattell OO1 ("Sun benchmark") part/connection database used for
//    the cache-traversal measurement of Sect. 5.2 ([13] in the paper).

#ifndef XNFDB_BENCH_WORKLOADS_H_
#define XNFDB_BENCH_WORKLOADS_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "api/database.h"

namespace xnfdb {
namespace bench {

struct DeptDbParams {
  int departments = 20;
  double arc_fraction = 0.25;   // departments located at 'ARC'
  int emps_per_dept = 20;
  int projs_per_dept = 4;
  int skills = 50;
  int skills_per_emp = 2;
  int skills_per_proj = 2;
  uint32_t seed = 42;
};

// Creates and populates the paper-schema database (DEPT/EMP/PROJ/SKILLS +
// connect tables) at the given scale.
Status PopulateDeptDb(Database* db, const DeptDbParams& params);

// The Fig. 1 deps_ARC query over that database.
extern const char* kDepsArcQuery;

struct Oo1Params {
  int parts = 20000;            // OO1 "small" database size
  int connections_per_part = 3;
  double locality = 0.9;        // connections to the nearest 1% of parts
  uint32_t seed = 7;
};

// Creates and populates the OO1 database: PART(PNO, PTYPE, X, Y) and
// CONNECTION(CFROM, CTO, CTYPE, LEN).
Status PopulateOo1(Database* db, const Oo1Params& params);

// The XNF view loading all parts and their connection relationship.
extern const char* kOo1Query;

// Wall-clock seconds of `fn()`.
template <typename Fn>
double TimeSecs(Fn&& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

// Fails fast on unexpected errors in bench setup code.
void CheckOk(const Status& status, const std::string& what);

// When XNFDB_BENCH_JSON_DIR is set, writes <dir>/BENCH_<name>.json holding
// the bench's own numbers (`results_json`, a JSON object literal) plus the
// process-wide metrics snapshot, so perf runs land as machine-readable
// artifacts. Every snapshot carries "schema_version" (bump on layout
// changes) and "elapsed_us", the bench binary's wall-clock time from load
// to snapshot. No-op when the variable is unset.
void WriteBenchJson(const std::string& name,
                    const std::string& results_json = "{}");

// True when XNFDB_BENCH_SMOKE is set truthy (ParseEnvBool): benches should
// shrink their workloads to a seconds-scale sanity pass for CI.
bool SmokeMode();

// The scale points a bench should sweep: all of `full` normally, only the
// first in smoke mode.
std::vector<int> Scales(std::vector<int> full);

}  // namespace bench
}  // namespace xnfdb

#endif  // XNFDB_BENCH_WORKLOADS_H_
