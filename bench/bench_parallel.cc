// Sect. 5.1 / 6 outlook: "Another decisive technology to reduce query
// execution by orders of magnitude is to apply parallelism. Set-oriented
// specification of COs as done in XNF particularly lends itself to
// exploitation of parallelism technology" — and "further extensions (e.g.
// parallelism ...) introduced to the relational part of the system become
// automatically available to XNF."
//
// The executor evaluates the CO's output streams on a worker pool; shared
// connection-box spools are built once and read by all workers. Measured:
// deps_ARC extraction time by worker count.

#include <cstdio>
#include <thread>

#include "bench/workloads.h"

namespace xnfdb {
namespace bench {
namespace {

int Run() {
  std::printf(
      "Parallel CO extraction (deps_ARC output streams on a worker "
      "pool)\n");
  std::printf("hardware threads available: %u%s\n\n",
              std::thread::hardware_concurrency(),
              std::thread::hardware_concurrency() <= 1
                  ? "  (single-core machine: expect no speedup, only the "
                    "correctness of concurrent evaluation)"
                  : "");
  std::printf("%-8s | %12s %12s %12s %12s | %10s\n", "depts", "1 wrk(ms)",
              "2 wrk(ms)", "4 wrk(ms)", "8 wrk(ms)", "best spdup");

  for (int departments : Scales({80, 320, 640})) {
    Database db;
    DeptDbParams params;
    params.departments = departments;
    CheckOk(PopulateDeptDb(&db, params), "populate");

    double ms[4];
    int workers_list[4] = {1, 2, 4, 8};
    size_t baseline_items = 0;
    for (int i = 0; i < 4; ++i) {
      ExecOptions eopts;
      eopts.parallel_workers = workers_list[i];
      size_t items = 0;
      // Best of three runs to damp scheduler noise.
      double best = 1e9;
      for (int rep = 0; rep < 3; ++rep) {
        double secs = TimeSecs([&] {
          Result<QueryResult> r = db.Query(kDepsArcQuery, {}, eopts);
          CheckOk(r.status(), "query");
          items = r.value().stream.size();
        });
        if (secs < best) best = secs;
      }
      ms[i] = best * 1000.0;
      if (i == 0) {
        baseline_items = items;
      } else if (items != baseline_items) {
        std::fprintf(stderr, "parallel run changed the result size!\n");
        return 1;
      }
    }
    double best = ms[0];
    for (double m : ms) best = std::min(best, m);
    std::printf("%-8d | %12.2f %12.2f %12.2f %12.2f | %9.2fx\n", departments,
                ms[0], ms[1], ms[2], ms[3], ms[0] / best);
  }
  std::printf(
      "\nExpected shape: wall-clock drops as independent output streams "
      "evaluate concurrently (bounded by the serialized shared-spool "
      "builds and the machine's core count).\n");
  WriteBenchJson("parallel");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
