// Sect. 1 + 5.1: set-oriented CO extraction vs. navigational extraction.
//
// "One straightforward way of extracting data with complex structure is to
// follow the parent/child relationships: for each parent instance, execute
// a query to get the children; repeat ... this style of data extraction
// leads to numerous queries ... A better approach is to employ much more
// powerful set-oriented processing, where the extraction can be performed
// with one query. Such set-oriented processing could lead to significant
// improvement in performance, even in orders of magnitude."
//
// The navigational extractor is the per-parent query strategy induced by
// layered object/relational bridges (e.g. the Persistence DBMS [20]);
// the XNF extractor evaluates one CO query and loads the cache.

#include <cstdio>
#include <string>

#include "bench/workloads.h"
#include "cache/xnf_cache.h"

namespace xnfdb {
namespace bench {
namespace {

// Fetches the dept -> emp -> skills hierarchy with one query per parent.
// Returns the number of tuples fetched.
size_t NavigationalExtract(Database* db) {
  size_t tuples = 0;
  Result<QueryResult> depts =
      db->Query("SELECT DNO, DNAME, LOC FROM DEPT WHERE LOC = 'ARC'");
  CheckOk(depts.status(), "depts");
  for (const Tuple& d : depts.value().rows()) {
    ++tuples;
    std::string dno = d[0].ToString();
    Result<QueryResult> emps = db->Query(
        "SELECT ENO, ENAME, EDNO, SAL FROM EMP WHERE EDNO = " + dno);
    CheckOk(emps.status(), "emps");
    for (const Tuple& e : emps.value().rows()) {
      ++tuples;
      std::string eno = e[0].ToString();
      Result<QueryResult> skills = db->Query(
          "SELECT s.SNO, s.SNAME FROM SKILLS s, EMPSKILLS es WHERE "
          "es.ESENO = " +
          eno + " AND es.ESSNO = s.SNO");
      CheckOk(skills.status(), "skills");
      tuples += skills.value().rows().size();
    }
  }
  return tuples;
}

const char* kHierarchyQuery = R"sql(
  OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
         xemp AS EMP,
         xskills AS SKILLS,
         employment AS (RELATE xdept VIA EMPLOYS, xemp
                        WHERE xdept.dno = xemp.edno),
         property AS (RELATE xemp VIA POSSESSES, xskills
                      USING EMPSKILLS es
                      WHERE xemp.eno = es.eseno AND es.essno = xskills.sno)
  TAKE *
)sql";

int Run() {
  std::printf(
      "Set-oriented XNF extraction vs. navigational (query-per-parent) "
      "extraction\n(dept -> emp -> skills hierarchy, 25%% ARC "
      "departments)\n\n");
  std::printf("%-8s %-8s | %10s %12s | %10s %12s | %8s\n", "depts",
              "emps", "nav(ms)", "nav calls", "xnf(ms)", "xnf calls",
              "speedup");

  for (int departments : Scales({10, 40, 160})) {
    Database db;
    DeptDbParams params;
    params.departments = departments;
    params.emps_per_dept = 25;
    params.projs_per_dept = 0;
    params.skills = 100;
    params.skills_per_emp = 3;
    params.skills_per_proj = 0;
    CheckOk(PopulateDeptDb(&db, params), "populate");

    db.ResetServerCalls();
    size_t nav_tuples = 0;
    double nav_secs = TimeSecs([&] { nav_tuples = NavigationalExtract(&db); });
    int64_t nav_calls = db.server_calls();

    db.ResetServerCalls();
    size_t xnf_tuples = 0;
    double xnf_secs = TimeSecs([&] {
      Result<std::unique_ptr<XNFCache>> cache =
          XNFCache::Evaluate(&db, kHierarchyQuery);
      CheckOk(cache.status(), "XNF extraction");
      Workspace& ws = cache.value()->workspace();
      for (size_t i = 0; i < ws.component_count(); ++i) {
        xnf_tuples += ws.component(i)->size();
      }
    });
    int64_t xnf_calls = db.server_calls();

    std::printf("%-8d %-8d | %10.2f %12lld | %10.2f %12lld | %7.1fx\n",
                departments, departments * params.emps_per_dept,
                nav_secs * 1000.0, static_cast<long long>(nav_calls),
                xnf_secs * 1000.0, static_cast<long long>(xnf_calls),
                nav_secs / xnf_secs);
    (void)nav_tuples;
    (void)xnf_tuples;
  }
  std::printf(
      "\nExpected shape: navigational extraction issues one query per "
      "parent instance (calls grow with the data); XNF extracts the whole "
      "CO in a single set-oriented call.\n");
  WriteBenchJson("extraction");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
