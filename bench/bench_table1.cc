// Reproduces Table 1 of the paper: "Comparison of SQL Derivation and XNF
// Derivation w.r.t. Common Subexpressions".
//
// The SQL side derives each of the eight deps_ARC components with an
// independent SQL query (the Fig. 6 style, sharing only the stored view
// DEPT_ARC within each query); the XNF side compiles the whole CO with one
// XNF query. Operations are counted on the final rewritten query graphs:
// one JOIN per additional F-quantifier of a SELECT box, one SELECTION per
// box with local predicate work (see xnf/op_count.h).
//
// Paper reference values (Table 1, p. 81):
//   component     SQL  replicated  XNF
//   xdept           1      0        1
//   xemp            2      1        1
//   xproj           2      1        1
//   employment      3      3        0
//   ownership       3      3        0
//   xskills         6      4        4
//   empproperty     3      2        0
//   projproperty    3      2        0
//   total          23     16        7

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "parser/parser.h"
#include "xnf/compiler.h"
#include "xnf/op_count.h"

namespace xnfdb {
namespace bench {
namespace {

struct PaperRow {
  const char* component;
  const char* sql_query;
  int paper_sql;
  int paper_replicated;
  int paper_xnf;
};

// The single-component derivations (Fig. 6). Each query references the
// stored views DEPT_ARC / XEMP_V / XPROJ_V; view expansions are shared
// *within* one query but recomputed across queries — exactly the redundancy
// Table 1 quantifies.
const PaperRow kRows[] = {
    {"xdept", "SELECT * FROM DEPT_ARC", 1, 0, 1},
    {"xemp", "SELECT * FROM XEMP_V", 2, 1, 1},
    {"xproj", "SELECT * FROM XPROJ_V", 2, 1, 1},
    {"employment",
     "SELECT xd.DNO, xe.ENO FROM DEPT_ARC xd, XEMP_V xe "
     "WHERE xd.DNO = xe.EDNO",
     3, 3, 0},
    {"ownership",
     "SELECT xd.DNO, xp.PNO FROM DEPT_ARC xd, XPROJ_V xp "
     "WHERE xd.DNO = xp.PDNO",
     3, 3, 0},
    {"xskills",
     "SELECT s.SNO, s.SNAME FROM SKILLS s WHERE "
     "EXISTS (SELECT 1 FROM XEMP_V xe, EMPSKILLS es "
     "        WHERE xe.ENO = es.ESENO AND es.ESSNO = s.SNO) OR "
     "EXISTS (SELECT 1 FROM XPROJ_V xp, PROJSKILLS ps "
     "        WHERE xp.PNO = ps.PSPNO AND ps.PSSNO = s.SNO)",
     6, 4, 4},
    {"empproperty",
     "SELECT xe.ENO, es.ESSNO FROM XEMP_V xe, EMPSKILLS es "
     "WHERE xe.ENO = es.ESENO",
     3, 2, 0},
    {"projproperty",
     "SELECT xp.PNO, ps.PSSNO FROM XPROJ_V xp, PROJSKILLS ps "
     "WHERE xp.PNO = ps.PSPNO",
     3, 2, 0},
};

int Run() {
  Database db;
  CheckOk(PopulateDeptDb(&db, DeptDbParams{}), "populate");
  CheckOk(db.Execute("CREATE VIEW DEPT_ARC AS SELECT * FROM DEPT "
                     "WHERE LOC = 'ARC'")
              .status(),
          "view DEPT_ARC");
  CheckOk(db.Execute("CREATE VIEW XEMP_V AS SELECT e.* FROM EMP e WHERE "
                     "EXISTS (SELECT 1 FROM DEPT_ARC d WHERE "
                     "d.DNO = e.EDNO)")
              .status(),
          "view XEMP_V");
  CheckOk(db.Execute("CREATE VIEW XPROJ_V AS SELECT p.* FROM PROJ p WHERE "
                     "EXISTS (SELECT 1 FROM DEPT_ARC d WHERE "
                     "d.DNO = p.PDNO)")
              .status(),
          "view XPROJ_V");

  // --- SQL derivation: one query graph per component -----------------------
  std::map<std::string, OpCounts> sql_counts;
  int sql_total = 0;
  for (const PaperRow& row : kRows) {
    Result<CompiledQuery> compiled =
        CompileQueryString(db.catalog(), row.sql_query);
    CheckOk(compiled.status(), std::string("compile SQL ") + row.component);
    OpCounts counts = CountOps(*compiled.value().graph);
    sql_counts[row.component] = counts;
    sql_total += counts.selections + counts.joins;
  }

  // --- XNF derivation: one multi-table query graph -------------------------
  Result<std::unique_ptr<ast::XnfQuery>> query = ParseXnfQuery(kDepsArcQuery);
  CheckOk(query.status(), "parse XNF");
  Result<CompiledQuery> xnf = CompileXnf(db.catalog(), *query.value());
  CheckOk(xnf.status(), "compile XNF");
  const qgm::QueryGraph& graph = *xnf.value().graph;
  OpCounts xnf_total = CountOps(graph);

  // Attribute XNF operations to components cumulatively, in definition
  // order: a component is charged for the (not yet charged) boxes its
  // derivation reaches — this reconstructs Table 1's per-component split
  // (e.g. xskills is charged the two mapping-join connection boxes).
  const qgm::Box* top = graph.box(graph.top_box_id());
  std::set<int> charged;
  std::map<std::string, int> xnf_per_component;
  for (const PaperRow& row : kRows) {
    std::string name = ToUpperIdent(row.component);
    int ops = 0;
    for (const qgm::TopOutput& out : top->outputs) {
      if (!IdentEquals(out.name, name)) continue;
      for (int box : ReachableBoxes(graph, out.box_id)) {
        if (!charged.insert(box).second) continue;
        OpCounts c = CountBoxOps(graph, box);
        ops += c.selections + c.joins;
      }
    }
    xnf_per_component[row.component] = ops;
  }

  // --- report ----------------------------------------------------------------
  std::printf(
      "Table 1: Comparison of SQL Derivation and XNF Derivation w.r.t. "
      "Common Subexpressions\n");
  std::printf(
      "(ops = selections + joins on the final rewritten query graphs)\n\n");
  std::printf("%-14s %10s %10s %12s %10s %10s\n", "Component", "SQL(meas)",
              "SQL(paper)", "Repl(paper)", "XNF(meas)", "XNF(paper)");
  int xnf_sum = 0;
  for (const PaperRow& row : kRows) {
    const OpCounts& c = sql_counts[row.component];
    int sql_ops = c.selections + c.joins;
    int xnf_ops = xnf_per_component[row.component];
    xnf_sum += xnf_ops;
    std::printf("%-14s %10d %10d %12d %10d %10d\n", row.component, sql_ops,
                row.paper_sql, row.paper_replicated, xnf_ops, row.paper_xnf);
  }
  int measured_replicated = sql_total - xnf_sum;
  std::printf("%-14s %10d %10d %12d %10d %10d\n", "Summary", sql_total, 23,
              measured_replicated, xnf_sum, 7);

  // --- execute phase ---------------------------------------------------------
  // Run both derivations end-to-end so the snapshot carries phase.execute.us
  // — the histogram scripts/bench_compare.py gates on (and the profiler-
  // overhead CI gate re-runs under XNFDB_QUERY_PROFILES=0/1).
  const int reps = SmokeMode() ? 5 : 40;
  int64_t exec_rows = 0;
  double exec_secs = TimeSecs([&] {
    for (int r = 0; r < reps; ++r) {
      for (const PaperRow& row : kRows) {
        Result<Database::Outcome> out = db.Execute(row.sql_query);
        CheckOk(out.status(), std::string("execute SQL ") + row.component);
        exec_rows += out.value().result.stats.rows_output;
      }
      Result<QueryResult> co = db.Query(kDepsArcQuery);
      CheckOk(co.status(), "execute XNF");
      exec_rows += co.value().stats.rows_output;
    }
  });
  std::printf("\nExecuted both derivations x%d: %lld rows in %.3fs\n", reps,
              static_cast<long long>(exec_rows), exec_secs);
  std::printf(
      "\nMeasured replicated ops = SQL total - XNF total = %d (paper: 16)\n",
      measured_replicated);
  std::printf("XNF graph: %d joins + %d selections (+%d unions) — paper: "
              "\"only 6 join operations and 1 selection\"\n",
              xnf_total.joins, xnf_total.selections, xnf_total.unions);

  bool ok = xnf_total.joins == 6 && xnf_total.selections == 1 &&
            sql_total == 23;
  std::printf("\nRESULT: %s\n", ok ? "MATCHES PAPER" : "DIFFERS FROM PAPER");
  WriteBenchJson("table1",
                 "{\"sql_ops\":" + std::to_string(sql_total) +
                     ",\"xnf_ops\":" + std::to_string(xnf_sum) +
                     ",\"replicated_ops\":" +
                     std::to_string(measured_replicated) +
                     ",\"matches_paper\":" + (ok ? "true" : "false") +
                     ",\"execute_reps\":" + std::to_string(reps) +
                     ",\"execute_rows\":" + std::to_string(exec_rows) +
                     ",\"execute_secs\":" + std::to_string(exec_secs) + "}");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace xnfdb

int main() { return xnfdb::bench::Run(); }
