// Tests of the CO cache: workspace construction with pointer swizzling,
// independent/dependent cursors, path expressions, local updates with
// write-back, disk persistence, and the seamless C++ binding.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "cache/seamless.h"
#include "cache/serialize.h"
#include "cache/writeback.h"
#include "cache/xnf_cache.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

class CacheTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
    XNFCache::Options options;
    options.workspace.swizzle = GetParam();
    Result<std::unique_ptr<XNFCache>> cache =
        XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery, options);
    ASSERT_TRUE(cache.ok()) << cache.status().ToString();
    cache_ = std::move(cache).value();
  }

  Database db_;
  std::unique_ptr<XNFCache> cache_;
};

INSTANTIATE_TEST_SUITE_P(SwizzledAndNot, CacheTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Swizzled" : "TidLookup";
                         });

TEST_P(CacheTest, IndependentCursorBrowsesAllRows) {
  Result<IndependentCursor> cursor = cache_->OpenCursor("XEMP");
  ASSERT_TRUE(cursor.ok());
  std::set<int64_t> enos;
  while (cursor.value().Next()) {
    enos.insert(cursor.value().row()->values[0].AsInt());
  }
  EXPECT_EQ(enos, (std::set<int64_t>{10, 20, 30}));
}

TEST_P(CacheTest, DependentCursorNavigatesChildren) {
  ComponentTable* xdept = cache_->workspace().component("XDEPT").value();
  CachedRow* d1 = xdept->FindByValue(0, Value(int64_t{1}));
  ASSERT_NE(d1, nullptr);
  Result<DependentCursor> cursor = cache_->OpenDependentCursor("EMPLOYMENT", d1);
  ASSERT_TRUE(cursor.ok());
  std::set<int64_t> enos;
  while (cursor.value().Next()) {
    enos.insert(cursor.value().row()->values[0].AsInt());
  }
  EXPECT_EQ(enos, (std::set<int64_t>{10, 20}));
}

TEST_P(CacheTest, DependentCursorNavigatesParents) {
  ComponentTable* xskills = cache_->workspace().component("XSKILLS").value();
  CachedRow* s3 = xskills->FindByValue(0, Value(int64_t{3000}));
  ASSERT_NE(s3, nullptr);
  // s3 is possessed by e2 (20) and needed by p1 (100) — shared object.
  Result<DependentCursor> emp_cursor = cache_->OpenDependentCursor(
      "EMPPROPERTY", s3, DependentCursor::Direction::kParents);
  ASSERT_TRUE(emp_cursor.ok());
  std::set<int64_t> owners;
  while (emp_cursor.value().Next()) {
    owners.insert(emp_cursor.value().row()->values[0].AsInt());
  }
  EXPECT_EQ(owners, (std::set<int64_t>{20}));

  Result<DependentCursor> proj_cursor = cache_->OpenDependentCursor(
      "PROJPROPERTY", s3, DependentCursor::Direction::kParents);
  ASSERT_TRUE(proj_cursor.ok());
  std::set<int64_t> projs;
  while (proj_cursor.value().Next()) {
    projs.insert(proj_cursor.value().row()->values[0].AsInt());
  }
  EXPECT_EQ(projs, (std::set<int64_t>{100}));
}

TEST_P(CacheTest, PathExpressionReachesSkillsOfDepartments) {
  Result<std::vector<CachedRow*>> skills =
      cache_->Path("XDEPT.EMPLOYMENT.XEMP.EMPPROPERTY.XSKILLS");
  ASSERT_TRUE(skills.ok()) << skills.status().ToString();
  std::set<int64_t> snos;
  for (CachedRow* row : skills.value()) snos.insert(row->values[0].AsInt());
  EXPECT_EQ(snos, (std::set<int64_t>{1000, 3000, 4000}));
}

TEST_P(CacheTest, PathFromSingleRow) {
  ComponentTable* xdept = cache_->workspace().component("XDEPT").value();
  CachedRow* d2 = xdept->FindByValue(0, Value(int64_t{2}));
  ASSERT_NE(d2, nullptr);
  Result<std::vector<CachedRow*>> emps =
      EvalPathFrom(&cache_->workspace(), d2, "EMPLOYMENT.XEMP");
  ASSERT_TRUE(emps.ok());
  ASSERT_EQ(emps.value().size(), 1u);
  EXPECT_EQ(emps.value()[0]->values[0].AsInt(), 30);
}

TEST_P(CacheTest, UpdateWriteBackPropagatesToBaseTable) {
  ComponentTable* xemp = cache_->workspace().component("XEMP").value();
  CachedRow* e1 = xemp->FindByValue(0, Value(int64_t{10}));
  ASSERT_NE(e1, nullptr);
  ASSERT_TRUE(cache_->Update(e1, "ENAME", Value("e1-renamed")).ok());
  ASSERT_TRUE(cache_->workspace().HasPendingChanges());

  Result<std::vector<std::string>> stmts = cache_->WriteBack();
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  ASSERT_EQ(stmts.value().size(), 1u);
  EXPECT_FALSE(cache_->workspace().HasPendingChanges());

  Result<QueryResult> check =
      db_.Query("SELECT ENAME FROM EMP WHERE ENO = 10");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check.value().rows().size(), 1u);
  EXPECT_EQ(check.value().rows()[0][0].AsString(), "e1-renamed");
}

TEST_P(CacheTest, ConnectTranslatesToForeignKeyUpdate) {
  // Move employee e3 (30) from department 2 to department 1.
  ComponentTable* xdept = cache_->workspace().component("XDEPT").value();
  ComponentTable* xemp = cache_->workspace().component("XEMP").value();
  CachedRow* d1 = xdept->FindByValue(0, Value(int64_t{1}));
  CachedRow* d2 = xdept->FindByValue(0, Value(int64_t{2}));
  CachedRow* e3 = xemp->FindByValue(0, Value(int64_t{30}));
  ASSERT_TRUE(cache_->Disconnect("EMPLOYMENT", d2, e3).ok());
  ASSERT_TRUE(cache_->Connect("EMPLOYMENT", d1, e3).ok());
  Result<std::vector<std::string>> stmts = cache_->WriteBack();
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();

  Result<QueryResult> check = db_.Query("SELECT EDNO FROM EMP WHERE ENO = 30");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value().rows()[0][0].AsInt(), 1);
}

TEST_P(CacheTest, ConnectOnConnectTableInsertsMappingRow) {
  ComponentTable* xemp = cache_->workspace().component("XEMP").value();
  ComponentTable* xskills = cache_->workspace().component("XSKILLS").value();
  CachedRow* e1 = xemp->FindByValue(0, Value(int64_t{10}));
  CachedRow* s5 = xskills->FindByValue(0, Value(int64_t{5000}));
  ASSERT_TRUE(cache_->Connect("EMPPROPERTY", e1, s5).ok());
  Result<std::vector<std::string>> stmts = cache_->WriteBack();
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();

  Result<QueryResult> check = db_.Query(
      "SELECT ESSNO FROM EMPSKILLS WHERE ESENO = 10 AND ESSNO = 5000");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check.value().rows().size(), 1u);
}

TEST_P(CacheTest, InsertAndDeleteWriteBack) {
  Result<CachedRow*> fresh = cache_->Insert(
      "XEMP", {Value(int64_t{50}), Value("e5"), Value(int64_t{1}),
               Value(95000.0)});
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  ComponentTable* xemp = cache_->workspace().component("XEMP").value();
  CachedRow* e2 = xemp->FindByValue(0, Value(int64_t{20}));
  ASSERT_TRUE(cache_->Delete(e2).ok());
  Result<std::vector<std::string>> stmts = cache_->WriteBack();
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();

  Result<QueryResult> check =
      db_.Query("SELECT ENO FROM EMP ORDER BY ENO");
  ASSERT_TRUE(check.ok());
  std::set<int64_t> enos;
  for (const Tuple& row : check.value().rows()) enos.insert(row[0].AsInt());
  EXPECT_EQ(enos, (std::set<int64_t>{10, 30, 40, 50}));
}

TEST_P(CacheTest, SaveAndLoadRoundTrips) {
  std::string path = ::testing::TempDir() + "/xnfcache_roundtrip.xc";
  ASSERT_TRUE(cache_->SaveTo(path).ok());
  XNFCache::Options options;
  options.workspace.swizzle = GetParam();
  Result<std::unique_ptr<XNFCache>> loaded = XNFCache::LoadFrom(
      &db_, path, testing_util::kDepsArcQuery, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Workspace& ws = loaded.value()->workspace();
  EXPECT_EQ(ws.component("XEMP").value()->size(), 3u);
  EXPECT_EQ(ws.relationship("EMPLOYMENT").value()->size(), 3u);
  // Navigation works on the restored cache.
  Result<std::vector<CachedRow*>> skills =
      loaded.value()->Path("XDEPT.EMPLOYMENT.XEMP.EMPPROPERTY.XSKILLS");
  ASSERT_TRUE(skills.ok());
  EXPECT_EQ(skills.value().size(), 3u);
  std::remove(path.c_str());
}

TEST_P(CacheTest, SeamlessBindingBuildsLinkedObjects) {
  struct Emp;
  struct Dept {
    int64_t dno = 0;
    std::string name;
    std::vector<Emp*> emps;
  };
  struct Emp {
    int64_t eno = 0;
    std::string name;
    Dept* dept = nullptr;
  };

  Workspace& ws = cache_->workspace();
  ObjectSet<Dept> depts;
  ASSERT_TRUE(depts
                  .Load(&ws, "XDEPT",
                        [](const CachedRow& r, Dept* d) {
                          d->dno = r.values[0].AsInt();
                          d->name = r.values[1].AsString();
                        })
                  .ok());
  ObjectSet<Emp> emps;
  ASSERT_TRUE(emps
                  .Load(&ws, "XEMP",
                        [](const CachedRow& r, Emp* e) {
                          e->eno = r.values[0].AsInt();
                          e->name = r.values[1].AsString();
                        })
                  .ok());
  Status link_status = LinkMembers<Dept, Emp>(&ws, "EMPLOYMENT", &depts,
                                              &emps, [](Dept* d, Emp* e) {
                                                d->emps.push_back(e);
                                                e->dept = d;
                                              });
  ASSERT_TRUE(link_status.ok());
  ASSERT_EQ(depts.size(), 2u);
  ASSERT_EQ(emps.size(), 3u);
  // Every employee points back at its department.
  XCursor<Emp> cursor(&emps);
  while (cursor.Next()) {
    ASSERT_NE(cursor.object()->dept, nullptr);
  }
  // Dept 1 has two employees.
  for (Dept& d : depts) {
    if (d.dno == 1) {
      EXPECT_EQ(d.emps.size(), 2u);
    }
    if (d.dno == 2) {
      EXPECT_EQ(d.emps.size(), 1u);
    }
  }
}

TEST_P(CacheTest, NonUpdatableComponentRejectsWriteBack) {
  // A join-view component must refuse updates.
  const char* query = R"sql(
    OUT OF pair AS (SELECT e.ENO, d.DNAME FROM EMP e, DEPT d
                    WHERE e.EDNO = d.DNO)
    TAKE *
  )sql";
  Result<std::unique_ptr<XNFCache>> cache = XNFCache::Evaluate(&db_, query);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  ComponentTable* pair = cache.value()->workspace().component("PAIR").value();
  ASSERT_GT(pair->size(), 0u);
  ASSERT_TRUE(cache.value()->Update(pair->row(0), "DNAME", Value("X")).ok());
  Result<std::vector<std::string>> stmts = cache.value()->WriteBack();
  EXPECT_FALSE(stmts.ok());
  EXPECT_EQ(stmts.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xnfdb
