// Unit tests of the operation-counting methodology behind the Table 1
// reproduction (xnf/op_count.h) and of the compiler driver entry points.

#include <gtest/gtest.h>

#include "api/database.h"
#include "parser/parser.h"
#include "tests/paper_db.h"
#include "xnf/compiler.h"
#include "xnf/op_count.h"

namespace xnfdb {
namespace {

class OpCountTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
  }

  OpCounts Count(const std::string& query, CompileOptions opts = {}) {
    Result<CompiledQuery> compiled =
        CompileQueryString(db_.catalog(), query, opts);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    return CountOps(*compiled.value().graph);
  }

  Database db_;
};

TEST_F(OpCountTest, PureScanIsZeroOps) {
  OpCounts c = Count("SELECT * FROM EMP");
  EXPECT_EQ(c.joins, 0);
  EXPECT_EQ(c.selections, 0);
}

TEST_F(OpCountTest, LocalPredicateIsOneSelection) {
  OpCounts c = Count("SELECT * FROM DEPT WHERE LOC = 'ARC'");
  EXPECT_EQ(c.selections, 1);
  EXPECT_EQ(c.joins, 0);
}

TEST_F(OpCountTest, JoinPredicateCountsAsJoinNotSelection) {
  OpCounts c = Count(
      "SELECT e.ENO FROM EMP e, DEPT d WHERE e.EDNO = d.DNO");
  EXPECT_EQ(c.joins, 1);
  EXPECT_EQ(c.selections, 0);
}

TEST_F(OpCountTest, ThreeWayJoinIsTwoJoins) {
  OpCounts c = Count(
      "SELECT 1 FROM EMP e, DEPT d, PROJ p "
      "WHERE e.EDNO = d.DNO AND p.PDNO = d.DNO");
  EXPECT_EQ(c.joins, 2);
}

TEST_F(OpCountTest, RewrittenExistsBecomesJoinPlusSelection) {
  // Fig. 3: after E-to-F + merge, one box with 1 join and 1 selection.
  OpCounts c = Count(
      "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE "
      "d.LOC = 'ARC' AND d.DNO = e.EDNO)");
  EXPECT_EQ(c.joins, 1);
  EXPECT_EQ(c.selections, 1);
}

TEST_F(OpCountTest, UnconvertedExistsIsSelectionOnly) {
  CompileOptions opts;
  opts.nf.exists_to_join = false;
  opts.nf.select_merge = false;
  OpCounts c = Count(
      "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE "
      "d.LOC = 'ARC' AND d.DNO = e.EDNO)",
      opts);
  // Outer box: existential group => 1 selection; subquery box: 1 selection.
  EXPECT_EQ(c.joins, 0);
  EXPECT_EQ(c.selections, 2);
}

TEST_F(OpCountTest, UnionCountsSeparately) {
  OpCounts c = Count(
      "SELECT DNO FROM DEPT WHERE LOC = 'ARC' UNION "
      "SELECT EDNO FROM EMP WHERE SAL > 0.0");
  EXPECT_EQ(c.unions, 1);
  EXPECT_EQ(c.selections, 2);
  EXPECT_EQ(c.Total(), c.selections + c.joins + c.unions);
}

TEST_F(OpCountTest, CountBoxOpsAndReachabilityAgreeWithTotal) {
  Result<CompiledQuery> compiled = CompileQueryString(
      db_.catalog(), testing_util::kDepsArcQuery);
  ASSERT_TRUE(compiled.ok());
  const qgm::QueryGraph& g = *compiled.value().graph;
  OpCounts total = CountOps(g);
  // Summing per-box counts over the reachable set reproduces the total.
  int sel = 0, joins = 0, unions = 0;
  for (int id : ReachableBoxes(g, g.top_box_id())) {
    OpCounts c = CountBoxOps(g, id);
    sel += c.selections;
    joins += c.joins;
    unions += c.unions;
  }
  EXPECT_EQ(sel, total.selections);
  EXPECT_EQ(joins, total.joins);
  EXPECT_EQ(unions, total.unions);
  EXPECT_EQ(total.joins, 6);       // Table 1
  EXPECT_EQ(total.selections, 1);  // Table 1
}

TEST_F(OpCountTest, CompileQueryStringResolvesViews) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW DEPS AS " +
                          std::string(testing_util::kDepsArcQuery))
                  .ok());
  ASSERT_TRUE(
      db_.Execute("CREATE VIEW SQLV AS SELECT * FROM DEPT").ok());
  // A bare view name compiles the view.
  EXPECT_TRUE(CompileQueryString(db_.catalog(), "DEPS").ok());
  EXPECT_TRUE(CompileQueryString(db_.catalog(), " sqlv ").ok());
  // Non-query statements are rejected.
  EXPECT_FALSE(
      CompileQueryString(db_.catalog(), "INSERT INTO DEPT VALUES (9)").ok());
  // LoadXnfView type-checks.
  EXPECT_TRUE(LoadXnfView(db_.catalog(), "DEPS").ok());
  EXPECT_FALSE(LoadXnfView(db_.catalog(), "SQLV").ok());
  EXPECT_FALSE(LoadXnfView(db_.catalog(), "GHOST").ok());
}

TEST_F(OpCountTest, RewriteStatsReportFirings) {
  Result<CompiledQuery> compiled = CompileQueryString(
      db_.catalog(),
      "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE "
      "d.DNO = e.EDNO)");
  ASSERT_TRUE(compiled.ok());
  EXPECT_GE(compiled.value().rewrite_stats.TotalFirings(), 2);
}

}  // namespace
}  // namespace xnfdb
