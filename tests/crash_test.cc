// Tests of the crash-diagnostics path (common/crash.h) and the diagnostic
// bundle (Database::WriteDiagnosticBundle): a forked child that segfaults
// mid-query must leave a crash report carrying a backtrace, the flight-
// recorder tail, and the active-query rows; a live bundle must be a set of
// CRC-checked XNFDIAG files; and under fault injection a failed file is
// skipped — reported, never torn — while the rest of the bundle stays
// readable.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <exception>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/crash.h"
#include "common/env.h"
#include "common/fault_env.h"
#include "common/file_format.h"
#include "obs/flight_recorder.h"
#include "storage/catalog.h"
#include "storage/sysview.h"

// AddressSanitizer claims SIGSEGV for its own reporting before our handler
// can run; the forked death tests only make sense without it.
#if defined(__SANITIZE_ADDRESS__)
#define XNFDB_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define XNFDB_TEST_ASAN 1
#endif
#endif

namespace xnfdb {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name + "_" +
         std::to_string(::getpid());
}

std::string ReadFileOrDie(const std::string& path) {
  std::string out;
  Status s = Env::Default()->ReadFileToString(path, &out);
  EXPECT_TRUE(s.ok()) << path << ": " << s.ToString();
  return out;
}

// The single crash_*.txt report in `dir` ("" when none).
std::string ReadCrashReport(const std::string& dir) {
  std::string found;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return "";
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name.rfind("crash_", 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".txt") {
      found = dir + "/" + name;
      break;
    }
  }
  ::closedir(d);
  return found.empty() ? "" : ReadFileOrDie(found);
}

// A virtual table whose scan dereferences null: a genuine SIGSEGV in the
// middle of an admitted, governed query.
class CrashingProvider : public VirtualTableProvider {
 public:
  CrashingProvider()
      : name_("CRASHME"),
        schema_(Schema(std::vector<Column>{{"A", DataType::kInt}})) {}
  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }
  Result<std::vector<Tuple>> Generate() const override {
    volatile int* null_ptr = nullptr;
    *null_ptr = 1;  // SIGSEGV
    return std::vector<Tuple>{};
  }

 private:
  std::string name_;
  Schema schema_;
};

TEST(CrashReportTest, ForkedSigsegvMidQueryLeavesAForensicReport) {
#if defined(XNFDB_TEST_ASAN)
  GTEST_SKIP() << "ASan owns SIGSEGV";
#else
  const std::string dir = TestPath("crash_sigsegv");
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: install the handler, then crash inside a governed query.
    if (!InstallCrashHandler(dir)) ::_exit(41);
    Database db;
    if (!db.catalog()
             .RegisterVirtualTable(std::make_unique<CrashingProvider>())
             .ok()) {
      ::_exit(43);
    }
    (void)db.Query("SELECT * FROM CRASHME");
    ::_exit(42);  // unreachable: the query segfaults
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "exit status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  ASSERT_EQ(CountCrashReports(dir), 1);
  std::string report = ReadCrashReport(dir);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report.find("=== xnfdb crash report ==="), std::string::npos);
  EXPECT_NE(report.find("reason: SIGSEGV"), std::string::npos) << report;
  // A backtrace with at least one resolved frame.
  ASSERT_NE(report.find("--- backtrace ---"), std::string::npos);
  EXPECT_NE(report.find("xnfdb"), std::string::npos);
  // The flight recorder tail holds the query-start event of the very
  // query that died.
  ASSERT_NE(report.find("--- flight recorder"), std::string::npos);
  EXPECT_NE(report.find("query start"), std::string::npos) << report;
  // The governor's admission refresh captured the active query.
  ASSERT_NE(report.find("--- active queries"), std::string::npos);
  EXPECT_NE(report.find("CRASHME"), std::string::npos) << report;
  EXPECT_NE(report.find("state="), std::string::npos) << report;
#endif
}

TEST(CrashReportTest, TerminateHookWritesAReportThenAborts) {
#if defined(XNFDB_TEST_ASAN)
  GTEST_SKIP() << "ASan death handling differs";
#else
  const std::string dir = TestPath("crash_terminate");
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!InstallCrashHandler(dir)) ::_exit(41);
    obs::FlightRecorder::Default().Record("test", "error", "about to die");
    std::terminate();
    ::_exit(42);  // unreachable
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "exit status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGABRT);

  ASSERT_EQ(CountCrashReports(dir), 1);
  std::string report = ReadCrashReport(dir);
  EXPECT_NE(report.find("reason: std::terminate"), std::string::npos)
      << report;
  EXPECT_NE(report.find("about to die"), std::string::npos) << report;
#endif
}

TEST(CrashReportTest, CountCrashReportsMatchesOnlyReportFiles) {
  const std::string dir = TestPath("crash_count");
  ASSERT_TRUE(Env::Default()->CreateDir(dir).ok());
  EXPECT_EQ(CountCrashReports(dir), 0);
  EXPECT_EQ(CountCrashReports(dir + "/missing"), 0);
  for (const char* name :
       {"crash_1_100.txt", "crash_2_200.txt", "notes.txt", "crash_3.log"}) {
    ASSERT_TRUE(
        AtomicallyWriteFile(Env::Default(), dir + "/" + name, "x").ok());
  }
  EXPECT_EQ(CountCrashReports(dir), 2);
}

TEST(CrashReportTest, RenderCrashStyleReportMatchesHandlerLayout) {
  obs::FlightRecorder::Default().set_enabled(true);
  obs::FlightRecorder::Default().Record("test", "warn", "render marker");
  std::string report = RenderCrashStyleReport("unit test");
  EXPECT_NE(report.find("=== xnfdb crash report ==="), std::string::npos);
  EXPECT_NE(report.find("reason: unit test"), std::string::npos);
  EXPECT_NE(report.find("(not a crash: backtrace omitted)"),
            std::string::npos);
  EXPECT_NE(report.find("render marker"), std::string::npos);
  EXPECT_NE(report.find("=== end crash report ==="), std::string::npos);
}

// --- diagnostic bundles ---------------------------------------------------

std::vector<FileSection> ReadDiagFile(const std::string& path) {
  std::string raw = ReadFileOrDie(path);
  std::istringstream in(raw);
  std::string magic;
  EXPECT_TRUE(std::getline(in, magic));
  EXPECT_EQ(magic, "XNFDIAG 1") << path;
  Result<std::vector<FileSection>> sections = ReadSectionedFile(in);
  EXPECT_TRUE(sections.ok()) << path << ": " << sections.status().ToString();
  return sections.ok() ? std::move(sections).value()
                       : std::vector<FileSection>{};
}

const char* const kBundleFiles[] = {
    "report.diag",   "metrics.diag",       "events.diag", "health.diag",
    "queries.diag",  "samples.diag",       "profiles.diag",
    "plan_feedback.diag", "env.diag",      "MANIFEST.diag"};

TEST(DiagnosticBundleTest, BundleIsACompleteSetOfCheckedFiles) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1), (2), (3)").ok());
  ASSERT_TRUE(db.Query("SELECT A FROM T WHERE A > 1").ok());
  db.sampler().SampleNow();

  const std::string dir = TestPath("diag_bundle");
  Status s = db.WriteDiagnosticBundle(dir);
  ASSERT_TRUE(s.ok()) << s.ToString();

  for (const char* file : kBundleFiles) {
    ASSERT_TRUE(Env::Default()->FileExists(dir + "/" + file)) << file;
    std::vector<FileSection> sections = ReadDiagFile(dir + "/" + file);
    ASSERT_FALSE(sections.empty()) << file;
  }

  std::vector<FileSection> report = ReadDiagFile(dir + "/report.diag");
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].name, "REPORT");
  EXPECT_NE(report[0].payload.find("=== xnfdb crash report ==="),
            std::string::npos);

  std::vector<FileSection> events = ReadDiagFile(dir + "/events.diag");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "EVENTS");
  EXPECT_NE(events[0].payload.find("query start"), std::string::npos);

  std::vector<FileSection> health = ReadDiagFile(dir + "/health.diag");
  ASSERT_EQ(health.size(), 2u);
  EXPECT_EQ(health[0].name, "HEALTH");
  EXPECT_NE(health[0].payload.find("\"status\":"), std::string::npos);
  EXPECT_EQ(health[1].name, "ALERTS");

  std::vector<FileSection> env = ReadDiagFile(dir + "/env.diag");
  ASSERT_EQ(env.size(), 2u);
  EXPECT_EQ(env[0].name, "ENV");
  EXPECT_NE(env[0].payload.find("XNFDB_EVENTS="), std::string::npos);
  EXPECT_EQ(env[1].name, "RESOLVED");
  EXPECT_NE(env[1].payload.find("events_enabled="), std::string::npos);

  std::vector<FileSection> manifest = ReadDiagFile(dir + "/MANIFEST.diag");
  ASSERT_EQ(manifest.size(), 1u);
  // Every earlier file is listed as written.
  for (const char* file : kBundleFiles) {
    if (std::string(file) == "MANIFEST.diag") continue;
    EXPECT_NE(manifest[0].payload.find(std::string(file) + " sections="),
              std::string::npos)
        << file;
  }
  EXPECT_EQ(manifest[0].payload.find("failed"), std::string::npos);
}

TEST(DiagnosticBundleTest, FaultDuringBundleIsReportedNotFatalNeverTorn) {
  FaultInjectionEnv fenv;
  Database db(&fenv);
  const std::string dir = TestPath("diag_partial");
  // The first file's commit rename fails: report.diag must simply not
  // exist — AtomicallyWriteFile never leaves a torn file — while every
  // later file is still written and checksummed.
  fenv.FailNextRenames(1);
  Status s = db.WriteDiagnosticBundle(dir);
  EXPECT_FALSE(s.ok()) << "the failure must surface in the returned status";
  EXPECT_GE(fenv.counters().injected_errors, 1);

  Env* real = Env::Default();
  EXPECT_FALSE(real->FileExists(dir + "/report.diag"));
  EXPECT_FALSE(real->FileExists(dir + "/report.diag.tmp"));
  for (const char* file : kBundleFiles) {
    if (std::string(file) == "report.diag") continue;
    ASSERT_TRUE(real->FileExists(dir + "/" + file)) << file;
    std::vector<FileSection> sections = ReadDiagFile(dir + "/" + file);
    ASSERT_FALSE(sections.empty()) << file;
  }
  std::vector<FileSection> manifest = ReadDiagFile(dir + "/MANIFEST.diag");
  ASSERT_EQ(manifest.size(), 1u);
  EXPECT_NE(manifest[0].payload.find("report.diag sections=1 failed"),
            std::string::npos)
      << manifest[0].payload;
  EXPECT_NE(manifest[0].payload.find("metrics.diag sections=1 ok"),
            std::string::npos)
      << manifest[0].payload;
}

}  // namespace
}  // namespace xnfdb
