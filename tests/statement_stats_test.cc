// Tests of query fingerprinting (parser/fingerprint.h) and the bounded
// per-statement statistics store behind sys$statements
// (obs/statement_stats.h).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/statement_stats.h"
#include "parser/fingerprint.h"
#include "parser/parser.h"

namespace xnfdb {
namespace {

Fingerprint FingerprintText(const std::string& text) {
  Result<ast::StatementPtr> stmt = ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return FingerprintStatement(*stmt.value());
}

TEST(FingerprintTest, LiteralsNormalizeToQuestionMark) {
  Fingerprint fp = FingerprintText("SELECT A FROM T WHERE B = 5 AND C = 'x'");
  EXPECT_EQ(fp.text.find('5'), std::string::npos) << fp.text;
  EXPECT_EQ(fp.text.find("'x'"), std::string::npos) << fp.text;
  EXPECT_NE(fp.text.find('?'), std::string::npos) << fp.text;
  EXPECT_NE(fp.digest, 0u);
}

TEST(FingerprintTest, ConstantsShareAShapeStructureDoesNot) {
  Fingerprint a = FingerprintText("SELECT A FROM T WHERE B = 5");
  Fingerprint b = FingerprintText("SELECT A FROM T WHERE B = 99");
  Fingerprint c = FingerprintText("SELECT A FROM T WHERE C = 5");
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.text, b.text);
  EXPECT_NE(a.digest, c.digest);
}

TEST(FingerprintTest, LimitAndOffsetConstantsAreNormalized) {
  Fingerprint a = FingerprintText("SELECT A FROM T ORDER BY A LIMIT 5");
  Fingerprint b = FingerprintText("SELECT A FROM T ORDER BY A LIMIT 500");
  Fingerprint c = FingerprintText("SELECT A FROM T ORDER BY A");
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_NE(a.digest, c.digest);  // presence of LIMIT is structural
}

TEST(FingerprintTest, MultiRowInsertCollapsesToOneShape) {
  Fingerprint one = FingerprintText("INSERT INTO T VALUES (1, 'a')");
  Fingerprint three =
      FingerprintText("INSERT INTO T VALUES (2, 'b'), (3, 'c'), (4, 'd')");
  Fingerprint other_arity = FingerprintText("INSERT INTO T VALUES (1)");
  EXPECT_EQ(one.digest, three.digest) << one.text << " vs " << three.text;
  EXPECT_NE(one.digest, other_arity.digest);
}

TEST(FingerprintTest, XnfQueriesNormalizeLiteralsToo) {
  const char* kArc =
      "OUT OF d AS (SELECT * FROM DEPT WHERE LOC = 'ARC'), e AS EMP, "
      "r AS (RELATE d VIA EMPLOYS, e WHERE d.DNO = e.EDNO) TAKE *";
  const char* kYkt =
      "OUT OF d AS (SELECT * FROM DEPT WHERE LOC = 'YKT'), e AS EMP, "
      "r AS (RELATE d VIA EMPLOYS, e WHERE d.DNO = e.EDNO) TAKE *";
  Fingerprint a = FingerprintText(kArc);
  Fingerprint b = FingerprintText(kYkt);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.text.find("'ARC'"), std::string::npos) << a.text;
}

TEST(FingerprintTest, HashIsStableFnv1a) {
  // FNV-1a 64-bit pinned values: the digest is part of the sys$statements
  // surface (DIGEST column, stmt.<digest>.us histogram names), so it must
  // not drift across refactors.
  EXPECT_EQ(FingerprintHash(""), 14695981039346656037ull);
  EXPECT_EQ(FingerprintHash("a"), 12638187200555641996ull);
  EXPECT_NE(FingerprintHash("a"), FingerprintHash("b"));
}

TEST(DigestHexTest, SixteenZeroPaddedDigits) {
  EXPECT_EQ(obs::DigestHex(0), "0000000000000000");
  EXPECT_EQ(obs::DigestHex(0xabcull), "0000000000000abc");
  EXPECT_EQ(obs::DigestHex(~0ull), "ffffffffffffffff");
}

TEST(StatementStoreTest, AccumulatesPerDigest) {
  obs::StatementStore store;
  store.Record(7, "SELECT ?", "query", /*ok=*/true, /*rows=*/3,
               /*elapsed_us=*/100);
  store.Record(7, "SELECT ?", "query", true, 5, 300);
  store.Record(7, "SELECT ?", "query", /*ok=*/false, 0, 50);
  std::vector<obs::StatementSnapshot> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].digest, 7u);
  EXPECT_EQ(snap[0].text, "SELECT ?");
  EXPECT_EQ(snap[0].kind, "query");
  EXPECT_EQ(snap[0].calls, 3);
  EXPECT_EQ(snap[0].errors, 1);
  EXPECT_EQ(snap[0].rows, 8);
  EXPECT_EQ(snap[0].total_us, 450);
  EXPECT_EQ(snap[0].min_us, 50);
  EXPECT_EQ(snap[0].max_us, 300);
  EXPECT_EQ(snap[0].avg_us(), 150);
  EXPECT_EQ(snap[0].latency.count, 3);
}

TEST(StatementStoreTest, CapacityBoundsDistinctDigests) {
  obs::StatementStore store(/*capacity=*/2);
  store.Record(1, "a", "query", true, 0, 1);
  store.Record(2, "b", "query", true, 0, 1);
  store.Record(3, "c", "query", true, 0, 1);  // dropped: store is full
  store.Record(1, "a", "query", true, 0, 1);  // existing digest still lands
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dropped(), 1);
  std::vector<obs::StatementSnapshot> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].calls, 2);

  store.Reset();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.dropped(), 0);
}

TEST(StatementStoreTest, ConcurrentRecordsAllLand) {
  obs::StatementStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        // Two digests shared by all threads plus one private per thread.
        uint64_t digest = i % 3 == 2 ? 100 + t : i % 3;
        store.Record(digest, "t", "query", true, 1, 10);
      }
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();
  int64_t calls = 0;
  for (const obs::StatementSnapshot& s : store.Snapshot()) calls += s.calls;
  EXPECT_EQ(calls, int64_t{kThreads} * kPerThread);
  EXPECT_EQ(store.size(), 2u + kThreads);
  EXPECT_EQ(store.dropped(), 0);
}

}  // namespace
}  // namespace xnfdb
