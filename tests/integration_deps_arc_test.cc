// End-to-end test of the paper's running example (Fig. 1): the deps_ARC
// composite object, through the full pipeline (parse -> XNF semantics ->
// XNF semantic rewrite -> NF rewrite -> optimize -> execute).

#include <gtest/gtest.h>

#include <set>

#include "api/database.h"
#include "parser/parser.h"
#include "tests/paper_db.h"
#include "xnf/op_count.h"

namespace xnfdb {
namespace {

class DepsArcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
  }

  Database db_;
};

std::set<int64_t> ColumnValues(const QueryResult& result,
                               const std::string& output, int column) {
  std::set<int64_t> values;
  int idx = result.FindOutput(output);
  EXPECT_GE(idx, 0) << "output " << output << " missing";
  for (const Tuple& row : result.RowsOf(idx)) {
    values.insert(row[column].AsInt());
  }
  return values;
}

TEST_F(DepsArcTest, ComponentExtents) {
  Result<QueryResult> r = db_.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& result = r.value();

  // Components: xdept, xemp, xproj, xskills + 4 relationships.
  ASSERT_EQ(result.outputs.size(), 8u);

  EXPECT_EQ(ColumnValues(result, "XDEPT", 0), (std::set<int64_t>{1, 2}));
  // e4 works for the YKT department: not reachable.
  EXPECT_EQ(ColumnValues(result, "XEMP", 0), (std::set<int64_t>{10, 20, 30}));
  // p3 belongs to the YKT department: not reachable.
  EXPECT_EQ(ColumnValues(result, "XPROJ", 0), (std::set<int64_t>{100, 200}));
  // Skill s2 (2000) is connected to nothing reachable -- the paper calls
  // this out explicitly ("skill s2 does not belong to the COs").
  EXPECT_EQ(ColumnValues(result, "XSKILLS", 0),
            (std::set<int64_t>{1000, 3000, 4000, 5000}));
}

TEST_F(DepsArcTest, ConnectionCounts) {
  Result<QueryResult> r = db_.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& result = r.value();

  EXPECT_EQ(result.ConnectionCount(result.FindOutput("EMPLOYMENT")), 3u);
  EXPECT_EQ(result.ConnectionCount(result.FindOutput("OWNERSHIP")), 2u);
  EXPECT_EQ(result.ConnectionCount(result.FindOutput("EMPPROPERTY")), 3u);
  EXPECT_EQ(result.ConnectionCount(result.FindOutput("PROJPROPERTY")), 2u);
}

TEST_F(DepsArcTest, ObjectSharingAssignsOneTidPerRow) {
  Result<QueryResult> r = db_.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& result = r.value();

  // s3 (3000) is reachable from both an employee and a project but must
  // appear exactly once in the xskills component (object sharing).
  int idx = result.FindOutput("XSKILLS");
  int count_3000 = 0;
  for (const Tuple& row : result.RowsOf(idx)) {
    if (row[0].AsInt() == 3000) ++count_3000;
  }
  EXPECT_EQ(count_3000, 1);
}

TEST_F(DepsArcTest, SharedRewriteMatchesTable1OpCounts) {
  Result<std::unique_ptr<ast::XnfQuery>> q =
      ParseXnfQuery(testing_util::kDepsArcQuery);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  CompileOptions opts;
  Result<CompiledQuery> compiled =
      CompileXnf(db_.catalog(), *q.value(), opts);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  OpCounts counts = CountOps(*compiled.value().graph);
  // Paper, Sect. 4.2 / Table 1: "performing only 6 join operations and 1
  // selection" in the XNF derivation.
  EXPECT_EQ(counts.joins, 6) << counts.ToString();
  EXPECT_EQ(counts.selections, 1) << counts.ToString();
}

TEST_F(DepsArcTest, TakeProjectionRestrictsColumns) {
  std::string query = R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE xdept(dno, dname), xemp(eno), employment
  )sql";
  Result<QueryResult> r = db_.Query(query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& result = r.value();
  int xdept = result.FindOutput("XDEPT");
  ASSERT_GE(xdept, 0);
  EXPECT_EQ(result.outputs[xdept].schema.size(), 2u);
  int xemp = result.FindOutput("XEMP");
  ASSERT_GE(xemp, 0);
  EXPECT_EQ(result.outputs[xemp].schema.size(), 1u);
  EXPECT_EQ(result.ConnectionCount(result.FindOutput("EMPLOYMENT")), 3u);
}

TEST_F(DepsArcTest, UnsharedRewriteProducesSameResult) {
  CompileOptions shared_opts;
  CompileOptions unshared_opts;
  unshared_opts.xnf.share_connection_boxes = false;

  Result<QueryResult> a = db_.Query(testing_util::kDepsArcQuery, shared_opts);
  Result<QueryResult> b =
      db_.Query(testing_util::kDepsArcQuery, unshared_opts);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  for (const char* comp : {"XDEPT", "XEMP", "XPROJ", "XSKILLS"}) {
    std::set<int64_t> va = ColumnValues(a.value(), comp, 0);
    std::set<int64_t> vb = ColumnValues(b.value(), comp, 0);
    EXPECT_EQ(va, vb) << comp;
  }
  for (const char* rel :
       {"EMPLOYMENT", "OWNERSHIP", "EMPPROPERTY", "PROJPROPERTY"}) {
    EXPECT_EQ(a.value().ConnectionCount(a.value().FindOutput(rel)),
              b.value().ConnectionCount(b.value().FindOutput(rel)))
        << rel;
  }
}

}  // namespace
}  // namespace xnfdb
