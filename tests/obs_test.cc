// Tests of the observability layer (src/obs): histogram bucket boundaries
// and merging, registry snapshot/reset under concurrent increments, span
// nesting/ordering, and the exposition formats.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"

namespace xnfdb {
namespace obs {
namespace {

TEST(HistogramTest, BucketBoundsAreInclusiveUpperBounds) {
  Histogram h({10, 20});
  for (int64_t v : {5, 10, 11, 20, 21, 1000}) h.Observe(v);
  HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.buckets.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(s.buckets[0], 2);       // 5, 10
  EXPECT_EQ(s.buckets[1], 2);       // 11, 20
  EXPECT_EQ(s.buckets[2], 2);       // 21, 1000
  EXPECT_EQ(s.count, 6);
  EXPECT_EQ(s.sum, 5 + 10 + 11 + 20 + 21 + 1000);
}

TEST(HistogramTest, ZeroAndNegativeLandInFirstBucket) {
  Histogram h({10});
  h.Observe(0);
  h.Observe(-5);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.buckets[0], 2);
  EXPECT_EQ(s.buckets[1], 0);
}

TEST(HistogramTest, MergeAddsBucketsOfMatchingShape) {
  Histogram a({10, 20}), b({10, 20});
  a.Observe(5);
  a.Observe(15);
  b.Observe(15);
  b.Observe(100);
  HistogramSnapshot s = a.Snapshot();
  s.Merge(b.Snapshot());
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.sum, 5 + 15 + 15 + 100);
  EXPECT_EQ(s.buckets[0], 1);
  EXPECT_EQ(s.buckets[1], 2);
  EXPECT_EQ(s.buckets[2], 1);
}

TEST(HistogramTest, MergeIgnoresIncompatibleShapes) {
  Histogram a({10}), b({10, 20});
  a.Observe(1);
  b.Observe(1);
  HistogramSnapshot s = a.Snapshot();
  s.Merge(b.Snapshot());
  EXPECT_EQ(s.count, 1);  // unchanged: merging would misattribute counts
}

TEST(HistogramTest, MergeIntoEmptyAdoptsOther) {
  Histogram b({10, 20});
  b.Observe(15);
  HistogramSnapshot s;
  s.Merge(b.Snapshot());
  EXPECT_EQ(s.count, 1);
  EXPECT_EQ(s.bounds, std::vector<int64_t>({10, 20}));
}

TEST(HistogramTest, QuantileInterpolatesWithinCoveringBucket) {
  Histogram h({1, 10, 100});
  for (int i = 0; i < 98; ++i) h.Observe(5);   // bucket (1,10]
  h.Observe(50);                               // bucket (10,100]
  h.Observe(1000);                             // overflow
  HistogramSnapshot s = h.Snapshot();
  // p50: target rank 50 of 98 in bucket (1,10] -> 1 + (50/98)*9 = 5.59 -> 6.
  EXPECT_EQ(s.Quantile(0.5), 6);
  // p98: rank 98 is the last observation of bucket (1,10] -> its bound.
  EXPECT_EQ(s.Quantile(0.98), 10);
  // p99: rank 99 is the only observation of (10,100] -> 10 + 1.0*90 = 100.
  EXPECT_EQ(s.Quantile(0.99), 100);
  EXPECT_EQ(s.Quantile(1.0), 101);  // overflow reports last bound + 1
  EXPECT_EQ(HistogramSnapshot().Quantile(0.5), 0);
}

TEST(HistogramTest, QuantilePinsInterpolationFormula) {
  // 10 observations, all in bucket (10,20]: the median must sit mid-bucket,
  // not snap to the bucket's upper bound.
  Histogram h({10, 20});
  for (int i = 0; i < 10; ++i) h.Observe(15);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Quantile(0.5), 15);   // 10 + (5/10)*10
  EXPECT_EQ(s.Quantile(0.1), 11);   // 10 + (1/10)*10
  EXPECT_EQ(s.Quantile(1.0), 20);   // 10 + (10/10)*10

  // First bucket interpolates from an implicit lower bound of 0.
  Histogram first({100});
  for (int i = 0; i < 4; ++i) first.Observe(1);
  EXPECT_EQ(first.Snapshot().Quantile(0.5), 50);  // 0 + (2/4)*100

  // A single observation lands at the full width of its bucket.
  Histogram one({10, 20});
  one.Observe(12);
  EXPECT_EQ(one.Snapshot().Quantile(0.5), 20);  // 10 + (1/1)*10
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("x.count");
  Counter* c2 = reg.GetCounter("x.count");
  EXPECT_EQ(c1, c2);
  c1->Increment(3);
  EXPECT_EQ(reg.Snapshot().counters.at("x.count"), 3);
}

TEST(MetricsRegistryTest, SnapshotAndResetUnderConcurrentIncrements) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("t.counter");
  Histogram* h = reg.GetHistogram("t.hist", {10, 100});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(i % 200);
      }
    });
  }
  go.store(true);
  // Interleaved snapshots must see monotonically plausible values, never
  // torn ones.
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = reg.Snapshot();
    int64_t v = snap.counters.at("t.counter");
    EXPECT_GE(v, 0);
    EXPECT_LE(v, int64_t{kThreads} * kPerThread);
  }
  for (auto& t : threads) t.join();
  MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.counters.at("t.counter"),
            int64_t{kThreads} * kPerThread);
  EXPECT_EQ(final_snap.histograms.at("t.hist").count,
            int64_t{kThreads} * kPerThread);

  reg.Reset();
  EXPECT_EQ(reg.Snapshot().counters.at("t.counter"), 0);
  c->Increment();  // handle survives Reset
  EXPECT_EQ(reg.Snapshot().counters.at("t.counter"), 1);
}

TEST(MetricsRegistryTest, ConcurrentHammerLosesNoUpdates) {
  // N threads hammer the same counter and histogram handles; every update
  // must land: exact totals for the counter value, histogram count, sum and
  // per-bucket tallies.
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("hammer.counter");
  Histogram* h = reg.GetHistogram("hammer.hist", {10, 100, 1000});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (!go.load()) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment(2);
        // Cycle through all four buckets deterministically: 5 -> (..10],
        // 50 -> (10,100], 500 -> (100,1000], 5000 -> overflow.
        static const int64_t kValues[4] = {5, 50, 500, 5000};
        h->Observe(kValues[(t + i) % 4]);
      }
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();

  constexpr int64_t kTotal = int64_t{kThreads} * kPerThread;
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("hammer.counter"), 2 * kTotal);
  const HistogramSnapshot& hs = snap.histograms.at("hammer.hist");
  EXPECT_EQ(hs.count, kTotal);
  // kPerThread divides by 4, so each thread contributes kPerThread/4 per
  // bucket regardless of its phase offset.
  EXPECT_EQ(hs.sum, (5 + 50 + 500 + 5000) * (kTotal / 4));
  ASSERT_EQ(hs.buckets.size(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(hs.buckets[i], kTotal / 4);
}

TEST(MetricsRegistryTest, JsonExposition) {
  MetricsRegistry reg;
  reg.GetCounter("a.count")->Increment(3);
  reg.GetGauge("g.value")->Set(7);
  reg.GetHistogram("h.us", {1, 10})->Observe(5);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.value\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h.us\":{\"count\":1,\"sum\":5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"le\":\"+Inf\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, PrometheusExposition) {
  MetricsRegistry reg;
  reg.GetCounter("a.count")->Increment(3);
  reg.GetHistogram("h.us", {1, 10})->Observe(5);
  reg.GetHistogram("h.us")->Observe(20);
  std::string prom = reg.ToPrometheusText();
  EXPECT_NE(prom.find("# TYPE a_count counter"), std::string::npos) << prom;
  EXPECT_NE(prom.find("a_count 3"), std::string::npos) << prom;
  // Cumulative buckets: le=10 has 1, +Inf has 2.
  EXPECT_NE(prom.find("h_us_bucket{le=\"10\"} 1"), std::string::npos) << prom;
  EXPECT_NE(prom.find("h_us_bucket{le=\"+Inf\"} 2"), std::string::npos)
      << prom;
  EXPECT_NE(prom.find("h_us_count 2"), std::string::npos) << prom;
}

TEST(TracerTest, SpansNestAndCloseInLifoOrder) {
  Tracer tracer(true);
  {
    Span outer = tracer.StartSpan("outer");
    {
      Span inner = tracer.StartSpan("inner");
    }
  }
  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  // Completion order: inner ends first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[1].parent_id, 0);
  EXPECT_GE(spans[1].dur_us, spans[0].dur_us);
  EXPECT_GE(spans[0].start_us, spans[1].start_us);
}

TEST(TracerTest, SiblingsShareAParent) {
  Tracer tracer(true);
  {
    Span parent = tracer.StartSpan("parent");
    { Span a = tracer.StartSpan("a"); }
    { Span b = tracer.StartSpan("b"); }
  }
  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].parent_id, spans[2].id);
  EXPECT_EQ(spans[1].parent_id, spans[2].id);
}

TEST(TracerTest, NestingIsPerThread) {
  Tracer tracer(true);
  Span root = tracer.StartSpan("root");
  std::thread worker([&] {
    // A span on another thread must not adopt this thread's open span.
    Span s = tracer.StartSpan("worker");
  });
  worker.join();
  root.End();
  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "worker");
  EXPECT_EQ(spans[0].parent_id, 0);
}

TEST(TracerTest, DisabledTracerCollectsNothing) {
  Tracer tracer(false);
  {
    Span s = tracer.StartSpan("ignored");
    EXPECT_FALSE(s.active());
  }
  EXPECT_TRUE(tracer.Spans().empty());
}

TEST(TracerTest, EndIsIdempotentAndMovesTransferOwnership) {
  Tracer tracer(true);
  Span a = tracer.StartSpan("moved");
  Span b = std::move(a);
  b.End();
  b.End();
  EXPECT_EQ(tracer.Spans().size(), 1u);
}

TEST(TracerTest, ChromeTraceJsonRendersCompleteEvents) {
  Tracer tracer(true);
  { Span s = tracer.StartSpan("phase \"x\""); }
  std::string json = tracer.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("phase \\\"x\\\""), std::string::npos) << json;
}

TEST(PhaseScopeTest, RecordsSpanAndLatencyHistogram) {
  Tracer tracer(true);
  MetricsRegistry reg;
  {
    PhaseScope scope(&tracer, &reg, "parse");
  }
  ASSERT_EQ(tracer.Spans().size(), 1u);
  EXPECT_EQ(tracer.Spans()[0].name, "parse");
  EXPECT_EQ(reg.Snapshot().histograms.at("phase.parse.us").count, 1);
}

TEST(PhaseScopeTest, NullSinksAreNoOps) {
  PhaseScope scope(nullptr, nullptr, "quiet");  // must not crash
}

}  // namespace
}  // namespace obs
}  // namespace xnfdb
