// Tests of the Database facade: statement dispatch, DDL validation, view
// management, scripts, server-call accounting, and EXPLAIN.

#include <gtest/gtest.h>

#include "api/database.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

TEST(DatabaseTest, CreateTableWithKeysAndInsert) {
  Database db;
  Result<Database::Outcome> r = db.Execute(
      "CREATE TABLE T (A INTEGER, B VARCHAR, PRIMARY KEY (A))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Result<Database::Outcome> ins =
      db.Execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins.value().kind, Database::Outcome::Kind::kAffected);
  EXPECT_EQ(ins.value().affected, 2u);
  EXPECT_EQ(db.catalog().PrimaryKeyColumn("T"), 0);
}

TEST(DatabaseTest, ForeignKeyToMissingTableFails) {
  Database db;
  Result<Database::Outcome> r = db.Execute(
      "CREATE TABLE T (A INTEGER, FOREIGN KEY (A) REFERENCES GHOST (G))");
  EXPECT_FALSE(r.ok());
}

TEST(DatabaseTest, CreateViewValidatesBody) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  // References a missing column: rejected at CREATE time.
  EXPECT_FALSE(db.Execute("CREATE VIEW V AS SELECT NOPE FROM T").ok());
  EXPECT_FALSE(db.catalog().HasView("V"));
  ASSERT_TRUE(db.Execute("CREATE VIEW V AS SELECT A FROM T").ok());
  // Duplicate names rejected.
  EXPECT_FALSE(db.Execute("CREATE VIEW V AS SELECT A FROM T").ok());
  ASSERT_TRUE(db.Execute("DROP VIEW V").ok());
  EXPECT_FALSE(db.Execute("DROP VIEW V").ok());
}

TEST(DatabaseTest, ScriptStopsAtFirstError) {
  Database db;
  Result<size_t> r = db.ExecuteScript(
      "CREATE TABLE T (A INTEGER); INSERT INTO GHOST VALUES (1); "
      "CREATE TABLE U (B INTEGER)");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(db.catalog().HasTable("T"));
  EXPECT_FALSE(db.catalog().HasTable("U"));
}

TEST(DatabaseTest, ServerCallAccounting) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  db.ResetServerCalls();
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1)").ok());
  ASSERT_TRUE(db.Query("SELECT * FROM T").ok());
  EXPECT_EQ(db.server_calls(), 2);
}

TEST(DatabaseTest, DirectXnfStatementThroughExecute) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<Database::Outcome> r =
      db.Execute("OUT OF x AS EMP TAKE *");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().kind, Database::Outcome::Kind::kRows);
  EXPECT_EQ(r.value().result.RowCount(0), 4u);
}

TEST(DatabaseTest, ExplainSqlQueryShowsAccessPath) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<std::string> plan =
      db.Explain("SELECT ENAME FROM EMP WHERE ENO = 10");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // ENO is the PK: the plan must use the index.
  EXPECT_NE(plan.value().find("IndexScan(EMP.ENO = 10)"), std::string::npos)
      << plan.value();
}

TEST(DatabaseTest, ExplainXnfShowsAllOutputStreams) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<std::string> plan = db.Explain(testing_util::kDepsArcQuery);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const std::string& p = plan.value();
  for (const char* output :
       {"output XDEPT", "output XEMP", "output XSKILLS",
        "output EMPLOYMENT [connection]", "output PROJPROPERTY"}) {
    EXPECT_NE(p.find(output), std::string::npos) << output << "\n" << p;
  }
  // Shared connection boxes appear as spool reads; Table 1's op counts are
  // reported up front.
  EXPECT_NE(p.find("SpoolRead"), std::string::npos) << p;
  EXPECT_NE(p.find("joins=6"), std::string::npos) << p;
}

TEST(DatabaseTest, ExplainJoinShowsHashJoin) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<std::string> plan = db.Explain(
      "SELECT e.ENO FROM EMP e, DEPT d WHERE e.EDNO = d.DNO");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("HashJoin"), std::string::npos)
      << plan.value();
  // With hash joins disabled the same query plans nested loops.
  ExecOptions nl;
  nl.plan.use_hash_join = false;
  Result<std::string> plan2 = db.Explain(
      "SELECT e.ENO FROM EMP e, DEPT d WHERE e.EDNO = d.DNO", {}, nl);
  ASSERT_TRUE(plan2.ok());
  EXPECT_NE(plan2.value().find("NestedLoopJoin"), std::string::npos)
      << plan2.value();
}

TEST(DatabaseTest, ExplainRecursiveQueryReportsFixpoint) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(R"sql(
    CREATE TABLE PART (PNO INTEGER);
    CREATE TABLE BOM (A INTEGER, C INTEGER);
  )sql")
                  .ok());
  Result<std::string> plan = db.Explain(R"sql(
    OUT OF root AS (SELECT * FROM PART WHERE PNO = 1),
           xpart AS PART,
           anchor AS (RELATE root VIA R, xpart USING BOM b
                      WHERE root.pno = b.a AND b.c = xpart.pno),
           sub AS (RELATE xpart VIA USES, xpart USING BOM b
                   WHERE uses.pno = b.a AND b.c = xpart.pno)
    TAKE *
  )sql");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("fixpoint"), std::string::npos);
}

TEST(DatabaseTest, DropTableInvalidatesDependentViewAtUse) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW V AS SELECT A FROM T").ok());
  ASSERT_TRUE(db.Execute("DROP TABLE T").ok());
  // The view is resolved lazily; using it now fails cleanly.
  EXPECT_FALSE(db.Query("SELECT * FROM V").ok());
}

TEST(DatabaseTest, UpdateDeleteWithoutWhereAffectAllRows) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                     "CREATE TABLE T (A INTEGER);"
                     "INSERT INTO T VALUES (1), (2), (3)")
                  .ok());
  Result<Database::Outcome> upd = db.Execute("UPDATE T SET A = 0");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd.value().affected, 3u);
  Result<Database::Outcome> del = db.Execute("DELETE FROM T");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del.value().affected, 3u);
  EXPECT_EQ(db.Query("SELECT * FROM T").value().rows().size(), 0u);
}

}  // namespace
}  // namespace xnfdb
