// Tests of the leveled JSON-lines logger (common/log.h) and of the
// Database slow-query log built on top of it: one structured line per slow
// statement, silence for fast ones and at level off.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/database.h"
#include "common/log.h"

namespace xnfdb {
namespace {

// Captures lines emitted through Logger::Default() for the scope's
// lifetime, saving/restoring the level around it.
class ScopedLogCapture {
 public:
  ScopedLogCapture() : saved_level_(Logger::Default().level()) {
    Logger::Default().SetSink(
        [this](const std::string& line) { lines_.push_back(line); });
  }
  ~ScopedLogCapture() {
    Logger::Default().SetSink(nullptr);
    Logger::Default().set_level(saved_level_);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  LogLevel saved_level_;
  std::vector<std::string> lines_;
};

TEST(LogTest, ParseAndNameRoundTrip) {
  EXPECT_EQ(ParseLogLevel("trace"), LogLevel::kTrace);
  EXPECT_EQ(ParseLogLevel("ERROR"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::kOff);
  EXPECT_EQ(ParseLogLevel("bogus"), LogLevel::kWarn);  // default
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
}

TEST(LogTest, LevelsBelowThresholdAreSilent) {
  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kWarn);
  Logger::Default().Log(LogLevel::kDebug, "test", "dropped");
  Logger::Default().Log(LogLevel::kInfo, "test", "dropped too");
  EXPECT_TRUE(capture.lines().empty());
  Logger::Default().Log(LogLevel::kWarn, "test", "kept");
  Logger::Default().Log(LogLevel::kError, "test", "kept too");
  EXPECT_EQ(capture.lines().size(), 2u);
  EXPECT_FALSE(Logger::Default().Enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::Default().Enabled(LogLevel::kError));
}

TEST(LogTest, OffSilencesEverything) {
  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kOff);
  Logger::Default().Log(LogLevel::kError, "test", "dropped");
  EXPECT_TRUE(capture.lines().empty());
}

TEST(LogTest, LinesAreJsonWithChannelAndFields) {
  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kInfo);
  Logger::Default().Log(LogLevel::kInfo, "chan", "hello \"world\"",
                        {LogField::S("who", "x\ny"), LogField::N("n", 42)});
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"channel\":\"chan\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"msg\":\"hello \\\"world\\\"\""), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"who\":\"x\\ny\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"n\":42"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ts_us\":"), std::string::npos) << line;
}

TEST(SlowQueryLogTest, SlowStatementEmitsExactlyOneLineWithTextAndPlan) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1), (2), (3)").ok());

  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kWarn);
  db.SetSlowQueryThreshold(0);  // everything with elapsed > 0 is "slow"
  ASSERT_TRUE(db.Query("SELECT A FROM T WHERE A = 2").ok());
  ASSERT_EQ(capture.lines().size(), 1u) << "expected exactly one slow line";
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("\"channel\":\"slowlog\""), std::string::npos) << line;
  // Normalized text: the literal 2 must have become ?.
  EXPECT_NE(line.find("WHERE (A = ?)"), std::string::npos) << line;
  EXPECT_EQ(line.find("A = 2"), std::string::npos) << line;
  // Phase timings and the EXPLAIN ANALYZE plan ride along.
  EXPECT_NE(line.find("\"total_us\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"compile_us\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"plan\":\""), std::string::npos) << line;
  EXPECT_NE(line.find("Scan"), std::string::npos) << line;
  EXPECT_NE(line.find("\"digest\":\""), std::string::npos) << line;
}

TEST(SlowQueryLogTest, FastStatementsEmitNothing) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());

  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kWarn);
  db.SetSlowQueryThreshold(60LL * 1000 * 1000);  // one minute: never slow
  ASSERT_TRUE(db.Query("SELECT A FROM T").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1)").ok());
  EXPECT_TRUE(capture.lines().empty());

  // Disarmed (the default -1): silent even for "slow" statements.
  db.SetSlowQueryThreshold(-1);
  ASSERT_TRUE(db.Query("SELECT A FROM T").ok());
  EXPECT_TRUE(capture.lines().empty());
}

TEST(SlowQueryLogTest, LogLevelOffSilencesSlowLog) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());

  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kOff);
  db.SetSlowQueryThreshold(0);
  ASSERT_TRUE(db.Query("SELECT A FROM T").ok());
  EXPECT_TRUE(capture.lines().empty());
  // The statement still landed in sys$statements despite the silent log.
  EXPECT_EQ(db.statement_stats().size(), 2u);  // CREATE TABLE + SELECT
}

}  // namespace
}  // namespace xnfdb
