// Tests of the health/alert engine (obs/health.h): streak thresholds,
// absence rules, the alert-transition ring — and the end-to-end acceptance
// path: a synthetic writeback-failure burst observed through a Database's
// sampler flips the built-in alert OK -> FIRING -> OK with exactly one
// structured "health" log line (and one flight-recorder event) per
// transition, all visible through SYS$HEALTH / SYS$ALERTS / SYS$EVENTS.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/database.h"
#include "common/log.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/sampler.h"

namespace xnfdb {
namespace {

using obs::AlertTransition;
using obs::HealthEngine;
using obs::HealthRule;
using obs::MetricsSampler;
using obs::RuleState;

std::vector<MetricsSampler::Row> Sample(int64_t ts_us, const std::string& name,
                                        int64_t value, int64_t delta) {
  MetricsSampler::Row r;
  r.sample_ts_us = ts_us;
  r.name = name;
  r.kind = "counter";
  r.value = value;
  r.delta = delta;
  return {r};
}

HealthRule DeltaRule(const std::string& name, const std::string& series,
                     int for_samples = 1, int clear_samples = 1) {
  HealthRule r;
  r.name = name;
  r.series = series;
  r.field = HealthRule::Field::kDelta;
  r.cmp = HealthRule::Cmp::kGt;
  r.bound = 0;
  r.for_samples = for_samples;
  r.clear_samples = clear_samples;
  return r;
}

TEST(HealthEngineTest, SingleSampleBreachFiresAndClears) {
  HealthEngine health;
  health.AddRule(DeltaRule("failures", "x.failures"));
  EXPECT_TRUE(health.healthy());

  health.OnSample(Sample(100, "x.failures", 1, 1));
  EXPECT_FALSE(health.healthy());
  std::vector<RuleState> snap = health.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].state, "FIRING");
  EXPECT_EQ(snap[0].since_us, 100);
  EXPECT_EQ(snap[0].last_value, 1.0);
  EXPECT_EQ(snap[0].breaches, 1);

  health.OnSample(Sample(200, "x.failures", 1, 0));
  EXPECT_TRUE(health.healthy());
  snap = health.Snapshot();
  EXPECT_EQ(snap[0].state, "OK");
  EXPECT_EQ(snap[0].transitions, 2);

  std::vector<AlertTransition> alerts = health.Alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].from, "OK");
  EXPECT_EQ(alerts[0].to, "FIRING");
  EXPECT_EQ(alerts[0].seq, 1);
  EXPECT_EQ(alerts[1].from, "FIRING");
  EXPECT_EQ(alerts[1].to, "OK");
  EXPECT_EQ(alerts[1].seq, 2);
}

TEST(HealthEngineTest, StreakThresholdsDebounceFlapping) {
  HealthEngine health;
  health.AddRule(DeltaRule("failures", "x.failures", /*for_samples=*/2,
                           /*clear_samples=*/3));
  // One breaching tick is not enough.
  health.OnSample(Sample(1, "x.failures", 1, 1));
  EXPECT_TRUE(health.healthy());
  // A healthy tick resets the breach streak.
  health.OnSample(Sample(2, "x.failures", 1, 0));
  health.OnSample(Sample(3, "x.failures", 2, 1));
  EXPECT_TRUE(health.healthy());
  // Two consecutive breaches fire.
  health.OnSample(Sample(4, "x.failures", 3, 1));
  EXPECT_FALSE(health.healthy());
  // Two healthy ticks do not clear at clear_samples=3...
  health.OnSample(Sample(5, "x.failures", 3, 0));
  health.OnSample(Sample(6, "x.failures", 3, 0));
  EXPECT_FALSE(health.healthy());
  // ...and a breach in between restarts the clear streak.
  health.OnSample(Sample(7, "x.failures", 4, 1));
  health.OnSample(Sample(8, "x.failures", 4, 0));
  health.OnSample(Sample(9, "x.failures", 4, 0));
  EXPECT_FALSE(health.healthy());
  health.OnSample(Sample(10, "x.failures", 4, 0));
  EXPECT_TRUE(health.healthy());
  EXPECT_EQ(health.Alerts().size(), 2u);
}

TEST(HealthEngineTest, MissingSeriesIsHealthyForThresholdRules) {
  HealthEngine health;
  health.AddRule(DeltaRule("failures", "x.failures"));
  health.OnSample(Sample(1, "x.failures", 1, 1));
  EXPECT_FALSE(health.healthy());
  // The series vanishing counts as healthy ticks, so the alert clears.
  health.OnSample(Sample(2, "unrelated", 0, 0));
  EXPECT_TRUE(health.healthy());
}

TEST(HealthEngineTest, AbsenceRuleFiresWhenSeriesVanishes) {
  HealthEngine health;
  HealthRule r;
  r.name = "heartbeat";
  r.series = "x.heartbeat";
  r.cmp = HealthRule::Cmp::kAbsent;
  health.AddRule(std::move(r));
  health.OnSample(Sample(1, "x.heartbeat", 5, 1));
  EXPECT_TRUE(health.healthy());
  health.OnSample(Sample(2, "unrelated", 0, 0));
  EXPECT_FALSE(health.healthy());
  health.OnSample(Sample(3, "x.heartbeat", 6, 1));
  EXPECT_TRUE(health.healthy());
}

TEST(HealthEngineTest, SinkSeesEveryTransitionExactlyOnce) {
  HealthEngine health;
  health.AddRule(DeltaRule("failures", "x.failures"));
  std::vector<AlertTransition> seen;
  health.SetAlertSink(
      [&seen](const AlertTransition& a) { seen.push_back(a); });
  health.OnSample(Sample(1, "x.failures", 1, 1));  // fires
  health.OnSample(Sample(2, "x.failures", 2, 1));  // still firing: no call
  health.OnSample(Sample(3, "x.failures", 2, 0));  // clears
  health.OnSample(Sample(4, "x.failures", 2, 0));  // still OK: no call
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].to, "FIRING");
  EXPECT_EQ(seen[0].value, 1.0);
  EXPECT_EQ(seen[1].to, "OK");
}

TEST(HealthEngineTest, AlertRingIsBounded) {
  HealthEngine health(/*alert_capacity=*/4);
  health.AddRule(DeltaRule("failures", "x.failures"));
  for (int i = 0; i < 6; ++i) {
    health.OnSample(Sample(2 * i + 1, "x.failures", i + 1, 1));
    health.OnSample(Sample(2 * i + 2, "x.failures", i + 1, 0));
  }
  std::vector<AlertTransition> alerts = health.Alerts();
  ASSERT_EQ(alerts.size(), 4u);
  EXPECT_EQ(alerts.back().seq, 12);
  EXPECT_EQ(alerts.front().seq, 9);
}

TEST(HealthEngineTest, ReportJsonCarriesStatusAndRules) {
  HealthEngine health;
  for (HealthRule& rule : HealthEngine::BuiltinRules()) {
    health.AddRule(std::move(rule));
  }
  std::string report = health.ReportJson();
  EXPECT_NE(report.find("\"status\":\"ok\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"writeback_failures\""), std::string::npos);
  EXPECT_NE(report.find("\"crash_reports\""), std::string::npos);

  health.OnSample(Sample(1, "writeback.failures", 1, 1));
  report = health.ReportJson();
  EXPECT_NE(report.find("\"status\":\"degraded\""), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"state\":\"FIRING\""), std::string::npos);
}

// --- end-to-end through the Database --------------------------------------

class ScopedLogCapture {
 public:
  ScopedLogCapture() : saved_level_(Logger::Default().level()) {
    Logger::Default().SetSink(
        [this](const std::string& line) { lines_.push_back(line); });
    Logger::Default().FlushCoalesced();
  }
  ~ScopedLogCapture() {
    Logger::Default().SetSink(nullptr);
    Logger::Default().set_level(saved_level_);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  LogLevel saved_level_;
  std::vector<std::string> lines_;
};

// The acceptance scenario: a synthetic burst of write-back failures flips
// the built-in alert FIRING and back across sampler ticks, with exactly one
// "health" log line per transition.
TEST(DatabaseHealthTest, WritebackFailureBurstFlipsTheAlertOnceEachWay) {
  Database db;
  // Baseline tick: absorbs whatever the shared counters already hold so
  // the deltas below are exactly the burst.
  db.sampler().SampleNow();

  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kWarn);

  db.metrics().GetCounter("writeback.failures")->Increment();
  db.metrics().GetCounter("writeback.failures")->Increment();
  db.sampler().SampleNow();
  EXPECT_FALSE(db.health().healthy());

  // The condition persisting (no new failures, still FIRING -> clears at
  // the next tick) must not re-log.
  db.sampler().SampleNow();
  EXPECT_TRUE(db.health().healthy());

  std::vector<std::string> health_lines;
  for (const std::string& line : capture.lines()) {
    if (line.find("\"channel\":\"health\"") != std::string::npos) {
      health_lines.push_back(line);
    }
  }
  ASSERT_EQ(health_lines.size(), 2u) << "one line per transition";
  EXPECT_NE(health_lines[0].find("alert firing"), std::string::npos)
      << health_lines[0];
  EXPECT_NE(health_lines[0].find("writeback_failures"), std::string::npos);
  EXPECT_NE(health_lines[1].find("alert resolved"), std::string::npos)
      << health_lines[1];

  // The log feed gave the flight recorder the same two events.
  int health_events = 0;
  for (const obs::FlightRecorder::Event& e : db.events().Snapshot()) {
    if (e.category == "health") health_events += static_cast<int>(e.repeated);
  }
  EXPECT_EQ(health_events, 2);

  // Both transitions are on the alert ledger.
  std::vector<AlertTransition> alerts = db.health().Alerts();
  ASSERT_GE(alerts.size(), 2u);
  const AlertTransition& fired = alerts[alerts.size() - 2];
  const AlertTransition& cleared = alerts[alerts.size() - 1];
  EXPECT_EQ(fired.rule, "writeback_failures");
  EXPECT_EQ(fired.to, "FIRING");
  EXPECT_EQ(fired.value, 2.0);
  EXPECT_EQ(cleared.to, "OK");
}

TEST(DatabaseHealthTest, HealthViewsAreQueryableThroughSql) {
  Database db;
  db.sampler().SampleNow();
  db.metrics().GetCounter("writeback.failures")->Increment();
  db.sampler().SampleNow();

  auto health = db.Query(
      "SELECT RULE, STATE FROM SYS$HEALTH WHERE RULE = 'writeback_failures'");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  ASSERT_EQ(health.value().rows().size(), 1u);

  auto alerts = db.Query(
      "SELECT RULE, FROM_STATE, TO_STATE FROM SYS$ALERTS "
      "WHERE TO_STATE = 'FIRING'");
  ASSERT_TRUE(alerts.ok()) << alerts.status().ToString();
  EXPECT_GE(alerts.value().rows().size(), 1u);

  auto events = db.Query(
      "SELECT SEQ, CATEGORY, MESSAGE FROM SYS$EVENTS "
      "WHERE CATEGORY = 'health'");
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  EXPECT_GE(events.value().rows().size(), 1u);

  std::string report = db.HealthReport();
  EXPECT_NE(report.find("\"status\":"), std::string::npos) << report;
}

TEST(DatabaseHealthTest, QueryLifecycleLandsInTheFlightRecorder) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1), (2)").ok());
  const int64_t before = db.events().last_seq();
  ASSERT_TRUE(db.Query("SELECT A FROM T").ok());
  bool saw_start = false;
  bool saw_end = false;
  for (const obs::FlightRecorder::Event& e : db.events().Snapshot()) {
    if (e.seq <= before || e.category != "query") continue;
    if (e.message == "query start") saw_start = true;
    if (e.message == "query end") {
      saw_end = true;
      EXPECT_NE(e.detail.find("status=ok"), std::string::npos) << e.detail;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_end);
}

}  // namespace
}  // namespace xnfdb
