// Corruption-resilience and crash-safety tests of the v2 persistence
// formats (acceptance criteria of the durability work):
//
//  * a valid database/cache file truncated at every line boundary (and at
//    sampled mid-line offsets) must be rejected with a non-OK status —
//    never crash, never load partial data silently;
//  * a byte flipped anywhere in the file must be rejected (CRC sections +
//    whole-body footer);
//  * a save interrupted at any injected failure point (short write, torn
//    write, fsync failure, rename failure) leaves the previous on-disk
//    version loadable and intact — the atomic-replace property;
//  * version-1 files written by the previous format still load.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "cache/serialize.h"
#include "cache/xnf_cache.h"
#include "common/fault_env.h"
#include "storage/persist.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Builds the paper database plus stored views, the workload every test
// here corrupts and reloads.
void BuildDb(Database* db) {
  ASSERT_TRUE(testing_util::LoadPaperDb(db).ok());
  ASSERT_TRUE(db->Execute("CREATE VIEW DEPS AS " +
                          std::string(testing_util::kDepsArcQuery))
                  .ok());
  ASSERT_TRUE(
      db->Execute("CREATE VIEW ARCD AS SELECT * FROM DEPT WHERE LOC = 'ARC'")
          .ok());
}

std::string SavedCatalog(Database* db, int version = kPersistFormatVersion) {
  std::stringstream out;
  EXPECT_TRUE(SaveCatalog(db->catalog(), out, version).ok());
  return out.str();
}

Status TryLoadCatalog(const std::string& contents) {
  std::istringstream in(contents);
  Catalog catalog;
  return LoadCatalog(in, &catalog);
}

std::string SavedCache(Database* db, int version = kCacheFormatVersion) {
  auto cache =
      XNFCache::Evaluate(db, testing_util::kDepsArcQuery).value();
  std::stringstream out;
  EXPECT_TRUE(SaveWorkspace(cache->workspace(), out, version).ok());
  return out.str();
}

Status TryLoadCache(const std::string& contents) {
  std::istringstream in(contents);
  Result<std::unique_ptr<Workspace>> ws = LoadWorkspace(in);
  return ws.ok() ? Status::Ok() : ws.status();
}

// Every prefix ending at a line boundary, plus every 17th mid-line offset,
// must fail to load (the full file is excluded — it is valid).
template <typename LoadFn>
void ExpectAllTruncationsRejected(const std::string& contents, LoadFn load) {
  std::vector<size_t> cuts;
  for (size_t i = 0; i + 1 < contents.size(); ++i) {
    if (contents[i] == '\n') cuts.push_back(i + 1);  // keep the newline
    if (i % 17 == 0) cuts.push_back(i);
  }
  cuts.push_back(0);
  for (size_t cut : cuts) {
    Status s = load(contents.substr(0, cut));
    EXPECT_FALSE(s.ok()) << "truncation at byte " << cut
                         << " loaded successfully";
  }
}

// Every single-byte flip must fail to load. Three masks: 0x01 turns digits
// into adjacent digits (counts/lengths drift), 0x40 flips letters/case,
// 0x80 makes bytes non-ASCII.
template <typename LoadFn>
void ExpectAllByteFlipsRejected(const std::string& contents, LoadFn load) {
  for (uint8_t mask : {0x01, 0x40, 0x80}) {
    for (size_t i = 0; i < contents.size(); ++i) {
      std::string flipped = contents;
      flipped[i] ^= static_cast<char>(mask);
      Status s = load(flipped);
      EXPECT_FALSE(s.ok()) << "flip of byte " << i << " with mask "
                           << static_cast<int>(mask)
                           << " loaded successfully";
    }
  }
}

TEST(CorruptionTest, CatalogTruncationsRejected) {
  Database db;
  BuildDb(&db);
  ExpectAllTruncationsRejected(SavedCatalog(&db), TryLoadCatalog);
}

TEST(CorruptionTest, CatalogByteFlipsRejected) {
  Database db;
  BuildDb(&db);
  ExpectAllByteFlipsRejected(SavedCatalog(&db), TryLoadCatalog);
}

TEST(CorruptionTest, CacheTruncationsRejected) {
  Database db;
  BuildDb(&db);
  ExpectAllTruncationsRejected(SavedCache(&db), TryLoadCache);
}

TEST(CorruptionTest, CacheByteFlipsRejected) {
  Database db;
  BuildDb(&db);
  ExpectAllByteFlipsRejected(SavedCache(&db), TryLoadCache);
}

TEST(CorruptionTest, CorruptionIsIoError) {
  Database db;
  BuildDb(&db);
  std::string good = SavedCatalog(&db);
  std::string flipped = good;
  flipped[good.size() / 2] ^= 0x40;
  EXPECT_EQ(TryLoadCatalog(flipped).code(), StatusCode::kIoError);
  std::string cache = SavedCache(&db);
  flipped = cache;
  flipped[cache.size() / 2] ^= 0x40;
  EXPECT_EQ(TryLoadCache(flipped).code(), StatusCode::kIoError);
}

TEST(CorruptionTest, HostileLengthsRejectedWithoutAllocation) {
  // A section/string/view-definition length far beyond the file size must
  // be rejected up front, not fed to std::string(len, ...).
  EXPECT_FALSE(TryLoadCatalog("XNFDB 2\n"
                              "SECTION TABLES 1 123456789012 00000000\n"
                              "TABLES 1\n")
                   .ok());
  EXPECT_FALSE(TryLoadCatalog("XNFDB 1\n"
                              "TABLES 0\n"
                              "VIEWS 1\n"
                              "VIEW V 0 987654321987\nSELECT\n")
                   .ok());
  EXPECT_FALSE(TryLoadCache("XNFCACHE 1\n"
                            "COMPONENTS 1\n"
                            "COMPONENT M 1 1\n"
                            "COL A 3\n"
                            "ROW 0\n"
                            "S 99999999999 x\n")
                   .ok());
}

TEST(CorruptionTest, V1FilesStillLoad) {
  Database db;
  BuildDb(&db);

  std::string v1 = SavedCatalog(&db, /*version=*/1);
  ASSERT_EQ(v1.substr(0, 8), "XNFDB 1\n");
  std::istringstream in(v1);
  Database restored;
  ASSERT_TRUE(LoadCatalog(in, &restored.catalog()).ok());
  EXPECT_EQ(restored.catalog().TableNames(), db.catalog().TableNames());
  EXPECT_TRUE(restored.catalog().HasView("DEPS"));
  Result<QueryResult> co = restored.Query("DEPS");
  ASSERT_TRUE(co.ok()) << co.status().ToString();

  std::string v1_cache = SavedCache(&db, /*version=*/1);
  ASSERT_EQ(v1_cache.substr(0, 11), "XNFCACHE 1\n");
  std::istringstream cache_in(v1_cache);
  Result<std::unique_ptr<Workspace>> ws = LoadWorkspace(cache_in);
  ASSERT_TRUE(ws.ok()) << ws.status().ToString();
  EXPECT_EQ(ws.value()->component("XEMP").value()->size(), 3u);
}

// The atomic-replace property: for an exhaustive sweep of injected failure
// points, an interrupted save leaves the previous on-disk database intact
// and loadable.
TEST(CorruptionTest, InterruptedCatalogSaveKeepsPreviousVersion) {
  FaultInjectionEnv env;
  Database db(&env);
  BuildDb(&db);
  std::string path = TestPath("corruption_atomic.db");
  ASSERT_TRUE(db.SaveTo(path).ok());

  // Grow the database so the next save writes different, longer content.
  ASSERT_TRUE(db.Execute("INSERT INTO SKILLS VALUES (6000, 's6')").ok());
  const size_t content_size = SavedCatalog(&db).size();

  auto expect_previous_version_intact = [&](const std::string& context) {
    Database restored;
    Status s = restored.LoadFrom(path);
    ASSERT_TRUE(s.ok()) << context << ": " << s.ToString();
    // The old version has 5 skills (s6 was inserted after the good save).
    Result<QueryResult> rows =
        restored.Query("SELECT COUNT(*) FROM SKILLS");
    ASSERT_TRUE(rows.ok()) << context;
    EXPECT_EQ(rows.value().rows()[0][0].AsInt(), 5) << context;
  };

  // Short and torn writes at failure points across the whole file.
  for (bool torn : {false, true}) {
    for (size_t budget = 0; budget < content_size;
         budget += 1 + content_size / 64) {
      env.FailAppendsAfterBytes(static_cast<int64_t>(budget), torn);
      EXPECT_FALSE(db.SaveTo(path).ok());
      env.ClearFaults();
      expect_previous_version_intact(
          "append budget " + std::to_string(budget) +
          (torn ? " torn" : " short"));
    }
  }

  env.FailNextSyncs(1);
  EXPECT_FALSE(db.SaveTo(path).ok());
  env.ClearFaults();
  expect_previous_version_intact("fsync failure");

  env.FailNextRenames(1);
  EXPECT_FALSE(db.SaveTo(path).ok());
  env.ClearFaults();
  expect_previous_version_intact("rename failure");

  // No temp files may leak from the failed attempts.
  int leftovers = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(::testing::TempDir())) {
    if (entry.path().filename().string().find("corruption_atomic.db.tmp") !=
        std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0);

  // With faults cleared, the save commits the new version.
  ASSERT_TRUE(db.SaveTo(path).ok());
  Database restored;
  ASSERT_TRUE(restored.LoadFrom(path).ok());
  Result<QueryResult> rows = restored.Query("SELECT COUNT(*) FROM SKILLS");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().rows()[0][0].AsInt(), 6);
  env.RemoveFile(path);
}

TEST(CorruptionTest, InterruptedCacheSaveKeepsPreviousVersion) {
  FaultInjectionEnv env;
  Database db(&env);
  BuildDb(&db);
  XNFCache::Options options;
  options.env = &env;
  auto cache = XNFCache::Evaluate(&db, testing_util::kDepsArcQuery, options)
                   .value();
  std::string path = TestPath("corruption_atomic.xc");
  ASSERT_TRUE(cache->SaveTo(path).ok());
  const size_t content_size = SavedCache(&db).size();

  for (bool torn : {false, true}) {
    for (size_t budget = 0; budget < content_size;
         budget += 1 + content_size / 32) {
      env.FailAppendsAfterBytes(static_cast<int64_t>(budget), torn);
      EXPECT_FALSE(cache->SaveTo(path).ok());
      env.ClearFaults();
      Result<std::unique_ptr<XNFCache>> restored = XNFCache::LoadFrom(
          &db, path, testing_util::kDepsArcQuery, options);
      ASSERT_TRUE(restored.ok())
          << "budget " << budget << ": " << restored.status().ToString();
      EXPECT_EQ(restored.value()->workspace().component("XEMP").value()->size(),
                3u);
    }
  }
  env.RemoveFile(path);
}

TEST(CorruptionTest, ReadCorruptionDetectedThroughEnv) {
  FaultInjectionEnv env;
  Database db(&env);
  BuildDb(&db);
  std::string path = TestPath("corruption_read.db");
  ASSERT_TRUE(db.SaveTo(path).ok());

  Database intact;
  ASSERT_TRUE(LoadCatalogFromFile(path, &intact.catalog(), &env).ok());

  // A flipped byte in the middle of the file is caught by the CRCs.
  env.CorruptReadAt(static_cast<int64_t>(SavedCatalog(&db).size() / 2));
  Database corrupted;
  Status s = LoadCatalogFromFile(path, &corrupted.catalog(), &env);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  env.ClearFaults();
  env.RemoveFile(path);
}

}  // namespace
}  // namespace xnfdb
