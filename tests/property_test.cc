// Property-based differential tests: on randomized databases, all
// evaluation strategies must agree —
//  * XNF: shared rewrite == unshared rewrite == fixpoint evaluator,
//  * SQL: every planner configuration (hash join / nested loops, index /
//    scan, hashed / naive exists) returns the same answer,
//  * rewrite: with and without the E-to-F conversion.
//
// Seeds are swept with a parameterized suite (TEST_P).

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "api/database.h"
#include "parser/parser.h"
#include "semantics/builder.h"
#include "xnf/compiler.h"
#include "xnf/fixpoint.h"

namespace xnfdb {
namespace {

// Builds a randomized dept/emp/skills database; sizes scale mildly with the
// seed so different shapes (empty children, heavy fan-out) are exercised.
void LoadRandomDb(Database* db, uint32_t seed) {
  std::mt19937 rng(seed);
  ASSERT_TRUE(db->ExecuteScript(R"sql(
    CREATE TABLE DEPT (DNO INTEGER, LOC VARCHAR, PRIMARY KEY (DNO));
    CREATE TABLE EMP (ENO INTEGER, EDNO INTEGER, SAL INTEGER,
                      PRIMARY KEY (ENO));
    CREATE TABLE SKILLS (SNO INTEGER, PRIMARY KEY (SNO));
    CREATE TABLE EMPSKILLS (ESENO INTEGER, ESSNO INTEGER);
  )sql")
                  .ok());
  int ndept = 2 + static_cast<int>(rng() % 6);
  int nemp = static_cast<int>(rng() % 40);
  int nskills = 1 + static_cast<int>(rng() % 10);
  int nmap = static_cast<int>(rng() % 60);
  const char* locs[] = {"ARC", "YKT", "ALM"};
  for (int d = 1; d <= ndept; ++d) {
    ASSERT_TRUE(db->Execute("INSERT INTO DEPT VALUES (" + std::to_string(d) +
                            ", '" + locs[rng() % 3] + "')")
                    .ok());
  }
  for (int e = 1; e <= nemp; ++e) {
    // Some employees point at nonexistent departments, some have NULL.
    std::string dno = (rng() % 10 == 0)
                          ? "NULL"
                          : std::to_string(1 + rng() % (ndept + 2));
    ASSERT_TRUE(db->Execute("INSERT INTO EMP VALUES (" + std::to_string(e) +
                            ", " + dno + ", " +
                            std::to_string(1000 + rng() % 9000) + ")")
                    .ok());
  }
  for (int s = 1; s <= nskills; ++s) {
    ASSERT_TRUE(
        db->Execute("INSERT INTO SKILLS VALUES (" + std::to_string(s) + ")")
            .ok());
  }
  for (int m = 0; m < nmap; ++m) {
    ASSERT_TRUE(db->Execute("INSERT INTO EMPSKILLS VALUES (" +
                            std::to_string(1 + rng() % (nemp + 1)) + ", " +
                            std::to_string(1 + rng() % nskills) + ")")
                    .ok());
  }
}

const char* kXnfQuery = R"sql(
  OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
         xemp AS (SELECT ENO, EDNO FROM EMP WHERE SAL > 2000),
         xskills AS SKILLS,
         employment AS (RELATE xdept VIA EMPLOYS, xemp
                        WHERE xdept.dno = xemp.edno),
         property AS (RELATE xemp VIA HAS, xskills USING EMPSKILLS es
                      WHERE xemp.eno = es.eseno AND es.essno = xskills.sno)
  TAKE *
)sql";

std::set<std::string> Canonical(const QueryResult& result) {
  std::set<std::string> out;
  std::map<std::pair<int, TupleId>, std::string> rows;
  std::map<std::string, int> by_name;
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    by_name[result.outputs[i].name] = static_cast<int>(i);
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind == StreamItem::Kind::kRow) {
      rows[{item.output, item.tid}] = TupleToString(item.values);
      out.insert(result.outputs[item.output].name + ":" +
                 TupleToString(item.values));
    }
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind != StreamItem::Kind::kConnection) continue;
    const OutputDesc& desc = result.outputs[item.output];
    std::string s = desc.name + ":";
    for (size_t pi = 0; pi < item.tids.size(); ++pi) {
      s += rows[{by_name[desc.partner_names[pi]], item.tids[pi]}];
    }
    out.insert(std::move(s));
  }
  return out;
}

class XnfPropertyTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, XnfPropertyTest,
                         ::testing::Range(uint32_t{1}, uint32_t{13}));

TEST_P(XnfPropertyTest, AllXnfStrategiesAgree) {
  Database db;
  LoadRandomDb(&db, GetParam());
  Result<std::unique_ptr<ast::XnfQuery>> q = ParseXnfQuery(kXnfQuery);
  ASSERT_TRUE(q.ok());

  CompileOptions shared;
  CompileOptions unshared;
  unshared.xnf.share_connection_boxes = false;

  Result<QueryResult> a = db.QueryXnf(*q.value(), shared);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  Result<QueryResult> b = db.QueryXnf(*q.value(), unshared);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  Result<std::unique_ptr<qgm::QueryGraph>> graph =
      BuildXnf(db.catalog(), *q.value());
  ASSERT_TRUE(graph.ok());
  Result<QueryResult> c = ExecuteXnfFixpoint(db.catalog(), *graph.value());
  ASSERT_TRUE(c.ok()) << c.status().ToString();

  std::set<std::string> ca = Canonical(a.value());
  EXPECT_EQ(ca, Canonical(b.value())) << "shared vs unshared, seed "
                                      << GetParam();
  EXPECT_EQ(ca, Canonical(c.value())) << "shared vs fixpoint, seed "
                                      << GetParam();
}

TEST_P(XnfPropertyTest, ReachabilityInvariantHolds) {
  // Invariant: every non-root component row participates in at least one
  // connection of some incoming relationship (reachability, Sect. 2).
  Database db;
  LoadRandomDb(&db, GetParam());
  Result<QueryResult> r = db.Query(kXnfQuery);
  ASSERT_TRUE(r.ok());
  const QueryResult& result = r.value();

  std::map<std::pair<int, TupleId>, int> degree;
  std::map<std::string, int> by_name;
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    by_name[result.outputs[i].name] = static_cast<int>(i);
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind != StreamItem::Kind::kConnection) continue;
    const OutputDesc& desc = result.outputs[item.output];
    for (size_t pi = 0; pi < item.tids.size(); ++pi) {
      ++degree[{by_name[desc.partner_names[pi]], item.tids[pi]}];
    }
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind != StreamItem::Kind::kRow) continue;
    const std::string& name = result.outputs[item.output].name;
    if (name == "XDEPT") continue;  // root: reachable by definition
    int row_degree = degree[{item.output, item.tid}];
    EXPECT_GT(row_degree, 0)
        << name << " row " << TupleToString(item.values)
        << " is not connected (seed " << GetParam() << ")";
  }
}

class SqlPropertyTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SqlPropertyTest,
                         ::testing::Range(uint32_t{1}, uint32_t{9}));

TEST_P(SqlPropertyTest, PlannerConfigurationsAgree) {
  Database db;
  LoadRandomDb(&db, GetParam() + 100);
  const char* queries[] = {
      "SELECT e.ENO, d.DNO FROM EMP e, DEPT d WHERE e.EDNO = d.DNO AND "
      "d.LOC = 'ARC'",
      "SELECT ENO FROM EMP e WHERE EXISTS (SELECT 1 FROM EMPSKILLS s WHERE "
      "s.ESENO = e.ENO)",
      "SELECT DISTINCT d.LOC FROM DEPT d, EMP e WHERE e.EDNO = d.DNO",
      "SELECT EDNO, COUNT(*) FROM EMP GROUP BY EDNO ORDER BY 1",
  };
  for (const char* sql : queries) {
    std::set<std::multiset<std::string>> variants;
    for (bool hash_join : {true, false}) {
      for (bool indexes : {true, false}) {
        for (bool naive : {true, false}) {
          ExecOptions opts;
          opts.plan.use_hash_join = hash_join;
          opts.plan.use_indexes = indexes;
          opts.plan.naive_exists = naive;
          Result<QueryResult> r = db.Query(sql, {}, opts);
          ASSERT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
          std::multiset<std::string> rows;
          for (const Tuple& row : r.value().rows()) {
            rows.insert(TupleToString(row));
          }
          variants.insert(std::move(rows));
        }
      }
    }
    EXPECT_EQ(variants.size(), 1u)
        << "planner configurations disagree on: " << sql;
  }
}

TEST_P(SqlPropertyTest, ExistsRewriteOnOffAgree) {
  Database db;
  LoadRandomDb(&db, GetParam() + 200);
  const char* sql =
      "SELECT ENO FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE "
      "d.DNO = e.EDNO AND d.LOC = 'ARC')";
  CompileOptions with, without;
  without.nf.exists_to_join = false;
  without.nf.select_merge = false;
  Result<QueryResult> a = db.Query(sql, with);
  Result<QueryResult> b = db.Query(sql, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::set<int64_t> ra, rb;
  for (const Tuple& row : a.value().rows()) ra.insert(row[0].AsInt());
  for (const Tuple& row : b.value().rows()) rb.insert(row[0].AsInt());
  EXPECT_EQ(ra, rb);
}

}  // namespace
}  // namespace xnfdb
