// End-to-end scenario tests at a larger scale than the unit fixtures:
// the complete Fig. 7 life cycle — set-oriented extraction into the cache,
// pointer navigation, bulk local updates, write-back, refresh, and cache
// persistence — over a generated multi-hundred-row database, sequentially
// and with parallel output evaluation.

#include <gtest/gtest.h>

#include <cstdio>

#include "bench/workloads.h"
#include "cache/cursor.h"
#include "cache/xnf_cache.h"

namespace xnfdb {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override {
    bench::DeptDbParams params;
    params.departments = 40;
    params.emps_per_dept = 10;
    params.projs_per_dept = 3;
    params.skills = 30;
    ASSERT_TRUE(bench::PopulateDeptDb(&db_, params).ok());
  }

  Database db_;
};

TEST_F(ScenarioTest, FullLifeCycle) {
  // 1. Extraction: one server call for the whole CO.
  db_.ResetServerCalls();
  XNFCache::Options options;
  options.exec.parallel_workers = 4;
  Result<std::unique_ptr<XNFCache>> cache =
      XNFCache::Evaluate(&db_, bench::kDepsArcQuery, options);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  EXPECT_EQ(db_.server_calls(), 1);
  Workspace& ws = cache.value()->workspace();

  // 25% ARC departments.
  ComponentTable* xdept = ws.component("XDEPT").value();
  ComponentTable* xemp = ws.component("XEMP").value();
  EXPECT_EQ(xdept->LiveCount(), 10u);
  EXPECT_EQ(xemp->LiveCount(), 100u);

  // 2. Navigation: every ARC department reaches its 10 employees; the
  //    total over dependent cursors matches the component extent.
  Relationship* employment = ws.relationship("EMPLOYMENT").value();
  size_t traversed = 0;
  IndependentCursor depts(xdept);
  while (depts.Next()) {
    DependentCursor emps(&ws, employment, depts.row());
    while (emps.Next()) ++traversed;
  }
  EXPECT_EQ(traversed, 100u);

  // 3. Bulk local update: 10% raise for every cached employee.
  size_t updated = 0;
  IndependentCursor emps(xemp);
  int sal = xemp->schema().FindColumn("SAL");
  ASSERT_GE(sal, 0);
  while (emps.Next()) {
    double old_sal = emps.row()->values[sal].AsDouble();
    ASSERT_TRUE(
        ws.UpdateRow(emps.row(), sal, Value(old_sal * 1.1)).ok());
    ++updated;
  }
  EXPECT_EQ(updated, 100u);

  // 4. Write-back: one UPDATE per dirty row, against the base table.
  db_.ResetServerCalls();
  Result<std::vector<std::string>> stmts = cache.value()->WriteBack();
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  EXPECT_EQ(stmts.value().size(), 100u);
  EXPECT_FALSE(ws.HasPendingChanges());

  // The server agrees.
  Result<QueryResult> check = db_.Query(
      "SELECT COUNT(*) FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d "
      "WHERE d.DNO = e.EDNO AND d.LOC = 'ARC') AND SAL > 33000.0");
  ASSERT_TRUE(check.ok());

  // 5. Refresh re-evaluates the view and sees the new salaries.
  ASSERT_TRUE(cache.value()->Refresh().ok());
  ComponentTable* fresh_emp =
      cache.value()->workspace().component("XEMP").value();
  EXPECT_EQ(fresh_emp->LiveCount(), 100u);
  int fresh_sal = fresh_emp->schema().FindColumn("SAL");
  double min_sal = 1e12;
  IndependentCursor fresh(fresh_emp);
  while (fresh.Next()) {
    min_sal = std::min(min_sal, fresh.row()->values[fresh_sal].AsDouble());
  }
  EXPECT_GE(min_sal, 33000.0);  // 30000 * 1.1

  // 6. Persist the refreshed cache and reload it in both swizzle modes.
  std::string path = ::testing::TempDir() + "/scenario_cache.xc";
  ASSERT_TRUE(cache.value()->SaveTo(path).ok());
  for (bool swizzle : {true, false}) {
    XNFCache::Options reload;
    reload.workspace.swizzle = swizzle;
    Result<std::unique_ptr<XNFCache>> restored =
        XNFCache::LoadFrom(&db_, path, bench::kDepsArcQuery, reload);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    Result<std::vector<CachedRow*>> skills = restored.value()->Path(
        "XDEPT.EMPLOYMENT.XEMP.EMPPROPERTY.XSKILLS");
    ASSERT_TRUE(skills.ok());
    EXPECT_GT(skills.value().size(), 0u);
  }
  std::remove(path.c_str());
}

TEST_F(ScenarioTest, ParallelAndSequentialExtractionIdentical) {
  XNFCache::Options seq, par;
  par.exec.parallel_workers = 8;
  Result<std::unique_ptr<XNFCache>> a =
      XNFCache::Evaluate(&db_, bench::kDepsArcQuery, seq);
  Result<std::unique_ptr<XNFCache>> b =
      XNFCache::Evaluate(&db_, bench::kDepsArcQuery, par);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Workspace& wa = a.value()->workspace();
  Workspace& wb = b.value()->workspace();
  ASSERT_EQ(wa.component_count(), wb.component_count());
  for (size_t i = 0; i < wa.component_count(); ++i) {
    EXPECT_EQ(wa.component(i)->size(), wb.component(i)->size())
        << wa.component(i)->name();
  }
  for (size_t i = 0; i < wa.relationship_count(); ++i) {
    EXPECT_EQ(wa.relationship(i)->size(), wb.relationship(i)->size())
        << wa.relationship(i)->name();
  }
}

TEST_F(ScenarioTest, Oo1WorkloadLoadsAndNavigates) {
  Database oo1;
  bench::Oo1Params params;
  params.parts = 2000;  // scaled down for test time
  ASSERT_TRUE(bench::PopulateOo1(&oo1, params).ok());
  Result<std::unique_ptr<XNFCache>> cache =
      XNFCache::Evaluate(&oo1, bench::kOo1Query);
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();
  Workspace& ws = cache.value()->workspace();
  ComponentTable* parts = ws.component("XPART").value();
  // With 90% locality nearly every part is reachable from part 1.
  EXPECT_GT(parts->LiveCount(), 1000u);
  // Depth-3 traversal visits the expected branching (3 connections/part).
  Relationship* conn = ws.relationship("CONN").value();
  CachedRow* start = parts->row(0);
  size_t visited = 0;
  DependentCursor level1(&ws, conn, start);
  while (level1.Next()) {
    ++visited;
    DependentCursor level2(&ws, conn, level1.row());
    while (level2.Next()) ++visited;
  }
  EXPECT_GE(visited, 3u + 9u - 3u);  // allowing duplicate targets
}

}  // namespace
}  // namespace xnfdb
