// Property tests for recursive COs: the fixpoint evaluator's reachable set
// must equal an independent BFS oracle over randomly generated part
// hierarchies (DAGs, diamonds, and data-level cycles).

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <random>
#include <set>

#include "api/database.h"

namespace xnfdb {
namespace {

struct BomData {
  int parts = 0;
  std::vector<std::pair<int, int>> edges;  // assembly -> component
  std::set<int> roots;                     // anchored part numbers
};

BomData RandomBom(uint32_t seed) {
  std::mt19937 rng(seed);
  BomData bom;
  bom.parts = 5 + static_cast<int>(rng() % 26);
  int nedges = static_cast<int>(rng() % (bom.parts * 2));
  for (int i = 0; i < nedges; ++i) {
    int a = 1 + static_cast<int>(rng() % bom.parts);
    int c = 1 + static_cast<int>(rng() % bom.parts);
    bom.edges.emplace_back(a, c);  // self-loops and cycles allowed
  }
  int nroots = 1 + static_cast<int>(rng() % 3);
  for (int i = 0; i < nroots; ++i) {
    bom.roots.insert(1 + static_cast<int>(rng() % bom.parts));
  }
  return bom;
}

// Independent oracle: BFS from the root parts' components.
std::set<int> OracleReachable(const BomData& bom) {
  std::multimap<int, int> succ;
  for (auto [a, c] : bom.edges) succ.emplace(a, c);
  std::set<int> reachable;
  std::queue<int> work;
  // Anchor: children of roots (the root component itself is a separate
  // component in the query; xpart holds reachable non-anchor parts).
  for (int r : bom.roots) {
    auto [lo, hi] = succ.equal_range(r);
    for (auto it = lo; it != hi; ++it) work.push(it->second);
  }
  while (!work.empty()) {
    int p = work.front();
    work.pop();
    if (!reachable.insert(p).second) continue;
    auto [lo, hi] = succ.equal_range(p);
    for (auto it = lo; it != hi; ++it) work.push(it->second);
  }
  return reachable;
}

class RecursionPropertyTest : public ::testing::TestWithParam<uint32_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RecursionPropertyTest,
                         ::testing::Range(uint32_t{1}, uint32_t{17}));

TEST_P(RecursionPropertyTest, FixpointMatchesBfsOracle) {
  BomData bom = RandomBom(GetParam());
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                     "CREATE TABLE PART (PNO INTEGER, ROOTP BOOLEAN);"
                     "CREATE TABLE USAGE (A INTEGER, C INTEGER)")
                  .ok());
  for (int p = 1; p <= bom.parts; ++p) {
    std::string root = bom.roots.count(p) ? "TRUE" : "FALSE";
    ASSERT_TRUE(db.Execute("INSERT INTO PART VALUES (" + std::to_string(p) +
                           ", " + root + ")")
                    .ok());
  }
  for (auto [a, c] : bom.edges) {
    ASSERT_TRUE(db.Execute("INSERT INTO USAGE VALUES (" + std::to_string(a) +
                           ", " + std::to_string(c) + ")")
                    .ok());
  }

  Result<QueryResult> r = db.Query(R"sql(
    OUT OF root AS (SELECT * FROM PART WHERE ROOTP = TRUE),
           xpart AS PART,
           anchor AS (RELATE root VIA SEEDS, xpart USING USAGE u
                      WHERE root.pno = u.a AND u.c = xpart.pno),
           uses AS (RELATE xpart VIA CONTAINS, xpart USING USAGE u
                    WHERE contains.pno = u.a AND u.c = xpart.pno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::set<int> measured;
  int xpart = r.value().FindOutput("XPART");
  for (const Tuple& row : r.value().RowsOf(xpart)) {
    measured.insert(static_cast<int>(row[0].AsInt()));
  }
  EXPECT_EQ(measured, OracleReachable(bom)) << "seed " << GetParam();

  // Invariant: every USES connection links reachable parts.
  std::map<TupleId, int> tid_to_pno;
  for (const StreamItem& item : r.value().stream) {
    if (item.kind == StreamItem::Kind::kRow && item.output == xpart) {
      tid_to_pno[item.tid] = static_cast<int>(item.values[0].AsInt());
    }
  }
  int uses = r.value().FindOutput("USES");
  for (const StreamItem& item : r.value().stream) {
    if (item.kind != StreamItem::Kind::kConnection || item.output != uses) {
      continue;
    }
    for (TupleId tid : item.tids) {
      ASSERT_TRUE(tid_to_pno.count(tid));
      EXPECT_TRUE(measured.count(tid_to_pno[tid]));
    }
  }
}

TEST_P(RecursionPropertyTest, ConnectionsMatchEdgeOracle) {
  BomData bom = RandomBom(GetParam() + 500);
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                     "CREATE TABLE PART (PNO INTEGER, ROOTP BOOLEAN);"
                     "CREATE TABLE USAGE (A INTEGER, C INTEGER)")
                  .ok());
  for (int p = 1; p <= bom.parts; ++p) {
    std::string root = bom.roots.count(p) ? "TRUE" : "FALSE";
    ASSERT_TRUE(db.Execute("INSERT INTO PART VALUES (" + std::to_string(p) +
                           ", " + root + ")")
                    .ok());
  }
  std::set<std::pair<int, int>> unique_edges(bom.edges.begin(),
                                             bom.edges.end());
  for (auto [a, c] : unique_edges) {
    ASSERT_TRUE(db.Execute("INSERT INTO USAGE VALUES (" + std::to_string(a) +
                           ", " + std::to_string(c) + ")")
                    .ok());
  }
  Result<QueryResult> r = db.Query(R"sql(
    OUT OF root AS (SELECT * FROM PART WHERE ROOTP = TRUE),
           xpart AS PART,
           anchor AS (RELATE root VIA SEEDS, xpart USING USAGE u
                      WHERE root.pno = u.a AND u.c = xpart.pno),
           uses AS (RELATE xpart VIA CONTAINS, xpart USING USAGE u
                    WHERE contains.pno = u.a AND u.c = xpart.pno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok());

  std::set<int> reachable = OracleReachable(bom);
  // Oracle: edges whose assembly is reachable and component is a candidate.
  size_t expected = 0;
  for (auto [a, c] : unique_edges) {
    if (reachable.count(a)) ++expected;
  }
  EXPECT_EQ(r.value().ConnectionCount(r.value().FindOutput("USES")),
            expected)
      << "seed " << GetParam() + 500;
}

}  // namespace
}  // namespace xnfdb
