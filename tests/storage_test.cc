// Unit tests for the storage layer: row store with RIDs, index maintenance
// across mutations, statistics, and catalog metadata (PK/FK, views).

#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/table.h"

namespace xnfdb {
namespace {

Schema EmpSchema() {
  return Schema({{"ENO", DataType::kInt},
                 {"ENAME", DataType::kString},
                 {"EDNO", DataType::kInt}});
}

Tuple Emp(int64_t eno, const std::string& name, int64_t dno) {
  return {Value(eno), Value(name), Value(dno)};
}

TEST(TableTest, InsertGetDelete) {
  Table t("EMP", EmpSchema());
  Result<Rid> r1 = t.Insert(Emp(1, "a", 10));
  Result<Rid> r2 = t.Insert(Emp(2, "b", 10));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(t.Get(r1.value())[1].AsString(), "a");

  ASSERT_TRUE(t.Delete(r1.value()).ok());
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_FALSE(t.IsLive(r1.value()));
  // Deleting twice fails; RIDs are not reused.
  EXPECT_FALSE(t.Delete(r1.value()).ok());
  Result<Rid> r3 = t.Insert(Emp(3, "c", 20));
  ASSERT_TRUE(r3.ok());
  EXPECT_NE(r3.value(), r1.value());
}

TEST(TableTest, InsertValidatesSchema) {
  Table t("EMP", EmpSchema());
  EXPECT_FALSE(t.Insert({Value(int64_t{1})}).ok());  // arity
  EXPECT_FALSE(
      t.Insert({Value("x"), Value("a"), Value(int64_t{1})}).ok());  // type
  EXPECT_TRUE(t.Insert({Value(), Value(), Value()}).ok());  // NULLs ok
}

TEST(TableTest, UpdateMaintainsIndexes) {
  Table t("EMP", EmpSchema());
  ASSERT_TRUE(t.CreateIndex("EDNO").ok());
  Rid r = t.Insert(Emp(1, "a", 10)).value();
  t.Insert(Emp(2, "b", 10)).value();

  const HashIndex* index = t.GetIndex(2);
  ASSERT_NE(index, nullptr);
  ASSERT_NE(index->Lookup(Value(int64_t{10})), nullptr);
  EXPECT_EQ(index->Lookup(Value(int64_t{10}))->size(), 2u);

  ASSERT_TRUE(t.UpdateColumn(r, 2, Value(int64_t{20})).ok());
  EXPECT_EQ(index->Lookup(Value(int64_t{10}))->size(), 1u);
  ASSERT_NE(index->Lookup(Value(int64_t{20})), nullptr);
  EXPECT_EQ(index->Lookup(Value(int64_t{20}))->size(), 1u);

  ASSERT_TRUE(t.Delete(r).ok());
  EXPECT_EQ(index->Lookup(Value(int64_t{20})), nullptr);
}

TEST(TableTest, IndexBackfillsExistingRows) {
  Table t("EMP", EmpSchema());
  t.Insert(Emp(1, "a", 10)).value();
  t.Insert(Emp(2, "b", 20)).value();
  ASSERT_TRUE(t.CreateIndex("ENO").ok());
  const HashIndex* index = t.GetIndex(0);
  ASSERT_NE(index, nullptr);
  ASSERT_NE(index->Lookup(Value(int64_t{2})), nullptr);
  // Creating the same index again is a no-op.
  ASSERT_TRUE(t.CreateIndex("ENO").ok());
}

TEST(TableTest, StatsTrackDistinctAndMinMax) {
  Table t("EMP", EmpSchema());
  t.Insert(Emp(1, "a", 10)).value();
  t.Insert(Emp(2, "b", 10)).value();
  t.Insert(Emp(3, "c", 20)).value();
  const ColumnStats& eno = t.GetColumnStats(0);
  EXPECT_EQ(eno.distinct, 3u);
  EXPECT_EQ(eno.min.AsInt(), 1);
  EXPECT_EQ(eno.max.AsInt(), 3);
  const ColumnStats& edno = t.GetColumnStats(2);
  EXPECT_EQ(edno.distinct, 2u);
  // Stats are invalidated by mutation.
  t.Insert(Emp(4, "d", 30)).value();
  EXPECT_EQ(t.GetColumnStats(2).distinct, 3u);
}

TEST(CatalogTest, CreateGetDropTable) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable("Emp", EmpSchema()).ok());
  EXPECT_TRUE(c.HasTable("EMP"));  // names normalize to upper case
  EXPECT_TRUE(c.HasTable("emp"));
  EXPECT_FALSE(c.CreateTable("EMP", EmpSchema()).ok());  // duplicate
  ASSERT_TRUE(c.GetTable("emp").ok());
  EXPECT_EQ(c.TableNames(), (std::vector<std::string>{"EMP"}));
  ASSERT_TRUE(c.DropTable("EMP").ok());
  EXPECT_FALSE(c.GetTable("EMP").ok());
}

TEST(CatalogTest, PrimaryKeyCreatesIndex) {
  Catalog c;
  Table* t = c.CreateTable("EMP", EmpSchema()).value();
  ASSERT_TRUE(c.DeclarePrimaryKey("EMP", "ENO").ok());
  EXPECT_EQ(c.PrimaryKeyColumn("EMP"), 0);
  EXPECT_NE(t->GetIndex(0), nullptr);
  EXPECT_EQ(c.PrimaryKeyColumn("NOPE"), -1);
  EXPECT_FALSE(c.DeclarePrimaryKey("EMP", "MISSING").ok());
}

TEST(CatalogTest, ForeignKeysValidatedAndQueryable) {
  Catalog c;
  c.CreateTable("DEPT", Schema({{"DNO", DataType::kInt}})).value();
  c.CreateTable("EMP", EmpSchema()).value();
  ForeignKey fk{"EMP", "EDNO", "DEPT", "DNO"};
  ASSERT_TRUE(c.DeclareForeignKey(fk).ok());
  ASSERT_EQ(c.ForeignKeysOf("EMP").size(), 1u);
  const ForeignKey* found = c.FindForeignKey("EMP", "edno");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->ref_table, "DEPT");
  EXPECT_EQ(c.FindForeignKey("EMP", "ENAME"), nullptr);

  ForeignKey bad{"EMP", "NOPE", "DEPT", "DNO"};
  EXPECT_FALSE(c.DeclareForeignKey(bad).ok());

  // Dropping a referenced table removes the FK metadata.
  ASSERT_TRUE(c.DropTable("DEPT").ok());
  EXPECT_TRUE(c.ForeignKeysOf("EMP").empty());
}

TEST(CatalogTest, ViewsShareNamespaceWithTables) {
  Catalog c;
  c.CreateTable("EMP", EmpSchema()).value();
  ViewDef v;
  v.name = "V1";
  v.definition = "SELECT * FROM EMP";
  ASSERT_TRUE(c.CreateView(v).ok());
  EXPECT_TRUE(c.HasView("v1"));
  EXPECT_FALSE(c.CreateView(v).ok());  // duplicate
  ViewDef clash;
  clash.name = "EMP";
  EXPECT_FALSE(c.CreateView(clash).ok());  // collides with table
  ASSERT_TRUE(c.GetView("V1").ok());
  EXPECT_FALSE(c.GetView("V1").value()->is_xnf);
  ASSERT_TRUE(c.DropView("V1").ok());
  EXPECT_FALSE(c.DropView("V1").ok());
}

}  // namespace
}  // namespace xnfdb
