// Tests of the DOT (graphviz) rendering of query graphs.

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "qgm/dot.h"
#include "rewrite/xnf_rewrite.h"
#include "semantics/builder.h"
#include "storage/catalog.h"

namespace xnfdb {
namespace {

Catalog MakeCatalog() {
  Catalog c;
  c.CreateTable("DEPT", Schema({{"DNO", DataType::kInt},
                                {"LOC", DataType::kString}}))
      .value();
  c.CreateTable("EMP", Schema({{"ENO", DataType::kInt},
                               {"EDNO", DataType::kInt}}))
      .value();
  return c;
}

TEST(DotTest, RendersXnfGraphWithComponents) {
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::XnfQuery>> q = ParseXnfQuery(R"(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE *
  )");
  ASSERT_TRUE(q.ok());
  Result<std::unique_ptr<qgm::QueryGraph>> g = BuildXnf(c, *q.value());
  ASSERT_TRUE(g.ok());
  std::string dot = qgm::ToDot(*g.value());
  EXPECT_NE(dot.find("digraph qgm"), std::string::npos);
  EXPECT_NE(dot.find("XNF"), std::string::npos);
  EXPECT_NE(dot.find("XEMP R"), std::string::npos);      // reachability mark
  EXPECT_NE(dot.find("XDEPT root"), std::string::npos);  // root mark
  EXPECT_NE(dot.find("EMPLOYMENT (rel)"), std::string::npos);
  // Every referenced box must be declared as a node.
  for (size_t i = 0; i < g.value()->box_count(); ++i) {
    std::string arrow = "-> b" + std::to_string(i);
    size_t pos = dot.find(arrow);
    if (pos != std::string::npos) {
      EXPECT_NE(dot.find("  b" + std::to_string(i) + " [label"),
                std::string::npos)
          << "edge to undeclared node b" << i;
    }
  }
}

TEST(DotTest, RewrittenGraphShowsJoinsAndOutputs) {
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::XnfQuery>> q = ParseXnfQuery(
      "OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'), xemp AS EMP, "
      "employment AS (RELATE xdept VIA EMPLOYS, xemp "
      "WHERE xdept.dno = xemp.edno) TAKE *");
  ASSERT_TRUE(q.ok());
  Result<std::unique_ptr<qgm::QueryGraph>> g = BuildXnf(c, *q.value());
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(XnfSemanticRewrite(g.value().get()).ok());
  std::string dot = qgm::ToDot(*g.value());
  // The XNF box is dead after the rewrite; Top outputs appear instead.
  EXPECT_EQ(dot.find("fillcolor=gray90"), std::string::npos);
  EXPECT_NE(dot.find("EMPLOYMENT (conn)"), std::string::npos);
  EXPECT_NE(dot.find("style=bold"), std::string::npos);
}

TEST(DotTest, EscapesSpecialCharacters) {
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::SelectStmt>> sel = ParseSelectQuery(
      "SELECT DNO FROM DEPT WHERE LOC = '<weird|{label}>'");
  ASSERT_TRUE(sel.ok());
  Result<std::unique_ptr<qgm::QueryGraph>> g = BuildSelect(c, *sel.value());
  ASSERT_TRUE(g.ok());
  std::string dot = qgm::ToDot(*g.value());
  // The raw brace/pipe characters must be escaped in record labels.
  EXPECT_NE(dot.find("\\{label\\}"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\\|"), std::string::npos);
}

}  // namespace
}  // namespace xnfdb
