// Materialized CO views (src/matview/): automatic plan matching, pinned
// MATERIALIZE, incremental delta maintenance under DML streams, and the
// property that a materialization is always answer-equivalent to a scratch
// recomputation of the same view.
//
// Answer sets are compared canonically: component streams as row multisets,
// connection streams with every partner tid resolved to the partner row's
// content. A delta-maintained materialization keeps its original tuple ids
// while a scratch recompute assigns fresh ones, so raw tid comparison would
// reject answers that are identical up to tid renaming.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/database.h"
#include "exec/executor.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

using testing_util::LoadPaperDb;

// One output stream, canonicalized: component rows as a sorted multiset,
// connection tuples as sorted vectors of resolved partner-row contents.
struct CanonicalOutput {
  bool is_connection = false;
  std::vector<Tuple> rows;                // components (sorted)
  std::vector<std::vector<Tuple>> conns;  // connections (sorted)

  bool operator==(const CanonicalOutput& o) const {
    return is_connection == o.is_connection && rows == o.rows &&
           conns == o.conns;
  }
};

std::map<std::string, CanonicalOutput> Canonicalize(const QueryResult& r) {
  // tid -> row content, per component output.
  std::map<int, std::map<TupleId, Tuple>> content;
  for (const StreamItem& item : r.stream) {
    if (item.kind == StreamItem::Kind::kRow) {
      content[item.output][item.tid] = item.values;
    }
  }
  std::map<std::string, CanonicalOutput> canon;
  for (size_t oi = 0; oi < r.outputs.size(); ++oi) {
    CanonicalOutput& c = canon[r.outputs[oi].name];
    c.is_connection = r.outputs[oi].is_connection;
  }
  for (const StreamItem& item : r.stream) {
    const OutputDesc& desc = r.outputs[item.output];
    CanonicalOutput& c = canon[desc.name];
    if (item.kind == StreamItem::Kind::kRow) {
      c.rows.push_back(item.values);
      continue;
    }
    std::vector<Tuple> resolved;
    for (size_t pi = 0; pi < item.tids.size(); ++pi) {
      const int partner = r.FindOutput(desc.partner_names[pi]);
      EXPECT_GE(partner, 0) << "unknown partner " << desc.partner_names[pi];
      auto it = content[partner].find(item.tids[pi]);
      if (it == content[partner].end()) {
        ADD_FAILURE() << desc.name << ": dangling partner tid "
                      << item.tids[pi] << " into " << desc.partner_names[pi];
        resolved.push_back({});
      } else {
        resolved.push_back(it->second);
      }
    }
    c.conns.push_back(std::move(resolved));
  }
  for (auto& [name, c] : canon) {
    std::sort(c.rows.begin(), c.rows.end());
    std::sort(c.conns.begin(), c.conns.end());
  }
  return canon;
}

void ExpectEquivalent(const QueryResult& got, const QueryResult& want,
                      const std::string& label) {
  auto a = Canonicalize(got);
  auto b = Canonicalize(want);
  ASSERT_EQ(a.size(), b.size()) << label << ": output count differs";
  for (const auto& [name, cw] : b) {
    auto it = a.find(name);
    ASSERT_NE(it, a.end()) << label << ": missing output " << name;
    EXPECT_EQ(it->second.rows.size(), cw.rows.size())
        << label << ": " << name << " row count";
    EXPECT_EQ(it->second.conns.size(), cw.conns.size())
        << label << ": " << name << " connection count";
    EXPECT_TRUE(it->second == cw)
        << label << ": output " << name << " differs from scratch recompute";
  }
}

// ---------------------------------------------------------------------------
// Automatic plan matching
// ---------------------------------------------------------------------------

TEST(MatViewTest, AutoFlipServesByteIdenticalRowsWithProvenance) {
  Database db;
  ASSERT_TRUE(LoadPaperDb(&db).ok());
  const std::string q = "SELECT ENAME FROM EMP WHERE SAL > 75000.0";

  // Default policy: 2nd execution captures, 3rd serves from the store.
  Result<QueryResult> r1 = db.Query(q);
  ASSERT_TRUE(r1.ok());
  Result<QueryResult> r2 = db.Query(q);
  ASSERT_TRUE(r2.ok());
  Result<QueryResult> r3 = db.Query(q);
  ASSERT_TRUE(r3.ok());

  EXPECT_EQ(r3.value().rows(), r1.value().rows()) << "served rows must be "
                                                     "byte-identical";
  EXPECT_NE(r3.value().plan_shape.find("matview_scan"), std::string::npos)
      << "third execution should flip to MatViewScanOp, got: "
      << r3.value().plan_shape;
  EXPECT_EQ(r2.value().plan_shape, r1.value().plan_shape)
      << "capturing execution still runs the real plan";

  // EXPLAIN provenance + SYS$MATVIEWS hit accounting.
  Result<std::string> ex = db.Explain(q);
  ASSERT_TRUE(ex.ok());
  EXPECT_NE(ex.value().find("matview:"), std::string::npos) << ex.value();

  Result<QueryResult> sys = db.Query(
      "SELECT NAME, STATE, HITS FROM SYS$MATVIEWS");
  ASSERT_TRUE(sys.ok());
  std::vector<Tuple> sys_rows = sys.value().rows();
  ASSERT_EQ(sys_rows.size(), 1u);
  const Tuple& row = sys_rows[0];
  EXPECT_EQ(row[1].AsString(), "fresh");
  EXPECT_GE(row[2].AsInt(), 1);

  ASSERT_EQ(db.matviews().Snapshot().size(), 1u);
  EXPECT_FALSE(db.matviews().Snapshot()[0].pinned);
}

TEST(MatViewTest, DisabledStoreNeverCapturesOrServes) {
  Database db;
  db.matviews().set_enabled(false);
  ASSERT_TRUE(LoadPaperDb(&db).ok());
  const std::string q = "SELECT ENAME FROM EMP WHERE SAL > 75000.0";
  for (int i = 0; i < 4; ++i) {
    Result<QueryResult> r = db.Query(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().plan_shape.find("matview_scan"), std::string::npos);
  }
  EXPECT_EQ(db.matviews().size(), 0u);
}

// ---------------------------------------------------------------------------
// MATERIALIZE / DEMATERIALIZE statements
// ---------------------------------------------------------------------------

TEST(MatViewTest, MaterializeStatementPinsAndServesView) {
  Database db;
  ASSERT_TRUE(LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute(std::string("CREATE VIEW deps_ARC AS ") +
                         testing_util::kDepsArcQuery)
                  .ok());

  Result<Database::Outcome> m = db.Execute("MATERIALIZE deps_ARC");
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m.value().affected, 0u);

  std::vector<MatViewInfo> infos = db.matviews().Snapshot();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "DEPS_ARC");
  EXPECT_TRUE(infos[0].pinned);
  EXPECT_TRUE(infos[0].fresh);

  // First post-pin execution is already served from the store...
  Result<QueryResult> served = db.Query("deps_ARC");
  ASSERT_TRUE(served.ok());
  EXPECT_NE(served.value().plan_shape.find("matview_scan"),
            std::string::npos);

  // ...and is answer-equivalent to a scratch recompute.
  Database scratch;
  ASSERT_TRUE(LoadPaperDb(&scratch).ok());
  scratch.matviews().set_enabled(false);
  Result<QueryResult> want = scratch.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(want.ok());
  ExpectEquivalent(served.value(), want.value(), "pinned deps_ARC");

  // DEMATERIALIZE drops the stored data; the query still works.
  ASSERT_TRUE(db.Execute("DEMATERIALIZE deps_ARC").ok());
  EXPECT_EQ(db.matviews().size(), 0u);
  EXPECT_FALSE(db.Execute("DEMATERIALIZE deps_ARC").ok());
  Result<QueryResult> after = db.Query("deps_ARC");
  ASSERT_TRUE(after.ok());
  ExpectEquivalent(after.value(), want.value(), "after DEMATERIALIZE");
}

// ---------------------------------------------------------------------------
// Property: materialize -> random DML stream -> query == scratch recompute
// ---------------------------------------------------------------------------

// Table 1 query shapes exercised by the property test: the full Fig. 1
// CO view, a two-component subset, and a plain SQL select-project-join.
struct Shape {
  const char* label;
  const char* query;
};

const Shape kShapes[] = {
    {"deps_ARC", testing_util::kDepsArcQuery},
    {"emp_skills",
     "OUT OF xemp AS (SELECT * FROM EMP WHERE SAL > 60000.0),\n"
     "       xskills AS SKILLS,\n"
     "       empproperty AS (RELATE xemp VIA POSSESSES, xskills\n"
     "                       USING EMPSKILLS es\n"
     "                       WHERE xemp.eno = es.eseno AND\n"
     "                             es.essno = xskills.sno)\n"
     "TAKE *"},
    {"sql_join",
     "SELECT E.ENAME, S.SNAME FROM EMP E, EMPSKILLS ES, SKILLS S "
     "WHERE E.ENO = ES.ESENO AND ES.ESSNO = S.SNO"},
};

// Deterministic pseudo-random DML stream touching delta-eligible tables
// (SKILLS inserts/deletes) and fallback tables (EMP updates force a stale
// full refresh on shapes that filter EMP under a quantifier).
std::vector<std::string> DmlStream(int steps) {
  std::vector<std::string> dml;
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < steps; ++i) {
    const int sno = 6000 + i * 10;
    switch (next() % 4) {
      case 0:
        dml.push_back("INSERT INTO SKILLS VALUES (" + std::to_string(sno) +
                      ", 'gen" + std::to_string(i) + "')");
        break;
      case 1:
        dml.push_back("INSERT INTO EMPSKILLS VALUES (" +
                      std::to_string(10 + 10 * static_cast<int>(next() % 4)) +
                      ", " + std::to_string(1000 + 1000 * static_cast<int>(
                                                       next() % 5)) +
                      ")");
        break;
      case 2:
        dml.push_back("UPDATE EMP SET SAL = SAL + " +
                      std::to_string(500 + static_cast<int>(next() % 1000)) +
                      ".0 WHERE ENO = " +
                      std::to_string(10 + 10 * static_cast<int>(next() % 4)));
        break;
      default:
        dml.push_back("DELETE FROM SKILLS WHERE SNO = " +
                      std::to_string(2000 + 1000 * static_cast<int>(
                                                next() % 4)));
        break;
    }
  }
  return dml;
}

void RunPropertyShape(const Shape& shape, int morsel_workers) {
  Database db;       // maintains a materialization across the stream
  Database mirror;   // replays the same stream, always recomputes
  ASSERT_TRUE(LoadPaperDb(&db).ok());
  ASSERT_TRUE(LoadPaperDb(&mirror).ok());
  mirror.matviews().set_enabled(false);

  ExecOptions eo;
  eo.morsel_workers = morsel_workers;

  // Warm until the store serves this shape.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db.Query(shape.query, {}, eo).ok()) << shape.label;
  }
  ASSERT_GE(db.matviews().size(), 1u) << shape.label;

  for (const std::string& stmt : DmlStream(12)) {
    ASSERT_TRUE(db.Execute(stmt).ok()) << shape.label << ": " << stmt;
    ASSERT_TRUE(mirror.Execute(stmt).ok()) << shape.label << ": " << stmt;

    Result<QueryResult> got = db.Query(shape.query, {}, eo);
    ASSERT_TRUE(got.ok()) << shape.label << " after " << stmt;
    Result<QueryResult> want = mirror.Query(shape.query, {}, eo);
    ASSERT_TRUE(want.ok()) << shape.label << " after " << stmt;
    ExpectEquivalent(got.value(), want.value(),
                     std::string(shape.label) + " after '" + stmt + "'");
  }
}

TEST(MatViewPropertyTest, DmlStreamEquivalentToScratchRecompute) {
  for (const Shape& shape : kShapes) RunPropertyShape(shape, 1);
}

TEST(MatViewPropertyTest, DmlStreamEquivalentUnderMorselParallelism) {
  for (const Shape& shape : kShapes) RunPropertyShape(shape, 4);
}

// ---------------------------------------------------------------------------
// Incremental delta maintenance
// ---------------------------------------------------------------------------

TEST(MatViewTest, SkillsInsertTakesDeltaPathAndStaysFresh) {
  // Distinct-free select-project-join: every base table has exactly one
  // F-path reference, so DML on any of them is delta-maintainable.
  const std::string q =
      "SELECT E.ENAME, S.SNAME FROM EMP E, EMPSKILLS ES, SKILLS S "
      "WHERE E.ENO = ES.ESENO AND ES.ESSNO = S.SNO";
  Database db;
  ASSERT_TRUE(LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW emp_skill_names AS " + q).ok());
  ASSERT_TRUE(db.Execute("MATERIALIZE emp_skill_names").ok());

  ASSERT_TRUE(db.Execute("INSERT INTO SKILLS VALUES (7000, 's7')").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO EMPSKILLS VALUES (10, 7000)").ok());
  std::vector<MatViewInfo> infos = db.matviews().Snapshot();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_TRUE(infos[0].fresh) << "delta maintenance must keep the view fresh";
  EXPECT_GE(infos[0].delta_applies, 2);
  EXPECT_GE(infos[0].delta_rows, 1);

  Result<QueryResult> served = db.Query("emp_skill_names");
  ASSERT_TRUE(served.ok());
  EXPECT_NE(served.value().plan_shape.find("matview_scan"),
            std::string::npos);

  Database scratch;
  ASSERT_TRUE(LoadPaperDb(&scratch).ok());
  scratch.matviews().set_enabled(false);
  ASSERT_TRUE(scratch.Execute("INSERT INTO SKILLS VALUES (7000, 's7')").ok());
  ASSERT_TRUE(scratch.Execute("INSERT INTO EMPSKILLS VALUES (10, 7000)").ok());
  Result<QueryResult> want = scratch.Query(q);
  ASSERT_TRUE(want.ok());
  ExpectEquivalent(served.value(), want.value(), "after SKILLS delta");
}

TEST(MatViewTest, CoViewShapesFallBackToBoundedFullRefresh) {
  // XNF component outputs dedup by content (distinct / union boxes), which
  // breaks derivation counting — DML on their tables marks the view stale
  // and the next execution refreshes it in full.
  Database db;
  ASSERT_TRUE(LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute(std::string("CREATE VIEW deps_ARC AS ") +
                         testing_util::kDepsArcQuery)
                  .ok());
  ASSERT_TRUE(db.Execute("MATERIALIZE deps_ARC").ok());

  ASSERT_TRUE(db.Execute("INSERT INTO SKILLS VALUES (7000, 's7')").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO EMPSKILLS VALUES (10, 7000)").ok());
  std::vector<MatViewInfo> infos = db.matviews().Snapshot();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_FALSE(infos[0].fresh);
  EXPECT_GE(infos[0].fallbacks, 1);

  // The refresh re-runs the view; the new skill is now connected to e1.
  Result<QueryResult> got = db.Query("deps_ARC");
  ASSERT_TRUE(got.ok());
  Database scratch;
  ASSERT_TRUE(LoadPaperDb(&scratch).ok());
  scratch.matviews().set_enabled(false);
  ASSERT_TRUE(scratch.Execute("INSERT INTO SKILLS VALUES (7000, 's7')").ok());
  ASSERT_TRUE(
      scratch.Execute("INSERT INTO EMPSKILLS VALUES (10, 7000)").ok());
  Result<QueryResult> want = scratch.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(want.ok());
  ExpectEquivalent(got.value(), want.value(), "deps_ARC after fallback");
  EXPECT_TRUE(db.matviews().Snapshot()[0].fresh);
}

TEST(MatViewTest, EmpUpdateFallsBackToFullRefresh) {
  Database db;
  ASSERT_TRUE(LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute(std::string("CREATE VIEW deps_ARC AS ") +
                         testing_util::kDepsArcQuery)
                  .ok());
  ASSERT_TRUE(db.Execute("MATERIALIZE deps_ARC").ok());

  ASSERT_TRUE(
      db.Execute("UPDATE EMP SET SAL = 95000.0 WHERE ENO = 40").ok());
  // Whether EMP is delta-eligible or not, the next execution must reflect
  // the update; a stale entry triggers a bounded full refresh.
  Result<QueryResult> got = db.Query("deps_ARC");
  ASSERT_TRUE(got.ok());

  Database scratch;
  ASSERT_TRUE(LoadPaperDb(&scratch).ok());
  scratch.matviews().set_enabled(false);
  ASSERT_TRUE(
      scratch.Execute("UPDATE EMP SET SAL = 95000.0 WHERE ENO = 40").ok());
  Result<QueryResult> want = scratch.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(want.ok());
  ExpectEquivalent(got.value(), want.value(), "after EMP update");

  // Refreshed, so the run after that serves from the store again.
  Result<QueryResult> again = db.Query("deps_ARC");
  ASSERT_TRUE(again.ok());
  EXPECT_NE(again.value().plan_shape.find("matview_scan"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Mid-refresh cancellation
// ---------------------------------------------------------------------------

TEST(MatViewTest, CancelledRefreshLeavesNoStoredViewAndNextRunWorks) {
  Database db;
  ASSERT_TRUE(LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute(std::string("CREATE VIEW deps_ARC AS ") +
                         testing_util::kDepsArcQuery)
                  .ok());
  ASSERT_TRUE(db.Execute("MATERIALIZE deps_ARC").ok());
  // Invalidate, then cancel the refreshing execution mid-stream via a
  // 1-row result budget.
  ASSERT_TRUE(db.Execute("INSERT INTO EMP VALUES (50, 'e5', 1, 60000.0)")
                  .ok());
  ExecOptions tiny;
  tiny.max_result_rows = 1;
  Result<QueryResult> cancelled = db.Query("deps_ARC", {}, tiny);
  EXPECT_FALSE(cancelled.ok()) << "1-row budget must cancel the refresh";

  std::vector<MatViewInfo> infos = db.matviews().Snapshot();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_FALSE(infos[0].fresh)
      << "a cancelled refresh must not publish stored rows";

  // The next unrestricted execution refreshes and matches scratch.
  Result<QueryResult> got = db.Query("deps_ARC");
  ASSERT_TRUE(got.ok());
  Database scratch;
  ASSERT_TRUE(LoadPaperDb(&scratch).ok());
  scratch.matviews().set_enabled(false);
  ASSERT_TRUE(
      scratch.Execute("INSERT INTO EMP VALUES (50, 'e5', 1, 60000.0)").ok());
  Result<QueryResult> want = scratch.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(want.ok());
  ExpectEquivalent(got.value(), want.value(), "after cancelled refresh");
  EXPECT_TRUE(db.matviews().Snapshot()[0].fresh);
}

// ---------------------------------------------------------------------------
// Registry persistence
// ---------------------------------------------------------------------------

TEST(MatViewTest, RegistrySurvivesSaveLoadAndRefreshesOnFirstUse) {
  const std::string path = ::testing::TempDir() + "/xnfdb_matview.db";
  {
    Database db;
    ASSERT_TRUE(LoadPaperDb(&db).ok());
    ASSERT_TRUE(db.Execute(std::string("CREATE VIEW deps_ARC AS ") +
                           testing_util::kDepsArcQuery)
                    .ok());
    ASSERT_TRUE(db.Execute("MATERIALIZE deps_ARC").ok());
    ASSERT_TRUE(db.SaveTo(path).ok());
  }
  Database db;
  ASSERT_TRUE(db.LoadFrom(path).ok());
  std::vector<MatViewInfo> infos = db.matviews().Snapshot();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "DEPS_ARC");
  EXPECT_TRUE(infos[0].pinned);
  EXPECT_FALSE(infos[0].fresh) << "stored rows are not persisted";

  // First execution refreshes; the one after serves.
  ASSERT_TRUE(db.Query("deps_ARC").ok());
  EXPECT_TRUE(db.matviews().Snapshot()[0].fresh);
  Result<QueryResult> served = db.Query("deps_ARC");
  ASSERT_TRUE(served.ok());
  EXPECT_NE(served.value().plan_shape.find("matview_scan"),
            std::string::npos);

  std::remove(path.c_str());
  std::remove((path + ".matviews").c_str());
}

}  // namespace
}  // namespace xnfdb
