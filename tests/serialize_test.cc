// Unit tests of the cache serializer: round trips of every value type,
// pending-change refusal, and robustness against corrupt inputs.

#include <gtest/gtest.h>

#include <sstream>

#include "cache/serialize.h"
#include "cache/xnf_cache.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
    // A component with all value types: int, string, double; plus NULLs.
    ASSERT_TRUE(db_.ExecuteScript(
                       "CREATE TABLE MIXED (I INTEGER, S VARCHAR, "
                       "D DOUBLE, B BOOLEAN);"
                       "INSERT INTO MIXED VALUES (1, 'a b c', 2.5, TRUE),"
                       "(2, 'quote '' inside', NULL, FALSE),"
                       "(NULL, NULL, -0.125, NULL)")
                    .ok());
    cache_ =
        XNFCache::Evaluate(&db_, "OUT OF m AS MIXED TAKE *").value();
  }

  Database db_;
  std::unique_ptr<XNFCache> cache_;
};

TEST_F(SerializeTest, RoundTripPreservesValuesAndNulls) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveWorkspace(cache_->workspace(), buffer).ok());
  Result<std::unique_ptr<Workspace>> loaded = LoadWorkspace(buffer);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ComponentTable* m = loaded.value()->component("M").value();
  ASSERT_EQ(m->size(), 3u);
  // Values survive, including embedded spaces/quotes and NULLs.
  CachedRow* row1 = m->FindByValue(0, Value(int64_t{1}));
  ASSERT_NE(row1, nullptr);
  EXPECT_EQ(row1->values[1].AsString(), "a b c");
  EXPECT_DOUBLE_EQ(row1->values[2].AsDouble(), 2.5);
  EXPECT_TRUE(row1->values[3].AsBool());
  CachedRow* row2 = m->FindByValue(0, Value(int64_t{2}));
  ASSERT_NE(row2, nullptr);
  EXPECT_EQ(row2->values[1].AsString(), "quote ' inside");
  EXPECT_TRUE(row2->values[2].is_null());
}

TEST_F(SerializeTest, SchemaSurvives) {
  std::stringstream buffer;
  ASSERT_TRUE(SaveWorkspace(cache_->workspace(), buffer).ok());
  Result<std::unique_ptr<Workspace>> loaded = LoadWorkspace(buffer);
  ASSERT_TRUE(loaded.ok());
  const Schema& schema = loaded.value()->component("M").value()->schema();
  ASSERT_EQ(schema.size(), 4u);
  EXPECT_EQ(schema.column(0).name, "I");
  EXPECT_EQ(schema.column(0).type, DataType::kInt);
  EXPECT_EQ(schema.column(2).type, DataType::kDouble);
  EXPECT_EQ(schema.column(3).type, DataType::kBool);
}

TEST_F(SerializeTest, RefusesPendingChanges) {
  ComponentTable* m = cache_->workspace().component("M").value();
  ASSERT_TRUE(cache_->Update(m->row(0), "S", Value("changed")).ok());
  std::stringstream buffer;
  Status s = SaveWorkspace(cache_->workspace(), buffer);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(SerializeTest, ConnectionsRoundTripWithSwizzling) {
  auto deps = XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery).value();
  std::stringstream buffer;
  ASSERT_TRUE(SaveWorkspace(deps->workspace(), buffer).ok());
  for (bool swizzle : {true, false}) {
    std::stringstream copy(buffer.str());
    WorkspaceOptions options;
    options.swizzle = swizzle;
    Result<std::unique_ptr<Workspace>> loaded = LoadWorkspace(copy, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    Relationship* employment =
        loaded.value()->relationship("EMPLOYMENT").value();
    EXPECT_EQ(employment->size(), 3u);
    // Navigation works in both modes on the restored workspace.
    ComponentTable* xdept = loaded.value()->component("XDEPT").value();
    CachedRow* d1 = xdept->FindByValue(0, Value(int64_t{1}));
    ASSERT_NE(d1, nullptr);
    DependentCursor cursor(loaded.value().get(), employment, d1);
    int children = 0;
    while (cursor.Next()) ++children;
    EXPECT_EQ(children, 2) << "swizzle=" << swizzle;
  }
}

TEST_F(SerializeTest, CorruptInputsRejectedGracefully) {
  const char* cases[] = {
      "",                                   // empty
      "WRONG MAGIC\n",                      // bad magic
      "XNFCACHE 1\nGARBAGE",                // bad section
      "XNFCACHE 1\nCOMPONENTS 1\nCOMPONENT M 1 1\nCOL A 1\nROW",  // truncated
      "XNFCACHE 1\nCOMPONENTS 1\nCOMPONENT M 1 1\nCOL A 1\n"
      "ROW 0\nZ 9\n",                       // bad value tag
  };
  for (const char* text : cases) {
    std::stringstream in(text);
    Result<std::unique_ptr<Workspace>> loaded = LoadWorkspace(in);
    EXPECT_FALSE(loaded.ok()) << "input: " << text;
  }
}

TEST_F(SerializeTest, DanglingConnectionRejected) {
  std::stringstream in(
      "XNFCACHE 1\n"
      "COMPONENTS 1\n"
      "COMPONENT A 1 1\n"
      "COL X 1\n"
      "ROW 0\n"
      "I 7\n"
      "RELATIONSHIPS 1\n"
      "RELATIONSHIP R 2 1\n"
      "PARTNER A\n"
      "PARTNER A\n"
      "CONN 0 99\n"  // tid 99 does not exist
      "END\n");
  Result<std::unique_ptr<Workspace>> loaded = LoadWorkspace(in);
  EXPECT_FALSE(loaded.ok());
}

TEST_F(SerializeTest, FileHelpersReportIoErrors) {
  Result<std::unique_ptr<Workspace>> missing =
      LoadWorkspaceFromFile("/nonexistent/dir/cache.xc");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
  Status bad_write =
      SaveWorkspaceToFile(cache_->workspace(), "/nonexistent/dir/cache.xc");
  EXPECT_FALSE(bad_write.ok());
}

}  // namespace
}  // namespace xnfdb
