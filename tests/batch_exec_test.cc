// Tests of vectorized batch execution (ExecOptions::batch_size) and
// morsel-driven scan parallelism (ExecOptions::morsel_workers): results
// must be identical at every batch size — batch_size=1 reproduces
// tuple-at-a-time execution exactly — and batch boundaries (empty input,
// exactly batch_size rows, batch_size ± 1, fully filtered batches) must
// not lose or duplicate rows.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "api/database.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

std::set<std::string> Canonical(const QueryResult& result) {
  std::set<std::string> out;
  std::map<std::pair<int, TupleId>, std::string> rows;
  std::map<std::string, int> by_name;
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    by_name[result.outputs[i].name] = static_cast<int>(i);
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind == StreamItem::Kind::kRow) {
      rows[{item.output, item.tid}] = TupleToString(item.values);
      out.insert(result.outputs[item.output].name + ":" +
                 TupleToString(item.values));
    }
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind != StreamItem::Kind::kConnection) continue;
    const OutputDesc& desc = result.outputs[item.output];
    std::string s = desc.name + ":";
    for (size_t pi = 0; pi < item.tids.size(); ++pi) {
      s += rows[{by_name[desc.partner_names[pi]], item.tids[pi]}];
    }
    out.insert(std::move(s));
  }
  return out;
}

// A single-column table with rows 0..n-1, for exercising batch boundaries.
void LoadCounterTable(Database* db, int n) {
  ASSERT_TRUE(
      db->Execute("CREATE TABLE T (A INTEGER, PRIMARY KEY (A))").ok());
  for (int i = 0; i < n; ++i) {
    Result<Database::Outcome> r =
        db->Execute("INSERT INTO T VALUES (" + std::to_string(i) + ")");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

Result<QueryResult> RunAt(Database* db, const std::string& sql,
                          int batch_size) {
  ExecOptions opts;
  opts.batch_size = batch_size;
  return db->Query(sql, {}, opts);
}

// Row counts must agree between tuple-at-a-time and batched execution for
// every table size around a batch boundary, including the empty table.
TEST(BatchExecTest, BatchBoundariesPreserveRowCounts) {
  const int kBatch = 4;
  for (int n : {0, 1, kBatch - 1, kBatch, kBatch + 1, 3 * kBatch}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    Database db;
    LoadCounterTable(&db, n);
    Result<QueryResult> batched =
        RunAt(&db, "SELECT A FROM T ORDER BY A", kBatch);
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    Result<QueryResult> row_at_a_time =
        RunAt(&db, "SELECT A FROM T ORDER BY A", 1);
    ASSERT_TRUE(row_at_a_time.ok()) << row_at_a_time.status().ToString();
    ASSERT_EQ(batched.value().rows().size(), static_cast<size_t>(n));
    ASSERT_EQ(row_at_a_time.value().rows().size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(batched.value().rows()[i][0].AsInt(), i);
    }
  }
}

// A filter whose matches all land in the last batch: earlier batches come
// back with every row deselected, and the executor must keep pulling
// through them instead of treating an all-filtered batch as end-of-stream.
TEST(BatchExecTest, WholeBatchFilteredBySelectionVector) {
  const int kBatch = 4;
  Database db;
  LoadCounterTable(&db, 3 * kBatch);
  Result<QueryResult> r =
      RunAt(&db, "SELECT A FROM T WHERE A >= 8 ORDER BY A", kBatch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().rows().size(), 4u);
  EXPECT_EQ(r.value().rows()[0][0].AsInt(), 8);
  EXPECT_EQ(r.value().rows()[3][0].AsInt(), 11);

  // And the degenerate case: no row anywhere survives the filter.
  Result<QueryResult> empty =
      RunAt(&db, "SELECT A FROM T WHERE A < 0", kBatch);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_TRUE(empty.value().rows().empty());
}

// Batched runs actually emit batches (visible in the run's ExecStats).
TEST(BatchExecTest, BatchedRunReportsBatchesEmitted) {
  Database db;
  LoadCounterTable(&db, 10);
  Result<QueryResult> batched = RunAt(&db, "SELECT A FROM T", 4);
  ASSERT_TRUE(batched.ok());
  EXPECT_GE(batched.value().stats.batches_emitted.load(), 3);
  Result<QueryResult> rows = RunAt(&db, "SELECT A FROM T", 1);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().stats.batches_emitted.load(), 0);
}

// The Table 1 query set (the eight single-component SQL derivations over
// the stored views plus the full XNF query) must produce identical answer
// sets at batch_size=1 and batch_size=1024.
TEST(BatchExecTest, EqualitySweepOverTable1Queries) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW DEPT_ARC AS SELECT * FROM DEPT "
                         "WHERE LOC = 'ARC'")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW XEMP_V AS SELECT e.* FROM EMP e WHERE "
                         "EXISTS (SELECT 1 FROM DEPT_ARC d WHERE "
                         "d.DNO = e.EDNO)")
                  .ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW XPROJ_V AS SELECT p.* FROM PROJ p "
                         "WHERE EXISTS (SELECT 1 FROM DEPT_ARC d WHERE "
                         "d.DNO = p.PDNO)")
                  .ok());
  const char* kTable1Queries[] = {
      "SELECT * FROM DEPT_ARC",
      "SELECT * FROM XEMP_V",
      "SELECT * FROM XPROJ_V",
      "SELECT xd.DNO, xe.ENO FROM DEPT_ARC xd, XEMP_V xe "
      "WHERE xd.DNO = xe.EDNO",
      "SELECT xd.DNO, xp.PNO FROM DEPT_ARC xd, XPROJ_V xp "
      "WHERE xd.DNO = xp.PDNO",
      "SELECT s.SNO, s.SNAME FROM SKILLS s WHERE "
      "EXISTS (SELECT 1 FROM XEMP_V xe, EMPSKILLS es "
      "        WHERE xe.ENO = es.ESENO AND es.ESSNO = s.SNO) OR "
      "EXISTS (SELECT 1 FROM XPROJ_V xp, PROJSKILLS ps "
      "        WHERE xp.PNO = ps.PSPNO AND ps.PSSNO = s.SNO)",
      "SELECT xe.ENO, es.ESSNO FROM XEMP_V xe, EMPSKILLS es "
      "WHERE xe.ENO = es.ESENO",
      "SELECT xp.PNO, ps.PSSNO FROM XPROJ_V xp, PROJSKILLS ps "
      "WHERE xp.PNO = ps.PSPNO",
      testing_util::kDepsArcQuery,
  };
  for (const char* sql : kTable1Queries) {
    SCOPED_TRACE(sql);
    Result<QueryResult> one = RunAt(&db, sql, 1);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    Result<QueryResult> big = RunAt(&db, sql, 1024);
    ASSERT_TRUE(big.ok()) << big.status().ToString();
    EXPECT_EQ(Canonical(one.value()), Canonical(big.value()));
    // Awkward in-between sizes exercise boundaries the extremes miss.
    for (int bs : {2, 3, 7}) {
      Result<QueryResult> mid = RunAt(&db, sql, bs);
      ASSERT_TRUE(mid.ok()) << mid.status().ToString();
      EXPECT_EQ(Canonical(one.value()), Canonical(mid.value()))
          << "batch_size=" << bs;
    }
  }
}

// A scan-heavy single-stream query with small morsels must be executed by
// more than one claimed morsel, and still return the sequential answer in
// the sequential order.
TEST(BatchExecTest, MorselClaimingSplitsScanAcrossWorkers) {
  Database db;
  const int kN = 64;
  LoadCounterTable(&db, kN);
  ExecOptions seq;
  seq.morsel_workers = 1;
  Result<QueryResult> a = db.Query("SELECT A FROM T WHERE A >= 10", {}, seq);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_EQ(a.value().stats.morsels_claimed.load(), 0);

  ExecOptions par;
  par.morsel_workers = 4;
  par.morsel_rows = 8;
  Result<QueryResult> b = db.Query("SELECT A FROM T WHERE A >= 10", {}, par);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_GE(b.value().stats.morsels_claimed.load(), 2);
  ASSERT_EQ(a.value().rows().size(), b.value().rows().size());
  for (size_t i = 0; i < a.value().rows().size(); ++i) {
    EXPECT_EQ(a.value().rows()[i][0].AsInt(), b.value().rows()[i][0].AsInt());
  }
}

// Morsel execution of the full XNF query matches sequential execution.
TEST(BatchExecTest, MorselXnfMatchesSequential) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<QueryResult> seq =
      db.Query(testing_util::kDepsArcQuery, {}, ExecOptions{});
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ExecOptions par;
  par.morsel_workers = 4;
  par.morsel_rows = 2;
  Result<QueryResult> r = db.Query(testing_util::kDepsArcQuery, {}, par);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Canonical(seq.value()), Canonical(r.value()));
}

}  // namespace
}  // namespace xnfdb
