// Tests of the sys$ virtual system tables (storage/sysview.h): name
// resolution through the catalog, VirtualScanOp plans, per-shape statement
// statistics, and CO views built over two system views (the paper's
// machinery applied to the engine's own state).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/database.h"
#include "obs/statement_stats.h"

namespace xnfdb {
namespace {

std::vector<Tuple> MustRows(Database* db, const std::string& sql) {
  Result<QueryResult> r = db->Query(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  if (!r.ok()) return {};
  return r.value().rows();
}

TEST(SysViewTest, SelectOverSysMetricsSeesRegisteredCounters) {
  Database db;
  // Lower-case works: identifiers (including `$`) are case-normalized.
  std::vector<Tuple> rows = MustRows(
      &db, "SELECT name, kind, value FROM sys$metrics "
           "WHERE name = 'server.calls'");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].AsString(), "counter");
  EXPECT_GE(rows[0][2].AsInt(), 0);
}

TEST(SysViewTest, SysTablesListsTablesViewsAndVirtuals) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER, B VARCHAR)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1, 'x'), (2, 'y')").ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW V AS SELECT A FROM T").ok());

  std::vector<Tuple> rows =
      MustRows(&db, "SELECT NAME, KIND, ROW_COUNT, COLUMN_COUNT "
                    "FROM SYS$TABLES");
  bool saw_table = false, saw_view = false, saw_virtual = false;
  for (const Tuple& row : rows) {
    if (row[0].AsString() == "T") {
      saw_table = true;
      EXPECT_EQ(row[1].AsString(), "table");
      EXPECT_EQ(row[2].AsInt(), 2);
      EXPECT_EQ(row[3].AsInt(), 2);
    } else if (row[0].AsString() == "V") {
      saw_view = true;
      EXPECT_EQ(row[1].AsString(), "view");
      EXPECT_TRUE(row[2].is_null());
    } else if (row[0].AsString() == "SYS$METRICS") {
      saw_virtual = true;
      EXPECT_EQ(row[1].AsString(), "virtual");
      EXPECT_EQ(row[3].AsInt(), 3);
    }
  }
  EXPECT_TRUE(saw_table);
  EXPECT_TRUE(saw_view);
  EXPECT_TRUE(saw_virtual);
}

TEST(SysViewTest, PlanUsesVirtualScan) {
  Database db;
  Result<std::string> plan = db.Explain("SELECT * FROM SYS$CACHE");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan.value().find("VirtualScan(SYS$CACHE)"), std::string::npos)
      << plan.value();
}

TEST(SysViewTest, SysCacheRowsAreCacheNamespaceOnly) {
  Database db;
  Result<QueryResult> r = db.Query("SELECT NAME, VALUE FROM SYS$CACHE");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const Tuple& row : r.value().rows()) {
    const std::string& name = row[0].AsString();
    EXPECT_TRUE(name.rfind("cache.", 0) == 0 ||
                name.rfind("writeback.", 0) == 0)
        << name;
  }
}

TEST(SysViewTest, SysStatementsKeepsOneRowPerShape) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO T VALUES (1), (2), (3)").ok());
  // Two literal variants of one shape, plus one distinct shape.
  ASSERT_TRUE(db.Query("SELECT A FROM T WHERE A = 1").ok());
  ASSERT_TRUE(db.Query("SELECT A FROM T WHERE A = 2").ok());
  ASSERT_TRUE(db.Query("SELECT A FROM T").ok());

  std::vector<Tuple> rows = MustRows(
      &db, "SELECT DIGEST, TEXT, CALLS, ROWS_OUT, KIND FROM SYS$STATEMENTS");
  int shape_rows = 0;
  for (const Tuple& row : rows) {
    if (row[1].AsString() == "SELECT A FROM T WHERE (A = ?)") {
      ++shape_rows;
      EXPECT_EQ(row[2].AsInt(), 2);      // both literal variants
      EXPECT_EQ(row[3].AsInt(), 2);      // one row returned each
      EXPECT_EQ(row[4].AsString(), "query");
      EXPECT_EQ(row[0].AsString().size(), 16u);
    }
  }
  EXPECT_EQ(shape_rows, 1);

  // The store is queryable through the API too, and agrees.
  bool found = false;
  for (const obs::StatementSnapshot& s : db.statement_stats().Snapshot()) {
    if (s.text == "SELECT A FROM T WHERE (A = ?)") {
      found = true;
      EXPECT_EQ(s.calls, 2);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SysViewTest, SysHistogramsEmitsOneRowPerBucket) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(db.Query("SELECT A FROM T").ok());

  std::vector<Tuple> rows = MustRows(
      &db, "SELECT NAME, LE, BUCKET_COUNT, CUM_COUNT FROM SYS$HISTOGRAMS");
  ASSERT_FALSE(rows.empty());
  // Per-statement latency histograms surface as stmt.<digest>.us with a
  // monotone cumulative count and a trailing NULL-LE overflow bucket.
  bool saw_stmt = false, saw_overflow = false;
  std::string current;
  int64_t cum = 0;
  for (const Tuple& row : rows) {
    const std::string& name = row[0].AsString();
    if (name != current) {
      current = name;
      cum = 0;
    }
    EXPECT_GE(row[3].AsInt(), cum) << name;
    cum = row[3].AsInt();
    if (name.rfind("stmt.", 0) == 0) saw_stmt = true;
    if (row[1].is_null()) saw_overflow = true;
  }
  EXPECT_TRUE(saw_stmt);
  EXPECT_TRUE(saw_overflow);
}

TEST(SysViewTest, XnfRelateJoinsStatementsToTheirHistograms) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(db.Query("SELECT A FROM T").ok());  // seed one statement shape

  Result<QueryResult> r = db.Query(
      "OUT OF s AS SYS$STATEMENTS, h AS SYS$HISTOGRAMS, "
      "lat AS (RELATE s VIA LATENCY, h WHERE s.HIST = h.NAME) "
      "TAKE s(DIGEST, CALLS), h(NAME, BUCKET_COUNT), lat");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& result = r.value();
  int s_out = result.FindOutput("S");
  int lat_out = result.FindOutput("LAT");
  ASSERT_GE(s_out, 0);
  ASSERT_GE(lat_out, 0);
  EXPECT_GE(result.RowCount(s_out), 1u);
  // Every statement joins to its full latency histogram: one connection
  // per bucket row of its stmt.<digest>.us histogram.
  EXPECT_GE(result.ConnectionCount(lat_out), result.RowCount(s_out));
}

TEST(SysViewTest, CoViewOverSystemViewsCompilesAndRuns) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(db.Query("SELECT A FROM T").ok());
  ASSERT_TRUE(
      db.Execute(
            "CREATE VIEW SYSMON AS OUT OF s AS SYS$STATEMENTS, "
            "h AS SYS$HISTOGRAMS, "
            "lat AS (RELATE s VIA LATENCY, h WHERE s.HIST = h.NAME) TAKE *")
          .ok());
  Result<QueryResult> r = db.Query("SYSMON");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE(r.value().RowCount(r.value().FindOutput("S")), 1u);
}

TEST(SysViewTest, SysViewNamesAreReserved) {
  Database db;
  EXPECT_FALSE(db.Execute("CREATE TABLE SYS$METRICS (A INTEGER)").ok());
  EXPECT_FALSE(
      db.Execute("CREATE VIEW SYS$TABLES AS SELECT NAME FROM SYS$METRICS")
          .ok());
  // The providers are still intact afterwards.
  EXPECT_FALSE(MustRows(&db, "SELECT NAME FROM SYS$TABLES").empty());
}

TEST(SysViewTest, FilterAndProjectComposeOverVirtualScan) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE U (B INTEGER)").ok());
  std::vector<Tuple> rows = MustRows(
      &db, "SELECT NAME FROM SYS$TABLES WHERE KIND = 'table' ORDER BY NAME");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsString(), "T");
  EXPECT_EQ(rows[1][0].AsString(), "U");
}

}  // namespace
}  // namespace xnfdb
