// Tests of query resource governance: admission control (api/governor.h),
// cooperative cancellation / deadlines / row and memory budgets
// (exec/query_context.h) across the sequential, output-parallel,
// morsel-parallel and recursive-fixpoint execution paths, SYS$QUERIES, and
// the governor.* metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "api/governor.h"
#include "exec/query_context.h"
#include "obs/metrics.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

// A context whose deadline is already in the past: any governed execution
// must fail its very first cooperative check, regardless of how fast the
// query would otherwise be. This makes deadline tests deterministic.
std::shared_ptr<QueryContext> ExpiredContext() {
  auto ctx = std::make_shared<QueryContext>();
  QueryLimits limits;
  limits.deadline_us = QueryContext::NowUs() - 1;
  ctx->SetLimits(limits);
  return ctx;
}

bool IsTerminal(const Status& s) {
  return s.ok() || s.IsGovernorTermination();
}

// Loads a table large enough that budgets trip mid-execution rather than
// never (several thousand rows across multiple morsels).
void LoadWide(Database* db, int rows) {
  ASSERT_TRUE(db->Execute("CREATE TABLE WIDE (K INTEGER, PAYLOAD VARCHAR)")
                  .ok());
  std::string script;
  for (int i = 0; i < rows; ++i) {
    script += "INSERT INTO WIDE VALUES (" + std::to_string(i) +
              ", 'payload-payload-payload-" + std::to_string(i) + "');";
  }
  ASSERT_TRUE(db->ExecuteScript(script).ok());
}

TEST(GovernorTest, ExpiredDeadlineTerminatesSequentialQuery) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ExecOptions eo;
  eo.context = ExpiredContext();
  Result<QueryResult> r = db.Query("SELECT * FROM EMP", {}, eo);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
  // The termination reports how far execution got.
  EXPECT_NE(r.status().ToString().find("rows produced"), std::string::npos);
}

TEST(GovernorTest, ExpiredDeadlineTerminatesParallelAndMorselQueries) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  {
    ExecOptions eo;
    eo.parallel_workers = 4;
    eo.context = ExpiredContext();
    Result<QueryResult> r = db.Query(testing_util::kDepsArcQuery, {}, eo);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status().ToString();
  }
  {
    ExecOptions eo;
    eo.morsel_workers = 4;
    eo.morsel_rows = 2;
    eo.context = ExpiredContext();
    Result<QueryResult> r = db.Query("SELECT * FROM EMP WHERE SAL > 0", {}, eo);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status().ToString();
  }
}

TEST(GovernorTest, ExpiredDeadlineTerminatesFixpointQuery) {
  Database db;
  Result<size_t> loaded = db.ExecuteScript(R"sql(
    CREATE TABLE PART (PNO INTEGER, PNAME VARCHAR, PRIMARY KEY (PNO));
    CREATE TABLE USAGE (ASSEMBLY INTEGER, COMPONENT INTEGER);
    INSERT INTO PART VALUES (1, 'root'), (2, 'a'), (3, 'b'), (4, 'c');
    INSERT INTO USAGE VALUES (1, 2), (2, 3), (3, 4);
  )sql");
  ASSERT_TRUE(loaded.ok());
  ExecOptions eo;
  eo.context = ExpiredContext();
  Result<QueryResult> r = db.Query(R"sql(
    OUT OF root AS (SELECT * FROM PART WHERE PNO = 1),
           xpart AS PART,
           anchor AS (RELATE root VIA ANCHORS, xpart USING USAGE u
                      WHERE root.pno = u.assembly AND u.component = xpart.pno),
           uses AS (RELATE xpart VIA USES, xpart USING USAGE u
                    WHERE uses.pno = u.assembly AND u.component = xpart.pno)
    TAKE *
  )sql", {}, eo);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
      << r.status().ToString();
}

TEST(GovernorTest, RowBudgetTerminatesWithResourceExhausted) {
  Database db;
  LoadWide(&db, 2000);
  ExecOptions eo;
  eo.max_result_rows = 10;
  Result<QueryResult> r = db.Query("SELECT * FROM WIDE", {}, eo);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("row budget"), std::string::npos);
}

TEST(GovernorTest, MemoryBudgetTerminatesMaterializingQuery) {
  Database db;
  LoadWide(&db, 2000);
  ExecOptions eo;
  eo.mem_budget_bytes = 4096;
  // DISTINCT forces server-side materialization of every group.
  Result<QueryResult> r =
      db.Query("SELECT DISTINCT K, PAYLOAD FROM WIDE", {}, eo);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("memory budget"), std::string::npos);
}

TEST(GovernorTest, RowBudgetAppliesUnderMorselParallelism) {
  Database db;
  LoadWide(&db, 2000);
  ExecOptions eo;
  eo.morsel_workers = 4;
  eo.morsel_rows = 64;
  eo.max_result_rows = 10;
  Result<QueryResult> r = db.Query("SELECT * FROM WIDE WHERE K >= 0", {}, eo);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
}

TEST(GovernorTest, ZeroLimitsMeanUnlimited) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ExecOptions eo;
  eo.timeout_ms = 0;
  eo.max_result_rows = 0;
  eo.mem_budget_bytes = 0;
  Result<QueryResult> r = db.Query(testing_util::kDepsArcQuery, {}, eo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(GovernorTest, CancelUnknownIdIsNotFound) {
  Database db;
  Status s = db.Cancel(424242);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.ToString().find("424242"), std::string::npos);
}

TEST(GovernorTest, SysQueriesShowsTheRunningQueryItself) {
  Database db;
  Result<QueryResult> r = db.Query("SELECT STATE, TEXT FROM SYS$QUERIES");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::vector<Tuple> rows = r.value().rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "running");
  EXPECT_NE(rows[0][1].AsString().find("SYS$QUERIES"), std::string::npos);
}

TEST(GovernorTest, AdmissionRejectsWhenQueueIsFull) {
  obs::MetricsRegistry registry;
  GovernorOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 0;
  Governor governor(opts, &registry);
  auto ctx1 = std::make_shared<QueryContext>();
  Result<int64_t> a1 = governor.Admit("q1", ctx1);
  ASSERT_TRUE(a1.ok());
  auto ctx2 = std::make_shared<QueryContext>();
  Result<int64_t> a2 = governor.Admit("q2", ctx2);
  ASSERT_FALSE(a2.ok());
  EXPECT_EQ(a2.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(registry.GetCounter("governor.rejected")->value(), 1);
  governor.Release(a1.value(), Status::Ok());
  EXPECT_EQ(registry.GetCounter("governor.completed")->value(), 1);
  EXPECT_EQ(governor.running(), 0);
}

TEST(GovernorTest, QueuedQueryAdmittedWhenSlotFrees) {
  obs::MetricsRegistry registry;
  GovernorOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  Governor governor(opts, &registry);
  auto ctx1 = std::make_shared<QueryContext>();
  Result<int64_t> a1 = governor.Admit("holder", ctx1);
  ASSERT_TRUE(a1.ok());

  std::atomic<bool> admitted{false};
  Status waiter_status = Status::Ok();
  std::thread waiter([&] {
    auto ctx2 = std::make_shared<QueryContext>();
    Result<int64_t> a2 = governor.Admit("waiter", ctx2);
    if (a2.ok()) {
      admitted.store(true);
      governor.Release(a2.value(), Status::Ok());
    } else {
      waiter_status = a2.status();
    }
  });
  // Wait until the waiter is visibly queued, then free the slot.
  while (governor.queued() == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  governor.Release(a1.value(), Status::Ok());
  waiter.join();
  EXPECT_TRUE(admitted.load()) << waiter_status.ToString();
  EXPECT_EQ(registry.GetCounter("governor.queued")->value(), 1);
  EXPECT_EQ(registry.GetCounter("governor.admitted")->value(), 2);
  EXPECT_GE(registry.Snapshot().histograms.at("governor.queue_wait.us").count,
            2);
}

TEST(GovernorTest, QueuedQueryCanBeKilledWhileWaiting) {
  obs::MetricsRegistry registry;
  GovernorOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  Governor governor(opts, &registry);
  auto holder_ctx = std::make_shared<QueryContext>();
  Result<int64_t> holder = governor.Admit("holder", holder_ctx);
  ASSERT_TRUE(holder.ok());

  Status waiter_status = Status::Ok();
  std::thread waiter([&] {
    auto ctx = std::make_shared<QueryContext>();
    Result<int64_t> a = governor.Admit("victim", ctx);
    if (a.ok()) {
      governor.Release(a.value(), Status::Ok());
    } else {
      waiter_status = a.status();
    }
  });
  while (governor.queued() == 0) std::this_thread::yield();
  // The queued entry is visible in the snapshot; kill it by id.
  int64_t victim_id = -1;
  for (const Governor::QueryInfo& q : governor.Snapshot()) {
    if (q.state == "queued") victim_id = q.id;
  }
  ASSERT_GE(victim_id, 0);
  ASSERT_TRUE(governor.Cancel(victim_id).ok());
  waiter.join();
  EXPECT_EQ(waiter_status.code(), StatusCode::kCancelled)
      << waiter_status.ToString();
  governor.Release(holder.value(), Status::Ok());
}

TEST(GovernorTest, QueuedQueryHonoursItsDeadline) {
  obs::MetricsRegistry registry;
  GovernorOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  Governor governor(opts, &registry);
  auto holder_ctx = std::make_shared<QueryContext>();
  Result<int64_t> holder = governor.Admit("holder", holder_ctx);
  ASSERT_TRUE(holder.ok());

  auto ctx = std::make_shared<QueryContext>();
  QueryLimits limits;
  limits.deadline_us = QueryContext::NowUs() + 20 * 1000;  // 20ms
  ctx->SetLimits(limits);
  Result<int64_t> a = governor.Admit("deadline-waiter", ctx);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kDeadlineExceeded)
      << a.status().ToString();
  EXPECT_EQ(registry.GetCounter("governor.timed_out")->value(), 1);
  governor.Release(holder.value(), Status::Ok());
}

TEST(GovernorTest, DatabaseAdmissionControlEndToEnd) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  GovernorOptions opts = db.governor().options();
  opts.max_concurrent = 1;
  opts.max_queue = 0;
  db.governor().SetOptions(opts);

  // Hold the only slot directly, then observe a real query being shed.
  auto ctx = std::make_shared<QueryContext>();
  Result<int64_t> held = db.governor().Admit("holder", ctx);
  ASSERT_TRUE(held.ok());
  Result<QueryResult> r = db.Query("SELECT * FROM EMP");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  db.governor().Release(held.value(), Status::Ok());

  // With the slot free the same query succeeds.
  Result<QueryResult> ok = db.Query("SELECT * FROM EMP");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

// The hammer: many threads run morsel-parallel and recursive queries while
// a killer thread cancels whatever SYS$QUERIES-visible work it finds and
// random deadlines fire. Every outcome must be a clean terminal status —
// ok, kCancelled, kDeadlineExceeded or kResourceExhausted — and the engine
// must survive (no crash, no hang; ASan/UBSan-clean under the sanitizer
// job).
TEST(GovernorTest, CancellationHammerProducesOnlyTerminalStatuses) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<size_t> loaded = db.ExecuteScript(R"sql(
    CREATE TABLE PART (PNO INTEGER, PNAME VARCHAR, PRIMARY KEY (PNO));
    CREATE TABLE USAGE (ASSEMBLY INTEGER, COMPONENT INTEGER);
    INSERT INTO PART VALUES (1, 'root'), (2, 'a'), (3, 'b'), (4, 'c'),
                            (5, 'd');
    INSERT INTO USAGE VALUES (1, 2), (2, 3), (3, 4), (4, 5);
  )sql");
  ASSERT_TRUE(loaded.ok());

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 25;
  std::atomic<bool> stop{false};
  std::atomic<int> bad_statuses{0};
  std::vector<std::string> bad_messages;
  std::mutex bad_mu;

  std::thread killer([&] {
    uint64_t rng = 0x243f6a8885a308d3ull;
    while (!stop.load()) {
      for (const Governor::QueryInfo& q : db.governor().Snapshot()) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        if (rng % 3 == 0) (void)db.Cancel(q.id);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        ExecOptions eo;
        // Mix deadlines in: every third query gets a tight budget that may
        // or may not fire depending on scheduling.
        if (i % 3 == 0) eo.timeout_ms = 1 + (i % 5);
        Status status = Status::Ok();
        switch ((t + i) % 3) {
          case 0: {
            eo.morsel_workers = 4;
            eo.morsel_rows = 2;
            auto r = db.Query("SELECT * FROM EMP WHERE SAL > 0", {}, eo);
            if (!r.ok()) status = r.status();
            break;
          }
          case 1: {
            eo.parallel_workers = 4;
            auto r = db.Query(testing_util::kDepsArcQuery, {}, eo);
            if (!r.ok()) status = r.status();
            break;
          }
          default: {
            auto r = db.Query(R"sql(
              OUT OF root AS (SELECT * FROM PART WHERE PNO = 1),
                     xpart AS PART,
                     anchor AS (RELATE root VIA ANCHORS, xpart USING USAGE u
                                WHERE root.pno = u.assembly
                                  AND u.component = xpart.pno),
                     uses AS (RELATE xpart VIA USES, xpart USING USAGE u
                              WHERE uses.pno = u.assembly
                                AND u.component = xpart.pno)
              TAKE *
            )sql", {}, eo);
            if (!r.ok()) status = r.status();
            break;
          }
        }
        if (!IsTerminal(status)) {
          bad_statuses.fetch_add(1);
          std::lock_guard<std::mutex> lock(bad_mu);
          bad_messages.push_back(status.ToString());
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true);
  killer.join();

  std::string all_bad;
  for (const std::string& m : bad_messages) all_bad += m + "\n";
  EXPECT_EQ(bad_statuses.load(), 0) << all_bad;
  // Nothing is left behind in the live-query registry.
  EXPECT_EQ(db.governor().running(), 0);
  EXPECT_EQ(db.governor().queued(), 0);
  // Every run was admitted and classified.
  obs::MetricsRegistry& reg = db.metrics();
  EXPECT_GE(reg.GetCounter("governor.admitted")->value(),
            kThreads * kQueriesPerThread);
}

TEST(GovernorTest, GovernorTerminationIsAttributedInStatementStats) {
  Database db;
  LoadWide(&db, 500);
  ExecOptions eo;
  eo.max_result_rows = 5;
  Result<QueryResult> r = db.Query("SELECT * FROM WIDE", {}, eo);
  ASSERT_FALSE(r.ok());
  // The failed execution is recorded as an error under its fingerprint.
  bool found = false;
  for (const auto& row : db.statement_stats().Snapshot()) {
    if (row.kind != "query" || row.text.find("WIDE") == std::string::npos) {
      continue;
    }
    found = true;
    EXPECT_GE(row.errors, 1);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace xnfdb
