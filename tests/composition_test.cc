// Tests of CO composition (the closure property, paper Sect. 2): "Since the
// result of an XNF query consists of a set of component tables and
// relationships, an XNF query (or XNF view) can be used as input for a
// subsequent XNF query or view definition."
//
// A component definition `x AS view.component` makes the (reachability-
// filtered) extent of `component` in the stored XNF view the candidate
// table of `x`. Outer relationships then restrict further.

#include <gtest/gtest.h>

#include <set>

#include "api/database.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

class CompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
    std::string view = "CREATE VIEW deps_ARC AS " +
                       std::string(testing_util::kDepsArcQuery);
    Result<Database::Outcome> r = db_.Execute(view);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  std::set<int64_t> Values(const QueryResult& result,
                           const std::string& output, int col) {
    std::set<int64_t> out;
    int idx = result.FindOutput(output);
    EXPECT_GE(idx, 0) << output;
    for (const Tuple& row : result.RowsOf(idx)) {
      out.insert(row[col].AsInt());
    }
    return out;
  }

  Database db_;
};

TEST_F(CompositionTest, ComponentOfViewAsStandaloneInput) {
  // The xemp extent of deps_ARC (employees of ARC departments) reused as
  // the single component of a new CO.
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF arc_people AS deps_ARC.xemp
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Values(r.value(), "ARC_PEOPLE", 0),
            (std::set<int64_t>{10, 20, 30}));
}

TEST_F(CompositionTest, OuterReachabilityIntersectsViewExtent) {
  // Employees from the view, further restricted to those possessing a
  // skill: e1(s1), e2(s3), e3(s4) all have skills; drop one mapping first.
  ASSERT_TRUE(db_.Execute("DELETE FROM EMPSKILLS WHERE ESENO = 30").ok());
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xskill AS SKILLS,
           xemp AS deps_ARC.xemp,
           prop AS (RELATE xskill VIA OWNERS, xemp USING EMPSKILLS es
                    WHERE xskill.sno = es.essno AND es.eseno = xemp.eno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // e3 (30) is in the view extent but no longer reachable via a skill;
  // e4 (40) has no ARC department and is outside the view extent.
  EXPECT_EQ(Values(r.value(), "XEMP", 0), (std::set<int64_t>{10, 20}));
}

TEST_F(CompositionTest, ComposedComponentAsParent) {
  // The view's xdept extent as a root of a new CO with its own children.
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS deps_ARC.xdept,
           bigshots AS (SELECT * FROM EMP WHERE SAL > 82000.0),
           pay AS (RELATE xdept VIA PAYS, bigshots
                   WHERE xdept.dno = bigshots.edno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Values(r.value(), "XDEPT", 0), (std::set<int64_t>{1, 2}));
  // Salaries: e1=90000(d1), e2=80000, e3=85000(d2), e4=70000.
  EXPECT_EQ(Values(r.value(), "BIGSHOTS", 0), (std::set<int64_t>{10, 30}));
  EXPECT_EQ(r.value().ConnectionCount(r.value().FindOutput("PAY")), 2u);
}

TEST_F(CompositionTest, SameViewImportedOnceForTwoComponents) {
  // Two components drawing from the same view share one import.
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF people AS deps_ARC.xemp,
           places AS deps_ARC.xdept,
           at AS (RELATE places VIA HOSTS, people
                  WHERE places.dno = people.edno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Values(r.value(), "PLACES", 0), (std::set<int64_t>{1, 2}));
  EXPECT_EQ(Values(r.value(), "PEOPLE", 0), (std::set<int64_t>{10, 20, 30}));
}

TEST_F(CompositionTest, NestedCompositionTwoLevels) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW LEVEL2 AS OUT OF folks AS "
                          "deps_ARC.xemp TAKE *")
                  .ok());
  Result<QueryResult> r =
      db_.Query("OUT OF leaf AS LEVEL2.folks TAKE *");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Values(r.value(), "LEAF", 0), (std::set<int64_t>{10, 20, 30}));
}

TEST_F(CompositionTest, Errors) {
  // Unknown view.
  EXPECT_FALSE(db_.Query("OUT OF x AS GHOST.c TAKE *").ok());
  // SQL view used in composition position.
  ASSERT_TRUE(
      db_.Execute("CREATE VIEW SQLV AS SELECT * FROM DEPT").ok());
  EXPECT_FALSE(db_.Query("OUT OF x AS SQLV.c TAKE *").ok());
  // Unknown component of a valid view.
  EXPECT_FALSE(db_.Query("OUT OF x AS deps_ARC.ghost TAKE *").ok());
  // Relationship of a view is not a component table.
  EXPECT_FALSE(db_.Query("OUT OF x AS deps_ARC.employment TAKE *").ok());
}

TEST_F(CompositionTest, CompositionWithRecursionRejected) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE BOM (ASSEMBLY INTEGER, COMPONENT INTEGER);
    INSERT INTO BOM VALUES (10, 20);
  )sql")
                  .ok());
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xemp AS deps_ARC.xemp,
           sub AS (RELATE xemp VIA MANAGES, xemp USING BOM b
                   WHERE manages.eno = b.assembly AND b.component = xemp.eno)
    TAKE *
  )sql");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace xnfdb
