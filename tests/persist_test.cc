// Tests of whole-database persistence: schemas, rows (all value types,
// tombstoned rows excluded), primary/foreign keys, indexes, and stored SQL
// and XNF views survive a save/load round trip; corrupt inputs fail
// cleanly; a restored database answers XNF queries identically.

#include <gtest/gtest.h>

#include <sstream>

#include "api/database.h"
#include "storage/persist.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

TEST(PersistTest, RoundTripSchemasRowsAndKeys) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  // A deleted row must not be persisted.
  ASSERT_TRUE(db.Execute("DELETE FROM EMP WHERE ENO = 40").ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveCatalog(db.catalog(), buffer).ok());

  Database restored;
  ASSERT_TRUE(LoadCatalog(buffer, &restored.catalog()).ok());

  EXPECT_EQ(restored.catalog().TableNames(), db.catalog().TableNames());
  Result<QueryResult> rows =
      restored.Query("SELECT ENO, ENAME, SAL FROM EMP ORDER BY ENO");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows.value().rows().size(), 3u);
  EXPECT_EQ(rows.value().rows()[0][1].AsString(), "e1");
  EXPECT_DOUBLE_EQ(rows.value().rows()[0][2].AsDouble(), 90000.0);

  // PK and FK metadata survive (write-back relies on them).
  EXPECT_EQ(restored.catalog().PrimaryKeyColumn("EMP"), 0);
  const ForeignKey* fk =
      restored.catalog().FindForeignKey("EMP", "EDNO");
  ASSERT_NE(fk, nullptr);
  EXPECT_EQ(fk->ref_table, "DEPT");

  // The PK index is rebuilt: point query uses it.
  Result<QueryResult> point =
      restored.Query("SELECT ENAME FROM EMP WHERE ENO = 10");
  ASSERT_TRUE(point.ok());
  EXPECT_GE(point.value().stats.index_lookups.load(), 1);
}

TEST(PersistTest, ViewsSurviveAndXnfQueriesWork) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW DEPS AS " +
                         std::string(testing_util::kDepsArcQuery))
                  .ok());
  ASSERT_TRUE(
      db.Execute("CREATE VIEW ARCD AS SELECT * FROM DEPT WHERE LOC = 'ARC'")
          .ok());

  std::stringstream buffer;
  ASSERT_TRUE(SaveCatalog(db.catalog(), buffer).ok());
  Database restored;
  ASSERT_TRUE(LoadCatalog(buffer, &restored.catalog()).ok());

  ASSERT_TRUE(restored.catalog().HasView("DEPS"));
  EXPECT_TRUE(restored.catalog().GetView("DEPS").value()->is_xnf);
  Result<QueryResult> co = restored.Query("DEPS");
  ASSERT_TRUE(co.ok()) << co.status().ToString();
  EXPECT_EQ(co.value().RowCount(co.value().FindOutput("XEMP")), 3u);
  Result<QueryResult> sql = restored.Query("SELECT COUNT(*) FROM ARCD");
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(sql.value().rows()[0][0].AsInt(), 2);
}

TEST(PersistTest, SpecialValuesRoundTrip) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript(
                     "CREATE TABLE V (I INTEGER, S VARCHAR, D DOUBLE, "
                     "B BOOLEAN);"
                     "INSERT INTO V VALUES (-42, 'multi word '' quote', "
                     "0.125, FALSE), (NULL, NULL, NULL, NULL)")
                  .ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveCatalog(db.catalog(), buffer).ok());
  Database restored;
  ASSERT_TRUE(LoadCatalog(buffer, &restored.catalog()).ok());
  Result<QueryResult> result = restored.Query("SELECT * FROM V ORDER BY I");
  ASSERT_TRUE(result.ok());
  std::vector<Tuple> rows = result.value().rows();
  ASSERT_EQ(rows.size(), 2u);
  const Tuple& nulls = rows[0];  // NULLs sort first
  EXPECT_TRUE(nulls[0].is_null());
  const Tuple& full = rows[1];
  EXPECT_EQ(full[0].AsInt(), -42);
  EXPECT_EQ(full[1].AsString(), "multi word ' quote");
  EXPECT_DOUBLE_EQ(full[2].AsDouble(), 0.125);
  EXPECT_FALSE(full[3].AsBool());
}

TEST(PersistTest, LoadIntoNonEmptyCatalogRejected) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  std::stringstream buffer;
  ASSERT_TRUE(SaveCatalog(db.catalog(), buffer).ok());
  Status s = LoadCatalog(buffer, &db.catalog());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(PersistTest, CorruptInputsRejected) {
  const char* cases[] = {
      "",
      "WRONG\n",
      "XNFDB 1\nGARBAGE\n",
      "XNFDB 1\nTABLES 1\nTABLE T 1 1\nCOL A 1\nPK -1\nINDEXES\nROW\n",
      "XNFDB 1\nTABLES 1\nTABLE T 1 0\nCOL A 1\nPK 0\nINDEXES\nFKS 1\nFK\n",
  };
  for (const char* text : cases) {
    std::istringstream in(text);
    Catalog catalog;
    EXPECT_FALSE(LoadCatalog(in, &catalog).ok()) << "input: " << text;
  }
}

TEST(PersistTest, FileHelpers) {
  Database db;
  ASSERT_TRUE(db.ExecuteScript("CREATE TABLE T (A INTEGER);"
                               "INSERT INTO T VALUES (7)")
                  .ok());
  std::string path = ::testing::TempDir() + "/xnfdb_persist.db";
  ASSERT_TRUE(SaveCatalogToFile(db.catalog(), path).ok());
  Catalog restored;
  ASSERT_TRUE(LoadCatalogFromFile(path, &restored).ok());
  EXPECT_EQ(restored.GetTable("T").value()->row_count(), 1u);
  std::remove(path.c_str());

  Catalog empty;
  EXPECT_FALSE(LoadCatalogFromFile("/no/such/file", &empty).ok());
  EXPECT_FALSE(SaveCatalogToFile(db.catalog(), "/no/such/dir/f").ok());
}

}  // namespace
}  // namespace xnfdb
