// Tests of parallel output evaluation (ExecOptions::parallel_workers):
// results must be identical to sequential execution, with shared
// subexpressions still built exactly once.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "api/database.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

std::set<std::string> Canonical(const QueryResult& result) {
  std::set<std::string> out;
  std::map<std::pair<int, TupleId>, std::string> rows;
  std::map<std::string, int> by_name;
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    by_name[result.outputs[i].name] = static_cast<int>(i);
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind == StreamItem::Kind::kRow) {
      rows[{item.output, item.tid}] = TupleToString(item.values);
      out.insert(result.outputs[item.output].name + ":" +
                 TupleToString(item.values));
    }
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind != StreamItem::Kind::kConnection) continue;
    const OutputDesc& desc = result.outputs[item.output];
    std::string s = desc.name + ":";
    for (size_t pi = 0; pi < item.tids.size(); ++pi) {
      s += rows[{by_name[desc.partner_names[pi]], item.tids[pi]}];
    }
    out.insert(std::move(s));
  }
  return out;
}

TEST(ParallelTest, ParallelMatchesSequentialOnDepsArc) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ExecOptions seq;
  Result<QueryResult> a = db.Query(testing_util::kDepsArcQuery, {}, seq);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  for (int workers : {2, 4, 8}) {
    ExecOptions par;
    par.parallel_workers = workers;
    Result<QueryResult> b = db.Query(testing_util::kDepsArcQuery, {}, par);
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(Canonical(a.value()), Canonical(b.value()))
        << "workers=" << workers;
  }
}

TEST(ParallelTest, SharedSubexpressionsBuiltOnceUnderParallelism) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ExecOptions par;
  par.parallel_workers = 8;
  Result<QueryResult> r = db.Query(testing_util::kDepsArcQuery, {}, par);
  ASSERT_TRUE(r.ok());
  ExecOptions seq;
  Result<QueryResult> s = db.Query(testing_util::kDepsArcQuery, {}, seq);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(r.value().stats.spool_builds.load(),
            s.value().stats.spool_builds.load());
  EXPECT_EQ(r.value().stats.rows_scanned.load(),
            s.value().stats.rows_scanned.load());
}

TEST(ParallelTest, StatsAreConsistentSnapshotsAcrossWorkerCounts) {
  // The executor copies its private ExecStats into the result only after
  // every worker joined, so parallel runs must report exactly the
  // sequential counters — for every counter, not just spool builds.
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  // Repeats of one statement would flip to a matview serve (no operators,
  // no scans); this test is about the executor's stats snapshot.
  db.matviews().set_enabled(false);
  Result<QueryResult> seq =
      db.Query(testing_util::kDepsArcQuery, {}, ExecOptions{});
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  const ExecStats& a = seq.value().stats;
  for (int workers : {2, 4, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ExecOptions par;
    par.parallel_workers = workers;
    Result<QueryResult> r = db.Query(testing_util::kDepsArcQuery, {}, par);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    const ExecStats& b = r.value().stats;
    EXPECT_EQ(a.rows_scanned.load(), b.rows_scanned.load());
    EXPECT_EQ(a.index_lookups.load(), b.index_lookups.load());
    EXPECT_EQ(a.join_probes.load(), b.join_probes.load());
    EXPECT_EQ(a.exists_probes.load(), b.exists_probes.load());
    EXPECT_EQ(a.spool_builds.load(), b.spool_builds.load());
    EXPECT_EQ(a.spool_read_rows.load(), b.spool_read_rows.load());
    EXPECT_EQ(a.rows_output.load(), b.rows_output.load());
    EXPECT_EQ(a.operators_created.load(), b.operators_created.load());
  }
}

TEST(ParallelTest, ParallelSqlQueryUnaffected) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ExecOptions par;
  par.parallel_workers = 4;
  Result<QueryResult> r =
      db.Query("SELECT ENO FROM EMP ORDER BY ENO", {}, par);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().rows().size(), 4u);
  EXPECT_EQ(r.value().rows()[0][0].AsInt(), 10);
}

TEST(ParallelTest, ErrorsPropagateFromWorkers) {
  // A graph whose execution fails (arithmetic on strings survives
  // compilation but fails at runtime).
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ExecOptions par;
  par.parallel_workers = 4;
  Result<QueryResult> r = db.Query(
      "OUT OF bad AS (SELECT ENAME + 1 AS X FROM EMP) TAKE *", {}, par);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace xnfdb
