// Unit tests for the lexer and the SQL/XNF parser.

#include <gtest/gtest.h>

#include "parser/lexer.h"
#include "parser/parser.h"

namespace xnfdb {
namespace {

TEST(LexerTest, TokenKinds) {
  Result<std::vector<Token>> r =
      Tokenize("SELECT x, 42 3.5 'it''s' <= <> != -- comment\n ;");
  ASSERT_TRUE(r.ok());
  const std::vector<Token>& t = r.value();
  EXPECT_TRUE(t[0].IsKeyword("SELECT"));
  EXPECT_EQ(t[1].text, "X");  // identifiers upper-cased
  EXPECT_TRUE(t[2].IsSymbol(","));
  EXPECT_EQ(t[3].int_value, 42);
  EXPECT_DOUBLE_EQ(t[4].double_value, 3.5);
  EXPECT_EQ(t[5].text, "it's");  // escaped quote
  EXPECT_TRUE(t[6].IsSymbol("<="));
  EXPECT_TRUE(t[7].IsSymbol("<>"));
  EXPECT_TRUE(t[8].IsSymbol("<>"));  // != normalizes
  EXPECT_TRUE(t[9].IsSymbol(";"));
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, ScientificNotationAndIdentifierBoundary) {
  Result<std::vector<Token>> r = Tokenize("1e3 2e x1_y");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value()[0].double_value, 1000.0);
  EXPECT_EQ(r.value()[1].int_value, 2);     // '2' then ident 'E'
  EXPECT_EQ(r.value()[2].text, "E");
  EXPECT_EQ(r.value()[3].text, "X1_Y");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

TEST(ParserTest, SimpleSelect) {
  Result<std::unique_ptr<ast::SelectStmt>> r = ParseSelectQuery(
      "SELECT e.ename AS name, sal * 2 FROM emp e WHERE edno = 5 AND "
      "sal >= 100 ORDER BY name DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ast::SelectStmt& s = *r.value();
  ASSERT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.items[0].alias, "NAME");
  ASSERT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "EMP");
  EXPECT_EQ(s.from[0].alias, "E");
  ASSERT_NE(s.where, nullptr);
  ASSERT_EQ(s.order_by.size(), 1u);
  EXPECT_TRUE(s.order_by[0].descending);
}

TEST(ParserTest, OperatorPrecedence) {
  Result<std::unique_ptr<ast::SelectStmt>> r =
      ParseSelectQuery("SELECT a + b * c FROM t WHERE x = 1 OR y = 2 AND z = 3");
  ASSERT_TRUE(r.ok());
  // a + (b * c)
  const auto& item = static_cast<const ast::Binary&>(*r.value()->items[0].expr);
  EXPECT_EQ(item.op, "+");
  EXPECT_EQ(static_cast<const ast::Binary&>(*item.rhs).op, "*");
  // x=1 OR (y=2 AND z=3)
  const auto& where = static_cast<const ast::Binary&>(*r.value()->where);
  EXPECT_EQ(where.op, "OR");
  EXPECT_EQ(static_cast<const ast::Binary&>(*where.rhs).op, "AND");
}

TEST(ParserTest, ExistsAndInSubqueries) {
  Result<std::unique_ptr<ast::SelectStmt>> r = ParseSelectQuery(
      "SELECT * FROM emp e WHERE EXISTS (SELECT 1 FROM dept d WHERE "
      "d.dno = e.edno) AND eno IN (SELECT eseno FROM empskills)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& where = static_cast<const ast::Binary&>(*r.value()->where);
  EXPECT_EQ(where.lhs->kind, ast::Expr::Kind::kExists);
  EXPECT_EQ(where.rhs->kind, ast::Expr::Kind::kInSubquery);
}

TEST(ParserTest, LikeAndNotLike) {
  Result<std::unique_ptr<ast::SelectStmt>> r = ParseSelectQuery(
      "SELECT * FROM t WHERE a LIKE 'x%' AND b NOT LIKE '_y'");
  ASSERT_TRUE(r.ok());
  const auto& where = static_cast<const ast::Binary&>(*r.value()->where);
  EXPECT_FALSE(static_cast<const ast::Like&>(*where.lhs).negated);
  EXPECT_TRUE(static_cast<const ast::Like&>(*where.rhs).negated);
}

TEST(ParserTest, GroupByAndAggregates) {
  Result<std::unique_ptr<ast::SelectStmt>> r = ParseSelectQuery(
      "SELECT edno, COUNT(*), AVG(sal) FROM emp GROUP BY edno");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->group_by.size(), 1u);
  const auto& count = static_cast<const ast::FuncCall&>(*r.value()->items[1].expr);
  EXPECT_EQ(count.name, "COUNT");
  EXPECT_TRUE(count.args.empty());
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_FALSE(ParseSelectQuery("SELECT * FROM (SELECT 1)").ok());
  EXPECT_TRUE(ParseSelectQuery("SELECT * FROM (SELECT 1 FROM t) d").ok());
}

TEST(ParserTest, XnfQueryFull) {
  Result<std::unique_ptr<ast::XnfQuery>> r = ParseXnfQuery(R"(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE loc = 'ARC'),
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno),
           prop AS (RELATE xemp VIA HASPROP, xskills
                    USING EMPSKILLS es
                    WHERE xemp.eno = es.eseno AND es.essno = xskills.sno),
           xskills AS SKILLS
    TAKE xdept, xemp(eno, ename), employment
  )");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ast::XnfQuery& q = *r.value();
  ASSERT_EQ(q.defs.size(), 5u);
  EXPECT_EQ(q.defs[0].name, "XDEPT");
  EXPECT_EQ(q.defs[0].kind, ast::XnfDef::Kind::kTable);
  EXPECT_NE(q.defs[0].select, nullptr);
  EXPECT_EQ(q.defs[1].base_table, "EMP");
  const ast::XnfDef& rel = q.defs[2];
  EXPECT_EQ(rel.kind, ast::XnfDef::Kind::kRelationship);
  EXPECT_EQ(rel.relate.parent, "XDEPT");
  EXPECT_EQ(rel.relate.role, "EMPLOYS");
  EXPECT_EQ(rel.relate.children, (std::vector<std::string>{"XEMP"}));
  const ast::XnfDef& prop = q.defs[3];
  ASSERT_EQ(prop.relate.using_tables.size(), 1u);
  EXPECT_EQ(prop.relate.using_tables[0].table, "EMPSKILLS");
  EXPECT_EQ(prop.relate.using_tables[0].alias, "ES");
  EXPECT_FALSE(q.take_all);
  ASSERT_EQ(q.take.size(), 3u);
  EXPECT_EQ(q.take[1].columns, (std::vector<std::string>{"ENO", "ENAME"}));
}

TEST(ParserTest, XnfTakeStar) {
  Result<std::unique_ptr<ast::XnfQuery>> r =
      ParseXnfQuery("OUT OF a AS T1 TAKE *");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value()->take_all);
}

TEST(ParserTest, XnfErrors) {
  // Relationship without children.
  EXPECT_FALSE(
      ParseXnfQuery("OUT OF r AS (RELATE a VIA x WHERE 1=1) TAKE *").ok());
  // Missing TAKE.
  EXPECT_FALSE(ParseXnfQuery("OUT OF a AS T1").ok());
}

TEST(ParserTest, NaryRelationship) {
  Result<std::unique_ptr<ast::XnfQuery>> r = ParseXnfQuery(
      "OUT OF a AS T1, b AS T2, c AS T3, "
      "r AS (RELATE a VIA links, b, c WHERE a.x = b.y AND a.x = c.z) TAKE *");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()->defs[3].relate.children.size(), 2u);
}

TEST(ParserTest, CreateTableWithKeys) {
  Result<ast::StatementPtr> r = ParseStatement(
      "CREATE TABLE EMP (ENO INTEGER, ENAME VARCHAR(30), SAL DOUBLE, "
      "PRIMARY KEY (ENO), FOREIGN KEY (EDNO) REFERENCES DEPT (DNO))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& ct = static_cast<const ast::CreateTableStatement&>(*r.value());
  EXPECT_EQ(ct.columns.size(), 3u);
  EXPECT_EQ(ct.primary_key, "ENO");
  ASSERT_EQ(ct.foreign_keys.size(), 1u);
  EXPECT_EQ(ct.foreign_keys[0].ref_table, "DEPT");
}

TEST(ParserTest, CreateViewCapturesDefinitionText) {
  Result<ast::StatementPtr> r =
      ParseStatement("CREATE VIEW v AS SELECT eno FROM emp WHERE sal > 10");
  ASSERT_TRUE(r.ok());
  const auto& cv = static_cast<const ast::CreateViewStatement&>(*r.value());
  EXPECT_FALSE(cv.is_xnf);
  EXPECT_NE(cv.definition_text.find("SELECT"), std::string::npos);
  EXPECT_NE(cv.definition_text.find("sal > 10"), std::string::npos);

  Result<ast::StatementPtr> x =
      ParseStatement("CREATE VIEW xv AS OUT OF a AS T1 TAKE *");
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(static_cast<const ast::CreateViewStatement&>(*x.value()).is_xnf);
}

TEST(ParserTest, DmlStatements) {
  EXPECT_TRUE(ParseStatement("INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());
  EXPECT_TRUE(
      ParseStatement("UPDATE t SET a = 1, b = 'x' WHERE c < 3").ok());
  EXPECT_TRUE(ParseStatement("DELETE FROM t WHERE a = 1").ok());
  EXPECT_TRUE(ParseStatement("DELETE FROM t").ok());
  EXPECT_TRUE(ParseStatement("CREATE INDEX ON t (a)").ok());
  EXPECT_TRUE(ParseStatement("CREATE INDEX i1 ON t (a)").ok());
  EXPECT_TRUE(ParseStatement("DROP TABLE t").ok());
  EXPECT_TRUE(ParseStatement("DROP VIEW v").ok());
}

TEST(ParserTest, ScriptSplitsOnSemicolons) {
  Result<std::vector<ast::StatementPtr>> r =
      ParseScript("SELECT 1 FROM a; SELECT 2 FROM b;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseStatement("SELECT 1 FROM t garbage garbage").ok());
  EXPECT_FALSE(ParseSelectQuery("SELECT 1 FROM t; SELECT 2 FROM t").ok());
}

TEST(ParserTest, CloneRoundTripsToSameText) {
  const char* sql =
      "SELECT DISTINCT a, b + 1 AS c FROM t u WHERE EXISTS (SELECT 1 FROM s "
      "WHERE s.k = u.k) ORDER BY a";
  Result<std::unique_ptr<ast::SelectStmt>> r = ParseSelectQuery(sql);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<ast::SelectStmt> clone = ast::CloneSelect(*r.value());
  EXPECT_EQ(clone->ToString(), r.value()->ToString());

  Result<std::unique_ptr<ast::XnfQuery>> x = ParseXnfQuery(
      "OUT OF a AS T1, b AS T2, r AS (RELATE a VIA v, b WHERE a.x = b.y) "
      "TAKE a, r, b(c1)");
  ASSERT_TRUE(x.ok());
  std::unique_ptr<ast::XnfQuery> xclone = ast::CloneXnf(*x.value());
  EXPECT_EQ(xclone->ToString(), x.value()->ToString());
}

}  // namespace
}  // namespace xnfdb
