// Unit tests for the rewrite engine and rules: the Fig. 3 pipeline
// (existential subquery -> join -> merged SELECT), clean-up rules, and the
// XNF semantic rewrite shapes of Sect. 4.2 (Fig. 5/6).

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "rewrite/nf_rules.h"
#include "rewrite/rule.h"
#include "rewrite/xnf_rewrite.h"
#include "semantics/builder.h"
#include "storage/catalog.h"
#include "xnf/op_count.h"

namespace xnfdb {
namespace {

using qgm::Box;
using qgm::BoxKind;
using qgm::QuantKind;
using qgm::QueryGraph;

Catalog MakeCatalog() {
  Catalog c;
  c.CreateTable("DEPT", Schema({{"DNO", DataType::kInt},
                                {"LOC", DataType::kString}}))
      .value();
  c.CreateTable("EMP", Schema({{"ENO", DataType::kInt},
                               {"EDNO", DataType::kInt}}))
      .value();
  return c;
}

// The Fig. 3 query.
std::unique_ptr<QueryGraph> BuildFig3(const Catalog& c) {
  Result<std::unique_ptr<ast::SelectStmt>> sel = ParseSelectQuery(
      "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE "
      "d.LOC = 'ARC' AND d.DNO = e.EDNO)");
  EXPECT_TRUE(sel.ok());
  Result<std::unique_ptr<QueryGraph>> g = BuildSelect(c, *sel.value());
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

const Box* QueryBody(const QueryGraph& g) {
  const Box* top = g.box(g.top_box_id());
  return g.box(top->outputs[0].box_id);
}

TEST(RewriteTest, ExistsToJoinConvertsQuantifierAndSetsDistinct) {
  Catalog c = MakeCatalog();
  std::unique_ptr<QueryGraph> g = BuildFig3(c);
  const Box* body = QueryBody(*g);
  ASSERT_EQ(body->exists_groups.size(), 1u);
  EXPECT_FALSE(body->distinct);

  RuleEngine engine(MakeNfRules({.exists_to_join = true,
                                 .select_merge = false,
                                 .remove_unused = false}));
  Result<RewriteStats> stats = engine.Run(g.get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().TotalFirings(), 1);

  body = QueryBody(*g);
  // Fig. 3b: the E quantifier became an F quantifier; duplicate
  // elimination restores set semantics.
  EXPECT_TRUE(body->exists_groups.empty());
  EXPECT_EQ(body->quants.size(), 2u);
  for (const qgm::Quantifier& q : body->quants) {
    EXPECT_EQ(q.kind, QuantKind::kForeach);
  }
  EXPECT_TRUE(body->distinct);
}

TEST(RewriteTest, SelectMergeInlinesSingleConsumerBox) {
  Catalog c = MakeCatalog();
  std::unique_ptr<QueryGraph> g = BuildFig3(c);
  RuleEngine engine(MakeDefaultNfRules());
  Result<RewriteStats> stats = engine.Run(g.get());
  ASSERT_TRUE(stats.ok());

  // Fig. 3c: a single SELECT box joining EMP and DEPT remains.
  const Box* body = QueryBody(*g);
  EXPECT_EQ(body->quants.size(), 2u);
  int live_selects = 0;
  for (size_t i = 0; i < g->box_count(); ++i) {
    const Box* b = g->box(static_cast<int>(i));
    if (!g->IsDead(b->id) && b->kind == BoxKind::kSelect) ++live_selects;
  }
  EXPECT_EQ(live_selects, 1);
  // Both the local predicate and the join predicate are now in one body.
  EXPECT_EQ(body->preds.size(), 2u);
}

TEST(RewriteTest, MergeRefusesSharedBoxes) {
  // A derived table consumed twice (self-join) must not be inlined.
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::SelectStmt>> sel = ParseSelectQuery(
      "SELECT a.ENO FROM (SELECT ENO FROM EMP) a, (SELECT ENO FROM EMP) b "
      "WHERE a.ENO = b.ENO");
  ASSERT_TRUE(sel.ok());
  Result<std::unique_ptr<QueryGraph>> g = BuildSelect(c, *sel.value());
  ASSERT_TRUE(g.ok());
  // Both derived tables are single-consumer; they merge. But a DISTINCT
  // derived table must not.
  Result<std::unique_ptr<ast::SelectStmt>> sel2 = ParseSelectQuery(
      "SELECT a.ENO FROM (SELECT DISTINCT ENO FROM EMP) a");
  ASSERT_TRUE(sel2.ok());
  Result<std::unique_ptr<QueryGraph>> g2 = BuildSelect(c, *sel2.value());
  ASSERT_TRUE(g2.ok());
  RuleEngine engine(MakeDefaultNfRules());
  ASSERT_TRUE(engine.Run(g2.value().get()).ok());
  const Box* body = QueryBody(*g2.value());
  // The DISTINCT box survives as the body's input.
  ASSERT_EQ(body->quants.size(), 1u);
  const Box* inner = g2.value()->box(body->quants[0].box_id);
  EXPECT_EQ(inner->kind, BoxKind::kSelect);
  EXPECT_TRUE(inner->distinct);
}

TEST(RewriteTest, RemoveUnusedBoxesDropsOrphans) {
  Catalog c = MakeCatalog();
  std::unique_ptr<QueryGraph> g = BuildFig3(c);
  // Create an orphan box.
  Box* orphan = g->NewBox(BoxKind::kSelect, "orphan");
  int orphan_id = orphan->id;
  RuleEngine engine(MakeNfRules({.exists_to_join = false,
                                 .select_merge = false,
                                 .remove_unused = true}));
  ASSERT_TRUE(engine.Run(g.get()).ok());
  EXPECT_TRUE(g->IsDead(orphan_id));
}

TEST(RewriteTest, RuleEngineReportsFirings) {
  Catalog c = MakeCatalog();
  std::unique_ptr<QueryGraph> g = BuildFig3(c);
  RuleEngine engine(MakeDefaultNfRules());
  Result<RewriteStats> stats = engine.Run(g.get());
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().TotalFirings(), 2);  // E2F + at least one merge
  EXPECT_NE(stats.value().ToString().find("ExistsToJoin"), std::string::npos);
}

// --- XNF semantic rewrite ----------------------------------------------------

const char* kSmallXnf = R"(
  OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
         xemp AS EMP,
         employment AS (RELATE xdept VIA EMPLOYS, xemp
                        WHERE xdept.dno = xemp.edno)
  TAKE *
)";

TEST(XnfRewriteTest, SharedModeReusesConnectionBoxForChild) {
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::XnfQuery>> q = ParseXnfQuery(kSmallXnf);
  ASSERT_TRUE(q.ok());
  Result<std::unique_ptr<QueryGraph>> g = BuildXnf(c, *q.value());
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsXnfGraph(*g.value()));
  ASSERT_TRUE(XnfSemanticRewrite(g.value().get()).ok());
  EXPECT_FALSE(IsXnfGraph(*g.value()));

  // Top has three outputs; the connection output and the child component
  // derive from the same box (output optimization / CSE).
  const Box* top = g.value()->box(g.value()->top_box_id());
  ASSERT_EQ(top->outputs.size(), 3u);
  int employment_box = -1, xemp_box = -1;
  for (const qgm::TopOutput& out : top->outputs) {
    if (out.name == "EMPLOYMENT") employment_box = out.box_id;
    if (out.name == "XEMP") xemp_box = out.box_id;
  }
  ASSERT_GE(employment_box, 0);
  ASSERT_GE(xemp_box, 0);
  const Box* xemp = g.value()->box(xemp_box);
  // The child is a distinct projection over the connection box.
  ASSERT_EQ(xemp->quants.size(), 1u);
  EXPECT_EQ(xemp->quants[0].box_id, employment_box);
  EXPECT_TRUE(xemp->distinct);
  // One join total (Fig. 5b): the connection box.
  OpCounts counts = CountOps(*g.value());
  EXPECT_EQ(counts.joins, 1);
  EXPECT_EQ(counts.selections, 1);
}

TEST(XnfRewriteTest, UnsharedModeBuildsExistsForm) {
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::XnfQuery>> q = ParseXnfQuery(kSmallXnf);
  ASSERT_TRUE(q.ok());
  Result<std::unique_ptr<QueryGraph>> g = BuildXnf(c, *q.value());
  ASSERT_TRUE(g.ok());
  XnfRewriteOptions options;
  options.share_connection_boxes = false;
  ASSERT_TRUE(XnfSemanticRewrite(g.value().get(), options).ok());

  // The child derivation is in the Fig. 5a existential form...
  const Box* top = g.value()->box(g.value()->top_box_id());
  const Box* xemp = nullptr;
  for (const qgm::TopOutput& out : top->outputs) {
    if (out.name == "XEMP") xemp = g.value()->box(out.box_id);
  }
  ASSERT_NE(xemp, nullptr);
  EXPECT_EQ(xemp->exists_groups.size(), 1u);

  // ...which the NF rules then convert to the Fig. 5b join form.
  RuleEngine engine(MakeDefaultNfRules());
  ASSERT_TRUE(engine.Run(g.value().get()).ok());
  EXPECT_TRUE(xemp->exists_groups.empty());
  EXPECT_TRUE(xemp->distinct);
}

TEST(XnfRewriteTest, CycleDetectedAndRoutedToFixpoint) {
  Catalog c;
  c.CreateTable("PART", Schema({{"PNO", DataType::kInt},
                                {"SUPER", DataType::kInt}}))
      .value();
  Result<std::unique_ptr<ast::XnfQuery>> q = ParseXnfQuery(R"(
    OUT OF root AS (SELECT * FROM PART WHERE PNO = 1),
           xpart AS PART,
           anchor AS (RELATE root VIA TOP, xpart WHERE root.pno = xpart.super),
           sub AS (RELATE xpart VIA HAS, xpart WHERE has.pno = xpart.super)
    TAKE *
  )");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  Result<std::unique_ptr<QueryGraph>> g = BuildXnf(c, *q.value());
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(XnfHasCycle(*g.value()));
  Status s = XnfSemanticRewrite(g.value().get());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace xnfdb
