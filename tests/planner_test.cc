// Unit tests for the plan optimizer: cardinality estimation, access-path
// and join-method selection, spooling of shared boxes, and plan-option
// behaviour.

#include <gtest/gtest.h>

#include "optimizer/planner.h"
#include "parser/parser.h"
#include "semantics/builder.h"
#include "storage/catalog.h"

namespace xnfdb {
namespace {

// 100 depts (10 ARC), 1000 emps.
Catalog MakeCatalog() {
  Catalog c;
  Table* dept = c.CreateTable("DEPT", Schema({{"DNO", DataType::kInt},
                                              {"LOC", DataType::kString}}))
                    .value();
  Table* emp = c.CreateTable("EMP", Schema({{"ENO", DataType::kInt},
                                            {"EDNO", DataType::kInt}}))
                   .value();
  for (int d = 0; d < 100; ++d) {
    dept->Insert({Value(int64_t{d}), Value(d < 10 ? "ARC" : "YKT")}).value();
  }
  for (int e = 0; e < 1000; ++e) {
    emp->Insert({Value(int64_t{e}), Value(int64_t{e % 100})}).value();
  }
  { Status s = c.DeclarePrimaryKey("DEPT", "DNO"); EXPECT_TRUE(s.ok()); }
  { Status s = c.DeclarePrimaryKey("EMP", "ENO"); EXPECT_TRUE(s.ok()); }
  return c;
}

std::unique_ptr<qgm::QueryGraph> Graph(const Catalog& c,
                                       const std::string& sql) {
  Result<std::unique_ptr<ast::SelectStmt>> sel = ParseSelectQuery(sql);
  EXPECT_TRUE(sel.ok()) << sel.status().ToString();
  Result<std::unique_ptr<qgm::QueryGraph>> g = BuildSelect(c, *sel.value());
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

int BodyBox(const qgm::QueryGraph& g) {
  return g.box(g.top_box_id())->outputs[0].box_id;
}

TEST(PlannerTest, CardinalityEstimates) {
  Catalog c = MakeCatalog();
  ExecStats stats;

  std::unique_ptr<qgm::QueryGraph> scan = Graph(c, "SELECT * FROM EMP");
  Planner p1(&c, scan.get(), PlanOptions{}, &stats);
  EXPECT_NEAR(p1.EstimateCard(BodyBox(*scan)), 1000.0, 1.0);

  // Equality on a unique column: ~1 row.
  std::unique_ptr<qgm::QueryGraph> point =
      Graph(c, "SELECT * FROM EMP WHERE ENO = 5");
  Planner p2(&c, point.get(), PlanOptions{}, &stats);
  EXPECT_NEAR(p2.EstimateCard(BodyBox(*point)), 1.0, 0.5);

  // FK join: about |EMP| rows.
  std::unique_ptr<qgm::QueryGraph> join = Graph(
      c, "SELECT * FROM EMP e, DEPT d WHERE e.EDNO = d.DNO");
  Planner p3(&c, join.get(), PlanOptions{}, &stats);
  double join_card = p3.EstimateCard(BodyBox(*join));
  EXPECT_GT(join_card, 100.0);
  EXPECT_LT(join_card, 10000.0);
}

TEST(PlannerTest, IndexAccessPathOnlyForIndexedEquality) {
  Catalog c = MakeCatalog();
  ExecStats stats;
  std::unique_ptr<qgm::QueryGraph> g =
      Graph(c, "SELECT * FROM DEPT WHERE DNO = 3");
  Planner planner(&c, g.get(), PlanOptions{}, &stats);
  Result<OperatorPtr> op = planner.BoxIterator(BodyBox(*g));
  ASSERT_TRUE(op.ok());
  Result<std::vector<Tuple>> rows = DrainOperator(op.value().get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(stats.index_lookups, 1);
  EXPECT_EQ(stats.rows_scanned, 1);  // only the index hit

  // No index on LOC: a full scan.
  ExecStats stats2;
  std::unique_ptr<qgm::QueryGraph> g2 =
      Graph(c, "SELECT * FROM DEPT WHERE LOC = 'ARC'");
  Planner planner2(&c, g2.get(), PlanOptions{}, &stats2);
  Result<OperatorPtr> op2 = planner2.BoxIterator(BodyBox(*g2));
  ASSERT_TRUE(op2.ok());
  ASSERT_TRUE(DrainOperator(op2.value().get()).ok());
  EXPECT_EQ(stats2.index_lookups, 0);
  EXPECT_EQ(stats2.rows_scanned, 100);
}

TEST(PlannerTest, SharedBoxMaterializedOnce) {
  Catalog c = MakeCatalog();
  // A view referenced twice in one query -> one shared box -> one spool.
  ViewDef v;
  v.name = "ARCD";
  v.definition = "SELECT * FROM DEPT WHERE LOC = 'ARC'";
  ASSERT_TRUE(c.CreateView(v).ok());
  std::unique_ptr<qgm::QueryGraph> g = Graph(
      c, "SELECT a.DNO FROM ARCD a, ARCD b WHERE a.DNO = b.DNO");
  ExecStats stats;
  Planner planner(&c, g.get(), PlanOptions{}, &stats);
  Result<OperatorPtr> op = planner.BoxIterator(BodyBox(*g));
  ASSERT_TRUE(op.ok());
  Result<std::vector<Tuple>> rows = DrainOperator(op.value().get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 10u);
  EXPECT_EQ(stats.spool_builds, 1);
  EXPECT_GT(stats.spool_read_rows, 0);
  // The ARC selection scanned DEPT exactly once.
  EXPECT_EQ(stats.rows_scanned, 100);
}

TEST(PlannerTest, SpoolingCanBeDisabled) {
  Catalog c = MakeCatalog();
  ViewDef v;
  v.name = "ARCD";
  v.definition = "SELECT * FROM DEPT WHERE LOC = 'ARC'";
  ASSERT_TRUE(c.CreateView(v).ok());
  std::unique_ptr<qgm::QueryGraph> g = Graph(
      c, "SELECT a.DNO FROM ARCD a, ARCD b WHERE a.DNO = b.DNO");
  ExecStats stats;
  PlanOptions opts;
  opts.spool_shared = false;
  Planner planner(&c, g.get(), opts, &stats);
  Result<OperatorPtr> op = planner.BoxIterator(BodyBox(*g));
  ASSERT_TRUE(op.ok());
  ASSERT_TRUE(DrainOperator(op.value().get()).ok());
  EXPECT_EQ(stats.spool_builds, 0);
  EXPECT_EQ(stats.rows_scanned, 200);  // DEPT scanned per consumer
}

TEST(PlannerTest, GreedyOrderStartsWithSelectiveSide) {
  // The planner should scan the filtered DEPT side first and probe with it;
  // either way the join must produce dept-1 employees only.
  Catalog c = MakeCatalog();
  std::unique_ptr<qgm::QueryGraph> g = Graph(
      c,
      "SELECT e.ENO FROM EMP e, DEPT d WHERE e.EDNO = d.DNO AND d.DNO = 1");
  ExecStats stats;
  Planner planner(&c, g.get(), PlanOptions{}, &stats);
  Result<OperatorPtr> op = planner.BoxIterator(BodyBox(*g));
  ASSERT_TRUE(op.ok());
  Result<std::vector<Tuple>> rows = DrainOperator(op.value().get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 10u);
  // DNO = 1 went through the PK index (cardinality-driven choice).
  EXPECT_GE(stats.index_lookups, 1);
}

TEST(PlannerTest, CompilingDeadBoxFails) {
  Catalog c = MakeCatalog();
  std::unique_ptr<qgm::QueryGraph> g = Graph(c, "SELECT * FROM EMP");
  int body = BodyBox(*g);
  g->MarkDead(body);
  ExecStats stats;
  Planner planner(&c, g.get(), PlanOptions{}, &stats);
  EXPECT_FALSE(planner.BoxIterator(body).ok());
}

}  // namespace
}  // namespace xnfdb
