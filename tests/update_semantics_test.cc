// End-to-end tests of the paper's Sect. 2 update semantics:
//
//  * "Update of the nodes is essentially identical to update of views in
//    the relational DBMSs" — selection views are updatable;
//  * "Update of any portion of a base table can always be replaced with
//    update of a view consisting of a proper selection over the base
//    table" — updates through restricted views hit the base rows;
//  * connect/disconnect translate to FK updates / connect-table rows, and
//    their effects surface on re-evaluation (reachability changes);
//  * mixed batches of pending operations apply in a consistent order.

#include <gtest/gtest.h>

#include <set>

#include "cache/xnf_cache.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

class UpdateSemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
  }

  std::set<int64_t> Extent(XNFCache* cache, const std::string& component) {
    std::set<int64_t> out;
    ComponentTable* comp =
        cache->workspace().component(component).value();
    for (size_t i = 0; i < comp->size(); ++i) {
      if (!comp->row(i)->deleted) out.insert(comp->row(i)->values[0].AsInt());
    }
    return out;
  }

  Database db_;
};

TEST_F(UpdateSemanticsTest, UpdateThroughRestrictedViewHitsBaseRow) {
  // The authorization-style view: only ARC employees visible; an update
  // through it must update the base EMP row.
  auto cache = XNFCache::Evaluate(&db_, R"sql(
    OUT OF visible AS (SELECT * FROM EMP WHERE EDNO = 1)
    TAKE *
  )sql");
  ASSERT_TRUE(cache.ok());
  ComponentTable* visible =
      cache.value()->workspace().component("VISIBLE").value();
  EXPECT_EQ(visible->LiveCount(), 2u);
  CachedRow* row = visible->FindByValue(0, Value(int64_t{10}));
  ASSERT_TRUE(cache.value()->Update(row, "SAL", Value(123456.0)).ok());
  ASSERT_TRUE(cache.value()->WriteBack().ok());

  Result<QueryResult> check =
      db_.Query("SELECT SAL FROM EMP WHERE ENO = 10");
  ASSERT_TRUE(check.ok());
  EXPECT_DOUBLE_EQ(check.value().rows()[0][0].AsDouble(), 123456.0);
}

TEST_F(UpdateSemanticsTest, UpdateMovingRowOutOfViewScope) {
  // Changing the FK through the cache moves the row out of the view's
  // restriction; the cache still holds it until Refresh.
  auto cache = XNFCache::Evaluate(
      &db_, "OUT OF visible AS (SELECT * FROM EMP WHERE EDNO = 1) TAKE *");
  ASSERT_TRUE(cache.ok());
  CachedRow* row = cache.value()
                       ->workspace()
                       .component("VISIBLE")
                       .value()
                       ->FindByValue(0, Value(int64_t{20}));
  ASSERT_TRUE(cache.value()->Update(row, "EDNO", Value(int64_t{3})).ok());
  ASSERT_TRUE(cache.value()->WriteBack().ok());
  ASSERT_TRUE(cache.value()->Refresh().ok());
  EXPECT_EQ(Extent(cache.value().get(), "VISIBLE"),
            (std::set<int64_t>{10}));
}

TEST_F(UpdateSemanticsTest, DisconnectChangesReachabilityOnRefresh) {
  auto cache = XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery);
  ASSERT_TRUE(cache.ok());
  Workspace& ws = cache.value()->workspace();
  CachedRow* d2 =
      ws.component("XDEPT").value()->FindByValue(0, Value(int64_t{2}));
  CachedRow* e3 =
      ws.component("XEMP").value()->FindByValue(0, Value(int64_t{30}));
  // e3 is d2's only employee; disconnecting makes it unreachable.
  ASSERT_TRUE(cache.value()->Disconnect("EMPLOYMENT", d2, e3).ok());
  ASSERT_TRUE(cache.value()->WriteBack().ok());
  ASSERT_TRUE(cache.value()->Refresh().ok());
  EXPECT_EQ(Extent(cache.value().get(), "XEMP"),
            (std::set<int64_t>{10, 20}));
  // The base row survived with a NULL FK (disconnect, not delete).
  Result<QueryResult> base =
      db_.Query("SELECT EDNO FROM EMP WHERE ENO = 30");
  ASSERT_TRUE(base.ok());
  ASSERT_EQ(base.value().rows().size(), 1u);
  EXPECT_TRUE(base.value().rows()[0][0].is_null());
}

TEST_F(UpdateSemanticsTest, ConnectMakesNewRowReachable) {
  auto cache = XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery);
  ASSERT_TRUE(cache.ok());
  Workspace& ws = cache.value()->workspace();
  // Insert a new employee locally and connect it to d1.
  Result<CachedRow*> fresh = cache.value()->Insert(
      "XEMP",
      {Value(int64_t{77}), Value("newhire"), Value(), Value(50000.0)});
  ASSERT_TRUE(fresh.ok());
  CachedRow* d1 =
      ws.component("XDEPT").value()->FindByValue(0, Value(int64_t{1}));
  ASSERT_TRUE(cache.value()->Connect("EMPLOYMENT", d1, fresh.value()).ok());
  ASSERT_TRUE(cache.value()->WriteBack().ok());
  ASSERT_TRUE(cache.value()->Refresh().ok());
  EXPECT_EQ(Extent(cache.value().get(), "XEMP"),
            (std::set<int64_t>{10, 20, 30, 77}));
}

TEST_F(UpdateSemanticsTest, ConnectTableDisconnectAffectsSharedSkill) {
  auto cache = XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery);
  ASSERT_TRUE(cache.ok());
  Workspace& ws = cache.value()->workspace();
  // Skill s3 (3000) is reachable from e2 AND p1. Removing the employee
  // mapping must keep it reachable through the project.
  CachedRow* e2 =
      ws.component("XEMP").value()->FindByValue(0, Value(int64_t{20}));
  CachedRow* s3 =
      ws.component("XSKILLS").value()->FindByValue(0, Value(int64_t{3000}));
  ASSERT_TRUE(cache.value()->Disconnect("EMPPROPERTY", e2, s3).ok());
  ASSERT_TRUE(cache.value()->WriteBack().ok());
  ASSERT_TRUE(cache.value()->Refresh().ok());
  std::set<int64_t> skills = Extent(cache.value().get(), "XSKILLS");
  EXPECT_TRUE(skills.count(3000)) << "s3 still reachable via the project";
  // Now remove the project mapping as well: s3 drops out of the CO.
  Workspace& ws2 = cache.value()->workspace();
  CachedRow* p1 =
      ws2.component("XPROJ").value()->FindByValue(0, Value(int64_t{100}));
  CachedRow* s3b =
      ws2.component("XSKILLS").value()->FindByValue(0, Value(int64_t{3000}));
  ASSERT_TRUE(cache.value()->Disconnect("PROJPROPERTY", p1, s3b).ok());
  ASSERT_TRUE(cache.value()->WriteBack().ok());
  ASSERT_TRUE(cache.value()->Refresh().ok());
  EXPECT_FALSE(Extent(cache.value().get(), "XSKILLS").count(3000));
}

TEST_F(UpdateSemanticsTest, MixedBatchAppliesConsistently) {
  auto cache = XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery);
  ASSERT_TRUE(cache.ok());
  Workspace& ws = cache.value()->workspace();
  ComponentTable* xemp = ws.component("XEMP").value();
  // One update, one insert+connect, one delete — in one batch.
  CachedRow* e1 = xemp->FindByValue(0, Value(int64_t{10}));
  ASSERT_TRUE(cache.value()->Update(e1, "ENAME", Value("e1b")).ok());
  Result<CachedRow*> fresh = cache.value()->Insert(
      "XEMP", {Value(int64_t{88}), Value("e88"), Value(), Value(1.0)});
  ASSERT_TRUE(fresh.ok());
  CachedRow* d2 =
      ws.component("XDEPT").value()->FindByValue(0, Value(int64_t{2}));
  ASSERT_TRUE(cache.value()->Connect("EMPLOYMENT", d2, fresh.value()).ok());
  CachedRow* e2 = xemp->FindByValue(0, Value(int64_t{20}));
  ASSERT_TRUE(cache.value()->Delete(e2).ok());

  Result<std::vector<std::string>> stmts = cache.value()->WriteBack();
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  // INSERT + UPDATE(name) + UPDATE(fk connect) + DELETE.
  EXPECT_EQ(stmts.value().size(), 4u);

  Result<QueryResult> names =
      db_.Query("SELECT ENAME FROM EMP ORDER BY ENO");
  ASSERT_TRUE(names.ok());
  std::set<std::string> got;
  for (const Tuple& row : names.value().rows()) {
    got.insert(row[0].AsString());
  }
  EXPECT_EQ(got, (std::set<std::string>{"e1b", "e3", "e4", "e88"}));
}

TEST_F(UpdateSemanticsTest, DoubleDeleteAndUpdateAfterDeleteRejected) {
  auto cache = XNFCache::Evaluate(&db_, "OUT OF x AS EMP TAKE *");
  ASSERT_TRUE(cache.ok());
  CachedRow* row = cache.value()->workspace().component("X").value()->row(0);
  ASSERT_TRUE(cache.value()->Delete(row).ok());
  EXPECT_FALSE(cache.value()->Delete(row).ok());
  EXPECT_FALSE(cache.value()->Update(row, "ENAME", Value("zz")).ok());
}

TEST_F(UpdateSemanticsTest, ConnectValidatesPartners) {
  auto cache = XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery);
  ASSERT_TRUE(cache.ok());
  Workspace& ws = cache.value()->workspace();
  CachedRow* d1 =
      ws.component("XDEPT").value()->FindByValue(0, Value(int64_t{1}));
  CachedRow* p1 =
      ws.component("XPROJ").value()->FindByValue(0, Value(int64_t{100}));
  // EMPLOYMENT relates XDEPT to XEMP, not XPROJ.
  EXPECT_FALSE(cache.value()->Connect("EMPLOYMENT", d1, p1).ok());
  // Disconnecting a non-existent connection fails.
  CachedRow* e3 =
      ws.component("XEMP").value()->FindByValue(0, Value(int64_t{30}));
  EXPECT_FALSE(cache.value()->Disconnect("EMPLOYMENT", d1, e3).ok());
}

}  // namespace
}  // namespace xnfdb
