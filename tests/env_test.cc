// Tests of the file-system boundary: PosixEnv primitives, the crash-safe
// AtomicallyWriteFile helper, and the FaultInjectionEnv's fault plan and
// per-operation counters — the infrastructure every durability test builds
// on.

#include <gtest/gtest.h>

#include <string>

#include "common/crc32.h"
#include "common/env.h"
#include "common/fault_env.h"

namespace xnfdb {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(Env* env, const std::string& path) {
  std::string out;
  EXPECT_TRUE(env->ReadFileToString(path, &out).ok());
  return out;
}

TEST(Crc32Test, KnownVectorsAndChaining) {
  // The standard CRC-32 check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Chunked computation matches the one-shot result.
  uint32_t chained = Crc32("456789", Crc32("123"));
  EXPECT_EQ(chained, Crc32("123456789"));
  EXPECT_EQ(Crc32Hex(0xCBF43926u), "cbf43926");
  EXPECT_EQ(Crc32Hex(0x0000000Au), "0000000a");
}

TEST(PosixEnvTest, WriteReadRenameRemove) {
  Env* env = Env::Default();
  std::string path = TestPath("env_posix.txt");
  Result<std::unique_ptr<WritableFile>> file = env->NewWritableFile(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  std::unique_ptr<WritableFile> out = std::move(file).value();
  ASSERT_TRUE(out->Append("hello ").ok());
  ASSERT_TRUE(out->Append("world").ok());
  ASSERT_TRUE(out->Sync().ok());
  ASSERT_TRUE(out->Close().ok());

  EXPECT_TRUE(env->FileExists(path));
  EXPECT_EQ(ReadAll(env, path), "hello world");

  std::string moved = TestPath("env_posix_moved.txt");
  ASSERT_TRUE(env->RenameFile(path, moved).ok());
  EXPECT_FALSE(env->FileExists(path));
  EXPECT_EQ(ReadAll(env, moved), "hello world");

  ASSERT_TRUE(env->RemoveFile(moved).ok());
  EXPECT_FALSE(env->FileExists(moved));

  std::string missing;
  EXPECT_EQ(env->ReadFileToString(TestPath("no_such_file"), &missing).code(),
            StatusCode::kIoError);
  EXPECT_EQ(env->RemoveFile(TestPath("no_such_file")).code(),
            StatusCode::kIoError);
}

TEST(PosixEnvTest, AtomicWriteReplacesAndLeavesNoTemp) {
  Env* env = Env::Default();
  std::string path = TestPath("env_atomic.txt");
  ASSERT_TRUE(AtomicallyWriteFile(env, path, "version 1").ok());
  EXPECT_EQ(ReadAll(env, path), "version 1");
  ASSERT_TRUE(AtomicallyWriteFile(env, path, "version 2, longer").ok());
  EXPECT_EQ(ReadAll(env, path), "version 2, longer");
  env->RemoveFile(path);
}

TEST(FaultInjectionEnvTest, CountersTrackOperations) {
  FaultInjectionEnv env;
  std::string path = TestPath("env_counters.txt");
  auto out = env.NewWritableFile(path).value();
  ASSERT_TRUE(out->Append("abcde").ok());
  ASSERT_TRUE(out->Append("fgh").ok());
  ASSERT_TRUE(out->Sync().ok());
  ASSERT_TRUE(out->Close().ok());
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "abcdefgh");
  ASSERT_TRUE(env.RemoveFile(path).ok());

  const FaultInjectionEnv::Counters& c = env.counters();
  EXPECT_EQ(c.writable_files_opened, 1);
  EXPECT_EQ(c.appends, 2);
  EXPECT_EQ(c.bytes_appended, 8);
  EXPECT_EQ(c.syncs, 1);
  EXPECT_EQ(c.closes, 1);
  EXPECT_EQ(c.reads, 1);
  EXPECT_EQ(c.removes, 1);
  EXPECT_EQ(c.injected_errors, 0);
}

TEST(FaultInjectionEnvTest, WriteErrorAfterBudget) {
  FaultInjectionEnv env;
  std::string path = TestPath("env_budget.txt");
  env.FailAppendsAfterBytes(5);
  auto out = env.NewWritableFile(path).value();
  ASSERT_TRUE(out->Append("12345").ok());  // exactly the budget
  Status s = out->Append("6");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  // Nothing of the failed append reached the file.
  ASSERT_TRUE(out->Close().ok());
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "12345");
  EXPECT_EQ(env.counters().injected_errors, 1);
  env.ClearFaults();
  env.RemoveFile(path);
}

TEST(FaultInjectionEnvTest, TornWritePersistsPrefix) {
  FaultInjectionEnv env;
  std::string path = TestPath("env_torn.txt");
  env.FailAppendsAfterBytes(3, /*torn=*/true);
  auto out = env.NewWritableFile(path).value();
  Status s = out->Append("abcdef");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  ASSERT_TRUE(out->Close().ok());
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "abc");  // the torn prefix survived
  env.ClearFaults();
  env.RemoveFile(path);
}

TEST(FaultInjectionEnvTest, SyncAndRenameFailures) {
  FaultInjectionEnv env;
  std::string path = TestPath("env_sync.txt");
  env.FailNextSyncs(1);
  auto out = env.NewWritableFile(path).value();
  ASSERT_TRUE(out->Append("data").ok());
  EXPECT_EQ(out->Sync().code(), StatusCode::kIoError);
  EXPECT_TRUE(out->Sync().ok());  // only one sync was poisoned
  ASSERT_TRUE(out->Close().ok());

  env.FailNextRenames(1);
  std::string to = TestPath("env_sync_renamed.txt");
  EXPECT_EQ(env.RenameFile(path, to).code(), StatusCode::kIoError);
  EXPECT_TRUE(env.RenameFile(path, to).ok());
  env.RemoveFile(to);
}

TEST(FaultInjectionEnvTest, ReadCorruptionFlipsByte) {
  FaultInjectionEnv env;
  std::string path = TestPath("env_corrupt.txt");
  ASSERT_TRUE(AtomicallyWriteFile(&env, path, "sound data").ok());
  env.CorruptReadAt(2);
  std::string contents;
  ASSERT_TRUE(env.ReadFileToString(path, &contents).ok());
  EXPECT_NE(contents, "sound data");
  EXPECT_EQ(contents.size(), 10u);
  EXPECT_EQ(contents[0], 's');
  EXPECT_NE(contents[2], 'u');
  env.ClearFaults();
  env.RemoveFile(path);
}

TEST(FaultInjectionEnvTest, AtomicWriteFailuresLeavePreviousFile) {
  FaultInjectionEnv env;
  std::string path = TestPath("env_atomic_fault.txt");
  ASSERT_TRUE(AtomicallyWriteFile(&env, path, "old contents").ok());

  // Write failure, sync failure, rename failure: each aborts the replace
  // and the previous version stays readable.
  env.FailAppendsAfterBytes(4);
  EXPECT_FALSE(AtomicallyWriteFile(&env, path, "new contents A").ok());
  env.ClearFaults();
  EXPECT_EQ(ReadAll(&env, path), "old contents");

  env.FailNextSyncs(1);
  EXPECT_FALSE(AtomicallyWriteFile(&env, path, "new contents B").ok());
  env.ClearFaults();
  EXPECT_EQ(ReadAll(&env, path), "old contents");

  env.FailNextRenames(1);
  EXPECT_FALSE(AtomicallyWriteFile(&env, path, "new contents C").ok());
  env.ClearFaults();
  EXPECT_EQ(ReadAll(&env, path), "old contents");

  // With faults cleared the replace goes through.
  EXPECT_TRUE(AtomicallyWriteFile(&env, path, "new contents D").ok());
  EXPECT_EQ(ReadAll(&env, path), "new contents D");
  env.RemoveFile(path);
}

}  // namespace
}  // namespace xnfdb
