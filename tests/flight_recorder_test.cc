// Tests of the incident flight recorder (obs/flight_recorder.h): ring
// semantics, coalescing of identical consecutive events, the async-signal-
// safe tail dump, and the logger feed — warn+ lines become events, with
// identical consecutive warn lines coalesced into one `repeated=N` line.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "obs/flight_recorder.h"

namespace xnfdb {
namespace obs {
namespace {

TEST(FlightRecorderTest, RecordsInSequenceOrder) {
  FlightRecorder rec(8);
  rec.Record("query", "info", "query start", "digest=abc");
  rec.Record("governor", "warn", "admission rejected", "running=4 queued=2");
  rec.Record("query", "info", "query end");

  std::vector<FlightRecorder::Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 1);
  EXPECT_EQ(events[1].seq, 2);
  EXPECT_EQ(events[2].seq, 3);
  EXPECT_EQ(events[0].category, "query");
  EXPECT_EQ(events[0].severity, "info");
  EXPECT_EQ(events[0].message, "query start");
  EXPECT_EQ(events[0].detail, "digest=abc");
  EXPECT_EQ(events[1].category, "governor");
  EXPECT_EQ(events[2].detail, "");
  EXPECT_GT(events[0].ts_us, 0);
  EXPECT_EQ(rec.last_seq(), 3);
  EXPECT_EQ(rec.recorded(), 3);
  EXPECT_EQ(rec.coalesced(), 0);
}

TEST(FlightRecorderTest, RingKeepsOnlyNewestEvents) {
  FlightRecorder rec(4);
  for (int i = 1; i <= 10; ++i) {
    rec.Record("test", "info", "event " + std::to_string(i));
  }
  std::vector<FlightRecorder::Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().seq, 7);
  EXPECT_EQ(events.back().seq, 10);
  EXPECT_EQ(events.back().message, "event 10");
  EXPECT_EQ(rec.recorded(), 10);
}

TEST(FlightRecorderTest, LongFieldsTruncateNotCorrupt) {
  FlightRecorder rec(4);
  std::string long_msg(500, 'm');
  std::string long_detail(500, 'd');
  rec.Record("a-category-longer-than-the-slot", "warning!", long_msg,
             long_detail);
  std::vector<FlightRecorder::Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].category.size(), FlightRecorder::kCategoryBytes - 1);
  EXPECT_EQ(events[0].severity.size(), FlightRecorder::kSeverityBytes - 1);
  EXPECT_EQ(events[0].message.size(), FlightRecorder::kMessageBytes - 1);
  EXPECT_EQ(events[0].detail.size(), FlightRecorder::kDetailBytes - 1);
  EXPECT_EQ(events[0].message, long_msg.substr(
      0, FlightRecorder::kMessageBytes - 1));
}

TEST(FlightRecorderTest, IdenticalConsecutiveEventsCoalesce) {
  FlightRecorder rec(8);
  rec.Record("writeback", "warn", "transient failure, retrying", "io");
  rec.Record("writeback", "warn", "transient failure, retrying", "io");
  rec.Record("writeback", "warn", "transient failure, retrying", "io");
  // A different detail breaks the run.
  rec.Record("writeback", "warn", "transient failure, retrying", "other");
  rec.Record("writeback", "warn", "transient failure, retrying", "io");

  std::vector<FlightRecorder::Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].repeated, 3);
  EXPECT_EQ(events[0].detail, "io");
  EXPECT_EQ(events[1].repeated, 1);
  EXPECT_EQ(events[1].detail, "other");
  EXPECT_EQ(events[2].repeated, 1);
  // Coalesced occurrences consume no sequence numbers or slots.
  EXPECT_EQ(rec.last_seq(), 3);
  EXPECT_EQ(rec.recorded(), 5);
  EXPECT_EQ(rec.coalesced(), 2);
}

TEST(FlightRecorderTest, DisabledRecorderDropsEverything) {
  FlightRecorder rec(4);
  rec.set_enabled(false);
  rec.Record("test", "info", "dropped");
  EXPECT_TRUE(rec.Snapshot().empty());
  EXPECT_EQ(rec.recorded(), 0);
  rec.set_enabled(true);
  rec.Record("test", "info", "kept");
  EXPECT_EQ(rec.Snapshot().size(), 1u);
}

TEST(FlightRecorderTest, DumpTailUnsafeRendersNewestEvents) {
  FlightRecorder rec(16);
  for (int i = 1; i <= 6; ++i) {
    rec.Record("cat", i % 2 ? "info" : "warn",
               "event " + std::to_string(i), "k=" + std::to_string(i));
  }
  char buf[4096];
  size_t n = rec.DumpTailUnsafe(buf, sizeof(buf), 4);
  ASSERT_GT(n, 0u);
  EXPECT_EQ(buf[n], '\0');
  EXPECT_EQ(std::strlen(buf), n);
  std::string text(buf);
  // Only the newest four events, oldest of them first.
  EXPECT_EQ(text.find("event 2"), std::string::npos) << text;
  EXPECT_NE(text.find("event 3"), std::string::npos) << text;
  EXPECT_NE(text.find("event 6"), std::string::npos) << text;
  EXPECT_LT(text.find("event 3"), text.find("event 6")) << text;
  EXPECT_NE(text.find("k=6"), std::string::npos) << text;
}

TEST(FlightRecorderTest, DumpTailUnsafeOnEmptyAndTinyBuffers) {
  FlightRecorder rec(4);
  char buf[8];
  size_t n = rec.DumpTailUnsafe(buf, sizeof(buf), 4);
  EXPECT_EQ(buf[n], '\0');
  rec.Record("cat", "info", "a message that cannot possibly fit");
  n = rec.DumpTailUnsafe(buf, sizeof(buf), 4);
  EXPECT_LT(n, sizeof(buf));
  EXPECT_EQ(buf[n], '\0');
}

TEST(FlightRecorderTest, ConcurrentWritersKeepTheRingConsistent) {
  FlightRecorder rec(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (int i = 0; i < kPerThread; ++i) {
        rec.Record("thread", "info",
                   "t" + std::to_string(t) + " e" + std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(rec.recorded(), kThreads * kPerThread);
  std::vector<FlightRecorder::Event> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 64u);
  // Strictly increasing, gap-free sequence numbers across the ring.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.back().seq, rec.last_seq());
}

// --- the logger feed ------------------------------------------------------

class ScopedLogCapture {
 public:
  ScopedLogCapture() : saved_level_(Logger::Default().level()) {
    Logger::Default().SetSink(
        [this](const std::string& line) { lines_.push_back(line); });
    Logger::Default().FlushCoalesced();  // forget any previous warn run
  }
  ~ScopedLogCapture() {
    Logger::Default().SetSink(nullptr);
    Logger::Default().set_level(saved_level_);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  LogLevel saved_level_;
  std::vector<std::string> lines_;
};

TEST(LoggerFeedTest, WarnLinesBecomeFlightEvents) {
  FlightRecorder& rec = FlightRecorder::Default();
  rec.set_enabled(true);
  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kWarn);

  const int64_t before = rec.last_seq();
  Logger::Default().Log(LogLevel::kWarn, "watchdog", "query stalled",
                        {LogField::S("state", "running"), LogField::N("id", 7)});
  ASSERT_GT(rec.last_seq(), before);
  std::vector<FlightRecorder::Event> events = rec.Snapshot();
  const FlightRecorder::Event& e = events.back();
  EXPECT_EQ(e.category, "watchdog");
  EXPECT_EQ(e.severity, "warn");
  EXPECT_EQ(e.message, "query stalled");
  // String fields ride along as detail; numeric fields (which vary per
  // occurrence) do not, so repeats coalesce.
  EXPECT_EQ(e.detail, "state=running");
}

TEST(LoggerFeedTest, InfoLinesDoNotFeedTheRecorder) {
  FlightRecorder& rec = FlightRecorder::Default();
  rec.set_enabled(true);
  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kInfo);
  const int64_t before = rec.last_seq();
  Logger::Default().Log(LogLevel::kInfo, "test", "not an incident");
  EXPECT_EQ(rec.last_seq(), before);
}

TEST(LoggerFeedTest, FeedSurvivesLogLevelOff) {
  FlightRecorder& rec = FlightRecorder::Default();
  rec.set_enabled(true);
  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kOff);
  const int64_t before = rec.last_seq();
  Logger::Default().Log(LogLevel::kError, "test", "silent but recorded");
  EXPECT_TRUE(capture.lines().empty());
  EXPECT_GT(rec.last_seq(), before);
  EXPECT_EQ(rec.Snapshot().back().message, "silent but recorded");
}

TEST(LoggerCoalesceTest, IdenticalConsecutiveWarnLinesCollapse) {
  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kWarn);
  for (int i = 0; i < 4; ++i) {
    Logger::Default().Log(LogLevel::kWarn, "retry", "transient failure",
                          {LogField::S("op", "sync"), LogField::N("try", i)});
  }
  // The first line of a run is emitted immediately; the repeats are held.
  ASSERT_EQ(capture.lines().size(), 1u);
  // A different line flushes the held summary before itself.
  Logger::Default().Log(LogLevel::kWarn, "retry", "gave up");
  ASSERT_EQ(capture.lines().size(), 3u);
  EXPECT_NE(capture.lines()[1].find("\"repeated\":3"), std::string::npos)
      << capture.lines()[1];
  EXPECT_NE(capture.lines()[1].find("transient failure"), std::string::npos);
  EXPECT_NE(capture.lines()[2].find("gave up"), std::string::npos);
}

TEST(LoggerCoalesceTest, FlushCoalescedDrainsTheHeldLine) {
  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kWarn);
  Logger::Default().Log(LogLevel::kWarn, "retry", "transient failure");
  Logger::Default().Log(LogLevel::kWarn, "retry", "transient failure");
  ASSERT_EQ(capture.lines().size(), 1u);
  Logger::Default().FlushCoalesced();
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[1].find("\"repeated\":1"), std::string::npos)
      << capture.lines()[1];
  // Nothing further held; a new identical line starts a fresh run.
  Logger::Default().Log(LogLevel::kWarn, "retry", "transient failure");
  EXPECT_EQ(capture.lines().size(), 3u);
}

TEST(LoggerCoalesceTest, DistinctLinesPassThroughUncoalesced) {
  ScopedLogCapture capture;
  Logger::Default().set_level(LogLevel::kWarn);
  Logger::Default().Log(LogLevel::kWarn, "a", "one");
  Logger::Default().Log(LogLevel::kWarn, "b", "two");
  Logger::Default().Log(LogLevel::kError, "b", "two");  // level differs
  EXPECT_EQ(capture.lines().size(), 3u);
}

}  // namespace
}  // namespace obs
}  // namespace xnfdb
