// Tests of the durable write-back path: the CRC-protected journal written
// before any statement executes, bounded retry of transient server
// failures, and recovery after a persistent failure (the journal plus the
// workspace's pending marks survive for a later retry).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/writeback.h"
#include "cache/xnf_cache.h"
#include "common/crc32.h"
#include "common/fault_env.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
    cache_ = XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery).value();
    // Unique per test: ctest runs each case as its own concurrent process.
    journal_path_ =
        ::testing::TempDir() + "/journal_test_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".wal";
    Env::Default()->RemoveFile(journal_path_);  // stale runs
  }

  // Marks e1's salary updated in the cache (pending, not yet written back).
  void UpdateSalary(double sal) {
    CachedRow* e1 = cache_->workspace().component("XEMP").value()->FindByValue(
        0, Value(int64_t{10}));
    ASSERT_NE(e1, nullptr);
    ASSERT_TRUE(cache_->Update(e1, "SAL", Value(sal)).ok());
  }

  double ServerSalary() {
    Result<QueryResult> r = db_.Query("SELECT SAL FROM EMP WHERE ENO = 10");
    EXPECT_TRUE(r.ok());
    return r.value().rows()[0][0].AsDouble();
  }

  WriteBackOptions JournalOptions(Env* env = nullptr) {
    WriteBackOptions options;
    options.journal_path = journal_path_;
    options.env = env;
    options.backoff_initial_ms = 0;  // keep retry tests fast
    return options;
  }

  Database db_;
  std::unique_ptr<XNFCache> cache_;
  std::string journal_path_;
};

TEST_F(JournalTest, JournalRemovedAfterSuccessfulWriteBack) {
  UpdateSalary(91000.0);
  Result<std::vector<std::string>> stmts = cache_->WriteBack(JournalOptions());
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  ASSERT_EQ(stmts.value().size(), 1u);
  EXPECT_DOUBLE_EQ(ServerSalary(), 91000.0);
  EXPECT_FALSE(cache_->workspace().HasPendingChanges());
  EXPECT_FALSE(Env::Default()->FileExists(journal_path_));
}

TEST_F(JournalTest, TransientExecuteFailuresAreRetried) {
  UpdateSalary(92000.0);
  // Two injected kIoError responses are absorbed by the bounded retry
  // (max_retries defaults to 3).
  db_.InjectTransientFailures(2);
  Result<std::vector<std::string>> stmts = cache_->WriteBack(JournalOptions());
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  EXPECT_DOUBLE_EQ(ServerSalary(), 92000.0);
  EXPECT_FALSE(cache_->workspace().HasPendingChanges());
  EXPECT_FALSE(Env::Default()->FileExists(journal_path_));
}

TEST_F(JournalTest, PersistentFailureLeavesJournalForRecovery) {
  UpdateSalary(93000.0);
  WriteBackPlanner planner(&db_, &cache_->definition());
  Result<std::vector<std::string>> planned =
      planner.Plan(&cache_->workspace());
  ASSERT_TRUE(planned.ok());

  // More failures than the retry budget: the write-back surfaces kIoError
  // after exhausting its attempts...
  db_.InjectTransientFailures(100);
  Result<std::vector<std::string>> stmts = cache_->WriteBack(JournalOptions());
  ASSERT_FALSE(stmts.ok());
  EXPECT_EQ(stmts.status().code(), StatusCode::kIoError);
  db_.InjectTransientFailures(0);

  // ...but nothing was applied, the pending marks survived, and the journal
  // still holds the planned statements for recovery.
  EXPECT_DOUBLE_EQ(ServerSalary(), 90000.0);
  EXPECT_TRUE(cache_->workspace().HasPendingChanges());
  ASSERT_TRUE(Env::Default()->FileExists(journal_path_));
  Result<std::vector<std::string>> recovered =
      LoadWriteBackJournal(journal_path_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value(), planned.value());

  // Once the server recovers, re-running the write-back applies the same
  // plan and cleans up.
  Result<std::vector<std::string>> retry = cache_->WriteBack(JournalOptions());
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry.value(), planned.value());
  EXPECT_DOUBLE_EQ(ServerSalary(), 93000.0);
  EXPECT_FALSE(cache_->workspace().HasPendingChanges());
  EXPECT_FALSE(Env::Default()->FileExists(journal_path_));
}

TEST_F(JournalTest, JournalWriteFailureAbortsBeforeExecution) {
  UpdateSalary(94000.0);
  FaultInjectionEnv env;
  env.FailAppendsAfterBytes(0);  // every journal write attempt fails
  WriteBackOptions options = JournalOptions(&env);
  options.max_retries = 1;
  Result<std::vector<std::string>> stmts = cache_->WriteBack(options);
  ASSERT_FALSE(stmts.ok());
  EXPECT_EQ(stmts.status().code(), StatusCode::kIoError);
  // The journal write was attempted twice (initial try + one retry), and no
  // statement reached the server.
  EXPECT_EQ(env.counters().injected_errors, 2);
  EXPECT_DOUBLE_EQ(ServerSalary(), 90000.0);
  EXPECT_TRUE(cache_->workspace().HasPendingChanges());
  EXPECT_FALSE(env.FileExists(journal_path_));
  env.ClearFaults();
}

TEST_F(JournalTest, AnalysisErrorSurfacesBeforeJournalOrExecution) {
  // A join component is not updatable: planning fails, so neither the
  // journal nor the server is touched.
  auto cache = XNFCache::Evaluate(
      &db_,
      "OUT OF x AS (SELECT e.ENO, d.DNAME FROM EMP e, DEPT d "
      "WHERE e.EDNO = d.DNO) TAKE *");
  ASSERT_TRUE(cache.ok());
  CachedRow* row = cache.value()->workspace().component("X").value()->row(0);
  ASSERT_TRUE(
      cache.value()->workspace().UpdateRow(row, 1, Value("renamed")).ok());
  Result<std::vector<std::string>> stmts =
      cache.value()->WriteBack(JournalOptions());
  ASSERT_FALSE(stmts.ok());
  EXPECT_EQ(stmts.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(Env::Default()->FileExists(journal_path_));
}

TEST_F(JournalTest, JournalFormatRejectsCorruption) {
  // Handcraft a journal in the documented format and verify the loader's
  // integrity checks.
  std::string payload = "22 UPDATE EMP SET SAL = 1\n13 DELETE FROM T\n";
  std::string journal = "XNFJOURNAL 1\nSTATEMENTS 2 " +
                        Crc32Hex(Crc32(payload)) + "\n" + payload + "END\n";
  Env* env = Env::Default();
  ASSERT_TRUE(AtomicallyWriteFile(env, journal_path_, journal).ok());
  Result<std::vector<std::string>> loaded =
      LoadWriteBackJournal(journal_path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value(),
            (std::vector<std::string>{"UPDATE EMP SET SAL = 1",
                                      "DELETE FROM T"}));

  // Every single-byte flip and every truncation must be rejected.
  for (size_t i = 0; i < journal.size(); ++i) {
    std::string flipped = journal;
    flipped[i] ^= 0x40;
    ASSERT_TRUE(AtomicallyWriteFile(env, journal_path_, flipped).ok());
    EXPECT_FALSE(LoadWriteBackJournal(journal_path_).ok())
        << "flip of byte " << i << " loaded successfully";
  }
  for (size_t cut = 0; cut < journal.size(); ++cut) {
    ASSERT_TRUE(
        AtomicallyWriteFile(env, journal_path_, journal.substr(0, cut)).ok());
    EXPECT_FALSE(LoadWriteBackJournal(journal_path_).ok())
        << "truncation at byte " << cut << " loaded successfully";
  }
  env->RemoveFile(journal_path_);
}

}  // namespace
}  // namespace xnfdb
