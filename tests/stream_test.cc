// Invariants of the heterogeneous answer stream (paper Sect. 4.1/5.1):
// tuple-id assignment and object-sharing dedup, connection well-formedness,
// SQL multiset semantics vs XNF set semantics, and stream/QueryResult
// accessor consistency.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "api/database.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
  }

  Database db_;
};

TEST_F(StreamTest, TupleIdsUniquePerComponentAndDense) {
  Result<QueryResult> r = db_.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(r.ok());
  std::map<int, std::set<TupleId>> tids;
  for (const StreamItem& item : r.value().stream) {
    if (item.kind != StreamItem::Kind::kRow) continue;
    EXPECT_TRUE(tids[item.output].insert(item.tid).second)
        << "duplicate tid " << item.tid << " in output " << item.output;
  }
  // Dense: tids 0..n-1 per component.
  for (const auto& [output, ids] : tids) {
    ASSERT_FALSE(ids.empty());
    EXPECT_EQ(*ids.begin(), 0);
    EXPECT_EQ(*ids.rbegin(), static_cast<TupleId>(ids.size()) - 1);
  }
}

TEST_F(StreamTest, ConnectionsReferenceExistingRows) {
  Result<QueryResult> r = db_.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(r.ok());
  const QueryResult& result = r.value();
  std::map<std::string, std::set<TupleId>> tids_by_component;
  for (const StreamItem& item : result.stream) {
    if (item.kind == StreamItem::Kind::kRow) {
      tids_by_component[result.outputs[item.output].name].insert(item.tid);
    }
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind != StreamItem::Kind::kConnection) continue;
    const OutputDesc& desc = result.outputs[item.output];
    ASSERT_EQ(item.tids.size(), desc.partner_names.size());
    for (size_t pi = 0; pi < item.tids.size(); ++pi) {
      EXPECT_TRUE(
          tids_by_component[desc.partner_names[pi]].count(item.tids[pi]))
          << desc.name << " references missing " << desc.partner_names[pi]
          << " tid " << item.tids[pi];
    }
  }
}

TEST_F(StreamTest, ConnectionsDeduplicated) {
  // EMPSKILLS with a duplicated mapping row must still yield one
  // empproperty connection per distinct (emp, skill) pair.
  ASSERT_TRUE(db_.Execute("INSERT INTO EMPSKILLS VALUES (10, 1000)").ok());
  Result<QueryResult> r = db_.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(r.ok());
  const QueryResult& result = r.value();
  int idx = result.FindOutput("EMPPROPERTY");
  std::set<std::vector<TupleId>> seen;
  for (const StreamItem& item : result.stream) {
    if (item.kind != StreamItem::Kind::kConnection || item.output != idx) {
      continue;
    }
    EXPECT_TRUE(seen.insert(item.tids).second) << "duplicate connection";
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(StreamTest, SqlKeepsMultisetSemantics) {
  // Plain SQL must NOT dedup: LOC has duplicates.
  Result<QueryResult> r = db_.Query("SELECT LOC FROM DEPT");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows().size(), 3u);  // ARC, ARC, YKT
  // While an XNF component over the same projection dedups (object
  // sharing at the view level).
  Result<QueryResult> x =
      db_.Query("OUT OF locs AS (SELECT LOC FROM DEPT) TAKE *");
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x.value().RowCount(0), 2u);
}

TEST_F(StreamTest, AccessorsAgreeWithRawStream) {
  Result<QueryResult> r = db_.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(r.ok());
  const QueryResult& result = r.value();
  for (size_t oi = 0; oi < result.outputs.size(); ++oi) {
    size_t rows = 0, conns = 0;
    for (const StreamItem& item : result.stream) {
      if (item.output != static_cast<int>(oi)) continue;
      (item.kind == StreamItem::Kind::kRow ? rows : conns) += 1;
    }
    EXPECT_EQ(result.RowCount(static_cast<int>(oi)), rows);
    EXPECT_EQ(result.ConnectionCount(static_cast<int>(oi)), conns);
    EXPECT_EQ(result.RowsOf(static_cast<int>(oi)).size(), rows);
  }
  EXPECT_EQ(result.FindOutput("NO_SUCH_OUTPUT"), -1);
  // rows_output counts every emitted stream item.
  EXPECT_EQ(static_cast<size_t>(result.stats.rows_output.load()),
            result.stream.size());
}

TEST_F(StreamTest, RowValuesMatchComponentSchema) {
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS (SELECT DNO, DNAME FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE xdept, xemp(eno), employment
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& result = r.value();
  for (const StreamItem& item : result.stream) {
    if (item.kind != StreamItem::Kind::kRow) continue;
    const OutputDesc& desc = result.outputs[item.output];
    ASSERT_EQ(item.values.size(), desc.schema.size()) << desc.name;
    EXPECT_TRUE(desc.schema.ValidateTuple(item.values).ok()) << desc.name;
  }
  int xemp = result.FindOutput("XEMP");
  EXPECT_EQ(result.outputs[xemp].schema.column(0).name, "ENO");
  EXPECT_EQ(result.outputs[xemp].schema.column(0).type, DataType::kInt);
}

}  // namespace
}  // namespace xnfdb
