// Feature-matrix tests for XNF query shapes beyond the running example:
// n-ary relationships, combination of COs (a relationship between roots),
// TAKE routing through non-taken intermediate components, components over
// SQL views, deep hierarchies, empty extents, and restriction predicates.

#include <gtest/gtest.h>

#include <set>

#include "api/database.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

class XnfFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
  }

  std::set<int64_t> Values(const QueryResult& r, const std::string& output,
                           int col = 0) {
    std::set<int64_t> out;
    int idx = r.FindOutput(output);
    EXPECT_GE(idx, 0) << output;
    for (const Tuple& row : r.RowsOf(idx)) out.insert(row[col].AsInt());
    return out;
  }

  Database db_;
};

TEST_F(XnfFeaturesTest, NaryRelationshipConnectsThreePartners) {
  // dept - emp - proj triples of the same department.
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           xproj AS PROJ,
           staffing AS (RELATE xdept VIA STAFFS, xemp, xproj
                        WHERE xdept.dno = xemp.edno AND
                              xdept.dno = xproj.pdno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int staffing = r.value().FindOutput("STAFFING");
  ASSERT_GE(staffing, 0);
  EXPECT_EQ(r.value().outputs[staffing].partner_names.size(), 3u);
  // d1 x {e1,e2} x {p1} = 2 triples; d2 x {e3} x {p2} = 1 triple.
  EXPECT_EQ(r.value().ConnectionCount(staffing), 3u);
  // Every connection carries three tuple ids.
  for (const StreamItem& item : r.value().stream) {
    if (item.kind == StreamItem::Kind::kConnection &&
        item.output == staffing) {
      EXPECT_EQ(item.tids.size(), 3u);
    }
  }
  EXPECT_EQ(Values(r.value(), "XEMP"), (std::set<int64_t>{10, 20, 30}));
  EXPECT_EQ(Values(r.value(), "XPROJ"), (std::set<int64_t>{100, 200}));
}

TEST_F(XnfFeaturesTest, CombinationOfTwoIndependentCOs) {
  // "Combination is done by simply defining a relationship between any node
  // of one CO and any node of another one" (Sect. 2). Two roots related.
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF arc_depts AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           ykt_depts AS (SELECT * FROM DEPT WHERE LOC = 'YKT'),
           pairing AS (RELATE arc_depts VIA PAIRS, ykt_depts
                       WHERE arc_depts.dno < ykt_depts.dno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ykt_depts is a child => reachability filters to those paired.
  EXPECT_EQ(Values(r.value(), "ARC_DEPTS"), (std::set<int64_t>{1, 2}));
  EXPECT_EQ(Values(r.value(), "YKT_DEPTS"), (std::set<int64_t>{3}));
  EXPECT_EQ(r.value().ConnectionCount(r.value().FindOutput("PAIRING")), 2u);
}

TEST_F(XnfFeaturesTest, TakeSubsetStillRoutesThroughIntermediates) {
  // Take only xdept and xskills: reachability of skills still goes through
  // the non-taken xemp component.
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           xskills AS SKILLS,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno),
           property AS (RELATE xemp VIA HAS, xskills USING EMPSKILLS es
                        WHERE xemp.eno = es.eseno AND es.essno = xskills.sno)
    TAKE xdept, xskills
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().outputs.size(), 2u);
  EXPECT_EQ(Values(r.value(), "XSKILLS"),
            (std::set<int64_t>{1000, 3000, 4000}));
}

TEST_F(XnfFeaturesTest, ComponentOverSqlView) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW WELL_PAID AS SELECT * FROM EMP "
                          "WHERE SAL >= 85000.0")
                  .ok());
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           stars AS (SELECT * FROM WELL_PAID),
           employment AS (RELATE xdept VIA EMPLOYS, stars
                          WHERE xdept.dno = stars.edno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(Values(r.value(), "STARS"), (std::set<int64_t>{10, 30}));
}

TEST_F(XnfFeaturesTest, DeepHierarchyFourLevels) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE TASK (TNO INTEGER, TPNO INTEGER);
    INSERT INTO TASK VALUES (1, 100), (2, 100), (3, 200), (4, 300);
  )sql")
                  .ok());
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           xproj AS PROJ,
           xtask AS TASK,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno),
           ownership AS (RELATE xdept VIA HAS, xproj
                         WHERE xdept.dno = xproj.pdno),
           work AS (RELATE xproj VIA SPLITS, xtask
                    WHERE xproj.pno = xtask.tpno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Tasks of reachable projects 100 and 200 only (task 4 is on p3/YKT).
  EXPECT_EQ(Values(r.value(), "XTASK"), (std::set<int64_t>{1, 2, 3}));
}

TEST_F(XnfFeaturesTest, EmptyRootProducesEmptyCO) {
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'NOWHERE'),
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r.value().stream.empty());
}

TEST_F(XnfFeaturesTest, ComponentRestrictionIntersectsReachability) {
  // xemp restricted by its own predicate AND reachability.
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS (SELECT * FROM EMP WHERE SAL > 82000.0),
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // e1 (90k, ARC) and e3 (85k, ARC) qualify; e2 fails the restriction;
  // e4 fails reachability.
  EXPECT_EQ(Values(r.value(), "XEMP"), (std::set<int64_t>{10, 30}));
}

TEST_F(XnfFeaturesTest, TwoRelationshipsBetweenSameComponents) {
  ASSERT_TRUE(db_.ExecuteScript(R"sql(
    CREATE TABLE MENTORS (MDNO INTEGER, MENO INTEGER);
    INSERT INTO MENTORS VALUES (1, 30), (2, 10);
  )sql")
                  .ok());
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno),
           mentoring AS (RELATE xdept VIA MENTORED_BY, xemp USING MENTORS m
                         WHERE xdept.dno = m.mdno AND m.meno = xemp.eno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // xemp reachable through either relationship (e4 still excluded).
  EXPECT_EQ(Values(r.value(), "XEMP"), (std::set<int64_t>{10, 20, 30}));
  EXPECT_EQ(r.value().ConnectionCount(r.value().FindOutput("EMPLOYMENT")),
            3u);
  EXPECT_EQ(r.value().ConnectionCount(r.value().FindOutput("MENTORING")),
            2u);
}

TEST_F(XnfFeaturesTest, FreeComponentKeepsFullExtent) {
  // The fine-grained reachability override: xemp AS FREE EMP keeps all
  // employees even though xemp is a child of employment; connections still
  // only link the ones actually related.
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS FREE EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE *
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // e4 (40) stays despite being unreachable.
  EXPECT_EQ(Values(r.value(), "XEMP"), (std::set<int64_t>{10, 20, 30, 40}));
  EXPECT_EQ(r.value().ConnectionCount(r.value().FindOutput("EMPLOYMENT")),
            3u);
}

TEST_F(XnfFeaturesTest, FreeOnRelationshipRejected) {
  Result<QueryResult> r = db_.Query(R"sql(
    OUT OF xdept AS DEPT, xemp AS EMP,
           employment AS FREE (RELATE xdept VIA EMPLOYS, xemp
                               WHERE xdept.dno = xemp.edno)
    TAKE *
  )sql");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSemanticError);
}

TEST_F(XnfFeaturesTest, StoredXnfViewWithTakeProjection) {
  ASSERT_TRUE(db_.Execute(R"sql(
    CREATE VIEW SLIM AS
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE xdept(dno), xemp(eno, ename), employment
  )sql")
                  .ok());
  Result<QueryResult> r = db_.Query("SLIM");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  int xdept = r.value().FindOutput("XDEPT");
  int xemp = r.value().FindOutput("XEMP");
  EXPECT_EQ(r.value().outputs[xdept].schema.size(), 1u);
  EXPECT_EQ(r.value().outputs[xemp].schema.size(), 2u);
  EXPECT_EQ(r.value().ConnectionCount(r.value().FindOutput("EMPLOYMENT")),
            3u);
}

}  // namespace
}  // namespace xnfdb
