// Unit tests of the cache cursors and path expressions: rebinding,
// directions, deletion visibility, n-ary navigation, and path errors.

#include <gtest/gtest.h>

#include <set>

#include "cache/cursor.h"
#include "cache/xnf_cache.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

class CursorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
    cache_ = XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery).value();
    ws_ = &cache_->workspace();
  }

  CachedRow* Dept(int64_t dno) {
    return ws_->component("XDEPT").value()->FindByValue(0, Value(dno));
  }

  Database db_;
  std::unique_ptr<XNFCache> cache_;
  Workspace* ws_ = nullptr;
};

TEST_F(CursorTest, RebindRestartsIteration) {
  Relationship* employment = ws_->relationship("EMPLOYMENT").value();
  DependentCursor cursor(ws_, employment, Dept(1));
  int count1 = 0;
  while (cursor.Next()) ++count1;
  EXPECT_EQ(count1, 2);
  cursor.Rebind(Dept(2));
  int count2 = 0;
  while (cursor.Next()) ++count2;
  EXPECT_EQ(count2, 1);
  // Rebind to null anchor: empty iteration, no crash.
  cursor.Rebind(nullptr);
  EXPECT_FALSE(cursor.Next());
}

TEST_F(CursorTest, ResetReplaysIndependentCursor) {
  IndependentCursor cursor(ws_->component("XEMP").value());
  int first = 0;
  while (cursor.Next()) ++first;
  cursor.Reset();
  int second = 0;
  while (cursor.Next()) ++second;
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, 3);
}

TEST_F(CursorTest, DeletedRowsInvisibleToCursors) {
  ComponentTable* xemp = ws_->component("XEMP").value();
  CachedRow* e1 = xemp->FindByValue(0, Value(int64_t{10}));
  ASSERT_TRUE(ws_->DeleteRow(e1).ok());
  IndependentCursor cursor(xemp);
  std::set<int64_t> enos;
  while (cursor.Next()) enos.insert(cursor.row()->values[0].AsInt());
  EXPECT_EQ(enos, (std::set<int64_t>{20, 30}));
  // Dependent navigation also skips the deleted row.
  DependentCursor dep(ws_, ws_->relationship("EMPLOYMENT").value(), Dept(1));
  int children = 0;
  while (dep.Next()) ++children;
  EXPECT_EQ(children, 1);
  EXPECT_EQ(xemp->LiveCount(), 2u);
}

TEST_F(CursorTest, ParentDirectionFindsOwners) {
  ComponentTable* xemp = ws_->component("XEMP").value();
  CachedRow* e3 = xemp->FindByValue(0, Value(int64_t{30}));
  DependentCursor cursor(ws_, ws_->relationship("EMPLOYMENT").value(), e3,
                         DependentCursor::Direction::kParents);
  ASSERT_TRUE(cursor.Next());
  EXPECT_EQ(cursor.row()->values[0].AsInt(), 2);
  EXPECT_FALSE(cursor.Next());
}

TEST_F(CursorTest, PathErrors) {
  EXPECT_FALSE(EvalPath(ws_, "").ok());
  EXPECT_FALSE(EvalPath(ws_, "GHOST").ok());
  // Path must alternate component / relationship correctly.
  EXPECT_FALSE(EvalPath(ws_, "XDEPT.XEMP").ok());
  // Relationship must start at the current component.
  EXPECT_FALSE(EvalPath(ws_, "XSKILLS.EMPLOYMENT.XEMP").ok());
  // Path must end with a component.
  EXPECT_FALSE(EvalPath(ws_, "XDEPT.EMPLOYMENT").ok());
  // Target must be a partner of the relationship.
  EXPECT_FALSE(EvalPath(ws_, "XDEPT.EMPLOYMENT.XPROJ").ok());
}

TEST_F(CursorTest, SingleComponentPathReturnsAllRows) {
  Result<std::vector<CachedRow*>> rows = EvalPath(ws_, "XDEPT");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
}

TEST_F(CursorTest, PathDeduplicatesSharedTargets) {
  // Both e1 and e2 work for d1; the path result holds each skill once.
  Result<std::vector<CachedRow*>> skills =
      EvalPath(ws_, "XDEPT.EMPLOYMENT.XEMP.EMPPROPERTY.XSKILLS");
  ASSERT_TRUE(skills.ok());
  std::set<CachedRow*> unique(skills.value().begin(), skills.value().end());
  EXPECT_EQ(unique.size(), skills.value().size());
}

TEST_F(CursorTest, NaryRelationshipNavigationPerComponent) {
  const char* query = R"sql(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           xproj AS PROJ,
           staffing AS (RELATE xdept VIA STAFFS, xemp, xproj
                        WHERE xdept.dno = xemp.edno AND
                              xdept.dno = xproj.pdno)
    TAKE *
  )sql";
  auto cache = XNFCache::Evaluate(&db_, query).value();
  Workspace& ws = cache->workspace();
  CachedRow* d1 =
      ws.component("XDEPT").value()->FindByValue(0, Value(int64_t{1}));
  // The dependent cursor yields children of both partner components;
  // filter by component, as EvalPath does.
  DependentCursor cursor(&ws, ws.relationship("STAFFING").value(), d1);
  int emps = 0, projs = 0;
  while (cursor.Next()) {
    if (cursor.row()->component == ws.component("XEMP").value()) ++emps;
    if (cursor.row()->component == ws.component("XPROJ").value()) ++projs;
  }
  EXPECT_EQ(emps, 2);   // (d1,e1,p1), (d1,e2,p1)
  EXPECT_EQ(projs, 2);  // p1 appears in both triples
}

}  // namespace
}  // namespace xnfdb
