// Unit tests for the common module: Status/Result, Value semantics
// (three-valued logic, arithmetic, hashing, ordering), Schema, and string
// utilities.

#include <gtest/gtest.h>

#include "common/schema.h"
#include "common/status.h"
#include "common/str_util.h"
#include "common/value.h"

namespace xnfdb {
namespace {

TEST(StatusTest, OkAndErrorRoundTrip) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");

  Status err = Status::ParseError("bad token");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kParseError);
  EXPECT_EQ(err.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(Status::NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), DataType::kNull);
  EXPECT_EQ(Value(int64_t{3}).type(), DataType::kInt);
  EXPECT_EQ(Value(2.5).type(), DataType::kDouble);
  EXPECT_EQ(Value("hi").type(), DataType::kString);
  EXPECT_EQ(Value(true).type(), DataType::kBool);
  EXPECT_EQ(Value(int64_t{3}).AsDouble(), 3.0);  // int promotes
}

TEST(ValueTest, EqualityIsNullSafeAndNumericCrossType) {
  EXPECT_TRUE(Value() == Value());
  EXPECT_FALSE(Value() == Value(int64_t{0}));
  EXPECT_TRUE(Value(int64_t{2}) == Value(2.0));  // numeric promotion
  EXPECT_FALSE(Value(int64_t{2}) == Value("2"));
  EXPECT_TRUE(Value("abc") == Value("abc"));
}

TEST(ValueTest, ThreeValuedComparison) {
  Value t = Value::Compare(Value(int64_t{1}), Value(int64_t{2}), CompareOp::kLt);
  ASSERT_EQ(t.type(), DataType::kBool);
  EXPECT_TRUE(t.AsBool());
  EXPECT_TRUE(
      Value::Compare(Value(), Value(int64_t{2}), CompareOp::kEq).is_null());
  EXPECT_TRUE(
      Value::Compare(Value(int64_t{1}), Value(), CompareOp::kNe).is_null());
  EXPECT_TRUE(Value::Compare(Value("a"), Value("b"), CompareOp::kLe).AsBool());
  EXPECT_FALSE(Value::Compare(Value("b"), Value("a"), CompareOp::kLe).AsBool());
}

TEST(ValueTest, ParseCompareOpCoversSqlSpellings) {
  CompareOp op = CompareOp::kEq;
  EXPECT_TRUE(ParseCompareOp("<>", &op));
  EXPECT_EQ(op, CompareOp::kNe);
  EXPECT_TRUE(ParseCompareOp(">=", &op));
  EXPECT_EQ(op, CompareOp::kGe);
  EXPECT_FALSE(ParseCompareOp("!=", &op));
  EXPECT_EQ(op, CompareOp::kGe);  // untouched on failure
  EXPECT_STREQ(CompareOpName(CompareOp::kLt), "<");
}

TEST(ValueTest, ArithmeticPromotionAndErrors) {
  Result<Value> sum = Value::Add(Value(int64_t{2}), Value(int64_t{3}));
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.value().AsInt(), 5);

  Result<Value> mixed = Value::Mul(Value(int64_t{2}), Value(1.5));
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed.value().type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(mixed.value().AsDouble(), 3.0);

  // NULL propagates.
  Result<Value> n = Value::Sub(Value(), Value(int64_t{1}));
  ASSERT_TRUE(n.ok());
  EXPECT_TRUE(n.value().is_null());

  EXPECT_FALSE(Value::Add(Value("x"), Value(int64_t{1})).ok());
  EXPECT_FALSE(Value::Div(Value(int64_t{1}), Value(int64_t{0})).ok());
}

TEST(ValueTest, IntegerDivisionStaysIntegralWhenExact) {
  Result<Value> exact = Value::Div(Value(int64_t{6}), Value(int64_t{3}));
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact.value().type(), DataType::kInt);
  EXPECT_EQ(exact.value().AsInt(), 2);

  Result<Value> frac = Value::Div(Value(int64_t{7}), Value(int64_t{2}));
  ASSERT_TRUE(frac.ok());
  EXPECT_EQ(frac.value().type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(frac.value().AsDouble(), 3.5);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{5}).Hash(), Value(5.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  Tuple a{Value(int64_t{1}), Value("x")};
  Tuple b{Value(int64_t{1}), Value("x")};
  EXPECT_EQ(HashTuple(a), HashTuple(b));
}

TEST(ValueTest, OrderingPutsNullFirst) {
  EXPECT_TRUE(Value() < Value(int64_t{0}));
  EXPECT_FALSE(Value(int64_t{0}) < Value());
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value("a") < Value("b"));
}

TEST(ValueTest, ToStringRendersSqlStyle) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(true).ToString(), "TRUE");
  EXPECT_EQ(TupleToString({Value(int64_t{1}), Value("a")}), "(1, 'a')");
}

TEST(SchemaTest, CaseInsensitiveLookup) {
  Schema s({{"DNO", DataType::kInt}, {"DName", DataType::kString}});
  EXPECT_EQ(s.FindColumn("dno"), 0);
  EXPECT_EQ(s.FindColumn("DNAME"), 1);
  EXPECT_EQ(s.FindColumn("missing"), -1);
  EXPECT_FALSE(s.ResolveColumn("missing", "table T").ok());
}

TEST(SchemaTest, ValidateTupleChecksArityAndTypes) {
  Schema s({{"A", DataType::kInt}, {"B", DataType::kDouble}});
  EXPECT_TRUE(s.ValidateTuple({Value(int64_t{1}), Value(2.0)}).ok());
  // Int accepted for double columns; NULL anywhere.
  EXPECT_TRUE(s.ValidateTuple({Value(int64_t{1}), Value(int64_t{2})}).ok());
  EXPECT_TRUE(s.ValidateTuple({Value(), Value()}).ok());
  EXPECT_FALSE(s.ValidateTuple({Value(int64_t{1})}).ok());
  EXPECT_FALSE(s.ValidateTuple({Value("x"), Value(2.0)}).ok());
}

TEST(StrUtilTest, JoinSplitTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a.b..c", '.'),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
}

TEST(StrUtilTest, LikeMatching) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%llo"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("hello", "h_"));
  EXPECT_FALSE(LikeMatch("hello", "H%"));  // case-sensitive on data
  EXPECT_TRUE(LikeMatch("a%b", "a%b"));
  EXPECT_TRUE(LikeMatch("xazb", "%a_b"));
}

TEST(StrUtilTest, IdentCaseFolding) {
  EXPECT_TRUE(IdentEquals("abc", "ABC"));
  EXPECT_FALSE(IdentEquals("abc", "abd"));
  EXPECT_EQ(ToUpperIdent("xDept"), "XDEPT");
}

TEST(ParseEnvIntTest, UnsetYieldsDefault) {
  unsetenv("XNFDB_TEST_KNOB");
  EXPECT_EQ(ParseEnvInt("XNFDB_TEST_KNOB", 0, 100, 42), 42);
}

TEST(ParseEnvIntTest, ValidValueIsParsed) {
  setenv("XNFDB_TEST_KNOB", "17", 1);
  EXPECT_EQ(ParseEnvInt("XNFDB_TEST_KNOB", 0, 100, 42), 17);
  setenv("XNFDB_TEST_KNOB", "  23  ", 1);  // surrounding whitespace is fine
  EXPECT_EQ(ParseEnvInt("XNFDB_TEST_KNOB", 0, 100, 42), 23);
  unsetenv("XNFDB_TEST_KNOB");
}

TEST(ParseEnvIntTest, OutOfRangeValuesAreClamped) {
  setenv("XNFDB_TEST_KNOB", "1000", 1);
  EXPECT_EQ(ParseEnvInt("XNFDB_TEST_KNOB", 0, 100, 42), 100);
  setenv("XNFDB_TEST_KNOB", "-5", 1);
  EXPECT_EQ(ParseEnvInt("XNFDB_TEST_KNOB", 1, 100, 42), 1);
  unsetenv("XNFDB_TEST_KNOB");
}

TEST(ParseEnvIntTest, MalformedValuesYieldDefault) {
  for (const char* bad : {"", "abc", "12abc", "1.5", "0x10"}) {
    setenv("XNFDB_TEST_KNOB", bad, 1);
    EXPECT_EQ(ParseEnvInt("XNFDB_TEST_KNOB", 0, 100, 42), 42)
        << "value: '" << bad << "'";
  }
  // Overflow beyond int64 is malformed, not clamped.
  setenv("XNFDB_TEST_KNOB", "99999999999999999999999", 1);
  EXPECT_EQ(ParseEnvInt("XNFDB_TEST_KNOB", 0, 100, 42), 42);
  unsetenv("XNFDB_TEST_KNOB");
}

TEST(ParseEnvBoolTest, UnsetAndEmptyYieldDefault) {
  unsetenv("XNFDB_TEST_FLAG");
  EXPECT_TRUE(ParseEnvBool("XNFDB_TEST_FLAG", true));
  EXPECT_FALSE(ParseEnvBool("XNFDB_TEST_FLAG", false));
  setenv("XNFDB_TEST_FLAG", "", 1);
  EXPECT_TRUE(ParseEnvBool("XNFDB_TEST_FLAG", true));
  unsetenv("XNFDB_TEST_FLAG");
}

TEST(ParseEnvBoolTest, RecognizedSpellings) {
  for (const char* yes : {"1", "true", "TRUE", "Yes", "on", " ON "}) {
    setenv("XNFDB_TEST_FLAG", yes, 1);
    EXPECT_TRUE(ParseEnvBool("XNFDB_TEST_FLAG", false)) << "value: " << yes;
  }
  for (const char* no : {"0", "false", "FALSE", "No", "off", " off "}) {
    setenv("XNFDB_TEST_FLAG", no, 1);
    EXPECT_FALSE(ParseEnvBool("XNFDB_TEST_FLAG", true)) << "value: " << no;
  }
  unsetenv("XNFDB_TEST_FLAG");
}

TEST(ParseEnvBoolTest, UnparsableValuesYieldDefault) {
  for (const char* bad : {"2", "maybe", "enable", "tru"}) {
    setenv("XNFDB_TEST_FLAG", bad, 1);
    EXPECT_TRUE(ParseEnvBool("XNFDB_TEST_FLAG", true)) << "value: " << bad;
    EXPECT_FALSE(ParseEnvBool("XNFDB_TEST_FLAG", false)) << "value: " << bad;
  }
  unsetenv("XNFDB_TEST_FLAG");
}

}  // namespace
}  // namespace xnfdb
