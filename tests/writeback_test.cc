// Unit tests for the write-back planner: updatability analysis of component
// and relationship definitions (paper Sect. 2's updatability rules) and the
// generated SQL.

#include <gtest/gtest.h>

#include "cache/writeback.h"
#include "cache/xnf_cache.h"
#include "obs/metrics.h"
#include "parser/parser.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

class WriteBackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(testing_util::LoadPaperDb(&db_).ok());
  }

  // Evaluates a query and analyzes one component.
  ComponentPlan Analyze(const std::string& query,
                        const std::string& component) {
    cache_ = XNFCache::Evaluate(&db_, query).value();
    WriteBackPlanner planner(&db_, &cache_->definition());
    ComponentTable* comp =
        cache_->workspace().component(component).value();
    return planner.AnalyzeComponent(*comp).value();
  }

  RelationshipPlan AnalyzeRel(const std::string& query,
                              const std::string& rel) {
    cache_ = XNFCache::Evaluate(&db_, query).value();
    WriteBackPlanner planner(&db_, &cache_->definition());
    Relationship* r = cache_->workspace().relationship(rel).value();
    return planner.AnalyzeRelationship(*r, &cache_->workspace()).value();
  }

  Database db_;
  std::unique_ptr<XNFCache> cache_;
};

TEST_F(WriteBackTest, ShortcutComponentIsUpdatable) {
  ComponentPlan plan = Analyze("OUT OF x AS EMP TAKE *", "X");
  EXPECT_TRUE(plan.updatable);
  EXPECT_EQ(plan.base_table, "EMP");
  EXPECT_EQ(plan.column_map, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(plan.key_cached_col, 0);  // ENO is the PK
}

TEST_F(WriteBackTest, SelectionViewIsUpdatable) {
  ComponentPlan plan = Analyze(
      "OUT OF x AS (SELECT * FROM EMP WHERE SAL > 0.0) TAKE *", "X");
  EXPECT_TRUE(plan.updatable);
}

TEST_F(WriteBackTest, ProjectedColumnsMapThroughAliases) {
  ComponentPlan plan = Analyze(
      "OUT OF x AS (SELECT ENAME AS N, ENO FROM EMP) TAKE *", "X");
  ASSERT_TRUE(plan.updatable);
  EXPECT_EQ(plan.column_map, (std::vector<int>{1, 0}));  // N->ENAME, ENO
  EXPECT_EQ(plan.key_cached_col, 1);
}

TEST_F(WriteBackTest, JoinViewIsNotUpdatable) {
  ComponentPlan plan = Analyze(
      "OUT OF x AS (SELECT e.ENO, d.DNAME FROM EMP e, DEPT d "
      "WHERE e.EDNO = d.DNO) TAKE *",
      "X");
  EXPECT_FALSE(plan.updatable);
  EXPECT_NE(plan.reason.find("join"), std::string::npos);
}

TEST_F(WriteBackTest, ComputedColumnIsNotUpdatable) {
  ComponentPlan plan = Analyze(
      "OUT OF x AS (SELECT ENO, SAL * 2 AS DOUBLE_SAL FROM EMP) TAKE *",
      "X");
  EXPECT_FALSE(plan.updatable);
}

TEST_F(WriteBackTest, DistinctViewIsNotUpdatable) {
  ComponentPlan plan = Analyze(
      "OUT OF x AS (SELECT DISTINCT EDNO FROM EMP) TAKE *", "X");
  EXPECT_FALSE(plan.updatable);
}

TEST_F(WriteBackTest, ProjectedOutPrimaryKeyFallsBackToFullMatch) {
  ComponentPlan plan = Analyze(
      "OUT OF x AS (SELECT ENAME, SAL FROM EMP) TAKE *", "X");
  ASSERT_TRUE(plan.updatable);
  EXPECT_EQ(plan.key_cached_col, -1);  // no PK in the cache
}

TEST_F(WriteBackTest, ForeignKeyRelationshipPlan) {
  RelationshipPlan plan = AnalyzeRel(
      "OUT OF d AS DEPT, e AS EMP, "
      "r AS (RELATE d VIA EMPLOYS, e WHERE d.DNO = e.EDNO) TAKE *",
      "R");
  EXPECT_EQ(plan.kind, RelationshipPlan::Kind::kForeignKey);
  EXPECT_EQ(plan.child_base, "EMP");
  EXPECT_EQ(plan.child_fk_column, "EDNO");
}

TEST_F(WriteBackTest, ConnectTableRelationshipPlan) {
  RelationshipPlan plan = AnalyzeRel(
      "OUT OF e AS EMP, s AS SKILLS, "
      "r AS (RELATE e VIA HAS, s USING EMPSKILLS es "
      "      WHERE e.ENO = es.ESENO AND es.ESSNO = s.SNO) TAKE *",
      "R");
  EXPECT_EQ(plan.kind, RelationshipPlan::Kind::kConnectTable);
  EXPECT_EQ(plan.connect_table, "EMPSKILLS");
  EXPECT_EQ(plan.ct_parent_column, "ESENO");
  EXPECT_EQ(plan.ct_child_column, "ESSNO");
}

TEST_F(WriteBackTest, UndeclaredForeignKeyRejected) {
  // DEPT.DNO = PROJ.PNO has no declared FK from PROJ.PNO to DEPT.
  RelationshipPlan plan = AnalyzeRel(
      "OUT OF d AS DEPT, p AS PROJ, "
      "r AS (RELATE d VIA OWNS, p WHERE d.DNO = p.PNO) TAKE *",
      "R");
  EXPECT_EQ(plan.kind, RelationshipPlan::Kind::kNotUpdatable);
  EXPECT_NE(plan.reason.find("foreign key"), std::string::npos);
}

TEST_F(WriteBackTest, RichPredicateRejected) {
  RelationshipPlan plan = AnalyzeRel(
      "OUT OF d AS DEPT, e AS EMP, "
      "r AS (RELATE d VIA EMPLOYS, e WHERE d.DNO = e.EDNO AND e.SAL > 0.0) "
      "TAKE *",
      "R");
  // The extra non-join conjunct is tolerated only if it is an equality;
  // SAL > 0 makes the predicate richer than FK form.
  EXPECT_EQ(plan.kind, RelationshipPlan::Kind::kNotUpdatable);
}

TEST_F(WriteBackTest, SqlLiteralEscapesQuotes) {
  EXPECT_EQ(SqlLiteral(Value("it's")), "'it''s'");
  EXPECT_EQ(SqlLiteral(Value(int64_t{42})), "42");
  EXPECT_EQ(SqlLiteral(Value::Null()), "NULL");
}

TEST_F(WriteBackTest, UpdateWithoutPkMatchesOnAllOriginalColumns) {
  auto cache = XNFCache::Evaluate(
      &db_, "OUT OF x AS (SELECT ENAME, SAL FROM EMP) TAKE *");
  ASSERT_TRUE(cache.ok());
  ComponentTable* x = cache.value()->workspace().component("X").value();
  CachedRow* row = x->FindByValue(0, Value("e1"));
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(cache.value()->Update(row, "SAL", Value(123.0)).ok());
  Result<std::vector<std::string>> stmts = cache.value()->WriteBack();
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  ASSERT_EQ(stmts.value().size(), 1u);
  // The predicate must use both original values.
  EXPECT_NE(stmts.value()[0].find("ENAME = 'e1'"), std::string::npos);
  EXPECT_NE(stmts.value()[0].find("AND"), std::string::npos);
}

TEST_F(WriteBackTest, DisconnectThenWriteBackDeletesConnectRow) {
  auto cache = XNFCache::Evaluate(&db_, testing_util::kDepsArcQuery);
  ASSERT_TRUE(cache.ok());
  Workspace& ws = cache.value()->workspace();
  CachedRow* e1 = ws.component("XEMP").value()->FindByValue(
      0, Value(int64_t{10}));
  CachedRow* s1 = ws.component("XSKILLS").value()->FindByValue(
      0, Value(int64_t{1000}));
  ASSERT_TRUE(
      cache.value()->Disconnect("EMPPROPERTY", e1, s1).ok());
  Result<std::vector<std::string>> stmts = cache.value()->WriteBack();
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();
  Result<QueryResult> check = db_.Query(
      "SELECT ESSNO FROM EMPSKILLS WHERE ESENO = 10");
  ASSERT_TRUE(check.ok());
  EXPECT_TRUE(check.value().rows().empty());
}

// Injected transient failures used to be invisible to callers; now every
// retry and every exhausted operation lands in the process-wide registry.
TEST_F(WriteBackTest, TransientRetriesAreCountedAsMetrics) {
  cache_ = XNFCache::Evaluate(&db_, "OUT OF x AS EMP TAKE *").value();
  CachedRow* row = cache_->workspace().component("X").value()->FindByValue(
      0, Value(int64_t{10}));
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(cache_->Update(row, "SAL", Value(95000.0)).ok());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const int64_t retries_before = reg.GetCounter("writeback.retries")->value();
  const int64_t failures_before =
      reg.GetCounter("writeback.failures")->value();

  db_.InjectTransientFailures(2);
  WriteBackOptions options;
  options.backoff_initial_ms = 0;
  Result<std::vector<std::string>> stmts = cache_->WriteBack(options);
  ASSERT_TRUE(stmts.ok()) << stmts.status().ToString();

  EXPECT_EQ(reg.GetCounter("writeback.retries")->value() - retries_before, 2);
  EXPECT_EQ(reg.GetCounter("writeback.failures")->value() - failures_before,
            0);
}

TEST_F(WriteBackTest, ExhaustedRetriesCountAsFailure) {
  cache_ = XNFCache::Evaluate(&db_, "OUT OF x AS EMP TAKE *").value();
  CachedRow* row = cache_->workspace().component("X").value()->FindByValue(
      0, Value(int64_t{10}));
  ASSERT_NE(row, nullptr);
  ASSERT_TRUE(cache_->Update(row, "SAL", Value(96000.0)).ok());

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const int64_t retries_before = reg.GetCounter("writeback.retries")->value();
  const int64_t failures_before =
      reg.GetCounter("writeback.failures")->value();

  db_.InjectTransientFailures(100);
  WriteBackOptions options;
  options.backoff_initial_ms = 0;
  options.max_retries = 2;
  Result<std::vector<std::string>> stmts = cache_->WriteBack(options);
  ASSERT_FALSE(stmts.ok());
  db_.InjectTransientFailures(0);

  EXPECT_EQ(reg.GetCounter("writeback.retries")->value() - retries_before, 2);
  EXPECT_EQ(reg.GetCounter("writeback.failures")->value() - failures_before,
            1);
}

TEST_F(WriteBackTest, BackoffJitterIsBoundedAndDeterministicWithSeed) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter* backoff = reg.GetCounter("writeback.backoff_ms");
  int64_t slept[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    cache_ = XNFCache::Evaluate(&db_, "OUT OF x AS EMP TAKE *").value();
    CachedRow* row = cache_->workspace().component("X").value()->FindByValue(
        0, Value(int64_t{10}));
    ASSERT_NE(row, nullptr);
    ASSERT_TRUE(cache_->Update(row, "SAL", Value(97000.0 + run)).ok());

    db_.InjectTransientFailures(100);
    WriteBackOptions options;
    options.backoff_initial_ms = 2;
    options.max_retries = 3;
    options.jitter_seed = 0x9e3779b97f4a7c15ull;
    const int64_t before = backoff->value();
    Result<std::vector<std::string>> stmts = cache_->WriteBack(options);
    ASSERT_FALSE(stmts.ok());
    db_.InjectTransientFailures(0);
    slept[run] = backoff->value() - before;

    // Equal jitter keeps each sleep within [delay/2, delay]: three retries
    // at exponential delays 2, 4, 8 ms sleep between 7 and 14 ms total.
    EXPECT_GE(slept[run], 1 + 2 + 4);
    EXPECT_LE(slept[run], 2 + 4 + 8);
  }
  // Identical seed, identical jitter sequence.
  EXPECT_EQ(slept[0], slept[1]);
}

}  // namespace
}  // namespace xnfdb
