// Direct unit tests of the physical operators (exec/operators.h): joins,
// filters, distinct, sort, union, aggregation and the existential filter —
// independent of the planner.

#include <gtest/gtest.h>

#include <memory>

#include "exec/operators.h"
#include "qgm/qgm.h"

namespace xnfdb {
namespace {

using qgm::Expr;
using qgm::ExprPtr;

Tuple Row(int64_t a, int64_t b) { return {Value(a), Value(b)}; }

OperatorPtr Source(std::vector<Tuple> rows, ExecStats* stats = nullptr) {
  auto shared = std::make_shared<const std::vector<Tuple>>(std::move(rows));
  return std::make_unique<MaterializedOp>(shared, stats);
}

// A fake quantifier layout: quantifier 0 with two columns at offset 0.
Layout TwoColLayout(int quant = 0) {
  Layout layout;
  layout.Add(quant, 0, 2);
  return layout;
}

TEST(OperatorsTest, DrainMaterialized) {
  OperatorPtr op = Source({Row(1, 2), Row(3, 4)});
  Result<std::vector<Tuple>> rows = DrainOperator(op.get());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
}

TEST(OperatorsTest, FilterAppliesAllPredicates) {
  ExprPtr p1 = Expr::MakeBinary(">", Expr::MakeColRef(0, 0),
                                Expr::MakeLiteral(Value(int64_t{1})));
  ExprPtr p2 = Expr::MakeBinary("<", Expr::MakeColRef(0, 1),
                                Expr::MakeLiteral(Value(int64_t{10})));
  FilterOp filter(Source({Row(1, 2), Row(3, 4), Row(5, 20)}),
                  {p1.get(), p2.get()}, TwoColLayout());
  Result<std::vector<Tuple>> rows = DrainOperator(&filter);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][0].AsInt(), 3);
}

TEST(OperatorsTest, FilterNullPredicateFiltersRow) {
  // col0 > NULL is unknown -> filtered.
  ExprPtr p = Expr::MakeBinary(">", Expr::MakeColRef(0, 0),
                               Expr::MakeLiteral(Value::Null()));
  FilterOp filter(Source({Row(1, 2)}), {p.get()}, TwoColLayout());
  Result<std::vector<Tuple>> rows = DrainOperator(&filter);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows.value().empty());
}

TEST(OperatorsTest, ProjectEvaluatesExpressions) {
  ExprPtr sum = Expr::MakeBinary("+", Expr::MakeColRef(0, 0),
                                 Expr::MakeColRef(0, 1));
  ProjectOp project(Source({Row(1, 2), Row(10, 20)}), {sum.get()},
                    TwoColLayout());
  Result<std::vector<Tuple>> rows = DrainOperator(&project);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0][0].AsInt(), 3);
  EXPECT_EQ(rows.value()[1][0].AsInt(), 30);
}

TEST(OperatorsTest, DistinctTreatsNullsAsOneClass) {
  DistinctOp distinct(Source({{Value::Null()}, {Value::Null()},
                              {Value(int64_t{1})}, {Value(int64_t{1})}}));
  Result<std::vector<Tuple>> rows = DrainOperator(&distinct);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 2u);
}

TEST(OperatorsTest, SortIsStableAndHandlesDescending) {
  SortOp sort(Source({Row(2, 100), Row(1, 200), Row(2, 300), Row(1, 400)}),
              {{0, false}});
  Result<std::vector<Tuple>> rows = DrainOperator(&sort);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 4u);
  // Stable: equal keys keep input order.
  EXPECT_EQ(rows.value()[0][1].AsInt(), 200);
  EXPECT_EQ(rows.value()[1][1].AsInt(), 400);
  EXPECT_EQ(rows.value()[2][1].AsInt(), 100);
  EXPECT_EQ(rows.value()[3][1].AsInt(), 300);

  SortOp desc(Source({Row(1, 0), Row(3, 0), Row(2, 0)}), {{0, true}});
  Result<std::vector<Tuple>> drows = DrainOperator(&desc);
  ASSERT_TRUE(drows.ok());
  EXPECT_EQ(drows.value()[0][0].AsInt(), 3);
}

TEST(OperatorsTest, HashJoinMatchesAndAppliesResidual) {
  // left (q0): (1,10), (2,20), (3,30); right (q1): (1,100), (1,101), (9,900)
  Layout left = TwoColLayout(0);
  Layout right = TwoColLayout(1);
  Layout combined = left;
  combined.Add(1, 2, 2);
  ExprPtr lkey = Expr::MakeColRef(0, 0);
  ExprPtr rkey = Expr::MakeColRef(1, 0);
  ExprPtr residual = Expr::MakeBinary(
      ">", Expr::MakeColRef(1, 1), Expr::MakeLiteral(Value(int64_t{100})));
  ExecStats stats;
  HashJoinOp join(Source({Row(1, 10), Row(2, 20), Row(3, 30)}),
                  Source({Row(1, 100), Row(1, 101), Row(9, 900)}),
                  {lkey.get()}, {rkey.get()}, {residual.get()}, left, right,
                  combined, &stats);
  Result<std::vector<Tuple>> rows = DrainOperator(&join);
  ASSERT_TRUE(rows.ok());
  // Only (1,10)x(1,101) survives the residual.
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0][3].AsInt(), 101);
  EXPECT_EQ(stats.join_probes, 3);
}

TEST(OperatorsTest, HashJoinNullKeysNeverMatch) {
  Layout left = TwoColLayout(0);
  Layout right = TwoColLayout(1);
  Layout combined = left;
  combined.Add(1, 2, 2);
  ExprPtr lkey = Expr::MakeColRef(0, 0);
  ExprPtr rkey = Expr::MakeColRef(1, 0);
  HashJoinOp join(Source({{Value::Null(), Value(int64_t{1})}}),
                  Source({{Value::Null(), Value(int64_t{2})}}), {lkey.get()},
                  {rkey.get()}, {}, left, right, combined, nullptr);
  Result<std::vector<Tuple>> rows = DrainOperator(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows.value().empty());
}

TEST(OperatorsTest, NestedLoopJoinNonEqui) {
  Layout combined = TwoColLayout(0);
  combined.Add(1, 2, 2);
  ExprPtr pred = Expr::MakeBinary("<", Expr::MakeColRef(0, 0),
                                  Expr::MakeColRef(1, 0));
  NLJoinOp join(Source({Row(1, 0), Row(5, 0)}),
                Source({Row(2, 0), Row(6, 0)}), {pred.get()}, combined,
                nullptr);
  Result<std::vector<Tuple>> rows = DrainOperator(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 3u);  // 1<2, 1<6, 5<6
}

TEST(OperatorsTest, UnionConcatenates) {
  std::vector<OperatorPtr> children;
  children.push_back(Source({Row(1, 1)}));
  children.push_back(Source({}));
  children.push_back(Source({Row(2, 2), Row(1, 1)}));
  UnionOp u(std::move(children));
  Result<std::vector<Tuple>> rows = DrainOperator(&u);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 3u);
}

TEST(OperatorsTest, AggregationPerGroupAndGlobal) {
  // Rows (group, value): (1,10), (1,20), (2,5).
  ExprPtr group = Expr::MakeColRef(0, 0);
  ExprPtr arg = Expr::MakeColRef(0, 1);
  std::vector<AggSpec> specs(3);
  specs[0].group_expr = group.get();
  specs[1].is_agg = true;
  specs[1].func = "SUM";
  specs[1].arg = arg.get();
  specs[2].is_agg = true;
  specs[2].func = "COUNT";
  specs[2].arg = nullptr;  // COUNT(*)
  AggOp agg(Source({Row(1, 10), Row(1, 20), Row(2, 5)}), {group.get()}, specs,
            TwoColLayout());
  Result<std::vector<Tuple>> rows = DrainOperator(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  for (const Tuple& row : rows.value()) {
    if (row[0].AsInt() == 1) {
      EXPECT_EQ(row[1].AsInt(), 30);
      EXPECT_EQ(row[2].AsInt(), 2);
    } else {
      EXPECT_EQ(row[1].AsInt(), 5);
      EXPECT_EQ(row[2].AsInt(), 1);
    }
  }
}

TEST(OperatorsTest, ExistsFilterConjunctiveVsDisjunctive) {
  // Outer rows keyed on col0; two groups: g1 matches keys {1,2},
  // g2 matches keys {2,3}.
  auto make_group = [](std::vector<int64_t> keys, ExprPtr* outer_key,
                       ExprPtr* inner_key) {
    GroupCheck g;
    std::vector<Tuple> rows;
    for (int64_t k : keys) rows.push_back({Value(k)});
    g.rows = std::make_shared<const std::vector<Tuple>>(std::move(rows));
    g.group_layout.Add(100, 0, 1);
    g.combined_layout = TwoColLayout(0);
    g.combined_layout.Append(g.group_layout, 2);
    *outer_key = Expr::MakeColRef(0, 0);
    *inner_key = Expr::MakeColRef(100, 0);
    g.equi_outer.push_back(outer_key->get());
    g.equi_inner.push_back(inner_key->get());
    return g;
  };

  for (bool naive : {false, true}) {
    for (bool disjunctive : {false, true}) {
      ExprPtr ok1, ik1, ok2, ik2;
      std::vector<GroupCheck> groups;
      groups.push_back(make_group({1, 2}, &ok1, &ik1));
      groups.push_back(make_group({2, 3}, &ok2, &ik2));
      ExistsFilterOp op(Source({Row(1, 0), Row(2, 0), Row(3, 0), Row(4, 0)}),
                        std::move(groups), TwoColLayout(0), disjunctive,
                        naive, nullptr);
      Result<std::vector<Tuple>> rows = DrainOperator(&op);
      ASSERT_TRUE(rows.ok());
      std::set<int64_t> keys;
      for (const Tuple& row : rows.value()) keys.insert(row[0].AsInt());
      if (disjunctive) {
        EXPECT_EQ(keys, (std::set<int64_t>{1, 2, 3}))
            << "naive=" << naive;
      } else {
        EXPECT_EQ(keys, (std::set<int64_t>{2})) << "naive=" << naive;
      }
    }
  }
}

TEST(OperatorsTest, ReopenResetsState) {
  DistinctOp distinct(Source({Row(1, 1), Row(1, 1)}));
  Result<std::vector<Tuple>> first = DrainOperator(&distinct);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().size(), 1u);
  Result<std::vector<Tuple>> second = DrainOperator(&distinct);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().size(), 1u);
}

}  // namespace
}  // namespace xnfdb
