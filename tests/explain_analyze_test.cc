// EXPLAIN ANALYZE and the unified metrics snapshot: per-operator actuals on
// the deps_ARC query of Fig. 1, their agreement with ExecStats, and the
// whole-system MetricsJson / trace coverage of one query lifecycle.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "api/database.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

// Parses "actual rows=N" out of the first operator line of `plan`.
int64_t RootActualRows(const std::string& plan) {
  size_t pos = plan.find("actual rows=");
  if (pos == std::string::npos) return -1;
  return std::stoll(plan.substr(pos + std::string("actual rows=").size()));
}

TEST(ExplainAnalyzeTest, AnnotatesEveryDepsArcOperator) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<std::string> out = db.Explain(testing_util::kDepsArcQuery,
                                       Database::ExplainOptions{true});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const std::string& text = out.value();
  EXPECT_NE(text.find("output XDEPT:"), std::string::npos) << text;
  EXPECT_NE(text.find("output EMPLOYMENT [connection]:"), std::string::npos)
      << text;
  EXPECT_NE(text.find("stats: "), std::string::npos) << text;
  // Every operator line carries actuals (ExistsFilter group-detail lines
  // are descriptions, not operators, and stay unannotated).
  const std::vector<std::string> kOps = {
      "Scan(",   "IndexScan(", "RangeScan(",      "SpoolRead(",
      "Filter(", "Project(",   "HashJoin(",       "NestedLoopJoin(",
      "Union",   "Aggregate(", "ExistsFilter(",   "Distinct",
      "Sort(",   "Limit("};
  size_t operator_lines = 0, annotated_lines = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    bool is_op = false;
    for (const std::string& op : kOps) {
      size_t pos = line.find(op);
      if (pos != std::string::npos &&
          line.find_first_not_of(' ') == pos) {
        is_op = true;
        break;
      }
    }
    if (!is_op) continue;
    ++operator_lines;
    if (line.find("actual rows=") != std::string::npos &&
        line.find("loops=") != std::string::npos &&
        line.find("time=") != std::string::npos) {
      ++annotated_lines;
    }
  }
  EXPECT_GT(operator_lines, 0u);
  EXPECT_EQ(operator_lines, annotated_lines) << text;
}

TEST(ExplainAnalyzeTest, WithoutAnalyzeFallsBackToPlainExplain) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<std::string> plain =
      db.Explain(testing_util::kDepsArcQuery, Database::ExplainOptions{});
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().find("actual rows="), std::string::npos);
}

TEST(ExplainAnalyzeTest, PlainExplainShowsEstimatedRows) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  // Plain EXPLAIN (no execution) prints the planner's estimates, so a plan
  // can be sanity-checked before it is run.
  Result<std::string> plain = db.Explain("SELECT ENO FROM EMP");
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_NE(plain.value().find("est rows="), std::string::npos)
      << plain.value();
  Result<std::string> arc = db.Explain(testing_util::kDepsArcQuery);
  ASSERT_TRUE(arc.ok());
  EXPECT_NE(arc.value().find("est rows="), std::string::npos) << arc.value();
}

TEST(ExplainAnalyzeTest, AnalyzeAnnotatesQError) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<std::string> out = db.Explain("SELECT ENO FROM EMP",
                                       Database::ExplainOptions{true});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  // With both an estimate and actuals on the line, the q-error is printed.
  EXPECT_NE(out.value().find("est rows="), std::string::npos) << out.value();
  EXPECT_NE(out.value().find(" q="), std::string::npos) << out.value();
}

TEST(ExplainAnalyzeTest, RootActualRowsMatchExecStatsOnSql) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ExecOptions eo;
  eo.analyze = true;
  Result<QueryResult> r = db.Query("SELECT ENO FROM EMP", {}, eo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().plan_texts.size(), 1u);
  // The root operator produced exactly the rows the query output.
  EXPECT_EQ(RootActualRows(r.value().plan_texts[0]), 4);
  EXPECT_EQ(r.value().stats.rows_output.load(), 4);
  EXPECT_EQ(r.value().rows().size(), 4u);
}

TEST(ExplainAnalyzeTest, ActualRowsCoverStreamCountsOnDepsArc) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ExecOptions eo;
  eo.analyze = true;
  Result<QueryResult> r = db.Query(testing_util::kDepsArcQuery, {}, eo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().plan_texts.size(), r.value().outputs.size());
  int64_t total_emitted = 0;
  for (size_t i = 0; i < r.value().outputs.size(); ++i) {
    SCOPED_TRACE(r.value().outputs[i].name);
    int64_t root_rows = RootActualRows(r.value().plan_texts[i]);
    ASSERT_GE(root_rows, 0) << r.value().plan_texts[i];
    // The executor dedups component rows after the root produced them, so
    // the root's actual rows bound the emitted count from above.
    int idx = static_cast<int>(i);
    int64_t emitted = r.value().outputs[i].is_connection
                          ? static_cast<int64_t>(r.value().ConnectionCount(idx))
                          : static_cast<int64_t>(r.value().RowCount(idx));
    EXPECT_GE(root_rows, emitted);
    total_emitted += emitted;
  }
  // rows_output is the consistent post-join snapshot of emitted items.
  EXPECT_EQ(r.value().stats.rows_output.load(), total_emitted);
}

TEST(ExplainAnalyzeTest, PlanTextsAbsentWithoutAnalyze) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<QueryResult> r = db.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().plan_texts.empty());
}

TEST(ExplainAnalyzeTest, AnalyzeWorksUnderParallelExecution) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ExecOptions seq;
  seq.analyze = true;
  Result<QueryResult> a = db.Query(testing_util::kDepsArcQuery, {}, seq);
  ASSERT_TRUE(a.ok());
  ExecOptions par = seq;
  par.parallel_workers = 4;
  Result<QueryResult> b = db.Query(testing_util::kDepsArcQuery, {}, par);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().plan_texts.size(), b.value().plan_texts.size());
  for (size_t i = 0; i < a.value().plan_texts.size(); ++i) {
    EXPECT_EQ(RootActualRows(a.value().plan_texts[i]),
              RootActualRows(b.value().plan_texts[i]));
  }
}

TEST(ExplainAnalyzeTest, RecursiveCoIsRejected) {
  Database db;
  Result<size_t> load = db.ExecuteScript(R"sql(
    CREATE TABLE PART (PNO INTEGER, PRIMARY KEY (PNO));
    CREATE TABLE USAGE (ASSEMBLY INTEGER, COMPONENT INTEGER);
    INSERT INTO PART VALUES (1), (2);
    INSERT INTO USAGE VALUES (1, 2);
  )sql");
  ASSERT_TRUE(load.ok()) << load.status().ToString();
  Result<std::string> out = db.Explain(R"sql(
    OUT OF root AS (SELECT * FROM PART WHERE PNO = 1),
           xpart AS PART,
           toplevel AS (RELATE root VIA ANCHORS, xpart USING USAGE u
                        WHERE root.pno = u.assembly AND u.component = xpart.pno),
           usage AS (RELATE xpart VIA USES, xpart USING USAGE u
                     WHERE uses.pno = u.assembly AND u.component = xpart.pno)
    TAKE *
  )sql",
                                       Database::ExplainOptions{true});
  EXPECT_FALSE(out.ok());
}

TEST(MetricsJsonTest, OneSnapshotCoversAllSubsystems) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<QueryResult> r = db.Query(testing_util::kDepsArcQuery);
  ASSERT_TRUE(r.ok());
  std::string json = db.MetricsJson();
  for (const char* name :
       {"\"server.calls\"", "\"exec.rows_scanned\"", "\"exec.rows_output\"",
        "\"phase.parse.us\"", "\"phase.semantics.us\"",
        "\"phase.nf_rewrite.us\"", "\"phase.plan.us\"",
        "\"phase.execute.us\"", "\"phase.deliver.us\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name << "\n" << json;
  }
}

TEST(MetricsJsonTest, ServerCallsCounterTracksCalls) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  int64_t before =
      db.metrics().Snapshot().counters.count("server.calls") != 0
          ? db.metrics().Snapshot().counters.at("server.calls")
          : 0;
  db.ResetServerCalls();
  ASSERT_TRUE(db.Query("SELECT ENO FROM EMP").ok());
  EXPECT_EQ(db.server_calls(), 1);
  EXPECT_EQ(db.metrics().Snapshot().counters.at("server.calls"), before + 1);
}

TEST(TraceTest, QueryLifecycleProducesNestedSpans) {
  Database db;
  db.tracer().set_enabled(true);
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  db.tracer().Clear();
  ASSERT_TRUE(db.Query(testing_util::kDepsArcQuery).ok());
  std::vector<obs::SpanRecord> spans = db.tracer().Spans();
  std::set<std::string> names;
  for (const obs::SpanRecord& s : spans) names.insert(s.name);
  for (const char* expected :
       {"query", "parse", "semantics", "xnf_rewrite", "nf_rewrite",
        "plan XDEPT", "execute XDEPT", "execute EMPLOYMENT", "deliver"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
  // Everything nests under the one "query" root span.
  int64_t query_id = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "query") query_id = s.id;
  }
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "parse" || s.name == "semantics" || s.name == "deliver") {
      EXPECT_EQ(s.parent_id, query_id) << s.name;
    }
  }
  EXPECT_NE(db.tracer().ChromeTraceJson().find("\"name\":\"query\""),
            std::string::npos);
}

}  // namespace
}  // namespace xnfdb
