// Plan-quality observability: rewrite-rule traces, cardinality feedback and
// plan-change detection (SYS$REWRITES / SYS$PLAN_FEEDBACK /
// SYS$PLAN_HISTORY), plus the q-error edge cases and the store's bounds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/log.h"
#include "obs/plan_feedback.h"
#include "tests/paper_db.h"
#include "xnf/compiler.h"

namespace xnfdb {
namespace {

std::vector<Tuple> MustRows(Database* db, const std::string& sql) {
  Result<QueryResult> r = db->Query(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  if (!r.ok()) return {};
  return r.value().rows();
}

int64_t CounterOr0(Database* db, const std::string& name) {
  obs::MetricsSnapshot snap = db->metrics().Snapshot();
  auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(QErrorTest, EdgesAreFiniteAndSymmetric) {
  // Both sides clamp to >= 1 row, so the zero edges stay finite.
  EXPECT_DOUBLE_EQ(obs::QError(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::QError(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(obs::QError(5.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(obs::QError(10.0, 1000.0), 100.0);
  EXPECT_DOUBLE_EQ(obs::QError(1000.0, 10.0), 100.0);
  EXPECT_DOUBLE_EQ(obs::QError(42.0, 42.0), 1.0);
}

TEST(RewriteTraceTest, CompileTraceIsDeterministic) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<CompiledQuery> a =
      CompileQueryString(db.catalog(), testing_util::kDepsArcQuery);
  Result<CompiledQuery> b =
      CompileQueryString(db.catalog(), testing_util::kDepsArcQuery);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const obs::RewriteTrace& ta = a.value().rewrite_stats.trace;
  const obs::RewriteTrace& tb = b.value().rewrite_stats.trace;
  ASSERT_FALSE(ta.events.empty());
  ASSERT_EQ(ta.events.size(), tb.events.size());
  for (size_t i = 0; i < ta.events.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(ta.events[i].rule, tb.events[i].rule);
    EXPECT_EQ(ta.events[i].pass, tb.events[i].pass);
    EXPECT_EQ(ta.events[i].fired, tb.events[i].fired);
    EXPECT_EQ(ta.events[i].rejected, tb.events[i].rejected);
    EXPECT_EQ(ta.events[i].boxes_before, tb.events[i].boxes_before);
    EXPECT_EQ(ta.events[i].boxes_after, tb.events[i].boxes_after);
  }
  // The XNF semantic rewrite phase leads the log as a pass-0 pseudo-rule.
  EXPECT_EQ(ta.events[0].rule, "XnfSemanticRewrite");
  EXPECT_EQ(ta.events[0].pass, 0);
  EXPECT_TRUE(ta.events[0].fired);
}

TEST(RewriteTraceTest, ExplainRewritePrintsOrderedRuleLog) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Database::ExplainOptions xopts;
  xopts.rewrite = true;
  Result<std::string> out =
      db.Explain(testing_util::kDepsArcQuery, xopts);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const std::string& text = out.value();
  EXPECT_NE(text.find("rewrite log ("), std::string::npos) << text;
  EXPECT_NE(text.find("XnfSemanticRewrite"), std::string::npos) << text;
  // The log precedes the plan body, and the body is still the plain
  // EXPLAIN rendering.
  EXPECT_LT(text.find("rewrite log ("), text.find("operations: "));
  EXPECT_NE(text.find("output XDEPT:"), std::string::npos) << text;
  // Events are numbered in firing order.
  EXPECT_NE(text.find("#1"), std::string::npos) << text;
}

TEST(RewriteTraceTest, RuleMetricsPublishedToRegistry) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Query(testing_util::kDepsArcQuery).ok());
  obs::MetricsSnapshot snap = db.metrics().Snapshot();
  EXPECT_GT(snap.counters.at("rewrite.rule.XnfSemanticRewrite.fired"), 0);
  bool saw_engine_rule = false;
  for (const auto& [name, v] : snap.counters) {
    if (name.rfind("rewrite.rule.", 0) == 0 &&
        name.find("XnfSemanticRewrite") == std::string::npos && v > 0) {
      saw_engine_rule = true;
    }
  }
  EXPECT_TRUE(saw_engine_rule);
}

TEST(PlanFeedbackTest, PlanHashStableAcrossExecutionKnobs) {
  Database db;
  // This test is about the join-tree plan shape of repeated real
  // executions; keep the matview store from flipping the third run to a
  // matview_scan plan (that flip has its own coverage in matview_test).
  db.matviews().set_enabled(false);
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  const char* q = "SELECT ENAME FROM EMP WHERE SAL > 75000.0";
  ExecOptions base;
  Result<QueryResult> a = db.Query(q, {}, base);
  ASSERT_TRUE(a.ok());
  ASSERT_NE(a.value().plan_hash, 0u);
  ExecOptions small_batches;
  small_batches.batch_size = 1;
  Result<QueryResult> b = db.Query(q, {}, small_batches);
  ASSERT_TRUE(b.ok());
  ExecOptions morsels;
  morsels.morsel_workers = 4;
  morsels.morsel_rows = 2;
  Result<QueryResult> c = db.Query(q, {}, morsels);
  ASSERT_TRUE(c.ok());
  // The plan-shape hash keys plan-change detection: execution knobs that
  // do not change the operator tree must not flip it.
  EXPECT_EQ(a.value().plan_hash, b.value().plan_hash);
  EXPECT_EQ(a.value().plan_hash, c.value().plan_hash);
  EXPECT_EQ(a.value().plan_shape, c.value().plan_shape);
}

TEST(PlanFeedbackTest, IndexCreationFlipsPlanAndWarns) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER, B INTEGER)").ok());
  std::string script;
  for (int i = 0; i < 32; ++i) {
    script += "INSERT INTO T VALUES (" + std::to_string(i) + ", 0);";
  }
  ASSERT_TRUE(db.ExecuteScript(script).ok());
  const char* q = "SELECT B FROM T WHERE A = 7";
  ASSERT_TRUE(db.Query(q).ok());
  const int64_t changes_before = CounterOr0(&db, "plan.changes");
  std::vector<std::string> lines;
  Logger::Default().SetSink([&](const std::string& l) { lines.push_back(l); });
  ASSERT_TRUE(db.Execute("CREATE INDEX ON T (A)").ok());
  Result<QueryResult> after = db.Query(q);
  Logger::Default().SetSink(nullptr);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after.value().plan_shape.find("index_scan:T.A"),
            std::string::npos)
      << after.value().plan_shape;
  EXPECT_EQ(CounterOr0(&db, "plan.changes"), changes_before + 1);
  bool warned = false;
  for (const std::string& l : lines) {
    if (l.find("planchange") != std::string::npos &&
        l.find("statement plan changed") != std::string::npos) {
      warned = true;
      EXPECT_NE(l.find("from_plan"), std::string::npos) << l;
      EXPECT_NE(l.find("to_plan"), std::string::npos) << l;
    }
  }
  EXPECT_TRUE(warned);
  // The history keeps both plans, with the index plan marked current.
  std::vector<Tuple> rows = MustRows(
      &db, "SELECT PLAN_SHAPE, CURRENT FROM SYS$PLAN_HISTORY");
  int for_t = 0, current_index_plan = 0;
  for (const Tuple& row : rows) {
    const std::string& shape = row[0].AsString();
    if (shape.find("scan:T") == std::string::npos) continue;
    ++for_t;
    if (shape.find("index_scan:T.A") != std::string::npos &&
        row[1].AsInt() == 1) {
      ++current_index_plan;
    }
  }
  EXPECT_GE(for_t, 2);
  EXPECT_EQ(current_index_plan, 1);
}

TEST(PlanFeedbackTest, AllThreeViewsQueryableThroughSql) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Query("SELECT ENAME FROM EMP WHERE SAL > 75000.0").ok());
  ASSERT_TRUE(db.Query(testing_util::kDepsArcQuery).ok());
  std::vector<Tuple> rewrites = MustRows(
      &db, "SELECT DIGEST, SEQ, RULE, FIRED FROM SYS$REWRITES");
  EXPECT_FALSE(rewrites.empty());
  std::vector<Tuple> feedback = MustRows(
      &db,
      "SELECT DIGEST, RANK, OP, EST_ROWS, ACTUAL_ROWS, Q_ERROR "
      "FROM SYS$PLAN_FEEDBACK");
  ASSERT_FALSE(feedback.empty());
  for (const Tuple& row : feedback) {
    EXPECT_GE(row[1].AsInt(), 1);          // RANK
    EXPECT_GE(row[5].AsDouble(), 1.0);     // Q_ERROR is always >= 1
  }
  std::vector<Tuple> plans = MustRows(
      &db,
      "SELECT DIGEST, PLAN_HASH, PLAN_SHAPE, EXECUTIONS, CURRENT "
      "FROM SYS$PLAN_HISTORY");
  ASSERT_FALSE(plans.empty());
  for (const Tuple& row : plans) {
    EXPECT_GE(row[3].AsInt(), 1);
  }
  // Worst offenders are ranked: within a digest, rank 1 has the highest
  // q-error.
  std::vector<Tuple> ranked = MustRows(
      &db, "SELECT DIGEST, RANK, Q_ERROR FROM SYS$PLAN_FEEDBACK");
  for (const Tuple& a : ranked) {
    for (const Tuple& b : ranked) {
      if (a[0].AsString() == b[0].AsString() &&
          a[1].AsInt() < b[1].AsInt()) {
        EXPECT_GE(a[2].AsDouble(), b[2].AsDouble());
      }
    }
  }
}

TEST(PlanFeedbackTest, StoreIsBoundedAndEvictsOldestPlan) {
  obs::PlanFeedbackStore store(/*capacity=*/2, /*max_ops=*/2,
                               /*max_plans=*/2);
  obs::RewriteTrace trace;
  store.RecordCompile(1, "q1", trace);
  store.RecordCompile(2, "q2", trace);
  store.RecordCompile(3, "q3", trace);  // over capacity: dropped
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dropped(), 1);
  // Three distinct plans for digest 1: the oldest-seen one is evicted.
  store.RecordExecution(1, "q1", 11, "shape-a", 100, {});
  store.RecordExecution(1, "q1", 22, "shape-b", 100, {});
  store.RecordExecution(1, "q1", 33, "shape-c", 100, {});
  std::vector<obs::PlanFeedbackSnapshot> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  const obs::PlanFeedbackSnapshot& s1 = snap[0];
  EXPECT_EQ(s1.digest, 1u);
  ASSERT_EQ(s1.plans.size(), 2u);
  for (const obs::PlanRecord& p : s1.plans) {
    EXPECT_NE(p.plan_hash, 11u);  // the first plan was evicted
  }
  EXPECT_EQ(s1.current_plan, 33u);
  EXPECT_EQ(s1.executions, 3);
  EXPECT_EQ(s1.plan_changes, 2);
  // Worst-offender list is truncated to max_ops, sorted by q-error.
  std::vector<obs::OpFeedback> fb(3);
  fb[0] = {"OUT", "scan", 10.0, 1000, 1, obs::QError(10.0, 1000.0)};
  fb[1] = {"OUT", "filter", 10.0, 20, 1, obs::QError(10.0, 20.0)};
  fb[2] = {"OUT", "hash_join", 10.0, 5000, 1, obs::QError(10.0, 5000.0)};
  store.RecordExecution(2, "q2", 44, "shape-d", 100, std::move(fb));
  snap = store.Snapshot();
  const obs::PlanFeedbackSnapshot& s2 = snap[1];
  ASSERT_EQ(s2.worst.size(), 2u);
  EXPECT_EQ(s2.worst[0].op, "hash_join");
  EXPECT_EQ(s2.worst[1].op, "scan");
  obs::OpFeedback top = store.TopMisestimate(2);
  EXPECT_EQ(top.op, "hash_join");
  EXPECT_TRUE(store.TopMisestimate(999).op.empty());
  store.Reset();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.dropped(), 0);
}

TEST(PlanFeedbackTest, EnvKnobDisablesCapture) {
  ::setenv("XNFDB_PLAN_FEEDBACK", "0", 1);
  Database db;
  ::unsetenv("XNFDB_PLAN_FEEDBACK");
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Query("SELECT ENO FROM EMP").ok());
  EXPECT_EQ(db.plan_feedback().size(), 0u);
  // The views stay registered and queryable — just empty.
  EXPECT_TRUE(MustRows(&db, "SELECT * FROM SYS$PLAN_HISTORY").empty());
}

TEST(PlanFeedbackTest, SlowlogCarriesTopMisestimate) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  // Prime the store so the digest has feedback, then arm the slow-query
  // log at zero and re-run: the line must name the worst-estimated
  // operator.
  const char* q = "SELECT ENAME FROM EMP WHERE SAL > 75000.0";
  ASSERT_TRUE(db.Query(q).ok());
  db.SetSlowQueryThreshold(0);
  std::vector<std::string> lines;
  Logger::Default().SetSink([&](const std::string& l) { lines.push_back(l); });
  Result<QueryResult> r = db.Query(q);
  Logger::Default().SetSink(nullptr);
  db.SetSlowQueryThreshold(-1);
  ASSERT_TRUE(r.ok());
  bool annotated = false;
  for (const std::string& l : lines) {
    if (l.find("slowlog") != std::string::npos &&
        l.find("top_misestimate") != std::string::npos) {
      annotated = true;
    }
  }
  EXPECT_TRUE(annotated);
}

TEST(PlanFeedbackTest, AnalyzeFooterReportsWorstEstimate) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<std::string> out = db.Explain("SELECT ENAME FROM EMP WHERE SAL > "
                                       "75000.0",
                                       Database::ExplainOptions{true});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out.value().find("feedback: worst estimate"), std::string::npos)
      << out.value();
  EXPECT_NE(out.value().find("q-error="), std::string::npos) << out.value();
}

}  // namespace
}  // namespace xnfdb
