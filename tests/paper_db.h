// Shared test fixture data: the deps_ARC example database of Fig. 1.
//
// Instance level (matching the paper's instance graphs): two ARC
// departments d1, d2 plus one non-ARC department d3; employees e1..e4 where
// e2 and e3 are shared between departments' projects conceptually; projects
// p1..p3; skills s1..s5 where s2 is connected to nothing (and must therefore
// not be part of any CO), s3 is shared between an employee and a project.

#ifndef XNFDB_TESTS_PAPER_DB_H_
#define XNFDB_TESTS_PAPER_DB_H_

#include <string>

#include "api/database.h"

namespace xnfdb {
namespace testing_util {

inline const char* kPaperSchema = R"sql(
CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR, LOC VARCHAR,
                   PRIMARY KEY (DNO));
CREATE TABLE EMP (ENO INTEGER, ENAME VARCHAR, EDNO INTEGER, SAL DOUBLE,
                  PRIMARY KEY (ENO),
                  FOREIGN KEY (EDNO) REFERENCES DEPT (DNO));
CREATE TABLE PROJ (PNO INTEGER, PNAME VARCHAR, PDNO INTEGER,
                   PRIMARY KEY (PNO),
                   FOREIGN KEY (PDNO) REFERENCES DEPT (DNO));
CREATE TABLE SKILLS (SNO INTEGER, SNAME VARCHAR, PRIMARY KEY (SNO));
CREATE TABLE EMPSKILLS (ESENO INTEGER, ESSNO INTEGER,
                        FOREIGN KEY (ESENO) REFERENCES EMP (ENO),
                        FOREIGN KEY (ESSNO) REFERENCES SKILLS (SNO));
CREATE TABLE PROJSKILLS (PSPNO INTEGER, PSSNO INTEGER,
                         FOREIGN KEY (PSPNO) REFERENCES PROJ (PNO),
                         FOREIGN KEY (PSSNO) REFERENCES SKILLS (SNO));
)sql";

inline const char* kPaperData = R"sql(
INSERT INTO DEPT VALUES (1, 'DB', 'ARC'), (2, 'OS', 'ARC'),
                        (3, 'HW', 'YKT');
INSERT INTO EMP VALUES (10, 'e1', 1, 90000.0), (20, 'e2', 1, 80000.0),
                       (30, 'e3', 2, 85000.0), (40, 'e4', 3, 70000.0);
INSERT INTO PROJ VALUES (100, 'p1', 1), (200, 'p2', 2), (300, 'p3', 3);
INSERT INTO SKILLS VALUES (1000, 's1'), (2000, 's2'), (3000, 's3'),
                          (4000, 's4'), (5000, 's5');
INSERT INTO EMPSKILLS VALUES (10, 1000), (20, 3000), (30, 4000);
INSERT INTO PROJSKILLS VALUES (100, 3000), (200, 5000), (300, 2000);
)sql";

// The XNF query of Fig. 1.
inline const char* kDepsArcQuery = R"sql(
OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
       xemp AS EMP,
       xproj AS PROJ,
       xskills AS SKILLS,
       employment AS (RELATE xdept VIA EMPLOYS, xemp
                      WHERE xdept.dno = xemp.edno),
       ownership AS (RELATE xdept VIA HAS, xproj
                     WHERE xdept.dno = xproj.pdno),
       empproperty AS (RELATE xemp VIA POSSESSES, xskills
                       USING EMPSKILLS es
                       WHERE xemp.eno = es.eseno AND es.essno = xskills.sno),
       projproperty AS (RELATE xproj VIA NEEDS, xskills
                        USING PROJSKILLS ps
                        WHERE xproj.pno = ps.pspno AND ps.pssno = xskills.sno)
TAKE *
)sql";

// Populates `db` with the Fig. 1 schema and instance.
inline Status LoadPaperDb(Database* db) {
  Result<size_t> r1 = db->ExecuteScript(kPaperSchema);
  if (!r1.ok()) return r1.status();
  Result<size_t> r2 = db->ExecuteScript(kPaperData);
  if (!r2.ok()) return r2.status();
  return Status::Ok();
}

}  // namespace testing_util
}  // namespace xnfdb

#endif  // XNFDB_TESTS_PAPER_DB_H_
