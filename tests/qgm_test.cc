// Unit tests for the Query Graph Model: construction, validation,
// expression utilities, type inference, and the semantic builder's QGM
// shapes (including the XNF box of Fig. 4).

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "qgm/qgm.h"
#include "semantics/builder.h"
#include "storage/catalog.h"

namespace xnfdb {
namespace {

using qgm::AddQuant;
using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::QuantKind;
using qgm::QueryGraph;

Catalog MakeCatalog() {
  Catalog c;
  c.CreateTable("DEPT", Schema({{"DNO", DataType::kInt},
                                {"LOC", DataType::kString}}))
      .value();
  c.CreateTable("EMP", Schema({{"ENO", DataType::kInt},
                               {"EDNO", DataType::kInt},
                               {"SAL", DataType::kDouble}}))
      .value();
  return c;
}

TEST(QgmTest, ExprBuildersAndPrinting) {
  QueryGraph g;
  Box* base = g.NewBox(BoxKind::kBaseTable, "EMP");
  base->table_name = "EMP";
  base->base_schema =
      Schema({{"ENO", DataType::kInt}, {"SAL", DataType::kDouble}});
  Box* sel = g.NewBox(BoxKind::kSelect, "q");
  int q = AddQuant(&g, sel, QuantKind::kForeach, base->id, "E");
  qgm::ExprPtr pred = Expr::MakeBinary(
      ">", Expr::MakeColRef(q, 1), Expr::MakeLiteral(Value(100.0)));
  EXPECT_EQ(pred->ToString(&g), "(E.SAL > 100)");

  std::vector<int> used;
  pred->CollectQuants(&used);
  EXPECT_EQ(used, (std::vector<int>{q}));
  EXPECT_TRUE(RefersToQuant(*pred, q));
  EXPECT_FALSE(RefersToQuant(*pred, q + 1));

  qgm::ExprPtr clone = pred->Clone();
  EXPECT_EQ(clone->ToString(&g), pred->ToString(&g));
}

TEST(QgmTest, SplitConjunctsFlattensAndChains) {
  qgm::ExprPtr e = Expr::MakeBinary(
      "AND",
      Expr::MakeBinary("AND", Expr::MakeLiteral(Value(true)),
                       Expr::MakeLiteral(Value(false))),
      Expr::MakeLiteral(Value(true)));
  std::vector<qgm::ExprPtr> conjuncts;
  qgm::SplitConjuncts(std::move(e), &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
}

TEST(QgmTest, RemapQuantTranslatesColumns) {
  QueryGraph g;
  Box* base = g.NewBox(BoxKind::kBaseTable, "EMP");
  base->base_schema =
      Schema({{"A", DataType::kInt}, {"B", DataType::kInt}});
  Box* s1 = g.NewBox(BoxKind::kSelect, "s1");
  int q1 = AddQuant(&g, s1, QuantKind::kForeach, base->id, "x");
  Box* s2 = g.NewBox(BoxKind::kSelect, "s2");
  int q2 = AddQuant(&g, s2, QuantKind::kForeach, base->id, "y");

  qgm::ExprPtr e = Expr::MakeBinary("=", Expr::MakeColRef(q1, 1),
                                    Expr::MakeLiteral(Value(int64_t{1})));
  // Map column 1 of q1 onto column 0 of q2.
  ASSERT_TRUE(RemapQuant(e.get(), q1, q2, {/*0->*/ -1, /*1->*/ 0}).ok());
  EXPECT_EQ(e->lhs->quant_id, q2);
  EXPECT_EQ(e->lhs->column, 0);
  // Unmapped column errors.
  qgm::ExprPtr bad = Expr::MakeColRef(q1, 0);
  EXPECT_FALSE(RemapQuant(bad.get(), q1, q2, {-1, 0}).ok());
}

TEST(QgmTest, ValidateCatchesDanglingReferences) {
  QueryGraph g;
  Box* base = g.NewBox(BoxKind::kBaseTable, "EMP");
  base->base_schema = Schema({{"A", DataType::kInt}});
  Box* sel = g.NewBox(BoxKind::kSelect, "s");
  int q = AddQuant(&g, sel, QuantKind::kForeach, base->id, "x");
  sel->preds.push_back(Expr::MakeColRef(q, 0));
  EXPECT_TRUE(g.Validate().ok());

  // Column out of range.
  sel->preds.push_back(Expr::MakeColRef(q, 7));
  EXPECT_FALSE(g.Validate().ok());
  sel->preds.pop_back();

  // Reference to a quantifier not in the box.
  sel->preds.push_back(Expr::MakeColRef(q + 100, 0));
  EXPECT_FALSE(g.Validate().ok());
  sel->preds.pop_back();

  // Ranging over a dead box.
  g.MarkDead(base->id);
  EXPECT_FALSE(g.Validate().ok());
}

TEST(QgmTest, BuilderProducesSelectBoxWithTop) {
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::SelectStmt>> sel =
      ParseSelectQuery("SELECT ENO FROM EMP WHERE SAL > 100.0");
  ASSERT_TRUE(sel.ok());
  Result<std::unique_ptr<QueryGraph>> g = BuildSelect(c, *sel.value());
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_GE(g.value()->top_box_id(), 0);
  const Box* top = g.value()->box(g.value()->top_box_id());
  ASSERT_EQ(top->outputs.size(), 1u);
  const Box* body = g.value()->box(top->outputs[0].box_id);
  EXPECT_EQ(body->kind, BoxKind::kSelect);
  EXPECT_EQ(body->head.size(), 1u);
  EXPECT_EQ(body->preds.size(), 1u);
}

TEST(QgmTest, BuilderTranslatesExistsIntoGroup) {
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::SelectStmt>> sel = ParseSelectQuery(
      "SELECT * FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE "
      "d.LOC = 'ARC' AND d.DNO = e.EDNO)");
  ASSERT_TRUE(sel.ok());
  Result<std::unique_ptr<QueryGraph>> g = BuildSelect(c, *sel.value());
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const Box* top = g.value()->box(g.value()->top_box_id());
  const Box* body = g.value()->box(top->outputs[0].box_id);
  // The subquery's local predicate (LOC='ARC') stays inside the subquery
  // box; the correlated one becomes the group predicate.
  ASSERT_EQ(body->exists_groups.size(), 1u);
  EXPECT_EQ(body->exists_groups[0].preds.size(), 1u);
  const Box* sub =
      g.value()->RangedBox(body->exists_groups[0].quant_ids[0]);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->preds.size(), 1u);
  // The EXISTS quantifier is existential.
  const qgm::Quantifier* eq =
      g.value()->FindQuant(body->exists_groups[0].quant_ids[0]);
  EXPECT_EQ(eq->kind, QuantKind::kExists);
}

TEST(QgmTest, BuilderXnfBoxMirrorsFig4) {
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::XnfQuery>> q = ParseXnfQuery(R"(
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE *
  )");
  ASSERT_TRUE(q.ok());
  Result<std::unique_ptr<QueryGraph>> g = BuildXnf(c, *q.value());
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  const Box* xnf = nullptr;
  for (size_t i = 0; i < g.value()->box_count(); ++i) {
    if (g.value()->box(static_cast<int>(i))->kind == BoxKind::kXnf) {
      xnf = g.value()->box(static_cast<int>(i));
    }
  }
  ASSERT_NE(xnf, nullptr);
  ASSERT_EQ(xnf->components.size(), 3u);
  const qgm::XnfComponent* xdept = xnf->FindComponent("XDEPT");
  const qgm::XnfComponent* xemp = xnf->FindComponent("XEMP");
  const qgm::XnfComponent* employment = xnf->FindComponent("EMPLOYMENT");
  ASSERT_NE(xdept, nullptr);
  ASSERT_NE(xemp, nullptr);
  ASSERT_NE(employment, nullptr);
  EXPECT_TRUE(xdept->is_root);
  EXPECT_FALSE(xdept->reachable);
  EXPECT_FALSE(xemp->is_root);
  EXPECT_TRUE(xemp->reachable);  // the 'R' mark of Fig. 4
  EXPECT_TRUE(employment->is_relationship);
  EXPECT_EQ(employment->parent, "XDEPT");
  EXPECT_EQ(employment->role, "EMPLOYS");
  EXPECT_TRUE(xdept->taken && xemp->taken && employment->taken);

  // The relationship box joins the two component boxes; its head holds
  // parent columns followed by child columns.
  const Box* rb = g.value()->box(employment->box_id);
  EXPECT_EQ(rb->quants.size(), 2u);
  EXPECT_EQ(rb->head.size(), 2u + 3u);  // DEPT(2) + EMP(3)

  // ToString renders the graph without crashing and mentions the XNF box.
  std::string rendering = g.value()->ToString();
  EXPECT_NE(rendering.find("[XNF]"), std::string::npos);
  EXPECT_NE(rendering.find("component 'XEMP'"), std::string::npos);
}

TEST(QgmTest, BuilderXnfSemanticErrors) {
  Catalog c = MakeCatalog();
  auto build = [&](const std::string& text) {
    Result<std::unique_ptr<ast::XnfQuery>> q = ParseXnfQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return BuildXnf(c, *q.value());
  };
  // Duplicate component name.
  EXPECT_FALSE(build("OUT OF a AS EMP, a AS DEPT TAKE *").ok());
  // Unknown partner.
  EXPECT_FALSE(
      build("OUT OF a AS EMP, r AS (RELATE a VIA v, ghost WHERE 1 = 1) "
            "TAKE *")
          .ok());
  // Relationship as partner of a relationship.
  EXPECT_FALSE(
      build("OUT OF a AS EMP, b AS DEPT, "
            "r1 AS (RELATE a VIA v, b WHERE a.edno = b.dno), "
            "r2 AS (RELATE a VIA w, r1 WHERE 1 = 1) TAKE *")
          .ok());
  // TAKE of unknown component.
  EXPECT_FALSE(build("OUT OF a AS EMP TAKE ghost").ok());
  // TAKE of relationship without its partners.
  EXPECT_FALSE(
      build("OUT OF a AS EMP, b AS DEPT, "
            "r AS (RELATE a VIA v, b WHERE a.edno = b.dno) TAKE a, r")
          .ok());
  // Self-relationship without a role.
  EXPECT_FALSE(
      build("OUT OF a AS EMP, r AS (RELATE a, a WHERE 1 = 1) TAKE *").ok());
}

TEST(QgmTest, TypeInference) {
  Catalog c = MakeCatalog();
  Result<std::unique_ptr<ast::SelectStmt>> sel = ParseSelectQuery(
      "SELECT ENO, SAL * 2, ENO + 1, SAL > 0.0, COUNT(*) FROM EMP "
      "GROUP BY ENO, SAL");
  ASSERT_TRUE(sel.ok());
  Result<std::unique_ptr<QueryGraph>> g = BuildSelect(c, *sel.value());
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const Box* top = g.value()->box(g.value()->top_box_id());
  int body = top->outputs[0].box_id;
  EXPECT_EQ(g.value()->HeadType(body, 0).value(), DataType::kInt);
  EXPECT_EQ(g.value()->HeadType(body, 1).value(), DataType::kDouble);
  EXPECT_EQ(g.value()->HeadType(body, 2).value(), DataType::kInt);
  EXPECT_EQ(g.value()->HeadType(body, 3).value(), DataType::kBool);
  EXPECT_EQ(g.value()->HeadType(body, 4).value(), DataType::kInt);
}

}  // namespace
}  // namespace xnfdb
