// Tests of the continuous workload profiler: the metrics time-series
// sampler (obs/sampler.h, SYS$METRICS_HISTORY), the always-on per-query
// profile store (obs/query_profile.h, SYS$QUERY_PROFILES and the
// SYS$STATEMENTS self-time rollup), and the stuck-query watchdog
// (api/watchdog.h) including auto-cancel of a deliberately wedged query.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/database.h"
#include "api/watchdog.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/query_profile.h"
#include "obs/sampler.h"
#include "storage/sysview.h"
#include "tests/paper_db.h"

namespace xnfdb {
namespace {

std::vector<Tuple> MustRows(Database* db, const std::string& sql) {
  Result<QueryResult> r = db->Query(sql);
  EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  if (!r.ok()) return {};
  return r.value().rows();
}

// Polls `pred` until it holds or ~5s elapse.
bool WaitFor(const std::function<bool()>& pred) {
  for (int i = 0; i < 1000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

// --- sampler ---------------------------------------------------------------

TEST(SamplerTest, RingEvictsOldestAtCapacity) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c")->Increment(10);
  obs::MetricsSampler::Options opts;
  opts.interval_ms = 0;  // manual only
  opts.ring_capacity = 3;
  obs::MetricsSampler sampler(&registry, opts);

  for (int i = 0; i < 5; ++i) sampler.SampleNow();
  EXPECT_EQ(sampler.samples_taken(), 5);
  EXPECT_EQ(sampler.ring_size(), 3u);
  EXPECT_EQ(sampler.evictions(), 2);

  // History holds exactly the 3 newest samples: the registry has 3
  // counters ("c" + the sampler's own two), so 9 rows; the oldest retained
  // sample is #3, whose sampler.samples series reads 2 (self-metrics are
  // reported one sample late).
  std::vector<obs::MetricsSampler::Row> rows = sampler.History();
  EXPECT_EQ(rows.size(), 9u);
  int64_t prev = -1;
  int64_t oldest_samples_value = -1;
  for (const obs::MetricsSampler::Row& row : rows) {
    EXPECT_GE(row.sample_ts_us, prev);
    prev = row.sample_ts_us;
    if (oldest_samples_value < 0 && row.name == "sampler.samples") {
      oldest_samples_value = row.value;
    }
  }
  EXPECT_EQ(oldest_samples_value, 2);
}

TEST(SamplerTest, DeltasAndRatesTrackCounterGrowth) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("work.done");
  obs::MetricsSampler::Options opts;
  opts.interval_ms = 0;
  obs::MetricsSampler sampler(&registry, opts);

  c->Increment(7);
  sampler.SampleNow();
  c->Increment(5);
  sampler.SampleNow();

  int64_t first_delta = -1, second_delta = -1;
  for (const obs::MetricsSampler::Row& row : sampler.History()) {
    if (row.name != "work.done") continue;
    EXPECT_EQ(row.kind, "counter");
    if (first_delta < 0) {
      first_delta = row.delta;
      EXPECT_EQ(row.value, 7);
    } else {
      second_delta = row.delta;
      EXPECT_EQ(row.value, 12);
      EXPECT_GE(row.rate_per_s, 0);
    }
  }
  EXPECT_EQ(first_delta, 7);  // first sight reports the full value
  EXPECT_EQ(second_delta, 5);
}

TEST(SamplerTest, HistogramsExpandToCountAndQuantiles) {
  obs::MetricsRegistry registry;
  registry.GetHistogram("lat.us")->Observe(100);
  registry.GetHistogram("lat.us")->Observe(200);
  obs::MetricsSampler::Options opts;
  opts.interval_ms = 0;
  obs::MetricsSampler sampler(&registry, opts);
  sampler.SampleNow();

  std::set<std::string> names;
  for (const obs::MetricsSampler::Row& row : sampler.History()) {
    names.insert(row.name);
  }
  EXPECT_TRUE(names.count("lat.us.count"));
  EXPECT_TRUE(names.count("lat.us.p50"));
  EXPECT_TRUE(names.count("lat.us.p99"));
}

TEST(SamplerTest, BackgroundThreadTakesSamples) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c")->Increment();
  obs::MetricsSampler::Options opts;
  opts.interval_ms = 5;
  obs::MetricsSampler sampler(&registry, opts);

  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sampler.Start();  // idempotent
  EXPECT_TRUE(WaitFor([&] { return sampler.samples_taken() >= 2; }));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  sampler.Stop();  // idempotent
}

TEST(SamplerTest, StartStopRacesAreSafe) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("c");
  obs::MetricsSampler::Options opts;
  opts.interval_ms = 1;
  opts.ring_capacity = 8;
  obs::MetricsSampler sampler(&registry, opts);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&sampler, c] {
      for (int i = 0; i < 25; ++i) {
        sampler.Start();
        c->Increment();
        sampler.SampleNow();
        sampler.Stop();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(sampler.running());
  EXPECT_GE(sampler.samples_taken(), 100);
}

TEST(SamplerTest, MetricsHistoryQueryableThroughSql) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  db.sampler().SampleNow();
  db.sampler().SampleNow();

  std::vector<Tuple> rows = MustRows(
      &db, "SELECT SAMPLE_TS, NAME, KIND, VALUE, DELTA, RATE_PER_S "
           "FROM SYS$METRICS_HISTORY WHERE NAME = 'server.calls'");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][2].AsString(), "counter");
  EXPECT_GE(rows[1][0].AsInt(), rows[0][0].AsInt());

  std::vector<Tuple> count = MustRows(
      &db, "SELECT COUNT(*) FROM SYS$METRICS_HISTORY "
           "WHERE NAME = 'server.calls'");
  ASSERT_EQ(count.size(), 1u);
  EXPECT_EQ(count[0][0].AsInt(), 2);
}

// --- query profiles --------------------------------------------------------

TEST(QueryProfileTest, ClassifyOpBuckets) {
  EXPECT_STREQ(obs::ClassifyOp("scan"), "scan");
  EXPECT_STREQ(obs::ClassifyOp("index_scan"), "scan");
  EXPECT_STREQ(obs::ClassifyOp("virtual_scan"), "scan");
  EXPECT_STREQ(obs::ClassifyOp("hash_join"), "join");
  EXPECT_STREQ(obs::ClassifyOp("nl_join"), "join");
  EXPECT_STREQ(obs::ClassifyOp("filter"), "filter");
  EXPECT_STREQ(obs::ClassifyOp("exists"), "filter");
  EXPECT_STREQ(obs::ClassifyOp("sort"), "other");
  EXPECT_STREQ(obs::ClassifyOp("agg"), "other");
}

TEST(QueryProfileTest, StoreIsBoundedAndCountsDrops) {
  obs::QueryProfileStore store(2);
  obs::QueryProfile p;
  p.wall_us = 10;
  store.Record(1, "one", p);
  store.Record(2, "two", p);
  store.Record(3, "three", p);  // over capacity: dropped
  store.Record(1, "one", p);    // existing digest still accumulates
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.dropped(), 1);

  std::vector<obs::QueryProfileSnapshot> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].digest, 1u);
  EXPECT_EQ(snap[0].captures, 2);
  EXPECT_EQ(snap[0].total_wall_us, 20);

  store.Reset();
  EXPECT_EQ(store.size(), 0u);
}

TEST(QueryProfileTest, ClassSelfTimesAccumulateByBucket) {
  obs::QueryProfileStore store;
  obs::QueryProfile p;
  obs::OpProfile scan;
  scan.op = "scan";
  scan.self_us = 30;
  obs::OpProfile join;
  join.op = "hash_join";
  join.self_us = 20;
  p.ops = {scan, join};
  store.Record(9, "q", p);
  store.Record(9, "q", p);

  obs::QueryProfileStore::ClassTotals totals = store.ClassSelfTimes(9);
  EXPECT_EQ(totals.scan_us, 60);
  EXPECT_EQ(totals.join_us, 40);
  EXPECT_EQ(totals.filter_us, 0);
  // Unknown digests report zeros.
  EXPECT_EQ(store.ClassSelfTimes(12345).scan_us, 0);
}

TEST(QueryProfileTest, ExecutionCapturesProfileForFingerprint) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT * FROM EMP WHERE SAL > 0").ok());

  std::vector<obs::QueryProfileSnapshot> snap = db.query_profiles().Snapshot();
  const obs::QueryProfileSnapshot* entry = nullptr;
  for (const obs::QueryProfileSnapshot& s : snap) {
    if (s.text.find("EMP") != std::string::npos) entry = &s;
  }
  ASSERT_NE(entry, nullptr) << "no profile captured for the EMP query";
  EXPECT_EQ(entry->captures, 1);
  EXPECT_GT(entry->last.rows_out, 0);
  bool saw_scan = false;
  for (const obs::OpProfile& op : entry->last.ops) {
    if (op.op == "scan") {
      saw_scan = true;
      EXPECT_GT(op.rows, 0);
      EXPECT_GT(op.loops, 0);
    }
  }
  EXPECT_TRUE(saw_scan) << "profile has no scan-operator class row";
}

TEST(QueryProfileTest, SysQueryProfilesQueryableThroughSql) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT * FROM EMP").ok());

  std::vector<Tuple> rows = MustRows(
      &db, "SELECT DIGEST, OP, OP_ROWS, ROWS_OUT FROM SYS$QUERY_PROFILES "
           "WHERE OP = 'scan'");
  ASSERT_GE(rows.size(), 1u);
  EXPECT_GT(rows[0][2].AsInt(), 0);
  EXPECT_GT(rows[0][3].AsInt(), 0);
}

TEST(QueryProfileTest, SysStatementsRollsUpSelfTimes) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ASSERT_TRUE(
      db.Execute("SELECT e.ENAME, d.DNAME FROM EMP e, DEPT d "
                 "WHERE e.EDNO = d.DNO")
          .ok());

  // The self-time columns exist and are consistent: each is >= 0 and the
  // EMP/DEPT join statement has a row.
  std::vector<Tuple> rows = MustRows(
      &db, "SELECT TEXT, SCAN_SELF_US, JOIN_SELF_US, FILTER_SELF_US, "
           "OTHER_SELF_US FROM SYS$STATEMENTS");
  bool saw_join_stmt = false;
  for (const Tuple& row : rows) {
    for (int i = 1; i <= 4; ++i) EXPECT_GE(row[i].AsInt(), 0);
    if (row[0].AsString().find("EMP") != std::string::npos &&
        row[0].AsString().find("DEPT") != std::string::npos) {
      saw_join_stmt = true;
    }
  }
  EXPECT_TRUE(saw_join_stmt);
}

TEST(QueryProfileTest, EnvKnobDisablesCapture) {
  ::setenv("XNFDB_QUERY_PROFILES", "0", 1);
  Database db;
  ::unsetenv("XNFDB_QUERY_PROFILES");
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  ASSERT_TRUE(db.Execute("SELECT * FROM EMP").ok());
  EXPECT_EQ(db.query_profiles().size(), 0u);
}

TEST(QueryProfileTest, MorselExecutionRecordsWorkerRows) {
  Database db;
  // A scan-heavy single-stream query qualifies for morsel parallelism
  // (plain scan pipeline, no breaker); small morsels force several claims.
  ASSERT_TRUE(db.Execute("CREATE TABLE T (A INTEGER)").ok());
  std::string script;
  for (int i = 0; i < 64; ++i) {
    script += "INSERT INTO T VALUES (" + std::to_string(i) + ");";
  }
  ASSERT_TRUE(db.ExecuteScript(script).ok());
  ExecOptions eo;
  eo.morsel_workers = 4;
  eo.morsel_rows = 8;
  Result<QueryResult> r = db.Query("SELECT A FROM T WHERE A >= 10", {}, eo);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r.value().profile.workers.empty());
  int64_t rows = 0;
  std::set<int64_t> ids;
  for (const obs::WorkerProfile& w : r.value().profile.workers) {
    EXPECT_TRUE(ids.insert(w.worker).second) << "duplicate worker id";
    rows += w.rows;
    EXPECT_GE(w.wall_us, 0);
  }
  EXPECT_GT(rows, 0);

  // The worker breakdown also surfaces as SYS$QUERY_PROFILES rows.
  std::vector<Tuple> worker_rows = MustRows(
      &db, "SELECT WORKER, OP_ROWS FROM SYS$QUERY_PROFILES "
           "WHERE OP = 'morsel_worker'");
  EXPECT_GE(worker_rows.size(), 1u);
}

// --- watchdog --------------------------------------------------------------

TEST(WatchdogTest, StartIsNoopWhileDisabledAndIdempotentWhenArmed) {
  Database db;
  EXPECT_FALSE(db.watchdog().running());  // stall_ms defaults to 0
  db.watchdog().Start();
  EXPECT_FALSE(db.watchdog().running());

  WatchdogOptions o = db.watchdog().options();
  o.stall_ms = 50;
  o.poll_ms = 5;
  db.watchdog().SetOptions(o);
  db.watchdog().Start();
  EXPECT_TRUE(db.watchdog().running());
  db.watchdog().Start();  // idempotent
  EXPECT_TRUE(db.watchdog().running());
  db.watchdog().Stop();
  EXPECT_FALSE(db.watchdog().running());
  db.watchdog().Stop();  // idempotent
}

TEST(WatchdogTest, DoesNotFlagQueriesThatFinishNormally) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  int64_t stalled_before =
      db.metrics().GetCounter("watchdog.stalled")->value();

  WatchdogOptions o;
  o.stall_ms = 10000;  // far beyond any test query
  o.poll_ms = 1;
  db.watchdog().SetOptions(o);
  db.watchdog().Start();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db.Execute("SELECT * FROM EMP").ok());
  }
  EXPECT_TRUE(WaitFor([&] { return db.watchdog().scans() >= 3; }));
  db.watchdog().Stop();
  EXPECT_EQ(db.metrics().GetCounter("watchdog.stalled")->value(),
            stalled_before);
}

// A virtual table whose Generate() wedges inside one call until `release`
// is set (or a generous timeout passes) — no progress ticks while it
// sleeps, which is exactly the watchdog's definition of "stuck".
class SleepyProvider : public VirtualTableProvider {
 public:
  explicit SleepyProvider(std::atomic<bool>* release)
      : name_("SLEEPY"),
        schema_(Schema(std::vector<Column>{{"K", DataType::kInt}})),
        release_(release) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    for (int i = 0; i < 2000 && !release_->load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return std::vector<Tuple>{{Value(int64_t{1})}, {Value(int64_t{2})}};
  }

 private:
  std::string name_;
  Schema schema_;
  std::atomic<bool>* release_;
};

TEST(WatchdogTest, AutoCancelKillsStalledQuery) {
  Database db;
  std::atomic<bool> release{false};
  ASSERT_TRUE(
      db.catalog()
          .RegisterVirtualTable(std::make_unique<SleepyProvider>(&release))
          .ok());

  std::vector<std::string> log_lines;
  std::mutex log_mu;
  Logger::Default().SetSink([&](const std::string& line) {
    std::lock_guard<std::mutex> lock(log_mu);
    log_lines.push_back(line);
  });

  int64_t cancelled_before =
      db.metrics().GetCounter("watchdog.cancelled")->value();
  WatchdogOptions o;
  o.stall_ms = 30;
  o.poll_ms = 5;
  o.auto_cancel = true;
  db.watchdog().SetOptions(o);
  db.watchdog().Start();

  obs::Counter* cancelled = db.metrics().GetCounter("watchdog.cancelled");
  std::thread releaser([&] {
    // Let the query run until the watchdog cancels it, then unwedge the
    // provider so the cooperative check can fire.
    WaitFor([&] { return cancelled->value() > cancelled_before; });
    release.store(true);
  });

  Result<QueryResult> r = db.Query("SELECT * FROM SLEEPY");
  releaser.join();
  db.watchdog().Stop();
  Logger::Default().SetSink(nullptr);

  ASSERT_FALSE(r.ok()) << "stalled query was not cancelled";
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
      << r.status().ToString();
  EXPECT_GT(cancelled->value(), cancelled_before);
  EXPECT_GT(db.metrics().GetCounter("watchdog.stalled")->value(), 0);

  bool saw_log = false;
  {
    std::lock_guard<std::mutex> lock(log_mu);
    for (const std::string& line : log_lines) {
      if (line.find("watchdog") != std::string::npos &&
          line.find("stalled query") != std::string::npos) {
        saw_log = true;
      }
    }
  }
  EXPECT_TRUE(saw_log) << "no structured watchdog log line emitted";
}

TEST(WatchdogTest, ScanOnceReportsWithoutCancelWhenAutoCancelOff) {
  Database db;
  std::atomic<bool> release{false};
  ASSERT_TRUE(
      db.catalog()
          .RegisterVirtualTable(std::make_unique<SleepyProvider>(&release))
          .ok());

  int64_t stalled_before =
      db.metrics().GetCounter("watchdog.stalled")->value();
  WatchdogOptions o;
  o.stall_ms = 20;
  o.poll_ms = 1000000;  // background thread effectively dormant
  o.auto_cancel = false;
  db.watchdog().SetOptions(o);

  obs::Counter* stalled = db.metrics().GetCounter("watchdog.stalled");
  std::thread runner([&] {
    // Report-only: the query must finish normally once released.
    Result<QueryResult> r = db.Query("SELECT K FROM SLEEPY");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });

  // First scan baselines the fingerprint; later scans see it unchanged.
  EXPECT_TRUE(WaitFor([&] {
    db.watchdog().ScanOnce();
    return stalled->value() > stalled_before;
  }));
  // Reported once: further scans of the same stall do not re-report.
  int64_t after_first = stalled->value();
  db.watchdog().ScanOnce();
  db.watchdog().ScanOnce();
  EXPECT_EQ(stalled->value(), after_first);

  release.store(true);
  runner.join();
}

}  // namespace
}  // namespace xnfdb
