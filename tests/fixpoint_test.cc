// Tests of the fixpoint evaluator: recursive COs (cyclic schema graphs,
// paper Sect. 2) and differential equivalence with the rewrite path on
// acyclic queries.

#include <gtest/gtest.h>

#include <set>

#include "api/database.h"
#include "parser/parser.h"
#include "semantics/builder.h"
#include "tests/paper_db.h"
#include "xnf/compiler.h"
#include "xnf/fixpoint.h"

namespace xnfdb {
namespace {

// A bill-of-materials database: part 1 is the root assembly; parts form a
// DAG with a diamond (2 and 3 both use 4) plus unreachable parts 8, 9.
void LoadBom(Database* db) {
  Result<size_t> r = db->ExecuteScript(R"sql(
    CREATE TABLE PART (PNO INTEGER, PNAME VARCHAR, PRIMARY KEY (PNO));
    CREATE TABLE USAGE (ASSEMBLY INTEGER, COMPONENT INTEGER, QTY INTEGER);
    INSERT INTO PART VALUES (1, 'root'), (2, 'frame'), (3, 'motor'),
                            (4, 'bolt'), (5, 'nut'), (8, 'orphan'),
                            (9, 'orphan2');
    INSERT INTO USAGE VALUES (1, 2, 1), (1, 3, 2), (2, 4, 8), (3, 4, 4),
                             (4, 5, 1), (8, 9, 1);
  )sql");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

// Recursive CO: the root part plus everything reachable through USAGE.
const char* kBomQuery = R"sql(
  OUT OF root AS (SELECT * FROM PART WHERE PNO = 1),
         xpart AS PART,
         toplevel AS (RELATE root VIA ANCHORS, xpart
                      USING USAGE u
                      WHERE root.pno = u.assembly AND u.component = xpart.pno),
         usage AS (RELATE xpart VIA USES, xpart
                   USING USAGE u
                   WHERE uses.pno = u.assembly AND u.component = xpart.pno)
  TAKE *
)sql";

TEST(FixpointTest, RecursiveBillOfMaterialsReachesTransitiveClosure) {
  Database db;
  LoadBom(&db);
  Result<QueryResult> r = db.Query(kBomQuery);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const QueryResult& result = r.value();

  int xpart = result.FindOutput("XPART");
  ASSERT_GE(xpart, 0);
  std::set<int64_t> parts;
  for (const Tuple& row : result.RowsOf(xpart)) {
    parts.insert(row[0].AsInt());
  }
  // Everything reachable from part 1; 1 itself enters through nothing
  // (xpart is not root — only 2..5 are reachable), and 8/9 are isolated
  // from the anchor.
  EXPECT_EQ(parts, (std::set<int64_t>{2, 3, 4, 5}));

  // The recursive relationship only contains connections between reachable
  // parts: (2,4), (3,4), (4,5) — not (8,9).
  int usage = result.FindOutput("USAGE");
  ASSERT_GE(usage, 0);
  EXPECT_EQ(result.ConnectionCount(usage), 3u);
}

TEST(FixpointTest, CompilerFlagsRecursionForFixpoint) {
  Database db;
  LoadBom(&db);
  Result<std::unique_ptr<ast::XnfQuery>> q = ParseXnfQuery(kBomQuery);
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> compiled = CompileXnf(db.catalog(), *q.value());
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(compiled.value().needs_fixpoint);
}

TEST(FixpointTest, SelfCycleTerminatesOnCyclicData) {
  // Cyclic *data* (a uses b uses a) must still terminate: least fixpoint.
  Database db;
  Result<size_t> r = db.ExecuteScript(R"sql(
    CREATE TABLE PART (PNO INTEGER, PNAME VARCHAR);
    CREATE TABLE USAGE (ASSEMBLY INTEGER, COMPONENT INTEGER);
    INSERT INTO PART VALUES (1, 'root'), (2, 'a'), (3, 'b');
    INSERT INTO USAGE VALUES (1, 2), (2, 3), (3, 2);
  )sql");
  ASSERT_TRUE(r.ok());
  Result<QueryResult> result = db.Query(kBomQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::set<int64_t> parts;
  int xpart = result.value().FindOutput("XPART");
  for (const Tuple& row : result.value().RowsOf(xpart)) {
    parts.insert(row[0].AsInt());
  }
  EXPECT_EQ(parts, (std::set<int64_t>{2, 3}));
  // Both cycle edges qualify.
  EXPECT_EQ(result.value().ConnectionCount(result.value().FindOutput("USAGE")),
            2u);
}

// --- differential: fixpoint vs rewrite on the acyclic paper query ---------

// Canonical form of a result for comparison: per output, the sorted set of
// row renderings; per relationship, the sorted set of partner value lists.
std::set<std::string> Canonical(const QueryResult& result) {
  std::set<std::string> out;
  // Map (output, tid) -> rendering for connection resolution.
  std::map<std::pair<int, TupleId>, std::string> rows;
  std::map<std::string, int> by_name;
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    by_name[result.outputs[i].name] = static_cast<int>(i);
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind == StreamItem::Kind::kRow) {
      rows[{item.output, item.tid}] = TupleToString(item.values);
      out.insert(result.outputs[item.output].name + ":" +
                 TupleToString(item.values));
    }
  }
  for (const StreamItem& item : result.stream) {
    if (item.kind != StreamItem::Kind::kConnection) continue;
    const OutputDesc& desc = result.outputs[item.output];
    std::string s = desc.name + ":";
    for (size_t pi = 0; pi < item.tids.size(); ++pi) {
      int partner_output = by_name[desc.partner_names[pi]];
      s += rows[{partner_output, item.tids[pi]}];
    }
    out.insert(std::move(s));
  }
  return out;
}

TEST(FixpointTest, MatchesRewritePathOnAcyclicQuery) {
  Database db;
  ASSERT_TRUE(testing_util::LoadPaperDb(&db).ok());
  Result<std::unique_ptr<ast::XnfQuery>> q =
      ParseXnfQuery(testing_util::kDepsArcQuery);
  ASSERT_TRUE(q.ok());

  // Rewrite path.
  Result<QueryResult> rewritten = db.QueryXnf(*q.value());
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();

  // Fixpoint path over the pre-rewrite XNF graph.
  Result<std::unique_ptr<qgm::QueryGraph>> graph =
      BuildXnf(db.catalog(), *q.value());
  ASSERT_TRUE(graph.ok());
  Result<QueryResult> fixpoint =
      ExecuteXnfFixpoint(db.catalog(), *graph.value());
  ASSERT_TRUE(fixpoint.ok()) << fixpoint.status().ToString();

  EXPECT_EQ(Canonical(rewritten.value()), Canonical(fixpoint.value()));
}

}  // namespace
}  // namespace xnfdb
