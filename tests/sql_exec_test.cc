// SQL behaviour tests: the relational substrate must be dependable before
// XNF sits on top of it. Covers filters, joins, join methods, index access
// paths, DISTINCT, ORDER BY, GROUP BY/aggregates, EXISTS/IN, LIKE, NULL
// semantics, views, and DML.

#include <gtest/gtest.h>

#include <set>

#include "api/database.h"

namespace xnfdb {
namespace {

class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<size_t> r = db_.ExecuteScript(R"sql(
      CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR, LOC VARCHAR,
                         PRIMARY KEY (DNO));
      CREATE TABLE EMP (ENO INTEGER, ENAME VARCHAR, EDNO INTEGER,
                        SAL DOUBLE, PRIMARY KEY (ENO));
      INSERT INTO DEPT VALUES (1, 'DB', 'ARC'), (2, 'OS', 'ARC'),
                              (3, 'HW', 'YKT');
      INSERT INTO EMP VALUES (10, 'alice', 1, 90000.0),
                             (20, 'bob', 1, 80000.0),
                             (30, 'carol', 2, 85000.0),
                             (40, 'dave', 3, 70000.0),
                             (50, 'erin', NULL, 60000.0);
    )sql");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  std::vector<Tuple> Rows(const std::string& sql) {
    Result<QueryResult> r = db_.Query(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    if (!r.ok()) return {};
    return r.value().rows();
  }

  Database db_;
};

TEST_F(SqlTest, FilterAndProjection) {
  std::vector<Tuple> rows =
      Rows("SELECT ENAME, SAL / 1000 FROM EMP WHERE SAL > 80000.0");
  ASSERT_EQ(rows.size(), 2u);
  std::set<std::string> names;
  for (const Tuple& r : rows) names.insert(r[0].AsString());
  EXPECT_EQ(names, (std::set<std::string>{"alice", "carol"}));
}

TEST_F(SqlTest, JoinProducesAllMatches) {
  std::vector<Tuple> rows = Rows(
      "SELECT e.ENAME, d.DNAME FROM EMP e, DEPT d WHERE e.EDNO = d.DNO");
  EXPECT_EQ(rows.size(), 4u);  // erin has NULL dept: no match
}

TEST_F(SqlTest, NullNeverJoins) {
  std::vector<Tuple> rows =
      Rows("SELECT ENAME FROM EMP WHERE EDNO = EDNO");
  // NULL = NULL is unknown, filtered.
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(SqlTest, ThreeWayJoin) {
  ASSERT_TRUE(db_.ExecuteScript(
                     "CREATE TABLE PROJ (PNO INTEGER, PDNO INTEGER);"
                     "INSERT INTO PROJ VALUES (100, 1), (200, 2), (300, 9)")
                  .ok());
  std::vector<Tuple> rows = Rows(
      "SELECT e.ENAME, p.PNO FROM EMP e, DEPT d, PROJ p "
      "WHERE e.EDNO = d.DNO AND p.PDNO = d.DNO");
  // dept1: {alice,bob} x {100}; dept2: {carol} x {200}.
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlTest, CrossJoinWithoutPredicate) {
  std::vector<Tuple> rows = Rows("SELECT 1 FROM DEPT d1, DEPT d2");
  EXPECT_EQ(rows.size(), 9u);
}

TEST_F(SqlTest, NonEquiJoinUsesNestedLoops) {
  std::vector<Tuple> rows = Rows(
      "SELECT e1.ENO, e2.ENO FROM EMP e1, EMP e2 WHERE e1.SAL < e2.SAL");
  EXPECT_EQ(rows.size(), 10u);  // strict ordering pairs of 5 distinct sals
}

TEST_F(SqlTest, DistinctCollapsesDuplicates) {
  std::vector<Tuple> rows = Rows("SELECT DISTINCT LOC FROM DEPT");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SqlTest, OrderByAscDescAndOrdinal) {
  std::vector<Tuple> rows =
      Rows("SELECT ENAME, SAL FROM EMP ORDER BY SAL DESC");
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0].AsString(), "alice");
  EXPECT_EQ(rows[4][0].AsString(), "erin");

  rows = Rows("SELECT ENAME FROM EMP ORDER BY 1");
  EXPECT_EQ(rows[0][0].AsString(), "alice");
}

TEST_F(SqlTest, GroupByWithAggregates) {
  std::vector<Tuple> rows = Rows(
      "SELECT EDNO, COUNT(*), SUM(SAL), MIN(SAL), MAX(SAL), AVG(SAL) "
      "FROM EMP WHERE EDNO = 1 GROUP BY EDNO");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][1].AsInt(), 2);
  EXPECT_DOUBLE_EQ(rows[0][2].AsDouble(), 170000.0);
  EXPECT_DOUBLE_EQ(rows[0][3].AsDouble(), 80000.0);
  EXPECT_DOUBLE_EQ(rows[0][4].AsDouble(), 90000.0);
  EXPECT_DOUBLE_EQ(rows[0][5].AsDouble(), 85000.0);
}

TEST_F(SqlTest, GlobalAggregateOnEmptyInput) {
  std::vector<Tuple> rows =
      Rows("SELECT COUNT(*), SUM(SAL) FROM EMP WHERE SAL > 1000000.0");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 0);
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST_F(SqlTest, HavingFiltersGroups) {
  // Departments with more than one employee: only dept 1.
  std::vector<Tuple> rows = Rows(
      "SELECT EDNO, COUNT(*) FROM EMP GROUP BY EDNO HAVING COUNT(*) > 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  EXPECT_EQ(rows[0][1].AsInt(), 2);
}

TEST_F(SqlTest, HavingWithHiddenAggregate) {
  // The HAVING aggregate is not in the select list.
  std::vector<Tuple> rows = Rows(
      "SELECT EDNO FROM EMP GROUP BY EDNO HAVING SUM(SAL) > 100000.0");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 1);
  // The hidden aggregate column must not leak into the output.
  Result<QueryResult> r = db_.Query(
      "SELECT EDNO FROM EMP GROUP BY EDNO HAVING SUM(SAL) > 100000.0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().outputs[0].schema.size(), 1u);
}

TEST_F(SqlTest, HavingReferencesGroupedOutputColumn) {
  std::vector<Tuple> rows = Rows(
      "SELECT EDNO, COUNT(*) AS N FROM EMP GROUP BY EDNO "
      "HAVING N >= 1 AND EDNO < 3");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SqlTest, HavingErrors) {
  // HAVING without aggregation.
  EXPECT_FALSE(db_.Query("SELECT ENO FROM EMP HAVING ENO > 1").ok());
  // Ungrouped column in HAVING.
  EXPECT_FALSE(db_.Query("SELECT EDNO, COUNT(*) FROM EMP GROUP BY EDNO "
                         "HAVING ENAME = 'x'")
                   .ok());
}

TEST_F(SqlTest, ScalarFunctions) {
  std::vector<Tuple> rows =
      Rows("SELECT UPPER(ENAME), LENGTH(ENAME) FROM EMP WHERE ENO = 10");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "ALICE");
  EXPECT_EQ(rows[0][1].AsInt(), 5);

  rows = Rows("SELECT ABS(0 - ENO), MOD(ENO, 3) FROM EMP WHERE ENO = 10");
  EXPECT_EQ(rows[0][0].AsInt(), 10);
  EXPECT_EQ(rows[0][1].AsInt(), 1);

  rows = Rows(
      "SELECT CONCAT(ENAME, LOWER(DNAME)) FROM EMP e, DEPT d "
      "WHERE e.EDNO = d.DNO AND e.ENO = 10");
  EXPECT_EQ(rows[0][0].AsString(), "alicedb");

  rows = Rows("SELECT ROUND(SAL / 1000) FROM EMP WHERE ENO = 20");
  EXPECT_EQ(rows[0][0].AsInt(), 80);

  // Functions compose with predicates and aggregates.
  rows = Rows("SELECT COUNT(*) FROM EMP WHERE LENGTH(ENAME) = 5");
  EXPECT_EQ(rows[0][0].AsInt(), 2);  // alice, carol
  rows = Rows("SELECT MAX(LENGTH(ENAME)) FROM EMP");
  EXPECT_EQ(rows[0][0].AsInt(), 5);
}

TEST_F(SqlTest, ScalarFunctionErrors) {
  EXPECT_FALSE(db_.Query("SELECT NOSUCHFN(ENO) FROM EMP").ok());
  EXPECT_FALSE(db_.Query("SELECT MOD(ENO) FROM EMP").ok());      // arity
  EXPECT_FALSE(db_.Query("SELECT UPPER(ENO, 1) FROM EMP").ok()); // arity
  // NULL propagates instead of erroring.
  Result<QueryResult> r =
      db_.Query("SELECT UPPER(NULL) FROM EMP WHERE ENO = 10");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().rows()[0][0].is_null());
}

TEST_F(SqlTest, CountSkipsNulls) {
  std::vector<Tuple> rows = Rows("SELECT COUNT(EDNO), COUNT(*) FROM EMP");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsInt(), 4);
  EXPECT_EQ(rows[0][1].AsInt(), 5);
}

TEST_F(SqlTest, ExistsSubqueryCorrelated) {
  std::vector<Tuple> rows = Rows(
      "SELECT ENAME FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE "
      "d.DNO = e.EDNO AND d.LOC = 'ARC')");
  std::set<std::string> names;
  for (const Tuple& r : rows) names.insert(r[0].AsString());
  EXPECT_EQ(names, (std::set<std::string>{"alice", "bob", "carol"}));
}

TEST_F(SqlTest, InSubquery) {
  std::vector<Tuple> rows = Rows(
      "SELECT DNAME FROM DEPT WHERE DNO IN (SELECT EDNO FROM EMP WHERE "
      "SAL >= 85000.0)");
  std::set<std::string> names;
  for (const Tuple& r : rows) names.insert(r[0].AsString());
  EXPECT_EQ(names, (std::set<std::string>{"DB", "OS"}));
}

TEST_F(SqlTest, ConjunctiveExistsRequiresBothWitnesses) {
  ASSERT_TRUE(db_.ExecuteScript(
                     "CREATE TABLE BADGES (BENO INTEGER);"
                     "INSERT INTO BADGES VALUES (10), (40)")
                  .ok());
  // Employees that are in an ARC department AND have a badge: only alice.
  std::vector<Tuple> rows = Rows(
      "SELECT ENAME FROM EMP e WHERE "
      "EXISTS (SELECT 1 FROM DEPT d WHERE d.DNO = e.EDNO AND d.LOC = 'ARC') "
      "AND EXISTS (SELECT 1 FROM BADGES b WHERE b.BENO = e.ENO)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "alice");
}

TEST_F(SqlTest, DisjunctiveExistsAcceptsEitherWitness) {
  ASSERT_TRUE(db_.ExecuteScript(
                     "CREATE TABLE BADGES (BENO INTEGER);"
                     "INSERT INTO BADGES VALUES (40)")
                  .ok());
  // Employees in an ARC department OR holding a badge.
  std::vector<Tuple> rows = Rows(
      "SELECT ENAME FROM EMP e WHERE "
      "EXISTS (SELECT 1 FROM DEPT d WHERE d.DNO = e.EDNO AND d.LOC = 'ARC') "
      "OR EXISTS (SELECT 1 FROM BADGES b WHERE b.BENO = e.ENO)");
  std::set<std::string> names;
  for (const Tuple& r : rows) names.insert(r[0].AsString());
  EXPECT_EQ(names, (std::set<std::string>{"alice", "bob", "carol", "dave"}));
}

TEST_F(SqlTest, NotExistsAntiJoin) {
  // Employees without a department row (erin has NULL, nobody references a
  // missing dept here; dave's dept 3 exists) => only erin.
  std::vector<Tuple> rows = Rows(
      "SELECT ENAME FROM EMP e WHERE NOT EXISTS (SELECT 1 FROM DEPT d "
      "WHERE d.DNO = e.EDNO)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "erin");
}

TEST_F(SqlTest, NotInSubquery) {
  std::vector<Tuple> rows = Rows(
      "SELECT DNAME FROM DEPT WHERE DNO NOT IN (SELECT EDNO FROM EMP "
      "WHERE EDNO = 1)");
  std::set<std::string> names;
  for (const Tuple& r : rows) names.insert(r[0].AsString());
  EXPECT_EQ(names, (std::set<std::string>{"OS", "HW"}));
}

TEST_F(SqlTest, MixedExistsAndNotExistsConjuncts) {
  // In an ARC department AND earning the department's top salary... use a
  // NOT EXISTS for "no colleague earns more".
  std::vector<Tuple> rows = Rows(
      "SELECT ENAME FROM EMP e WHERE "
      "EXISTS (SELECT 1 FROM DEPT d WHERE d.DNO = e.EDNO AND "
      "        d.LOC = 'ARC') AND "
      "NOT EXISTS (SELECT 1 FROM EMP e2 WHERE e2.EDNO = e.EDNO AND "
      "            e2.SAL > e.SAL)");
  std::set<std::string> names;
  for (const Tuple& r : rows) names.insert(r[0].AsString());
  EXPECT_EQ(names, (std::set<std::string>{"alice", "carol"}));
}

TEST_F(SqlTest, BetweenAndInList) {
  std::vector<Tuple> rows =
      Rows("SELECT ENAME FROM EMP WHERE SAL BETWEEN 80000.0 AND 85000.0");
  EXPECT_EQ(rows.size(), 2u);  // bob, carol
  rows = Rows("SELECT ENAME FROM EMP WHERE SAL NOT BETWEEN 80000.0 AND "
              "85000.0");
  EXPECT_EQ(rows.size(), 3u);
  rows = Rows("SELECT ENAME FROM EMP WHERE ENO IN (10, 30, 999)");
  EXPECT_EQ(rows.size(), 2u);
  rows = Rows("SELECT ENAME FROM EMP WHERE ENO NOT IN (10, 30)");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlTest, UnsupportedSubqueryPlacementsRejectedNotMisevaluated) {
  // EXISTS OR plain predicate.
  Result<QueryResult> r2 = db_.Query(
      "SELECT ENO FROM EMP e WHERE EXISTS (SELECT 1 FROM DEPT d WHERE "
      "d.DNO = e.EDNO) OR SAL > 0.0");
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kUnsupported);
  // Mixed conjunctive and disjunctive groups.
  Result<QueryResult> r3 = db_.Query(
      "SELECT ENO FROM EMP e WHERE "
      "EXISTS (SELECT 1 FROM DEPT d WHERE d.DNO = e.EDNO) AND "
      "(EXISTS (SELECT 1 FROM DEPT d2 WHERE d2.DNO = e.EDNO) OR "
      "EXISTS (SELECT 1 FROM DEPT d3 WHERE d3.DNO = e.EDNO))");
  EXPECT_FALSE(r3.ok());
}

TEST_F(SqlTest, LikePatterns) {
  std::vector<Tuple> rows = Rows("SELECT ENAME FROM EMP WHERE ENAME LIKE '%a%'");
  EXPECT_EQ(rows.size(), 3u);  // alice, carol, dave
  rows = Rows("SELECT ENAME FROM EMP WHERE ENAME NOT LIKE '%a%'");
  EXPECT_EQ(rows.size(), 2u);  // bob, erin
}

TEST_F(SqlTest, IndexAccessPathUsed) {
  // DNO is the PK and indexed; equality predicates should use it.
  Result<QueryResult> r = db_.Query("SELECT DNAME FROM DEPT WHERE DNO = 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows().size(), 1u);
  EXPECT_GE(r.value().stats.index_lookups, 1);
  EXPECT_LE(r.value().stats.rows_scanned, 1);  // no full scan

  // With indexes disabled the same query scans.
  ExecOptions opts;
  opts.plan.use_indexes = false;
  Result<QueryResult> r2 =
      db_.Query("SELECT DNAME FROM DEPT WHERE DNO = 2", {}, opts);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value().stats.index_lookups, 0);
  EXPECT_EQ(r2.value().stats.rows_scanned, 3);
}

TEST_F(SqlTest, OrderedIndexServesRangePredicates) {
  ASSERT_TRUE(db_.Execute("CREATE ORDERED INDEX ON EMP (SAL)").ok());
  Result<QueryResult> r = db_.Query(
      "SELECT ENAME FROM EMP WHERE SAL >= 80000.0 AND SAL < 90000.0");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  std::set<std::string> names;
  for (const Tuple& row : r.value().rows()) names.insert(row[0].AsString());
  EXPECT_EQ(names, (std::set<std::string>{"bob", "carol"}));
  // The range scan touched only the qualifying rows, not the whole table.
  EXPECT_GE(r.value().stats.index_lookups.load(), 1);
  EXPECT_EQ(r.value().stats.rows_scanned.load(), 2);

  // The plan names the range.
  Result<std::string> plan = db_.Explain(
      "SELECT ENAME FROM EMP WHERE SAL >= 80000.0 AND SAL < 90000.0");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan.value().find("RangeScan"), std::string::npos)
      << plan.value();
}

TEST_F(SqlTest, RangeScanMatchesFullScanOnBoundaryShapes) {
  ASSERT_TRUE(db_.Execute("CREATE ORDERED INDEX ON EMP (SAL)").ok());
  const char* queries[] = {
      "SELECT ENO FROM EMP WHERE SAL > 80000.0",
      "SELECT ENO FROM EMP WHERE SAL >= 80000.0",
      "SELECT ENO FROM EMP WHERE SAL < 80000.0",
      "SELECT ENO FROM EMP WHERE SAL <= 80000.0",
      "SELECT ENO FROM EMP WHERE SAL = 80000.0",
      "SELECT ENO FROM EMP WHERE 80000.0 <= SAL AND SAL <= 85000.0",
      "SELECT ENO FROM EMP WHERE SAL > 90000.0",  // empty
  };
  for (const char* sql : queries) {
    ExecOptions with, without;
    without.plan.use_indexes = false;
    Result<QueryResult> a = db_.Query(sql, {}, with);
    Result<QueryResult> b = db_.Query(sql, {}, without);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::multiset<int64_t> ra, rb;
    for (const Tuple& row : a.value().rows()) ra.insert(row[0].AsInt());
    for (const Tuple& row : b.value().rows()) rb.insert(row[0].AsInt());
    EXPECT_EQ(ra, rb) << sql;
  }
}

TEST_F(SqlTest, OrderedIndexMaintainedAcrossMutations) {
  ASSERT_TRUE(db_.Execute("CREATE ORDERED INDEX ON EMP (SAL)").ok());
  ASSERT_TRUE(db_.Execute("UPDATE EMP SET SAL = 95000.0 WHERE ENO = 20").ok());
  ASSERT_TRUE(db_.Execute("DELETE FROM EMP WHERE ENO = 30").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO EMP VALUES (60, 'fred', 1, "
                          "99000.0)")
                  .ok());
  Result<QueryResult> r =
      db_.Query("SELECT ENO FROM EMP WHERE SAL > 90000.0");
  ASSERT_TRUE(r.ok());
  std::set<int64_t> enos;
  for (const Tuple& row : r.value().rows()) enos.insert(row[0].AsInt());
  EXPECT_EQ(enos, (std::set<int64_t>{20, 60}));
}

TEST_F(SqlTest, HashJoinVersusNestedLoopSameResult) {
  const char* sql =
      "SELECT e.ENO, d.DNO FROM EMP e, DEPT d WHERE e.EDNO = d.DNO";
  ExecOptions hash, nl;
  nl.plan.use_hash_join = false;
  Result<QueryResult> a = db_.Query(sql, {}, hash);
  Result<QueryResult> b = db_.Query(sql, {}, nl);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto key = [](const QueryResult& qr) {
    std::multiset<std::pair<int64_t, int64_t>> k;
    for (const Tuple& row : qr.rows()) {
      k.emplace(row[0].AsInt(), row[1].AsInt());
    }
    return k;
  };
  EXPECT_EQ(key(a.value()), key(b.value()));
}

TEST_F(SqlTest, UnionDeduplicatesAcrossMembers) {
  std::vector<Tuple> rows = Rows(
      "SELECT LOC FROM DEPT UNION SELECT ENAME FROM EMP WHERE ENO = 10");
  // ARC, ARC, YKT dedup to 2, plus 'alice'.
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlTest, UnionAllKeepsDuplicates) {
  std::vector<Tuple> rows =
      Rows("SELECT LOC FROM DEPT UNION ALL SELECT LOC FROM DEPT");
  EXPECT_EQ(rows.size(), 6u);
}

TEST_F(SqlTest, UnionWithOrderByAndLimit) {
  std::vector<Tuple> rows = Rows(
      "SELECT ENO FROM EMP WHERE ENO < 30 UNION "
      "SELECT ENO FROM EMP WHERE ENO >= 30 ORDER BY ENO DESC LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt(), 50);
  EXPECT_EQ(rows[1][0].AsInt(), 40);
}

TEST_F(SqlTest, UnionArityMismatchRejected) {
  EXPECT_FALSE(
      db_.Query("SELECT ENO FROM EMP UNION SELECT ENO, ENAME FROM EMP")
          .ok());
}

TEST_F(SqlTest, UnsupportedExistsSubqueryShapesRejected) {
  // These must fail loudly, not be silently mis-evaluated.
  EXPECT_FALSE(db_.Query(
                     "SELECT ENO FROM EMP e WHERE EXISTS (SELECT DNO FROM "
                     "DEPT UNION SELECT EDNO FROM EMP)")
                   .ok());
  EXPECT_FALSE(db_.Query(
                     "SELECT ENO FROM EMP e WHERE EXISTS (SELECT EDNO FROM "
                     "EMP GROUP BY EDNO HAVING COUNT(*) > 1)")
                   .ok());
  EXPECT_FALSE(db_.Query(
                     "SELECT ENO FROM EMP e WHERE EXISTS (SELECT DNO FROM "
                     "DEPT LIMIT 1)")
                   .ok());
}

TEST_F(SqlTest, ThreeWayUnionChain) {
  std::vector<Tuple> rows = Rows(
      "SELECT 1 FROM DEPT WHERE DNO = 1 UNION ALL "
      "SELECT 2 FROM DEPT WHERE DNO = 1 UNION ALL "
      "SELECT 3 FROM DEPT WHERE DNO = 1");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(SqlTest, LimitAndOffset) {
  std::vector<Tuple> rows =
      Rows("SELECT ENO FROM EMP ORDER BY ENO LIMIT 2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt(), 10);
  rows = Rows("SELECT ENO FROM EMP ORDER BY ENO LIMIT 2 OFFSET 3");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt(), 40);
  rows = Rows("SELECT ENO FROM EMP ORDER BY ENO LIMIT 0");
  EXPECT_TRUE(rows.empty());
  rows = Rows("SELECT ENO FROM EMP LIMIT 100");
  EXPECT_EQ(rows.size(), 5u);
}

TEST_F(SqlTest, DerivedTableInFrom) {
  std::vector<Tuple> rows = Rows(
      "SELECT t.ENAME FROM (SELECT ENAME, SAL FROM EMP WHERE SAL > "
      "75000.0) t WHERE t.SAL < 90000.0");
  EXPECT_EQ(rows.size(), 2u);  // bob, carol
}

TEST_F(SqlTest, SqlViewExpandsInline) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW ARC_EMPS AS SELECT e.* FROM EMP e, "
                          "DEPT d WHERE e.EDNO = d.DNO AND d.LOC = 'ARC'")
                  .ok());
  std::vector<Tuple> rows =
      Rows("SELECT ENAME FROM ARC_EMPS WHERE SAL > 80000.0");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SqlTest, UpdateWithRowExpression) {
  Result<Database::Outcome> r =
      db_.Execute("UPDATE EMP SET SAL = SAL * 2 WHERE ENO = 10");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().affected, 1u);
  std::vector<Tuple> rows = Rows("SELECT SAL FROM EMP WHERE ENO = 10");
  EXPECT_DOUBLE_EQ(rows[0][0].AsDouble(), 180000.0);
}

TEST_F(SqlTest, DeleteWithPredicate) {
  Result<Database::Outcome> r =
      db_.Execute("DELETE FROM EMP WHERE SAL < 80000.0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().affected, 2u);
  EXPECT_EQ(Rows("SELECT ENO FROM EMP").size(), 3u);
}

TEST_F(SqlTest, SemanticErrors) {
  EXPECT_FALSE(db_.Query("SELECT NOPE FROM EMP").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM NOPE").ok());
  EXPECT_FALSE(db_.Query("SELECT e.ENO FROM EMP e, EMP e").ok());  // dup alias
  // Ambiguous unqualified column across two tables.
  EXPECT_FALSE(db_.Query("SELECT ENO FROM EMP a, EMP b").ok());
  // Aggregate mixed with plain column without GROUP BY.
  EXPECT_FALSE(db_.Query("SELECT ENAME, COUNT(*) FROM EMP").ok());
}

TEST_F(SqlTest, XnfViewCannotBeUsedAsPlainTable) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW COV AS OUT OF x AS EMP TAKE *").ok());
  Result<QueryResult> r = db_.Query("SELECT * FROM COV");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kSemanticError);
}

TEST_F(SqlTest, StoredXnfViewQueryableByName) {
  ASSERT_TRUE(db_.Execute("CREATE VIEW COV AS OUT OF x AS EMP TAKE *").ok());
  Result<QueryResult> r = db_.Query("COV");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().RowCount(0), 5u);
}

}  // namespace
}  // namespace xnfdb
