// An interactive shell over the embedded engine: type SQL or XNF
// statements, get tabular / composite-object results. Supports meta
// commands:
//
//   .help               this text
//   .tables             list tables and views
//   .explain <query>    show rewrite stats, op counts and physical plan
//   .analyze <query>    EXPLAIN ANALYZE: plan with actual rows/loops/time,
//                       plus a one-line per-phase wall-time footer
//   .metrics            process-wide metrics snapshot as JSON
//   .metrics table      the same snapshot, pretty-printed as a table
//   .queries            live queries (SYS$QUERIES): id, state, progress
//   .kill <id>          request cooperative termination of query <id>
//   .slowlog <us>       arm the slow-query log (.slowlog off disarms)
//   .sample             take one metrics sample into SYS$METRICS_HISTORY
//   .history [substr]   the sampler's time-series ring (optionally filtered)
//   .profiles           always-on per-query profiles (SYS$QUERY_PROFILES)
//   .matviews           server-side materialized CO views (SYS$MATVIEWS):
//                       name, state, rows, hits, delta/refresh counters
//   .top [n]            top statement shapes by total wall time, with the
//                       profiler's per-class self-time split
//   .watchdog <ms>|off  arm the stuck-query watchdog at <ms> stall time
//   .events [n]         tail of the flight recorder (SYS$EVENTS), newest last
//   .health             per-rule health state (SYS$HEALTH) + report JSON
//   .alerts             OK<->FIRING transition history (SYS$ALERTS)
//   .diag <dir>         write a diagnostic bundle (crash-style report,
//                       metrics, events, health, queries, samples, profiles,
//                       plan feedback, env) into <dir>
//   .dot <query>        emit the query graph in Graphviz DOT
//   .save <file>        persist the database
//   .open <file>        load a database (into an empty shell)
//   .quit
//
// Run:  ./build/examples/xnfdb_shell          (interactive)
//       ./build/examples/xnfdb_shell < script.sql

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "api/database.h"
#include "common/str_util.h"
#include "qgm/dot.h"
#include "storage/persist.h"
#include "xnf/compiler.h"

using xnfdb::Database;
using xnfdb::QueryResult;
using xnfdb::Status;
using xnfdb::StreamItem;

namespace {

void PrintResult(const QueryResult& result) {
  // Plain SQL: one table.
  if (result.outputs.size() == 1 && !result.outputs[0].is_connection &&
      result.outputs[0].name == "RESULT") {
    const xnfdb::Schema& schema = result.outputs[0].schema;
    for (size_t i = 0; i < schema.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : " | ",
                  schema.column(i).name.c_str());
    }
    std::printf("\n");
    size_t n = 0;
    for (const StreamItem& item : result.stream) {
      if (item.kind != StreamItem::Kind::kRow) continue;
      for (size_t i = 0; i < item.values.size(); ++i) {
        std::printf("%s%s", i == 0 ? "" : " | ",
                    item.values[i].ToString().c_str());
      }
      std::printf("\n");
      ++n;
    }
    std::printf("(%zu row%s)\n", n, n == 1 ? "" : "s");
    return;
  }
  // XNF: heterogeneous streams, grouped per output.
  for (size_t oi = 0; oi < result.outputs.size(); ++oi) {
    const xnfdb::OutputDesc& desc = result.outputs[oi];
    if (desc.is_connection) {
      std::printf("-- relationship %s (%zu connection%s)\n",
                  desc.name.c_str(),
                  result.ConnectionCount(static_cast<int>(oi)),
                  result.ConnectionCount(static_cast<int>(oi)) == 1 ? ""
                                                                    : "s");
      for (const StreamItem& item : result.stream) {
        if (item.kind != StreamItem::Kind::kConnection ||
            item.output != static_cast<int>(oi)) {
          continue;
        }
        std::printf("  ");
        for (size_t pi = 0; pi < item.tids.size(); ++pi) {
          std::printf("%s%s#%lld", pi == 0 ? "" : " -> ",
                      desc.partner_names[pi].c_str(),
                      static_cast<long long>(item.tids[pi]));
        }
        std::printf("\n");
      }
      continue;
    }
    std::printf("-- component %s\n", desc.name.c_str());
    for (const StreamItem& item : result.stream) {
      if (item.kind != StreamItem::Kind::kRow ||
          item.output != static_cast<int>(oi)) {
        continue;
      }
      std::printf("  #%lld %s\n", static_cast<long long>(item.tid),
                  xnfdb::TupleToString(item.values).c_str());
    }
  }
}

bool IsQueryText(const std::string& text) {
  std::string upper = xnfdb::ToUpperIdent(xnfdb::Trim(text));
  return upper.rfind("SELECT", 0) == 0 || upper.rfind("OUT", 0) == 0;
}

// `.metrics table`: the registry snapshot as aligned NAME / KIND / VALUE
// rows; histograms show count/sum/p50/p99 instead of raw buckets.
void PrintMetricsTable(const xnfdb::obs::MetricsSnapshot& snap) {
  size_t width = 4;  // "NAME"
  for (const auto& [name, v] : snap.counters) width = std::max(width, name.size());
  for (const auto& [name, v] : snap.gauges) width = std::max(width, name.size());
  for (const auto& [name, h] : snap.histograms) width = std::max(width, name.size());
  std::printf("%-*s  %-9s  %s\n", static_cast<int>(width), "NAME", "KIND",
              "VALUE");
  for (const auto& [name, v] : snap.counters) {
    std::printf("%-*s  %-9s  %lld\n", static_cast<int>(width), name.c_str(),
                "counter", static_cast<long long>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    std::printf("%-*s  %-9s  %lld\n", static_cast<int>(width), name.c_str(),
                "gauge", static_cast<long long>(v));
  }
  for (const auto& [name, h] : snap.histograms) {
    std::printf("%-*s  %-9s  count=%lld sum=%lld p50=%lld p99=%lld\n",
                static_cast<int>(width), name.c_str(), "histogram",
                static_cast<long long>(h.count), static_cast<long long>(h.sum),
                static_cast<long long>(h.Quantile(0.5)),
                static_cast<long long>(h.Quantile(0.99)));
  }
}

// One-line per-phase footer for `.analyze`: the delta of every
// `phase.<name>.us` histogram sum across the analyzed run.
void PrintPhaseFooter(const xnfdb::obs::MetricsSnapshot& before,
                      const xnfdb::obs::MetricsSnapshot& after) {
  std::printf("phases:");
  bool any = false;
  for (const auto& [name, h] : after.histograms) {
    if (name.rfind("phase.", 0) != 0) continue;
    int64_t prev = 0;
    auto it = before.histograms.find(name);
    if (it != before.histograms.end()) prev = it->second.sum;
    int64_t delta = h.sum - prev;
    if (delta <= 0) continue;
    // phase.<name>.us -> <name>
    std::string phase = name.substr(6, name.size() - 6 - 3);
    std::printf(" %s=%lldus", phase.c_str(), static_cast<long long>(delta));
    any = true;
  }
  std::printf(any ? "\n" : " (none recorded)\n");
}

}  // namespace

int main() {
  Database db;
  bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("xnfdb shell — SQL + XNF composite-object views. "
                "Type .help for help.\n");
  }
  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) std::printf(buffer.empty() ? "xnfdb> " : "  ...> ");
    if (!std::getline(std::cin, line)) break;
    std::string trimmed = xnfdb::Trim(line);
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '.') {
      // Meta command.
      size_t space = trimmed.find(' ');
      std::string cmd = trimmed.substr(0, space);
      std::string arg =
          space == std::string::npos ? "" : xnfdb::Trim(trimmed.substr(space));
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::printf(
            "query:         .tables | .explain [rewrite] <q> | .analyze <q> | "
            ".dot <q>\n"
            "observability: .metrics [table] | .sample | .history [substr] | "
            ".profiles | .matviews | .rewrites | .feedback | .plans | "
            ".top [n] | .events [n] | .health | .alerts | .diag <dir>\n"
            "admin:         .queries | .kill <id> | .slowlog <us>|off | "
            ".watchdog <ms>|off | .save <f> | .open <f> | .quit\n"
            "Statements end with ';'. MATERIALIZE <view> pins a server-side "
            "matview (DEMATERIALIZE drops it). System views: sys$metrics, "
            "sys$histograms, sys$statements, sys$cache, sys$tables, "
            "sys$queries, sys$metrics_history, sys$query_profiles, "
            "sys$matviews, sys$rewrites, sys$plan_feedback, "
            "sys$plan_history, sys$events, sys$health, sys$alerts.\n");
      } else if (cmd == ".tables") {
        for (const std::string& name : db.catalog().TableNames()) {
          std::printf("table %s\n", name.c_str());
        }
        for (const xnfdb::ViewDef* view : db.catalog().Views()) {
          std::printf("view  %s%s\n", view->name.c_str(),
                      view->is_xnf ? " (XNF)" : "");
        }
        for (const xnfdb::VirtualTableProvider* v :
             db.catalog().VirtualTables()) {
          std::printf("sys   %s\n", v->name().c_str());
        }
      } else if (cmd == ".explain") {
        // `.explain rewrite <q>` prepends the ordered rewrite-rule log.
        Database::ExplainOptions xopts;
        if (arg.rfind("rewrite ", 0) == 0) {
          xopts.rewrite = true;
          arg = xnfdb::Trim(arg.substr(8));
        }
        auto plan = db.Explain(arg, xopts);
        std::printf("%s\n", plan.ok() ? plan.value().c_str()
                                      : plan.status().ToString().c_str());
      } else if (cmd == ".analyze") {
        xnfdb::obs::MetricsSnapshot before = db.metrics().Snapshot();
        auto plan = db.Explain(arg, Database::ExplainOptions{true});
        std::printf("%s\n", plan.ok() ? plan.value().c_str()
                                      : plan.status().ToString().c_str());
        if (plan.ok()) PrintPhaseFooter(before, db.metrics().Snapshot());
      } else if (cmd == ".metrics") {
        const xnfdb::GovernorOptions gopts = db.governor().options();
        std::printf(
            "governor: running=%lld queued=%lld max_concurrent=%lld "
            "max_queue=%lld timeout_ms=%lld max_rows=%lld mem_bytes=%lld\n",
            static_cast<long long>(db.governor().running()),
            static_cast<long long>(db.governor().queued()),
            static_cast<long long>(gopts.max_concurrent),
            static_cast<long long>(gopts.max_queue),
            static_cast<long long>(gopts.default_timeout_ms),
            static_cast<long long>(gopts.default_max_result_rows),
            static_cast<long long>(gopts.default_mem_budget_bytes));
        if (arg == "table") {
          PrintMetricsTable(db.metrics().Snapshot());
        } else {
          std::printf("%s\n", db.MetricsJson().c_str());
        }
      } else if (cmd == ".queries") {
        auto result = db.Query("SELECT * FROM SYS$QUERIES");
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          PrintResult(result.value());
        }
      } else if (cmd == ".kill") {
        char* end = nullptr;
        long long id = std::strtoll(arg.c_str(), &end, 10);
        if (arg.empty() || end == arg.c_str() || *end != '\0') {
          std::printf("usage: .kill <query id>  (see .queries for live ids)\n");
        } else {
          Status s = db.Cancel(id);
          if (s.ok()) {
            std::printf("kill requested for query %lld (cooperative: it "
                        "terminates at its next governance check)\n", id);
          } else {
            std::printf("%s\n", s.ToString().c_str());
          }
        }
      } else if (cmd == ".sample") {
        db.sampler().SampleNow();
        std::printf("sampled (%lld samples, ring %zu/%zu)\n",
                    static_cast<long long>(db.sampler().samples_taken()),
                    db.sampler().ring_size(),
                    db.sampler().options().ring_capacity);
      } else if (cmd == ".history") {
        size_t n = 0;
        for (const xnfdb::obs::MetricsSampler::Row& r :
             db.sampler().History()) {
          if (!arg.empty() && r.name.find(arg) == std::string::npos) continue;
          std::printf("%lld %-9s %-40s value=%lld delta=%lld rate=%lld/s\n",
                      static_cast<long long>(r.sample_ts_us), r.kind.c_str(),
                      r.name.c_str(), static_cast<long long>(r.value),
                      static_cast<long long>(r.delta),
                      static_cast<long long>(r.rate_per_s));
          ++n;
        }
        std::printf("(%zu series point%s; .sample adds a sample, "
                    "XNFDB_METRICS_SAMPLE_MS starts the background "
                    "sampler)\n", n, n == 1 ? "" : "s");
      } else if (cmd == ".profiles") {
        auto result = db.Query("SELECT * FROM SYS$QUERY_PROFILES");
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          PrintResult(result.value());
        }
      } else if (cmd == ".matviews") {
        auto result = db.Query("SELECT * FROM SYS$MATVIEWS");
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          PrintResult(result.value());
          std::printf("(MATERIALIZE <view> pins, DEMATERIALIZE drops; "
                      "XNFDB_MATVIEWS=0 disables)\n");
        }
      } else if (cmd == ".rewrites") {
        auto result = db.Query("SELECT * FROM SYS$REWRITES");
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          PrintResult(result.value());
        }
      } else if (cmd == ".feedback") {
        auto result = db.Query("SELECT * FROM SYS$PLAN_FEEDBACK");
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          PrintResult(result.value());
        }
      } else if (cmd == ".plans") {
        auto result = db.Query("SELECT * FROM SYS$PLAN_HISTORY");
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
        } else {
          PrintResult(result.value());
        }
      } else if (cmd == ".top") {
        long long n = arg.empty() ? 10 : std::atoll(arg.c_str());
        std::vector<xnfdb::obs::StatementSnapshot> stmts =
            db.statement_stats().Snapshot();
        std::sort(stmts.begin(), stmts.end(),
                  [](const auto& a, const auto& b) {
                    return a.total_us > b.total_us;
                  });
        std::printf("%-18s %8s %10s %10s  %s\n", "DIGEST", "CALLS",
                    "TOTAL_US", "AVG_US", "SELF scan/join/filter/other + TEXT");
        for (const xnfdb::obs::StatementSnapshot& s : stmts) {
          if (n-- <= 0) break;
          xnfdb::obs::QueryProfileStore::ClassTotals cls =
              db.query_profiles().ClassSelfTimes(s.digest);
          std::printf("%-18s %8lld %10lld %10lld  %lld/%lld/%lld/%lld %s\n",
                      s.digest_hex.c_str(), static_cast<long long>(s.calls),
                      static_cast<long long>(s.total_us),
                      static_cast<long long>(s.avg_us()),
                      static_cast<long long>(cls.scan_us),
                      static_cast<long long>(cls.join_us),
                      static_cast<long long>(cls.filter_us),
                      static_cast<long long>(cls.other_us), s.text.c_str());
        }
      } else if (cmd == ".watchdog") {
        xnfdb::WatchdogOptions wopts = db.watchdog().options();
        if (arg == "off" || arg.empty()) {
          db.watchdog().Stop();
          wopts.stall_ms = 0;
          db.watchdog().SetOptions(wopts);
          std::printf("watchdog off\n");
        } else {
          wopts.stall_ms = std::atoll(arg.c_str());
          if (wopts.poll_ms > wopts.stall_ms && wopts.stall_ms > 0) {
            wopts.poll_ms = std::max<int64_t>(1, wopts.stall_ms / 2);
          }
          db.watchdog().SetOptions(wopts);
          db.watchdog().Start();
          std::printf("watchdog armed: stall=%lldms poll=%lldms cancel=%s\n",
                      static_cast<long long>(wopts.stall_ms),
                      static_cast<long long>(wopts.poll_ms),
                      wopts.auto_cancel ? "on" : "off");
        }
      } else if (cmd == ".events") {
        std::vector<xnfdb::obs::FlightRecorder::Event> events =
            db.events().Snapshot();
        size_t limit = events.size();
        if (!arg.empty()) {
          long long n = std::atoll(arg.c_str());
          if (n > 0 && static_cast<size_t>(n) < limit) {
            limit = static_cast<size_t>(n);
          }
        }
        for (size_t i = events.size() - limit; i < events.size(); ++i) {
          const auto& e = events[i];
          std::printf("#%lld ts_us=%lld [%s] %s: %s",
                      static_cast<long long>(e.seq),
                      static_cast<long long>(e.ts_us), e.severity.c_str(),
                      e.category.c_str(), e.message.c_str());
          if (!e.detail.empty()) std::printf(" | %s", e.detail.c_str());
          if (e.repeated > 1) {
            std::printf(" (x%lld)", static_cast<long long>(e.repeated));
          }
          std::printf("\n");
        }
        std::printf("(%zu event%s shown; recorded=%lld coalesced=%lld "
                    "ring=%zu %s)\n",
                    limit, limit == 1 ? "" : "s",
                    static_cast<long long>(db.events().recorded()),
                    static_cast<long long>(db.events().coalesced()),
                    db.events().capacity(),
                    db.events().enabled() ? "on" : "off");
      } else if (cmd == ".health") {
        std::printf("%-22s %-26s %-10s %-6s %-10s  %s\n", "RULE", "SERIES",
                    "FIELD", "CMP", "STATE", "LAST_VALUE");
        for (const xnfdb::obs::RuleState& s : db.health().Snapshot()) {
          std::printf("%-22s %-26s %-10s %-6s %-10s  %g\n",
                      s.rule.name.c_str(), s.rule.series.c_str(),
                      xnfdb::obs::HealthFieldName(s.rule.field),
                      xnfdb::obs::HealthCmpName(s.rule.cmp), s.state.c_str(),
                      s.last_value);
        }
        std::printf("%s\n", db.HealthReport().c_str());
      } else if (cmd == ".alerts") {
        size_t n = 0;
        for (const xnfdb::obs::AlertTransition& a : db.health().Alerts()) {
          std::printf("#%lld ts_us=%lld %s (%s) %s -> %s value=%g bound=%g\n",
                      static_cast<long long>(a.seq),
                      static_cast<long long>(a.ts_us), a.rule.c_str(),
                      a.series.c_str(), a.from.c_str(), a.to.c_str(), a.value,
                      a.bound);
          ++n;
        }
        std::printf("(%zu transition%s; rules evaluate on sampler ticks — "
                    ".sample forces one)\n", n, n == 1 ? "" : "s");
      } else if (cmd == ".diag") {
        if (arg.empty()) {
          std::printf("usage: .diag <dir>  (writes a diagnostic bundle)\n");
        } else {
          Status s = db.WriteDiagnosticBundle(arg);
          if (s.ok()) {
            std::printf("diagnostic bundle written to %s\n", arg.c_str());
          } else {
            std::printf("bundle partially written to %s: %s\n", arg.c_str(),
                        s.ToString().c_str());
          }
        }
      } else if (cmd == ".slowlog") {
        if (arg == "off" || arg.empty()) {
          db.SetSlowQueryThreshold(-1);
          std::printf("slow-query log off\n");
        } else {
          db.SetSlowQueryThreshold(std::atoll(arg.c_str()));
          std::printf("slow-query log armed at %lldus\n",
                      static_cast<long long>(db.slow_query_threshold_us()));
        }
      } else if (cmd == ".dot") {
        auto compiled = xnfdb::CompileQueryString(db.catalog(), arg);
        if (!compiled.ok()) {
          std::printf("%s\n", compiled.status().ToString().c_str());
        } else {
          std::printf("%s", xnfdb::qgm::ToDot(*compiled.value().graph).c_str());
        }
      } else if (cmd == ".save") {
        // Through the Database so the matview pin registry rides along
        // (<file>.matviews sidecar).
        Status s = db.SaveTo(arg);
        std::printf("%s\n", s.ToString().c_str());
      } else if (cmd == ".open") {
        // Through the Database: clears the matview store (stored answers
        // belong to the old catalog) and reloads any pin registry.
        Status s = db.LoadFrom(arg);
        std::printf("%s\n", s.ToString().c_str());
      } else {
        std::printf("unknown meta command %s\n", cmd.c_str());
      }
      continue;
    }
    buffer += line + "\n";
    if (trimmed.empty() || trimmed.back() != ';') continue;

    std::string statement = buffer;
    buffer.clear();
    if (IsQueryText(statement)) {
      auto result = db.Query(statement.substr(0, statement.rfind(';')));
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintResult(result.value());
      }
      continue;
    }
    auto outcome = db.Execute(statement.substr(0, statement.rfind(';')));
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
    } else if (outcome.value().kind == Database::Outcome::Kind::kAffected) {
      std::printf("ok (%zu row%s affected)\n", outcome.value().affected,
                  outcome.value().affected == 1 ? "" : "s");
    } else if (outcome.value().kind == Database::Outcome::Kind::kRows) {
      PrintResult(outcome.value().result);
    } else {
      std::printf("ok\n");
    }
  }
  return 0;
}
