// An interactive shell over the embedded engine: type SQL or XNF
// statements, get tabular / composite-object results. Supports meta
// commands:
//
//   .help               this text
//   .tables             list tables and views
//   .explain <query>    show rewrite stats, op counts and physical plan
//   .analyze <query>    EXPLAIN ANALYZE: plan with actual rows/loops/time
//   .metrics            process-wide metrics snapshot as JSON
//   .dot <query>        emit the query graph in Graphviz DOT
//   .save <file>        persist the database
//   .open <file>        load a database (into an empty shell)
//   .quit
//
// Run:  ./build/examples/xnfdb_shell          (interactive)
//       ./build/examples/xnfdb_shell < script.sql

#include <cstdio>
#include <iostream>
#include <string>

#include "api/database.h"
#include "common/str_util.h"
#include "qgm/dot.h"
#include "storage/persist.h"
#include "xnf/compiler.h"

using xnfdb::Database;
using xnfdb::QueryResult;
using xnfdb::Status;
using xnfdb::StreamItem;

namespace {

void PrintResult(const QueryResult& result) {
  // Plain SQL: one table.
  if (result.outputs.size() == 1 && !result.outputs[0].is_connection &&
      result.outputs[0].name == "RESULT") {
    const xnfdb::Schema& schema = result.outputs[0].schema;
    for (size_t i = 0; i < schema.size(); ++i) {
      std::printf("%s%s", i == 0 ? "" : " | ",
                  schema.column(i).name.c_str());
    }
    std::printf("\n");
    size_t n = 0;
    for (const StreamItem& item : result.stream) {
      if (item.kind != StreamItem::Kind::kRow) continue;
      for (size_t i = 0; i < item.values.size(); ++i) {
        std::printf("%s%s", i == 0 ? "" : " | ",
                    item.values[i].ToString().c_str());
      }
      std::printf("\n");
      ++n;
    }
    std::printf("(%zu row%s)\n", n, n == 1 ? "" : "s");
    return;
  }
  // XNF: heterogeneous streams, grouped per output.
  for (size_t oi = 0; oi < result.outputs.size(); ++oi) {
    const xnfdb::OutputDesc& desc = result.outputs[oi];
    if (desc.is_connection) {
      std::printf("-- relationship %s (%zu connection%s)\n",
                  desc.name.c_str(),
                  result.ConnectionCount(static_cast<int>(oi)),
                  result.ConnectionCount(static_cast<int>(oi)) == 1 ? ""
                                                                    : "s");
      for (const StreamItem& item : result.stream) {
        if (item.kind != StreamItem::Kind::kConnection ||
            item.output != static_cast<int>(oi)) {
          continue;
        }
        std::printf("  ");
        for (size_t pi = 0; pi < item.tids.size(); ++pi) {
          std::printf("%s%s#%lld", pi == 0 ? "" : " -> ",
                      desc.partner_names[pi].c_str(),
                      static_cast<long long>(item.tids[pi]));
        }
        std::printf("\n");
      }
      continue;
    }
    std::printf("-- component %s\n", desc.name.c_str());
    for (const StreamItem& item : result.stream) {
      if (item.kind != StreamItem::Kind::kRow ||
          item.output != static_cast<int>(oi)) {
        continue;
      }
      std::printf("  #%lld %s\n", static_cast<long long>(item.tid),
                  xnfdb::TupleToString(item.values).c_str());
    }
  }
}

bool IsQueryText(const std::string& text) {
  std::string upper = xnfdb::ToUpperIdent(xnfdb::Trim(text));
  return upper.rfind("SELECT", 0) == 0 || upper.rfind("OUT", 0) == 0;
}

}  // namespace

int main() {
  Database db;
  bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("xnfdb shell — SQL + XNF composite-object views. "
                "Type .help for help.\n");
  }
  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) std::printf(buffer.empty() ? "xnfdb> " : "  ...> ");
    if (!std::getline(std::cin, line)) break;
    std::string trimmed = xnfdb::Trim(line);
    if (buffer.empty() && !trimmed.empty() && trimmed[0] == '.') {
      // Meta command.
      size_t space = trimmed.find(' ');
      std::string cmd = trimmed.substr(0, space);
      std::string arg =
          space == std::string::npos ? "" : xnfdb::Trim(trimmed.substr(space));
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::printf(
            ".tables | .explain <q> | .analyze <q> | .dot <q> | .metrics | "
            ".save <f> | .open <f> | .quit\nStatements end with ';'.\n");
      } else if (cmd == ".tables") {
        for (const std::string& name : db.catalog().TableNames()) {
          std::printf("table %s\n", name.c_str());
        }
        for (const xnfdb::ViewDef* view : db.catalog().Views()) {
          std::printf("view  %s%s\n", view->name.c_str(),
                      view->is_xnf ? " (XNF)" : "");
        }
      } else if (cmd == ".explain") {
        auto plan = db.Explain(arg);
        std::printf("%s\n", plan.ok() ? plan.value().c_str()
                                      : plan.status().ToString().c_str());
      } else if (cmd == ".analyze") {
        auto plan = db.Explain(arg, Database::ExplainOptions{true});
        std::printf("%s\n", plan.ok() ? plan.value().c_str()
                                      : plan.status().ToString().c_str());
      } else if (cmd == ".metrics") {
        std::printf("%s\n", db.MetricsJson().c_str());
      } else if (cmd == ".dot") {
        auto compiled = xnfdb::CompileQueryString(db.catalog(), arg);
        if (!compiled.ok()) {
          std::printf("%s\n", compiled.status().ToString().c_str());
        } else {
          std::printf("%s", xnfdb::qgm::ToDot(*compiled.value().graph).c_str());
        }
      } else if (cmd == ".save") {
        Status s = xnfdb::SaveCatalogToFile(db.catalog(), arg);
        std::printf("%s\n", s.ToString().c_str());
      } else if (cmd == ".open") {
        Status s = xnfdb::LoadCatalogFromFile(arg, &db.catalog());
        std::printf("%s\n", s.ToString().c_str());
      } else {
        std::printf("unknown meta command %s\n", cmd.c_str());
      }
      continue;
    }
    buffer += line + "\n";
    if (trimmed.empty() || trimmed.back() != ';') continue;

    std::string statement = buffer;
    buffer.clear();
    if (IsQueryText(statement)) {
      auto result = db.Query(statement.substr(0, statement.rfind(';')));
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintResult(result.value());
      }
      continue;
    }
    auto outcome = db.Execute(statement.substr(0, statement.rfind(';')));
    if (!outcome.ok()) {
      std::printf("error: %s\n", outcome.status().ToString().c_str());
    } else if (outcome.value().kind == Database::Outcome::Kind::kAffected) {
      std::printf("ok (%zu row%s affected)\n", outcome.value().affected,
                  outcome.value().affected == 1 ? "" : "s");
    } else if (outcome.value().kind == Database::Outcome::Kind::kRows) {
      PrintResult(outcome.value().result);
    } else {
      std::printf("ok\n");
    }
  }
  return 0;
}
