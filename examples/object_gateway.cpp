// The Object/SQL-gateway scenario (paper Sect. 5.2 / 6, [33]): the
// seamless C++ interface. Component rows are materialized as ordinary C++
// objects with *pointer members* wired along the relationships ("creating
// classes for xemp and xdept which include a data member, whose value is a
// pointer to an xemp object"), plus container classes and generic typed
// cursors. Local updates are written back to the relational server.

#include <cstdio>
#include <string>
#include <vector>

#include "api/database.h"
#include "cache/seamless.h"
#include "cache/xnf_cache.h"

using xnfdb::CachedRow;
using xnfdb::Database;
using xnfdb::LinkMembers;
using xnfdb::ObjectSet;
using xnfdb::Status;
using xnfdb::Value;
using xnfdb::XCursor;
using xnfdb::XNFCache;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

// The application's own object model.
struct Emp;
struct Dept {
  int64_t dno = 0;
  std::string name;
  std::vector<Emp*> staff;   // wired from the EMPLOYMENT relationship
  const CachedRow* row = nullptr;
};
struct Emp {
  int64_t eno = 0;
  std::string name;
  double salary = 0;
  Dept* dept = nullptr;      // back-pointer, also from EMPLOYMENT
  const CachedRow* row = nullptr;
};

}  // namespace

int main() {
  Database db;
  Check(db.ExecuteScript(R"sql(
    CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR, LOC VARCHAR,
                       PRIMARY KEY (DNO));
    CREATE TABLE EMP (ENO INTEGER, ENAME VARCHAR, EDNO INTEGER, SAL DOUBLE,
                      PRIMARY KEY (ENO),
                      FOREIGN KEY (EDNO) REFERENCES DEPT (DNO));
    INSERT INTO DEPT VALUES (1, 'db', 'ARC'), (2, 'os', 'ARC');
    INSERT INTO EMP VALUES (1, 'ann', 1, 90000.0), (2, 'bo', 1, 82000.0),
                           (3, 'cy', 2, 85000.0);
  )sql")
            .status());

  auto cache = XNFCache::Evaluate(&db, R"sql(
    OUT OF xdept AS DEPT,
           xemp AS EMP,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE *
  )sql");
  Check(cache.status());
  xnfdb::Workspace& ws = cache.value()->workspace();

  // Materialize the cache into application objects.
  ObjectSet<Dept> depts;
  Check(depts.Load(&ws, "XDEPT", [](const CachedRow& r, Dept* d) {
    d->dno = r.values[0].AsInt();
    d->name = r.values[1].AsString();
    d->row = &r;
  }));
  ObjectSet<Emp> emps;
  Check(emps.Load(&ws, "XEMP", [](const CachedRow& r, Emp* e) {
    e->eno = r.values[0].AsInt();
    e->name = r.values[1].AsString();
    e->salary = r.values[3].AsDouble();
    e->row = &r;
  }));
  Check(LinkMembers<Dept, Emp>(&ws, "EMPLOYMENT", &depts, &emps,
                               [](Dept* d, Emp* e) {
                                 d->staff.push_back(e);
                                 e->dept = d;
                               }));

  // Pure C++ navigation: no database types in sight.
  std::printf("departments and staff (through C++ pointers):\n");
  for (Dept& d : depts) {
    std::printf("  %s:", d.name.c_str());
    for (Emp* e : d.staff) {
      std::printf(" %s($%.0f)", e->name.c_str(), e->salary);
    }
    std::printf("\n");
  }

  // A generic typed cursor (the XCursor of Sect. 5.2).
  double payroll = 0;
  XCursor<Emp> cursor(&emps);
  while (cursor.Next()) payroll += cursor.object()->salary;
  std::printf("total payroll: $%.0f\n", payroll);

  // Local update through the cache, then write-back to the server: give
  // everyone in 'db' a raise.
  for (Dept& d : depts) {
    if (d.name != "db") continue;
    for (Emp* e : d.staff) {
      CachedRow* row = const_cast<CachedRow*>(e->row);
      Check(cache.value()->Update(row, "SAL", Value(e->salary * 1.1)));
    }
  }
  auto stmts = cache.value()->WriteBack();
  Check(stmts.status());
  std::printf("\nwrite-back issued %zu statement(s):\n", stmts.value().size());
  for (const std::string& s : stmts.value()) {
    std::printf("  %s\n", s.c_str());
  }

  // Verify against the server.
  auto check = db.Query("SELECT ENAME, SAL FROM EMP ORDER BY ENO");
  Check(check.status());
  std::printf("\nserver state after write-back:\n");
  for (const xnfdb::Tuple& row : check.value().rows()) {
    std::printf("  %s: $%.0f\n", row[0].AsString().c_str(),
                row[1].AsDouble());
  }
  return 0;
}
