// CO composition — the closure property (paper Sect. 2): "Since the result
// of an XNF query consists of a set of component tables and relationships,
// an XNF query (or XNF view) can be used as input for a subsequent XNF
// query or view definition. ... Therefore the model is closed under its
// language operations."
//
// A base CO view (active ARC staff) is stored once; two departments-facing
// applications define their own COs on top of it: a staffing browser that
// further restricts by skill coverage, and an audit view using the FREE
// reachability override to keep unassigned employees visible. EXPLAIN
// output shows the composed plans.

#include <cstdio>

#include "api/database.h"
#include "cache/xnf_cache.h"

using xnfdb::Database;
using xnfdb::Status;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;
  Check(db.ExecuteScript(R"sql(
    CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR, LOC VARCHAR,
                       PRIMARY KEY (DNO));
    CREATE TABLE EMP (ENO INTEGER, ENAME VARCHAR, EDNO INTEGER,
                      ACTIVE BOOLEAN, PRIMARY KEY (ENO),
                      FOREIGN KEY (EDNO) REFERENCES DEPT (DNO));
    CREATE TABLE SKILLS (SNO INTEGER, SNAME VARCHAR, PRIMARY KEY (SNO));
    CREATE TABLE EMPSKILLS (ESENO INTEGER, ESSNO INTEGER);
    INSERT INTO DEPT VALUES (1, 'db', 'ARC'), (2, 'os', 'ARC'),
                            (3, 'hw', 'YKT');
    INSERT INTO EMP VALUES (1, 'ann', 1, TRUE), (2, 'bo', 1, FALSE),
                           (3, 'cy', 2, TRUE), (4, 'di', 3, TRUE),
                           (5, 'ed', NULL, TRUE);
    INSERT INTO SKILLS VALUES (10, 'sql'), (20, 'c++');
    INSERT INTO EMPSKILLS VALUES (1, 10), (3, 20);
  )sql")
            .status());

  // The shared base CO: active employees of ARC departments.
  Check(db.Execute(R"sql(
    CREATE VIEW ARC_STAFF AS
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS (SELECT * FROM EMP WHERE ACTIVE = TRUE),
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno)
    TAKE *
  )sql")
            .status());

  // Application 1: staff with their skills — composes over the base view
  // (outer reachability intersects the imported extent: only skilled,
  // active, ARC-department staff survive).
  const char* staffing = R"sql(
    OUT OF person AS ARC_STAFF.xemp,
           skill AS SKILLS,
           has AS (RELATE person VIA HAS, skill USING EMPSKILLS es
                   WHERE person.eno = es.eseno AND es.essno = skill.sno)
    TAKE *
  )sql";
  auto r1 = db.Query(staffing);
  Check(r1.status());
  std::printf("staffing CO (ARC_STAFF.xemp with skills):\n");
  for (const xnfdb::Tuple& row : r1.value().RowsOf(r1.value().FindOutput("PERSON"))) {
    std::printf("  %s\n", row[1].AsString().c_str());
  }

  // Application 2: an audit CO — FREE keeps every active employee visible
  // even when not connected to a department from the base view.
  const char* audit = R"sql(
    OUT OF place AS ARC_STAFF.xdept,
           person AS FREE (SELECT * FROM EMP WHERE ACTIVE = TRUE),
           at AS (RELATE place VIA HOSTS, person
                  WHERE place.dno = person.edno)
    TAKE *
  )sql";
  auto r2 = db.Query(audit);
  Check(r2.status());
  int person = r2.value().FindOutput("PERSON");
  int at = r2.value().FindOutput("AT");
  std::printf("\naudit CO: %zu active employees (FREE: incl. unassigned), "
              "%zu placements\n",
              r2.value().RowCount(person), r2.value().ConnectionCount(at));

  // EXPLAIN shows the composed plan: the imported view's derivation feeds
  // the outer component through shared spools.
  auto plan = db.Explain(staffing);
  Check(plan.status());
  std::printf("\nEXPLAIN of the staffing CO:\n%s", plan.value().c_str());
  return 0;
}
