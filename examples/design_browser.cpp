// Design-application scenario (the paper's motivating domain: "design
// applications, multi-media and AI applications", Sect. 1; CAD traversal
// requirements, Sect. 5.2).
//
// A small CAD-style design database: modules containing cells, cells wired
// by nets. The browser extracts one module's composite object and navigates
// it: fan-out statistics via dependent cursors, a path expression to find
// all nets of the module, and a wire-length report — all against the cache,
// without further server calls.

#include <cstdio>
#include <string>

#include "api/database.h"
#include "cache/cursor.h"
#include "cache/xnf_cache.h"

using xnfdb::CachedRow;
using xnfdb::Database;
using xnfdb::DependentCursor;
using xnfdb::IndependentCursor;
using xnfdb::Status;
using xnfdb::Value;
using xnfdb::XNFCache;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

// A two-module design: cells belong to modules; nets connect cells.
void LoadDesign(Database* db) {
  Check(db->ExecuteScript(R"sql(
    CREATE TABLE MODULE (MID INTEGER, MNAME VARCHAR, PRIMARY KEY (MID));
    CREATE TABLE CELL (CID INTEGER, CTYPE VARCHAR, CMOD INTEGER,
                       X INTEGER, Y INTEGER, PRIMARY KEY (CID),
                       FOREIGN KEY (CMOD) REFERENCES MODULE (MID));
    CREATE TABLE NET (NID INTEGER, NNAME VARCHAR, PRIMARY KEY (NID));
    CREATE TABLE PIN (PCELL INTEGER, PNET INTEGER,
                      FOREIGN KEY (PCELL) REFERENCES CELL (CID),
                      FOREIGN KEY (PNET) REFERENCES NET (NID));
    INSERT INTO MODULE VALUES (1, 'alu'), (2, 'decoder');
  )sql")
            .status());
  // alu: cells 1..8, decoder: cells 9..12; nets wire consecutive cells.
  for (int c = 1; c <= 12; ++c) {
    std::string type = (c % 3 == 0) ? "nand" : ((c % 3 == 1) ? "nor" : "inv");
    Check(db->Execute("INSERT INTO CELL VALUES (" + std::to_string(c) +
                      ", '" + type + "', " + (c <= 8 ? "1" : "2") + ", " +
                      std::to_string(10 * c) + ", " + std::to_string(5 * c) +
                      ")")
              .status());
  }
  for (int n = 1; n <= 10; ++n) {
    Check(db->Execute("INSERT INTO NET VALUES (" + std::to_string(n) +
                      ", 'net" + std::to_string(n) + "')")
              .status());
    // Each net connects cell n and cell n+2 (stays within a module mostly).
    Check(db->Execute("INSERT INTO PIN VALUES (" + std::to_string(n) + ", " +
                      std::to_string(n) + "), (" + std::to_string(n + 2) +
                      ", " + std::to_string(n) + ")")
              .status());
  }
}

}  // namespace

int main() {
  Database db;
  LoadDesign(&db);

  // The module CO: one module, its cells, and the nets its cells pin to.
  const char* module_view = R"sql(
    OUT OF xmodule AS (SELECT * FROM MODULE WHERE MNAME = 'alu'),
           xcell AS CELL,
           xnet AS NET,
           contains AS (RELATE xmodule VIA CONTAINS, xcell
                        WHERE xmodule.mid = xcell.cmod),
           wiring AS (RELATE xcell VIA PINS, xnet USING PIN p
                      WHERE xcell.cid = p.pcell AND p.pnet = xnet.nid)
    TAKE *
  )sql";

  db.ResetServerCalls();
  auto cache = XNFCache::Evaluate(&db, module_view);
  Check(cache.status());
  xnfdb::Workspace& ws = cache.value()->workspace();
  std::printf("extracted module CO with %lld server call(s)\n",
              static_cast<long long>(db.server_calls()));
  std::printf("  cells: %zu, nets: %zu (only those reachable from 'alu')\n",
              ws.component("XCELL").value()->LiveCount(),
              ws.component("XNET").value()->LiveCount());

  // Fan-out statistics: how many nets each cell pins to (dependent
  // cursors, no server involvement).
  std::printf("\ncell fan-out:\n");
  IndependentCursor cells(ws.component("XCELL").value());
  xnfdb::Relationship* wiring = ws.relationship("WIRING").value();
  while (cells.Next()) {
    int fanout = 0;
    DependentCursor nets(&ws, wiring, cells.row());
    while (nets.Next()) ++fanout;
    std::printf("  cell %lld (%s): %d net(s)\n",
                static_cast<long long>(cells.row()->values[0].AsInt()),
                cells.row()->values[1].AsString().c_str(), fanout);
  }

  // Path expression: all nets of the module in one step.
  auto nets = cache.value()->Path("XMODULE.CONTAINS.XCELL.WIRING.XNET");
  Check(nets.status());
  std::printf("\nnets reachable through XMODULE.CONTAINS.XCELL.WIRING.XNET: "
              "%zu\n",
              nets.value().size());

  // Shared objects: a net pinned by two cells of the module appears once
  // but has two parents.
  IndependentCursor net_cursor(ws.component("XNET").value());
  while (net_cursor.Next()) {
    DependentCursor pinned(&ws, wiring, net_cursor.row(),
                           DependentCursor::Direction::kParents);
    int pins = 0;
    while (pinned.Next()) ++pins;
    if (pins > 1) {
      std::printf("net %s is shared by %d cells (object sharing)\n",
                  net_cursor.row()->values[1].AsString().c_str(), pins);
    }
  }
  return 0;
}
