// Recursive composite objects and path expressions (paper Sect. 2).
//
// A bill-of-materials: the XNF schema graph has a cycle (a part USES
// parts), so "the cycle basically defines a 'derivation rule' that iterates
// along the cycle's relationships to collect the tuples until a fixed point
// is reached". The example assembles the CO for one top-level product,
// walks the hierarchy, answers a path query, and persists the cache to disk
// for a later session (Sect. 5: caches can be "stored on disk and retrieved
// later").

#include <cstdio>
#include <string>

#include "api/database.h"
#include "cache/cursor.h"
#include "cache/xnf_cache.h"

using xnfdb::CachedRow;
using xnfdb::Database;
using xnfdb::DependentCursor;
using xnfdb::Status;
using xnfdb::XNFCache;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

void PrintTree(xnfdb::Workspace* ws, xnfdb::Relationship* uses,
               CachedRow* part, int indent, int depth_limit) {
  std::printf("%*s%s\n", indent, "", part->values[1].AsString().c_str());
  if (depth_limit == 0) return;
  DependentCursor children(ws, uses, part);
  while (children.Next()) {
    PrintTree(ws, uses, children.row(), indent + 2, depth_limit - 1);
  }
}

}  // namespace

int main() {
  Database db;
  Check(db.ExecuteScript(R"sql(
    CREATE TABLE PART (PNO INTEGER, PNAME VARCHAR, PRIMARY KEY (PNO));
    CREATE TABLE BOM (ASSEMBLY INTEGER, COMPONENT INTEGER, QTY INTEGER);
    INSERT INTO PART VALUES (1, 'bicycle'), (2, 'frame'), (3, 'wheel'),
                            (4, 'spoke'), (5, 'hub'), (6, 'tube'),
                            (7, 'car'), (8, 'engine');
    INSERT INTO BOM VALUES (1, 2, 1), (1, 3, 2), (3, 4, 32), (3, 5, 1),
                           (2, 6, 3), (7, 8, 1);
  )sql")
            .status());

  // Recursive CO: bicycle and everything it (transitively) uses. The 'car'
  // subtree is unreachable and must not enter the CO.
  const char* bom_view = R"sql(
    OUT OF product AS (SELECT * FROM PART WHERE PNAME = 'bicycle'),
           xpart AS PART,
           toplevel AS (RELATE product VIA ROOTS, xpart USING BOM b
                        WHERE product.pno = b.assembly AND
                              b.component = xpart.pno),
           uses AS (RELATE xpart VIA USES, xpart USING BOM b
                    WHERE uses.pno = b.assembly AND b.component = xpart.pno)
    TAKE *
  )sql";

  auto cache = XNFCache::Evaluate(&db, bom_view);
  Check(cache.status());
  xnfdb::Workspace& ws = cache.value()->workspace();
  std::printf("parts in the bicycle CO: %zu (car/engine excluded by "
              "reachability)\n\n",
              ws.component("XPART").value()->LiveCount());

  // Walk the hierarchy from the product root.
  CachedRow* bicycle = ws.component("PRODUCT").value()->row(0);
  std::printf("bill of materials:\n");
  std::printf("bicycle\n");
  DependentCursor top(&ws, ws.relationship("TOPLEVEL").value(), bicycle);
  while (top.Next()) {
    PrintTree(&ws, ws.relationship("USES").value(), top.row(), 2, 8);
  }

  // Path expression: the direct children of all top-level assemblies.
  auto second_level = cache.value()->Path("PRODUCT.TOPLEVEL.XPART.USES.XPART");
  Check(second_level.status());
  std::printf("\nsecond-level parts (PRODUCT.TOPLEVEL.XPART.USES.XPART):\n");
  for (CachedRow* part : second_level.value()) {
    std::printf("  %s\n", part->values[1].AsString().c_str());
  }

  // Persist the cache and restore it (long-transaction support, Sect. 5).
  std::string path = "/tmp/xnfdb_bom_cache.xc";
  Check(cache.value()->SaveTo(path));
  auto restored = XNFCache::LoadFrom(&db, path, bom_view);
  Check(restored.status());
  std::printf("\ncache saved to %s and restored: %zu parts, %zu USES "
              "connections\n",
              path.c_str(),
              restored.value()->workspace().component("XPART").value()->size(),
              restored.value()->workspace().relationship("USES").value()->size());
  std::remove(path.c_str());
  return 0;
}
