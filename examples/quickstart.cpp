// Quickstart: the paper's running example end-to-end.
//
// Builds the Fig. 1 database (departments, employees, projects, skills),
// defines the deps_ARC composite-object view with the XNF CO constructor,
// evaluates it into a client-side cache, and navigates the COs with
// independent and dependent cursors — printing the instance graphs of
// Fig. 1.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart

#include <cstdio>

#include "api/database.h"
#include "cache/cursor.h"
#include "cache/xnf_cache.h"

using xnfdb::CachedRow;
using xnfdb::Database;
using xnfdb::DependentCursor;
using xnfdb::IndependentCursor;
using xnfdb::Status;
using xnfdb::XNFCache;

namespace {

void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;

  // 1. Relational schema and data (the base tables of Fig. 1).
  Check(db.ExecuteScript(R"sql(
    CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR, LOC VARCHAR,
                       PRIMARY KEY (DNO));
    CREATE TABLE EMP (ENO INTEGER, ENAME VARCHAR, EDNO INTEGER,
                      PRIMARY KEY (ENO),
                      FOREIGN KEY (EDNO) REFERENCES DEPT (DNO));
    CREATE TABLE PROJ (PNO INTEGER, PNAME VARCHAR, PDNO INTEGER,
                       PRIMARY KEY (PNO),
                       FOREIGN KEY (PDNO) REFERENCES DEPT (DNO));
    CREATE TABLE SKILLS (SNO INTEGER, SNAME VARCHAR, PRIMARY KEY (SNO));
    CREATE TABLE EMPSKILLS (ESENO INTEGER, ESSNO INTEGER);
    CREATE TABLE PROJSKILLS (PSPNO INTEGER, PSSNO INTEGER);

    INSERT INTO DEPT VALUES (1, 'd1', 'ARC'), (2, 'd2', 'ARC'),
                            (3, 'd3', 'YKT');
    INSERT INTO EMP VALUES (1, 'e1', 1), (2, 'e2', 1), (3, 'e3', 2),
                           (4, 'e4', 3);
    INSERT INTO PROJ VALUES (1, 'p1', 1), (2, 'p2', 2), (3, 'p3', 3);
    INSERT INTO SKILLS VALUES (1, 's1'), (2, 's2'), (3, 's3'), (4, 's4'),
                              (5, 's5');
    INSERT INTO EMPSKILLS VALUES (1, 1), (2, 3), (3, 4);
    INSERT INTO PROJSKILLS VALUES (1, 3), (2, 5);
  )sql")
            .status());

  // 2. The CO view of Fig. 1, stored in the catalog.
  Check(db.Execute(R"sql(
    CREATE VIEW deps_ARC AS
    OUT OF xdept AS (SELECT * FROM DEPT WHERE LOC = 'ARC'),
           xemp AS EMP,
           xproj AS PROJ,
           xskills AS SKILLS,
           employment AS (RELATE xdept VIA EMPLOYS, xemp
                          WHERE xdept.dno = xemp.edno),
           ownership AS (RELATE xdept VIA HAS, xproj
                         WHERE xdept.dno = xproj.pdno),
           empproperty AS (RELATE xemp VIA POSSESSES, xskills
                           USING EMPSKILLS es
                           WHERE xemp.eno = es.eseno AND
                                 es.essno = xskills.sno),
           projproperty AS (RELATE xproj VIA NEEDS, xskills
                            USING PROJSKILLS ps
                            WHERE xproj.pno = ps.pspno AND
                                  ps.pssno = xskills.sno)
    TAKE *
  )sql")
            .status());

  // 3. Evaluate the view into a client-side CO cache (one server call;
  //    connections are swizzled into pointers).
  auto cache = XNFCache::Evaluate(&db, "deps_ARC");
  Check(cache.status());
  xnfdb::Workspace& ws = cache.value()->workspace();

  // 4. Navigate: browse departments with an independent cursor; follow
  //    relationship edges with dependent cursors.
  std::printf("deps_ARC instance graphs (cf. Fig. 1):\n");
  IndependentCursor depts(ws.component("XDEPT").value());
  while (depts.Next()) {
    CachedRow* d = depts.row();
    std::printf("  %s (dno=%lld)\n", d->values[1].AsString().c_str(),
                static_cast<long long>(d->values[0].AsInt()));
    DependentCursor emps(&ws, ws.relationship("EMPLOYMENT").value(), d);
    while (emps.Next()) {
      CachedRow* e = emps.row();
      std::printf("    employs %s\n", e->values[1].AsString().c_str());
      DependentCursor skills(&ws, ws.relationship("EMPPROPERTY").value(), e);
      while (skills.Next()) {
        std::printf("      possesses %s\n",
                    skills.row()->values[1].AsString().c_str());
      }
    }
    DependentCursor projs(&ws, ws.relationship("OWNERSHIP").value(), d);
    while (projs.Next()) {
      CachedRow* p = projs.row();
      std::printf("    has project %s\n", p->values[1].AsString().c_str());
      DependentCursor needs(&ws, ws.relationship("PROJPROPERTY").value(), p);
      while (needs.Next()) {
        std::printf("      needs %s\n",
                    needs.row()->values[1].AsString().c_str());
      }
    }
  }

  // 5. Object sharing and reachability at work: skill s3 is shared between
  //    e2 and p1; s2 is connected to nothing and is not in the CO.
  std::printf("\ncached skills (note: s2 is not reachable => absent):\n  ");
  IndependentCursor skills(ws.component("XSKILLS").value());
  while (skills.Next()) {
    std::printf("%s ", skills.row()->values[1].AsString().c_str());
  }
  std::printf("\n");
  return 0;
}
