// Continuous metrics sampling: a background thread snapshots the
// MetricsRegistry at a fixed interval into a bounded ring of samples, so
// point-in-time counters become a queryable time-series (`SYS$METRICS_HISTORY`).
//
// Each sample stores, per series, the value at sample time, the delta since
// the previous sample, and (for counters) the rate per second derived from
// the actual inter-sample wall time — the substrate ROADMAP item 3 needs to
// pick hot CO view shapes by frequency-and-cost *over time*, not by a
// single snapshot.
//
// Series emitted per sample:
//   * every counter:   kind "counter", delta and rate_per_s vs. the
//     previous sample;
//   * every gauge:     kind "gauge", delta (rate is 0 — a last-value gauge
//     has no meaningful per-second rate);
//   * every histogram: three derived series — `<name>.count` (counter
//     semantics) plus `<name>.p50` / `<name>.p99` quantile gauges.
//
// The ring is lock-protected (sampling is seconds-scale, far off any hot
// path) and evicts the oldest sample at capacity. `SampleNow()` takes one
// sample synchronously, which is what the shell's `.sample` and the CI
// smoke use to make history content deterministic; `Start()`/`Stop()` run
// the background thread (`XNFDB_METRICS_SAMPLE_MS` — resolved by the
// Database, which owns the sampler's lifecycle).

#ifndef XNFDB_OBS_SAMPLER_H_
#define XNFDB_OBS_SAMPLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace xnfdb {
namespace obs {

class MetricsSampler {
 public:
  struct Options {
    // Background sampling interval; <= 0 means "manual only" (the thread,
    // if started, idles until Stop, and samples come from SampleNow).
    int64_t interval_ms = 1000;
    // Samples retained; the oldest is evicted at capacity.
    size_t ring_capacity = 120;
  };

  // One series observation within one sample.
  struct Row {
    int64_t sample_ts_us = 0;  // microseconds since sampler construction
    std::string name;
    std::string kind;  // "counter" | "gauge"
    int64_t value = 0;
    int64_t delta = 0;       // vs. the previous sample (value on first sight)
    int64_t rate_per_s = 0;  // counters only; 0 for gauges / first sample
  };

  MetricsSampler(MetricsRegistry* registry, Options options);
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;
  ~MetricsSampler();

  // Starts/stops the background sampling thread. Both are idempotent and
  // safe to call from any thread; Stop joins the thread before returning.
  void Start();
  void Stop();
  bool running() const;

  // Takes one sample synchronously (deterministic histories for tests, the
  // shell `.sample` command, and the CI smoke).
  void SampleNow();

  // Every retained sample's rows, oldest sample first.
  std::vector<Row> History() const;

  // Invoked with a copy of each new sample's rows, after the sampler's
  // lock is released — the callback may log, record flight events, or feed
  // the health engine, but must not call back into this sampler. Applies
  // to background ticks and SampleNow alike. Pass an empty function to
  // clear.
  using OnSample = std::function<void(const std::vector<Row>& rows)>;
  void SetOnSample(OnSample callback);

  int64_t samples_taken() const;
  int64_t evictions() const;
  size_t ring_size() const;
  const Options& options() const { return options_; }

 private:
  struct Sample {
    int64_t ts_us = 0;
    std::vector<Row> rows;
  };

  // Takes one sample; caller holds mu_. Returns a copy of the sample's
  // rows for the on-sample callback (invoked only after mu_ is released).
  std::vector<Row> TakeSampleLocked();
  void AppendSeries(Sample* sample, const std::string& name,
                    const char* kind, int64_t value, bool rated,
                    int64_t dt_us);
  // Invokes the on-sample callback (if set) with one sample's rows. Caller
  // must NOT hold mu_.
  void NotifySample(const std::vector<Row>& rows);
  void Loop();

  int64_t NowUs() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  MetricsRegistry* registry_;
  Options options_;
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  // Serializes Start/Stop so concurrent lifecycle calls cannot double-join
  // the thread; mu_ protects the sampling state itself.
  std::mutex lifecycle_mu_;
  std::thread thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::deque<Sample> ring_;
  std::map<std::string, int64_t> prev_;  // last value per series, for deltas
  int64_t prev_ts_us_ = -1;
  int64_t samples_ = 0;
  int64_t evictions_ = 0;

  // Guarded by its own mutex, not mu_: the callback fires outside mu_, and
  // SetOnSample must not race the copy taken there.
  mutable std::mutex callback_mu_;
  OnSample on_sample_;

  // Self-metrics, registered in the sampled registry (a sample therefore
  // reports the sampler's own activity one sample late — incrementing
  // before snapshotting would make deltas self-referential).
  Counter* samples_counter_;
  Counter* evictions_counter_;
};

}  // namespace obs
}  // namespace xnfdb

#endif  // XNFDB_OBS_SAMPLER_H_
