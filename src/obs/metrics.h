// Process-wide metrics: named counters, gauges and fixed-bucket latency
// histograms behind one registry.
//
// Design goals, in order:
//  * increments are lock-free (relaxed atomics) — instrumenting a hot loop
//    (cursor fetches, operator Next calls) must not serialize it;
//  * handles are stable — `GetCounter` returns a pointer that stays valid
//    for the life of the registry, so call sites can cache it in a
//    function-local static and skip the name lookup entirely;
//  * one snapshot captures the whole system — `ToJson` / `ToPrometheusText`
//    render every metric registered by any subsystem (executor, CO cache,
//    env I/O, server-call model), which is what `Database::MetricsJson`
//    exposes and what `scripts/bench.sh` embeds into BENCH_*.json.
//
// Naming scheme: lowercase dot-separated `<subsystem>.<metric>`, e.g.
// `exec.rows_scanned`, `cache.cursor.fetches`, `env.syncs`,
// `phase.parse.us`, `server.calls`. Dots become underscores in the
// Prometheus exposition.

#ifndef XNFDB_OBS_METRICS_H_
#define XNFDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xnfdb {
namespace obs {

// Monotonically increasing 64-bit counter.
class Counter {
 public:
  void Increment(int64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Last-value gauge.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time copy of one histogram, mergeable across histograms with the
// same bounds (e.g. per-worker or per-bench snapshots).
struct HistogramSnapshot {
  std::vector<int64_t> bounds;   // inclusive upper bounds, ascending
  std::vector<int64_t> buckets;  // bounds.size() + 1 (last = overflow)
  int64_t count = 0;
  int64_t sum = 0;

  // Adds `other` into this snapshot. Bounds must match.
  void Merge(const HistogramSnapshot& other);
  // The q-quantile (q in [0,1]), linearly interpolated within the covering
  // bucket (observations are assumed uniform across a bucket); quantiles
  // landing in the overflow bucket report the largest bound + 1. 0 when
  // empty.
  int64_t Quantile(double q) const;
};

// Fixed-bucket histogram. Buckets are inclusive upper bounds; one implicit
// overflow bucket catches everything above the last bound. Observations and
// bucketing are lock-free; the binary search is over an immutable bounds
// vector.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  // Default latency buckets, in microseconds: 1µs .. ~10s, quasi-log scale.
  static const std::vector<int64_t>& DefaultLatencyBoundsUs();

  void Observe(int64_t value);

  const std::vector<int64_t>& bounds() const { return bounds_; }
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

// Full-registry snapshot: plain values, detached from the live atomics.
struct MetricsSnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  std::string ToJson() const;
  std::string ToPrometheusText() const;
};

// The registry. Registration takes a mutex; returned handles increment
// lock-free. Handles stay valid for the registry's lifetime (metrics are
// never unregistered; Reset zeroes values in place).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every subsystem reports into by default.
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` applies only when the histogram does not exist yet; empty
  // selects DefaultLatencyBoundsUs().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds = {});

  MetricsSnapshot Snapshot() const;
  std::string ToJson() const { return Snapshot().ToJson(); }
  std::string ToPrometheusText() const {
    return Snapshot().ToPrometheusText();
  }

  // Zeroes every registered metric (handles stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace xnfdb

#endif  // XNFDB_OBS_METRICS_H_
