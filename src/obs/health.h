// Declarative health rules over the metrics time-series: "is this instance
// healthy?" answered by machine, not by a human reading SYS$METRICS.
//
// A HealthRule watches one sampler series (counter, gauge, or derived
// histogram series) and fires when its chosen field — value, delta, or
// rate-per-second — breaches a bound for `for_samples` consecutive sampler
// ticks; it clears again after `clear_samples` consecutive healthy ticks.
// An absence rule fires when the series is missing from a sample entirely
// (a subsystem that stopped reporting is as suspicious as one reporting
// failures). Evaluation rides the existing MetricsSampler tick — the
// engine's OnSample is wired as the sampler's on-sample callback by the
// Database — so health costs nothing between samples.
//
// State machine per rule: OK <-> FIRING. Every transition appends an
// AlertTransition to a bounded history (SYS$ALERTS) and invokes the alert
// sink exactly once. The Database wires the sink to one structured warn
// line on the "health" channel, which the logger feeds into the flight
// recorder — exactly one log line and one event each way, however long the
// condition persists.
//
// Built-in rules (BuiltinRules) cover the failure modes the engine already
// detects: writeback failures, governor admission rejections, watchdog
// stall flags, q-error blowups (plan.qerror_blowups, bumped by the
// Database when an execution's worst q-error crosses XNFDB_QERROR_ALERT),
// and crash reports found on disk (crash.reports_found > 0).

#ifndef XNFDB_OBS_HEALTH_H_
#define XNFDB_OBS_HEALTH_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/sampler.h"

namespace xnfdb {
namespace obs {

struct HealthRule {
  enum class Field { kValue, kDelta, kRatePerS };
  enum class Cmp { kGt, kGe, kLt, kLe, kAbsent };

  std::string name;         // unique rule id, e.g. "writeback_failures"
  std::string series;       // sampler series name, e.g. "writeback.failures"
  Field field = Field::kDelta;
  Cmp cmp = Cmp::kGt;
  double bound = 0.0;       // ignored for kAbsent
  int for_samples = 1;      // consecutive breaching ticks before FIRING
  int clear_samples = 1;    // consecutive healthy ticks before clearing
  std::string description;  // human-readable "what does FIRING mean"
};

const char* HealthFieldName(HealthRule::Field f);
const char* HealthCmpName(HealthRule::Cmp c);

// One OK<->FIRING transition (SYS$ALERTS row).
struct AlertTransition {
  int64_t seq = 0;    // monotonic per engine
  int64_t ts_us = 0;  // sample timestamp that caused the transition
  std::string rule;
  std::string series;
  std::string from;  // "OK" | "FIRING"
  std::string to;
  double value = 0.0;  // observed field value at the transition
  double bound = 0.0;
};

// Point-in-time per-rule state (SYS$HEALTH row).
struct RuleState {
  HealthRule rule;
  std::string state;     // "OK" | "FIRING"
  int64_t since_us = 0;  // sample ts of the last transition (0 = never)
  double last_value = 0.0;
  bool evaluated = false;  // at least one sample seen
  int64_t breaches = 0;    // total breaching ticks observed
  int64_t transitions = 0;
};

class HealthEngine {
 public:
  // `alert_capacity` bounds the transition history ring.
  explicit HealthEngine(size_t alert_capacity = 256);

  void AddRule(HealthRule rule);
  static std::vector<HealthRule> BuiltinRules();

  // Invoked exactly once per OK<->FIRING transition, outside the engine's
  // lock. The Database wires this to one warn-level "health" log line.
  using AlertSink = std::function<void(const AlertTransition&)>;
  void SetAlertSink(AlertSink sink);

  // Evaluates every rule against the rows of one sample (the sampler's
  // on-sample callback). Rows must all belong to the same sample.
  void OnSample(const std::vector<MetricsSampler::Row>& rows);

  std::vector<RuleState> Snapshot() const;
  std::vector<AlertTransition> Alerts() const;  // oldest first
  bool healthy() const;                         // no rule FIRING
  int64_t samples_evaluated() const;

  // {"status":"ok"|"degraded","rules":[...],...} — the /healthz payload.
  std::string ReportJson() const;

 private:
  struct TrackedRule {
    HealthRule rule;
    bool firing = false;
    int breach_streak = 0;
    int clear_streak = 0;
    int64_t since_us = 0;
    double last_value = 0.0;
    bool evaluated = false;
    int64_t breaches = 0;
    int64_t transitions = 0;
  };

  const size_t alert_capacity_;
  mutable std::mutex mu_;
  std::vector<TrackedRule> rules_;
  std::deque<AlertTransition> alerts_;
  int64_t next_alert_seq_ = 1;
  int64_t samples_evaluated_ = 0;
  AlertSink sink_;
};

}  // namespace obs
}  // namespace xnfdb

#endif  // XNFDB_OBS_HEALTH_H_
