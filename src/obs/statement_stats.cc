#include "obs/statement_stats.h"

namespace xnfdb {
namespace obs {

std::string DigestHex(uint64_t digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[digest & 0xf];
    digest >>= 4;
  }
  return out;
}

void StatementStore::Record(uint64_t digest, const std::string& text,
                            const std::string& kind, bool ok, int64_t rows,
                            int64_t elapsed_us) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    auto entry = std::make_unique<Entry>();
    entry->text = text;
    entry->kind = kind;
    it = entries_.emplace(digest, std::move(entry)).first;
  }
  Entry& e = *it->second;
  ++e.calls;
  if (!ok) ++e.errors;
  e.rows += rows;
  e.total_us += elapsed_us;
  if (e.calls == 1 || elapsed_us < e.min_us) e.min_us = elapsed_us;
  if (elapsed_us > e.max_us) e.max_us = elapsed_us;
  e.latency.Observe(elapsed_us);
}

std::vector<StatementSnapshot> StatementStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StatementSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [digest, e] : entries_) {
    StatementSnapshot s;
    s.digest = digest;
    s.digest_hex = DigestHex(digest);
    s.text = e->text;
    s.kind = e->kind;
    s.calls = e->calls;
    s.errors = e->errors;
    s.rows = e->rows;
    s.total_us = e->total_us;
    s.min_us = e->min_us;
    s.max_us = e->max_us;
    s.latency = e->latency.Snapshot();
    out.push_back(std::move(s));
  }
  return out;
}

bool StatementStore::Stats(uint64_t digest, int64_t* calls,
                           int64_t* avg_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return false;
  const Entry& e = *it->second;
  if (calls != nullptr) *calls = e.calls;
  if (avg_us != nullptr) *avg_us = e.calls > 0 ? e.total_us / e.calls : 0;
  return true;
}

size_t StatementStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t StatementStore::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void StatementStore::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  dropped_ = 0;
}

}  // namespace obs
}  // namespace xnfdb
