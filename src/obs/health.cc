#include "obs/health.h"

#include <cstdio>
#include <utility>

namespace xnfdb {
namespace obs {

namespace {

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscapeMin(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 4);
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}

bool Compare(HealthRule::Cmp cmp, double value, double bound) {
  switch (cmp) {
    case HealthRule::Cmp::kGt: return value > bound;
    case HealthRule::Cmp::kGe: return value >= bound;
    case HealthRule::Cmp::kLt: return value < bound;
    case HealthRule::Cmp::kLe: return value <= bound;
    case HealthRule::Cmp::kAbsent: return false;  // handled by the caller
  }
  return false;
}

}  // namespace

const char* HealthFieldName(HealthRule::Field f) {
  switch (f) {
    case HealthRule::Field::kValue: return "value";
    case HealthRule::Field::kDelta: return "delta";
    case HealthRule::Field::kRatePerS: return "rate_per_s";
  }
  return "?";
}

const char* HealthCmpName(HealthRule::Cmp c) {
  switch (c) {
    case HealthRule::Cmp::kGt: return ">";
    case HealthRule::Cmp::kGe: return ">=";
    case HealthRule::Cmp::kLt: return "<";
    case HealthRule::Cmp::kLe: return "<=";
    case HealthRule::Cmp::kAbsent: return "absent";
  }
  return "?";
}

HealthEngine::HealthEngine(size_t alert_capacity)
    : alert_capacity_(alert_capacity == 0 ? 1 : alert_capacity) {}

void HealthEngine::AddRule(HealthRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  TrackedRule t;
  t.rule = std::move(rule);
  if (t.rule.for_samples < 1) t.rule.for_samples = 1;
  if (t.rule.clear_samples < 1) t.rule.clear_samples = 1;
  rules_.push_back(std::move(t));
}

std::vector<HealthRule> HealthEngine::BuiltinRules() {
  auto rule = [](const char* name, const char* series, HealthRule::Field f,
                 HealthRule::Cmp cmp, double bound, const char* desc) {
    HealthRule r;
    r.name = name;
    r.series = series;
    r.field = f;
    r.cmp = cmp;
    r.bound = bound;
    r.description = desc;
    return r;
  };
  return {
      rule("writeback_failures", "writeback.failures",
           HealthRule::Field::kDelta, HealthRule::Cmp::kGt, 0,
           "write-back operations exhausted their retries since the last "
           "sample"),
      rule("governor_rejections", "governor.rejected",
           HealthRule::Field::kDelta, HealthRule::Cmp::kGt, 0,
           "admission control is shedding load: queries rejected since the "
           "last sample"),
      rule("watchdog_stalls", "watchdog.stalled", HealthRule::Field::kDelta,
           HealthRule::Cmp::kGt, 0,
           "the watchdog flagged running queries whose progress counters "
           "stopped advancing"),
      rule("qerror_blowups", "plan.qerror_blowups", HealthRule::Field::kDelta,
           HealthRule::Cmp::kGt, 0,
           "executions whose worst cardinality estimate missed by more than "
           "the XNFDB_QERROR_ALERT factor"),
      rule("crash_reports", "crash.reports_found", HealthRule::Field::kValue,
           HealthRule::Cmp::kGt, 0,
           "crash reports present in XNFDB_CRASH_DIR from previous runs"),
  };
}

void HealthEngine::SetAlertSink(AlertSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
}

void HealthEngine::OnSample(const std::vector<MetricsSampler::Row>& rows) {
  std::vector<AlertTransition> fired;
  AlertSink sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
    ++samples_evaluated_;
    const int64_t sample_ts =
        rows.empty() ? 0 : rows.front().sample_ts_us;
    for (TrackedRule& t : rules_) {
      const MetricsSampler::Row* row = nullptr;
      for (const MetricsSampler::Row& r : rows) {
        if (r.name == t.rule.series) {
          row = &r;
          break;
        }
      }
      bool breach;
      double value = 0.0;
      if (t.rule.cmp == HealthRule::Cmp::kAbsent) {
        breach = row == nullptr;
        if (row != nullptr) value = static_cast<double>(row->value);
      } else {
        // A missing series cannot breach a threshold rule — the subsystem
        // has not registered yet. The tick still counts as healthy so a
        // firing rule over a vanished series eventually clears.
        if (row != nullptr) {
          switch (t.rule.field) {
            case HealthRule::Field::kValue:
              value = static_cast<double>(row->value);
              break;
            case HealthRule::Field::kDelta:
              value = static_cast<double>(row->delta);
              break;
            case HealthRule::Field::kRatePerS:
              value = static_cast<double>(row->rate_per_s);
              break;
          }
        }
        breach = row != nullptr && Compare(t.rule.cmp, value, t.rule.bound);
      }
      t.evaluated = true;
      t.last_value = value;
      if (breach) {
        ++t.breaches;
        ++t.breach_streak;
        t.clear_streak = 0;
      } else {
        ++t.clear_streak;
        t.breach_streak = 0;
      }
      const bool flip_on = !t.firing && t.breach_streak >= t.rule.for_samples;
      const bool flip_off = t.firing && t.clear_streak >= t.rule.clear_samples;
      if (!flip_on && !flip_off) continue;
      t.firing = flip_on;
      t.since_us = sample_ts;
      ++t.transitions;
      AlertTransition a;
      a.seq = next_alert_seq_++;
      a.ts_us = sample_ts;
      a.rule = t.rule.name;
      a.series = t.rule.series;
      a.from = flip_on ? "OK" : "FIRING";
      a.to = flip_on ? "FIRING" : "OK";
      a.value = value;
      a.bound = t.rule.bound;
      alerts_.push_back(a);
      while (alerts_.size() > alert_capacity_) alerts_.pop_front();
      fired.push_back(std::move(a));
    }
  }
  // The sink runs outside the lock: it logs one warn line, and the logger
  // feeds the flight recorder — exactly one line and one event per
  // transition, with no nesting under mu_.
  for (const AlertTransition& a : fired) {
    if (sink) sink(a);
  }
}

std::vector<RuleState> HealthEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RuleState> out;
  out.reserve(rules_.size());
  for (const TrackedRule& t : rules_) {
    RuleState s;
    s.rule = t.rule;
    s.state = t.firing ? "FIRING" : "OK";
    s.since_us = t.since_us;
    s.last_value = t.last_value;
    s.evaluated = t.evaluated;
    s.breaches = t.breaches;
    s.transitions = t.transitions;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<AlertTransition> HealthEngine::Alerts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<AlertTransition>(alerts_.begin(), alerts_.end());
}

bool HealthEngine::healthy() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const TrackedRule& t : rules_) {
    if (t.firing) return false;
  }
  return true;
}

int64_t HealthEngine::samples_evaluated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_evaluated_;
}

std::string HealthEngine::ReportJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  int firing = 0;
  for (const TrackedRule& t : rules_) {
    if (t.firing) ++firing;
  }
  std::string out;
  out += "{\"status\":\"";
  out += firing > 0 ? "degraded" : "ok";
  out += "\",\"firing\":" + std::to_string(firing);
  out += ",\"samples_evaluated\":" + std::to_string(samples_evaluated_);
  out += ",\"rules\":[";
  bool first = true;
  for (const TrackedRule& t : rules_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscapeMin(t.rule.name) + "\"";
    out += ",\"series\":\"" + JsonEscapeMin(t.rule.series) + "\"";
    out += ",\"field\":\"";
    out += HealthFieldName(t.rule.field);
    out += "\",\"cmp\":\"";
    out += HealthCmpName(t.rule.cmp);
    out += "\",\"bound\":" + FormatDouble(t.rule.bound);
    out += ",\"state\":\"";
    out += t.firing ? "FIRING" : "OK";
    out += "\",\"last_value\":" + FormatDouble(t.last_value);
    out += ",\"since_us\":" + std::to_string(t.since_us);
    out += ",\"breaches\":" + std::to_string(t.breaches);
    out += ",\"transitions\":" + std::to_string(t.transitions);
    out += ",\"description\":\"" + JsonEscapeMin(t.rule.description) + "\"}";
  }
  out += "],\"alerts_recorded\":" + std::to_string(next_alert_seq_ - 1);
  out += "}";
  return out;
}

}  // namespace obs
}  // namespace xnfdb
