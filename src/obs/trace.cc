#include "obs/trace.h"

#include <cstdlib>
#include <functional>
#include <sstream>
#include <thread>

namespace xnfdb {
namespace obs {

namespace {

// Per-thread stack of open spans, shared across tracers (entries carry the
// owning tracer). RAII spans close in LIFO order; out-of-order closes of
// moved spans are handled by erasing the matching entry wherever it is.
struct OpenEntry {
  const Tracer* tracer;
  int64_t id;
};
thread_local std::vector<OpenEntry> open_spans;

uint64_t ThisThreadId() {
  return static_cast<uint64_t>(
      std::hash<std::thread::id>()(std::this_thread::get_id()));
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

Span::Span(Tracer* tracer, std::string name) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  name_ = std::move(name);
  start_us_ = tracer->NowUs();
  id_ = tracer->OpenSpan(&parent_id_);
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      name_(std::move(other.name_)),
      id_(other.id_),
      parent_id_(other.parent_id_),
      start_us_(other.start_us_) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    name_ = std::move(other.name_);
    id_ = other.id_;
    parent_id_ = other.parent_id_;
    start_us_ = other.start_us_;
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  SpanRecord record;
  record.name = std::move(name_);
  record.id = id_;
  record.parent_id = parent_id_;
  record.start_us = start_us_;
  record.dur_us = tracer_->NowUs() - start_us_;
  record.thread_id = ThisThreadId();
  // Pop this span from the open stack (normally the top).
  for (size_t i = open_spans.size(); i > 0; --i) {
    if (open_spans[i - 1].tracer == tracer_ && open_spans[i - 1].id == id_) {
      open_spans.erase(open_spans.begin() + static_cast<ptrdiff_t>(i - 1));
      break;
    }
  }
  tracer_->CloseSpan(std::move(record));
  tracer_ = nullptr;
}

bool Tracer::EnvEnabled() {
  const char* v = std::getenv("XNFDB_TRACE");
  return v != nullptr && v[0] != '\0' && std::string(v) != "0";
}

std::string Tracer::EnvDumpPath() {
  const char* v = std::getenv("XNFDB_TRACE");
  if (v == nullptr || v[0] == '\0' || std::string(v) == "0") return "";
  if (std::string(v) == "1") return "xnfdb_trace.json";
  return v;
}

int64_t Tracer::NowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

int64_t Tracer::OpenSpan(int64_t* parent_out) {
  *parent_out = 0;
  for (size_t i = open_spans.size(); i > 0; --i) {
    if (open_spans[i - 1].tracer == this) {
      *parent_out = open_spans[i - 1].id;
      break;
    }
  }
  int64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  open_spans.push_back(OpenEntry{this, id});
  return id;
}

void Tracer::CloseSpan(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<SpanRecord> spans = Spans();
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) out << ",";
    out << "{\"name\":\"" << JsonEscape(s.name) << "\",\"ph\":\"X\""
        << ",\"ts\":" << s.start_us << ",\"dur\":" << s.dur_us
        << ",\"pid\":1,\"tid\":" << (s.thread_id % 1000000)
        << ",\"args\":{\"id\":" << s.id << ",\"parent\":" << s.parent_id
        << "}}";
  }
  out << "]}";
  return out.str();
}

}  // namespace obs
}  // namespace xnfdb
