#include "obs/flight_recorder.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"

namespace xnfdb {
namespace obs {

namespace {

int64_t WallUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Copies `src` into the fixed field `dst`, truncating, always NUL-padded.
template <size_t N>
void FillField(char (&dst)[N], std::string_view src) {
  size_t n = src.size() < N - 1 ? src.size() : N - 1;
  std::memcpy(dst, src.data(), n);
  std::memset(dst + n, 0, N - n);
}

template <size_t N>
bool FieldEquals(const char (&field)[N], std::string_view src) {
  size_t n = src.size() < N - 1 ? src.size() : N - 1;
  return std::strlen(field) == n && std::memcmp(field, src.data(), n) == 0;
}

// --- async-signal-safe text building (DumpTailUnsafe) ---------------------
// No snprintf: it is not on the POSIX async-signal-safe list.

size_t AppendRaw(char* buf, size_t buf_size, size_t pos, const char* s,
                 size_t n) {
  if (pos >= buf_size) return pos;
  size_t room = buf_size - 1 - pos;
  if (n > room) n = room;
  std::memcpy(buf + pos, s, n);
  return pos + n;
}

size_t AppendStr(char* buf, size_t buf_size, size_t pos, const char* s) {
  return AppendRaw(buf, buf_size, pos, s, std::strlen(s));
}

size_t AppendInt(char* buf, size_t buf_size, size_t pos, int64_t v) {
  char digits[24];
  size_t n = 0;
  bool neg = v < 0;
  uint64_t u = neg ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  do {
    digits[n++] = static_cast<char>('0' + u % 10);
    u /= 10;
  } while (u != 0 && n < sizeof(digits));
  if (neg) pos = AppendRaw(buf, buf_size, pos, "-", 1);
  while (n > 0) {
    --n;
    pos = AppendRaw(buf, buf_size, pos, &digits[n], 1);
  }
  return pos;
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      slots_(capacity == 0 ? 1 : capacity) {}

FlightRecorder& FlightRecorder::Default() {
  static FlightRecorder* recorder = [] {
    // Raw env reads on purpose: obs sits below common, so ParseEnvInt /
    // ParseEnvBool (and their warn-once diagnostics) are not linkable from
    // here. The Database constructor re-resolves both knobs through the
    // checked parsers and pushes the result back via set_enabled.
    size_t capacity = kDefaultCapacity;
    if (const char* raw = std::getenv("XNFDB_EVENT_RING")) {
      char* end = nullptr;
      long long v = std::strtoll(raw, &end, 10);
      if (end != raw && *end == '\0' && v >= 16 && v <= (1 << 20)) {
        capacity = static_cast<size_t>(v);
      }
    }
    auto* r = new FlightRecorder(capacity);  // never dies: see header
    if (const char* raw = std::getenv("XNFDB_EVENTS")) {
      if (std::strcmp(raw, "0") == 0) r->set_enabled(false);
    }
    return r;
  }();
  return *recorder;
}

void FlightRecorder::Record(std::string_view category,
                            std::string_view severity,
                            std::string_view message,
                            std::string_view detail) {
  if (!enabled()) return;
  const int64_t now_us = WallUs();
  std::lock_guard<std::mutex> lock(mu_);
  if (recorded_counter_ == nullptr) {
    recorded_counter_ =
        MetricsRegistry::Default().GetCounter("events.recorded");
    coalesced_counter_ =
        MetricsRegistry::Default().GetCounter("events.coalesced");
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
  recorded_counter_->Increment();

  const int64_t last = next_seq_.load(std::memory_order_relaxed);
  if (last > 0) {
    Slot& prev = slots_[static_cast<size_t>(last) % capacity_];
    if (prev.seq.load(std::memory_order_relaxed) == last &&
        FieldEquals(prev.category, category) &&
        FieldEquals(prev.severity, severity) &&
        FieldEquals(prev.message, message) &&
        FieldEquals(prev.detail, detail)) {
      // Identical to the newest event: fold in place. The slot goes
      // invisible (seq = -1) for the few stores in between so a concurrent
      // lock-free reader never sees a half-updated repeat count.
      prev.seq.store(-1, std::memory_order_release);
      prev.repeated += 1;
      prev.ts_us = now_us;
      prev.seq.store(last, std::memory_order_release);
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      coalesced_counter_->Increment();
      return;
    }
  }

  const int64_t seq = last + 1;
  Slot& slot = slots_[static_cast<size_t>(seq) % capacity_];
  slot.seq.store(-1, std::memory_order_release);  // retire the old event
  slot.ts_us = now_us;
  slot.repeated = 1;
  FillField(slot.category, category);
  FillField(slot.severity, severity);
  FillField(slot.message, message);
  FillField(slot.detail, detail);
  slot.seq.store(seq, std::memory_order_release);
  next_seq_.store(seq, std::memory_order_release);
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  const int64_t hi = next_seq_.load(std::memory_order_relaxed);
  int64_t lo = hi - static_cast<int64_t>(capacity_) + 1;
  if (lo < 1) lo = 1;
  out.reserve(static_cast<size_t>(hi - lo + 1));
  for (int64_t seq = lo; seq <= hi; ++seq) {
    const Slot& slot = slots_[static_cast<size_t>(seq) % capacity_];
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    Event e;
    e.seq = seq;
    e.ts_us = slot.ts_us;
    e.repeated = slot.repeated;
    e.category = slot.category;
    e.severity = slot.severity;
    e.message = slot.message;
    e.detail = slot.detail;
    out.push_back(std::move(e));
  }
  return out;
}

size_t FlightRecorder::DumpTailUnsafe(char* buf, size_t buf_size,
                                      size_t max_events) const {
  if (buf == nullptr || buf_size == 0) return 0;
  size_t pos = 0;
  const int64_t hi = next_seq_.load(std::memory_order_acquire);
  int64_t span = static_cast<int64_t>(
      max_events < capacity_ ? max_events : capacity_);
  int64_t lo = hi - span + 1;
  if (lo < 1) lo = 1;
  for (int64_t seq = lo; seq <= hi; ++seq) {
    const Slot& slot = slots_[static_cast<size_t>(seq) % capacity_];
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    // Copy out, then re-validate: a torn read (writer overwrote the slot
    // mid-copy) fails the second check and the event is skipped.
    Slot copy;
    copy.ts_us = slot.ts_us;
    copy.repeated = slot.repeated;
    std::memcpy(copy.category, slot.category, sizeof(copy.category));
    std::memcpy(copy.severity, slot.severity, sizeof(copy.severity));
    std::memcpy(copy.message, slot.message, sizeof(copy.message));
    std::memcpy(copy.detail, slot.detail, sizeof(copy.detail));
    if (slot.seq.load(std::memory_order_acquire) != seq) continue;
    copy.category[sizeof(copy.category) - 1] = '\0';
    copy.severity[sizeof(copy.severity) - 1] = '\0';
    copy.message[sizeof(copy.message) - 1] = '\0';
    copy.detail[sizeof(copy.detail) - 1] = '\0';

    pos = AppendStr(buf, buf_size, pos, "#");
    pos = AppendInt(buf, buf_size, pos, seq);
    pos = AppendStr(buf, buf_size, pos, " ts_us=");
    pos = AppendInt(buf, buf_size, pos, copy.ts_us);
    pos = AppendStr(buf, buf_size, pos, " [");
    pos = AppendStr(buf, buf_size, pos, copy.severity);
    pos = AppendStr(buf, buf_size, pos, "] ");
    pos = AppendStr(buf, buf_size, pos, copy.category);
    pos = AppendStr(buf, buf_size, pos, ": ");
    pos = AppendStr(buf, buf_size, pos, copy.message);
    if (copy.detail[0] != '\0') {
      pos = AppendStr(buf, buf_size, pos, " | ");
      pos = AppendStr(buf, buf_size, pos, copy.detail);
    }
    if (copy.repeated > 1) {
      pos = AppendStr(buf, buf_size, pos, " (x");
      pos = AppendInt(buf, buf_size, pos, copy.repeated);
      pos = AppendStr(buf, buf_size, pos, ")");
    }
    pos = AppendStr(buf, buf_size, pos, "\n");
    if (pos >= buf_size - 1) break;  // full
  }
  buf[pos] = '\0';
  return pos;
}

}  // namespace obs
}  // namespace xnfdb
