#include "obs/plan_feedback.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/statement_stats.h"

namespace xnfdb {
namespace obs {

namespace {

int64_t NowUnixUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string RewriteTrace::ToString() const {
  std::string out;
  char buf[256];
  int seq = 0;
  for (const RewriteEvent& e : events) {
    std::snprintf(buf, sizeof(buf),
                  "  #%-3d pass=%d %-24s %-8s rejected=%lld boxes=%d->%d "
                  "%lldus\n",
                  ++seq, e.pass, e.rule.c_str(),
                  e.fired ? "fired" : "no-match",
                  static_cast<long long>(e.rejected), e.boxes_before,
                  e.boxes_after, static_cast<long long>(e.wall_us));
    out += buf;
  }
  if (dropped > 0) {
    std::snprintf(buf, sizeof(buf), "  (+%lld events dropped)\n",
                  static_cast<long long>(dropped));
    out += buf;
  }
  return out;
}

double QError(double est, double actual) {
  double e = std::max(est, 1.0);
  double a = std::max(actual, 1.0);
  return std::max(e / a, a / e);
}

PlanFeedbackStore::Entry* PlanFeedbackStore::Find(uint64_t digest,
                                                  const std::string& text) {
  auto it = entries_.find(digest);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) {
      ++dropped_;
      return nullptr;
    }
    auto entry = std::make_unique<Entry>();
    entry->text = text;
    it = entries_.emplace(digest, std::move(entry)).first;
  }
  return it->second.get();
}

void PlanFeedbackStore::RecordCompile(uint64_t digest, const std::string& text,
                                      const RewriteTrace& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Find(digest, text);
  if (e == nullptr) return;
  ++e->compiles;
  e->trace = trace;
}

PlanFeedbackStore::PlanChange PlanFeedbackStore::RecordExecution(
    uint64_t digest, const std::string& text, uint64_t plan_hash,
    const std::string& plan_shape, int64_t execute_us,
    std::vector<OpFeedback> feedback) {
  const int64_t now_us = NowUnixUs();
  std::lock_guard<std::mutex> lock(mu_);
  Entry* e = Find(digest, text);
  PlanChange change;
  if (e == nullptr) return change;
  ++e->executions;
  change.executions = e->executions;

  // Cardinality feedback: keep the max_ops_ worst q-errors seen so far,
  // replacing a prior entry for the same (output, op) slot with whichever
  // observation is worse.
  for (OpFeedback& f : feedback) {
    if (f.est_rows < 0) continue;  // no estimate to compare
    bool merged = false;
    for (OpFeedback& w : e->worst) {
      if (w.output == f.output && w.op == f.op) {
        if (f.q_error > w.q_error) w = std::move(f);
        merged = true;
        break;
      }
    }
    if (!merged) e->worst.push_back(std::move(f));
  }
  std::sort(e->worst.begin(), e->worst.end(),
            [](const OpFeedback& a, const OpFeedback& b) {
              return a.q_error > b.q_error;
            });
  if (e->worst.size() > max_ops_) e->worst.resize(max_ops_);

  // Plan history.
  if (e->has_plan && e->current_plan != plan_hash) {
    change.changed = true;
    change.from = e->current_plan;
    change.to = plan_hash;
    ++e->plan_changes;
  }
  e->current_plan = plan_hash;
  e->has_plan = true;
  PlanRecord* rec = nullptr;
  for (PlanRecord& p : e->plans) {
    if (p.plan_hash == plan_hash) {
      rec = &p;
      break;
    }
  }
  if (rec == nullptr) {
    if (e->plans.size() >= max_plans_) {
      // Evict the plan least recently seen.
      auto oldest = std::min_element(e->plans.begin(), e->plans.end(),
                                     [](const PlanRecord& a,
                                        const PlanRecord& b) {
                                       return a.last_seen_us < b.last_seen_us;
                                     });
      e->plans.erase(oldest);
    }
    PlanRecord fresh;
    fresh.plan_hash = plan_hash;
    fresh.shape = plan_shape;
    fresh.first_seen_us = now_us;
    e->plans.push_back(std::move(fresh));
    rec = &e->plans.back();
  }
  rec->last_seen_us = now_us;
  ++rec->executions;
  rec->total_execute_us += execute_us;
  return change;
}

OpFeedback PlanFeedbackStore::TopMisestimate(uint64_t digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end() || it->second->worst.empty()) return OpFeedback{};
  return it->second->worst.front();
}

std::vector<PlanFeedbackSnapshot> PlanFeedbackStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PlanFeedbackSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [digest, entry] : entries_) {
    PlanFeedbackSnapshot snap;
    snap.digest = digest;
    snap.digest_hex = DigestHex(digest);
    snap.text = entry->text;
    snap.compiles = entry->compiles;
    snap.executions = entry->executions;
    snap.plan_changes = entry->plan_changes;
    snap.trace = entry->trace;
    snap.worst = entry->worst;
    snap.plans = entry->plans;
    snap.current_plan = entry->current_plan;
    out.push_back(std::move(snap));
  }
  return out;
}

size_t PlanFeedbackStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t PlanFeedbackStore::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void PlanFeedbackStore::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  dropped_ = 0;
}

}  // namespace obs
}  // namespace xnfdb
