#include "obs/query_profile.h"

#include "obs/statement_stats.h"

namespace xnfdb {
namespace obs {

const char* ClassifyOp(const std::string& op) {
  if (op == "scan" || op == "index_scan" || op == "range_scan" ||
      op == "virtual_scan" || op == "spool_read") {
    return "scan";
  }
  if (op == "hash_join" || op == "nl_join") return "join";
  if (op == "filter" || op == "exists") return "filter";
  return "other";
}

void QueryProfileStore::Record(uint64_t digest, const std::string& text,
                               const QueryProfile& profile) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) {
    if (entries_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    it = entries_.emplace(digest, std::make_unique<Entry>()).first;
    it->second->text = text;
  }
  Entry& e = *it->second;
  ++e.captures;
  e.total_wall_us += profile.wall_us;
  e.last = profile;
  for (const OpProfile& op : profile.ops) {
    const char* cls = ClassifyOp(op.op);
    if (cls[0] == 's') {
      e.classes.scan_us += op.self_us;
    } else if (cls[0] == 'j') {
      e.classes.join_us += op.self_us;
    } else if (cls[0] == 'f') {
      e.classes.filter_us += op.self_us;
    } else {
      e.classes.other_us += op.self_us;
    }
  }
}

std::vector<QueryProfileSnapshot> QueryProfileStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryProfileSnapshot> out;
  out.reserve(entries_.size());
  for (const auto& [digest, entry] : entries_) {
    QueryProfileSnapshot s;
    s.digest = digest;
    s.digest_hex = DigestHex(digest);
    s.text = entry->text;
    s.captures = entry->captures;
    s.total_wall_us = entry->total_wall_us;
    s.last = entry->last;
    s.scan_self_us = entry->classes.scan_us;
    s.join_self_us = entry->classes.join_us;
    s.filter_self_us = entry->classes.filter_us;
    s.other_self_us = entry->classes.other_us;
    out.push_back(std::move(s));
  }
  return out;
}

QueryProfileStore::ClassTotals QueryProfileStore::ClassSelfTimes(
    uint64_t digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) return ClassTotals{};
  return it->second->classes;
}

size_t QueryProfileStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t QueryProfileStore::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void QueryProfileStore::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  dropped_ = 0;
}

}  // namespace obs
}  // namespace xnfdb
