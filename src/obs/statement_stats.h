// Per-statement-shape execution statistics, in the spirit of
// pg_stat_statements: every statement the Database runs is fingerprinted
// (literals normalized to `?`, shape hashed to a 64-bit digest) and
// accumulated here under its digest. Each entry keeps call/error/row
// totals, min/max latency, and a full latency histogram so p50/p99 can be
// reported per shape.
//
// The store is bounded: once `capacity` distinct digests exist, statements
// with new digests are counted in `dropped()` instead of allocating — a
// plan-cache-style cap that keeps a hostile or ad-hoc workload from
// growing the store without bound. It is thread-safe (one mutex; Record is
// far off the per-tuple hot path — it runs once per statement).
//
// The contents surface through the `sys$statements` virtual system table
// (storage/sysview.h), and per-entry latency histograms through
// `sys$histograms` under the name `stmt.<digest>.us`.

#ifndef XNFDB_OBS_STATEMENT_STATS_H_
#define XNFDB_OBS_STATEMENT_STATS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace xnfdb {
namespace obs {

// Renders a statement digest the way it is surfaced everywhere (16 hex
// digits, zero padded).
std::string DigestHex(uint64_t digest);

// Point-in-time copy of one statement entry.
struct StatementSnapshot {
  uint64_t digest = 0;
  std::string digest_hex;
  std::string text;  // normalized statement text (literals are `?`)
  std::string kind;  // "query" | "dml" | "ddl"
  int64_t calls = 0;
  int64_t errors = 0;
  int64_t rows = 0;  // rows returned (queries) or affected (DML)
  int64_t total_us = 0;
  int64_t min_us = 0;
  int64_t max_us = 0;
  HistogramSnapshot latency;

  int64_t avg_us() const { return calls > 0 ? total_us / calls : 0; }
};

class StatementStore {
 public:
  explicit StatementStore(size_t capacity = 512) : capacity_(capacity) {}
  StatementStore(const StatementStore&) = delete;
  StatementStore& operator=(const StatementStore&) = delete;

  // Accumulates one execution of the statement shape `digest`. `text` and
  // `kind` are stored on first sight of the digest.
  void Record(uint64_t digest, const std::string& text,
              const std::string& kind, bool ok, int64_t rows,
              int64_t elapsed_us);

  // All entries, in digest order.
  std::vector<StatementSnapshot> Snapshot() const;

  // Cheap per-digest lookup for policy decisions (e.g. the matview store's
  // auto-materialization threshold): fills `*calls` / `*avg_us` and returns
  // true when the digest has an entry. Either out pointer may be null.
  bool Stats(uint64_t digest, int64_t* calls, int64_t* avg_us) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  // Statements whose (new) digest did not fit under `capacity`.
  int64_t dropped() const;

  void Reset();

 private:
  struct Entry {
    std::string text;
    std::string kind;
    int64_t calls = 0;
    int64_t errors = 0;
    int64_t rows = 0;
    int64_t total_us = 0;
    int64_t min_us = 0;
    int64_t max_us = 0;
    Histogram latency{Histogram::DefaultLatencyBoundsUs()};
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::map<uint64_t, std::unique_ptr<Entry>> entries_;
  int64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace xnfdb

#endif  // XNFDB_OBS_STATEMENT_STATS_H_
