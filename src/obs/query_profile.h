// Always-on per-query execution profiles.
//
// EXPLAIN ANALYZE gives exact per-operator actuals, but only when a human
// re-runs the query under instrumentation. This store keeps a cheap profile
// of *every* query as a side effect of normal execution: the per-operator
// row/batch/loop counters the operator wrappers maintain anyway, plus
// batch-granularity inclusive wall time (two clock reads per ~1k-row batch,
// not per row — the overhead budget is <= 5% of the execute phase), the
// morsel-worker breakdown, the query's memory high-water and its governor
// queue wait. The executor aggregates the finished operator trees by
// operator class into a QueryProfile; the Database captures it here keyed
// by statement fingerprint.
//
// Contents surface through `SYS$QUERY_PROFILES` (one row per operator class
// of the most recent capture, plus one row per morsel worker), and the
// per-class *self* times roll up into `SYS$STATEMENTS` — which is exactly
// the frequency-and-cost-over-time substrate server-side CO-view
// materialization (ROADMAP item 3) needs to choose what to materialize.
//
// Like StatementStore, the store is bounded: new digests beyond `capacity`
// are counted in dropped() instead of allocating.

#ifndef XNFDB_OBS_QUERY_PROFILE_H_
#define XNFDB_OBS_QUERY_PROFILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xnfdb {
namespace obs {

// Totals of one operator class within one query execution. `incl_us` is
// inclusive of children; `self_us` subtracts the children's inclusive time
// (clamped at zero). Wall times are batch-granularity: operators driven
// row-at-a-time (batch_size 1, or below a non-native-batch operator)
// contribute rows/loops but no time outside analyze mode.
struct OpProfile {
  std::string op;  // operator class ("scan", "hash_join", ...)
  int64_t loops = 0;
  int64_t rows = 0;
  int64_t batches = 0;
  int64_t incl_us = 0;
  int64_t self_us = 0;
};

// One morsel worker's share of a query (stable worker id = index in the
// worker pool, matching the "morsel-worker #<id>" trace spans).
struct WorkerProfile {
  int64_t worker = 0;
  int64_t rows = 0;     // rows the worker produced into morsel buckets
  int64_t morsels = 0;  // morsels it claimed
  int64_t wall_us = 0;  // the worker thread's wall time
};

// One captured execution.
struct QueryProfile {
  std::vector<OpProfile> ops;          // aggregated by class, sorted by op
  std::vector<WorkerProfile> workers;  // morsel workers, by id
  int64_t wall_us = 0;        // execute-phase wall time
  int64_t queue_wait_us = 0;  // governor admission wait
  int64_t peak_bytes = 0;     // QueryContext memory high-water
  int64_t rows_out = 0;
};

// Maps an operator class to the broad bucket SYS$STATEMENTS rolls self-time
// up into: "scan" | "join" | "filter" | "other".
const char* ClassifyOp(const std::string& op);

// Point-in-time copy of one store entry.
struct QueryProfileSnapshot {
  uint64_t digest = 0;
  std::string digest_hex;
  std::string text;  // normalized statement text
  int64_t captures = 0;
  int64_t total_wall_us = 0;  // across all captures
  QueryProfile last;          // most recent capture
  // Cumulative per-broad-class self time across all captures.
  int64_t scan_self_us = 0;
  int64_t join_self_us = 0;
  int64_t filter_self_us = 0;
  int64_t other_self_us = 0;
};

class QueryProfileStore {
 public:
  explicit QueryProfileStore(size_t capacity = 256) : capacity_(capacity) {}
  QueryProfileStore(const QueryProfileStore&) = delete;
  QueryProfileStore& operator=(const QueryProfileStore&) = delete;

  // Captures one execution of the statement shape `digest`. `text` is
  // stored on first sight.
  void Record(uint64_t digest, const std::string& text,
              const QueryProfile& profile);

  // All entries, in digest order.
  std::vector<QueryProfileSnapshot> Snapshot() const;

  // Cumulative per-broad-class self times of one digest (zeros when the
  // digest has no profile) — the SYS$STATEMENTS rollup.
  struct ClassTotals {
    int64_t scan_us = 0;
    int64_t join_us = 0;
    int64_t filter_us = 0;
    int64_t other_us = 0;
  };
  ClassTotals ClassSelfTimes(uint64_t digest) const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t dropped() const;
  void Reset();

 private:
  struct Entry {
    std::string text;
    int64_t captures = 0;
    int64_t total_wall_us = 0;
    QueryProfile last;
    ClassTotals classes;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::map<uint64_t, std::unique_ptr<Entry>> entries_;
  int64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace xnfdb

#endif  // XNFDB_OBS_QUERY_PROFILE_H_
