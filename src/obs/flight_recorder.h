// Incident flight recorder: a bounded, lock-light ring of structured
// events — the engine's black box. Subsystems that already detect trouble
// (warn+ log lines, query start/end, governor admissions/rejections/kills,
// watchdog stall flags, plan-change flips, writeback retries/failures, Env
// I/O errors) each record one event; the ring keeps the last N in sequence
// order so a crash report or `SELECT * FROM SYS$EVENTS` can answer "what
// was the engine doing just before this?".
//
// Design constraints, in order:
//  * the crash path must be able to read the ring from a signal handler —
//    no locks, no allocation. Slots are fixed-size POD published under a
//    per-slot seqlock: a reader that observes the same sequence number
//    before and after copying the slot has a consistent event; anything
//    else is skipped. `DumpTailUnsafe` is the async-signal-safe reader.
//  * recording must be cheap enough to leave on (events are rare — tens
//    per second at the very worst — so writers share one short mutex; the
//    disabled check is a single relaxed atomic load, which is what the CI
//    forensics-overhead gate measures via XNFDB_EVENTS=0 vs 1).
//  * repeated identical events coalesce in place: a run of byte-identical
//    (category, severity, message, detail) events bumps the newest event's
//    `repeated` count instead of flooding the ring — a wedged retry loop
//    leaves one event saying "xN", not N copies of itself.
//
// The process-wide instance (`Default()`) sizes its ring from
// XNFDB_EVENT_RING (default 1024 events) and starts disabled when
// XNFDB_EVENTS=0. Both are read with plain getenv here — obs sits below
// common, so the checked ParseEnvBool/ParseEnvInt re-resolution (with its
// warn-once behavior) happens in the Database constructor.

#ifndef XNFDB_OBS_FLIGHT_RECORDER_H_
#define XNFDB_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace xnfdb {
namespace obs {

class Counter;

class FlightRecorder {
 public:
  // Detached copy of one recorded event (Snapshot / SYS$EVENTS).
  struct Event {
    int64_t seq = 0;    // monotonic, 1-based; gaps never occur
    int64_t ts_us = 0;  // wall-clock microseconds (same clock as log lines)
    int64_t repeated = 1;  // identical consecutive occurrences folded in
    std::string category;  // feeding subsystem / log channel
    std::string severity;  // "info" | "warn" | "error"
    std::string message;
    std::string detail;  // free-form "k=v ..." context, may be empty
  };

  // Field capacities (bytes, including the NUL); longer inputs truncate.
  static constexpr size_t kCategoryBytes = 16;
  static constexpr size_t kSeverityBytes = 8;
  static constexpr size_t kMessageBytes = 96;
  static constexpr size_t kDetailBytes = 240;

  static constexpr size_t kDefaultCapacity = 1024;

  // The process-wide recorder every subsystem feeds (ring size
  // XNFDB_EVENT_RING; XNFDB_EVENTS=0 starts it disabled). Never destroyed:
  // event sites may run during process teardown.
  static FlightRecorder& Default();

  explicit FlightRecorder(size_t capacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Records one event (no-op while disabled). When category, severity,
  // message and detail are all byte-identical (after truncation) to the
  // newest recorded event, that event's `repeated` count and timestamp are
  // bumped instead of consuming a new slot — callers control coalescing
  // granularity by what they put in `detail`.
  void Record(std::string_view category, std::string_view severity,
              std::string_view message, std::string_view detail = {});

  // Every retained event, oldest first. Consistent: taken under the
  // writer mutex.
  std::vector<Event> Snapshot() const;

  // Async-signal-safe tail dump: renders up to `max_events` of the newest
  // events (oldest of them first) into `buf` as text lines, NUL-terminates,
  // and returns the byte length written (excluding the NUL). Reads slots
  // via the seqlock protocol only — no locks, no allocation — so a crash
  // handler may call it while a writer holds the mutex.
  size_t DumpTailUnsafe(char* buf, size_t buf_size, size_t max_events) const;

  size_t capacity() const { return capacity_; }
  // Sequence number of the newest event (0 when empty).
  int64_t last_seq() const {
    return next_seq_.load(std::memory_order_acquire);
  }
  // Events accepted / folded into a predecessor, over the recorder's life.
  int64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  int64_t coalesced() const {
    return coalesced_.load(std::memory_order_relaxed);
  }

 private:
  // One ring slot. `seq` is the publication word: 0 = never written,
  // -1 = mid-write, otherwise the event's sequence number. Event `s` lives
  // in slot `s % capacity`, so a reader can address any live sequence
  // number directly and validate it against the slot's published `seq`.
  struct Slot {
    std::atomic<int64_t> seq{0};
    int64_t ts_us = 0;
    int64_t repeated = 1;
    char category[kCategoryBytes] = {};
    char severity[kSeverityBytes] = {};
    char message[kMessageBytes] = {};
    char detail[kDetailBytes] = {};
  };

  const size_t capacity_;
  std::vector<Slot> slots_;
  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> next_seq_{0};  // newest published seq; writers hold mu_
  std::atomic<int64_t> recorded_{0};
  std::atomic<int64_t> coalesced_{0};
  mutable std::mutex mu_;  // serializes writers and Snapshot
  // Process-wide activity counters (events.recorded / events.coalesced);
  // null until first Record so construction order stays trivial.
  Counter* recorded_counter_ = nullptr;
  Counter* coalesced_counter_ = nullptr;
};

}  // namespace obs
}  // namespace xnfdb

#endif  // XNFDB_OBS_FLIGHT_RECORDER_H_
