// RAII scope for one query-lifecycle phase (parse, semantics, xnf_rewrite,
// nf_rewrite, plan, execute, deliver): opens a tracing span named after the
// phase and, on exit, observes the elapsed wall time into the
// `phase.<name>.us` latency histogram. Both sinks are optional; a PhaseScope
// with null tracer and null registry costs two clock reads.

#ifndef XNFDB_OBS_PHASE_H_
#define XNFDB_OBS_PHASE_H_

#include <chrono>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace xnfdb {
namespace obs {

class PhaseScope {
 public:
  PhaseScope(Tracer* tracer, MetricsRegistry* metrics, const std::string& name)
      : metrics_(metrics),
        name_(name),
        t0_(std::chrono::steady_clock::now()) {
    if (tracer != nullptr) span_ = tracer->StartSpan(name);
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  ~PhaseScope() {
    span_.End();
    if (metrics_ == nullptr) return;
    int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - t0_)
                     .count();
    metrics_->GetHistogram("phase." + name_ + ".us")->Observe(us);
  }

 private:
  MetricsRegistry* metrics_;
  std::string name_;
  std::chrono::steady_clock::time_point t0_;
  Span span_;
};

}  // namespace obs
}  // namespace xnfdb

#endif  // XNFDB_OBS_PHASE_H_
