// Plan-quality observability: rewrite-rule traces, cardinality feedback and
// plan-change history.
//
// Three concerns share this store because they share a key (the statement
// fingerprint digest) and a lifecycle (captured as a side effect of normal
// compile/execute, always on, bounded):
//
//  1. Rewrite traces. The QGM rule engine records one RewriteEvent per rule
//     application attempt — fired or not, how many candidate matches the
//     rule rejected, wall time, live box count before/after. The trace of
//     the most recent compile per digest surfaces as `SYS$REWRITES` and as
//     EXPLAIN REWRITE's ordered rule log.
//
//  2. Cardinality feedback. The planner stamps its estimated row count on
//     every physical operator; at query end the executor joins estimates
//     against the actuals the operator wrappers already maintain and
//     computes the per-operator q-error max(est/actual, actual/est). The
//     worst offenders per digest surface as `SYS$PLAN_FEEDBACK` and
//     annotate slow-query-log lines.
//
//  3. Plan-change detection. Each execution hashes its physical plan shape
//     (operator kinds + access paths, no literals); per digest the store
//     keeps a bounded history of distinct plan hashes with first/last seen,
//     execution counts and mean execute time (`SYS$PLAN_HISTORY`). A flip —
//     an execution whose plan hash differs from the previous one — is
//     reported to the caller so it can log one structured warn line.
//
// Everything here is plain strings and integers: obs sits below qgm and
// exec in the library order, so the rewrite engine, planner, executor and
// sysview providers can all depend on these types.
//
// Like the other obs stores, bounded: new digests beyond `capacity` count
// in dropped() instead of allocating; per-entry vectors are truncated to
// small fixed maxima.

#ifndef XNFDB_OBS_PLAN_FEEDBACK_H_
#define XNFDB_OBS_PLAN_FEEDBACK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xnfdb {
namespace obs {

// One rewrite-rule application attempt (one Apply call, or one monolithic
// semantic-rewrite phase reported as a pseudo-rule).
struct RewriteEvent {
  std::string rule;
  int pass = 0;          // 1-based rule-engine pass; 0 = pre-engine phase
  bool fired = false;    // did the rule change the graph
  int64_t rejected = 0;  // candidate matches inspected and declined
  int64_t wall_us = 0;
  int boxes_before = 0;  // live (non-dead) QGM boxes before the attempt
  int boxes_after = 0;
};

// The ordered rule log of one compile. Bounded: events beyond `capacity`
// are counted in `dropped` instead of stored.
struct RewriteTrace {
  size_t capacity = 256;
  std::vector<RewriteEvent> events;
  int64_t dropped = 0;

  void Add(RewriteEvent event) {
    if (events.size() >= capacity) {
      ++dropped;
      return;
    }
    events.push_back(std::move(event));
  }

  // The EXPLAIN REWRITE rendering: one line per event, in order.
  std::string ToString() const;
};

// The q-error of an estimate: max(est/actual, actual/est), both clamped to
// >= 1 row first so the zero edges stay finite (QError(0, 0) == 1,
// QError(0, n) == n). Always >= 1; 1 means exact.
double QError(double est, double actual);

// One operator's estimated-vs-actual comparison within one execution.
struct OpFeedback {
  std::string output;  // output stream the operator belongs to
  std::string op;      // operator class ("scan", "hash_join", ...)
  double est_rows = -1.0;  // < 0: planner provided no estimate
  int64_t actual_rows = 0;
  int64_t loops = 0;
  double q_error = 0.0;
};

// One distinct physical plan of a statement shape.
struct PlanRecord {
  uint64_t plan_hash = 0;
  std::string shape;  // "OUT=op(op(scan:T));..." — no literals
  int64_t first_seen_us = 0;  // unix micros
  int64_t last_seen_us = 0;
  int64_t executions = 0;
  int64_t total_execute_us = 0;

  int64_t mean_execute_us() const {
    return executions > 0 ? total_execute_us / executions : 0;
  }
};

// Point-in-time copy of one store entry.
struct PlanFeedbackSnapshot {
  uint64_t digest = 0;
  std::string digest_hex;
  std::string text;  // normalized statement text
  int64_t compiles = 0;
  int64_t executions = 0;
  int64_t plan_changes = 0;  // executions whose plan differed from the last
  RewriteTrace trace;        // most recent compile's rule log
  std::vector<OpFeedback> worst;  // worst q-error first
  std::vector<PlanRecord> plans;  // distinct plans, most recent last-seen last
  uint64_t current_plan = 0;      // plan hash of the most recent execution
};

class PlanFeedbackStore {
 public:
  explicit PlanFeedbackStore(size_t capacity = 256, size_t max_ops = 8,
                             size_t max_plans = 8)
      : capacity_(capacity), max_ops_(max_ops), max_plans_(max_plans) {}
  PlanFeedbackStore(const PlanFeedbackStore&) = delete;
  PlanFeedbackStore& operator=(const PlanFeedbackStore&) = delete;

  // Captures one compile of the statement shape `digest`: replaces the
  // stored rewrite trace with this compile's. `text` is stored on first
  // sight.
  void RecordCompile(uint64_t digest, const std::string& text,
                     const RewriteTrace& trace);

  // What RecordExecution observed about plan stability.
  struct PlanChange {
    bool changed = false;  // plan hash differs from the previous execution
    uint64_t from = 0;
    uint64_t to = 0;
    int64_t executions = 0;  // total executions of the digest so far
  };

  // Captures one execution: folds `feedback` into the per-digest worst-
  // offender list (sorted by q-error, truncated to max_ops) and accounts
  // the plan hash in the plan history (evicting the oldest-seen plan past
  // max_plans). Returns whether the plan flipped relative to the previous
  // execution of this digest.
  PlanChange RecordExecution(uint64_t digest, const std::string& text,
                             uint64_t plan_hash, const std::string& plan_shape,
                             int64_t execute_us,
                             std::vector<OpFeedback> feedback);

  // The worst misestimate recorded for `digest` (empty-op OpFeedback when
  // none) — the slow-query-log annotation.
  OpFeedback TopMisestimate(uint64_t digest) const;

  // All entries, in digest order.
  std::vector<PlanFeedbackSnapshot> Snapshot() const;

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t dropped() const;
  void Reset();

 private:
  struct Entry {
    std::string text;
    int64_t compiles = 0;
    int64_t executions = 0;
    int64_t plan_changes = 0;
    RewriteTrace trace;
    std::vector<OpFeedback> worst;
    std::vector<PlanRecord> plans;
    uint64_t current_plan = 0;
    bool has_plan = false;
  };

  // Looks up (or creates, capacity permitting) the entry; requires mu_.
  Entry* Find(uint64_t digest, const std::string& text);

  mutable std::mutex mu_;
  size_t capacity_;
  size_t max_ops_;
  size_t max_plans_;
  std::map<uint64_t, std::unique_ptr<Entry>> entries_;
  int64_t dropped_ = 0;
};

}  // namespace obs
}  // namespace xnfdb

#endif  // XNFDB_OBS_PLAN_FEEDBACK_H_
