// Query-lifecycle tracing: hierarchical spans over
// parse → semantics → XNF rewrite → NF rewrite → plan → execute → deliver.
//
// A `Tracer` collects completed spans; a `Span` is an RAII handle that
// measures wall time from construction to End()/destruction and records
// itself into its tracer. Nesting is tracked per thread (a span started
// while another span of the same tracer is open on the same thread becomes
// its child), so parallel executor workers produce correctly-parented
// per-output spans.
//
// The collected trace renders as Chrome `trace_event` JSON (load via
// chrome://tracing or https://ui.perfetto.dev). Setting the environment
// variable `XNFDB_TRACE` turns tracing on for every `Database` constructed
// afterwards; when its value looks like a path (anything but "0"/"1"), the
// Database dumps the trace there on destruction.

#ifndef XNFDB_OBS_TRACE_H_
#define XNFDB_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace xnfdb {
namespace obs {

// One completed span.
struct SpanRecord {
  std::string name;
  int64_t id = 0;
  int64_t parent_id = 0;  // 0 = root
  int64_t start_us = 0;   // relative to the tracer's epoch
  int64_t dur_us = 0;
  uint64_t thread_id = 0;
};

class Tracer;

// RAII span. Movable, not copyable. A span created from a disabled (or
// null) tracer is a no-op with near-zero cost.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string name);
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  // Completes the span (idempotent).
  void End();
  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  int64_t id_ = 0;
  int64_t parent_id_ = 0;
  int64_t start_us_ = 0;
};

class Tracer {
 public:
  // A tracer starts enabled or disabled; a disabled tracer hands out no-op
  // spans. `Tracer(FromEnv{})` follows XNFDB_TRACE.
  struct FromEnv {};
  explicit Tracer(bool enabled = true) : enabled_(enabled) {}
  explicit Tracer(FromEnv) : Tracer(EnvEnabled()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  // True when XNFDB_TRACE is set to anything but "" or "0".
  static bool EnvEnabled();
  // The dump path implied by XNFDB_TRACE: its value when it names a file,
  // "xnfdb_trace.json" when it is just a truthy flag, "" when unset.
  static std::string EnvDumpPath();

  Span StartSpan(std::string name) { return Span(this, std::move(name)); }

  // Completed spans so far, in completion order.
  std::vector<SpanRecord> Spans() const;
  void Clear();

  // Chrome trace_event JSON ("X" complete events; span hierarchy is
  // recoverable from the args.parent ids and the timestamps).
  std::string ChromeTraceJson() const;

 private:
  friend class Span;

  // Microseconds since this tracer's construction.
  int64_t NowUs() const;
  // Span bookkeeping used by the Span handle.
  int64_t OpenSpan(int64_t* parent_out);
  void CloseSpan(SpanRecord record);

  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  bool enabled_ = true;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::atomic<int64_t> next_id_{1};
};

}  // namespace obs
}  // namespace xnfdb

#endif  // XNFDB_OBS_TRACE_H_
