#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace xnfdb {
namespace obs {

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (bounds.empty()) {
    *this = other;
    return;
  }
  if (other.bounds != bounds || other.buckets.size() != buckets.size()) {
    return;  // incompatible shapes: merging would misattribute counts
  }
  for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0;
  double target = q * static_cast<double>(count);
  if (target < 1.0) target = 1.0;
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    int64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target) {
      if (i >= bounds.size()) {
        // Overflow bucket: no upper bound to interpolate against.
        return bounds.empty() ? 0 : bounds.back() + 1;
      }
      // Interpolate linearly within the covering bucket (lo, hi]: assume
      // observations are uniform across it, so the quantile sits at the
      // target rank's fraction of the bucket width — not snapped to the
      // bucket's upper bound.
      int64_t lo = i == 0 ? 0 : bounds[i - 1];
      int64_t hi = bounds[i];
      double frac = (target - static_cast<double>(before)) /
                    static_cast<double>(buckets[i]);
      return lo + static_cast<int64_t>(
                      frac * static_cast<double>(hi - lo) + 0.5);
    }
  }
  return bounds.empty() ? 0 : bounds.back() + 1;
}

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

const std::vector<int64_t>& Histogram::DefaultLatencyBoundsUs() {
  static const std::vector<int64_t> kBounds = {
      1,      2,      5,      10,      20,      50,      100,     200,
      500,    1000,   2000,   5000,    10000,   20000,   50000,   100000,
      200000, 500000, 1000000, 2000000, 5000000, 10000000};
  return kBounds;
}

void Histogram::Observe(int64_t value) {
  size_t i = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) {
    snap.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

namespace {

// JSON string escaping for metric names (which are plain identifiers today,
// but don't rely on it).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out += (c == '.' || c == '-') ? '_' : c;
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << v;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":" << v;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"count\":" << h.count
        << ",\"sum\":" << h.sum << ",\"p50\":" << h.Quantile(0.5)
        << ",\"p99\":" << h.Quantile(0.99) << ",\"buckets\":[";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"le\":";
      if (i < h.bounds.size()) {
        out << h.bounds[i];
      } else {
        out << "\"+Inf\"";
      }
      out << ",\"count\":" << h.buckets[i] << "}";
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters) {
    std::string p = PromName(name);
    out << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    std::string p = PromName(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << v << "\n";
  }
  for (const auto& [name, h] : histograms) {
    std::string p = PromName(name);
    out << "# TYPE " << p << " histogram\n";
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      out << p << "_bucket{le=\"";
      if (i < h.bounds.size()) {
        out << h.bounds[i];
      } else {
        out << "+Inf";
      }
      out << "\"} " << cumulative << "\n";
    }
    out << p << "_sum " << h.sum << "\n" << p << "_count " << h.count << "\n";
  }
  return out.str();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsUs();
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->Snapshot();
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace xnfdb
