#include "obs/sampler.h"

#include <utility>

namespace xnfdb {
namespace obs {

MetricsSampler::MetricsSampler(MetricsRegistry* registry, Options options)
    : registry_(registry),
      options_(options),
      samples_counter_(registry->GetCounter("sampler.samples")),
      evictions_counter_(registry->GetCounter("sampler.evictions")) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void MetricsSampler::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  stop_requested_ = false;
}

bool MetricsSampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void MetricsSampler::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (options_.interval_ms <= 0) {
      // Manual-only mode: the thread idles; samples come from SampleNow.
      cv_.wait(lock, [this] { return stop_requested_; });
      break;
    }
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    std::vector<Row> rows = TakeSampleLocked();
    lock.unlock();
    NotifySample(rows);
    lock.lock();
  }
}

void MetricsSampler::SampleNow() {
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows = TakeSampleLocked();
  }
  NotifySample(rows);
}

void MetricsSampler::SetOnSample(OnSample callback) {
  std::lock_guard<std::mutex> lock(callback_mu_);
  on_sample_ = std::move(callback);
}

void MetricsSampler::NotifySample(const std::vector<Row>& rows) {
  OnSample callback;
  {
    std::lock_guard<std::mutex> lock(callback_mu_);
    callback = on_sample_;
  }
  if (callback) callback(rows);
}

void MetricsSampler::AppendSeries(Sample* sample, const std::string& name,
                                  const char* kind, int64_t value,
                                  bool rated, int64_t dt_us) {
  Row row;
  row.sample_ts_us = sample->ts_us;
  row.name = name;
  row.kind = kind;
  row.value = value;
  auto [it, first] = prev_.try_emplace(name, value);
  row.delta = first ? value : value - it->second;
  it->second = value;
  if (rated && !first && dt_us > 0) {
    row.rate_per_s = row.delta * 1'000'000 / dt_us;
  }
  sample->rows.push_back(std::move(row));
}

std::vector<MetricsSampler::Row> MetricsSampler::TakeSampleLocked() {
  MetricsSnapshot snap = registry_->Snapshot();
  Sample sample;
  sample.ts_us = NowUs();
  const int64_t dt_us = prev_ts_us_ < 0 ? 0 : sample.ts_us - prev_ts_us_;
  prev_ts_us_ = sample.ts_us;
  sample.rows.reserve(snap.counters.size() + snap.gauges.size() +
                      snap.histograms.size() * 3);
  for (const auto& [name, v] : snap.counters) {
    AppendSeries(&sample, name, "counter", v, /*rated=*/true, dt_us);
  }
  for (const auto& [name, v] : snap.gauges) {
    AppendSeries(&sample, name, "gauge", v, /*rated=*/false, dt_us);
  }
  for (const auto& [name, h] : snap.histograms) {
    AppendSeries(&sample, name + ".count", "counter", h.count,
                 /*rated=*/true, dt_us);
    AppendSeries(&sample, name + ".p50", "gauge", h.Quantile(0.5),
                 /*rated=*/false, dt_us);
    AppendSeries(&sample, name + ".p99", "gauge", h.Quantile(0.99),
                 /*rated=*/false, dt_us);
  }
  std::vector<Row> rows = sample.rows;  // callback copy, used outside mu_
  ring_.push_back(std::move(sample));
  ++samples_;
  samples_counter_->Increment();
  while (ring_.size() > options_.ring_capacity) {
    ring_.pop_front();
    ++evictions_;
    evictions_counter_->Increment();
  }
  return rows;
}

std::vector<MetricsSampler::Row> MetricsSampler::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Row> out;
  size_t total = 0;
  for (const Sample& s : ring_) total += s.rows.size();
  out.reserve(total);
  for (const Sample& s : ring_) {
    out.insert(out.end(), s.rows.begin(), s.rows.end());
  }
  return out;
}

int64_t MetricsSampler::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

int64_t MetricsSampler::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

size_t MetricsSampler::ring_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

}  // namespace obs
}  // namespace xnfdb
