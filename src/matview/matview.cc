#include "matview/matview.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "common/str_util.h"
#include "exec/query_context.h"
#include "obs/flight_recorder.h"
#include "obs/statement_stats.h"
#include "optimizer/planner.h"

namespace xnfdb {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Tuple ProjectCols(const Tuple& row, const std::vector<int>& cols) {
  Tuple out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(row[c]);
  return out;
}

bool ExprHasAgg(const qgm::Expr& e) {
  if (e.kind == qgm::Expr::Kind::kAgg) return true;
  if (e.lhs != nullptr && ExprHasAgg(*e.lhs)) return true;
  if (e.rhs != nullptr && ExprHasAgg(*e.rhs)) return true;
  return false;
}

// Every base table reachable from `box_id`, through F- and E-quantifiers
// and union inputs alike.
void CollectTables(const qgm::QueryGraph& g, int box_id,
                   std::set<std::string>* out) {
  const qgm::Box* box = g.box(box_id);
  if (box == nullptr) return;
  if (box->kind == qgm::BoxKind::kBaseTable) {
    out->insert(box->table_name);
    return;
  }
  for (const qgm::Quantifier& q : box->quants) CollectTables(g, q.box_id, out);
  for (int in : box->union_inputs) CollectTables(g, in, out);
}

// Reference profile of one output subtree, the input to the per-table
// delta rules: how many times each base table is reached through pure
// F-quantifier paths, which tables appear anywhere under an E-quantifier,
// and whether the subtree contains a construct no delta rule handles.
struct OutputRefs {
  std::map<std::string, int> f_refs;
  std::set<std::string> e_refs;
  bool poisoned = false;  // distinct/group/order/limit/union/aggregate
};

void WalkOutput(const qgm::QueryGraph& g, int box_id, OutputRefs* r) {
  const qgm::Box* box = g.box(box_id);
  if (box == nullptr) {
    r->poisoned = true;
    return;
  }
  switch (box->kind) {
    case qgm::BoxKind::kBaseTable:
      ++r->f_refs[box->table_name];
      return;
    case qgm::BoxKind::kSelect: {
      if (box->distinct || !box->group_by.empty() || !box->order_by.empty() ||
          box->limit >= 0 || box->offset > 0) {
        r->poisoned = true;
      }
      for (const qgm::HeadColumn& h : box->head) {
        if (h.expr != nullptr && ExprHasAgg(*h.expr)) {
          r->poisoned = true;
          break;
        }
      }
      for (const qgm::Quantifier& q : box->quants) {
        if (q.kind == qgm::QuantKind::kForeach) {
          WalkOutput(g, q.box_id, r);
        } else {
          CollectTables(g, q.box_id, &r->e_refs);
        }
      }
      return;
    }
    case qgm::BoxKind::kUnion:
      r->poisoned = true;
      for (int in : box->union_inputs) CollectTables(g, in, &r->e_refs);
      return;
    default:
      r->poisoned = true;
      CollectTables(g, box_id, &r->e_refs);
      return;
  }
}

}  // namespace

MatViewConfig MatViewConfig::FromEnv() {
  MatViewConfig c;
  c.enabled = ParseEnvBool("XNFDB_MATVIEWS", true);
  c.auto_calls = ParseEnvInt("XNFDB_MATVIEW_AUTO_CALLS", 1, 1 << 30, 2);
  c.auto_min_avg_us =
      ParseEnvInt("XNFDB_MATVIEW_AUTO_US", 0, int64_t{1} << 40, 0);
  c.max_views = static_cast<size_t>(
      ParseEnvInt("XNFDB_MATVIEW_MAX", 1, 1 << 20, 32));
  c.max_rows =
      ParseEnvInt("XNFDB_MATVIEW_MAX_ROWS", 1, int64_t{1} << 40, 1 << 20);
  return c;
}

MatViewStore::MatViewStore(const MatViewConfig& config,
                           obs::MetricsRegistry* metrics)
    : config_(config),
      enabled_(config.enabled),
      metrics_(metrics),
      hits_(metrics->GetCounter("matview.hits")),
      misses_(metrics->GetCounter("matview.misses")),
      materializations_(metrics->GetCounter("matview.materializations")),
      full_refreshes_(metrics->GetCounter("matview.full_refreshes")),
      delta_applies_(metrics->GetCounter("matview.delta_applies")),
      delta_rows_(metrics->GetCounter("matview.delta_rows")),
      fallbacks_(metrics->GetCounter("matview.fallbacks")),
      rejects_(metrics->GetCounter("matview.rejects")),
      invalidations_(metrics->GetCounter("matview.invalidations")),
      count_gauge_(metrics->GetGauge("matview.count")),
      rows_gauge_(metrics->GetGauge("matview.rows")),
      bytes_gauge_(metrics->GetGauge("matview.bytes")),
      stale_gauge_(metrics->GetGauge("matview.stale")) {}

bool MatViewStore::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void MatViewStore::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

bool MatViewStore::TryServe(uint64_t digest, ServeHandle* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  // Shapes the store has never seen are not misses — only a known entry
  // that cannot serve (stale, or the store is disabled) counts.
  if (it == entries_.end()) return false;
  if (!enabled_ || !it->second.fresh || it->second.data == nullptr) {
    misses_->Increment();
    return false;
  }
  ++it->second.hits;
  hits_->Increment();
  out->name = it->second.name;
  out->data = it->second.data;
  return true;
}

bool MatViewStore::Peek(uint64_t digest, ServeHandle* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end() || !enabled_ || !it->second.fresh ||
      it->second.data == nullptr) {
    return false;
  }
  out->name = it->second.name;
  out->data = it->second.data;
  return true;
}

bool MatViewStore::WantCapture(uint64_t digest, int64_t prior_calls,
                               int64_t prior_avg_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return false;
  auto it = entries_.find(digest);
  // A known entry that did not serve is stale (or empty-pinned): refresh.
  if (it != entries_.end()) return !it->second.fresh;
  if (entries_.size() >= config_.max_views) return false;
  return prior_calls + 1 >= config_.auto_calls &&
         prior_avg_us >= config_.auto_min_avg_us;
}

Status MatViewStore::Store(uint64_t digest, const std::string& text,
                           const Catalog& catalog,
                           std::shared_ptr<qgm::QueryGraph> graph,
                           const QueryResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) {
    return Status::Unsupported("materialized views are disabled");
  }
  if (graph == nullptr) return Status::Internal("matview: no query graph");
  if (static_cast<int64_t>(result.stream.size()) > config_.max_rows) {
    rejects_->Increment();
    return Status::ResourceExhausted(
        "matview: result exceeds XNFDB_MATVIEW_MAX_ROWS (" +
        std::to_string(config_.max_rows) + ")");
  }
  auto it = entries_.find(digest);
  const bool existed = it != entries_.end();
  if (!existed && entries_.size() >= config_.max_views) {
    rejects_->Increment();
    return Status::ResourceExhausted(
        "matview: store is full (XNFDB_MATVIEW_MAX)");
  }

  Entry e;
  if (existed) {
    // Keep the identity and lifetime counters; analysis and data are
    // rebuilt from this execution.
    const Entry& old = it->second;
    e.name = old.name;
    e.pinned = old.pinned;
    e.hits = old.hits;
    e.delta_applies = old.delta_applies;
    e.delta_rows = old.delta_rows;
    e.full_refreshes = old.full_refreshes;
    e.fallbacks = old.fallbacks;
    e.created_us = old.created_us;
  } else {
    e.name = "AUTO$" + obs::DigestHex(digest).substr(0, 12);
  }
  e.digest = digest;
  e.text = text;
  if (e.created_us == 0) e.created_us = NowUs();

  // Delta-eligibility analysis over the compiled graph.
  const qgm::Box* top = graph->box(graph->top_box_id());
  if (top == nullptr || top->kind != qgm::BoxKind::kTop) {
    return Status::Internal("matview: compiled graph has no top box");
  }
  if (top->outputs.size() != result.outputs.size()) {
    return Status::Internal("matview: graph/result output mismatch");
  }
  std::vector<OutputRefs> refs(top->outputs.size());
  for (size_t i = 0; i < top->outputs.size(); ++i) {
    WalkOutput(*graph, top->outputs[i].box_id, &refs[i]);
  }
  for (const OutputRefs& r : refs) {
    for (const auto& [t, n] : r.f_refs) e.tables.insert(t);
    e.tables.insert(r.e_refs.begin(), r.e_refs.end());
  }
  for (const std::string& t : e.tables) {
    if (catalog.HasVirtualTable(t) || !catalog.HasTable(t)) {
      rejects_->Increment();
      return Status::Unsupported("matview: shape reads non-base table " + t);
    }
  }
  for (const std::string& t : e.tables) {
    bool eligible = true;
    std::vector<int> outs;
    for (size_t i = 0; i < refs.size(); ++i) {
      auto fit = refs[i].f_refs.find(t);
      int f = fit == refs[i].f_refs.end() ? 0 : fit->second;
      bool in_e = refs[i].e_refs.count(t) > 0;
      if (f == 0 && !in_e) continue;  // output unaffected by DML on t
      if (f == 1 && !in_e && !refs[i].poisoned) {
        outs.push_back(static_cast<int>(i));
        continue;
      }
      eligible = false;
      break;
    }
    if (eligible) {
      e.delta_outputs[t] = std::move(outs);
    } else {
      e.delta_ineligible.insert(t);
    }
  }

  // Lift the execution's answer set into the stored layout.
  auto data = std::make_shared<MatViewData>();
  data->outputs.resize(result.outputs.size());
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    data->outputs[i].desc = result.outputs[i];
    data->outputs[i].xnf_component = top->outputs[i].xnf_component;
  }
  for (const StreamItem& item : result.stream) {
    MatViewOutputData& od = data->outputs[item.output];
    if (item.kind == StreamItem::Kind::kRow) {
      od.rows.push_back(item.values);
      od.tids.push_back(item.tid);
      if (item.tid >= od.next_tid) od.next_tid = item.tid + 1;
      if (od.xnf_component) od.content_tids.emplace(item.values, item.tid);
      data->bytes += ApproxTupleBytes(item.values) + 8;
    } else {
      od.conns.push_back(item.tids);
      data->bytes += 8 * static_cast<int64_t>(item.tids.size());
    }
    ++data->total_rows;
  }
  for (const auto& [oi, counts] : result.component_counts) {
    data->outputs[oi].counts = counts;
  }
  for (const auto& [oi, counts] : result.connection_counts) {
    data->outputs[oi].conn_counts = counts;
  }
  // Executions captured without dedup counts (defensive — the Database
  // always collects them when materializing): every stored row counts one.
  for (MatViewOutputData& od : data->outputs) {
    if (od.xnf_component && od.counts.empty()) {
      for (TupleId tid : od.tids) od.counts[tid] = 1;
    }
    if (od.desc.is_connection && od.conn_counts.empty()) {
      for (const std::vector<TupleId>& c : od.conns) od.conn_counts[c] = 1;
    }
  }

  e.graph = std::move(graph);
  e.data = std::move(data);
  e.fresh = true;
  e.refreshed_us = NowUs();
  if (existed) {
    ++e.full_refreshes;
    full_refreshes_->Increment();
    it->second = std::move(e);
  } else {
    materializations_->Increment();
    entries_.emplace(digest, std::move(e));
  }
  UpdateGaugesLocked();
  return Status::Ok();
}

Status MatViewStore::Pin(const std::string& name, uint64_t digest,
                         const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) {
    return Status::Unsupported(
        "materialized views are disabled (XNFDB_MATVIEWS=0)");
  }
  // One name names one materialization: a re-MATERIALIZE after the view
  // was redefined (new digest) replaces the old entry.
  for (auto iter = entries_.begin(); iter != entries_.end();) {
    if (iter->second.name == name && iter->first != digest) {
      iter = entries_.erase(iter);
    } else {
      ++iter;
    }
  }
  auto it = entries_.find(digest);
  if (it != entries_.end()) {
    it->second.pinned = true;
    it->second.name = name;
    UpdateGaugesLocked();
    return Status::Ok();
  }
  if (entries_.size() >= config_.max_views) {
    rejects_->Increment();
    return Status::ResourceExhausted(
        "matview: store is full (XNFDB_MATVIEW_MAX)");
  }
  Entry e;
  e.name = name;
  e.digest = digest;
  e.text = text;
  e.pinned = true;
  e.created_us = NowUs();
  entries_.emplace(digest, std::move(e));
  UpdateGaugesLocked();
  return Status::Ok();
}

bool MatViewStore::Dematerialize(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.name == name) {
      entries_.erase(it);
      invalidations_->Increment();
      UpdateGaugesLocked();
      return true;
    }
  }
  return false;
}

void MatViewStore::OnBaseTableDml(const Catalog& catalog,
                                  const std::string& table,
                                  const std::vector<Tuple>& inserted,
                                  const std::vector<Tuple>& deleted) {
  if (inserted.empty() && deleted.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return;
  bool changed = false;
  for (auto& [digest, e] : entries_) {
    if (!e.fresh || e.tables.count(table) == 0) continue;
    changed = true;
    if (!enabled_ || e.delta_ineligible.count(table) > 0) {
      e.fresh = false;
      ++e.fallbacks;
      fallbacks_->Increment();
      obs::FlightRecorder::Default().Record(
          "matview", "info", "matview marked stale",
          "name=" + e.name + " table=" + table);
      continue;
    }
    Status s = ApplyDeltaLocked(catalog, &e, table, inserted, deleted);
    if (!s.ok()) {
      e.fresh = false;
      ++e.fallbacks;
      fallbacks_->Increment();
      obs::FlightRecorder::Default().Record(
          "matview", "warn", "matview delta failed",
          "name=" + e.name + " table=" + table + " error=" + s.message());
    }
  }
  if (changed) UpdateGaugesLocked();
}

Status MatViewStore::ApplyDeltaLocked(const Catalog& catalog, Entry* e,
                                      const std::string& table,
                                      const std::vector<Tuple>& inserted,
                                      const std::vector<Tuple>& deleted) {
  auto oit = e->delta_outputs.find(table);
  if (oit == e->delta_outputs.end()) {
    return Status::Internal("matview: no delta rule for table " + table);
  }
  const std::vector<int>& affected = oit->second;
  if (e->graph == nullptr || e->data == nullptr) {
    return Status::Internal("matview: entry has no graph");
  }
  XNFDB_ASSIGN_OR_RETURN(Table * base, catalog.GetTable(table));
  const qgm::Box* top = e->graph->box(e->graph->top_box_id());

  // Re-plan each affected output box with the DML'd table substituted by a
  // transient delta table (no indexes — the planner's OverrideFor guards
  // keep it on a plain scan) and drain the pre-dedup derivations.
  int64_t drained = 0;
  auto drain = [&](const std::vector<Tuple>& delta_rows,
                   std::map<int, std::vector<Tuple>>* out) -> Status {
    out->clear();
    if (delta_rows.empty()) return Status::Ok();
    Table delta(table, base->schema());
    for (const Tuple& r : delta_rows) {
      XNFDB_ASSIGN_OR_RETURN(Rid rid, delta.Insert(r));
      (void)rid;
    }
    std::map<std::string, Table*> overrides{{table, &delta}};
    ExecStats stats;
    PlanOptions popts;
    popts.table_overrides = &overrides;
    Planner planner(&catalog, e->graph.get(), popts, &stats);
    for (int oi : affected) {
      const qgm::TopOutput& o = top->outputs[oi];
      XNFDB_ASSIGN_OR_RETURN(OperatorPtr op, planner.BoxIterator(o.box_id));
      XNFDB_RETURN_IF_ERROR(op->Open());
      std::vector<Tuple>& bucket = (*out)[oi];
      Tuple row;
      Status st = Status::Ok();
      while (true) {
        Result<bool> more = op->Next(&row);
        if (!more.ok()) {
          st = more.status();
          break;
        }
        if (!more.value()) break;
        bucket.push_back(o.cols.empty() ? std::move(row)
                                        : ProjectCols(row, o.cols));
        row = Tuple();
        if (++drained > config_.max_rows) {
          st = Status::ResourceExhausted("matview: delta too large");
          break;
        }
      }
      op->Close();
      XNFDB_RETURN_IF_ERROR(st);
    }
    return Status::Ok();
  };

  std::map<int, std::vector<Tuple>> del_rows, ins_rows;
  XNFDB_RETURN_IF_ERROR(drain(deleted, &del_rows));
  XNFDB_RETURN_IF_ERROR(drain(inserted, &ins_rows));

  // Copy-on-write: mutate a private copy and publish it at the end, so an
  // in-flight serve keeps its consistent snapshot.
  MatViewData next = *e->data;
  std::map<std::string, int> comp_idx;
  for (size_t i = 0; i < next.outputs.size(); ++i) {
    if (!next.outputs[i].desc.is_connection) {
      comp_idx[next.outputs[i].desc.name] = static_cast<int>(i);
    }
  }
  std::vector<TupleId> ptids;
  // Resolves a connection delta row to its partner tids exactly like the
  // executor's pass 2; false = some partner row is not in its component
  // stream, so the connection never existed (closed answer) — drop it.
  auto resolve_partners = [&](const qgm::TopOutput& o,
                              const Tuple& row) -> Result<bool> {
    ptids.clear();
    for (size_t pi = 0; pi < o.partner_names.size(); ++pi) {
      auto ci = comp_idx.find(o.partner_names[pi]);
      if (ci == comp_idx.end()) {
        return Status::Internal("matview: connection partner missing");
      }
      const MatViewOutputData& pod = next.outputs[ci->second];
      Tuple key = ProjectCols(row, o.partner_cols[pi]);
      auto kit = pod.content_tids.find(key);
      if (kit == pod.content_tids.end()) return false;
      ptids.push_back(kit->second);
    }
    return true;
  };
  auto remove_component_row = [&](MatViewOutputData& od, size_t idx) {
    next.bytes -= ApproxTupleBytes(od.rows[idx]) + 8;
    --next.total_rows;
    od.rows.erase(od.rows.begin() + idx);
    od.tids.erase(od.tids.begin() + idx);
  };

  // Delete pass: connections first (partner contents must still be
  // resolvable), then components.
  for (int oi : affected) {
    const qgm::TopOutput& o = top->outputs[oi];
    if (!o.is_connection) continue;
    MatViewOutputData& od = next.outputs[oi];
    for (const Tuple& row : del_rows[oi]) {
      XNFDB_ASSIGN_OR_RETURN(bool found, resolve_partners(o, row));
      if (!found) continue;
      auto cit = od.conn_counts.find(ptids);
      if (cit == od.conn_counts.end()) {
        return Status::Internal("matview: delete of unknown connection");
      }
      if (--cit->second == 0) {
        od.conn_counts.erase(cit);
        auto pos = std::find(od.conns.begin(), od.conns.end(), ptids);
        if (pos != od.conns.end()) od.conns.erase(pos);
        next.bytes -= 8 * static_cast<int64_t>(ptids.size());
        --next.total_rows;
      }
    }
  }
  for (int oi : affected) {
    const qgm::TopOutput& o = top->outputs[oi];
    if (o.is_connection) continue;
    MatViewOutputData& od = next.outputs[oi];
    for (const Tuple& row : del_rows[oi]) {
      if (od.xnf_component) {
        auto kit = od.content_tids.find(row);
        if (kit == od.content_tids.end()) {
          return Status::Internal("matview: delete of unknown component row");
        }
        TupleId tid = kit->second;
        auto cnt = od.counts.find(tid);
        if (cnt == od.counts.end()) {
          return Status::Internal("matview: missing derivation count");
        }
        if (--cnt->second == 0) {
          od.counts.erase(cnt);
          od.content_tids.erase(kit);
          auto pos = std::find(od.tids.begin(), od.tids.end(), tid);
          if (pos == od.tids.end()) {
            return Status::Internal("matview: tid not in stream");
          }
          remove_component_row(od, pos - od.tids.begin());
        }
      } else {
        // Multiset stream: remove one instance with this content.
        size_t i = od.rows.size();
        while (i > 0 && !(od.rows[i - 1] == row)) --i;
        if (i == 0) {
          return Status::Internal("matview: delete of unknown row");
        }
        remove_component_row(od, i - 1);
      }
    }
  }

  // Insert pass: components first (new partner tids must exist before the
  // connections that reference them), then connections.
  for (int oi : affected) {
    const qgm::TopOutput& o = top->outputs[oi];
    if (o.is_connection) continue;
    MatViewOutputData& od = next.outputs[oi];
    for (const Tuple& row : ins_rows[oi]) {
      if (od.xnf_component) {
        auto [kit, fresh_row] = od.content_tids.emplace(row, od.next_tid);
        if (fresh_row) {
          TupleId tid = od.next_tid++;
          od.counts[tid] = 1;
          od.rows.push_back(row);
          od.tids.push_back(tid);
          next.bytes += ApproxTupleBytes(row) + 8;
          ++next.total_rows;
        } else {
          ++od.counts[kit->second];
        }
      } else {
        od.rows.push_back(row);
        od.tids.push_back(od.next_tid++);
        next.bytes += ApproxTupleBytes(row) + 8;
        ++next.total_rows;
      }
    }
  }
  for (int oi : affected) {
    const qgm::TopOutput& o = top->outputs[oi];
    if (!o.is_connection) continue;
    MatViewOutputData& od = next.outputs[oi];
    for (const Tuple& row : ins_rows[oi]) {
      XNFDB_ASSIGN_OR_RETURN(bool found, resolve_partners(o, row));
      if (!found) continue;
      int64_t& c = od.conn_counts[ptids];
      if (++c == 1) {
        od.conns.push_back(ptids);
        next.bytes += 8 * static_cast<int64_t>(ptids.size());
        ++next.total_rows;
      }
    }
  }

  e->data = std::make_shared<const MatViewData>(std::move(next));
  ++e->delta_applies;
  e->delta_rows += drained;
  e->refreshed_us = NowUs();
  delta_applies_->Increment();
  delta_rows_->Increment(drained);
  return Status::Ok();
}

void MatViewStore::InvalidateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t before = entries_.size();
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.tables.count(table) > 0) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (entries_.size() != before) {
    invalidations_->Increment(
        static_cast<int64_t>(before - entries_.size()));
    UpdateGaugesLocked();
  }
}

void MatViewStore::InvalidateView(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.name == name) {
      entries_.erase(it);
      invalidations_->Increment();
      UpdateGaugesLocked();
      return;
    }
  }
}

void MatViewStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.empty()) {
    invalidations_->Increment(static_cast<int64_t>(entries_.size()));
  }
  entries_.clear();
  UpdateGaugesLocked();
}

std::vector<MatViewInfo> MatViewStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MatViewInfo> out;
  out.reserve(entries_.size());
  for (const auto& [digest, e] : entries_) {
    MatViewInfo info;
    info.name = e.name;
    info.digest = digest;
    info.text = e.text;
    info.pinned = e.pinned;
    info.fresh = e.fresh;
    info.rows = e.data != nullptr ? e.data->total_rows : 0;
    info.bytes = e.data != nullptr ? e.data->bytes : 0;
    info.hits = e.hits;
    info.delta_applies = e.delta_applies;
    info.delta_rows = e.delta_rows;
    info.full_refreshes = e.full_refreshes;
    info.fallbacks = e.fallbacks;
    info.created_us = e.created_us;
    info.refreshed_us = e.refreshed_us;
    out.push_back(std::move(info));
  }
  return out;
}

size_t MatViewStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

Status MatViewStore::SaveRegistry(Env* env, const std::string& path) const {
  std::string out = "XNFDB_MATVIEWS 1\n";
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [digest, e] : entries_) {
      out += obs::DigestHex(digest) + " " + (e.pinned ? "1" : "0") + " " +
             e.name + "\t" + e.text + "\n";
    }
  }
  return AtomicallyWriteFile(env, path, out);
}

Status MatViewStore::LoadRegistry(Env* env, const std::string& path) {
  std::string content;
  XNFDB_RETURN_IF_ERROR(env->ReadFileToString(path, &content));
  std::istringstream in(content);
  std::string line;
  if (!std::getline(in, line) || line.rfind("XNFDB_MATVIEWS", 0) != 0) {
    return Status::IoError("matview registry: bad header in " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    size_t sp1 = line.find(' ');
    size_t sp2 = line.find(' ', sp1 + 1);
    size_t tab = line.find('\t', sp2 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        tab == std::string::npos) {
      return Status::IoError("matview registry: malformed line in " + path);
    }
    uint64_t digest =
        std::strtoull(line.substr(0, sp1).c_str(), nullptr, 16);
    if (entries_.count(digest) > 0) continue;
    if (entries_.size() >= config_.max_views) break;
    Entry e;
    e.digest = digest;
    e.pinned = line.substr(sp1 + 1, sp2 - sp1 - 1) == "1";
    e.name = line.substr(sp2 + 1, tab - sp2 - 1);
    e.text = line.substr(tab + 1);
    e.created_us = NowUs();
    // Loaded entries are stale by construction: the data refreshes on the
    // shape's next execution.
    entries_.emplace(digest, std::move(e));
  }
  UpdateGaugesLocked();
  return Status::Ok();
}

void MatViewStore::UpdateGaugesLocked() {
  int64_t rows = 0, bytes = 0, stale = 0;
  for (const auto& [digest, e] : entries_) {
    if (e.data != nullptr) {
      rows += e.data->total_rows;
      bytes += e.data->bytes;
    }
    if (!e.fresh) ++stale;
  }
  count_gauge_->Set(static_cast<int64_t>(entries_.size()));
  rows_gauge_->Set(rows);
  bytes_gauge_->Set(bytes);
  stale_gauge_->Set(stale);
}

namespace {

Schema MakeSchema(std::initializer_list<Column> columns) {
  return Schema(std::vector<Column>(columns));
}

class MatViewsProvider : public VirtualTableProvider {
 public:
  explicit MatViewsProvider(const MatViewStore* store)
      : name_("SYS$MATVIEWS"),
        schema_(MakeSchema({{"NAME", DataType::kString},
                            {"DIGEST", DataType::kString},
                            {"STATE", DataType::kString},
                            {"PINNED", DataType::kInt},
                            {"ROWS", DataType::kInt},
                            {"BYTES", DataType::kInt},
                            {"HITS", DataType::kInt},
                            {"DELTA_APPLIES", DataType::kInt},
                            {"DELTA_ROWS", DataType::kInt},
                            {"FULL_REFRESHES", DataType::kInt},
                            {"FALLBACKS", DataType::kInt},
                            {"CREATED_US", DataType::kInt},
                            {"REFRESHED_US", DataType::kInt}})),
        store_(store) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const MatViewInfo& v : store_->Snapshot()) {
      rows.push_back({Value(v.name), Value(obs::DigestHex(v.digest)),
                      Value(v.fresh ? "fresh" : "stale"),
                      Value(int64_t{v.pinned ? 1 : 0}), Value(v.rows),
                      Value(v.bytes), Value(v.hits), Value(v.delta_applies),
                      Value(v.delta_rows), Value(v.full_refreshes),
                      Value(v.fallbacks), Value(v.created_us),
                      Value(v.refreshed_us)});
    }
    return rows;
  }

  double EstimatedRows() const override {
    return static_cast<double>(store_->size());
  }

 private:
  std::string name_;
  Schema schema_;
  const MatViewStore* store_;
};

}  // namespace

std::unique_ptr<VirtualTableProvider> MakeMatViewsProvider(
    const MatViewStore* store) {
  return std::make_unique<MatViewsProvider>(store);
}

}  // namespace xnfdb
