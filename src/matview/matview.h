// Server-side materialized CO views with incremental delta maintenance.
//
// The paper measures composite-object extraction as the dominant server
// cost (Fig. 6): the same multi-join view shapes are recomputed on every
// fetch. This subsystem keeps the *server-side answer set* of hot view
// shapes — the heterogeneous component/connection streams of Sect. 5 —
// materialized, so a repeated query is answered by a MatViewScanOp over
// stored rows instead of re-running the join trees.
//
// Shape selection is automatic (SYS$STATEMENTS execution frequency via
// Database's capture policy) or explicit (`MATERIALIZE <view>` pins one).
// Under base-table DML the store keeps entries fresh by the counting
// algorithm: the changed table is substituted by a transient delta table
// (PlanOptions::table_overrides), the affected output boxes are re-planned
// and drained, and the per-row derivation counts captured at
// materialization time (ExecOptions::collect_dedup_counts) are incremented
// or decremented — a component row disappears when its count reaches zero.
// Shapes the delta rules cannot handle (the table under an exists group,
// more than one reference, DISTINCT/GROUP BY/ORDER BY/LIMIT/UNION/
// aggregates) fall back to marking the entry stale; the next matching
// execution recomputes and re-stores it (counted in matview.full_refreshes,
// fallbacks in matview.fallbacks).
//
// Caveat (documented in DESIGN.md §15): after delta maintenance the stored
// answer equals a scratch recompute up to tuple-id isomorphism — deleted
// component rows leave tid gaps, and rows added later take fresh ids, so
// tids differ from a fresh execution while contents and the component↔
// connection linkage are identical.

#ifndef XNFDB_MATVIEW_MATVIEW_H_
#define XNFDB_MATVIEW_MATVIEW_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "exec/executor.h"
#include "exec/expr_eval.h"
#include "obs/metrics.h"
#include "qgm/qgm.h"
#include "storage/catalog.h"
#include "storage/sysview.h"

namespace xnfdb {

// Env-derived knobs. XNFDB_MATVIEWS=0 is the kill switch; the rest bound
// the policy (see FromEnv for names and defaults).
struct MatViewConfig {
  bool enabled = true;
  // Auto-materialization: capture the result of an execution when the
  // statement shape's call count (including this call) reaches auto_calls
  // and its mean latency so far is at least auto_min_avg_us.
  int64_t auto_calls = 2;        // XNFDB_MATVIEW_AUTO_CALLS
  int64_t auto_min_avg_us = 0;   // XNFDB_MATVIEW_AUTO_US
  size_t max_views = 32;         // XNFDB_MATVIEW_MAX
  // Bounded materialization/refresh: results (and per-DML delta
  // derivations) larger than this are never stored.
  int64_t max_rows = 1 << 20;    // XNFDB_MATVIEW_MAX_ROWS

  static MatViewConfig FromEnv();
};

// One stored output stream. Component streams keep rows in emission order
// with their tids; XNF components additionally keep the content->tid map
// (object sharing) and per-tid derivation counts. Connection streams keep
// partner-tid tuples in emission order with per-tuple derivation counts.
struct MatViewOutputData {
  OutputDesc desc;
  bool xnf_component = false;
  std::vector<Tuple> rows;    // component streams
  std::vector<TupleId> tids;  // parallel to rows
  TupleId next_tid = 0;
  std::unordered_map<Tuple, TupleId, TupleHash, TupleEq> content_tids;
  std::map<TupleId, int64_t> counts;  // XNF components only
  std::vector<std::vector<TupleId>> conns;  // connection streams
  std::map<std::vector<TupleId>, int64_t> conn_counts;
};

// Immutable-once-published snapshot of one materialization. Delta
// maintenance copies, modifies and swaps the snapshot, so an in-flight
// serve keeps reading the version it resolved.
struct MatViewData {
  std::vector<MatViewOutputData> outputs;
  int64_t total_rows = 0;  // stream items (component rows + connections)
  int64_t bytes = 0;       // ApproxTupleBytes over rows + 8 per stored tid
};

// Point-in-time view of one entry (SYS$MATVIEWS, tests, the shell).
struct MatViewInfo {
  std::string name;
  uint64_t digest = 0;
  std::string text;
  bool pinned = false;
  bool fresh = false;
  int64_t rows = 0;
  int64_t bytes = 0;
  int64_t hits = 0;
  int64_t delta_applies = 0;
  int64_t delta_rows = 0;
  int64_t full_refreshes = 0;
  int64_t fallbacks = 0;
  int64_t created_us = 0;
  int64_t refreshed_us = 0;
};

// The store. Thread-safe (one mutex); entries are keyed by statement
// digest (parser/fingerprint.h), so any compiled query whose normalized
// text matches a materialized shape is served, whether it arrived as the
// view name, the expanded body, or an equivalent literal binding.
class MatViewStore {
 public:
  struct ServeHandle {
    std::string name;
    std::shared_ptr<const MatViewData> data;
  };

  MatViewStore(const MatViewConfig& config, obs::MetricsRegistry* metrics);
  MatViewStore(const MatViewStore&) = delete;
  MatViewStore& operator=(const MatViewStore&) = delete;

  const MatViewConfig& config() const { return config_; }
  bool enabled() const;
  // Runtime override of the kill switch (benches/tests; cheaper than env
  // churn). Disabling does not drop entries — DML marks them stale.
  void set_enabled(bool on);

  // Serving: fills `*out` and returns true when a fresh materialization
  // exists for `digest` (bumps the entry's and the store's hit counters).
  // A stale or absent entry is a miss.
  bool TryServe(uint64_t digest, ServeHandle* out);
  // TryServe without touching any counter (EXPLAIN provenance).
  bool Peek(uint64_t digest, ServeHandle* out) const;

  // Policy: should the Database capture (collect_dedup_counts + Store) the
  // execution about to run? True for a known-but-stale entry (refresh, also
  // the pinned case) or when the auto thresholds are met. `prior_calls` /
  // `prior_avg_us` come from StatementStore::Stats for the digest.
  bool WantCapture(uint64_t digest, int64_t prior_calls,
                   int64_t prior_avg_us) const;

  // Stores one successful execution as the fresh materialization of
  // `digest`. Analyzes `graph` for per-table delta eligibility and keeps it
  // for delta re-planning. Refuses results over config().max_rows, shapes
  // over virtual (sys$) tables, and new entries past max_views.
  Status Store(uint64_t digest, const std::string& text,
               const Catalog& catalog, std::shared_ptr<qgm::QueryGraph> graph,
               const QueryResult& result);

  // MATERIALIZE <view>: creates (or re-points) the pinned entry for
  // `digest`; the caller then executes the view query so Store() fills it.
  Status Pin(const std::string& name, uint64_t digest,
             const std::string& text);
  // DEMATERIALIZE <view> — false when no entry has that name.
  bool Dematerialize(const std::string& name);

  // DML hook (called by Database after rows hit the base table; an UPDATE
  // passes both lists). Applies delta maintenance to every fresh entry
  // referencing `table`, or marks it stale when the shape is ineligible or
  // the delta fails.
  void OnBaseTableDml(const Catalog& catalog, const std::string& table,
                      const std::vector<Tuple>& inserted,
                      const std::vector<Tuple>& deleted);

  // DROP TABLE / DROP VIEW / LoadFrom invalidation.
  void InvalidateTable(const std::string& table);
  void InvalidateView(const std::string& name);
  void Clear();

  std::vector<MatViewInfo> Snapshot() const;
  size_t size() const;

  // Registry persistence (name, digest, pinned flag and query text only —
  // loaded entries come back stale and refresh on their next execution).
  Status SaveRegistry(Env* env, const std::string& path) const;
  Status LoadRegistry(Env* env, const std::string& path);

 private:
  struct Entry {
    std::string name;
    uint64_t digest = 0;
    std::string text;
    bool pinned = false;
    bool fresh = false;
    std::shared_ptr<const MatViewData> data;
    std::shared_ptr<qgm::QueryGraph> graph;
    // Delta-eligibility analysis (computed at Store time).
    std::set<std::string> tables;            // every referenced base table
    std::set<std::string> delta_ineligible;  // DML on these -> stale
    std::map<std::string, std::vector<int>> delta_outputs;  // table -> outputs
    int64_t hits = 0;
    int64_t delta_applies = 0;
    int64_t delta_rows = 0;
    int64_t full_refreshes = 0;
    int64_t fallbacks = 0;
    int64_t created_us = 0;
    int64_t refreshed_us = 0;
  };

  // Runs both delta passes for one entry; any error means "mark stale".
  Status ApplyDeltaLocked(const Catalog& catalog, Entry* e,
                          const std::string& table,
                          const std::vector<Tuple>& inserted,
                          const std::vector<Tuple>& deleted);
  void UpdateGaugesLocked();

  MatViewConfig config_;
  mutable std::mutex mu_;
  bool enabled_ = true;
  std::map<uint64_t, Entry> entries_;  // by digest
  obs::MetricsRegistry* metrics_;
  obs::Counter* hits_;
  obs::Counter* misses_;
  obs::Counter* materializations_;
  obs::Counter* full_refreshes_;
  obs::Counter* delta_applies_;
  obs::Counter* delta_rows_;
  obs::Counter* fallbacks_;
  obs::Counter* rejects_;
  obs::Counter* invalidations_;
  obs::Gauge* count_gauge_;
  obs::Gauge* rows_gauge_;
  obs::Gauge* bytes_gauge_;
  obs::Gauge* stale_gauge_;
};

// SYS$MATVIEWS(NAME, DIGEST, STATE, PINNED, ROWS, BYTES, HITS,
//              DELTA_APPLIES, DELTA_ROWS, FULL_REFRESHES, FALLBACKS,
//              CREATED_US, REFRESHED_US) — one row per materialization.
std::unique_ptr<VirtualTableProvider> MakeMatViewsProvider(
    const MatViewStore* store);

}  // namespace xnfdb

#endif  // XNFDB_MATVIEW_MATVIEW_H_
