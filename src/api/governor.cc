#include "api/governor.h"

#include <chrono>
#include <limits>

#include "common/crash.h"
#include "common/str_util.h"
#include "obs/flight_recorder.h"

namespace xnfdb {

GovernorOptions GovernorOptions::FromEnv() {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  GovernorOptions o;
  o.max_concurrent = ParseEnvInt("XNFDB_MAX_CONCURRENT_QUERIES", 0, 4096, 0);
  o.default_timeout_ms = ParseEnvInt("XNFDB_QUERY_TIMEOUT_MS", 0, kMax, 0);
  o.default_max_result_rows = ParseEnvInt("XNFDB_MAX_RESULT_ROWS", 0, kMax, 0);
  o.default_mem_budget_bytes =
      ParseEnvInt("XNFDB_MEM_BUDGET_BYTES", 0, kMax, 0);
  return o;
}

Governor::Governor(GovernorOptions options, obs::MetricsRegistry* metrics)
    : options_(options),
      admitted_(metrics->GetCounter("governor.admitted")),
      queued_total_(metrics->GetCounter("governor.queued")),
      rejected_(metrics->GetCounter("governor.rejected")),
      completed_(metrics->GetCounter("governor.completed")),
      cancelled_(metrics->GetCounter("governor.cancelled")),
      timed_out_(metrics->GetCounter("governor.timed_out")),
      budget_exceeded_(metrics->GetCounter("governor.budget_exceeded")),
      failed_(metrics->GetCounter("governor.failed")),
      running_gauge_(metrics->GetGauge("governor.running")),
      queue_depth_gauge_(metrics->GetGauge("governor.queue_depth")),
      queue_wait_us_(metrics->GetHistogram("governor.queue_wait.us")) {}

void Governor::SetOptions(const GovernorOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
  }
  cv_.notify_all();  // waiters re-evaluate against the new capacity
}

GovernorOptions Governor::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

Result<int64_t> Governor::Admit(const std::string& text,
                                std::shared_ptr<QueryContext> ctx) {
  const int64_t t0 = QueryContext::NowUs();
  std::unique_lock<std::mutex> lock(mu_);
  const int64_t id = next_id_++;
  Entry& entry = entries_[id];
  entry.text = text;
  entry.ctx = ctx;

  bool was_queued = false;
  while (options_.max_concurrent > 0 && running_ >= options_.max_concurrent) {
    if (!was_queued) {
      if (queued_ >= options_.max_queue) {
        entries_.erase(id);
        rejected_->Increment();
        // Under sustained overload running/queued sit at their caps, so
        // these events are byte-identical and coalesce in the recorder.
        obs::FlightRecorder::Default().Record(
            "governor", "warn", "admission rejected",
            "running=" + std::to_string(running_) +
                " queued=" + std::to_string(queued_));
        return Status::ResourceExhausted(
            "admission rejected: " + std::to_string(running_) +
            " queries running (cap " + std::to_string(options_.max_concurrent) +
            "), " + std::to_string(queued_) + " queued (cap " +
            std::to_string(options_.max_queue) + ")");
      }
      was_queued = true;
      ++queued_;
      queued_total_->Increment();
      queue_depth_gauge_->Set(queued_);
    }
    if (ctx->cancelled()) {
      --queued_;
      queue_depth_gauge_->Set(queued_);
      entries_.erase(id);
      cancelled_->Increment();
      return Status::Cancelled("query killed while queued for admission");
    }
    const int64_t deadline_us = ctx->limits().deadline_us;
    if (deadline_us != 0) {
      if (QueryContext::NowUs() > deadline_us) {
        --queued_;
        queue_depth_gauge_->Set(queued_);
        entries_.erase(id);
        timed_out_->Increment();
        return Status::DeadlineExceeded(
            "deadline expired after " +
            std::to_string(QueryContext::NowUs() - t0) +
            "us queued for admission");
      }
      cv_.wait_until(lock,
                     std::chrono::steady_clock::time_point(
                         std::chrono::microseconds(deadline_us)));
    } else {
      cv_.wait(lock);
    }
  }
  if (was_queued) {
    --queued_;
    queue_depth_gauge_->Set(queued_);
  }
  entry.running = true;
  ++running_;
  running_gauge_->Set(running_);
  admitted_->Increment();
  const int64_t wait_us = QueryContext::NowUs() - t0;
  queue_wait_us_->Observe(wait_us);
  ctx->set_queue_wait_us(wait_us);  // profile capture reads it at query end
  if (was_queued) {
    obs::FlightRecorder::Default().Record("governor", "info",
                                          "admitted after queue wait",
                                          "id=" + std::to_string(id));
  }
  RefreshCrashContextLocked();
  return id;
}

void Governor::Release(int64_t id, const Status& status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return;
    if (it->second.running) {
      --running_;
      running_gauge_->Set(running_);
    }
    entries_.erase(it);
    RefreshCrashContextLocked();
  }
  switch (status.code()) {
    case StatusCode::kOk:
      completed_->Increment();
      break;
    case StatusCode::kCancelled:
      cancelled_->Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      timed_out_->Increment();
      break;
    case StatusCode::kResourceExhausted:
      budget_exceeded_->Increment();
      break;
    default:
      failed_->Increment();
      break;
  }
  cv_.notify_all();
}

Status Governor::Cancel(int64_t id) {
  std::shared_ptr<QueryContext> ctx;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      return Status::NotFound("no live query with id " + std::to_string(id));
    }
    ctx = it->second.ctx;
  }
  ctx->Cancel();
  cv_.notify_all();  // a queued victim observes the flag and unwinds
  obs::FlightRecorder::Default().Record("governor", "warn", "query killed",
                                        "id=" + std::to_string(id));
  return Status::Ok();
}

std::string Governor::FormatLiveLocked() const {
  std::string out;
  for (const auto& [id, entry] : entries_) {
    out += "id=" + std::to_string(id);
    out += entry.running ? " state=running" : " state=queued";
    if (entry.ctx != nullptr) {
      out += " elapsed_us=" + std::to_string(entry.ctx->elapsed_us());
      out += " rows_out=" + std::to_string(entry.ctx->rows_produced());
      out += " bytes_reserved=" + std::to_string(entry.ctx->bytes_reserved());
      out += " ticks=" + std::to_string(entry.ctx->progress_ticks());
    }
    out += " text=" + entry.text + "\n";
  }
  return out;
}

void Governor::RefreshCrashContextLocked() const {
  if (!CrashHandlerInstalled()) return;
  SetCrashContextQueries(FormatLiveLocked());
}

std::vector<Governor::QueryInfo> Governor::Snapshot() const {
  std::vector<QueryInfo> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    QueryInfo info;
    info.id = id;
    info.state = entry.running ? "running" : "queued";
    info.text = entry.text;
    if (entry.ctx != nullptr) {
      info.elapsed_us = entry.ctx->elapsed_us();
      info.rows_out = entry.ctx->rows_produced();
      info.bytes_reserved = entry.ctx->bytes_reserved();
      info.progress_ticks = entry.ctx->progress_ticks();
      info.queue_wait_us = entry.ctx->queue_wait_us();
    }
    out.push_back(std::move(info));
  }
  return out;
}

int64_t Governor::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int64_t Governor::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

namespace {

// SYS$QUERIES: one row per live (queued or running) query.
class QueriesProvider : public VirtualTableProvider {
 public:
  explicit QueriesProvider(const Governor* governor)
      : name_("SYS$QUERIES"),
        schema_(Schema(std::vector<Column>{{"ID", DataType::kInt},
                                           {"STATE", DataType::kString},
                                           {"TEXT", DataType::kString},
                                           {"ELAPSED_US", DataType::kInt},
                                           {"ROWS_OUT", DataType::kInt},
                                           {"BYTES_RESERVED", DataType::kInt},
                                           {"PROGRESS_TICKS", DataType::kInt},
                                           {"QUEUE_WAIT_US",
                                            DataType::kInt}})),
        governor_(governor) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const Governor::QueryInfo& q : governor_->Snapshot()) {
      rows.push_back(Tuple{Value(q.id), Value(q.state), Value(q.text),
                           Value(q.elapsed_us), Value(q.rows_out),
                           Value(q.bytes_reserved), Value(q.progress_ticks),
                           Value(q.queue_wait_us)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 8.0; }

 private:
  std::string name_;
  Schema schema_;
  const Governor* governor_;
};

}  // namespace

std::unique_ptr<VirtualTableProvider> MakeQueriesProvider(
    const Governor* governor) {
  return std::make_unique<QueriesProvider>(governor);
}

}  // namespace xnfdb
