// Stuck-query watchdog: a background thread that scans the governor's live
// queries and flags the ones whose progress has stopped.
//
// "Stuck" is defined by the operator wrappers' progress heartbeat
// (QueryContext::Tick, bumped at every Open/NextBatch and every ~1k rows on
// the Volcano path): a *running* query whose (ticks, rows, bytes)
// fingerprint has not changed for `stall_ms` is wedged inside a single
// call — spinning, blocked, or lost — not merely slow between rows. Queued
// queries are never flagged (they are waiting by design), and detection
// needs no per-tick clock reads: the watchdog stamps its own scan times.
//
// On detection the watchdog emits one structured warn line on the
// "watchdog" channel carrying the profile-so-far (elapsed, rows, bytes,
// ticks, queue wait, statement text), bumps `watchdog.stalled`, and — when
// `auto_cancel` is set — cooperatively cancels the victim through
// Governor::Cancel, bumping `watchdog.cancelled`. A stalled query is
// reported once; the report re-arms if the query makes progress again.
//
// Lives in the api layer (not obs) because it needs the Governor and the
// structured Logger, both above obs in the library stack.

#ifndef XNFDB_API_WATCHDOG_H_
#define XNFDB_API_WATCHDOG_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "api/governor.h"
#include "obs/metrics.h"

namespace xnfdb {

struct WatchdogOptions {
  // A running query is stalled when its progress fingerprint is unchanged
  // for this long. <= 0 disables the background thread (ScanOnce still
  // works for tests / shell `.watchdog`).
  int64_t stall_ms = 0;
  // Scan cadence of the background thread.
  int64_t poll_ms = 1000;
  // Cancel stalled queries instead of only reporting them.
  bool auto_cancel = false;

  // Reads XNFDB_WATCHDOG_STALL_MS (default 0 = off), XNFDB_WATCHDOG_POLL_MS
  // (default 1000) and XNFDB_WATCHDOG_CANCEL (default 0).
  static WatchdogOptions FromEnv();
};

class Watchdog {
 public:
  Watchdog(Governor* governor, obs::MetricsRegistry* metrics,
           WatchdogOptions options);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Starts/stops the background scanner; both idempotent. Start is a no-op
  // while stall_ms <= 0.
  void Start();
  void Stop();
  bool running() const;

  // Reconfigures at runtime (shell `.watchdog <ms>|off`); takes effect on
  // the next scan.
  void SetOptions(const WatchdogOptions& options);
  WatchdogOptions options() const;

  // One synchronous scan over the governor's live queries (the background
  // thread calls this; tests and the shell may too). Returns the number of
  // queries flagged as stalled by *this* scan.
  int ScanOnce();

  // Scans performed since construction.
  int64_t scans() const;

 private:
  void Loop();

  // Last observed progress fingerprint of one live query id.
  struct Track {
    int64_t ticks = -1;
    int64_t rows = -1;
    int64_t bytes = -1;
    int64_t last_change_us = 0;  // watchdog scan time of the last change
    bool reported = false;
  };

  Governor* governor_;
  obs::Counter* scans_counter_;
  obs::Counter* stalled_counter_;
  obs::Counter* cancelled_counter_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  WatchdogOptions options_;
  bool thread_running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
  std::map<int64_t, Track> tracks_;  // by query id; pruned on each scan
  int64_t scans_ = 0;
};

}  // namespace xnfdb

#endif  // XNFDB_API_WATCHDOG_H_
