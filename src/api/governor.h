// Query resource governor: overload admission control plus the registry of
// in-flight queries (kill support, SYS$QUERIES).
//
// The governor complements per-query QueryContext governance
// (exec/query_context.h): the context enforces limits *inside* one query's
// execution; the governor decides whether a query may start executing at
// all, and tracks every admitted or queued query so operators can observe
// (`SELECT * FROM SYS$QUERIES`) and terminate (`Database::Cancel`, shell
// `.kill`) them.
//
// Admission: at most `max_concurrent` queries run at once (0 = unlimited).
// When the engine is saturated, up to `max_queue` callers wait on a
// condition variable; beyond that the query is rejected immediately with
// kResourceExhausted — under overload the engine sheds load instead of
// accumulating unbounded waiters. A queued query still honours its deadline
// (kDeadlineExceeded fires while waiting) and its cancellation flag.
//
// This lives in the api layer, not storage/sysview.cc, because exec depends
// on storage: a provider over live QueryContexts cannot sit below the
// executor without an include cycle. Database registers the SYS$QUERIES
// provider itself at construction.
//
// Metrics (pre-registered at zero):
//   governor.admitted / queued / rejected        admission outcomes
//   governor.completed / cancelled / timed_out / budget_exceeded / failed
//                                                release classification
//   governor.running / governor.queue_depth      point-in-time gauges
//   governor.queue_wait.us                       admission-wait histogram

#ifndef XNFDB_API_GOVERNOR_H_
#define XNFDB_API_GOVERNOR_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/query_context.h"
#include "obs/metrics.h"
#include "storage/sysview.h"

namespace xnfdb {

struct GovernorOptions {
  // Maximum concurrently executing queries; 0 = unlimited (no admission
  // control, queries are still registered for SYS$QUERIES / Cancel).
  int64_t max_concurrent = 0;
  // Waiters tolerated beyond the running capacity before new queries are
  // rejected outright.
  int64_t max_queue = 8;
  // Per-query defaults applied when the caller's ExecOptions leave the
  // corresponding knob at -1. 0 = no limit.
  int64_t default_timeout_ms = 0;
  int64_t default_max_result_rows = 0;
  int64_t default_mem_budget_bytes = 0;

  // Reads XNFDB_QUERY_TIMEOUT_MS, XNFDB_MAX_RESULT_ROWS,
  // XNFDB_MEM_BUDGET_BYTES, and XNFDB_MAX_CONCURRENT_QUERIES (all via
  // ParseEnvInt; unset or 0 = no limit).
  static GovernorOptions FromEnv();
};

class Governor {
 public:
  Governor(GovernorOptions options, obs::MetricsRegistry* metrics);

  // Reconfigures limits at runtime (tests, shell). Takes effect for the
  // next Admit; already-queued waiters re-evaluate on the next wakeup.
  void SetOptions(const GovernorOptions& options);
  GovernorOptions options() const;

  // Registers a query and blocks until it may execute. Returns its query
  // id on admission; kResourceExhausted when the wait queue is full,
  // kDeadlineExceeded when `ctx`'s deadline expires while queued,
  // kCancelled when the query is killed while queued. `ctx` must be the
  // context the query will execute under (Cancel(id) flips its flag).
  Result<int64_t> Admit(const std::string& text,
                        std::shared_ptr<QueryContext> ctx);

  // Unregisters a query after execution, classifying `status` into the
  // governor.* outcome counters and waking one queued waiter.
  void Release(int64_t id, const Status& status);

  // Requests cooperative termination of a running or queued query.
  // NotFound when no such id is live (already finished or never existed).
  Status Cancel(int64_t id);

  // Point-in-time view of every live query (SYS$QUERIES, shell .queries).
  struct QueryInfo {
    int64_t id = 0;
    std::string state;  // "queued" | "running"
    std::string text;   // normalized statement text
    int64_t elapsed_us = 0;
    int64_t rows_out = 0;
    int64_t bytes_reserved = 0;
    // Live progress: operator-wrapper heartbeat count (stall detection) and
    // the admission wait this query paid before running.
    int64_t progress_ticks = 0;
    int64_t queue_wait_us = 0;
  };
  std::vector<QueryInfo> Snapshot() const;

  int64_t running() const;
  int64_t queued() const;

 private:
  struct Entry {
    std::string text;
    std::shared_ptr<QueryContext> ctx;
    bool running = false;
  };

  // Renders entries_ as crash-report lines; requires mu_ to be held (the
  // admission/release paths refresh the crash context while already inside
  // the lock — calling Snapshot() there would self-deadlock).
  std::string FormatLiveLocked() const;
  // Refreshes the crash handler's active-queries context from inside mu_.
  void RefreshCrashContextLocked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  GovernorOptions options_;
  int64_t next_id_ = 1;
  int64_t running_ = 0;
  int64_t queued_ = 0;
  std::map<int64_t, Entry> entries_;

  obs::Counter* admitted_;
  obs::Counter* queued_total_;
  obs::Counter* rejected_;
  obs::Counter* completed_;
  obs::Counter* cancelled_;
  obs::Counter* timed_out_;
  obs::Counter* budget_exceeded_;
  obs::Counter* failed_;
  obs::Gauge* running_gauge_;
  obs::Gauge* queue_depth_gauge_;
  obs::Histogram* queue_wait_us_;
};

// SYS$QUERIES(ID, STATE, TEXT, ELAPSED_US, ROWS_OUT, BYTES_RESERVED,
// PROGRESS_TICKS, QUEUE_WAIT_US): one row per live query. A query scanning
// SYS$QUERIES sees itself as 'running'. `governor` must outlive the catalog
// the provider is registered with.
std::unique_ptr<VirtualTableProvider> MakeQueriesProvider(
    const Governor* governor);

}  // namespace xnfdb

#endif  // XNFDB_API_GOVERNOR_H_
