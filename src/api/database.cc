#include "api/database.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/crash.h"
#include "common/file_format.h"
#include "common/log.h"
#include "common/str_util.h"
#include "exec/expr_eval.h"
#include "parser/parser.h"
#include "semantics/builder.h"
#include "storage/persist.h"
#include "storage/sysview.h"
#include "xnf/fixpoint.h"
#include "xnf/op_count.h"

namespace xnfdb {

namespace {

// Compiles expressions against one base table so they can be evaluated per
// row (used by UPDATE/DELETE for the WHERE predicate and SET right sides).
// Owns the scratch graph the expressions live in.
class RowContext {
 public:
  static Result<std::unique_ptr<RowContext>> Create(const Table& table,
                                                    const ast::Expr* where) {
    auto rc = std::unique_ptr<RowContext>(new RowContext());
    qgm::Box* base = rc->graph_.NewBox(qgm::BoxKind::kBaseTable, table.name());
    base->table_name = table.name();
    base->base_schema = table.schema();
    rc->sel_ = rc->graph_.NewBox(qgm::BoxKind::kSelect, "where");
    int q = qgm::AddQuant(&rc->graph_, rc->sel_, qgm::QuantKind::kForeach,
                          base->id, table.name());
    rc->layout_.Add(q, 0, table.schema().size());
    if (where != nullptr) {
      XNFDB_ASSIGN_OR_RETURN(rc->expr_,
                             TranslateExprForBox(rc->graph_, *rc->sel_, *where));
    }
    return rc;
  }

  // True if the row satisfies the predicate (always true without one).
  Result<bool> Matches(const Tuple& row) const {
    if (expr_ == nullptr) return true;
    return EvalPredicate(*expr_, layout_, row);
  }

  // Compiles a value expression (may reference the table's columns).
  Result<qgm::ExprPtr> Translate(const ast::Expr& e) const {
    return TranslateExprForBox(graph_, *sel_, e);
  }

  Result<Value> Eval(const qgm::Expr& e, const Tuple& row) const {
    return EvalExpr(e, layout_, row);
  }

 private:
  RowContext() = default;
  qgm::QueryGraph graph_;
  qgm::Box* sel_ = nullptr;
  Layout layout_;
  qgm::ExprPtr expr_;
};

// Evaluates a FROM-less scalar expression (INSERT values, SET right sides
// without column references).
Result<Value> EvalLiteralExpr(const ast::Expr& e) {
  switch (e.kind) {
    case ast::Expr::Kind::kLiteral:
      return static_cast<const ast::Literal&>(e).value;
    case ast::Expr::Kind::kUnary: {
      const auto& u = static_cast<const ast::Unary&>(e);
      XNFDB_ASSIGN_OR_RETURN(Value v, EvalLiteralExpr(*u.operand));
      if (u.op == "-") {
        if (v.type() == DataType::kInt) return Value(-v.AsInt());
        if (v.type() == DataType::kDouble) return Value(-v.AsDouble());
      }
      return Status::InvalidArgument("non-constant expression");
    }
    case ast::Expr::Kind::kBinary: {
      const auto& b = static_cast<const ast::Binary&>(e);
      XNFDB_ASSIGN_OR_RETURN(Value l, EvalLiteralExpr(*b.lhs));
      XNFDB_ASSIGN_OR_RETURN(Value r, EvalLiteralExpr(*b.rhs));
      if (b.op == "+") return Value::Add(l, r);
      if (b.op == "-") return Value::Sub(l, r);
      if (b.op == "*") return Value::Mul(l, r);
      if (b.op == "/") return Value::Div(l, r);
      return Status::InvalidArgument("non-constant expression");
    }
    default:
      return Status::InvalidArgument(
          "expected a constant expression in this context");
  }
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* StatementKindTag(const ast::Statement& stmt) {
  using Kind = ast::Statement::Kind;
  switch (stmt.kind) {
    case Kind::kSelect:
    case Kind::kXnfQuery:
      return "query";
    case Kind::kInsert:
    case Kind::kUpdate:
    case Kind::kDelete:
      return "dml";
    default:
      return "ddl";
  }
}

// Status -> flight-event keyword for a query's termination.
const char* TerminationKeyword(const Status& status) {
  switch (status.code()) {
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline";
    case StatusCode::kResourceExhausted: return "budget";
    default: return "error";
  }
}

}  // namespace

Database::Database(Env* env) : env_(env) {
  capture_profiles_ = ParseEnvBool("XNFDB_QUERY_PROFILES", true);
  capture_feedback_ = ParseEnvBool("XNFDB_PLAN_FEEDBACK", true);
  // Re-resolve the forensics knob with the checked parser: the recorder
  // bootstraps from raw getenv (obs sits below common), so the warn-once
  // diagnostics for a malformed value happen here.
  obs::FlightRecorder::Default().set_enabled(
      ParseEnvBool("XNFDB_EVENTS", true));
  qerror_alert_ = ParseEnvInt("XNFDB_QERROR_ALERT", 1, 1 << 30, 100);
  // Crash forensics: a no-op unless XNFDB_CRASH_DIR is set. The gauge of
  // reports already on disk feeds the crash_reports health rule either way.
  InstallCrashHandlerFromEnv();
  metrics_->GetGauge("crash.reports_found")
      ->Set(CountCrashReports(CrashReportDir()));
  // Pre-register the forensic series the built-in health rules watch, so
  // a missing subsystem reads as zero rather than an absent series.
  metrics_->GetCounter("writeback.retries");
  metrics_->GetCounter("writeback.failures");
  // The catalog is empty at this point, so name collisions are impossible.
  Status registered = RegisterSystemViews(&catalog_, metrics_, &statements_,
                                          &profiles_, &plan_feedback_);
  (void)registered;
  // SYS$QUERIES, SYS$EVENTS, SYS$HEALTH, SYS$ALERTS, SYS$METRICS_HISTORY
  // and the watchdog are registered / created here rather than in
  // RegisterSystemViews because they expose api-layer or process-wide
  // state (governor, recorder, health engine, sampler), which storage
  // cannot depend on.
  Status queries = catalog_.RegisterVirtualTable(MakeQueriesProvider(&governor_));
  (void)queries;
  Status events = catalog_.RegisterVirtualTable(
      MakeEventsProvider(&obs::FlightRecorder::Default()));
  (void)events;
  Status matviews_view =
      catalog_.RegisterVirtualTable(MakeMatViewsProvider(&matviews_));
  (void)matviews_view;
  for (obs::HealthRule& rule : obs::HealthEngine::BuiltinRules()) {
    health_.AddRule(std::move(rule));
  }
  health_.SetAlertSink([](const obs::AlertTransition& a) {
    // One warn line per transition; the logger feeds it into the flight
    // recorder, so this is also the transition's one event.
    Logger::Default().Log(
        LogLevel::kWarn, "health",
        a.to == "FIRING" ? "alert firing" : "alert resolved",
        {LogField::S("rule", a.rule), LogField::S("series", a.series),
         LogField::S("from", a.from), LogField::S("to", a.to),
         LogField::N("value", static_cast<int64_t>(a.value)),
         LogField::N("bound", static_cast<int64_t>(a.bound)),
         LogField::N("seq", a.seq)});
  });
  Status health_view =
      catalog_.RegisterVirtualTable(MakeHealthProvider(&health_));
  (void)health_view;
  Status alerts_view =
      catalog_.RegisterVirtualTable(MakeAlertsProvider(&health_));
  (void)alerts_view;
  obs::MetricsSampler::Options sopts;
  sopts.interval_ms = ParseEnvInt("XNFDB_METRICS_SAMPLE_MS", 0,
                                  int64_t{1} << 40, 0);
  sopts.ring_capacity = static_cast<size_t>(
      ParseEnvInt("XNFDB_METRICS_RING", 1, 1 << 20, 120));
  sampler_ = std::make_unique<obs::MetricsSampler>(metrics_, sopts);
  Status history =
      catalog_.RegisterVirtualTable(MakeMetricsHistoryProvider(sampler_.get()));
  (void)history;
  // Health evaluation rides the sampler tick; the same tick refreshes the
  // crash handler's metrics context (the handler cannot snapshot the
  // registry itself — it only copies this pre-rendered buffer).
  sampler_->SetOnSample(
      [this](const std::vector<obs::MetricsSampler::Row>& rows) {
        health_.OnSample(rows);
        if (CrashHandlerInstalled()) SetCrashContextMetrics(metrics_->ToJson());
      });
  if (sopts.interval_ms > 0) sampler_->Start();
  watchdog_ = std::make_unique<Watchdog>(&governor_, metrics_,
                                         WatchdogOptions::FromEnv());
  watchdog_->Start();  // no-op unless XNFDB_WATCHDOG_STALL_MS > 0
  // Pre-register every exec.* counter at zero so SYS$METRICS exposes the
  // full execution-counter surface (including batch/morsel visibility)
  // before the first query runs.
  ExecStats{}.PublishTo(metrics_);
}

Database::~Database() {
  // Trace dump is best-effort diagnostics; it bypasses the Env (and thus
  // fault injection) on purpose.
  if (!tracer_.enabled()) return;
  std::string path = obs::Tracer::EnvDumpPath();
  if (path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  if (out) out << tracer_.ChromeTraceJson();
}

CompileOptions Database::WithObs(const CompileOptions& copts) {
  CompileOptions co = copts;
  if (co.tracer == nullptr) co.tracer = &tracer_;
  if (co.metrics == nullptr) co.metrics = metrics_;
  return co;
}

ExecOptions Database::WithObs(const ExecOptions& eopts) {
  ExecOptions eo = eopts;
  if (eo.tracer == nullptr) eo.tracer = &tracer_;
  if (eo.metrics == nullptr) eo.metrics = metrics_;
  // While the slow-query log is armed, run in analyze mode so a slow
  // statement's plan (with actuals) is already captured — no re-execution.
  if (slow_query_threshold_us_ >= 0) eo.analyze = true;
  // XNFDB_QUERY_PROFILES=0 turns the always-on profiler off entirely.
  if (!capture_profiles_) eo.collect_profile = false;
  // XNFDB_PLAN_FEEDBACK=0 turns cardinality feedback + plan history off.
  if (!capture_feedback_) eo.collect_feedback = false;
  return eo;
}

void Database::RecordStatement(const Fingerprint& fp, const char* kind,
                               const Status& status, int64_t rows,
                               int64_t total_us, int64_t compile_us,
                               int64_t execute_us,
                               const std::vector<std::string>* plan_texts) {
  statements_.Record(fp.digest, fp.text, kind, status.ok(), rows, total_us);
  if (slow_query_threshold_us_ < 0) return;
  // While armed, the slow-query log also attributes every governor
  // termination — a killed or deadlined statement is exactly the kind of
  // statement the log exists to explain, however briefly it ran.
  const bool slow = total_us > slow_query_threshold_us_;
  const bool governed = status.IsGovernorTermination();
  if (!slow && !governed) return;
  std::string plan;
  if (plan_texts != nullptr) {
    for (const std::string& p : *plan_texts) plan += p;
  }
  std::vector<LogField> fields{
      LogField::S("digest", obs::DigestHex(fp.digest)),
      LogField::S("kind", kind), LogField::S("text", fp.text),
      LogField::S("status", status.ok() ? "OK" : status.ToString()),
      LogField::N("total_us", total_us),
      LogField::N("compile_us", compile_us),
      LogField::N("execute_us", execute_us), LogField::N("rows", rows),
      LogField::S("plan", plan)};
  // When cardinality feedback is on, attribute the slowness: name the
  // operator whose estimate was furthest from its actual row count.
  if (capture_feedback_) {
    obs::OpFeedback worst = plan_feedback_.TopMisestimate(fp.digest);
    if (!worst.op.empty()) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "%s/%s est=%lld actual=%lld q=%.2f",
                    worst.output.c_str(), worst.op.c_str(),
                    static_cast<long long>(worst.est_rows + 0.5),
                    static_cast<long long>(worst.actual_rows),
                    worst.q_error);
      fields.push_back(LogField::S("top_misestimate", buf));
    }
  }
  Logger::Default().Log(
      LogLevel::kWarn, "slowlog",
      governed ? "statement terminated by governor" : "slow statement",
      std::move(fields));
}

Status Database::RunTimed(const ast::Statement& stmt, Outcome* outcome) {
  Fingerprint fp = FingerprintStatement(stmt);
  int64_t t0 = NowUs();
  Status status = RunStatement(stmt, outcome);
  int64_t total_us = NowUs() - t0;
  int64_t rows = 0;
  const std::vector<std::string>* plans = nullptr;
  if (outcome->kind == Outcome::Kind::kRows) {
    rows = outcome->result.stats.rows_output;
    plans = &outcome->result.plan_texts;
  } else if (outcome->kind == Outcome::Kind::kAffected) {
    rows = static_cast<int64_t>(outcome->affected);
  }
  RecordStatement(fp, StatementKindTag(stmt), status, rows, total_us,
                  outcome->compile_us, outcome->execute_us, plans);
  return status;
}

Result<QueryResult> Database::ExecuteGoverned(CompiledQuery& compiled,
                                              const ExecOptions& eopts) {
  ExecOptions eo = WithObs(eopts);
  // Capture the compile-side rewrite trace before execution: even a
  // statement that fails at runtime keeps its rule log in SYS$REWRITES.
  if (capture_feedback_) {
    plan_feedback_.RecordCompile(compiled.digest, compiled.normalized_text,
                                 compiled.rewrite_stats.trace);
  }
  // A caller-supplied context is honoured as-is (its limits are the
  // caller's business); otherwise build one from the per-call knobs,
  // falling back to the governor's env-derived defaults (-1), with 0 as
  // the explicit "no limit".
  if (eo.context == nullptr) {
    auto ctx = std::make_shared<QueryContext>();
    GovernorOptions gopts = governor_.options();
    QueryLimits limits;
    int64_t timeout_ms =
        eo.timeout_ms >= 0 ? eo.timeout_ms : gopts.default_timeout_ms;
    if (timeout_ms > 0) {
      // Set before Admit: time spent queued for admission counts against
      // the deadline.
      limits.deadline_us = QueryContext::NowUs() + timeout_ms * 1000;
    }
    limits.max_result_rows = eo.max_result_rows >= 0
                                 ? eo.max_result_rows
                                 : gopts.default_max_result_rows;
    limits.mem_budget_bytes = eo.mem_budget_bytes >= 0
                                  ? eo.mem_budget_bytes
                                  : gopts.default_mem_budget_bytes;
    ctx->SetLimits(limits);
    eo.context = std::move(ctx);
  }
  // Query lifecycle events: start before admission, end after release, so
  // the flight recorder's tail reads as a faithful interleaving of what
  // the engine was executing when something else went wrong.
  obs::FlightRecorder& recorder = obs::FlightRecorder::Default();
  const std::string digest_hex = obs::DigestHex(compiled.digest);
  recorder.Record("query", "info", "query start", "digest=" + digest_hex);
  Result<int64_t> admitted =
      governor_.Admit(compiled.normalized_text, eo.context);
  if (!admitted.ok()) {
    recorder.Record("query", "warn", "query end",
                    "digest=" + digest_hex + " status=" +
                        TerminationKeyword(admitted.status()));
    return admitted.status();
  }
  const int64_t qid = admitted.value();
  // Materialized-view plan matching: a fresh materialization of this digest
  // answers the query from stored rows; otherwise, when the statement's
  // execution history crosses the capture policy (or a stale/pinned entry
  // wants a refresh), this execution runs with derivation-count collection
  // and its result is stored below. Recursive COs never participate.
  MatViewStore::ServeHandle mv;
  bool serve = false;
  bool capture = false;
  if (!compiled.needs_fixpoint && compiled.graph != nullptr) {
    serve = matviews_.TryServe(compiled.digest, &mv);
    if (!serve) {
      int64_t prior_calls = 0, prior_avg_us = 0;
      statements_.Stats(compiled.digest, &prior_calls, &prior_avg_us);
      capture =
          matviews_.WantCapture(compiled.digest, prior_calls, prior_avg_us);
      if (capture) eo.collect_dedup_counts = true;
    }
  }
  const int64_t exec_t0 = NowUs();
  Result<QueryResult> result =
      serve ? ServeMatView(compiled, mv, eo)
      : compiled.needs_fixpoint
          ? ExecuteXnfFixpoint(catalog_, *compiled.graph, eo)
          : ExecuteGraph(catalog_, *compiled.graph, eo);
  if (result.ok() && capture) {
    // The graph moves into the store for delta re-planning; no later code
    // path reads it (EXPLAIN recompiles). A cancelled refresh never gets
    // here, so a mid-refresh kill simply leaves the entry unmaterialized.
    Status stored = matviews_.Store(
        compiled.digest, compiled.normalized_text, catalog_,
        std::shared_ptr<qgm::QueryGraph>(std::move(compiled.graph)),
        result.value());
    (void)stored;  // ineligible shapes are counted in matview.rejects
  }
  governor_.Release(qid, result.ok() ? Status::Ok() : result.status());
  recorder.Record(
      "query", result.ok() ? "info" : "warn", "query end",
      "digest=" + digest_hex + " status=" +
          (result.ok() ? "ok" : TerminationKeyword(result.status())));
  // Always-on profile capture: one store write per successful execution
  // (the fixpoint path has no operator tree, so only the summary fields are
  // meaningful there).
  if (result.ok() && eo.collect_profile) {
    obs::QueryProfile& profile = result.value().profile;
    profile.wall_us = NowUs() - exec_t0;
    profile.queue_wait_us = eo.context->queue_wait_us();
    profile.peak_bytes = eo.context->bytes_reserved();
    profile.rows_out = result.value().stats.rows_output;
    profiles_.Record(compiled.digest, compiled.normalized_text, profile);
  }
  // Plan-quality feedback: join estimates vs actuals and append to the
  // plan-shape history (the fixpoint path has no operator tree, so there is
  // nothing to record there).
  if (result.ok() && eo.collect_feedback && !compiled.needs_fixpoint &&
      !result.value().plan_shape.empty()) {
    QueryResult& r = result.value();
    // Q-error blowup accounting must read the feedback before it is moved
    // into the store below.
    double worst_q = 0.0;
    for (const obs::OpFeedback& f : r.feedback) {
      if (f.est_rows >= 0 && f.q_error > worst_q) worst_q = f.q_error;
    }
    if (worst_q >= static_cast<double>(qerror_alert_)) {
      qerror_blowups_->Increment();
    }
    obs::PlanFeedbackStore::PlanChange change = plan_feedback_.RecordExecution(
        compiled.digest, compiled.normalized_text, r.plan_hash, r.plan_shape,
        NowUs() - exec_t0, std::move(r.feedback));
    r.feedback.clear();
    if (change.changed) {
      metrics_->GetCounter("plan.changes")->Increment();
      Logger::Default().Log(
          LogLevel::kWarn, "planchange", "statement plan changed",
          {LogField::S("digest", obs::DigestHex(compiled.digest)),
           LogField::S("text", compiled.normalized_text),
           LogField::S("from_plan", obs::DigestHex(change.from)),
           LogField::S("to_plan", obs::DigestHex(change.to)),
           LogField::N("executions", change.executions)});
    }
  }
  return result;
}

Result<QueryResult> Database::ServeMatView(
    const CompiledQuery& compiled, const MatViewStore::ServeHandle& handle,
    const ExecOptions& eo) {
  (void)compiled;
  const MatViewData& data = *handle.data;
  QueryContext* ctx = eo.context.get();
  QueryResult r;
  r.outputs.reserve(data.outputs.size());
  for (const MatViewOutputData& od : data.outputs) {
    r.outputs.push_back(od.desc);
  }
  std::vector<std::string> shapes;
  int64_t rows_emitted = 0;
  // Component streams first, then connections — the executor's pass order,
  // so consumers that resolve connection tids against previously seen
  // component rows keep working.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t oi = 0; oi < data.outputs.size(); ++oi) {
      const MatViewOutputData& od = data.outputs[oi];
      if (od.desc.is_connection != (pass == 1)) continue;
      if (!od.desc.is_connection) {
        // Rows are pulled through a real MatViewScanOp so stats, profiling
        // and per-row cancellation behave exactly like an execution, and
        // the plan shape carries the matview provenance SYS$PLAN_HISTORY
        // records the flip under.
        auto rows_sp =
            std::shared_ptr<const std::vector<Tuple>>(handle.data, &od.rows);
        MatViewScanOp op(handle.name, rows_sp, &r.stats);
        if (ctx != nullptr) op.AttachContext(ctx);
        if (eo.collect_profile) op.EnableProfile();
        XNFDB_RETURN_IF_ERROR(op.Open());
        Tuple row;
        size_t i = 0;
        while (true) {
          XNFDB_ASSIGN_OR_RETURN(bool more, op.Next(&row));
          if (!more) break;
          StreamItem item;
          item.kind = StreamItem::Kind::kRow;
          item.output = static_cast<int>(oi);
          item.tid = od.tids[i++];
          item.values = std::move(row);
          row = Tuple();
          r.stream.push_back(std::move(item));
          if (ctx != nullptr) XNFDB_RETURN_IF_ERROR(ctx->ChargeOutputRows(1));
          ++rows_emitted;
        }
        if (eo.analyze) {
          std::string plan = "output " + od.desc.name + ":\n";
          op.Explain(1, &plan);
          r.plan_texts.push_back(std::move(plan));
        }
        if (eo.collect_profile) {
          obs::OpProfile prof;
          prof.op = op.Kind();
          prof.loops = 1;
          prof.rows = static_cast<int64_t>(od.rows.size());
          r.profile.ops.push_back(std::move(prof));
        }
        shapes.push_back(od.desc.name + "=" + PlanShapeText(&op));
        op.Close();
      } else {
        for (const std::vector<TupleId>& conn : od.conns) {
          if (ctx != nullptr) XNFDB_RETURN_IF_ERROR(ctx->Check());
          StreamItem item;
          item.kind = StreamItem::Kind::kConnection;
          item.output = static_cast<int>(oi);
          item.tids = conn;
          r.stream.push_back(std::move(item));
          if (ctx != nullptr) XNFDB_RETURN_IF_ERROR(ctx->ChargeOutputRows(1));
          ++rows_emitted;
        }
        shapes.push_back(od.desc.name + "=matview_scan:" + handle.name);
      }
    }
  }
  r.stats.rows_output = rows_emitted;
  if (eo.collect_feedback) {
    std::string shape;
    for (const std::string& s : shapes) {
      if (!shape.empty()) shape += ";";
      shape += s;
    }
    r.plan_shape = std::move(shape);
    r.plan_hash = PlanShapeHash(r.plan_shape);
    // Served rows are exact by construction: est == actual, q-error 1.
    for (size_t oi = 0; oi < data.outputs.size(); ++oi) {
      const MatViewOutputData& od = data.outputs[oi];
      obs::OpFeedback f;
      f.output = od.desc.name;
      f.op = "matview_scan";
      f.actual_rows = static_cast<int64_t>(
          od.desc.is_connection ? od.conns.size() : od.rows.size());
      f.est_rows = static_cast<double>(f.actual_rows);
      f.loops = 1;
      f.q_error = 1.0;
      r.feedback.push_back(std::move(f));
    }
  }
  return r;
}

Status Database::RunMaterialize(const ast::MaterializeStatement& stmt,
                                Outcome* outcome) {
  // Compiling the view by name yields the digest any matching execution
  // arrives under — the view name, its expanded body, or an equivalent
  // literal binding all normalize to the same fingerprint.
  XNFDB_ASSIGN_OR_RETURN(
      CompiledQuery compiled,
      CompileQueryString(catalog_, stmt.name, WithObs(CompileOptions())));
  if (compiled.needs_fixpoint) {
    return Status::Unsupported(
        "recursive COs cannot be materialized (no finite answer set to "
        "store)");
  }
  XNFDB_RETURN_IF_ERROR(
      matviews_.Pin(stmt.name, compiled.digest, compiled.normalized_text));
  // The stale pinned entry makes WantCapture fire, so this execution's
  // result is stored. Re-MATERIALIZE of a fresh entry serves — idempotent.
  XNFDB_ASSIGN_OR_RETURN(QueryResult result,
                         ExecuteGoverned(compiled, ExecOptions()));
  outcome->kind = Outcome::Kind::kAffected;
  outcome->affected = result.stream.size();
  return Status::Ok();
}

Result<Database::Outcome> Database::Execute(const std::string& sql) {
  CountServerCall();
  if (transient_failures_ > 0) {
    --transient_failures_;
    return Status::IoError("injected transient server failure");
  }
  XNFDB_ASSIGN_OR_RETURN(ast::StatementPtr stmt, ParseStatement(sql));
  Outcome outcome;
  XNFDB_RETURN_IF_ERROR(RunTimed(*stmt, &outcome));
  return outcome;
}

Result<size_t> Database::ExecuteScript(const std::string& script) {
  CountServerCall();
  XNFDB_ASSIGN_OR_RETURN(std::vector<ast::StatementPtr> stmts,
                         ParseScript(script));
  for (const ast::StatementPtr& stmt : stmts) {
    Outcome outcome;
    XNFDB_RETURN_IF_ERROR(RunTimed(*stmt, &outcome));
  }
  return stmts.size();
}

Status Database::SaveTo(const std::string& path) const {
  XNFDB_RETURN_IF_ERROR(SaveCatalogToFile(catalog_, path, env_));
  // Registry-only sidecar: names, digests, pins and query texts. Stored
  // data is not persisted — loaded entries refresh on their next execution.
  const std::string reg = path + ".matviews";
  if (matviews_.size() == 0) {
    // No extra I/O (and no stale sidecar) when nothing is materialized.
    if (env_->FileExists(reg)) return env_->RemoveFile(reg);
    return Status::Ok();
  }
  return matviews_.SaveRegistry(env_, reg);
}

Status Database::LoadFrom(const std::string& path) {
  XNFDB_RETURN_IF_ERROR(LoadCatalogFromFile(path, &catalog_, env_));
  matviews_.Clear();
  const std::string reg = path + ".matviews";
  if (env_->FileExists(reg)) {
    // Best-effort: a corrupt registry loses pins, never data.
    Status loaded = matviews_.LoadRegistry(env_, reg);
    (void)loaded;
  }
  return Status::Ok();
}

Status Database::WriteDiagnosticBundle(const std::string& dir) const {
  XNFDB_RETURN_IF_ERROR(env_->CreateDir(dir));
  Status first_error = Status::Ok();
  std::vector<std::string> manifest;
  // Each bundle file is a complete XNFDIAG sectioned file (per-section
  // CRCs, footer) written via AtomicallyWriteFile — a failed write leaves
  // no file at all, never a torn one, and the rest of the bundle is still
  // attempted so a partial bundle stays fully readable.
  auto write_file = [&](const std::string& file,
                        std::vector<FileSection> sections) {
    std::ostringstream body;
    WriteSectionedFile(body, "XNFDIAG 1", sections);
    Status s = AtomicallyWriteFile(env_, dir + "/" + file, body.str());
    manifest.push_back(file + " sections=" + std::to_string(sections.size()) +
                       (s.ok() ? " ok" : " failed: " + s.message()));
    if (!s.ok() && first_error.ok()) first_error = s;
  };

  write_file("report.diag",
             {{"REPORT", 1, RenderCrashStyleReport("diagnostic bundle")}});
  write_file("metrics.diag", {{"METRICS", 1, metrics_->ToJson() + "\n"}});
  {
    std::string payload;
    std::vector<obs::FlightRecorder::Event> events =
        obs::FlightRecorder::Default().Snapshot();
    for (const obs::FlightRecorder::Event& e : events) {
      payload += "#" + std::to_string(e.seq) +
                 " ts_us=" + std::to_string(e.ts_us) + " [" + e.severity +
                 "] " + e.category + ": " + e.message;
      if (!e.detail.empty()) payload += " | " + e.detail;
      if (e.repeated > 1) payload += " (x" + std::to_string(e.repeated) + ")";
      payload += "\n";
    }
    write_file("events.diag",
               {{"EVENTS", events.size(), std::move(payload)}});
  }
  {
    std::string alerts;
    std::vector<obs::AlertTransition> transitions = health_.Alerts();
    for (const obs::AlertTransition& a : transitions) {
      alerts += "#" + std::to_string(a.seq) +
                " ts_us=" + std::to_string(a.ts_us) + " " + a.rule + " " +
                a.from + "->" + a.to + "\n";
    }
    write_file("health.diag",
               {{"HEALTH", 1, health_.ReportJson() + "\n"},
                {"ALERTS", transitions.size(), std::move(alerts)}});
  }
  {
    std::string live;
    std::vector<Governor::QueryInfo> queries = governor_.Snapshot();
    for (const Governor::QueryInfo& q : queries) {
      live += "id=" + std::to_string(q.id) + " state=" + q.state +
              " elapsed_us=" + std::to_string(q.elapsed_us) +
              " rows_out=" + std::to_string(q.rows_out) +
              " ticks=" + std::to_string(q.progress_ticks) +
              " text=" + q.text + "\n";
    }
    write_file("queries.diag", {{"QUERIES", queries.size(), std::move(live)}});
  }
  {
    std::string samples;
    size_t n = 0;
    for (const obs::MetricsSampler::Row& r : sampler_->History()) {
      samples += std::to_string(r.sample_ts_us) + " " + r.name + " " + r.kind +
                 " value=" + std::to_string(r.value) +
                 " delta=" + std::to_string(r.delta) +
                 " rate_per_s=" + std::to_string(r.rate_per_s) + "\n";
      ++n;
    }
    write_file("samples.diag", {{"SAMPLES", n, std::move(samples)}});
  }
  {
    std::string profs;
    size_t n = 0;
    for (const obs::QueryProfileSnapshot& s : profiles_.Snapshot()) {
      profs += s.digest_hex + " captures=" + std::to_string(s.captures) +
               " wall_us=" + std::to_string(s.last.wall_us) +
               " queue_wait_us=" + std::to_string(s.last.queue_wait_us) +
               " peak_bytes=" + std::to_string(s.last.peak_bytes) +
               " rows_out=" + std::to_string(s.last.rows_out) + "\n";
      ++n;
    }
    write_file("profiles.diag", {{"PROFILES", n, std::move(profs)}});
  }
  {
    std::string fb;
    size_t n = 0;
    for (const obs::PlanFeedbackSnapshot& s : plan_feedback_.Snapshot()) {
      for (const obs::OpFeedback& w : s.worst) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "%s %s/%s est=%lld actual=%lld loops=%lld q=%.2f\n",
                      s.digest_hex.c_str(), w.output.c_str(), w.op.c_str(),
                      static_cast<long long>(w.est_rows + 0.5),
                      static_cast<long long>(w.actual_rows),
                      static_cast<long long>(w.loops), w.q_error);
        fb += buf;
        ++n;
      }
    }
    write_file("plan_feedback.diag", {{"PLAN_FEEDBACK", n, std::move(fb)}});
  }
  {
    // Raw values of every knob plus the resolutions the engine runs with —
    // the first question of any incident review is "what was it configured
    // to do?".
    static const char* const kKnobs[] = {
        "XNFDB_LOG_LEVEL", "XNFDB_LOG", "XNFDB_TRACE", "XNFDB_EVENTS",
        "XNFDB_EVENT_RING", "XNFDB_CRASH_DIR", "XNFDB_QUERY_PROFILES",
        "XNFDB_PLAN_FEEDBACK", "XNFDB_QERROR_ALERT", "XNFDB_METRICS_SAMPLE_MS",
        "XNFDB_METRICS_RING", "XNFDB_WATCHDOG_STALL_MS",
        "XNFDB_WATCHDOG_POLL_MS", "XNFDB_WATCHDOG_CANCEL",
        "XNFDB_MAX_CONCURRENT_QUERIES", "XNFDB_QUERY_TIMEOUT_MS",
        "XNFDB_MAX_RESULT_ROWS", "XNFDB_MEM_BUDGET_BYTES"};
    std::string envs;
    size_t n = 0;
    for (const char* knob : kKnobs) {
      const char* raw = std::getenv(knob);
      envs += std::string(knob) + "=" + (raw != nullptr ? raw : "<unset>") +
              "\n";
      ++n;
    }
    std::string resolved;
    resolved += "events_enabled=" +
                std::to_string(obs::FlightRecorder::Default().enabled()) + "\n";
    resolved += "event_ring=" +
                std::to_string(obs::FlightRecorder::Default().capacity()) +
                "\n";
    resolved += "crash_dir=" + CrashReportDir() + "\n";
    resolved +=
        "capture_profiles=" + std::to_string(capture_profiles_) + "\n";
    resolved +=
        "capture_feedback=" + std::to_string(capture_feedback_) + "\n";
    resolved += "qerror_alert=" + std::to_string(qerror_alert_) + "\n";
    write_file("env.diag", {{"ENV", n, std::move(envs)},
                            {"RESOLVED", 6, std::move(resolved)}});
  }
  {
    std::string lines;
    for (const std::string& line : manifest) lines += line + "\n";
    write_file("MANIFEST.diag", {{"MANIFEST", manifest.size(), lines}});
  }
  return first_error;
}

Result<QueryResult> Database::Query(const std::string& text,
                                    const CompileOptions& copts,
                                    const ExecOptions& eopts) {
  CountServerCall();
  obs::Span query_span = tracer_.StartSpan("query");
  int64_t t0 = NowUs();
  XNFDB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileQueryString(catalog_, text, WithObs(copts)));
  int64_t t1 = NowUs();
  Result<QueryResult> result = ExecuteGoverned(compiled, eopts);
  int64_t t2 = NowUs();
  Fingerprint fp{compiled.normalized_text, compiled.digest};
  RecordStatement(fp, "query",
                  result.ok() ? Status::Ok() : result.status(),
                  result.ok() ? int64_t{result.value().stats.rows_output} : 0,
                  t2 - t0, t1 - t0, t2 - t1,
                  result.ok() ? &result.value().plan_texts : nullptr);
  return result;
}

Result<std::string> Database::Explain(const std::string& text,
                                       const CompileOptions& copts,
                                       const ExecOptions& eopts) {
  XNFDB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileQueryString(catalog_, text, copts));
  return ExplainCompiled(compiled, eopts);
}

Result<std::string> Database::ExplainCompiled(const CompiledQuery& compiled,
                                              const ExecOptions& eopts) {
  std::string out;
  out += "rewrite: " + compiled.rewrite_stats.ToString() + "\n";
  OpCounts counts = CountOps(*compiled.graph);
  out += "operations: " + counts.ToString() + "\n";
  if (compiled.needs_fixpoint) {
    out += "strategy: recursive CO — fixpoint evaluator over the XNF "
           "graph\n";
    out += compiled.graph->ToString();
    return out;
  }
  // Matview provenance: a fresh materialization of this digest means the
  // query would not run its join trees at all — show the serve plan.
  MatViewStore::ServeHandle mv;
  if (matviews_.Peek(compiled.digest, &mv)) {
    out += "matview: " + mv.name + " (fresh, " +
           std::to_string(mv.data->total_rows) + " stored rows)\n";
    ExecStats mv_stats;
    for (const MatViewOutputData& od : mv.data->outputs) {
      out += "output " + od.desc.name +
             (od.desc.is_connection ? " [connection]" : "") + ":\n";
      if (od.desc.is_connection) {
        ExplainLine(1,
                    "MatViewConnections(matview=" + mv.name + ", " +
                        std::to_string(od.conns.size()) + " tuples)",
                    &out);
      } else {
        auto rows_sp =
            std::shared_ptr<const std::vector<Tuple>>(mv.data, &od.rows);
        MatViewScanOp op(mv.name, rows_sp, &mv_stats);
        op.Explain(1, &out);
      }
    }
    return out;
  }
  const qgm::Box* top = compiled.graph->box(compiled.graph->top_box_id());
  ExecStats stats;
  Planner planner(&catalog_, compiled.graph.get(), eopts.plan, &stats);
  for (const qgm::TopOutput& output : top->outputs) {
    out += "output " + output.name +
           (output.is_connection ? " [connection]" : "") + ":\n";
    XNFDB_ASSIGN_OR_RETURN(OperatorPtr op, planner.BoxIterator(output.box_id));
    op->Explain(1, &out);
  }
  return out;
}

Result<std::string> Database::Explain(const std::string& text,
                                      const ExplainOptions& xopts,
                                      const CompileOptions& copts,
                                      const ExecOptions& eopts) {
  if (!xopts.analyze && !xopts.rewrite) return Explain(text, copts, eopts);
  XNFDB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileQueryString(catalog_, text, WithObs(copts)));
  std::string out;
  if (xopts.rewrite) {
    // EXPLAIN REWRITE: the ordered rule log — every Apply in firing order,
    // with pass, outcome, rejected-match count, box counts, and wall time.
    out += "rewrite log (" +
           std::to_string(compiled.rewrite_stats.trace.events.size()) +
           " events):\n";
    out += compiled.rewrite_stats.trace.ToString();
  }
  if (!xopts.analyze) {
    XNFDB_ASSIGN_OR_RETURN(std::string body, ExplainCompiled(compiled, eopts));
    return out + body;
  }
  if (compiled.needs_fixpoint) {
    return Status::Unsupported(
        "EXPLAIN ANALYZE is not supported for recursive COs (the fixpoint "
        "evaluator has no operator tree)");
  }
  ExecOptions eo = WithObs(eopts);
  eo.analyze = true;
  XNFDB_ASSIGN_OR_RETURN(QueryResult result,
                         ExecuteGraph(catalog_, *compiled.graph, eo));
  out += "rewrite: " + compiled.rewrite_stats.ToString() + "\n";
  OpCounts counts = CountOps(*compiled.graph);
  out += "operations: " + counts.ToString() + "\n";
  for (const std::string& plan : result.plan_texts) out += plan;
  out += "stats: " + result.stats.ToString() + "\n";
  // Cardinality-feedback footer: the operator whose estimate was furthest
  // from its actual row count (the per-operator lines carry the rest).
  const obs::OpFeedback* worst = nullptr;
  for (const obs::OpFeedback& f : result.feedback) {
    if (f.est_rows < 0) continue;
    if (worst == nullptr || f.q_error > worst->q_error) worst = &f;
  }
  if (worst != nullptr) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "feedback: worst estimate %s/%s est=%lld actual=%lld "
                  "q-error=%.2f\n",
                  worst->output.c_str(), worst->op.c_str(),
                  static_cast<long long>(worst->est_rows + 0.5),
                  static_cast<long long>(worst->actual_rows), worst->q_error);
    out += buf;
  }
  return out;
}

Result<QueryResult> Database::QueryXnf(const ast::XnfQuery& query,
                                       const CompileOptions& copts,
                                       const ExecOptions& eopts) {
  CountServerCall();
  obs::Span query_span = tracer_.StartSpan("query");
  int64_t t0 = NowUs();
  XNFDB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompileXnf(catalog_, query, WithObs(copts)));
  int64_t t1 = NowUs();
  Result<QueryResult> result = ExecuteGoverned(compiled, eopts);
  int64_t t2 = NowUs();
  Fingerprint fp{compiled.normalized_text, compiled.digest};
  RecordStatement(fp, "query",
                  result.ok() ? Status::Ok() : result.status(),
                  result.ok() ? int64_t{result.value().stats.rows_output} : 0,
                  t2 - t0, t1 - t0, t2 - t1,
                  result.ok() ? &result.value().plan_texts : nullptr);
  return result;
}

Status Database::RunStatement(const ast::Statement& stmt, Outcome* outcome) {
  using Kind = ast::Statement::Kind;
  switch (stmt.kind) {
    case Kind::kSelect: {
      const auto& s = static_cast<const ast::SelectStatement&>(stmt);
      int64_t t0 = NowUs();
      XNFDB_ASSIGN_OR_RETURN(
          CompiledQuery compiled,
          CompileSelect(catalog_, *s.select, WithObs(CompileOptions())));
      int64_t t1 = NowUs();
      XNFDB_ASSIGN_OR_RETURN(outcome->result,
                             ExecuteGoverned(compiled, ExecOptions()));
      outcome->compile_us = t1 - t0;
      outcome->execute_us = NowUs() - t1;
      outcome->kind = Outcome::Kind::kRows;
      return Status::Ok();
    }
    case Kind::kXnfQuery: {
      const auto& s = static_cast<const ast::XnfStatement&>(stmt);
      int64_t t0 = NowUs();
      XNFDB_ASSIGN_OR_RETURN(
          CompiledQuery compiled,
          CompileXnf(catalog_, *s.query, WithObs(CompileOptions())));
      int64_t t1 = NowUs();
      XNFDB_ASSIGN_OR_RETURN(outcome->result,
                             ExecuteGoverned(compiled, ExecOptions()));
      outcome->compile_us = t1 - t0;
      outcome->execute_us = NowUs() - t1;
      outcome->kind = Outcome::Kind::kRows;
      return Status::Ok();
    }
    case Kind::kCreateTable:
      return RunCreateTable(
          static_cast<const ast::CreateTableStatement&>(stmt));
    case Kind::kCreateView: {
      const auto& s = static_cast<const ast::CreateViewStatement&>(stmt);
      // Validate by compiling against the current catalog before storing.
      if (s.is_xnf) {
        XNFDB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                               CompileXnf(catalog_, *s.xnf));
        (void)compiled;
      } else {
        XNFDB_ASSIGN_OR_RETURN(CompiledQuery compiled,
                               CompileSelect(catalog_, *s.select));
        (void)compiled;
      }
      ViewDef def;
      def.name = s.name;
      def.definition = s.definition_text;
      def.is_xnf = s.is_xnf;
      return catalog_.CreateView(std::move(def));
    }
    case Kind::kCreateIndex: {
      const auto& s = static_cast<const ast::CreateIndexStatement&>(stmt);
      XNFDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(s.table));
      return s.ordered ? table->CreateOrderedIndex(s.column)
                       : table->CreateIndex(s.column);
    }
    case Kind::kInsert:
      return RunInsert(static_cast<const ast::InsertStatement&>(stmt),
                       outcome);
    case Kind::kUpdate:
      return RunUpdate(static_cast<const ast::UpdateStatement&>(stmt),
                       outcome);
    case Kind::kDelete:
      return RunDelete(static_cast<const ast::DeleteStatement&>(stmt),
                       outcome);
    case Kind::kDropTable: {
      const auto& name = static_cast<const ast::DropStatement&>(stmt).name;
      matviews_.InvalidateTable(name);
      return catalog_.DropTable(name);
    }
    case Kind::kDropView: {
      const auto& name = static_cast<const ast::DropStatement&>(stmt).name;
      matviews_.InvalidateView(name);
      return catalog_.DropView(name);
    }
    case Kind::kMaterialize:
      return RunMaterialize(static_cast<const ast::MaterializeStatement&>(stmt),
                            outcome);
    case Kind::kDematerialize: {
      const auto& s = static_cast<const ast::MaterializeStatement&>(stmt);
      if (!matviews_.Dematerialize(s.name)) {
        return Status::NotFound("no materialization named " + s.name);
      }
      outcome->kind = Outcome::Kind::kAffected;
      outcome->affected = 1;
      return Status::Ok();
    }
  }
  return Status::Internal("unknown statement kind");
}

Status Database::RunCreateTable(const ast::CreateTableStatement& stmt) {
  XNFDB_ASSIGN_OR_RETURN(
      Table * table, catalog_.CreateTable(stmt.name, Schema(stmt.columns)));
  (void)table;
  if (!stmt.primary_key.empty()) {
    XNFDB_RETURN_IF_ERROR(
        catalog_.DeclarePrimaryKey(stmt.name, stmt.primary_key));
  }
  for (const ast::ForeignKeyClause& fk : stmt.foreign_keys) {
    ForeignKey key;
    key.table = stmt.name;
    key.column = fk.column;
    key.ref_table = fk.ref_table;
    key.ref_column = fk.ref_column;
    XNFDB_RETURN_IF_ERROR(catalog_.DeclareForeignKey(std::move(key)));
  }
  return Status::Ok();
}

Status Database::RunInsert(const ast::InsertStatement& stmt,
                           Outcome* outcome) {
  XNFDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  // Rows are copied for matview delta maintenance only while at least one
  // materialization exists.
  const bool track = matviews_.size() > 0;
  std::vector<Tuple> inserted_rows;
  size_t inserted = 0;
  Status status = Status::Ok();
  for (const std::vector<ast::ExprPtr>& row_exprs : stmt.rows) {
    Tuple row;
    row.reserve(row_exprs.size());
    for (const ast::ExprPtr& e : row_exprs) {
      Result<Value> v = EvalLiteralExpr(*e);
      if (!v.ok()) {
        status = v.status();
        break;
      }
      row.push_back(std::move(v).value());
    }
    if (!status.ok()) break;
    if (track) inserted_rows.push_back(row);
    Result<Rid> rid = table->Insert(std::move(row));
    if (!rid.ok()) {
      // The row never landed; its copy must not reach the delta hook.
      if (track) inserted_rows.pop_back();
      status = rid.status();
      break;
    }
    ++inserted;
  }
  // The hook runs even on a mid-batch failure: rows already inserted have
  // changed the base table, and every dependent materialization must see
  // them (or go stale).
  if (!inserted_rows.empty()) {
    matviews_.OnBaseTableDml(catalog_, table->name(), inserted_rows, {});
  }
  XNFDB_RETURN_IF_ERROR(status);
  outcome->kind = Outcome::Kind::kAffected;
  outcome->affected = inserted;
  return Status::Ok();
}

Status Database::RunUpdate(const ast::UpdateStatement& stmt,
                           Outcome* outcome) {
  XNFDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  XNFDB_ASSIGN_OR_RETURN(auto ctx,
                         RowContext::Create(*table, stmt.where.get()));
  // Resolve assignment targets and compile right-hand sides (they may
  // reference the row being updated, e.g. SET SAL = SAL * 2).
  std::vector<std::pair<int, qgm::ExprPtr>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    XNFDB_ASSIGN_OR_RETURN(
        int idx, table->schema().ResolveColumn(col, "table " + table->name()));
    XNFDB_ASSIGN_OR_RETURN(qgm::ExprPtr compiled, ctx->Translate(*expr));
    sets.emplace_back(idx, std::move(compiled));
  }
  // Collect matching RIDs first so updates do not affect the scan.
  std::vector<Rid> matches;
  for (Rid rid = 0; rid < table->rid_bound(); ++rid) {
    if (!table->IsLive(rid)) continue;
    XNFDB_ASSIGN_OR_RETURN(bool m, ctx->Matches(table->Get(rid)));
    if (m) matches.push_back(rid);
  }
  const bool track = matviews_.size() > 0;
  std::vector<Tuple> old_rows, new_rows;
  Status status = Status::Ok();
  for (Rid rid : matches) {
    Tuple row = table->Get(rid);
    Tuple updated = row;
    for (const auto& [idx, expr] : sets) {
      Result<Value> v = ctx->Eval(*expr, row);
      if (!v.ok()) {
        status = v.status();
        break;
      }
      updated[idx] = std::move(v).value();
    }
    if (!status.ok()) break;
    if (track) {
      old_rows.push_back(std::move(row));
      new_rows.push_back(updated);
    }
    Status up = table->Update(rid, std::move(updated));
    if (!up.ok()) {
      if (track) {
        old_rows.pop_back();
        new_rows.pop_back();
      }
      status = up;
      break;
    }
  }
  // An UPDATE is a delete of the old images plus an insert of the new ones;
  // rows updated before a mid-batch failure still count.
  if (!old_rows.empty()) {
    matviews_.OnBaseTableDml(catalog_, table->name(), new_rows, old_rows);
  }
  XNFDB_RETURN_IF_ERROR(status);
  outcome->kind = Outcome::Kind::kAffected;
  outcome->affected = matches.size();
  return Status::Ok();
}

Status Database::RunDelete(const ast::DeleteStatement& stmt,
                           Outcome* outcome) {
  XNFDB_ASSIGN_OR_RETURN(Table * table, catalog_.GetTable(stmt.table));
  XNFDB_ASSIGN_OR_RETURN(auto ctx,
                         RowContext::Create(*table, stmt.where.get()));
  std::vector<Rid> matches;
  for (Rid rid = 0; rid < table->rid_bound(); ++rid) {
    if (!table->IsLive(rid)) continue;
    XNFDB_ASSIGN_OR_RETURN(bool m, ctx->Matches(table->Get(rid)));
    if (m) matches.push_back(rid);
  }
  const bool track = matviews_.size() > 0;
  std::vector<Tuple> deleted_rows;
  Status status = Status::Ok();
  for (Rid rid : matches) {
    if (track) deleted_rows.push_back(table->Get(rid));
    Status del = table->Delete(rid);
    if (!del.ok()) {
      if (track) deleted_rows.pop_back();
      status = del;
      break;
    }
  }
  if (!deleted_rows.empty()) {
    matviews_.OnBaseTableDml(catalog_, table->name(), {}, deleted_rows);
  }
  XNFDB_RETURN_IF_ERROR(status);
  outcome->kind = Outcome::Kind::kAffected;
  outcome->affected = matches.size();
  return Status::Ok();
}

}  // namespace xnfdb
