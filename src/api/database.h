// The embedded database facade: one object owning the catalog and providing
// statement execution, query compilation+evaluation, and the server-call
// accounting used to model the workstation/server boundary of Fig. 7.
//
// Usage:
//   Database db;
//   db.ExecuteScript("CREATE TABLE DEPT (DNO INTEGER, ...); INSERT ...;");
//   auto result = db.Query("OUT OF xdept AS (SELECT ...) ... TAKE *");

#ifndef XNFDB_API_DATABASE_H_
#define XNFDB_API_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/governor.h"
#include "api/watchdog.h"
#include "matview/matview.h"
#include "common/env.h"
#include "common/status.h"
#include "exec/executor.h"
#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/plan_feedback.h"
#include "obs/query_profile.h"
#include "obs/sampler.h"
#include "obs/statement_stats.h"
#include "obs/trace.h"
#include "parser/ast.h"
#include "parser/fingerprint.h"
#include "storage/catalog.h"
#include "xnf/compiler.h"

namespace xnfdb {

class Database {
 public:
  Database() : Database(Env::Default()) {}
  // All of this database's durable I/O (SaveTo/LoadFrom) goes through
  // `env`; pass a FaultInjectionEnv to exercise failure paths. The
  // constructor registers the sys$ system views (storage/sysview.h) on the
  // fresh catalog.
  explicit Database(Env* env);
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  // Dumps the collected trace to the XNFDB_TRACE path, when tracing is on.
  ~Database();

  Env* env() const { return env_; }

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }

  // Outcome of one statement.
  struct Outcome {
    enum class Kind { kNone, kRows, kAffected };
    Kind kind = Kind::kNone;
    QueryResult result;   // kRows
    size_t affected = 0;  // kAffected (rows inserted/updated/deleted)
    // Phase wall times for the statement (queries only; 0 for DML/DDL).
    int64_t compile_us = 0;
    int64_t execute_us = 0;
  };

  // Parses and executes a single statement of any kind.
  Result<Outcome> Execute(const std::string& sql);

  // Executes a ';'-separated script; returns the number of statements run.
  Result<size_t> ExecuteScript(const std::string& script);

  // Compiles and runs a query: a SELECT, an OUT OF query, or the name of a
  // stored (SQL or XNF) view. Recursive COs are routed to the fixpoint
  // evaluator automatically.
  Result<QueryResult> Query(const std::string& text,
                            const CompileOptions& copts = {},
                            const ExecOptions& eopts = {});

  // Runs an already parsed XNF query.
  Result<QueryResult> QueryXnf(const ast::XnfQuery& query,
                               const CompileOptions& copts = {},
                               const ExecOptions& eopts = {});

  // EXPLAIN: compiles `text` and renders the rewrite statistics, operation
  // counts, and the physical plan of every output stream — without
  // executing the query.
  Result<std::string> Explain(const std::string& text,
                              const CompileOptions& copts = {},
                              const ExecOptions& eopts = {});

  // EXPLAIN ANALYZE ({analyze: true}): additionally *executes* the query
  // and annotates every operator line with its actual row count, loop count
  // and inclusive wall time.
  // EXPLAIN REWRITE ({rewrite: true}): prepends the ordered rewrite-rule
  // log — one line per rule application with pass number, fired/no-match,
  // rejected-match count, QGM box counts before/after, and wall time.
  struct ExplainOptions {
    bool analyze = false;
    bool rewrite = false;
  };
  Result<std::string> Explain(const std::string& text,
                              const ExplainOptions& xopts,
                              const CompileOptions& copts = {},
                              const ExecOptions& eopts = {});

  // --- observability ------------------------------------------------------
  // This database's tracer (enabled by the XNFDB_TRACE environment
  // variable) and the metrics registry it reports into (the process-wide
  // default, shared with the CO cache and Env instrumentation).
  obs::Tracer& tracer() { return tracer_; }
  obs::MetricsRegistry& metrics() { return *metrics_; }

  // One JSON snapshot of every metric in the system: phase-latency
  // histograms, executor counters, CO cache swizzle/fetch counters, env I/O
  // counters, and server.calls.
  std::string MetricsJson() const { return metrics_->ToJson(); }
  std::string MetricsPrometheus() const {
    return metrics_->ToPrometheusText();
  }

  // Per-statement-shape statistics (the store behind sys$statements):
  // every Execute/Query/QueryXnf fingerprints its statement and
  // accumulates calls, errors, rows and latency quantiles per digest.
  const obs::StatementStore& statement_stats() const { return statements_; }
  obs::StatementStore& statement_stats() { return statements_; }

  // Always-on per-query profiles (the store behind SYS$QUERY_PROFILES):
  // every successful query execution captures its per-operator-class
  // actuals, morsel-worker breakdown, memory high-water and queue wait
  // under its statement fingerprint. XNFDB_QUERY_PROFILES=0 disables
  // capture.
  const obs::QueryProfileStore& query_profiles() const { return profiles_; }
  obs::QueryProfileStore& query_profiles() { return profiles_; }

  // Plan-quality feedback (the store behind SYS$REWRITES, SYS$PLAN_FEEDBACK
  // and SYS$PLAN_HISTORY): every compile captures the statement's ordered
  // rewrite-rule trace, and every successful execution joins the planner's
  // cardinality estimates against the operators' actuals (worst q-error
  // offenders per statement) and appends to the plan-shape history. A plan
  // flip emits one structured warn line on the "planchange" channel and
  // bumps the plan.changes counter. XNFDB_PLAN_FEEDBACK=0 disables capture.
  const obs::PlanFeedbackStore& plan_feedback() const { return plan_feedback_; }
  obs::PlanFeedbackStore& plan_feedback() { return plan_feedback_; }

  // The metrics time-series sampler behind SYS$METRICS_HISTORY. Its
  // background thread starts when XNFDB_METRICS_SAMPLE_MS > 0 (ring size
  // XNFDB_METRICS_RING, default 120); SampleNow() works either way (shell
  // `.sample`).
  obs::MetricsSampler& sampler() { return *sampler_; }
  const obs::MetricsSampler& sampler() const { return *sampler_; }

  // The flight recorder behind SYS$EVENTS (the process-wide instance;
  // XNFDB_EVENTS=0 disables recording, ring size XNFDB_EVENT_RING).
  obs::FlightRecorder& events() { return obs::FlightRecorder::Default(); }

  // The health/alert engine behind SYS$HEALTH and SYS$ALERTS. Built-in
  // rules are evaluated on every sampler tick (background or SampleNow);
  // each OK<->FIRING transition emits one warn line on the "health"
  // channel and one flight-recorder event.
  obs::HealthEngine& health() { return health_; }
  const obs::HealthEngine& health() const { return health_; }
  // {"status":"ok"|"degraded",...} — the machine-readable health payload.
  std::string HealthReport() const { return health_.ReportJson(); }

  // Writes an on-demand diagnostic bundle into `dir` (created if needed):
  // the crash-style report plus metrics, flight-recorder events, health
  // state, live queries, sampler history, query profiles, plan feedback and
  // resolved env knobs — each as a checksummed XNFDIAG sectioned file,
  // written atomically. A failed file is skipped (and listed as failed in
  // MANIFEST.diag) while the rest of the bundle is still written; the first
  // failure is returned. Shell `.diag`; the same content a crash report
  // condenses.
  Status WriteDiagnosticBundle(const std::string& dir) const;

  // The stuck-query watchdog. Its background thread starts when
  // XNFDB_WATCHDOG_STALL_MS > 0 (poll cadence XNFDB_WATCHDOG_POLL_MS;
  // XNFDB_WATCHDOG_CANCEL=1 turns reports into cooperative kills).
  Watchdog& watchdog() { return *watchdog_; }
  const Watchdog& watchdog() const { return *watchdog_; }

  // Slow-query log: any statement whose total wall time exceeds the
  // threshold emits one JSON line on the "slowlog" channel of
  // Logger::Default(), carrying the normalized text, phase timings, and
  // (for queries) the EXPLAIN ANALYZE plan. While armed, query execution
  // runs in analyze mode so the plan is captured without a re-run.
  // Negative (the default) disarms.
  void SetSlowQueryThreshold(int64_t us) { slow_query_threshold_us_ = us; }
  int64_t slow_query_threshold_us() const { return slow_query_threshold_us_; }

  // --- persistence (storage/persist.h through the env) --------------------
  // Saves the whole catalog crash-safely: v2 checksummed format, written to
  // a temp file, synced, then atomically renamed over `path` — an
  // interrupted save leaves the previous database file intact.
  Status SaveTo(const std::string& path) const;
  // Restores a database saved with SaveTo (v1 and v2 files); the catalog
  // must be empty.
  Status LoadFrom(const std::string& path);

  // --- client/server boundary model (Sect. 5.1) ---------------------------
  // Every Execute/Query counts one server call; per-tuple cursor fetches
  // (see FetchAll) count one call per tuple, modelling the traditional
  // "one tuple at a time" interface.
  int64_t server_calls() const { return server_calls_; }
  void ResetServerCalls() { server_calls_ = 0; }
  void CountServerCall(int64_t n = 1) {
    server_calls_ += n;
    server_calls_counter_->Increment(n);
  }

  // Models transient failures of the client/server boundary: the next `n`
  // Execute calls fail with kIoError before doing any work. Lets tests
  // drive write-back's bounded retry-with-backoff path.
  void InjectTransientFailures(int n) { transient_failures_ = n; }

  // --- materialized CO views (src/matview/) -------------------------------
  // The server-side materialized-view store behind SYS$MATVIEWS: hot view
  // shapes are captured automatically by execution frequency (or pinned via
  // MATERIALIZE <view>), kept fresh under DML by delta propagation with a
  // stale-then-recompute fallback, and matching executions are served by
  // MatViewScanOp over the stored answer set. XNFDB_MATVIEWS=0 disables.
  MatViewStore& matviews() { return matviews_; }
  const MatViewStore& matviews() const { return matviews_; }

  // --- resource governance (api/governor.h) -------------------------------
  // Every Query/QueryXnf/SELECT execution runs under a QueryContext with
  // limits resolved from ExecOptions (or the governor's env-derived
  // defaults) and is registered with the governor for the duration —
  // admission control, SYS$QUERIES visibility, and kill support.
  Governor& governor() { return governor_; }
  const Governor& governor() const { return governor_; }

  // Requests cooperative termination of a live query by its SYS$QUERIES id
  // (shell `.kill`). NotFound when the id is not live.
  Status Cancel(int64_t query_id) { return governor_.Cancel(query_id); }

 private:
  // RunStatement plus statement-stats recording and slow-query logging.
  Status RunTimed(const ast::Statement& stmt, Outcome* outcome);
  Status RunStatement(const ast::Statement& stmt, Outcome* outcome);
  // Accumulates one execution into `statements_` and emits the slow-query
  // log line when armed and exceeded — or, regardless of speed, when the
  // governor terminated the statement (kill/deadline/budget attribution).
  // `plan_texts` may be null.
  void RecordStatement(const Fingerprint& fp, const char* kind,
                       const Status& status, int64_t rows, int64_t total_us,
                       int64_t compile_us, int64_t execute_us,
                       const std::vector<std::string>* plan_texts);
  // Renders the plain-EXPLAIN body (rewrite summary, operation counts, and
  // the physical plan of every output) for an already compiled query.
  Result<std::string> ExplainCompiled(const CompiledQuery& compiled,
                                      const ExecOptions& eopts);
  // Runs a compiled query under governance: builds the QueryContext (limits
  // from `eopts` falling back to governor defaults), admits, executes via
  // the fixpoint or graph path, and releases.
  // Non-const `compiled`: when this execution is captured as a
  // materialization, the compiled graph moves into the matview store (for
  // delta re-planning) instead of being cloned.
  Result<QueryResult> ExecuteGoverned(CompiledQuery& compiled,
                                      const ExecOptions& eopts);
  // Builds the QueryResult of a matview serve: MatViewScanOps over the
  // stored component streams, connections emitted from stored partner-tid
  // tuples, stats/plan-shape/feedback/profile filled as a real execution.
  Result<QueryResult> ServeMatView(const CompiledQuery& compiled,
                                   const MatViewStore::ServeHandle& handle,
                                   const ExecOptions& eo);
  Status RunMaterialize(const ast::MaterializeStatement& stmt,
                        Outcome* outcome);
  Status RunCreateTable(const ast::CreateTableStatement& stmt);
  Status RunInsert(const ast::InsertStatement& stmt, Outcome* outcome);
  Status RunUpdate(const ast::UpdateStatement& stmt, Outcome* outcome);
  Status RunDelete(const ast::DeleteStatement& stmt, Outcome* outcome);

  // Fills unset observability sinks in copies of the caller's options.
  CompileOptions WithObs(const CompileOptions& copts);
  ExecOptions WithObs(const ExecOptions& eopts);

  Catalog catalog_;
  Env* env_;
  int64_t server_calls_ = 0;
  int transient_failures_ = 0;
  int64_t slow_query_threshold_us_ = -1;
  obs::StatementStore statements_{512};
  obs::QueryProfileStore profiles_{256};
  bool capture_profiles_ = true;  // XNFDB_QUERY_PROFILES != 0
  obs::PlanFeedbackStore plan_feedback_{256};
  bool capture_feedback_ = true;  // XNFDB_PLAN_FEEDBACK != 0
  obs::Tracer tracer_{obs::Tracer::FromEnv{}};
  obs::MetricsRegistry* metrics_ = &obs::MetricsRegistry::Default();
  obs::Counter* server_calls_counter_ = metrics_->GetCounter("server.calls");
  // Executions whose worst q-error reached XNFDB_QERROR_ALERT (the series
  // behind the qerror_blowups health rule).
  int64_t qerror_alert_ = 100;
  obs::Counter* qerror_blowups_ =
      metrics_->GetCounter("plan.qerror_blowups");
  // Declared after metrics_ (counter handles) and before governor_ (DML
  // under an admitted statement may invalidate entries).
  MatViewStore matviews_{MatViewConfig::FromEnv(), metrics_};
  Governor governor_{GovernorOptions::FromEnv(), metrics_};
  // Declared before sampler_: the sampler's on-sample callback evaluates
  // health rules, so the engine must outlive the sampler thread's join.
  obs::HealthEngine health_;
  // Declared after governor_/metrics_/health_: both background threads
  // observe them and must be destroyed (joined) first.
  std::unique_ptr<obs::MetricsSampler> sampler_;
  std::unique_ptr<Watchdog> watchdog_;
};

}  // namespace xnfdb

#endif  // XNFDB_API_DATABASE_H_
