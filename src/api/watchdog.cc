#include "api/watchdog.h"

#include <chrono>
#include <set>
#include <utility>

#include "common/log.h"
#include "common/str_util.h"

namespace xnfdb {

WatchdogOptions WatchdogOptions::FromEnv() {
  WatchdogOptions o;
  o.stall_ms = ParseEnvInt("XNFDB_WATCHDOG_STALL_MS", 0, int64_t{1} << 40, 0);
  o.poll_ms = ParseEnvInt("XNFDB_WATCHDOG_POLL_MS", 1, int64_t{1} << 40, 1000);
  o.auto_cancel = ParseEnvBool("XNFDB_WATCHDOG_CANCEL", false);
  return o;
}

Watchdog::Watchdog(Governor* governor, obs::MetricsRegistry* metrics,
                   WatchdogOptions options)
    : governor_(governor),
      scans_counter_(metrics->GetCounter("watchdog.scans")),
      stalled_counter_(metrics->GetCounter("watchdog.stalled")),
      cancelled_counter_(metrics->GetCounter("watchdog.cancelled")),
      options_(options) {}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_running_ || options_.stall_ms <= 0) return;
  thread_running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  thread_running_ = false;
  stop_requested_ = false;
}

bool Watchdog::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_running_;
}

void Watchdog::SetOptions(const WatchdogOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_ = options;
  }
  cv_.notify_all();
}

WatchdogOptions Watchdog::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

int64_t Watchdog::scans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scans_;
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    const int64_t poll_ms = options_.poll_ms > 0 ? options_.poll_ms : 1000;
    cv_.wait_for(lock, std::chrono::milliseconds(poll_ms),
                 [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();  // scanning takes the governor's lock; don't nest ours
    ScanOnce();
    lock.lock();
  }
}

int Watchdog::ScanOnce() {
  WatchdogOptions opts;
  {
    std::lock_guard<std::mutex> lock(mu_);
    opts = options_;
    ++scans_;
  }
  scans_counter_->Increment();

  const int64_t now_us = QueryContext::NowUs();
  const int64_t stall_us = opts.stall_ms * 1000;
  std::vector<Governor::QueryInfo> live = governor_->Snapshot();

  int flagged = 0;
  std::vector<std::pair<Governor::QueryInfo, int64_t>> to_report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::set<int64_t> seen;
    for (const Governor::QueryInfo& q : live) {
      seen.insert(q.id);
      Track& t = tracks_[q.id];
      const bool changed = q.progress_ticks != t.ticks ||
                           q.rows_out != t.rows || q.bytes_reserved != t.bytes;
      if (changed || t.last_change_us == 0) {
        t.ticks = q.progress_ticks;
        t.rows = q.rows_out;
        t.bytes = q.bytes_reserved;
        t.last_change_us = now_us;
        t.reported = false;  // progress re-arms the report
        continue;
      }
      // Queued queries wait by design; only running ones can be stuck.
      if (q.state != "running" || t.reported || stall_us <= 0) continue;
      const int64_t stalled_for = now_us - t.last_change_us;
      if (stalled_for < stall_us) continue;
      t.reported = true;
      ++flagged;
      to_report.emplace_back(q, stalled_for);
    }
    // Prune queries that finished since the last scan.
    for (auto it = tracks_.begin(); it != tracks_.end();) {
      it = seen.count(it->first) ? std::next(it) : tracks_.erase(it);
    }
  }

  for (const auto& [q, stalled_for] : to_report) {
    stalled_counter_->Increment();
    Logger::Default().Log(
        LogLevel::kWarn, "watchdog", "stalled query",
        {LogField::N("query_id", q.id),
         LogField::N("stalled_us", stalled_for),
         LogField::N("elapsed_us", q.elapsed_us),
         LogField::N("rows_out", q.rows_out),
         LogField::N("bytes_reserved", q.bytes_reserved),
         LogField::N("progress_ticks", q.progress_ticks),
         LogField::N("queue_wait_us", q.queue_wait_us),
         LogField::S("action", opts.auto_cancel ? "cancel" : "report"),
         LogField::S("text", q.text)});
    if (opts.auto_cancel) {
      if (governor_->Cancel(q.id).ok()) cancelled_counter_->Increment();
    }
  }
  return flagged;
}

}  // namespace xnfdb
