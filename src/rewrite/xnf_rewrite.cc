#include "rewrite/xnf_rewrite.h"

#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

namespace xnfdb {

namespace {

using qgm::AddQuant;
using qgm::Box;
using qgm::BoxKind;
using qgm::ExistsGroup;
using qgm::Expr;
using qgm::ExprPtr;
using qgm::HeadColumn;
using qgm::QuantKind;
using qgm::Quantifier;
using qgm::QueryGraph;
using qgm::TopOutput;
using qgm::XnfComponent;

// Topologically sorts the component tables along parent->child relationship
// edges. Returns false on a cycle.
bool TopoSortTables(Box& xnf, std::vector<XnfComponent*>* order) {
  std::map<std::string, int> indegree;
  std::map<std::string, std::vector<std::string>> succ;
  for (const XnfComponent& c : xnf.components) {
    if (!c.is_relationship) indegree[c.name] = 0;
  }
  for (const XnfComponent& r : xnf.components) {
    if (!r.is_relationship) continue;
    for (const std::string& child : r.children) {
      succ[r.parent].push_back(child);
      ++indegree[child];
    }
  }
  std::vector<std::string> ready;
  for (const auto& [name, deg] : indegree) {
    if (deg == 0) ready.push_back(name);
  }
  std::vector<std::string> sorted;
  while (!ready.empty()) {
    std::string name = ready.back();
    ready.pop_back();
    sorted.push_back(name);
    for (const std::string& s : succ[name]) {
      if (--indegree[s] == 0) ready.push_back(s);
    }
  }
  if (sorted.size() != indegree.size()) return false;
  for (const std::string& name : sorted) {
    order->push_back(xnf.FindComponent(name));
  }
  return true;
}

// Resolves TAKE column names into head indexes of `box`; empty take list
// means all columns.
Result<std::vector<int>> TakeProjection(const Box& box,
                                        const std::vector<std::string>& cols) {
  std::vector<int> out;
  if (cols.empty()) {
    out.resize(box.HeadArity());
    std::iota(out.begin(), out.end(), 0);
    return out;
  }
  for (const std::string& name : cols) {
    int idx = -1;
    for (size_t i = 0; i < box.HeadArity(); ++i) {
      if (IdentEquals(box.HeadName(i), name)) {
        idx = static_cast<int>(i);
        break;
      }
    }
    if (idx < 0) {
      return Status::SemanticError("TAKE column '" + name +
                                   "' not found in component " + box.label);
    }
    out.push_back(idx);
  }
  return out;
}

// The rewrite proper; one instance per invocation.
class XnfRewriter {
 public:
  XnfRewriter(QueryGraph* graph, Box* xnf, const XnfRewriteOptions& options)
      : graph_(graph), xnf_(xnf), options_(options) {}

  Status Run();

 private:
  // The column offset of partner `pi` within relationship `r`'s head.
  size_t PartnerOffset(const XnfComponent& r, size_t pi) const;
  // Partner names of `r` in head order (parent first).
  std::vector<std::string> Partners(const XnfComponent& r) const;

  // Shared mode: turns the relationship's semantic box into the connection
  // box by re-pointing its parent quantifier at the parent's final box.
  Result<int> ConnectionBox(const XnfComponent& rel);

  // Builds `DISTINCT SELECT <child cols> FROM CB_rel` for child `comp`.
  Result<int> ProjectionOfConnection(const XnfComponent& rel,
                                     const XnfComponent& comp);

  // Unshared mode: child derivation via existential reachability groups.
  Result<int> ExistsDerivation(const XnfComponent& comp);
  // Unshared mode: an independent join box deriving relationship `rel`
  // over the partners' final boxes.
  Result<int> IndependentRelationshipBox(const XnfComponent& rel);

  Status BuildTopOutputs();

  // Relationships having `name` among their children.
  std::vector<const XnfComponent*> IncomingRels(const std::string& name) const;

  QueryGraph* graph_;
  Box* xnf_;
  XnfRewriteOptions options_;
  std::map<std::string, int> final_box_;      // component -> final box id
  std::map<std::string, int> connection_box_; // relationship -> CB id
};

std::vector<std::string> XnfRewriter::Partners(const XnfComponent& r) const {
  std::vector<std::string> partners;
  partners.push_back(r.parent);
  for (const std::string& c : r.children) partners.push_back(c);
  return partners;
}

size_t XnfRewriter::PartnerOffset(const XnfComponent& r, size_t pi) const {
  std::vector<std::string> partners = Partners(r);
  size_t offset = 0;
  for (size_t i = 0; i < pi; ++i) {
    const XnfComponent* pc = xnf_->FindComponent(partners[i]);
    offset += graph_->box(pc->box_id)->HeadArity();
  }
  return offset;
}

std::vector<const XnfComponent*> XnfRewriter::IncomingRels(
    const std::string& name) const {
  std::vector<const XnfComponent*> rels;
  for (const XnfComponent& r : xnf_->components) {
    if (!r.is_relationship) continue;
    for (const std::string& child : r.children) {
      if (IdentEquals(child, name)) {
        rels.push_back(&r);
        break;
      }
    }
  }
  return rels;
}

Result<int> XnfRewriter::ConnectionBox(const XnfComponent& rel) {
  auto it = connection_box_.find(rel.name);
  if (it != connection_box_.end()) return it->second;
  Box* rb = graph_->box(rel.box_id);
  // The semantic box already ranges over the partners' candidate boxes and
  // the USING tables with the relationship predicate in place. The parent
  // side must range over the parent's *final* (reachability-filtered) box;
  // children stay on their candidate boxes — their filtering is exactly
  // what this box defines.
  auto fit = final_box_.find(rel.parent);
  if (fit == final_box_.end()) {
    return Status::Internal("parent " + rel.parent +
                            " has no final box yet (topological order bug)");
  }
  const XnfComponent* parent_comp = xnf_->FindComponent(rel.parent);
  if (!rb->quants.empty() &&
      rb->quants[0].box_id == parent_comp->box_id) {
    rb->quants[0].box_id = fit->second;
  } else {
    return Status::Internal("relationship box of " + rel.name +
                            " does not start with its parent quantifier");
  }
  connection_box_[rel.name] = rb->id;
  return rb->id;
}

Result<int> XnfRewriter::ProjectionOfConnection(const XnfComponent& rel,
                                                const XnfComponent& comp) {
  XNFDB_ASSIGN_OR_RETURN(int cb_id, ConnectionBox(rel));
  Box* proj = graph_->NewBox(BoxKind::kSelect, comp.name);
  int q = AddQuant(graph_, proj, QuantKind::kForeach, cb_id, rel.name);
  // Locate this child's column range. For self-relationships or repeated
  // children the FIRST occurrence as a child (index >= 1) is used.
  std::vector<std::string> partners = Partners(rel);
  size_t pi = 1;
  while (pi < partners.size() && !IdentEquals(partners[pi], comp.name)) ++pi;
  if (pi >= partners.size()) {
    return Status::Internal("component " + comp.name +
                            " not a child of relationship " + rel.name);
  }
  size_t offset = PartnerOffset(rel, pi);
  const Box* cand = graph_->box(comp.box_id);
  for (size_t i = 0; i < cand->HeadArity(); ++i) {
    HeadColumn h;
    h.name = cand->HeadName(i);
    h.expr = Expr::MakeColRef(q, static_cast<int>(offset + i));
    proj->head.push_back(std::move(h));
  }
  proj->distinct = true;
  return proj->id;
}

Result<int> XnfRewriter::ExistsDerivation(const XnfComponent& comp) {
  Box* box = graph_->NewBox(BoxKind::kSelect, comp.name);
  int self_q =
      AddQuant(graph_, box, QuantKind::kForeach, comp.box_id, comp.name);
  const Box* cand = graph_->box(comp.box_id);
  for (size_t i = 0; i < cand->HeadArity(); ++i) {
    HeadColumn h;
    h.name = cand->HeadName(i);
    h.expr = Expr::MakeColRef(self_q, static_cast<int>(i));
    box->head.push_back(std::move(h));
  }
  // One exists group per incoming relationship (disjunctive reachability).
  for (const XnfComponent* rel : IncomingRels(comp.name)) {
    const Box* rb = graph_->box(rel->box_id);
    ExistsGroup group;
    // Map each quantifier of the relationship's semantic box: the child
    // occurrence of `comp` maps onto self_q; every other partner / USING
    // quantifier becomes an E-quantifier.
    std::vector<std::string> partners = Partners(*rel);
    std::map<int, int> quant_map;  // old quant id -> new quant id
    bool mapped_self = false;
    for (size_t qi = 0; qi < rb->quants.size(); ++qi) {
      const Quantifier& q = rb->quants[qi];
      bool is_self = false;
      if (!mapped_self && qi >= 1 && qi < partners.size() &&
          IdentEquals(partners[qi], comp.name)) {
        is_self = true;
        mapped_self = true;
      }
      if (is_self) {
        quant_map[q.id] = self_q;
        continue;
      }
      // Parent quantifier ranges over the parent's final box; everything
      // else over its original (candidate / base) box.
      int ranged = q.box_id;
      if (qi == 0) {
        auto fit = final_box_.find(rel->parent);
        if (fit == final_box_.end()) {
          return Status::Internal("parent " + rel->parent +
                                  " has no final box yet");
        }
        ranged = fit->second;
      }
      int eq = AddQuant(graph_, box, QuantKind::kExists, ranged, q.name);
      group.quant_ids.push_back(eq);
      quant_map[q.id] = eq;
    }
    if (!mapped_self) {
      return Status::Internal("child " + comp.name +
                              " not found among partners of " + rel->name);
    }
    for (const ExprPtr& p : rb->preds) {
      ExprPtr clone = p->Clone();
      for (const auto& [from, to] : quant_map) {
        const Box* ranged = graph_->RangedBox(to);
        std::vector<int> identity(ranged->HeadArity());
        std::iota(identity.begin(), identity.end(), 0);
        XNFDB_RETURN_IF_ERROR(RemapQuant(clone.get(), from, to, identity));
      }
      group.preds.push_back(std::move(clone));
    }
    box->exists_groups.push_back(std::move(group));
  }
  // Reachability through *any* incoming relationship suffices (Sect. 2).
  box->groups_disjunctive = true;
  return box->id;
}

Result<int> XnfRewriter::IndependentRelationshipBox(const XnfComponent& rel) {
  const Box* rb = graph_->box(rel.box_id);
  Box* jb = graph_->NewBox(BoxKind::kSelect, rel.name + "_pairs");
  std::vector<std::string> partners = Partners(rel);
  std::map<int, int> quant_map;
  for (size_t qi = 0; qi < rb->quants.size(); ++qi) {
    const Quantifier& q = rb->quants[qi];
    int ranged = q.box_id;
    if (qi < partners.size()) {
      auto fit = final_box_.find(partners[qi]);
      if (fit == final_box_.end()) {
        return Status::Internal("partner " + partners[qi] +
                                " has no final box");
      }
      ranged = fit->second;
    }
    int nq = AddQuant(graph_, jb, QuantKind::kForeach, ranged, q.name);
    quant_map[q.id] = nq;
  }
  for (const ExprPtr& p : rb->preds) {
    ExprPtr clone = p->Clone();
    for (const auto& [from, to] : quant_map) {
      const Box* ranged = graph_->RangedBox(to);
      std::vector<int> identity(ranged->HeadArity());
      std::iota(identity.begin(), identity.end(), 0);
      XNFDB_RETURN_IF_ERROR(RemapQuant(clone.get(), from, to, identity));
    }
    jb->preds.push_back(std::move(clone));
  }
  // Head: clone the semantic head (partner columns), remapped.
  for (const HeadColumn& h : rb->head) {
    HeadColumn nh;
    nh.name = h.name;
    nh.expr = h.expr->Clone();
    for (const auto& [from, to] : quant_map) {
      const Box* ranged = graph_->RangedBox(to);
      std::vector<int> identity(ranged->HeadArity());
      std::iota(identity.begin(), identity.end(), 0);
      XNFDB_RETURN_IF_ERROR(RemapQuant(nh.expr.get(), from, to, identity));
    }
    jb->head.push_back(std::move(nh));
  }
  return jb->id;
}

Status XnfRewriter::BuildTopOutputs() {
  Box* top = graph_->box(graph_->top_box_id());
  for (const XnfComponent& c : xnf_->components) {
    if (!c.taken) continue;
    TopOutput out;
    out.name = c.name;
    if (!c.is_relationship) {
      out.xnf_component = true;
      out.box_id = final_box_[c.name];
      const Box* fb = graph_->box(out.box_id);
      XNFDB_ASSIGN_OR_RETURN(out.cols, TakeProjection(*fb, c.take_columns));
      top->outputs.push_back(std::move(out));
      continue;
    }
    // Relationship output.
    out.is_connection = true;
    int box_id;
    if (options_.share_connection_boxes) {
      XNFDB_ASSIGN_OR_RETURN(box_id, ConnectionBox(c));
    } else {
      XNFDB_ASSIGN_OR_RETURN(box_id, IndependentRelationshipBox(c));
    }
    out.box_id = box_id;
    std::vector<std::string> partners = Partners(c);
    for (size_t pi = 0; pi < partners.size(); ++pi) {
      const XnfComponent* pc = xnf_->FindComponent(partners[pi]);
      const Box* cand = graph_->box(pc->box_id);
      size_t offset = PartnerOffset(c, pi);
      // Apply the partner's own TAKE projection so connection halves line
      // up with the component streams for tuple-id resolution.
      XNFDB_ASSIGN_OR_RETURN(std::vector<int> proj,
                             TakeProjection(*cand, pc->take_columns));
      std::vector<int> cols;
      for (int idx : proj) cols.push_back(static_cast<int>(offset) + idx);
      out.partner_names.push_back(partners[pi]);
      out.partner_arity.push_back(static_cast<int>(cols.size()));
      out.partner_cols.push_back(std::move(cols));
    }
    top->outputs.push_back(std::move(out));
  }
  return Status::Ok();
}

Status XnfRewriter::Run() {
  std::vector<XnfComponent*> order;
  if (!TopoSortTables(*xnf_, &order)) {
    return Status::Unsupported(
        "recursive XNF query (cyclic schema graph); use the fixpoint "
        "evaluator");
  }
  // CO composition: re-point import wrappers at the imports' final
  // derivations (imports are rewritten before their consumers).
  for (XnfComponent* comp : order) {
    if (comp->import_xnf_box < 0) continue;
    const Box* import_xnf = graph_->box(comp->import_xnf_box);
    const XnfComponent* imported =
        import_xnf->FindComponent(comp->import_component);
    if (imported == nullptr || imported->final_box_id < 0) {
      return Status::Internal("imported component " + comp->import_component +
                              " has no final derivation yet");
    }
    Box* wrapper = graph_->box(comp->box_id);
    if (wrapper->quants.size() != 1) {
      return Status::Internal("import wrapper of " + comp->name +
                              " is not an identity box");
    }
    wrapper->quants[0].box_id = imported->final_box_id;
  }
  for (XnfComponent* comp : order) {
    if (comp->is_root || !comp->reachable) {
      final_box_[comp->name] = comp->box_id;
      comp->final_box_id = comp->box_id;
      continue;
    }
    std::vector<const XnfComponent*> incoming = IncomingRels(comp->name);
    if (incoming.empty()) {
      // Marked reachable but no incoming relationship: empty by definition;
      // treat as its own candidates (validated earlier as roots anyway).
      final_box_[comp->name] = comp->box_id;
      comp->final_box_id = comp->box_id;
      continue;
    }
    if (!options_.share_connection_boxes) {
      XNFDB_ASSIGN_OR_RETURN(int fb, ExistsDerivation(*comp));
      final_box_[comp->name] = fb;
      comp->final_box_id = fb;
      continue;
    }
    if (incoming.size() == 1) {
      XNFDB_ASSIGN_OR_RETURN(int fb,
                             ProjectionOfConnection(*incoming[0], *comp));
      final_box_[comp->name] = fb;
      comp->final_box_id = fb;
      continue;
    }
    // Disjunctive reachability: union of per-relationship projections.
    Box* u = graph_->NewBox(BoxKind::kUnion, comp->name);
    u->distinct = true;
    for (const XnfComponent* rel : incoming) {
      XNFDB_ASSIGN_OR_RETURN(int proj, ProjectionOfConnection(*rel, *comp));
      u->union_inputs.push_back(proj);
    }
    // Union boxes carry named (expression-less) head columns mirroring the
    // component's candidate head, so consumers can resolve names and arity.
    const Box* cand = graph_->box(comp->box_id);
    for (size_t i = 0; i < cand->HeadArity(); ++i) {
      HeadColumn h;
      h.name = cand->HeadName(i);
      u->head.push_back(std::move(h));
    }
    final_box_[comp->name] = u->id;
    comp->final_box_id = u->id;
  }
  XNFDB_RETURN_IF_ERROR(BuildTopOutputs());
  graph_->MarkDead(xnf_->id);
  return graph_->Validate();
}

}  // namespace

bool IsXnfGraph(const qgm::QueryGraph& graph) {
  for (size_t i = 0; i < graph.box_count(); ++i) {
    const Box* b = graph.box(static_cast<int>(i));
    if (!graph.IsDead(b->id) && b->kind == BoxKind::kXnf) return true;
  }
  return false;
}

bool XnfHasCycle(const qgm::QueryGraph& graph) {
  for (size_t i = 0; i < graph.box_count(); ++i) {
    const Box* b = graph.box(static_cast<int>(i));
    if (graph.IsDead(b->id) || b->kind != BoxKind::kXnf) continue;
    std::vector<XnfComponent*> order;
    if (!TopoSortTables(*const_cast<Box*>(b), &order)) return true;
  }
  return false;
}

Status XnfSemanticRewrite(qgm::QueryGraph* graph,
                          const XnfRewriteOptions& options) {
  // Imported sub-views (CO composition) were built after the boxes that
  // reference them; processing XNF boxes newest-first guarantees every
  // import has its final derivations before its consumers need them.
  std::vector<Box*> xnf_boxes;
  for (size_t i = 0; i < graph->box_count(); ++i) {
    Box* b = graph->box(static_cast<int>(i));
    if (!graph->IsDead(b->id) && b->kind == BoxKind::kXnf) {
      xnf_boxes.push_back(b);
    }
  }
  for (auto it = xnf_boxes.rbegin(); it != xnf_boxes.rend(); ++it) {
    XnfRewriter rewriter(graph, *it, options);
    XNFDB_RETURN_IF_ERROR(rewriter.Run());
  }
  return Status::Ok();
}

}  // namespace xnfdb
