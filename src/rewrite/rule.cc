#include "rewrite/rule.h"

#include <sstream>

namespace xnfdb {

int RewriteStats::TotalFirings() const {
  int total = 0;
  for (const RuleFiring& f : firings) total += f.fired;
  return total;
}

std::string RewriteStats::ToString() const {
  std::ostringstream os;
  os << "rewrite passes=" << passes;
  for (const RuleFiring& f : firings) {
    if (f.fired > 0) os << " " << f.rule << "=" << f.fired;
  }
  return os.str();
}

Result<RewriteStats> RuleEngine::Run(qgm::QueryGraph* graph, int max_passes) {
  RewriteStats stats;
  for (const auto& rule : rules_) {
    stats.firings.push_back(RuleFiring{rule->name(), 0});
  }
  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    bool any = false;
    for (size_t i = 0; i < rules_.size(); ++i) {
      // A rule keeps the floor as long as it fires, like the Starburst
      // rule engine's budgeted repetition.
      while (true) {
        XNFDB_ASSIGN_OR_RETURN(bool fired, rules_[i]->Apply(graph));
        if (!fired) break;
        ++stats.firings[i].fired;
        any = true;
#ifndef NDEBUG
        XNFDB_RETURN_IF_ERROR(graph->Validate());
#endif
        if (stats.firings[i].fired > 10000) {
          return Status::Internal(std::string("rewrite rule '") +
                                  rules_[i]->name() +
                                  "' does not terminate");
        }
      }
    }
    if (!any) break;
  }
  XNFDB_RETURN_IF_ERROR(graph->Validate());
  return stats;
}

}  // namespace xnfdb
