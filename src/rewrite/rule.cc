#include "rewrite/rule.h"

#include <chrono>
#include <sstream>

namespace xnfdb {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int RewriteStats::TotalFirings() const {
  int total = 0;
  for (const RuleFiring& f : firings) total += f.fired;
  return total;
}

std::string RewriteStats::ToString() const {
  std::ostringstream os;
  os << "rewrite passes=" << passes;
  for (const RuleFiring& f : firings) {
    if (f.fired > 0) os << " " << f.rule << "=" << f.fired;
  }
  return os.str();
}

size_t LiveBoxCount(const qgm::QueryGraph& graph) {
  size_t live = 0;
  for (size_t id = 0; id < graph.box_count(); ++id) {
    if (!graph.IsDead(static_cast<int>(id))) ++live;
  }
  return live;
}

Result<RewriteStats> RuleEngine::Run(qgm::QueryGraph* graph, int max_passes,
                                     const RuleEngineHooks& hooks) {
  RewriteStats stats;
  const int64_t run_t0 = NowUs();
  for (const auto& rule : rules_) {
    stats.firings.push_back(RuleFiring{rule->name(), 0});
    rule->TakeRejected();  // clear any residue from a failed prior run
  }
  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    bool any = false;
    for (size_t i = 0; i < rules_.size(); ++i) {
      // A rule keeps the floor as long as it fires, like the Starburst
      // rule engine's budgeted repetition.
      while (true) {
        obs::Span span;
        if (hooks.tracer != nullptr && hooks.tracer->enabled()) {
          span = hooks.tracer->StartSpan(std::string("rule ") +
                                         rules_[i]->name());
        }
        obs::RewriteEvent event;
        event.rule = rules_[i]->name();
        event.pass = pass + 1;
        event.boxes_before = static_cast<int>(LiveBoxCount(*graph));
        const int64_t t0 = NowUs();
        XNFDB_ASSIGN_OR_RETURN(bool fired, rules_[i]->Apply(graph));
        event.wall_us = NowUs() - t0;
        event.fired = fired;
        event.rejected = rules_[i]->TakeRejected();
        event.boxes_after = static_cast<int>(LiveBoxCount(*graph));
        stats.firings[i].rejected += event.rejected;
        stats.firings[i].wall_us += event.wall_us;
        stats.trace.Add(std::move(event));
        if (!fired) break;
        ++stats.firings[i].fired;
        any = true;
#ifndef NDEBUG
        XNFDB_RETURN_IF_ERROR(graph->Validate());
#endif
        if (stats.firings[i].fired > 10000) {
          return Status::Internal(std::string("rewrite rule '") +
                                  rules_[i]->name() +
                                  "' does not terminate");
        }
      }
    }
    if (!any) break;
  }
  XNFDB_RETURN_IF_ERROR(graph->Validate());
  stats.total_us = NowUs() - run_t0;
  if (hooks.metrics != nullptr) {
    hooks.metrics->GetCounter("rewrite.passes")->Increment(stats.passes);
    for (const RuleFiring& f : stats.firings) {
      const std::string prefix = "rewrite.rule." + f.rule;
      if (f.fired > 0) {
        hooks.metrics->GetCounter(prefix + ".fired")->Increment(f.fired);
      }
      if (f.rejected > 0) {
        hooks.metrics->GetCounter(prefix + ".rejected")
            ->Increment(f.rejected);
      }
      if (f.wall_us > 0) {
        hooks.metrics->GetCounter(prefix + ".us")->Increment(f.wall_us);
      }
    }
  }
  return stats;
}

}  // namespace xnfdb
