// XNF semantic rewrite (paper Sect. 4.2): lowers the XNF operator box into
// plain NF QGM, replacing XNF semantics (reachability, connections,
// heterogeneous output) by ordinary select/join/union boxes plus a Top box
// with multiple tagged output streams.
//
// Two strategies are provided:
//
//  * shared (default) — the paper's approach: the join that makes a child
//    component reachable from its parent *is* the relationship derivation
//    ("the resulting tuple stream gives both the xemp output tuples as well
//    as the employment output information", Sect. 4.2). Every relationship
//    produces one connection box; child components are distinct projections
//    (or unions of projections) of the connection boxes. This realizes the
//    common-subexpression optimality of Table 1.
//
//  * unshared — each component/relationship output derived independently
//    (the "SQL derivation" of Fig. 6): children carry existential
//    reachability groups which the NF rules may later convert to joins
//    (Fig. 5a -> 5b). Used as the comparison baseline and for ablations.

#ifndef XNFDB_REWRITE_XNF_REWRITE_H_
#define XNFDB_REWRITE_XNF_REWRITE_H_

#include "common/status.h"
#include "qgm/qgm.h"

namespace xnfdb {

struct XnfRewriteOptions {
  // true  => shared connection boxes (paper default),
  // false => independent derivations (Fig. 6 baseline).
  bool share_connection_boxes = true;
};

// True if the graph contains a live XNF operator box.
bool IsXnfGraph(const qgm::QueryGraph& graph);

// True if the XNF schema graph has a cycle (recursive CO). Recursive COs
// are evaluated by the fixpoint driver in xnf/ instead of this rewrite.
bool XnfHasCycle(const qgm::QueryGraph& graph);

// Performs the rewrite in place. No-op for graphs without an XNF box.
// Fails with kUnsupported for cyclic (recursive) XNF queries.
Status XnfSemanticRewrite(qgm::QueryGraph* graph,
                          const XnfRewriteOptions& options = {});

}  // namespace xnfdb

#endif  // XNFDB_REWRITE_XNF_REWRITE_H_
