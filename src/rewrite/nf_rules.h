// The NF (plain relational) rewrite rules, after [39]:
//
//  * ExistsToJoinRule — the "E to F quantifier conversion": an existential
//    subquery becomes a join with duplicate elimination (Fig. 3a -> 3b).
//  * SelectMergeRule — the "SELECT merge": a single-consumer SELECT box is
//    inlined into its consumer (Fig. 3b -> 3c).
//  * RemoveUnusedBoxesRule — clean-up: boxes unreachable from Top are
//    removed (Sect. 4.4 mentions this simplification being made available
//    to XNF rewrite as well).

#ifndef XNFDB_REWRITE_NF_RULES_H_
#define XNFDB_REWRITE_NF_RULES_H_

#include <memory>
#include <vector>

#include "rewrite/rule.h"

namespace xnfdb {

std::unique_ptr<RewriteRule> MakeExistsToJoinRule();
std::unique_ptr<RewriteRule> MakeSelectMergeRule();
std::unique_ptr<RewriteRule> MakeRemoveUnusedBoxesRule();

// The default NF rewrite rule set, in application order.
std::vector<std::unique_ptr<RewriteRule>> MakeDefaultNfRules();

// Options controlling which NF rules run (for benchmarking ablations).
struct NfRewriteOptions {
  bool exists_to_join = true;   // Fig. 3 subquery-to-join conversion
  bool select_merge = true;     // box merge
  bool remove_unused = true;    // clean-up
};

std::vector<std::unique_ptr<RewriteRule>> MakeNfRules(
    const NfRewriteOptions& options);

}  // namespace xnfdb

#endif  // XNFDB_REWRITE_NF_RULES_H_
