// The rule-based rewrite engine (paper Sect. 3.2 / 4.4).
//
// Rewrite transformations are condition/action rules applied to the QGM
// graph until a fixed point (no rule fires) or the budget is exhausted —
// following the Starburst query-rewrite architecture of [17, 39]. Both the
// NF rewrite component and the XNF semantic rewrite component use this same
// representation and engine (Sect. 4.4: "both use the same rule
// representation mechanism as well as the same rule engine").

#ifndef XNFDB_REWRITE_RULE_H_
#define XNFDB_REWRITE_RULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/plan_feedback.h"
#include "obs/trace.h"
#include "qgm/qgm.h"

namespace xnfdb {

// One rewrite rule. `Apply` scans the graph, performs at most a bounded
// amount of rewriting, and reports whether anything changed. Rules call
// CountRejected() for every candidate match they inspect and decline, so
// the engine's trace distinguishes "nothing to do" from "saw candidates
// but the conditions failed".
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;
  virtual const char* name() const = 0;
  virtual Result<bool> Apply(qgm::QueryGraph* graph) = 0;

 protected:
  void CountRejected(int64_t n = 1) { rejected_ += n; }

 private:
  friend class RuleEngine;
  int64_t TakeRejected() {
    int64_t r = rejected_;
    rejected_ = 0;
    return r;
  }
  int64_t rejected_ = 0;
};

// Per-rule firing statistics of one engine run.
struct RuleFiring {
  std::string rule;
  int fired = 0;
  int64_t rejected = 0;
  int64_t wall_us = 0;
};

struct RewriteStats {
  std::vector<RuleFiring> firings;
  int passes = 0;
  int64_t total_us = 0;
  // The ordered per-application rule log (one event per Apply call),
  // bounded; feeds SYS$REWRITES and EXPLAIN REWRITE.
  obs::RewriteTrace trace;

  int TotalFirings() const;
  std::string ToString() const;
};

// The number of live (non-dead) boxes in `graph` — the before/after size
// metric rewrite events carry.
size_t LiveBoxCount(const qgm::QueryGraph& graph);

// Optional observability sinks for a rule-engine run: tracer spans per
// fired rule application and global rewrite.rule.* counters.
struct RuleEngineHooks {
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

// Runs `rules` over `graph` to a fixed point (bounded by `max_passes`).
// Rules are retried in order on every pass; a pass that fires no rule ends
// the run. Validates the graph after every firing in debug builds.
class RuleEngine {
 public:
  explicit RuleEngine(std::vector<std::unique_ptr<RewriteRule>> rules)
      : rules_(std::move(rules)) {}

  Result<RewriteStats> Run(qgm::QueryGraph* graph, int max_passes = 32,
                           const RuleEngineHooks& hooks = {});

 private:
  std::vector<std::unique_ptr<RewriteRule>> rules_;
};

}  // namespace xnfdb

#endif  // XNFDB_REWRITE_RULE_H_
