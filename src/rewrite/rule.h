// The rule-based rewrite engine (paper Sect. 3.2 / 4.4).
//
// Rewrite transformations are condition/action rules applied to the QGM
// graph until a fixed point (no rule fires) or the budget is exhausted —
// following the Starburst query-rewrite architecture of [17, 39]. Both the
// NF rewrite component and the XNF semantic rewrite component use this same
// representation and engine (Sect. 4.4: "both use the same rule
// representation mechanism as well as the same rule engine").

#ifndef XNFDB_REWRITE_RULE_H_
#define XNFDB_REWRITE_RULE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "qgm/qgm.h"

namespace xnfdb {

// One rewrite rule. `Apply` scans the graph, performs at most a bounded
// amount of rewriting, and reports whether anything changed.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;
  virtual const char* name() const = 0;
  virtual Result<bool> Apply(qgm::QueryGraph* graph) = 0;
};

// Per-rule firing statistics of one engine run.
struct RuleFiring {
  std::string rule;
  int fired = 0;
};

struct RewriteStats {
  std::vector<RuleFiring> firings;
  int passes = 0;

  int TotalFirings() const;
  std::string ToString() const;
};

// Runs `rules` over `graph` to a fixed point (bounded by `max_passes`).
// Rules are retried in order on every pass; a pass that fires no rule ends
// the run. Validates the graph after every firing in debug builds.
class RuleEngine {
 public:
  explicit RuleEngine(std::vector<std::unique_ptr<RewriteRule>> rules)
      : rules_(std::move(rules)) {}

  Result<RewriteStats> Run(qgm::QueryGraph* graph, int max_passes = 32);

 private:
  std::vector<std::unique_ptr<RewriteRule>> rules_;
};

}  // namespace xnfdb

#endif  // XNFDB_REWRITE_RULE_H_
