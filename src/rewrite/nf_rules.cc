#include "rewrite/nf_rules.h"

#include <algorithm>
#include <set>

namespace xnfdb {

namespace {

using qgm::Box;
using qgm::BoxKind;
using qgm::Expr;
using qgm::ExprPtr;
using qgm::HeadColumn;
using qgm::QuantKind;
using qgm::Quantifier;
using qgm::QueryGraph;

// Replaces colrefs to quantifier `q` by clones of the head expressions of
// the box `q` ranged over. Used when inlining that box.
void SubstituteQuant(ExprPtr* e, int q, const std::vector<HeadColumn>& head) {
  Expr* raw = e->get();
  if (raw->kind == Expr::Kind::kColRef && raw->quant_id == q) {
    *e = head[raw->column].expr->Clone();
    return;
  }
  if (raw->lhs) SubstituteQuant(&raw->lhs, q, head);
  if (raw->rhs) SubstituteQuant(&raw->rhs, q, head);
}

// --- E to F quantifier conversion -----------------------------------------

class ExistsToJoinRule : public RewriteRule {
 public:
  const char* name() const override { return "ExistsToJoin"; }

  Result<bool> Apply(QueryGraph* graph) override {
    for (size_t i = 0; i < graph->box_count(); ++i) {
      Box* b = graph->box(static_cast<int>(i));
      if (graph->IsDead(b->id) || b->kind != BoxKind::kSelect) continue;
      // Conjunctive groups convert one at a time (each is an independent
      // existential predicate); a disjunctive set converts only when it has
      // a single alternative. Negated (anti-join) groups stay existential.
      // Aggregating boxes are excluded: the join would change group
      // cardinalities.
      if (b->exists_groups.empty()) continue;
      if (b->groups_disjunctive && b->exists_groups.size() != 1) {
        CountRejected();
        continue;
      }
      if (!b->group_by.empty()) {
        CountRejected();
        continue;
      }
      size_t gi = 0;
      while (gi < b->exists_groups.size() && b->exists_groups[gi].negated) {
        ++gi;
      }
      if (gi == b->exists_groups.size()) {
        CountRejected();
        continue;
      }
      bool has_agg = false;
      for (const HeadColumn& h : b->head) {
        if (h.expr && ContainsAgg(*h.expr)) has_agg = true;
      }
      if (has_agg) {
        CountRejected();
        continue;
      }

      qgm::ExistsGroup group = std::move(b->exists_groups[gi]);
      b->exists_groups.erase(b->exists_groups.begin() + gi);
      for (int qid : group.quant_ids) {
        Quantifier* q = b->FindQuant(qid);
        q->kind = QuantKind::kForeach;
      }
      for (ExprPtr& p : group.preds) b->preds.push_back(std::move(p));
      // The conversion can introduce duplicates (several witnesses per
      // outer row); duplicate elimination over the head restores set
      // semantics, as in [39].
      b->distinct = true;
      return true;
    }
    return false;
  }

 private:
  static bool ContainsAgg(const Expr& e) {
    if (e.kind == Expr::Kind::kAgg) return true;
    if (e.lhs && ContainsAgg(*e.lhs)) return true;
    if (e.rhs && ContainsAgg(*e.rhs)) return true;
    return false;
  }
};

// --- SELECT merge -----------------------------------------------------------

class SelectMergeRule : public RewriteRule {
 public:
  const char* name() const override { return "SelectMerge"; }

  Result<bool> Apply(QueryGraph* graph) override {
    for (size_t i = 0; i < graph->box_count(); ++i) {
      Box* b = graph->box(static_cast<int>(i));
      if (graph->IsDead(b->id) || b->kind != BoxKind::kSelect) continue;
      for (size_t qi = 0; qi < b->quants.size(); ++qi) {
        if (b->quants[qi].kind != QuantKind::kForeach) continue;
        Box* child = graph->box(b->quants[qi].box_id);
        if (child->kind != BoxKind::kSelect) continue;
        if (!Mergeable(*graph, *b, *child)) {
          // A kSelect child the conditions decline is a real candidate the
          // rule saw and skipped — worth counting in the trace.
          CountRejected();
          continue;
        }
        XNFDB_RETURN_IF_ERROR(Merge(graph, b, qi));
        return true;
      }
    }
    return false;
  }

 private:
  static bool Mergeable(const QueryGraph& graph, const Box& consumer,
                        const Box& child) {
    if (child.kind != BoxKind::kSelect) return false;
    if (child.distinct || !child.group_by.empty() ||
        !child.exists_groups.empty() || !child.order_by.empty()) {
      return false;
    }
    for (const HeadColumn& h : child.head) {
      if (h.expr == nullptr) return false;
      if (ContainsAggStatic(*h.expr)) return false;
    }
    // Merging a multi-consumer box would duplicate its computation —
    // exactly the common subexpression the XNF rewrite works to share.
    std::vector<int> consumers = graph.Consumers(child.id);
    if (consumers.size() != 1 || consumers[0] != consumer.id) return false;
    // A self-join over the child (two quantifiers of the consumer ranging
    // over it) keeps the box alive after merging one side; skip.
    int quants_over_child = 0;
    for (const Quantifier& q : consumer.quants) {
      if (q.box_id == child.id) ++quants_over_child;
    }
    if (quants_over_child != 1) return false;
    // A consumer whose DISTINCT head would collapse differently is fine:
    // merge preserves the head expressions.
    return true;
  }

  static bool ContainsAggStatic(const Expr& e) {
    if (e.kind == Expr::Kind::kAgg) return true;
    if (e.lhs && ContainsAggStatic(*e.lhs)) return true;
    if (e.rhs && ContainsAggStatic(*e.rhs)) return true;
    return false;
  }

  static Status Merge(QueryGraph* graph, Box* b, size_t qi) {
    int merged_quant = b->quants[qi].id;
    Box* child = graph->box(b->quants[qi].box_id);

    // Substitute the merged quantifier's column references by the child's
    // head expressions throughout the consumer.
    for (HeadColumn& h : b->head) {
      if (h.expr) SubstituteQuant(&h.expr, merged_quant, child->head);
    }
    for (ExprPtr& p : b->preds) {
      SubstituteQuant(&p, merged_quant, child->head);
    }
    for (qgm::ExistsGroup& g : b->exists_groups) {
      for (ExprPtr& p : g.preds) {
        SubstituteQuant(&p, merged_quant, child->head);
      }
    }
    for (ExprPtr& g : b->group_by) {
      SubstituteQuant(&g, merged_quant, child->head);
    }

    // Adopt the child's quantifiers and predicates.
    b->quants.erase(b->quants.begin() + qi);
    for (Quantifier& q : child->quants) {
      b->quants.push_back(q);
      graph->RegisterQuant(q.id, b->id);
    }
    for (ExprPtr& p : child->preds) b->preds.push_back(std::move(p));

    child->quants.clear();
    child->preds.clear();
    graph->MarkDead(child->id);
    return Status::Ok();
  }
};

// --- clean-up ---------------------------------------------------------------

class RemoveUnusedBoxesRule : public RewriteRule {
 public:
  const char* name() const override { return "RemoveUnusedBoxes"; }

  Result<bool> Apply(QueryGraph* graph) override {
    if (graph->top_box_id() < 0) return false;
    std::set<int> live;
    std::vector<int> work{graph->top_box_id()};
    while (!work.empty()) {
      int id = work.back();
      work.pop_back();
      if (!live.insert(id).second) continue;
      const Box* b = graph->box(id);
      for (const Quantifier& q : b->quants) work.push_back(q.box_id);
      for (int in : b->union_inputs) work.push_back(in);
      for (const qgm::TopOutput& o : b->outputs) work.push_back(o.box_id);
      for (const qgm::XnfComponent& c : b->components) {
        work.push_back(c.box_id);
      }
    }
    bool changed = false;
    for (size_t i = 0; i < graph->box_count(); ++i) {
      int id = static_cast<int>(i);
      if (!graph->IsDead(id) && live.count(id) == 0) {
        graph->MarkDead(id);
        changed = true;
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<RewriteRule> MakeExistsToJoinRule() {
  return std::make_unique<ExistsToJoinRule>();
}
std::unique_ptr<RewriteRule> MakeSelectMergeRule() {
  return std::make_unique<SelectMergeRule>();
}
std::unique_ptr<RewriteRule> MakeRemoveUnusedBoxesRule() {
  return std::make_unique<RemoveUnusedBoxesRule>();
}

std::vector<std::unique_ptr<RewriteRule>> MakeDefaultNfRules() {
  return MakeNfRules(NfRewriteOptions{});
}

std::vector<std::unique_ptr<RewriteRule>> MakeNfRules(
    const NfRewriteOptions& options) {
  std::vector<std::unique_ptr<RewriteRule>> rules;
  if (options.exists_to_join) rules.push_back(MakeExistsToJoinRule());
  if (options.select_merge) rules.push_back(MakeSelectMergeRule());
  if (options.remove_unused) rules.push_back(MakeRemoveUnusedBoxesRule());
  return rules;
}

}  // namespace xnfdb
