#include "storage/table.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace xnfdb {

void HashIndex::Insert(const Value& key, Rid rid) {
  buckets_[key].push_back(rid);
}

void HashIndex::Erase(const Value& key, Rid rid) {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  auto& rids = it->second;
  rids.erase(std::remove(rids.begin(), rids.end(), rid), rids.end());
  if (rids.empty()) buckets_.erase(it);
}

const std::vector<Rid>* HashIndex::Lookup(const Value& key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return nullptr;
  return &it->second;
}

void OrderedIndex::Insert(const Value& key, Rid rid) {
  entries_[key].push_back(rid);
}

void OrderedIndex::Erase(const Value& key, Rid rid) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  auto& rids = it->second;
  rids.erase(std::remove(rids.begin(), rids.end(), rid), rids.end());
  if (rids.empty()) entries_.erase(it);
}

void OrderedIndex::Range(const Value* lo, bool lo_inclusive, const Value* hi,
                         bool hi_inclusive, std::vector<Rid>* out) const {
  auto it = lo == nullptr
                ? entries_.begin()
                : (lo_inclusive ? entries_.lower_bound(*lo)
                                : entries_.upper_bound(*lo));
  for (; it != entries_.end(); ++it) {
    if (hi != nullptr) {
      if (hi_inclusive ? *hi < it->first : !(it->first < *hi)) break;
    }
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
}

Result<Rid> Table::Insert(Tuple row) {
  XNFDB_RETURN_IF_ERROR(schema_.ValidateTuple(row));
  Rid rid = rows_.size();
  for (auto& index : indexes_) {
    index->Insert(row[index->column()], rid);
  }
  for (auto& index : ordered_indexes_) {
    index->Insert(row[index->column()], rid);
  }
  rows_.push_back(std::move(row));
  deleted_.push_back(false);
  ++live_count_;
  InvalidateStats();
  return rid;
}

Status Table::Update(Rid rid, Tuple row) {
  if (!IsLive(rid)) {
    return Status::NotFound("update of dead RID " + std::to_string(rid) +
                            " in table " + name_);
  }
  XNFDB_RETURN_IF_ERROR(schema_.ValidateTuple(row));
  for (auto& index : indexes_) {
    index->Erase(rows_[rid][index->column()], rid);
    index->Insert(row[index->column()], rid);
  }
  for (auto& index : ordered_indexes_) {
    index->Erase(rows_[rid][index->column()], rid);
    index->Insert(row[index->column()], rid);
  }
  rows_[rid] = std::move(row);
  InvalidateStats();
  return Status::Ok();
}

Status Table::UpdateColumn(Rid rid, int column, Value v) {
  if (!IsLive(rid)) {
    return Status::NotFound("update of dead RID " + std::to_string(rid) +
                            " in table " + name_);
  }
  if (column < 0 || static_cast<size_t>(column) >= schema_.size()) {
    return Status::InvalidArgument("column index out of range");
  }
  Tuple row = rows_[rid];
  row[column] = std::move(v);
  return Update(rid, std::move(row));
}

Status Table::Delete(Rid rid) {
  if (!IsLive(rid)) {
    return Status::NotFound("delete of dead RID " + std::to_string(rid) +
                            " in table " + name_);
  }
  for (auto& index : indexes_) {
    index->Erase(rows_[rid][index->column()], rid);
  }
  for (auto& index : ordered_indexes_) {
    index->Erase(rows_[rid][index->column()], rid);
  }
  deleted_[rid] = true;
  --live_count_;
  InvalidateStats();
  return Status::Ok();
}

const Tuple& Table::Get(Rid rid) const {
  assert(IsLive(rid));
  return rows_[rid];
}

Status Table::CreateIndex(const std::string& column_name) {
  XNFDB_ASSIGN_OR_RETURN(int col,
                         schema_.ResolveColumn(column_name, "table " + name_));
  if (GetIndex(col) != nullptr) return Status::Ok();
  auto index = std::make_unique<HashIndex>(col);
  for (Rid rid = 0; rid < rows_.size(); ++rid) {
    if (!deleted_[rid]) index->Insert(rows_[rid][col], rid);
  }
  indexes_.push_back(std::move(index));
  return Status::Ok();
}

Status Table::CreateOrderedIndex(const std::string& column_name) {
  XNFDB_ASSIGN_OR_RETURN(int col,
                         schema_.ResolveColumn(column_name, "table " + name_));
  if (GetOrderedIndex(col) != nullptr) return Status::Ok();
  auto index = std::make_unique<OrderedIndex>(col);
  for (Rid rid = 0; rid < rows_.size(); ++rid) {
    if (!deleted_[rid]) index->Insert(rows_[rid][col], rid);
  }
  ordered_indexes_.push_back(std::move(index));
  return Status::Ok();
}

const OrderedIndex* Table::GetOrderedIndex(int column) const {
  for (const auto& index : ordered_indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

const HashIndex* Table::GetIndex(int column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

const ColumnStats& Table::GetColumnStats(int column) const {
  if (!stats_valid_) ComputeStats();
  return stats_[column];
}

void Table::ComputeStats() const {
  stats_.assign(schema_.size(), ColumnStats{});
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  for (size_t c = 0; c < schema_.size(); ++c) {
    std::unordered_set<Value, ValueHash> distinct;
    ColumnStats& cs = stats_[c];
    for (Rid rid = 0; rid < rows_.size(); ++rid) {
      if (deleted_[rid]) continue;
      const Value& v = rows_[rid][c];
      if (v.is_null()) continue;
      distinct.insert(v);
      if (cs.min.is_null() || v < cs.min) cs.min = v;
      if (cs.max.is_null() || cs.max < v) cs.max = v;
    }
    cs.distinct = distinct.size();
  }
  stats_valid_ = true;
}

}  // namespace xnfdb
