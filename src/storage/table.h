// The base-table row store — xnfdb's analogue of Starburst's CORE data
// manager (Sect. 3.1 of the paper). Tables are in-memory row stores with
// stable row identifiers (RIDs), optional hash indexes and maintained
// statistics for the plan optimizer.

#ifndef XNFDB_STORAGE_TABLE_H_
#define XNFDB_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace xnfdb {

// Stable identifier of a row within one table. RIDs of deleted rows are
// never reused, so references held by caches stay unambiguous.
using Rid = uint64_t;

// Secondary hash index over a single column. Supports duplicates.
class HashIndex {
 public:
  explicit HashIndex(int column) : column_(column) {}

  int column() const { return column_; }

  void Insert(const Value& key, Rid rid);
  void Erase(const Value& key, Rid rid);

  // All RIDs whose indexed column equals `key` (may contain stale entries
  // only if the caller bypassed Table::Update; Table maintains it).
  const std::vector<Rid>* Lookup(const Value& key) const;

  size_t DistinctKeys() const { return buckets_.size(); }

 private:
  struct ValueHash {
    size_t operator()(const Value& v) const { return v.Hash(); }
  };
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const { return a == b; }
  };

  int column_;
  std::unordered_map<Value, std::vector<Rid>, ValueHash, ValueEq> buckets_;
};

// Ordered secondary index over a single column (tree index): supports
// range scans [lo, hi] in addition to equality.
class OrderedIndex {
 public:
  explicit OrderedIndex(int column) : column_(column) {}

  int column() const { return column_; }

  void Insert(const Value& key, Rid rid);
  void Erase(const Value& key, Rid rid);

  // Appends all RIDs with lo <= key <= hi (bounds optional via null
  // pointers; inclusiveness per flag) in key order.
  void Range(const Value* lo, bool lo_inclusive, const Value* hi,
             bool hi_inclusive, std::vector<Rid>* out) const;

  size_t DistinctKeys() const { return entries_.size(); }

 private:
  int column_;
  std::map<Value, std::vector<Rid>> entries_;  // Value::operator< order
};

// Per-column statistics used by the cost model.
struct ColumnStats {
  size_t distinct = 0;
  Value min;
  Value max;
};

// A stored base table.
//
// Rows live in a vector indexed by RID; deletion tombstones the slot. The
// table keeps its indexes and statistics consistent across all mutations.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  // Number of live rows.
  size_t row_count() const { return live_count_; }
  // Upper bound of RIDs ever allocated (scan range).
  size_t rid_bound() const { return rows_.size(); }

  // Inserts after validating against the schema. Returns the new RID.
  Result<Rid> Insert(Tuple row);

  // Replaces the row at `rid`. Indexes are maintained.
  Status Update(Rid rid, Tuple row);

  // Updates one column of the row at `rid`.
  Status UpdateColumn(Rid rid, int column, Value v);

  // Tombstones the row at `rid`.
  Status Delete(Rid rid);

  bool IsLive(Rid rid) const {
    return rid < rows_.size() && !deleted_[rid];
  }

  // The row at `rid`; caller must check IsLive first (asserted).
  const Tuple& Get(Rid rid) const;

  // Creates (and backfills) a hash index on `column_name` if none exists.
  Status CreateIndex(const std::string& column_name);

  // Creates (and backfills) an ordered index on `column_name`.
  Status CreateOrderedIndex(const std::string& column_name);

  // The index on `column`, or nullptr.
  const HashIndex* GetIndex(int column) const;

  // The ordered index on `column`, or nullptr.
  const OrderedIndex* GetOrderedIndex(int column) const;

  // Recomputed-on-demand column statistics (cached until next mutation).
  const ColumnStats& GetColumnStats(int column) const;

 private:
  void InvalidateStats() { stats_valid_ = false; }
  void ComputeStats() const;

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::vector<bool> deleted_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<HashIndex>> indexes_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;

  mutable bool stats_valid_ = false;
  mutable std::vector<ColumnStats> stats_;
};

}  // namespace xnfdb

#endif  // XNFDB_STORAGE_TABLE_H_
