// The system catalog: base tables, view definitions, and integrity metadata
// (primary / foreign keys). Foreign-key metadata is what the CO cache uses
// to translate connect/disconnect operations into base-table updates
// (Sect. 2 of the paper: "connect and disconnect ... translate to updating
// the foreign keys or inserting/deleting the associated tuples in the
// connect tables").

#ifndef XNFDB_STORAGE_CATALOG_H_
#define XNFDB_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/sysview.h"
#include "storage/table.h"

namespace xnfdb {

// Declared FK: table.column references ref_table.ref_column.
struct ForeignKey {
  std::string table;
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

// A stored view definition. XNF views (CO views) and plain SQL views both
// live here as their source text; they are recompiled on use, which keeps
// the catalog independent of the compiler modules.
struct ViewDef {
  std::string name;
  std::string definition;  // The query text after AS.
  bool is_xnf = false;     // True when the body is an XNF (OUT OF) query.
};

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  // --- Tables -------------------------------------------------------------
  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Result<Table*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  // --- Virtual tables (sys$ system views, storage/sysview.h) --------------
  // Registers a generator-backed table under provider->name(). Virtual
  // tables resolve after base tables and views, are never persisted, and
  // cannot be dropped (each Database re-registers its own set).
  Status RegisterVirtualTable(std::unique_ptr<VirtualTableProvider> provider);
  // The provider registered under `name`, or nullptr.
  const VirtualTableProvider* GetVirtualTable(const std::string& name) const;
  bool HasVirtualTable(const std::string& name) const;
  // All registered providers, in name order.
  std::vector<const VirtualTableProvider*> VirtualTables() const;

  // --- Views --------------------------------------------------------------
  Status CreateView(ViewDef def);
  Result<const ViewDef*> GetView(const std::string& name) const;
  bool HasView(const std::string& name) const;
  Status DropView(const std::string& name);
  // All stored view definitions, in name order.
  std::vector<const ViewDef*> Views() const;

  // --- Keys ---------------------------------------------------------------
  // Declares the primary key column of `table` (single-column keys).
  Status DeclarePrimaryKey(const std::string& table, const std::string& column);
  // The PK column index of `table`, or -1 if none was declared.
  int PrimaryKeyColumn(const std::string& table) const;

  Status DeclareForeignKey(ForeignKey fk);
  // All FKs whose referencing side is `table`.
  std::vector<ForeignKey> ForeignKeysOf(const std::string& table) const;
  // The FK from `table.column`, if declared.
  const ForeignKey* FindForeignKey(const std::string& table,
                                   const std::string& column) const;

 private:
  // Map keys are upper-cased identifiers.
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::unique_ptr<VirtualTableProvider>> virtual_tables_;
  std::map<std::string, ViewDef> views_;
  std::map<std::string, std::string> primary_keys_;  // table -> column name
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace xnfdb

#endif  // XNFDB_STORAGE_CATALOG_H_
