#include "storage/sysview.h"

#include <memory>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/plan_feedback.h"
#include "obs/query_profile.h"
#include "obs/sampler.h"
#include "obs/statement_stats.h"
#include "storage/catalog.h"

namespace xnfdb {

namespace {

Schema MakeSchema(std::initializer_list<Column> columns) {
  return Schema(std::vector<Column>(columns));
}

// SYS$METRICS: one row per counter/gauge in the registry.
class MetricsProvider : public VirtualTableProvider {
 public:
  explicit MetricsProvider(obs::MetricsRegistry* metrics)
      : name_("SYS$METRICS"),
        schema_(MakeSchema({{"NAME", DataType::kString},
                            {"KIND", DataType::kString},
                            {"VALUE", DataType::kInt}})),
        metrics_(metrics) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    obs::MetricsSnapshot snap = metrics_->Snapshot();
    std::vector<Tuple> rows;
    rows.reserve(snap.counters.size() + snap.gauges.size());
    for (const auto& [name, v] : snap.counters) {
      rows.push_back({Value(name), Value("counter"), Value(v)});
    }
    for (const auto& [name, v] : snap.gauges) {
      rows.push_back({Value(name), Value("gauge"), Value(v)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 64.0; }

 private:
  std::string name_;
  Schema schema_;
  obs::MetricsRegistry* metrics_;
};

// SYS$HISTOGRAMS: one row per bucket of every histogram — the registry's
// plus each statement's latency histogram (named `stmt.<digest>.us`, which
// is what SYS$STATEMENTS.HIST joins against).
class HistogramsProvider : public VirtualTableProvider {
 public:
  HistogramsProvider(obs::MetricsRegistry* metrics,
                     const obs::StatementStore* statements)
      : name_("SYS$HISTOGRAMS"),
        schema_(MakeSchema({{"NAME", DataType::kString},
                            {"LE", DataType::kInt},
                            {"BUCKET_COUNT", DataType::kInt},
                            {"CUM_COUNT", DataType::kInt}})),
        metrics_(metrics),
        statements_(statements) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    obs::MetricsSnapshot snap = metrics_->Snapshot();
    for (const auto& [name, h] : snap.histograms) {
      AppendBuckets(name, h, &rows);
    }
    if (statements_ != nullptr) {
      for (const obs::StatementSnapshot& s : statements_->Snapshot()) {
        AppendBuckets("stmt." + s.digest_hex + ".us", s.latency, &rows);
      }
    }
    return rows;
  }

  double EstimatedRows() const override { return 256.0; }

 private:
  static void AppendBuckets(const std::string& name,
                            const obs::HistogramSnapshot& h,
                            std::vector<Tuple>* rows) {
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      Value le = i < h.bounds.size() ? Value(h.bounds[i]) : Value::Null();
      rows->push_back({Value(name), std::move(le), Value(h.buckets[i]),
                       Value(cumulative)});
    }
  }

  std::string name_;
  Schema schema_;
  obs::MetricsRegistry* metrics_;
  const obs::StatementStore* statements_;
};

// SYS$STATEMENTS: one row per distinct statement shape. The trailing
// *_SELF_US columns roll the always-on profile store's per-operator-class
// self times up per shape (zero when no profile store is attached or the
// shape has no capture yet).
class StatementsProvider : public VirtualTableProvider {
 public:
  StatementsProvider(const obs::StatementStore* statements,
                     const obs::QueryProfileStore* profiles)
      : name_("SYS$STATEMENTS"),
        schema_(MakeSchema({{"DIGEST", DataType::kString},
                            {"KIND", DataType::kString},
                            {"TEXT", DataType::kString},
                            {"HIST", DataType::kString},
                            {"CALLS", DataType::kInt},
                            {"ERRORS", DataType::kInt},
                            {"ROWS_OUT", DataType::kInt},
                            {"TOTAL_US", DataType::kInt},
                            {"MIN_US", DataType::kInt},
                            {"MAX_US", DataType::kInt},
                            {"AVG_US", DataType::kInt},
                            {"P50_US", DataType::kInt},
                            {"P99_US", DataType::kInt},
                            {"SCAN_SELF_US", DataType::kInt},
                            {"JOIN_SELF_US", DataType::kInt},
                            {"FILTER_SELF_US", DataType::kInt},
                            {"OTHER_SELF_US", DataType::kInt}})),
        statements_(statements),
        profiles_(profiles) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::StatementSnapshot& s : statements_->Snapshot()) {
      obs::QueryProfileStore::ClassTotals cls;
      if (profiles_ != nullptr) cls = profiles_->ClassSelfTimes(s.digest);
      rows.push_back({Value(s.digest_hex), Value(s.kind), Value(s.text),
                      Value("stmt." + s.digest_hex + ".us"), Value(s.calls),
                      Value(s.errors), Value(s.rows), Value(s.total_us),
                      Value(s.min_us), Value(s.max_us), Value(s.avg_us()),
                      Value(s.latency.Quantile(0.5)),
                      Value(s.latency.Quantile(0.99)), Value(cls.scan_us),
                      Value(cls.join_us), Value(cls.filter_us),
                      Value(cls.other_us)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 32.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::StatementStore* statements_;
  const obs::QueryProfileStore* profiles_;
};

// SYS$METRICS_HISTORY: the sampler's flattened time-series ring,
// oldest-first.
class MetricsHistoryProvider : public VirtualTableProvider {
 public:
  explicit MetricsHistoryProvider(const obs::MetricsSampler* sampler)
      : name_("SYS$METRICS_HISTORY"),
        schema_(MakeSchema({{"SAMPLE_TS", DataType::kInt},
                            {"NAME", DataType::kString},
                            {"KIND", DataType::kString},
                            {"VALUE", DataType::kInt},
                            {"DELTA", DataType::kInt},
                            {"RATE_PER_S", DataType::kInt}})),
        sampler_(sampler) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::MetricsSampler::Row& r : sampler_->History()) {
      rows.push_back({Value(r.sample_ts_us), Value(r.name), Value(r.kind),
                      Value(r.value), Value(r.delta), Value(r.rate_per_s)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 1024.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::MetricsSampler* sampler_;
};

// SYS$QUERY_PROFILES: per-operator-class rows plus morsel-worker rows of
// each captured statement shape's most recent execution.
class QueryProfilesProvider : public VirtualTableProvider {
 public:
  explicit QueryProfilesProvider(const obs::QueryProfileStore* profiles)
      : name_("SYS$QUERY_PROFILES"),
        schema_(MakeSchema({{"DIGEST", DataType::kString},
                            {"CAPTURES", DataType::kInt},
                            {"WALL_US", DataType::kInt},
                            {"QUEUE_WAIT_US", DataType::kInt},
                            {"PEAK_BYTES", DataType::kInt},
                            {"ROWS_OUT", DataType::kInt},
                            {"OP", DataType::kString},
                            {"WORKER", DataType::kInt},
                            {"OP_LOOPS", DataType::kInt},
                            {"OP_ROWS", DataType::kInt},
                            {"OP_BATCHES", DataType::kInt},
                            {"OP_SELF_US", DataType::kInt},
                            {"OP_INCL_US", DataType::kInt}})),
        profiles_(profiles) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::QueryProfileSnapshot& s : profiles_->Snapshot()) {
      for (const obs::OpProfile& op : s.last.ops) {
        rows.push_back({Value(s.digest_hex), Value(s.captures),
                        Value(s.last.wall_us), Value(s.last.queue_wait_us),
                        Value(s.last.peak_bytes), Value(s.last.rows_out),
                        Value(op.op), Value::Null(), Value(op.loops),
                        Value(op.rows), Value(op.batches), Value(op.self_us),
                        Value(op.incl_us)});
      }
      for (const obs::WorkerProfile& w : s.last.workers) {
        rows.push_back({Value(s.digest_hex), Value(s.captures),
                        Value(s.last.wall_us), Value(s.last.queue_wait_us),
                        Value(s.last.peak_bytes), Value(s.last.rows_out),
                        Value("morsel_worker"), Value(w.worker),
                        Value(w.morsels), Value(w.rows), Value(int64_t{0}),
                        Value(w.wall_us), Value(w.wall_us)});
      }
    }
    return rows;
  }

  double EstimatedRows() const override { return 128.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::QueryProfileStore* profiles_;
};

// SYS$REWRITES: the most recent compile's ordered rewrite-rule log per
// statement shape — one row per rule application attempt, in firing order.
class RewritesProvider : public VirtualTableProvider {
 public:
  explicit RewritesProvider(const obs::PlanFeedbackStore* feedback)
      : name_("SYS$REWRITES"),
        schema_(MakeSchema({{"DIGEST", DataType::kString},
                            {"SEQ", DataType::kInt},
                            {"PASS", DataType::kInt},
                            {"RULE", DataType::kString},
                            {"FIRED", DataType::kInt},
                            {"REJECTED", DataType::kInt},
                            {"US", DataType::kInt},
                            {"BOXES_BEFORE", DataType::kInt},
                            {"BOXES_AFTER", DataType::kInt}})),
        feedback_(feedback) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::PlanFeedbackSnapshot& s : feedback_->Snapshot()) {
      int64_t seq = 0;
      for (const obs::RewriteEvent& e : s.trace.events) {
        rows.push_back({Value(s.digest_hex), Value(++seq),
                        Value(int64_t{e.pass}), Value(e.rule),
                        Value(int64_t{e.fired ? 1 : 0}), Value(e.rejected),
                        Value(e.wall_us), Value(int64_t{e.boxes_before}),
                        Value(int64_t{e.boxes_after})});
      }
    }
    return rows;
  }

  double EstimatedRows() const override { return 128.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::PlanFeedbackStore* feedback_;
};

// SYS$PLAN_FEEDBACK: each statement shape's worst estimate-vs-actual
// offenders, ranked by q-error.
class PlanFeedbackProvider : public VirtualTableProvider {
 public:
  explicit PlanFeedbackProvider(const obs::PlanFeedbackStore* feedback)
      : name_("SYS$PLAN_FEEDBACK"),
        schema_(MakeSchema({{"DIGEST", DataType::kString},
                            {"RANK", DataType::kInt},
                            {"OUTPUT", DataType::kString},
                            {"OP", DataType::kString},
                            {"EST_ROWS", DataType::kInt},
                            {"ACTUAL_ROWS", DataType::kInt},
                            {"LOOPS", DataType::kInt},
                            {"Q_ERROR", DataType::kDouble}})),
        feedback_(feedback) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::PlanFeedbackSnapshot& s : feedback_->Snapshot()) {
      int64_t rank = 0;
      for (const obs::OpFeedback& f : s.worst) {
        rows.push_back({Value(s.digest_hex), Value(++rank), Value(f.output),
                        Value(f.op),
                        Value(static_cast<int64_t>(f.est_rows + 0.5)),
                        Value(f.actual_rows), Value(f.loops),
                        Value(f.q_error)});
      }
    }
    return rows;
  }

  double EstimatedRows() const override { return 64.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::PlanFeedbackStore* feedback_;
};

// SYS$PLAN_HISTORY: every distinct physical plan shape a statement has
// executed with; CURRENT = 1 marks the most recent one.
class PlanHistoryProvider : public VirtualTableProvider {
 public:
  explicit PlanHistoryProvider(const obs::PlanFeedbackStore* feedback)
      : name_("SYS$PLAN_HISTORY"),
        schema_(MakeSchema({{"DIGEST", DataType::kString},
                            {"PLAN_HASH", DataType::kString},
                            {"PLAN_SHAPE", DataType::kString},
                            {"FIRST_SEEN_US", DataType::kInt},
                            {"LAST_SEEN_US", DataType::kInt},
                            {"EXECUTIONS", DataType::kInt},
                            {"MEAN_EXECUTE_US", DataType::kInt},
                            {"CURRENT", DataType::kInt}})),
        feedback_(feedback) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::PlanFeedbackSnapshot& s : feedback_->Snapshot()) {
      for (const obs::PlanRecord& p : s.plans) {
        rows.push_back(
            {Value(s.digest_hex), Value(obs::DigestHex(p.plan_hash)),
             Value(p.shape), Value(p.first_seen_us), Value(p.last_seen_us),
             Value(p.executions), Value(p.mean_execute_us()),
             Value(int64_t{p.plan_hash == s.current_plan ? 1 : 0})});
      }
    }
    return rows;
  }

  double EstimatedRows() const override { return 64.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::PlanFeedbackStore* feedback_;
};

// SYS$EVENTS: the flight recorder's retained events, oldest-first.
class EventsProvider : public VirtualTableProvider {
 public:
  explicit EventsProvider(const obs::FlightRecorder* recorder)
      : name_("SYS$EVENTS"),
        schema_(MakeSchema({{"SEQ", DataType::kInt},
                            {"TS_US", DataType::kInt},
                            {"CATEGORY", DataType::kString},
                            {"SEVERITY", DataType::kString},
                            {"MESSAGE", DataType::kString},
                            {"DETAIL", DataType::kString},
                            {"REPEATED", DataType::kInt}})),
        recorder_(recorder) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::FlightRecorder::Event& e : recorder_->Snapshot()) {
      rows.push_back({Value(e.seq), Value(e.ts_us), Value(e.category),
                      Value(e.severity), Value(e.message), Value(e.detail),
                      Value(e.repeated)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 256.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::FlightRecorder* recorder_;
};

// SYS$HEALTH: one row per health rule with its live OK/FIRING state.
class HealthProvider : public VirtualTableProvider {
 public:
  explicit HealthProvider(const obs::HealthEngine* health)
      : name_("SYS$HEALTH"),
        schema_(MakeSchema({{"RULE", DataType::kString},
                            {"SERIES", DataType::kString},
                            {"FIELD", DataType::kString},
                            {"CMP", DataType::kString},
                            {"BOUND", DataType::kDouble},
                            {"STATE", DataType::kString},
                            {"LAST_VALUE", DataType::kDouble},
                            {"SINCE_US", DataType::kInt},
                            {"BREACHES", DataType::kInt},
                            {"TRANSITIONS", DataType::kInt},
                            {"DESCRIPTION", DataType::kString}})),
        health_(health) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::RuleState& r : health_->Snapshot()) {
      rows.push_back({Value(r.rule.name), Value(r.rule.series),
                      Value(std::string(obs::HealthFieldName(r.rule.field))),
                      Value(std::string(obs::HealthCmpName(r.rule.cmp))),
                      Value(r.rule.bound), Value(r.state), Value(r.last_value),
                      Value(r.since_us), Value(r.breaches),
                      Value(r.transitions), Value(r.rule.description)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 8.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::HealthEngine* health_;
};

// SYS$ALERTS: recorded OK<->FIRING transitions, oldest-first.
class AlertsProvider : public VirtualTableProvider {
 public:
  explicit AlertsProvider(const obs::HealthEngine* health)
      : name_("SYS$ALERTS"),
        schema_(MakeSchema({{"SEQ", DataType::kInt},
                            {"TS_US", DataType::kInt},
                            {"RULE", DataType::kString},
                            {"SERIES", DataType::kString},
                            {"FROM_STATE", DataType::kString},
                            {"TO_STATE", DataType::kString},
                            {"VALUE", DataType::kDouble},
                            {"BOUND", DataType::kDouble}})),
        health_(health) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::AlertTransition& a : health_->Alerts()) {
      rows.push_back({Value(a.seq), Value(a.ts_us), Value(a.rule),
                      Value(a.series), Value(a.from), Value(a.to),
                      Value(a.value), Value(a.bound)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 16.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::HealthEngine* health_;
};

// SYS$CACHE: the CO cache / write-back slice of the metric namespace.
class CacheProvider : public VirtualTableProvider {
 public:
  explicit CacheProvider(obs::MetricsRegistry* metrics)
      : name_("SYS$CACHE"),
        schema_(MakeSchema(
            {{"NAME", DataType::kString}, {"VALUE", DataType::kInt}})),
        metrics_(metrics) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    obs::MetricsSnapshot snap = metrics_->Snapshot();
    std::vector<Tuple> rows;
    auto want = [](const std::string& name) {
      return name.rfind("cache.", 0) == 0 || name.rfind("writeback.", 0) == 0;
    };
    for (const auto& [name, v] : snap.counters) {
      if (want(name)) rows.push_back({Value(name), Value(v)});
    }
    for (const auto& [name, v] : snap.gauges) {
      if (want(name)) rows.push_back({Value(name), Value(v)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 16.0; }

 private:
  std::string name_;
  Schema schema_;
  obs::MetricsRegistry* metrics_;
};

// SYS$TABLES: the catalog's contents, including the virtual tables
// themselves. ROW_COUNT is NULL for views (they are recompiled on use).
class TablesProvider : public VirtualTableProvider {
 public:
  explicit TablesProvider(const Catalog* catalog)
      : name_("SYS$TABLES"),
        schema_(MakeSchema({{"NAME", DataType::kString},
                            {"KIND", DataType::kString},
                            {"ROW_COUNT", DataType::kInt},
                            {"COLUMN_COUNT", DataType::kInt}})),
        catalog_(catalog) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const std::string& name : catalog_->TableNames()) {
      XNFDB_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(name));
      rows.push_back({Value(name), Value("table"),
                      Value(static_cast<int64_t>(table->row_count())),
                      Value(static_cast<int64_t>(table->schema().size()))});
    }
    for (const ViewDef* view : catalog_->Views()) {
      rows.push_back({Value(view->name),
                      Value(view->is_xnf ? "xnf view" : "view"), Value::Null(),
                      Value::Null()});
    }
    for (const VirtualTableProvider* v : catalog_->VirtualTables()) {
      rows.push_back({Value(v->name()), Value("virtual"), Value::Null(),
                      Value(static_cast<int64_t>(v->schema().size()))});
    }
    return rows;
  }

  double EstimatedRows() const override { return 16.0; }

 private:
  std::string name_;
  Schema schema_;
  const Catalog* catalog_;
};

}  // namespace

Status RegisterSystemViews(Catalog* catalog, obs::MetricsRegistry* metrics,
                           const obs::StatementStore* statements,
                           const obs::QueryProfileStore* profiles,
                           const obs::PlanFeedbackStore* feedback) {
  XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
      std::make_unique<MetricsProvider>(metrics)));
  XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
      std::make_unique<HistogramsProvider>(metrics, statements)));
  XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
      std::make_unique<StatementsProvider>(statements, profiles)));
  XNFDB_RETURN_IF_ERROR(
      catalog->RegisterVirtualTable(std::make_unique<CacheProvider>(metrics)));
  XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
      std::make_unique<TablesProvider>(catalog)));
  if (profiles != nullptr) {
    XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
        std::make_unique<QueryProfilesProvider>(profiles)));
  }
  if (feedback != nullptr) {
    XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
        std::make_unique<RewritesProvider>(feedback)));
    XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
        std::make_unique<PlanFeedbackProvider>(feedback)));
    XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
        std::make_unique<PlanHistoryProvider>(feedback)));
  }
  return Status::Ok();
}

std::unique_ptr<VirtualTableProvider> MakeMetricsHistoryProvider(
    const obs::MetricsSampler* sampler) {
  return std::make_unique<MetricsHistoryProvider>(sampler);
}

std::unique_ptr<VirtualTableProvider> MakeQueryProfilesProvider(
    const obs::QueryProfileStore* profiles) {
  return std::make_unique<QueryProfilesProvider>(profiles);
}

std::unique_ptr<VirtualTableProvider> MakeEventsProvider(
    const obs::FlightRecorder* recorder) {
  return std::make_unique<EventsProvider>(recorder);
}

std::unique_ptr<VirtualTableProvider> MakeHealthProvider(
    const obs::HealthEngine* health) {
  return std::make_unique<HealthProvider>(health);
}

std::unique_ptr<VirtualTableProvider> MakeAlertsProvider(
    const obs::HealthEngine* health) {
  return std::make_unique<AlertsProvider>(health);
}

}  // namespace xnfdb
