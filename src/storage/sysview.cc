#include "storage/sysview.h"

#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "obs/statement_stats.h"
#include "storage/catalog.h"

namespace xnfdb {

namespace {

Schema MakeSchema(std::initializer_list<Column> columns) {
  return Schema(std::vector<Column>(columns));
}

// SYS$METRICS: one row per counter/gauge in the registry.
class MetricsProvider : public VirtualTableProvider {
 public:
  explicit MetricsProvider(obs::MetricsRegistry* metrics)
      : name_("SYS$METRICS"),
        schema_(MakeSchema({{"NAME", DataType::kString},
                            {"KIND", DataType::kString},
                            {"VALUE", DataType::kInt}})),
        metrics_(metrics) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    obs::MetricsSnapshot snap = metrics_->Snapshot();
    std::vector<Tuple> rows;
    rows.reserve(snap.counters.size() + snap.gauges.size());
    for (const auto& [name, v] : snap.counters) {
      rows.push_back({Value(name), Value("counter"), Value(v)});
    }
    for (const auto& [name, v] : snap.gauges) {
      rows.push_back({Value(name), Value("gauge"), Value(v)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 64.0; }

 private:
  std::string name_;
  Schema schema_;
  obs::MetricsRegistry* metrics_;
};

// SYS$HISTOGRAMS: one row per bucket of every histogram — the registry's
// plus each statement's latency histogram (named `stmt.<digest>.us`, which
// is what SYS$STATEMENTS.HIST joins against).
class HistogramsProvider : public VirtualTableProvider {
 public:
  HistogramsProvider(obs::MetricsRegistry* metrics,
                     const obs::StatementStore* statements)
      : name_("SYS$HISTOGRAMS"),
        schema_(MakeSchema({{"NAME", DataType::kString},
                            {"LE", DataType::kInt},
                            {"BUCKET_COUNT", DataType::kInt},
                            {"CUM_COUNT", DataType::kInt}})),
        metrics_(metrics),
        statements_(statements) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    obs::MetricsSnapshot snap = metrics_->Snapshot();
    for (const auto& [name, h] : snap.histograms) {
      AppendBuckets(name, h, &rows);
    }
    if (statements_ != nullptr) {
      for (const obs::StatementSnapshot& s : statements_->Snapshot()) {
        AppendBuckets("stmt." + s.digest_hex + ".us", s.latency, &rows);
      }
    }
    return rows;
  }

  double EstimatedRows() const override { return 256.0; }

 private:
  static void AppendBuckets(const std::string& name,
                            const obs::HistogramSnapshot& h,
                            std::vector<Tuple>* rows) {
    int64_t cumulative = 0;
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      Value le = i < h.bounds.size() ? Value(h.bounds[i]) : Value::Null();
      rows->push_back({Value(name), std::move(le), Value(h.buckets[i]),
                       Value(cumulative)});
    }
  }

  std::string name_;
  Schema schema_;
  obs::MetricsRegistry* metrics_;
  const obs::StatementStore* statements_;
};

// SYS$STATEMENTS: one row per distinct statement shape.
class StatementsProvider : public VirtualTableProvider {
 public:
  explicit StatementsProvider(const obs::StatementStore* statements)
      : name_("SYS$STATEMENTS"),
        schema_(MakeSchema({{"DIGEST", DataType::kString},
                            {"KIND", DataType::kString},
                            {"TEXT", DataType::kString},
                            {"HIST", DataType::kString},
                            {"CALLS", DataType::kInt},
                            {"ERRORS", DataType::kInt},
                            {"ROWS_OUT", DataType::kInt},
                            {"TOTAL_US", DataType::kInt},
                            {"MIN_US", DataType::kInt},
                            {"MAX_US", DataType::kInt},
                            {"AVG_US", DataType::kInt},
                            {"P50_US", DataType::kInt},
                            {"P99_US", DataType::kInt}})),
        statements_(statements) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const obs::StatementSnapshot& s : statements_->Snapshot()) {
      rows.push_back({Value(s.digest_hex), Value(s.kind), Value(s.text),
                      Value("stmt." + s.digest_hex + ".us"), Value(s.calls),
                      Value(s.errors), Value(s.rows), Value(s.total_us),
                      Value(s.min_us), Value(s.max_us), Value(s.avg_us()),
                      Value(s.latency.Quantile(0.5)),
                      Value(s.latency.Quantile(0.99))});
    }
    return rows;
  }

  double EstimatedRows() const override { return 32.0; }

 private:
  std::string name_;
  Schema schema_;
  const obs::StatementStore* statements_;
};

// SYS$CACHE: the CO cache / write-back slice of the metric namespace.
class CacheProvider : public VirtualTableProvider {
 public:
  explicit CacheProvider(obs::MetricsRegistry* metrics)
      : name_("SYS$CACHE"),
        schema_(MakeSchema(
            {{"NAME", DataType::kString}, {"VALUE", DataType::kInt}})),
        metrics_(metrics) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    obs::MetricsSnapshot snap = metrics_->Snapshot();
    std::vector<Tuple> rows;
    auto want = [](const std::string& name) {
      return name.rfind("cache.", 0) == 0 || name.rfind("writeback.", 0) == 0;
    };
    for (const auto& [name, v] : snap.counters) {
      if (want(name)) rows.push_back({Value(name), Value(v)});
    }
    for (const auto& [name, v] : snap.gauges) {
      if (want(name)) rows.push_back({Value(name), Value(v)});
    }
    return rows;
  }

  double EstimatedRows() const override { return 16.0; }

 private:
  std::string name_;
  Schema schema_;
  obs::MetricsRegistry* metrics_;
};

// SYS$TABLES: the catalog's contents, including the virtual tables
// themselves. ROW_COUNT is NULL for views (they are recompiled on use).
class TablesProvider : public VirtualTableProvider {
 public:
  explicit TablesProvider(const Catalog* catalog)
      : name_("SYS$TABLES"),
        schema_(MakeSchema({{"NAME", DataType::kString},
                            {"KIND", DataType::kString},
                            {"ROW_COUNT", DataType::kInt},
                            {"COLUMN_COUNT", DataType::kInt}})),
        catalog_(catalog) {}

  const std::string& name() const override { return name_; }
  const Schema& schema() const override { return schema_; }

  Result<std::vector<Tuple>> Generate() const override {
    std::vector<Tuple> rows;
    for (const std::string& name : catalog_->TableNames()) {
      XNFDB_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(name));
      rows.push_back({Value(name), Value("table"),
                      Value(static_cast<int64_t>(table->row_count())),
                      Value(static_cast<int64_t>(table->schema().size()))});
    }
    for (const ViewDef* view : catalog_->Views()) {
      rows.push_back({Value(view->name),
                      Value(view->is_xnf ? "xnf view" : "view"), Value::Null(),
                      Value::Null()});
    }
    for (const VirtualTableProvider* v : catalog_->VirtualTables()) {
      rows.push_back({Value(v->name()), Value("virtual"), Value::Null(),
                      Value(static_cast<int64_t>(v->schema().size()))});
    }
    return rows;
  }

  double EstimatedRows() const override { return 16.0; }

 private:
  std::string name_;
  Schema schema_;
  const Catalog* catalog_;
};

}  // namespace

Status RegisterSystemViews(Catalog* catalog, obs::MetricsRegistry* metrics,
                           const obs::StatementStore* statements) {
  XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
      std::make_unique<MetricsProvider>(metrics)));
  XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
      std::make_unique<HistogramsProvider>(metrics, statements)));
  XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
      std::make_unique<StatementsProvider>(statements)));
  XNFDB_RETURN_IF_ERROR(
      catalog->RegisterVirtualTable(std::make_unique<CacheProvider>(metrics)));
  XNFDB_RETURN_IF_ERROR(catalog->RegisterVirtualTable(
      std::make_unique<TablesProvider>(catalog)));
  return Status::Ok();
}

}  // namespace xnfdb
