// Virtual system tables ("sys$" views): engine state exposed as relations,
// queryable through the ordinary SQL/XNF machinery. Following the paper's
// thesis that structured data belongs behind the relational interface
// (Sect. 2) — and Litwin's stored/inherited relations — internal state is
// not a side-channel JSON dump but a set of tables the planner treats like
// any base table, so CO views can be built over them.
//
// A VirtualTableProvider is registered with the Catalog under its name;
// name resolution (semantics::Builder) falls back to providers when no
// base table matches, and the planner compiles such boxes into a
// VirtualScanOp that materializes Generate() at Open time. Providers are
// never persisted: SaveTo/LoadFrom ignore them, and each Database
// re-registers its own at construction.
//
// Built-in system views (all names upper-case; `$` is an identifier
// character):
//   SYS$METRICS(NAME, KIND, VALUE)            counter/gauge snapshot
//   SYS$HISTOGRAMS(NAME, LE, BUCKET_COUNT, CUM_COUNT)
//       one row per bucket; LE is NULL for the +Inf overflow bucket;
//       includes per-statement latency histograms named `stmt.<digest>.us`
//   SYS$STATEMENTS(DIGEST, KIND, TEXT, HIST, CALLS, ERRORS, ROWS_OUT,
//                  TOTAL_US, MIN_US, MAX_US, AVG_US, P50_US, P99_US)
//       one row per distinct statement shape; HIST names this statement's
//       latency histogram in SYS$HISTOGRAMS (the natural RELATE join key)
//   SYS$CACHE(NAME, VALUE)                    cache.* / writeback.* metrics
//   SYS$TABLES(NAME, KIND, ROW_COUNT, COLUMN_COUNT)
//       catalog contents: base tables, views, and virtual tables
//   SYS$METRICS_HISTORY(SAMPLE_TS, NAME, KIND, VALUE, DELTA, RATE_PER_S)
//       the metrics sampler's time-series ring (api-registered)
//   SYS$QUERY_PROFILES(DIGEST, CAPTURES, WALL_US, QUEUE_WAIT_US, PEAK_BYTES,
//                  ROWS_OUT, OP, WORKER, OP_LOOPS, OP_ROWS, OP_BATCHES,
//                  OP_SELF_US, OP_INCL_US)
//       the always-on profile store: per-operator-class rows (WORKER NULL)
//       plus one 'morsel_worker' row per worker of the last capture
//   SYS$REWRITES(DIGEST, SEQ, PASS, RULE, FIRED, REJECTED, US,
//                  BOXES_BEFORE, BOXES_AFTER)
//       the per-statement rewrite-rule trace: one row per rule application
//       in firing order (SEQ); PASS 0 is the XNF semantic rewrite phase
//   SYS$PLAN_FEEDBACK(DIGEST, RANK, OUTPUT, OP, EST_ROWS, ACTUAL_ROWS,
//                  LOOPS, Q_ERROR)
//       cardinality feedback: each statement's worst estimate-vs-actual
//       offenders, ranked by q-error (RANK 1 = worst)
//   SYS$PLAN_HISTORY(DIGEST, PLAN_HASH, PLAN_SHAPE, FIRST_SEEN_US,
//                  LAST_SEEN_US, EXECUTIONS, MEAN_EXECUTE_US, CURRENT)
//       plan-change detection: every physical plan shape a statement has
//       executed with; CURRENT = 1 marks the most recent plan
//   SYS$EVENTS(SEQ, TS_US, CATEGORY, SEVERITY, MESSAGE, DETAIL, REPEATED)
//       the flight recorder's event ring, oldest-first (api-registered)
//   SYS$HEALTH(RULE, SERIES, FIELD, CMP, BOUND, STATE, LAST_VALUE,
//                  SINCE_US, BREACHES, TRANSITIONS, DESCRIPTION)
//       one row per health rule with its current OK/FIRING state
//   SYS$ALERTS(SEQ, TS_US, RULE, SERIES, FROM_STATE, TO_STATE, VALUE, BOUND)
//       the health engine's alert-transition ring, oldest-first
//   SYS$MATVIEWS(NAME, DIGEST, STATE, PINNED, ROWS, BYTES, HITS,
//                  DELTA_APPLIES, DELTA_ROWS, FULL_REFRESHES, FALLBACKS,
//                  CREATED_US, REFRESHED_US)
//       the materialized-view store (matview/matview.h): one row per
//       stored CO-view answer set with its freshness state and
//       maintenance counters (api-registered)
//
// When a QueryProfileStore is supplied, SYS$STATEMENTS additionally carries
// SCAN_SELF_US / JOIN_SELF_US / FILTER_SELF_US / OTHER_SELF_US — cumulative
// per-operator-class self time of each statement shape.

#ifndef XNFDB_STORAGE_SYSVIEW_H_
#define XNFDB_STORAGE_SYSVIEW_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace xnfdb {

class Catalog;

namespace obs {
class FlightRecorder;
class HealthEngine;
class MetricsRegistry;
class MetricsSampler;
class PlanFeedbackStore;
class QueryProfileStore;
class StatementStore;
}  // namespace obs

// A generator-backed table: fixed schema, rows produced on demand.
class VirtualTableProvider {
 public:
  virtual ~VirtualTableProvider() = default;

  // Upper-case identifier the provider is addressed by.
  virtual const std::string& name() const = 0;
  virtual const Schema& schema() const = 0;

  // Produces the current rows. Called once per scan Open; the result is a
  // point-in-time snapshot (virtual tables have no transactional state).
  virtual Result<std::vector<Tuple>> Generate() const = 0;

  // Planner cardinality hint (virtual tables carry no column statistics).
  virtual double EstimatedRows() const { return 64.0; }
};

// Registers the built-in sys$ views against `catalog`. `metrics`,
// `statements`, `profiles` and `feedback` must outlive the catalog;
// `catalog` itself backs SYS$TABLES. `profiles` may be null (SYS$STATEMENTS
// then reports zero self times); `feedback` may be null (the plan-quality
// views are then not registered).
Status RegisterSystemViews(Catalog* catalog, obs::MetricsRegistry* metrics,
                           const obs::StatementStore* statements,
                           const obs::QueryProfileStore* profiles = nullptr,
                           const obs::PlanFeedbackStore* feedback = nullptr);

// SYS$METRICS_HISTORY over one sampler's ring. Registered by the Database
// (the sampler is api-owned state, like the governor's SYS$QUERIES).
std::unique_ptr<VirtualTableProvider> MakeMetricsHistoryProvider(
    const obs::MetricsSampler* sampler);

// SYS$QUERY_PROFILES over the always-on profile store: for every captured
// statement shape, one row per operator class of the most recent capture
// (WORKER is NULL) and one row per morsel worker (OP = 'morsel_worker').
std::unique_ptr<VirtualTableProvider> MakeQueryProfilesProvider(
    const obs::QueryProfileStore* profiles);

// SYS$EVENTS over one flight recorder's ring, oldest-first. Registered by
// the Database (the recorder is process-wide, but its SQL surface is
// per-database like SYS$QUERIES).
std::unique_ptr<VirtualTableProvider> MakeEventsProvider(
    const obs::FlightRecorder* recorder);

// SYS$HEALTH: one row per health rule with its live state.
std::unique_ptr<VirtualTableProvider> MakeHealthProvider(
    const obs::HealthEngine* health);

// SYS$ALERTS: the health engine's recorded OK<->FIRING transitions.
std::unique_ptr<VirtualTableProvider> MakeAlertsProvider(
    const obs::HealthEngine* health);

}  // namespace xnfdb

#endif  // XNFDB_STORAGE_SYSVIEW_H_
