// Whole-database persistence: saves and restores a catalog — table schemas
// and rows, primary/foreign keys, indexes, and stored (SQL and XNF) view
// definitions — in a versioned, line-oriented text format.
//
// The paper treats storage/recovery as the part of the RDBMS that XNF keeps
// "totally unchanged" (Sect. 6); this module provides the minimal durable
// substrate a standalone library needs (and what examples use to keep data
// across runs). Single-user, whole-file granularity.

#ifndef XNFDB_STORAGE_PERSIST_H_
#define XNFDB_STORAGE_PERSIST_H_

#include <iostream>
#include <string>

#include "common/status.h"
#include "storage/catalog.h"

namespace xnfdb {

Status SaveCatalog(const Catalog& catalog, std::ostream& out);
// Restores into `catalog`, which must be empty.
Status LoadCatalog(std::istream& in, Catalog* catalog);

Status SaveCatalogToFile(const Catalog& catalog, const std::string& path);
Status LoadCatalogFromFile(const std::string& path, Catalog* catalog);

}  // namespace xnfdb

#endif  // XNFDB_STORAGE_PERSIST_H_
