// Whole-database persistence: saves and restores a catalog — table schemas
// and rows, primary/foreign keys, indexes, and stored (SQL and XNF) view
// definitions — in a versioned, line-oriented text format.
//
// The paper treats storage/recovery as the part of the RDBMS that XNF keeps
// "totally unchanged" (Sect. 6); this module provides the minimal durable
// substrate a standalone library needs (and what examples use to keep data
// across runs). Single-user, whole-file granularity.
//
// Format version 2 ("XNFDB 2") makes every byte verifiable: the body is a
// sequence of sections, each header carrying a record count, payload size
// and CRC32, followed by a footer whose CRC covers the whole body, so any
// truncation or bit flip is rejected with kIoError instead of loading as
// garbage. Version-1 files still load. File-level helpers route through an
// `Env` (common/env.h) and replace the destination atomically
// (temp + sync + rename), so an interrupted save leaves the previous
// database intact.

#ifndef XNFDB_STORAGE_PERSIST_H_
#define XNFDB_STORAGE_PERSIST_H_

#include <iostream>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "storage/catalog.h"

namespace xnfdb {

// The version new files are written with. `format_version` may be pinned to
// 1 to produce files for old readers (and to test v1 compatibility).
inline constexpr int kPersistFormatVersion = 2;

Status SaveCatalog(const Catalog& catalog, std::ostream& out,
                   int format_version = kPersistFormatVersion);
// Restores into `catalog`, which must be empty. Accepts v1 and v2 files.
Status LoadCatalog(std::istream& in, Catalog* catalog);

// Atomic replace of `path` via `env` (Env::Default() when null).
Status SaveCatalogToFile(const Catalog& catalog, const std::string& path,
                         Env* env = nullptr);
Status LoadCatalogFromFile(const std::string& path, Catalog* catalog,
                           Env* env = nullptr);

}  // namespace xnfdb

#endif  // XNFDB_STORAGE_PERSIST_H_
