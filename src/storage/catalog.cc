#include "storage/catalog.h"

#include "common/schema.h"

namespace xnfdb {

Result<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  std::string key = ToUpperIdent(name);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table " + key + " already exists");
  }
  if (views_.count(key) != 0) {
    return Status::AlreadyExists("a view named " + key + " already exists");
  }
  if (virtual_tables_.count(key) != 0) {
    return Status::AlreadyExists("a system view named " + key +
                                 " already exists");
  }
  auto table = std::make_unique<Table>(key, std::move(schema));
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToUpperIdent(name));
  if (it == tables_.end()) {
    return Status::NotFound("table " + ToUpperIdent(name) + " does not exist");
  }
  return it->second.get();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToUpperIdent(name)) != 0;
}

Status Catalog::DropTable(const std::string& name) {
  std::string key = ToUpperIdent(name);
  if (tables_.erase(key) == 0) {
    return Status::NotFound("table " + key + " does not exist");
  }
  primary_keys_.erase(key);
  for (auto it = foreign_keys_.begin(); it != foreign_keys_.end();) {
    if (IdentEquals(it->table, key) || IdentEquals(it->ref_table, key)) {
      it = foreign_keys_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::Ok();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Catalog::RegisterVirtualTable(
    std::unique_ptr<VirtualTableProvider> provider) {
  std::string key = ToUpperIdent(provider->name());
  if (tables_.count(key) != 0 || views_.count(key) != 0 ||
      virtual_tables_.count(key) != 0) {
    return Status::AlreadyExists("an object named " + key + " already exists");
  }
  virtual_tables_[key] = std::move(provider);
  return Status::Ok();
}

const VirtualTableProvider* Catalog::GetVirtualTable(
    const std::string& name) const {
  auto it = virtual_tables_.find(ToUpperIdent(name));
  return it == virtual_tables_.end() ? nullptr : it->second.get();
}

bool Catalog::HasVirtualTable(const std::string& name) const {
  return virtual_tables_.count(ToUpperIdent(name)) != 0;
}

std::vector<const VirtualTableProvider*> Catalog::VirtualTables() const {
  std::vector<const VirtualTableProvider*> out;
  out.reserve(virtual_tables_.size());
  for (const auto& [name, provider] : virtual_tables_) {
    out.push_back(provider.get());
  }
  return out;
}

Status Catalog::CreateView(ViewDef def) {
  std::string key = ToUpperIdent(def.name);
  if (views_.count(key) != 0 || tables_.count(key) != 0 ||
      virtual_tables_.count(key) != 0) {
    return Status::AlreadyExists("view or table " + key + " already exists");
  }
  def.name = key;
  views_[key] = std::move(def);
  return Status::Ok();
}

Result<const ViewDef*> Catalog::GetView(const std::string& name) const {
  auto it = views_.find(ToUpperIdent(name));
  if (it == views_.end()) {
    return Status::NotFound("view " + ToUpperIdent(name) + " does not exist");
  }
  return &it->second;
}

bool Catalog::HasView(const std::string& name) const {
  return views_.count(ToUpperIdent(name)) != 0;
}

Status Catalog::DropView(const std::string& name) {
  if (views_.erase(ToUpperIdent(name)) == 0) {
    return Status::NotFound("view " + ToUpperIdent(name) + " does not exist");
  }
  return Status::Ok();
}

std::vector<const ViewDef*> Catalog::Views() const {
  std::vector<const ViewDef*> out;
  for (const auto& [name, def] : views_) out.push_back(&def);
  return out;
}

Status Catalog::DeclarePrimaryKey(const std::string& table,
                                  const std::string& column) {
  XNFDB_ASSIGN_OR_RETURN(Table * t, GetTable(table));
  if (t->schema().FindColumn(column) < 0) {
    return Status::NotFound("PK column " + column + " not in table " +
                            t->name());
  }
  primary_keys_[t->name()] = ToUpperIdent(column);
  // A PK lookup path is valuable; index it eagerly.
  return t->CreateIndex(column);
}

int Catalog::PrimaryKeyColumn(const std::string& table) const {
  auto it = primary_keys_.find(ToUpperIdent(table));
  if (it == primary_keys_.end()) return -1;
  auto table_it = tables_.find(ToUpperIdent(table));
  if (table_it == tables_.end()) return -1;
  return table_it->second->schema().FindColumn(it->second);
}

Status Catalog::DeclareForeignKey(ForeignKey fk) {
  XNFDB_ASSIGN_OR_RETURN(Table * t, GetTable(fk.table));
  XNFDB_ASSIGN_OR_RETURN(Table * ref, GetTable(fk.ref_table));
  if (t->schema().FindColumn(fk.column) < 0) {
    return Status::NotFound("FK column " + fk.column + " not in table " +
                            t->name());
  }
  if (ref->schema().FindColumn(fk.ref_column) < 0) {
    return Status::NotFound("FK target column " + fk.ref_column +
                            " not in table " + ref->name());
  }
  fk.table = t->name();
  fk.column = ToUpperIdent(fk.column);
  fk.ref_table = ref->name();
  fk.ref_column = ToUpperIdent(fk.ref_column);
  foreign_keys_.push_back(std::move(fk));
  return Status::Ok();
}

std::vector<ForeignKey> Catalog::ForeignKeysOf(const std::string& table) const {
  std::vector<ForeignKey> out;
  for (const ForeignKey& fk : foreign_keys_) {
    if (IdentEquals(fk.table, table)) out.push_back(fk);
  }
  return out;
}

const ForeignKey* Catalog::FindForeignKey(const std::string& table,
                                          const std::string& column) const {
  for (const ForeignKey& fk : foreign_keys_) {
    if (IdentEquals(fk.table, table) && IdentEquals(fk.column, column)) {
      return &fk;
    }
  }
  return nullptr;
}

}  // namespace xnfdb
