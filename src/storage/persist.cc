#include "storage/persist.h"

#include <fstream>
#include <sstream>

#include "common/file_format.h"

namespace xnfdb {

namespace {

constexpr char kMagicV1[] = "XNFDB 1";
constexpr char kMagicV2[] = "XNFDB 2";

// --- writers ---------------------------------------------------------------
// The payload text is identical across format versions; v1 concatenates the
// payloads directly, v2 wraps them in CRC-carrying sections.

Status WriteTablesPayload(const Catalog& catalog, std::ostream& out) {
  std::vector<std::string> names = catalog.TableNames();
  out << "TABLES " << names.size() << "\n";
  for (const std::string& name : names) {
    Result<Table*> table = catalog.GetTable(name);
    if (!table.ok()) return table.status();
    const Table& t = *table.value();
    out << "TABLE " << t.name() << " " << t.schema().size() << " "
        << t.row_count() << "\n";
    for (const Column& col : t.schema().columns()) {
      out << "COL " << col.name << " " << static_cast<int>(col.type) << "\n";
    }
    // Primary key and secondary indexes.
    int pk = catalog.PrimaryKeyColumn(name);
    out << "PK " << pk << "\n";
    std::string index_cols;
    for (size_t c = 0; c < t.schema().size(); ++c) {
      if (t.GetIndex(static_cast<int>(c)) != nullptr) {
        index_cols += " " + std::to_string(c);
      }
    }
    out << "INDEXES" << index_cols << "\n";
    for (Rid rid = 0; rid < t.rid_bound(); ++rid) {
      if (!t.IsLive(rid)) continue;
      out << "ROW\n";
      for (const Value& v : t.Get(rid)) WriteValueText(out, v);
    }
    // Foreign keys of this table.
    std::vector<ForeignKey> fks = catalog.ForeignKeysOf(name);
    out << "FKS " << fks.size() << "\n";
    for (const ForeignKey& fk : fks) {
      out << "FK " << fk.column << " " << fk.ref_table << " "
          << fk.ref_column << "\n";
    }
  }
  return Status::Ok();
}

void WriteViewsPayload(const Catalog& catalog, std::ostream& out) {
  std::vector<const ViewDef*> views = catalog.Views();
  out << "VIEWS " << views.size() << "\n";
  for (const ViewDef* view : views) {
    out << "VIEW " << view->name << " " << (view->is_xnf ? 1 : 0) << " "
        << view->definition.size() << "\n"
        << view->definition << "\n";
  }
}

// --- readers ---------------------------------------------------------------

Status ParseTablesBody(std::istream& in, Catalog* catalog) {
  std::string word, line;
  size_t ntables;
  if (!(in >> word >> ntables) || word != "TABLES") {
    return Status::IoError("expected TABLES");
  }
  std::vector<ForeignKey> pending_fks;  // declared after all tables exist
  std::vector<std::pair<std::string, std::string>> pending_pks;
  for (size_t ti = 0; ti < ntables; ++ti) {
    std::string name;
    size_t ncols, nrows;
    if (!(in >> word >> name >> ncols >> nrows) || word != "TABLE") {
      return Status::IoError("expected TABLE");
    }
    Schema schema;
    for (size_t c = 0; c < ncols; ++c) {
      std::string col_name;
      int type;
      if (!(in >> word >> col_name >> type) || word != "COL") {
        return Status::IoError("expected COL");
      }
      if (type < 0 || type > static_cast<int>(DataType::kBool)) {
        return Status::IoError("column " + col_name +
                               " has invalid type tag " +
                               std::to_string(type));
      }
      schema.AddColumn(Column{col_name, static_cast<DataType>(type)});
    }
    XNFDB_ASSIGN_OR_RETURN(Table * table,
                           catalog->CreateTable(name, schema));
    int pk;
    if (!(in >> word >> pk) || word != "PK") {
      return Status::IoError("expected PK");
    }
    if (pk >= static_cast<int>(ncols)) {
      return Status::IoError("primary-key column " + std::to_string(pk) +
                             " out of range for table " + name);
    }
    if (pk >= 0) {
      pending_pks.emplace_back(name, schema.column(pk).name);
    }
    if (!(in >> word) || word != "INDEXES") {
      return Status::IoError("expected INDEXES");
    }
    std::getline(in, line);
    std::istringstream index_line(line);
    int index_col;
    while (index_line >> index_col) {
      if (index_col < 0 || index_col >= static_cast<int>(ncols)) {
        return Status::IoError("index column " + std::to_string(index_col) +
                               " out of range for table " + name);
      }
      XNFDB_RETURN_IF_ERROR(
          table->CreateIndex(schema.column(index_col).name));
    }
    for (size_t r = 0; r < nrows; ++r) {
      if (!(in >> word) || word != "ROW") {
        return Status::IoError("expected ROW");
      }
      Tuple row;
      row.reserve(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        XNFDB_ASSIGN_OR_RETURN(Value v, ReadValueText(in));
        row.push_back(std::move(v));
      }
      Result<Rid> rid = table->Insert(std::move(row));
      if (!rid.ok()) return rid.status();
    }
    size_t nfks;
    if (!(in >> word >> nfks) || word != "FKS") {
      return Status::IoError("expected FKS");
    }
    for (size_t f = 0; f < nfks; ++f) {
      ForeignKey fk;
      fk.table = name;
      if (!(in >> word >> fk.column >> fk.ref_table >> fk.ref_column) ||
          word != "FK") {
        return Status::IoError("expected FK");
      }
      pending_fks.push_back(std::move(fk));
    }
  }
  for (const auto& [table, column] : pending_pks) {
    XNFDB_RETURN_IF_ERROR(catalog->DeclarePrimaryKey(table, column));
  }
  for (ForeignKey& fk : pending_fks) {
    XNFDB_RETURN_IF_ERROR(catalog->DeclareForeignKey(std::move(fk)));
  }
  return Status::Ok();
}

Status ParseViewsBody(std::istream& in, Catalog* catalog) {
  std::string word;
  size_t nviews;
  if (!(in >> word >> nviews) || word != "VIEWS") {
    return Status::IoError("expected VIEWS");
  }
  for (size_t v = 0; v < nviews; ++v) {
    ViewDef def;
    int is_xnf;
    size_t len;
    if (!(in >> word >> def.name >> is_xnf >> len) || word != "VIEW") {
      return Status::IoError("expected VIEW");
    }
    def.is_xnf = is_xnf != 0;
    in.get();  // the newline after the header
    int64_t remaining = StreamRemainingBytes(in);
    if (remaining >= 0 && static_cast<int64_t>(len) > remaining) {
      return Status::IoError("view " + def.name + " claims " +
                             std::to_string(len) +
                             "-byte definition beyond end of file");
    }
    def.definition.resize(len);
    in.read(def.definition.data(), static_cast<std::streamsize>(len));
    if (static_cast<size_t>(in.gcount()) != len) {
      return Status::IoError("truncated view definition");
    }
    XNFDB_RETURN_IF_ERROR(catalog->CreateView(std::move(def)));
  }
  return Status::Ok();
}

}  // namespace

Status SaveCatalog(const Catalog& catalog, std::ostream& out,
                   int format_version) {
  std::ostringstream tables, views;
  XNFDB_RETURN_IF_ERROR(WriteTablesPayload(catalog, tables));
  WriteViewsPayload(catalog, views);
  if (format_version == 1) {
    out << kMagicV1 << "\n" << tables.str() << views.str() << "END\n";
  } else if (format_version == kPersistFormatVersion) {
    std::vector<FileSection> sections(2);
    sections[0].name = "TABLES";
    sections[0].records = catalog.TableNames().size();
    sections[0].payload = tables.str();
    sections[1].name = "VIEWS";
    sections[1].records = catalog.Views().size();
    sections[1].payload = views.str();
    WriteSectionedFile(out, kMagicV2, sections);
  } else {
    return Status::InvalidArgument("unsupported database format version " +
                                   std::to_string(format_version));
  }
  return out.good() ? Status::Ok()
                    : Status::IoError("write to database stream failed");
}

Status LoadCatalog(std::istream& in, Catalog* catalog) {
  if (!catalog->TableNames().empty() || !catalog->Views().empty()) {
    return Status::InvalidArgument("LoadCatalog requires an empty catalog");
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty database file");
  }
  if (line == kMagicV1) {
    XNFDB_RETURN_IF_ERROR(ParseTablesBody(in, catalog));
    return ParseViewsBody(in, catalog);
  }
  if (line != kMagicV2) {
    return Status::IoError("bad database file magic");
  }
  XNFDB_ASSIGN_OR_RETURN(std::vector<FileSection> sections,
                         ReadSectionedFile(in));
  if (sections.size() != 2 || sections[0].name != "TABLES" ||
      sections[1].name != "VIEWS") {
    return Status::IoError("database file has unexpected sections");
  }
  std::istringstream tables_in(sections[0].payload);
  XNFDB_RETURN_IF_ERROR(ParseTablesBody(tables_in, catalog));
  if (catalog->TableNames().size() != sections[0].records) {
    return Status::IoError("TABLES record count mismatch");
  }
  std::istringstream views_in(sections[1].payload);
  XNFDB_RETURN_IF_ERROR(ParseViewsBody(views_in, catalog));
  if (catalog->Views().size() != sections[1].records) {
    return Status::IoError("VIEWS record count mismatch");
  }
  return Status::Ok();
}

Status SaveCatalogToFile(const Catalog& catalog, const std::string& path,
                         Env* env) {
  if (env == nullptr) env = Env::Default();
  std::ostringstream out;
  XNFDB_RETURN_IF_ERROR(SaveCatalog(catalog, out));
  return AtomicallyWriteFile(env, path, out.str());
}

Status LoadCatalogFromFile(const std::string& path, Catalog* catalog,
                           Env* env) {
  if (env == nullptr) env = Env::Default();
  std::string contents;
  XNFDB_RETURN_IF_ERROR(env->ReadFileToString(path, &contents));
  std::istringstream in(contents);
  return LoadCatalog(in, catalog);
}

}  // namespace xnfdb
