#include "storage/persist.h"

#include <fstream>
#include <sstream>

namespace xnfdb {

namespace {

constexpr char kMagic[] = "XNFDB 1";

}  // namespace

Status SaveCatalog(const Catalog& catalog, std::ostream& out) {
  out << kMagic << "\n";
  std::vector<std::string> names = catalog.TableNames();
  out << "TABLES " << names.size() << "\n";
  for (const std::string& name : names) {
    Result<Table*> table = catalog.GetTable(name);
    if (!table.ok()) return table.status();
    const Table& t = *table.value();
    out << "TABLE " << t.name() << " " << t.schema().size() << " "
        << t.row_count() << "\n";
    for (const Column& col : t.schema().columns()) {
      out << "COL " << col.name << " " << static_cast<int>(col.type) << "\n";
    }
    // Primary key and secondary indexes.
    int pk = catalog.PrimaryKeyColumn(name);
    out << "PK " << pk << "\n";
    std::string index_cols;
    for (size_t c = 0; c < t.schema().size(); ++c) {
      if (t.GetIndex(static_cast<int>(c)) != nullptr) {
        index_cols += " " + std::to_string(c);
      }
    }
    out << "INDEXES" << index_cols << "\n";
    for (Rid rid = 0; rid < t.rid_bound(); ++rid) {
      if (!t.IsLive(rid)) continue;
      out << "ROW\n";
      for (const Value& v : t.Get(rid)) WriteValueText(out, v);
    }
    // Foreign keys of this table.
    std::vector<ForeignKey> fks = catalog.ForeignKeysOf(name);
    out << "FKS " << fks.size() << "\n";
    for (const ForeignKey& fk : fks) {
      out << "FK " << fk.column << " " << fk.ref_table << " "
          << fk.ref_column << "\n";
    }
  }
  std::vector<const ViewDef*> views = catalog.Views();
  out << "VIEWS " << views.size() << "\n";
  for (const ViewDef* view : views) {
    out << "VIEW " << view->name << " " << (view->is_xnf ? 1 : 0) << " "
        << view->definition.size() << "\n"
        << view->definition << "\n";
  }
  out << "END\n";
  return out.good() ? Status::Ok()
                    : Status::IoError("write to database stream failed");
}

Status LoadCatalog(std::istream& in, Catalog* catalog) {
  if (!catalog->TableNames().empty() || !catalog->Views().empty()) {
    return Status::InvalidArgument("LoadCatalog requires an empty catalog");
  }
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    return Status::IoError("bad database file magic");
  }
  std::string word;
  size_t ntables;
  if (!(in >> word >> ntables) || word != "TABLES") {
    return Status::IoError("expected TABLES");
  }
  struct PendingFk {
    ForeignKey fk;
  };
  std::vector<ForeignKey> pending_fks;  // declared after all tables exist
  std::vector<std::pair<std::string, std::string>> pending_pks;
  for (size_t ti = 0; ti < ntables; ++ti) {
    std::string name;
    size_t ncols, nrows;
    if (!(in >> word >> name >> ncols >> nrows) || word != "TABLE") {
      return Status::IoError("expected TABLE");
    }
    Schema schema;
    for (size_t c = 0; c < ncols; ++c) {
      std::string col_name;
      int type;
      if (!(in >> word >> col_name >> type) || word != "COL") {
        return Status::IoError("expected COL");
      }
      schema.AddColumn(Column{col_name, static_cast<DataType>(type)});
    }
    XNFDB_ASSIGN_OR_RETURN(Table * table,
                           catalog->CreateTable(name, schema));
    int pk;
    if (!(in >> word >> pk) || word != "PK") {
      return Status::IoError("expected PK");
    }
    if (pk >= 0) {
      pending_pks.emplace_back(name, schema.column(pk).name);
    }
    if (!(in >> word) || word != "INDEXES") {
      return Status::IoError("expected INDEXES");
    }
    std::getline(in, line);
    std::istringstream index_line(line);
    int index_col;
    while (index_line >> index_col) {
      XNFDB_RETURN_IF_ERROR(
          table->CreateIndex(schema.column(index_col).name));
    }
    for (size_t r = 0; r < nrows; ++r) {
      if (!(in >> word) || word != "ROW") {
        return Status::IoError("expected ROW");
      }
      Tuple row;
      row.reserve(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        XNFDB_ASSIGN_OR_RETURN(Value v, ReadValueText(in));
        row.push_back(std::move(v));
      }
      Result<Rid> rid = table->Insert(std::move(row));
      if (!rid.ok()) return rid.status();
    }
    size_t nfks;
    if (!(in >> word >> nfks) || word != "FKS") {
      return Status::IoError("expected FKS");
    }
    for (size_t f = 0; f < nfks; ++f) {
      ForeignKey fk;
      fk.table = name;
      if (!(in >> word >> fk.column >> fk.ref_table >> fk.ref_column) ||
          word != "FK") {
        return Status::IoError("expected FK");
      }
      pending_fks.push_back(std::move(fk));
    }
  }
  for (const auto& [table, column] : pending_pks) {
    XNFDB_RETURN_IF_ERROR(catalog->DeclarePrimaryKey(table, column));
  }
  for (ForeignKey& fk : pending_fks) {
    XNFDB_RETURN_IF_ERROR(catalog->DeclareForeignKey(std::move(fk)));
  }
  size_t nviews;
  if (!(in >> word >> nviews) || word != "VIEWS") {
    return Status::IoError("expected VIEWS");
  }
  for (size_t v = 0; v < nviews; ++v) {
    ViewDef def;
    int is_xnf;
    size_t len;
    if (!(in >> word >> def.name >> is_xnf >> len) || word != "VIEW") {
      return Status::IoError("expected VIEW");
    }
    def.is_xnf = is_xnf != 0;
    in.get();  // the newline after the header
    def.definition.resize(len);
    in.read(def.definition.data(), static_cast<std::streamsize>(len));
    if (static_cast<size_t>(in.gcount()) != len) {
      return Status::IoError("truncated view definition");
    }
    XNFDB_RETURN_IF_ERROR(catalog->CreateView(std::move(def)));
  }
  return Status::Ok();
}

Status SaveCatalogToFile(const Catalog& catalog, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return SaveCatalog(catalog, out);
}

Status LoadCatalogFromFile(const std::string& path, Catalog* catalog) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadCatalog(in, catalog);
}

}  // namespace xnfdb
