#include "exec/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>

#include "common/str_util.h"

namespace xnfdb {

namespace {

// Observes the elapsed microseconds since `t0` into `metrics[name]`; no-op
// without a registry.
class PhaseTimer {
 public:
  PhaseTimer(obs::MetricsRegistry* metrics, const char* name)
      : metrics_(metrics), name_(name),
        t0_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    if (metrics_ == nullptr) return;
    int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                     std::chrono::steady_clock::now() - t0_)
                     .count();
    metrics_->GetHistogram(name_)->Observe(us);
  }

 private:
  obs::MetricsRegistry* metrics_;
  const char* name_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace

int QueryResult::FindOutput(const std::string& name) const {
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (IdentEquals(outputs[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::vector<Tuple> QueryResult::RowsOf(int idx) const {
  std::vector<Tuple> rows;
  for (const StreamItem& item : stream) {
    if (item.output == idx && item.kind == StreamItem::Kind::kRow) {
      rows.push_back(item.values);
    }
  }
  return rows;
}

size_t QueryResult::RowCount(int idx) const {
  size_t n = 0;
  for (const StreamItem& item : stream) {
    if (item.output == idx && item.kind == StreamItem::Kind::kRow) ++n;
  }
  return n;
}

size_t QueryResult::ConnectionCount(int idx) const {
  size_t n = 0;
  for (const StreamItem& item : stream) {
    if (item.output == idx && item.kind == StreamItem::Kind::kConnection) ++n;
  }
  return n;
}

namespace {

// Per-component tuple-id assignment with row deduplication (object sharing:
// "if a component tuple is used multiple times within a view, then it
// exists only once", Sect. 2).
struct TidMap {
  std::unordered_map<Tuple, TupleId, TupleHash, TupleEq> ids;
  TupleId next = 0;

  std::pair<TupleId, bool> Intern(const Tuple& row) {
    auto [it, inserted] = ids.emplace(row, next);
    if (inserted) ++next;
    return {it->second, inserted};
  }
};

Tuple ProjectCols(const Tuple& row, const std::vector<int>& cols) {
  Tuple out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(row[c]);
  return out;
}

int ResolveMorselWorkers(int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(ParseEnvInt("XNFDB_MORSEL_WORKERS", 1, 256, 1));
}

Rid ResolveMorselRows(int64_t requested) {
  if (requested > 0) return static_cast<Rid>(requested);
  return static_cast<Rid>(
      ParseEnvInt("XNFDB_MORSEL_ROWS", 1, int64_t{1} << 30, 2048));
}

// Pulls every row out of `op` (already Open) at the requested granularity
// and hands each to `emit` (Tuple&& -> Status). batch_size <= 1 keeps the
// classic row-at-a-time pull; otherwise each delivered batch bumps
// `batches_emitted`.
template <typename EmitFn>
Status PullRows(Operator* op, int batch_size, StatCounter* batches_emitted,
                const EmitFn& emit) {
  if (batch_size <= 1) {
    Tuple row;
    while (true) {
      XNFDB_ASSIGN_OR_RETURN(bool more, op->Next(&row));
      if (!more) break;
      XNFDB_RETURN_IF_ERROR(emit(std::move(row)));
      row = Tuple();
    }
    return Status::Ok();
  }
  TupleBatch batch(static_cast<size_t>(batch_size));
  while (true) {
    XNFDB_ASSIGN_OR_RETURN(bool more, op->NextBatch(&batch));
    if (!more) break;
    ++*batches_emitted;
    for (size_t i = 0; i < batch.ActiveCount(); ++i) {
      XNFDB_RETURN_IF_ERROR(emit(std::move(batch.Active(i))));
    }
  }
  return Status::Ok();
}

// Adds one finished operator tree's actuals into `agg`, keyed by operator
// class (Kind). Inclusive time is the node's own measurement; self time
// subtracts the children's inclusive time, clamped at zero.
void AccumulateTree(Operator* op, std::map<std::string, obs::OpProfile>* agg) {
  const Operator::Actuals& a = op->actuals();
  int64_t child_ns = 0;
  for (Operator* c : op->Children()) {
    child_ns += c->actuals().ns;
    AccumulateTree(c, agg);
  }
  obs::OpProfile& p = (*agg)[op->Kind()];
  p.op = op->Kind();
  p.loops += a.loops;
  p.rows += a.rows;
  p.batches += a.batches;
  p.incl_us += a.ns / 1000;
  p.self_us += std::max<int64_t>(0, a.ns - child_ns) / 1000;
}

// Runs `task(i)` for i in [0, n) on up to `workers` threads. Tasks must be
// independent. Returns the first failure, if any.
Status RunParallel(int n, int workers,
                   const std::function<Status(int)>& task) {
  if (workers <= 1 || n <= 1) {
    for (int i = 0; i < n; ++i) {
      XNFDB_RETURN_IF_ERROR(task(i));
    }
    return Status::Ok();
  }
  std::atomic<int> next{0};
  std::vector<Status> failures(n);
  std::vector<std::thread> threads;
  int nthreads = std::min(workers, n);
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      while (true) {
        int i = next.fetch_add(1);
        if (i >= n) break;
        failures[i] = task(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& s : failures) {
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace

Result<QueryResult> ExecuteGraph(const Catalog& catalog,
                                 const qgm::QueryGraph& graph,
                                 const ExecOptions& options) {
  if (graph.top_box_id() < 0) {
    return Status::Internal("graph has no Top box");
  }
  const qgm::Box* top = graph.box(graph.top_box_id());
  QueryResult result;
  // Workers increment `run_stats`, never the result object, so the result
  // can be copied or moved freely: its stats are a consistent snapshot
  // taken after every worker joined.
  ExecStats run_stats;
  const int batch_size = ResolveBatchSize(options.batch_size);
  // Morsel workers clone plans and split actuals across them, so analyze
  // mode (which renders one annotated plan per output) stays sequential.
  const int morsel_workers =
      options.analyze ? 1 : ResolveMorselWorkers(options.morsel_workers);
  const Rid morsel_rows = ResolveMorselRows(options.morsel_rows);
  QueryContext* ctx = options.context.get();
  PlanOptions plan_options = options.plan;
  plan_options.analyze = options.analyze;
  plan_options.batch_size = batch_size;
  plan_options.context = ctx;  // governs spool builds and returned trees
  Planner planner(&catalog, &graph, plan_options, &run_stats);

  // Output descriptors.
  for (const qgm::TopOutput& out : top->outputs) {
    OutputDesc desc;
    desc.name = out.name;
    desc.is_connection = out.is_connection;
    if (!out.is_connection) {
      const qgm::Box* box = graph.box(out.box_id);
      std::vector<int> cols = out.cols;
      if (cols.empty()) {
        for (size_t i = 0; i < box->HeadArity(); ++i) {
          cols.push_back(static_cast<int>(i));
        }
      }
      for (int c : cols) {
        Column col;
        col.name = box->HeadName(c);
        Result<DataType> t = graph.HeadType(out.box_id, c);
        col.type = t.ok() ? t.value() : DataType::kNull;
        desc.schema.AddColumn(std::move(col));
      }
    } else {
      desc.partner_names = out.partner_names;
    }
    result.outputs.push_back(std::move(desc));
  }

  int n_outputs = static_cast<int>(top->outputs.size());
  const bool collect_counts = options.collect_dedup_counts;
  std::map<std::string, int> component_output;  // name -> output index
  std::map<std::string, TidMap> tids;  // component name -> tid map
  for (int i = 0; i < n_outputs; ++i) {
    if (!top->outputs[i].is_connection) {
      component_output[top->outputs[i].name] = i;
      tids[top->outputs[i].name];  // pre-create: stable under parallel pass
      if (collect_counts && top->outputs[i].xnf_component) {
        result.component_counts[i];  // pre-create: stable under parallel pass
      }
    } else if (collect_counts) {
      result.connection_counts[i];
    }
  }
  std::vector<std::vector<StreamItem>> buffers(n_outputs);
  std::vector<std::string> plan_texts(n_outputs);

  // Always-on profile accumulation. Output passes and morsel workers all
  // merge their finished trees here, so the aggregation is mutex-guarded;
  // it runs once per finished plan, never per row.
  const bool collect_profile = options.collect_profile;
  std::mutex profile_mu;
  std::map<std::string, obs::OpProfile> profile_ops;
  std::map<int64_t, obs::WorkerProfile> profile_workers;  // by worker id

  // Cardinality-feedback accumulation, keyed by (output index, pre-order
  // position) so morsel clones of one plan merge into the same slots. Like
  // the profile, one tree walk per finished plan — never per row. Caveat:
  // under morsel execution rows and loops both sum across clones, so a
  // morsel-split driver scan reports its per-clone (not total) rows per
  // loop; with the default single worker the numbers are exact.
  const bool collect_feedback = options.collect_feedback;
  struct FeedbackSlot {
    std::string op;
    double est = -1.0;
    int64_t rows = 0;
    int64_t loops = 0;
  };
  std::map<std::pair<int, int>, FeedbackSlot> feedback_slots;
  std::vector<std::string> shapes(n_outputs);
  std::function<void(int, int*, Operator*)> feedback_walk =
      [&](int oi, int* idx, Operator* op) {
        FeedbackSlot& slot = feedback_slots[{oi, (*idx)++}];
        if (slot.op.empty()) {
          slot.op = op->Kind();
          slot.est = op->estimated_rows();
        }
        slot.rows += op->actuals().rows;
        slot.loops += op->actuals().loops;
        for (Operator* c : op->Children()) feedback_walk(oi, idx, c);
      };
  auto record_feedback = [&](int oi, Operator* root) {
    if (!collect_feedback) return;
    std::lock_guard<std::mutex> lock(profile_mu);
    int idx = 0;
    feedback_walk(oi, &idx, root);
  };
  auto capture_shape = [&](int oi, const qgm::TopOutput& out, Operator* op) {
    if (!collect_feedback) return;
    shapes[oi] = out.name + "=" + PlanShapeText(op);
  };

  auto record_tree = [&](Operator* op) {
    if (!collect_profile) return;
    std::lock_guard<std::mutex> lock(profile_mu);
    AccumulateTree(op, &profile_ops);
  };

  // Renders the annotated plan tree of one finished output (analyze mode).
  auto capture_plan = [&](int oi, const qgm::TopOutput& out, Operator* op) {
    if (!options.analyze) return;
    std::string text = "output " + out.name +
                       (out.is_connection ? " [connection]" : "") + ":\n";
    op->Explain(1, &text);
    plan_texts[oi] = std::move(text);
  };

  // Tags one projected component row and appends it to the output buffer
  // (dedup via the component's tid map for XNF object sharing). Rows are
  // charged against the governor's row budget here — after dedup, so the
  // budget bounds what the client actually receives.
  auto emit_component = [&](int oi, const qgm::TopOutput& out, TidMap& map,
                            Tuple&& projected) -> Status {
    StreamItem item;
    item.kind = StreamItem::Kind::kRow;
    item.output = oi;
    if (out.xnf_component) {
      auto [tid, inserted] = map.Intern(projected);
      if (collect_counts) ++result.component_counts[oi][tid];
      if (!inserted) return Status::Ok();  // object sharing: emit once
      item.tid = tid;
    } else {
      item.tid = map.next++;
    }
    if (ctx != nullptr) XNFDB_RETURN_IF_ERROR(ctx->ChargeOutputRows(1));
    item.values = std::move(projected);
    ++run_stats.rows_output;
    buffers[oi].push_back(std::move(item));
    return Status::Ok();
  };

  // Morsel-parallel evaluation of one component output: `workers` plan
  // clones share a morsel dispenser on their driver scans; each claimed
  // morsel's rows land in that morsel's private bucket, and the buckets
  // are reassembled in morsel order, so the emitted stream (and therefore
  // every assigned tid) is identical to sequential execution.
  auto run_morsel_output = [&](int oi, const qgm::TopOutput& out,
                               OperatorPtr first_plan,
                               ScanOp* first_driver) -> Status {
    std::vector<OperatorPtr> plans;
    std::vector<ScanOp*> drivers;
    plans.push_back(std::move(first_plan));
    drivers.push_back(first_driver);
    for (int w = 1; w < morsel_workers; ++w) {
      XNFDB_ASSIGN_OR_RETURN(OperatorPtr extra, planner.BoxIterator(out.box_id));
      ScanOp* d = extra->MorselDriver();
      if (d == nullptr || d->table() != first_driver->table()) break;
      if (collect_profile) extra->EnableProfile();
      plans.push_back(std::move(extra));
      drivers.push_back(d);
    }
    auto morsels = std::make_shared<ScanMorsels>();
    morsels->bound = first_driver->table()->rid_bound();
    morsels->rows_per_morsel = morsel_rows;
    for (ScanOp* d : drivers) d->ShareMorsels(morsels);

    std::vector<std::vector<Tuple>> buckets(morsels->MorselCount());
    std::vector<Status> worker_status(plans.size());
    auto worker = [&](size_t w) -> Status {
      Operator* plan = plans[w].get();
      ScanOp* driver = drivers[w];
      // Stable worker id = index in the worker pool; the trace span and the
      // profile's WorkerProfile row carry the same id.
      obs::Span worker_span;
      if (options.tracer != nullptr) {
        worker_span = options.tracer->StartSpan(
            "morsel-worker #" + std::to_string(w) + " " + out.name);
      }
      auto w0 = std::chrono::steady_clock::now();
      int64_t worker_rows = 0;
      XNFDB_RETURN_IF_ERROR(plan->Open());
      XNFDB_RETURN_IF_ERROR(PullRows(
          plan, batch_size, &run_stats.batches_emitted,
          [&](Tuple&& row) -> Status {
            // A batch never spans morsels (ScanOp guarantee), so the
            // driver's current morsel tags every row it just produced.
            Tuple projected =
                out.cols.empty() ? std::move(row) : ProjectCols(row, out.cols);
            // Bucketed rows are buffered server-side until reassembly, so
            // they count against the memory budget (not the row budget:
            // dedup happens at reassembly).
            if (ctx != nullptr) {
              XNFDB_RETURN_IF_ERROR(
                  ctx->ReserveBytes(ApproxTupleBytes(projected)));
            }
            ++worker_rows;
            buckets[driver->current_morsel()].push_back(std::move(projected));
            return Status::Ok();
          }));
      plan->Close();
      if (collect_profile) {
        int64_t wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - w0)
                              .count();
        std::lock_guard<std::mutex> lock(profile_mu);
        AccumulateTree(plan, &profile_ops);
        obs::WorkerProfile& wp = profile_workers[static_cast<int64_t>(w)];
        wp.worker = static_cast<int64_t>(w);
        wp.rows += worker_rows;
        wp.morsels += driver->claimed_morsels();
        wp.wall_us += wall_us;
      }
      record_feedback(oi, plan);
      return Status::Ok();
    };
    std::vector<std::thread> threads;
    threads.reserve(plans.size());
    for (size_t w = 0; w < plans.size(); ++w) {
      threads.emplace_back([&, w] { worker_status[w] = worker(w); });
    }
    for (std::thread& t : threads) t.join();
    // All workers share one QueryContext, so a cancel/deadline/budget trip
    // surfaces in every worker; the first failure wins and reassembly is
    // skipped (partially filled buckets are simply dropped — mid-pipeline
    // unwind never publishes a torn stream).
    for (const Status& s : worker_status) {
      XNFDB_RETURN_IF_ERROR(s);
    }
    // Sequential reassembly: morsel order == scan order.
    TidMap& map = tids[out.name];
    for (std::vector<Tuple>& bucket : buckets) {
      for (Tuple& projected : bucket) {
        XNFDB_RETURN_IF_ERROR(
            emit_component(oi, out, map, std::move(projected)));
      }
    }
    return Status::Ok();
  };

  // Pass 1: component streams (tuple ids assigned; XNF components dedup).
  // Each output owns its buffer and tid map, so outputs evaluate in
  // parallel when requested; spool builds are serialized by the planner and
  // shared across workers.
  XNFDB_RETURN_IF_ERROR(RunParallel(
      n_outputs, options.parallel_workers, [&](int oi) -> Status {
        const qgm::TopOutput& out = top->outputs[oi];
        if (out.is_connection) return Status::Ok();
        obs::Span plan_span;
        if (options.tracer != nullptr) {
          plan_span = options.tracer->StartSpan("plan " + out.name);
        }
        OperatorPtr op;
        {
          PhaseTimer timer(options.metrics, "phase.plan.us");
          XNFDB_ASSIGN_OR_RETURN(op, planner.BoxIterator(out.box_id));
        }
        if (collect_profile) op->EnableProfile();
        capture_shape(oi, out, op.get());
        plan_span.End();
        obs::Span exec_span;
        if (options.tracer != nullptr) {
          exec_span = options.tracer->StartSpan("execute " + out.name);
        }
        PhaseTimer timer(options.metrics, "phase.execute.us");
        if (morsel_workers > 1) {
          // Intra-plan parallelism: only a plain scan pipeline qualifies
          // (a pipeline breaker or non-scan source returns null).
          ScanOp* driver = op->MorselDriver();
          if (driver != nullptr) {
            return run_morsel_output(oi, out, std::move(op), driver);
          }
        }
        XNFDB_RETURN_IF_ERROR(op->Open());
        TidMap& map = tids[out.name];
        XNFDB_RETURN_IF_ERROR(PullRows(
            op.get(), batch_size, &run_stats.batches_emitted,
            [&](Tuple&& row) -> Status {
              Tuple projected =
                  out.cols.empty() ? std::move(row) : ProjectCols(row, out.cols);
              return emit_component(oi, out, map, std::move(projected));
            }));
        op->Close();
        capture_plan(oi, out, op.get());
        record_tree(op.get());
        record_feedback(oi, op.get());
        return Status::Ok();
      }));

  // Pass 2: connection streams (tid maps are read-only now).
  XNFDB_RETURN_IF_ERROR(RunParallel(
      n_outputs, options.parallel_workers, [&](int oi) -> Status {
        const qgm::TopOutput& out = top->outputs[oi];
        if (!out.is_connection) return Status::Ok();
        obs::Span exec_span;
        if (options.tracer != nullptr) {
          exec_span = options.tracer->StartSpan("execute " + out.name);
        }
        OperatorPtr op;
        {
          PhaseTimer timer(options.metrics, "phase.plan.us");
          XNFDB_ASSIGN_OR_RETURN(op, planner.BoxIterator(out.box_id));
        }
        if (collect_profile) op->EnableProfile();
        capture_shape(oi, out, op.get());
        PhaseTimer timer(options.metrics, "phase.execute.us");
        XNFDB_RETURN_IF_ERROR(op->Open());
        std::set<std::vector<TupleId>> seen;
        std::map<std::vector<TupleId>, int64_t>* counts =
            collect_counts ? &result.connection_counts[oi] : nullptr;
        XNFDB_RETURN_IF_ERROR(PullRows(
            op.get(), batch_size, &run_stats.batches_emitted,
            [&](Tuple&& row) -> Status {
              std::vector<TupleId> partner_tids;
              for (size_t pi = 0; pi < out.partner_names.size(); ++pi) {
                const std::string& partner = out.partner_names[pi];
                auto cit = component_output.find(partner);
                if (cit == component_output.end()) {
                  return Status::Internal("connection partner '" + partner +
                                          "' is not an output component");
                }
                Tuple key = ProjectCols(row, out.partner_cols[pi]);
                const TidMap& map = tids.find(partner)->second;
                auto it = map.ids.find(key);
                if (it == map.ids.end()) {
                  // The partner row did not appear in its component stream
                  // (can happen only for non-reachable setups); drop the
                  // connection to keep the answer closed.
                  return Status::Ok();
                }
                partner_tids.push_back(it->second);
              }
              if (counts != nullptr) ++(*counts)[partner_tids];
              if (!seen.insert(partner_tids).second) {
                return Status::Ok();  // duplicate connection
              }
              if (ctx != nullptr) {
                XNFDB_RETURN_IF_ERROR(ctx->ChargeOutputRows(1));
              }
              StreamItem item;
              item.kind = StreamItem::Kind::kConnection;
              item.output = oi;
              item.tids = std::move(partner_tids);
              ++run_stats.rows_output;
              buffers[oi].push_back(std::move(item));
              return Status::Ok();
            }));
        op->Close();
        capture_plan(oi, out, op.get());
        record_tree(op.get());
        record_feedback(oi, op.get());
        return Status::Ok();
      }));

  // Workers have joined: the snapshot below is consistent.
  result.stats = run_stats;
  if (options.analyze) result.plan_texts = std::move(plan_texts);
  if (options.metrics != nullptr) run_stats.PublishTo(options.metrics);
  if (collect_profile) {
    result.profile.ops.reserve(profile_ops.size());
    for (auto& [kind, p] : profile_ops) result.profile.ops.push_back(std::move(p));
    result.profile.workers.reserve(profile_workers.size());
    for (auto& [id, wp] : profile_workers) {
      result.profile.workers.push_back(wp);
    }
    result.profile.rows_out = run_stats.rows_output;
  }
  if (collect_feedback) {
    for (const std::string& s : shapes) {
      if (s.empty()) continue;
      if (!result.plan_shape.empty()) result.plan_shape += ";";
      result.plan_shape += s;
    }
    result.plan_hash = PlanShapeHash(result.plan_shape);
    result.feedback.reserve(feedback_slots.size());
    for (const auto& [key, slot] : feedback_slots) {
      obs::OpFeedback f;
      f.output = top->outputs[key.first].name;
      f.op = slot.op;
      f.est_rows = slot.est;
      f.actual_rows = slot.rows;
      f.loops = slot.loops;
      const double per_loop = static_cast<double>(slot.rows) /
                              static_cast<double>(std::max<int64_t>(
                                  slot.loops, 1));
      f.q_error = slot.est >= 0 ? obs::QError(slot.est, per_loop) : 0.0;
      result.feedback.push_back(std::move(f));
    }
  }

  // Merge the per-output buffers into one stream, in output order (a
  // deterministic interleaving; the paper allows any, Sect. 5.1).
  obs::Span deliver_span;
  if (options.tracer != nullptr) {
    deliver_span = options.tracer->StartSpan("deliver");
  }
  PhaseTimer deliver_timer(options.metrics, "phase.deliver.us");
  size_t total = 0;
  for (const auto& b : buffers) total += b.size();
  result.stream.reserve(total);
  for (auto& b : buffers) {
    for (StreamItem& item : b) result.stream.push_back(std::move(item));
  }
  return result;
}

}  // namespace xnfdb
