#include "exec/operators.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <sstream>

#include "obs/metrics.h"
#include "obs/plan_feedback.h"
#include "storage/sysview.h"

namespace xnfdb {

std::string ExecStats::ToString() const {
  std::ostringstream os;
  os << "scanned=" << rows_scanned << " index_lookups=" << index_lookups
     << " join_probes=" << join_probes << " exists_probes=" << exists_probes
     << " spool_builds=" << spool_builds
     << " spool_read_rows=" << spool_read_rows << " output=" << rows_output
     << " operators=" << operators_created
     << " batches=" << batches_emitted << " morsels=" << morsels_claimed;
  return os.str();
}

void ExecStats::PublishTo(obs::MetricsRegistry* registry) const {
  registry->GetCounter("exec.rows_scanned")->Increment(rows_scanned);
  registry->GetCounter("exec.index_lookups")->Increment(index_lookups);
  registry->GetCounter("exec.join_probes")->Increment(join_probes);
  registry->GetCounter("exec.exists_probes")->Increment(exists_probes);
  registry->GetCounter("exec.spool_builds")->Increment(spool_builds);
  registry->GetCounter("exec.spool_read_rows")->Increment(spool_read_rows);
  registry->GetCounter("exec.rows_output")->Increment(rows_output);
  registry->GetCounter("exec.operators_created")->Increment(operators_created);
  registry->GetCounter("exec.batches_emitted")->Increment(batches_emitted);
  registry->GetCounter("exec.morsels_claimed")->Increment(morsels_claimed);
  registry->GetCounter("exec.batches_scan")->Increment(batches_scan);
  registry->GetCounter("exec.batches_spool")->Increment(batches_spool);
  registry->GetCounter("exec.batches_filter")->Increment(batches_filter);
  registry->GetCounter("exec.batches_project")->Increment(batches_project);
  registry->GetCounter("exec.batches_join")->Increment(batches_join);
  registry->GetCounter("exec.batches_exists")->Increment(batches_exists);
}

// --- Operator lifecycle wrappers -------------------------------------------

namespace {

int64_t ElapsedNs(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Status Operator::Open() {
  ++actuals_.loops;
  if (ctx_ != nullptr) {
    ctx_->Tick();
    XNFDB_RETURN_IF_ERROR(ctx_->Check());
  }
  if (!analyze_ && !profile_) return OpenImpl();
  auto t0 = std::chrono::steady_clock::now();
  Status s = OpenImpl();
  actuals_.ns += ElapsedNs(t0);
  return s;
}

Result<bool> Operator::Next(Tuple* row) {
  // Row-at-a-time governance: the cancellation flag is one atomic load, so
  // it is checked on every call; the deadline needs a clock read, so it is
  // only re-checked once per kDefaultBatchSize rows (a synthetic batch
  // boundary for the Volcano path).
  if (ctx_ != nullptr) {
    if (ctx_->cancelled()) return Result<bool>(ctx_->CheckCancelled());
    if (++gov_tick_ >= kDefaultBatchSize) {
      gov_tick_ = 0;
      ctx_->Tick();  // watchdog heartbeat at the synthetic batch boundary
      Status s = ctx_->Check();
      if (!s.ok()) return Result<bool>(std::move(s));
    }
  }
  if (!analyze_) {
    Result<bool> r = NextImpl(row);
    if (r.ok() && r.value()) ++actuals_.rows;
    return r;
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<bool> r = NextImpl(row);
  actuals_.ns += ElapsedNs(t0);
  if (r.ok() && r.value()) ++actuals_.rows;
  return r;
}

Result<bool> Operator::NextBatch(TupleBatch* out) {
  out->Clear();
  if (ctx_ != nullptr) {
    ctx_->Tick();
    Status s = ctx_->Check();
    if (!s.ok()) return Result<bool>(std::move(s));
  }
  if (!analyze_ && !profile_) {
    Result<bool> r = NextBatchImpl(out);
    if (r.ok() && r.value()) {
      actuals_.rows += static_cast<int64_t>(out->ActiveCount());
      ++actuals_.batches;
    }
    return r;
  }
  auto t0 = std::chrono::steady_clock::now();
  Result<bool> r = NextBatchImpl(out);
  actuals_.ns += ElapsedNs(t0);
  if (r.ok() && r.value()) {
    actuals_.rows += static_cast<int64_t>(out->ActiveCount());
    ++actuals_.batches;
  }
  return r;
}

Result<bool> Operator::NextBatchImpl(TupleBatch* out) {
  while (!out->Full()) {
    Tuple& row = out->AppendRow();  // filled in place to reuse slot buffers
    Result<bool> more = NextImpl(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) {
      out->DropLastRow();
      break;
    }
  }
  return !out->Empty();
}

void Operator::Close() {
  if (!analyze_ && !profile_) {
    CloseImpl();
    return;
  }
  auto t0 = std::chrono::steady_clock::now();
  CloseImpl();
  actuals_.ns += ElapsedNs(t0);
}

void Operator::EnableAnalyze() {
  analyze_ = true;
  for (Operator* c : Children()) c->EnableAnalyze();
}

void Operator::EnableProfile() {
  profile_ = true;
  for (Operator* c : Children()) c->EnableProfile();
}

void Operator::AttachContext(QueryContext* ctx) {
  ctx_ = ctx;
  gov_tick_ = 0;
  for (Operator* c : Children()) c->AttachContext(ctx);
}

void Operator::SelfLine(int depth, const std::string& text,
                        std::string* out) const {
  std::ostringstream os;
  os << text;
  if (est_rows_ >= 0) {
    os << " (est rows=" << static_cast<int64_t>(est_rows_ + 0.5) << ")";
  }
  if (!analyze_) {
    ExplainLine(depth, os.str(), out);
    return;
  }
  os << " (actual rows=" << actuals_.rows << " loops=" << actuals_.loops;
  if (actuals_.batches > 0) os << " batches=" << actuals_.batches;
  os << " time=" << std::fixed << std::setprecision(3)
     << static_cast<double>(actuals_.ns) / 1e6 << "ms";
  if (est_rows_ >= 0) {
    const double per_loop = static_cast<double>(actuals_.rows) /
                            static_cast<double>(std::max<int64_t>(
                                actuals_.loops, 1));
    os << " q=" << std::fixed << std::setprecision(2)
       << obs::QError(est_rows_, per_loop);
  }
  os << ")";
  ExplainLine(depth, os.str(), out);
}

// --- plan shape --------------------------------------------------------------

void ScanOp::ShapeToken(std::string* out) const {
  *out += "scan:" + table_->name();
}

void VirtualScanOp::ShapeToken(std::string* out) const {
  *out += "virtual_scan:" + provider_->name();
}

void IndexScanOp::ShapeToken(std::string* out) const {
  *out += "index_scan:" + table_->name() + "." +
          table_->schema().column(column_).name;
}

void RangeScanOp::ShapeToken(std::string* out) const {
  *out += "range_scan:" + table_->name() + "." +
          table_->schema().column(column_).name;
}

std::string PlanShapeText(Operator* root) {
  std::string shape;
  root->ShapeToken(&shape);
  std::vector<Operator*> children = root->Children();
  if (!children.empty()) {
    shape += "(";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) shape += ",";
      shape += PlanShapeText(children[i]);
    }
    shape += ")";
  }
  return shape;
}

uint64_t PlanShapeHash(const std::string& shape) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (char c : shape) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

Result<std::vector<Tuple>> DrainOperator(Operator* op, int batch_size,
                                         QueryContext* ctx) {
  std::vector<Tuple> rows;
  XNFDB_RETURN_IF_ERROR(op->Open());
  if (batch_size <= 1) {
    Tuple row;
    while (true) {
      XNFDB_ASSIGN_OR_RETURN(bool more, op->Next(&row));
      if (!more) break;
      if (ctx != nullptr) {
        XNFDB_RETURN_IF_ERROR(ctx->ReserveBytes(ApproxTupleBytes(row)));
      }
      rows.push_back(std::move(row));
      row = Tuple();
    }
  } else {
    TupleBatch batch(static_cast<size_t>(batch_size));
    while (true) {
      XNFDB_ASSIGN_OR_RETURN(bool more, op->NextBatch(&batch));
      if (!more) break;
      for (size_t i = 0; i < batch.ActiveCount(); ++i) {
        if (ctx != nullptr) {
          XNFDB_RETURN_IF_ERROR(
              ctx->ReserveBytes(ApproxTupleBytes(batch.Active(i))));
        }
        rows.push_back(std::move(batch.Active(i)));
      }
    }
  }
  op->Close();
  return rows;
}

// --- sources ---------------------------------------------------------------

bool ScanOp::ClaimMorsel() {
  uint64_t m = morsels_->next.fetch_add(1, std::memory_order_relaxed);
  Rid start = static_cast<Rid>(m) * morsels_->rows_per_morsel;
  if (start >= morsels_->bound) return false;
  rid_ = start;
  morsel_end_ = std::min(morsels_->bound, start + morsels_->rows_per_morsel);
  current_morsel_ = static_cast<int64_t>(m);
  ++claimed_;
  if (stats_ != nullptr) ++stats_->morsels_claimed;
  return true;
}

Result<bool> ScanOp::NextImpl(Tuple* row) {
  while (true) {
    Rid end = morsels_ != nullptr ? morsel_end_ : table_->rid_bound();
    while (rid_ < end) {
      Rid r = rid_++;
      if (!table_->IsLive(r)) continue;
      *row = table_->Get(r);
      if (stats_ != nullptr) ++stats_->rows_scanned;
      return true;
    }
    if (morsels_ == nullptr || !ClaimMorsel()) return false;
  }
}

Result<bool> ScanOp::NextBatchImpl(TupleBatch* out) {
  while (!out->Full()) {
    Rid end = morsels_ != nullptr ? morsel_end_ : table_->rid_bound();
    while (rid_ < end && !out->Full()) {
      Rid r = rid_++;
      if (!table_->IsLive(r)) continue;
      out->AppendRow() = table_->Get(r);  // copy-assign reuses slot buffers
      if (stats_ != nullptr) ++stats_->rows_scanned;
    }
    if (rid_ < end) break;  // batch filled mid-range
    if (morsels_ == nullptr) break;
    // A batch never spans morsels: downstream tags each emitted batch with
    // current_morsel() to reassemble deterministic output order.
    if (!out->Empty()) break;
    if (!ClaimMorsel()) break;
  }
  if (!out->Empty() && stats_ != nullptr) ++stats_->batches_scan;
  return !out->Empty();
}

Status VirtualScanOp::OpenImpl() {
  XNFDB_ASSIGN_OR_RETURN(rows_, provider_->Generate());
  pos_ = 0;
  return Status::Ok();
}

Result<bool> VirtualScanOp::NextImpl(Tuple* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  if (stats_ != nullptr) ++stats_->rows_scanned;
  return true;
}

Status IndexScanOp::OpenImpl() {
  const HashIndex* index = table_->GetIndex(column_);
  if (index == nullptr) {
    return Status::Internal("index scan without index on " + table_->name());
  }
  rids_ = index->Lookup(key_);
  pos_ = 0;
  if (stats_ != nullptr) ++stats_->index_lookups;
  return Status::Ok();
}

Result<bool> IndexScanOp::NextImpl(Tuple* row) {
  if (rids_ == nullptr) return false;
  while (pos_ < rids_->size()) {
    Rid r = (*rids_)[pos_++];
    if (!table_->IsLive(r)) continue;
    *row = table_->Get(r);
    if (stats_ != nullptr) ++stats_->rows_scanned;
    return true;
  }
  return false;
}

Status RangeScanOp::OpenImpl() {
  const OrderedIndex* index = table_->GetOrderedIndex(column_);
  if (index == nullptr) {
    return Status::Internal("range scan without ordered index on " +
                            table_->name());
  }
  rids_.clear();
  index->Range(lo_.has_value() ? &*lo_ : nullptr, lo_inclusive_,
               hi_.has_value() ? &*hi_ : nullptr, hi_inclusive_, &rids_);
  pos_ = 0;
  if (stats_ != nullptr) ++stats_->index_lookups;
  return Status::Ok();
}

Result<bool> RangeScanOp::NextImpl(Tuple* row) {
  while (pos_ < rids_.size()) {
    Rid r = rids_[pos_++];
    if (!table_->IsLive(r)) continue;
    *row = table_->Get(r);
    if (stats_ != nullptr) ++stats_->rows_scanned;
    return true;
  }
  return false;
}

Result<bool> MaterializedOp::NextImpl(Tuple* row) {
  if (pos_ >= rows_->size()) return false;
  *row = (*rows_)[pos_++];
  if (stats_ != nullptr) ++stats_->spool_read_rows;
  return true;
}

Result<bool> MaterializedOp::NextBatchImpl(TupleBatch* out) {
  while (pos_ < rows_->size() && !out->Full()) {
    out->AppendRow() = (*rows_)[pos_++];
    if (stats_ != nullptr) ++stats_->spool_read_rows;
  }
  if (!out->Empty() && stats_ != nullptr) ++stats_->batches_spool;
  return !out->Empty();
}

Result<bool> MatViewScanOp::NextImpl(Tuple* row) {
  if (pos_ >= rows_->size()) return false;
  *row = (*rows_)[pos_++];
  if (stats_ != nullptr) ++stats_->spool_read_rows;
  return true;
}

Result<bool> MatViewScanOp::NextBatchImpl(TupleBatch* out) {
  while (pos_ < rows_->size() && !out->Full()) {
    out->AppendRow() = (*rows_)[pos_++];
    if (stats_ != nullptr) ++stats_->spool_read_rows;
  }
  if (!out->Empty() && stats_ != nullptr) ++stats_->batches_spool;
  return !out->Empty();
}

// --- row transforms -----------------------------------------------------------

Result<bool> FilterOp::NextImpl(Tuple* row) {
  while (true) {
    XNFDB_ASSIGN_OR_RETURN(bool more, child_->Next(row));
    if (!more) return false;
    bool pass = true;
    for (const qgm::Expr* p : preds_) {
      XNFDB_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*p, layout_, *row));
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (pass) return true;
  }
}

Result<bool> FilterOp::NextBatchImpl(TupleBatch* out) {
  XNFDB_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  // Mark instead of copy: compact the selection vector in place.
  std::vector<uint32_t>& sel = out->sel();
  size_t kept = 0;
  for (size_t i = 0; i < sel.size(); ++i) {
    const Tuple& row = out->rows()[sel[i]];
    bool pass = true;
    for (const qgm::Expr* p : preds_) {
      XNFDB_ASSIGN_OR_RETURN(bool ok, EvalPredicate(*p, layout_, row));
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (pass) sel[kept++] = sel[i];
  }
  sel.resize(kept);
  if (stats_ != nullptr) ++stats_->batches_filter;
  return true;
}

Result<bool> ProjectOp::NextImpl(Tuple* row) {
  Tuple input;
  XNFDB_ASSIGN_OR_RETURN(bool more, child_->Next(&input));
  if (!more) return false;
  row->clear();
  row->reserve(exprs_.size());
  for (const qgm::Expr* e : exprs_) {
    XNFDB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, layout_, input));
    row->push_back(std::move(v));
  }
  return true;
}

Result<bool> ProjectOp::NextBatchImpl(TupleBatch* out) {
  if (in_ == nullptr || in_->capacity() != out->capacity()) {
    in_ = std::make_unique<TupleBatch>(out->capacity());
  }
  XNFDB_ASSIGN_OR_RETURN(bool more, child_->NextBatch(in_.get()));
  if (!more) return false;
  for (size_t i = 0; i < in_->ActiveCount(); ++i) {
    const Tuple& input = in_->Active(i);
    Tuple& row = out->AppendRow();  // reuses the slot's vector capacity
    row.clear();
    row.reserve(exprs_.size());
    for (const qgm::Expr* e : exprs_) {
      XNFDB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, layout_, input));
      row.push_back(std::move(v));
    }
  }
  if (stats_ != nullptr) ++stats_->batches_project;
  return true;
}

Result<bool> DistinctOp::NextImpl(Tuple* row) {
  while (true) {
    XNFDB_ASSIGN_OR_RETURN(bool more, child_->Next(row));
    if (!more) return false;
    if (seen_.emplace(*row, true).second) {
      // The dedup table keeps a copy of every distinct row.
      if (context() != nullptr) {
        XNFDB_RETURN_IF_ERROR(context()->ReserveBytes(ApproxTupleBytes(*row)));
      }
      return true;
    }
  }
}

Status SortOp::OpenImpl() {
  XNFDB_RETURN_IF_ERROR(child_->Open());
  rows_.clear();
  Tuple in;
  while (true) {
    XNFDB_ASSIGN_OR_RETURN(bool more, child_->Next(&in));
    if (!more) break;
    if (context() != nullptr) {
      XNFDB_RETURN_IF_ERROR(context()->ReserveBytes(ApproxTupleBytes(in)));
    }
    rows_.push_back(std::move(in));
    in = Tuple();
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Tuple& a, const Tuple& b) {
                     for (const auto& [col, desc] : keys_) {
                       const Value& va = a[col];
                       const Value& vb = b[col];
                       if (va < vb) return !desc;
                       if (vb < va) return desc;
                     }
                     return false;
                   });
  pos_ = 0;
  return Status::Ok();
}

Result<bool> SortOp::NextImpl(Tuple* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

Result<bool> LimitOp::NextImpl(Tuple* row) {
  while (skipped_ < offset_) {
    XNFDB_ASSIGN_OR_RETURN(bool more, child_->Next(row));
    if (!more) return false;
    ++skipped_;
  }
  if (limit_ >= 0 && emitted_ >= limit_) return false;
  XNFDB_ASSIGN_OR_RETURN(bool more, child_->Next(row));
  if (!more) return false;
  ++emitted_;
  return true;
}

// --- joins ---------------------------------------------------------------------

Status HashJoinOp::OpenImpl() {
  XNFDB_RETURN_IF_ERROR(left_->Open());
  XNFDB_RETURN_IF_ERROR(right_->Open());
  // Resolve all-ColRef probe keys to flat column offsets once, so per-row
  // probing indexes directly instead of walking the expression tree.
  left_key_cols_.clear();
  left_keys_flat_ = !left_keys_.empty();
  for (const qgm::Expr* k : left_keys_) {
    if (k->kind != qgm::Expr::Kind::kColRef || !left_layout_.Has(k->quant_id)) {
      left_keys_flat_ = false;
      break;
    }
    left_key_cols_.push_back(left_layout_.Offset(k->quant_id) +
                             static_cast<size_t>(k->column));
  }
  build_.clear();
  Tuple row;
  while (true) {
    XNFDB_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    Tuple key;
    key.reserve(right_keys_.size());
    bool null_key = false;
    for (const qgm::Expr* k : right_keys_) {
      XNFDB_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, right_layout_, row));
      if (v.is_null()) null_key = true;
      key.push_back(std::move(v));
    }
    if (null_key) continue;  // NULL keys never join
    if (context() != nullptr) {
      XNFDB_RETURN_IF_ERROR(context()->ReserveBytes(ApproxTupleBytes(row) +
                                                    ApproxTupleBytes(key)));
    }
    build_[std::move(key)].push_back(std::move(row));
    row = Tuple();
  }
  matches_ = nullptr;
  match_pos_ = 0;
  return Status::Ok();
}

Result<bool> HashJoinOp::ProbeKey(const Tuple& row, Tuple* key) const {
  key->clear();
  key->reserve(left_keys_.size());
  if (left_keys_flat_) {
    for (size_t col : left_key_cols_) {
      if (col >= row.size()) {
        return Status::Internal("join key column beyond combined row");
      }
      if (row[col].is_null()) return false;
      key->push_back(row[col]);
    }
    return true;
  }
  bool null_key = false;
  for (const qgm::Expr* k : left_keys_) {
    XNFDB_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, left_layout_, row));
    if (v.is_null()) null_key = true;
    key->push_back(std::move(v));
  }
  return !null_key;
}

Result<bool> HashJoinOp::NextImpl(Tuple* row) {
  while (true) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      const Tuple& right_row = (*matches_)[match_pos_++];
      Tuple combined = current_left_;
      combined.insert(combined.end(), right_row.begin(), right_row.end());
      bool pass = true;
      for (const qgm::Expr* p : residual_) {
        XNFDB_ASSIGN_OR_RETURN(bool ok,
                               EvalPredicate(*p, combined_layout_, combined));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      *row = std::move(combined);
      return true;
    }
    XNFDB_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
    if (!more) return false;
    if (stats_ != nullptr) ++stats_->join_probes;
    matches_ = nullptr;
    match_pos_ = 0;
    Tuple key;
    XNFDB_ASSIGN_OR_RETURN(bool usable, ProbeKey(current_left_, &key));
    if (!usable) continue;
    auto it = build_.find(key);
    if (it != build_.end()) matches_ = &it->second;
  }
}

Status HashJoinOp::ProbeInto(const Tuple& left, TupleBatch* out) {
  if (stats_ != nullptr) ++stats_->join_probes;
  Tuple key;
  XNFDB_ASSIGN_OR_RETURN(bool usable, ProbeKey(left, &key));
  if (!usable) return Status::Ok();
  auto it = build_.find(key);
  if (it == build_.end()) return Status::Ok();
  for (const Tuple& right_row : it->second) {
    Tuple& combined = out->AppendRow();  // retracted below if residual fails
    combined.clear();
    combined.reserve(left.size() + right_row.size());
    combined.insert(combined.end(), left.begin(), left.end());
    combined.insert(combined.end(), right_row.begin(), right_row.end());
    bool pass = true;
    for (const qgm::Expr* p : residual_) {
      XNFDB_ASSIGN_OR_RETURN(bool ok,
                             EvalPredicate(*p, combined_layout_, combined));
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (!pass) out->DropLastRow();
  }
  return Status::Ok();
}

Result<bool> HashJoinOp::NextBatchImpl(TupleBatch* out) {
  if (left_batch_ == nullptr || left_batch_->capacity() != out->capacity()) {
    left_batch_ = std::make_unique<TupleBatch>(out->capacity());
  }
  XNFDB_ASSIGN_OR_RETURN(bool more, left_->NextBatch(left_batch_.get()));
  if (!more) return false;
  for (size_t i = 0; i < left_batch_->ActiveCount(); ++i) {
    XNFDB_RETURN_IF_ERROR(ProbeInto(left_batch_->Active(i), out));
  }
  if (stats_ != nullptr) ++stats_->batches_join;
  return true;
}

Status NLJoinOp::OpenImpl() {
  XNFDB_RETURN_IF_ERROR(left_->Open());
  XNFDB_RETURN_IF_ERROR(right_->Open());
  inner_.clear();
  Tuple in;
  while (true) {
    XNFDB_ASSIGN_OR_RETURN(bool more, right_->Next(&in));
    if (!more) break;
    if (context() != nullptr) {
      XNFDB_RETURN_IF_ERROR(context()->ReserveBytes(ApproxTupleBytes(in)));
    }
    inner_.push_back(std::move(in));
    in = Tuple();
  }
  left_valid_ = false;
  inner_pos_ = 0;
  return Status::Ok();
}

Result<bool> NLJoinOp::NextImpl(Tuple* row) {
  while (true) {
    if (!left_valid_) {
      XNFDB_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
      if (!more) return false;
      left_valid_ = true;
      inner_pos_ = 0;
    }
    while (inner_pos_ < inner_.size()) {
      if (stats_ != nullptr) ++stats_->join_probes;
      const Tuple& right_row = inner_[inner_pos_++];
      Tuple combined = current_left_;
      combined.insert(combined.end(), right_row.begin(), right_row.end());
      bool pass = true;
      for (const qgm::Expr* p : preds_) {
        XNFDB_ASSIGN_OR_RETURN(bool ok,
                               EvalPredicate(*p, combined_layout_, combined));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (pass) {
        *row = std::move(combined);
        return true;
      }
    }
    left_valid_ = false;
  }
}

// --- existential checks ----------------------------------------------------------

Status ExistsFilterOp::OpenImpl() {
  // Index builds are deferred to the first probe (EnsureIndex): when the
  // probe side is empty, or a governor deadline/cancel has already expired,
  // no group index is ever paid for. Safe because every probe loop — batch,
  // row-at-a-time, or a morsel worker's — runs on this instance's single
  // thread (morsel workers each own a full plan clone).
  return child_->Open();
}

Status ExistsFilterOp::EnsureIndex(GroupCheck* g) {
  if (g->index_built) return Status::Ok();
  // A budget termination must fire before the build cost is paid, and this
  // loop pulls from no child operator, so it checks the governor itself
  // (up front, then at batch-boundary granularity).
  if (context() != nullptr) {
    XNFDB_RETURN_IF_ERROR(context()->Check());
  }
  for (size_t i = 0; i < g->rows->size(); ++i) {
    if (context() != nullptr && i > 0 && (i % 1024) == 0) {
      XNFDB_RETURN_IF_ERROR(context()->Check());
    }
    Tuple key;
    key.reserve(g->equi_inner.size());
    bool null_key = false;
    for (const qgm::Expr* k : g->equi_inner) {
      XNFDB_ASSIGN_OR_RETURN(Value v,
                             EvalExpr(*k, g->group_layout, (*g->rows)[i]));
      if (v.is_null()) null_key = true;
      key.push_back(std::move(v));
    }
    if (!null_key) {
      if (context() != nullptr) {
        XNFDB_RETURN_IF_ERROR(context()->ReserveBytes(ApproxTupleBytes(key)));
      }
      g->index[std::move(key)].push_back(i);
    }
  }
  g->index_built = true;
  return Status::Ok();
}

Result<bool> ExistsFilterOp::GroupMatches(GroupCheck* g, const Tuple& outer) {
  if (!g->equi_outer.empty() && !naive_) {
    XNFDB_RETURN_IF_ERROR(EnsureIndex(g));
    Tuple key;
    key.reserve(g->equi_outer.size());
    for (const qgm::Expr* k : g->equi_outer) {
      XNFDB_ASSIGN_OR_RETURN(Value v, EvalExpr(*k, outer_layout_, outer));
      if (v.is_null()) return false;
      key.push_back(std::move(v));
    }
    auto it = g->index.find(key);
    if (it == g->index.end()) return false;
    if (g->residual.empty()) return true;
    for (size_t idx : it->second) {
      if (stats_ != nullptr) ++stats_->exists_probes;
      Tuple combined = outer;
      const Tuple& group_row = (*g->rows)[idx];
      combined.insert(combined.end(), group_row.begin(), group_row.end());
      bool pass = true;
      for (const qgm::Expr* p : g->residual) {
        XNFDB_ASSIGN_OR_RETURN(bool ok,
                               EvalPredicate(*p, g->combined_layout, combined));
        if (!ok) {
          pass = false;
          break;
        }
      }
      if (pass) return true;
    }
    return false;
  }
  // Naive path: scan every materialized group row (this is the per-outer-row
  // subquery execution the rewrite optimization eliminates).
  for (const Tuple& group_row : *g->rows) {
    if (stats_ != nullptr) ++stats_->exists_probes;
    Tuple combined = outer;
    combined.insert(combined.end(), group_row.begin(), group_row.end());
    bool pass = true;
    // In naive mode, equi pairs are evaluated like ordinary predicates.
    for (size_t i = 0; i < g->equi_outer.size(); ++i) {
      XNFDB_ASSIGN_OR_RETURN(
          Value lv, EvalExpr(*g->equi_outer[i], outer_layout_, outer));
      XNFDB_ASSIGN_OR_RETURN(
          Value rv, EvalExpr(*g->equi_inner[i], g->group_layout, group_row));
      Value eq = Value::Compare(lv, rv, CompareOp::kEq);
      if (eq.is_null() || !eq.AsBool()) {
        pass = false;
        break;
      }
    }
    if (pass) {
      for (const qgm::Expr* p : g->residual) {
        XNFDB_ASSIGN_OR_RETURN(bool ok,
                               EvalPredicate(*p, g->combined_layout, combined));
        if (!ok) {
          pass = false;
          break;
        }
      }
    }
    if (pass) return true;
  }
  return false;
}

Result<bool> ExistsFilterOp::RowPasses(const Tuple& row) {
  if (disjunctive_) {
    bool pass = groups_.empty();
    for (GroupCheck& g : groups_) {
      XNFDB_ASSIGN_OR_RETURN(bool match, GroupMatches(&g, row));
      if (match != g.negated) {
        pass = true;
        break;
      }
    }
    return pass;
  }
  for (GroupCheck& g : groups_) {
    XNFDB_ASSIGN_OR_RETURN(bool match, GroupMatches(&g, row));
    if (match == g.negated) return false;
  }
  return true;
}

Result<bool> ExistsFilterOp::NextImpl(Tuple* row) {
  while (true) {
    XNFDB_ASSIGN_OR_RETURN(bool more, child_->Next(row));
    if (!more) return false;
    XNFDB_ASSIGN_OR_RETURN(bool pass, RowPasses(*row));
    if (pass) return true;
  }
}

Result<bool> ExistsFilterOp::NextBatchImpl(TupleBatch* out) {
  XNFDB_ASSIGN_OR_RETURN(bool more, child_->NextBatch(out));
  if (!more) return false;
  std::vector<uint32_t>& sel = out->sel();
  size_t kept = 0;
  for (size_t i = 0; i < sel.size(); ++i) {
    XNFDB_ASSIGN_OR_RETURN(bool pass, RowPasses(out->rows()[sel[i]]));
    if (pass) sel[kept++] = sel[i];
  }
  sel.resize(kept);
  if (stats_ != nullptr) ++stats_->batches_exists;
  return true;
}

// --- set operations ---------------------------------------------------------------

Status UnionOp::OpenImpl() {
  for (auto& c : children_) XNFDB_RETURN_IF_ERROR(c->Open());
  current_ = 0;
  return Status::Ok();
}

Result<bool> UnionOp::NextImpl(Tuple* row) {
  while (current_ < children_.size()) {
    XNFDB_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(row));
    if (more) return true;
    ++current_;
  }
  return false;
}

// --- aggregation ------------------------------------------------------------------

namespace {

struct AggState {
  int64_t count = 0;
  Value sum;
  Value min;
  Value max;
  double dsum = 0;
  bool any = false;
};

}  // namespace

Status AggOp::OpenImpl() {
  XNFDB_RETURN_IF_ERROR(child_->Open());
  results_.clear();
  pos_ = 0;

  // group key -> (representative row, per-spec aggregate state)
  std::map<std::vector<std::string>, std::pair<Tuple, std::vector<AggState>>>
      groups;
  // Use an order-preserving map keyed by rendered values for determinism.
  Tuple row;
  while (true) {
    Result<bool> more = child_->Next(&row);
    if (!more.ok()) return more.status();
    if (!more.value()) break;
    std::vector<std::string> key;
    for (const qgm::Expr* gexpr : group_by_) {
      Result<Value> v = EvalExpr(*gexpr, layout_, row);
      if (!v.ok()) return v.status();
      key.push_back(v.value().ToString());
    }
    auto [it, inserted] =
        groups.try_emplace(std::move(key), row, std::vector<AggState>());
    if (inserted) {
      it->second.second.resize(specs_.size());
      // One representative row is retained per group.
      if (context() != nullptr) {
        Status s = context()->ReserveBytes(ApproxTupleBytes(row));
        if (!s.ok()) return s;
      }
    }
    std::vector<AggState>& states = it->second.second;
    for (size_t i = 0; i < specs_.size(); ++i) {
      const AggSpec& spec = specs_[i];
      if (!spec.is_agg) continue;
      AggState& st = states[i];
      Value v;
      if (spec.arg != nullptr) {
        Result<Value> r = EvalExpr(*spec.arg, layout_, row);
        if (!r.ok()) return r.status();
        v = r.value();
        if (v.is_null()) continue;  // aggregates skip NULLs
      }
      ++st.count;
      st.any = true;
      if (spec.arg != nullptr) {
        if (st.min.is_null() || v < st.min) st.min = v;
        if (st.max.is_null() || st.max < v) st.max = v;
        if (v.type() == DataType::kInt || v.type() == DataType::kDouble) {
          st.dsum += v.AsDouble();
          if (st.sum.is_null()) {
            st.sum = v;
          } else if (st.sum.type() == DataType::kInt &&
                     v.type() == DataType::kInt) {
            st.sum = Value(st.sum.AsInt() + v.AsInt());
          } else {
            st.sum = Value(st.sum.AsDouble() + v.AsDouble());
          }
        }
      }
    }
  }

  // Global aggregation over an empty input still yields one row.
  if (groups.empty() && group_by_.empty() && !specs_.empty()) {
    bool all_aggs = true;
    for (const AggSpec& s : specs_) all_aggs &= s.is_agg;
    if (all_aggs) {
      groups[{}] = {Tuple(), std::vector<AggState>(specs_.size())};
    }
  }

  for (auto& [key, entry] : groups) {
    auto& [rep, states] = entry;
    Tuple out;
    out.reserve(specs_.size());
    for (size_t i = 0; i < specs_.size(); ++i) {
      const AggSpec& spec = specs_[i];
      if (!spec.is_agg) {
        Result<Value> v = EvalExpr(*spec.group_expr, layout_, rep);
        if (!v.ok()) return v.status();
        out.push_back(v.value());
        continue;
      }
      const AggState& st = states[i];
      if (spec.func == "COUNT") {
        out.push_back(Value(st.count));
      } else if (spec.func == "SUM") {
        out.push_back(st.sum);
      } else if (spec.func == "MIN") {
        out.push_back(st.min);
      } else if (spec.func == "MAX") {
        out.push_back(st.max);
      } else if (spec.func == "AVG") {
        out.push_back(st.count == 0 ? Value::Null()
                                    : Value(st.dsum / st.count));
      } else {
        return Status::Unsupported("aggregate function " + spec.func);
      }
    }
    results_.push_back(std::move(out));
  }
  return Status::Ok();
}

Result<bool> AggOp::NextImpl(Tuple* row) {
  if (pos_ >= results_.size()) return false;
  *row = results_[pos_++];
  return true;
}


// --- EXPLAIN rendering ---------------------------------------------------------

void ExplainLine(int depth, const std::string& text, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append(text);
  out->push_back('\n');
}

namespace {

std::string RenderExprs(const std::vector<const qgm::Expr*>& exprs) {
  std::string s;
  for (size_t i = 0; i < exprs.size(); ++i) {
    if (i > 0) s += " AND ";
    s += exprs[i]->ToString(nullptr);
  }
  return s;
}

}  // namespace

void ScanOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth, "Scan(" + table_->name() + ")", out);
}

void VirtualScanOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth, "VirtualScan(" + provider_->name() + ")", out);
}

void IndexScanOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth,
              "IndexScan(" + table_->name() + "." +
                  table_->schema().column(column_).name + " = " +
                  key_.ToString() + ")",
              out);
}

void RangeScanOp::ExplainImpl(int depth, std::string* out) const {
  std::string range;
  if (lo_.has_value()) {
    range += lo_->ToString() + (lo_inclusive_ ? " <= " : " < ");
  }
  range += table_->name() + "." + table_->schema().column(column_).name;
  if (hi_.has_value()) {
    range += (hi_inclusive_ ? " <= " : " < ") + hi_->ToString();
  }
  SelfLine(depth, "RangeScan(" + range + ")", out);
}

void MaterializedOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth,
              "SpoolRead(" + std::to_string(rows_->size()) + " rows)", out);
}

void MatViewScanOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth,
           "MatViewScan(matview=" + view_name_ + ", " +
               std::to_string(rows_->size()) + " rows)",
           out);
}

void FilterOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth, "Filter(" + RenderExprs(preds_) + ")", out);
  child_->Explain(depth + 1, out);
}

void ProjectOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth, "Project(" + std::to_string(exprs_.size()) + " cols)",
              out);
  child_->Explain(depth + 1, out);
}

void DistinctOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth, "Distinct", out);
  child_->Explain(depth + 1, out);
}

void SortOp::ExplainImpl(int depth, std::string* out) const {
  std::string keys;
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) keys += ", ";
    keys += "#" + std::to_string(keys_[i].first) +
            (keys_[i].second ? " DESC" : "");
  }
  SelfLine(depth, "Sort(" + keys + ")", out);
  child_->Explain(depth + 1, out);
}

void LimitOp::ExplainImpl(int depth, std::string* out) const {
  std::string line = "Limit(" + std::to_string(limit_);
  if (offset_ > 0) line += " offset " + std::to_string(offset_);
  line += ")";
  SelfLine(depth, line, out);
  child_->Explain(depth + 1, out);
}

void HashJoinOp::ExplainImpl(int depth, std::string* out) const {
  std::string keys;
  for (size_t i = 0; i < left_keys_.size(); ++i) {
    if (i > 0) keys += ", ";
    keys += left_keys_[i]->ToString(nullptr) + " = " +
            right_keys_[i]->ToString(nullptr);
  }
  std::string line = "HashJoin(" + keys + ")";
  if (!residual_.empty()) line += " residual(" + RenderExprs(residual_) + ")";
  SelfLine(depth, line, out);
  left_->Explain(depth + 1, out);
  right_->Explain(depth + 1, out);
}

void NLJoinOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth, "NestedLoopJoin(" + RenderExprs(preds_) + ")", out);
  left_->Explain(depth + 1, out);
  right_->Explain(depth + 1, out);
}

void ExistsFilterOp::ExplainImpl(int depth, std::string* out) const {
  std::string line = "ExistsFilter(";
  line += std::to_string(groups_.size());
  line += disjunctive_ ? " group(s), ANY" : " group(s), ALL";
  if (naive_) line += ", naive";
  line += ")";
  SelfLine(depth, line, out);
  for (const GroupCheck& g : groups_) {
    ExplainLine(depth + 1,
                std::string(g.negated ? "anti-" : "") + "group over " +
                    std::to_string(g.rows->size()) + " materialized rows, " +
                    std::to_string(g.equi_outer.size()) + " hash key(s)",
                out);
  }
  child_->Explain(depth + 1, out);
}

void UnionOp::ExplainImpl(int depth, std::string* out) const {
  SelfLine(depth, "Union", out);
  for (const OperatorPtr& c : children_) c->Explain(depth + 1, out);
}

void AggOp::ExplainImpl(int depth, std::string* out) const {
  std::string aggs;
  for (const AggSpec& spec : specs_) {
    if (!spec.is_agg) continue;
    if (!aggs.empty()) aggs += ", ";
    aggs += spec.func;
  }
  SelfLine(depth,
              "Aggregate(" + std::to_string(group_by_.size()) +
                  " group col(s); " + aggs + ")",
              out);
  child_->Explain(depth + 1, out);
}

}  // namespace xnfdb
