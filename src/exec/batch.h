// Batch-at-a-time execution support (MonetDB/X100-style vectorization).
//
// A TupleBatch is a fixed-capacity block of rows plus a selection vector of
// active row indices. Producers append rows densely (PushRow activates the
// row); filters *mark* instead of copy by shrinking the selection vector in
// place, so a batch flows through a filter chain without any row movement.
// Consumers iterate Active(i) for i in [0, ActiveCount()).
//
// NextBatch(batch) returning true with ActiveCount() == 0 is legal (a fully
// filtered batch); only `false` means end of stream. batch_size = 1
// degenerates to the classic tuple-at-a-time Volcano pipeline.

#ifndef XNFDB_EXEC_BATCH_H_
#define XNFDB_EXEC_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/str_util.h"
#include "common/value.h"

namespace xnfdb {

// Default rows per batch; override per query via ExecOptions::batch_size or
// process-wide via XNFDB_BATCH_SIZE.
inline constexpr int kDefaultBatchSize = 1024;

// Resolves a requested batch size: explicit value > 0 wins, then the
// XNFDB_BATCH_SIZE environment variable, then kDefaultBatchSize.
inline int ResolveBatchSize(int requested) {
  if (requested > 0) return requested;
  return static_cast<int>(
      ParseEnvInt("XNFDB_BATCH_SIZE", 1, 1 << 20, kDefaultBatchSize));
}

class TupleBatch {
 public:
  explicit TupleBatch(size_t capacity = kDefaultBatchSize)
      : capacity_(capacity == 0 ? 1 : capacity) {
    rows_.reserve(capacity_);
    sel_.reserve(capacity_);
  }

  size_t capacity() const { return capacity_; }
  // Producers stop appending at capacity; operators with match fan-out
  // (joins) may overshoot it rather than carry state across calls.
  bool Full() const { return size_ >= capacity_; }
  bool Empty() const { return size_ == 0; }

  // Resets the batch without destroying its row storage: the Tuple objects
  // (and whatever heap buffers their Values still own) stay behind as a
  // pool, so refilling via AppendRow() copy-assigns into warm buffers
  // instead of re-allocating per row. This is what keeps the batch path
  // from regressing on filter-heavy plans, where most scanned rows are
  // deselected and never leave the batch.
  void Clear() {
    size_ = 0;
    sel_.clear();
  }

  // Appends an active row slot and returns it for the producer to fill
  // (typically by copy-assignment, which reuses the slot's capacity).
  // The returned reference is valid until the next Append/Push/Clear.
  Tuple& AppendRow() {
    sel_.push_back(static_cast<uint32_t>(size_));
    if (size_ == rows_.size()) rows_.emplace_back();
    return rows_[size_++];
  }

  // Appends a row and marks it active.
  void PushRow(Tuple&& row) { AppendRow() = std::move(row); }

  // Retracts the most recent AppendRow() (which must still be active):
  // producers may append a slot speculatively, try to fill it, and drop it
  // when the source is exhausted or the row fails a residual predicate.
  void DropLastRow() {
    sel_.pop_back();
    --size_;
  }

  // All rows ever pushed into this batch, including ones a filter has since
  // deselected.
  size_t TotalRows() const { return size_; }

  // Rows still selected.
  size_t ActiveCount() const { return sel_.size(); }
  Tuple& Active(size_t i) { return rows_[sel_[i]]; }
  const Tuple& Active(size_t i) const { return rows_[sel_[i]]; }

  // The selection vector (ascending indices into rows()). Filters shrink it
  // in place to deselect rows.
  std::vector<uint32_t>& sel() { return sel_; }
  const std::vector<uint32_t>& sel() const { return sel_; }

  std::vector<Tuple>& rows() { return rows_; }
  const std::vector<Tuple>& rows() const { return rows_; }

 private:
  size_t capacity_;
  size_t size_ = 0;  // valid rows; rows_ may hold more as pooled storage
  std::vector<Tuple> rows_;
  std::vector<uint32_t> sel_;
};

}  // namespace xnfdb

#endif  // XNFDB_EXEC_BATCH_H_
