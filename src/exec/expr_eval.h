// Runtime evaluation of QGM scalar expressions.
//
// During box evaluation, the rows of the box's quantifiers are concatenated
// into one combined tuple; a `Layout` records at which offset each
// quantifier's columns live. Column references are resolved through it.

#ifndef XNFDB_EXEC_EXPR_EVAL_H_
#define XNFDB_EXEC_EXPR_EVAL_H_

#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "qgm/qgm.h"

namespace xnfdb {

// Maps quantifier ids to column offsets within a combined tuple. Backed by
// a small id-sorted vector: layouts hold a handful of quantifiers and are
// probed on every column reference, so a linear scan over contiguous slots
// beats tree lookups on the hot path.
class Layout {
 public:
  void Add(int quant_id, size_t offset, size_t arity);
  bool Has(int quant_id) const { return Find(quant_id) != nullptr; }
  size_t Offset(int quant_id) const { return Find(quant_id)->offset; }
  size_t Arity(int quant_id) const { return Find(quant_id)->arity; }
  size_t TotalWidth() const;
  std::vector<int> QuantIds() const;

  // Merges `other`, shifting its offsets by `shift`.
  void Append(const Layout& other, size_t shift);

 private:
  struct Slot {
    int id;
    size_t offset;
    size_t arity;
  };

  // Null when absent; Offset/Arity require a present id (as the old
  // map::at did, minus the exception).
  const Slot* Find(int quant_id) const {
    for (const Slot& s : slots_) {
      if (s.id == quant_id) return &s;
    }
    return nullptr;
  }

  std::vector<Slot> slots_;  // sorted by id
};

// Evaluates `e` against `row` (combined tuple described by `layout`).
// Aggregate expressions are rejected here; the aggregation operator handles
// them separately.
Result<Value> EvalExpr(const qgm::Expr& e, const Layout& layout,
                       const Tuple& row);

// SQL three-valued predicate check: true only when `e` evaluates to TRUE.
Result<bool> EvalPredicate(const qgm::Expr& e, const Layout& layout,
                           const Tuple& row);

// Hash/equality functors for Tuple keys in hash joins and distinct.
struct TupleHash {
  size_t operator()(const Tuple& t) const { return HashTuple(t); }
};
struct TupleEq {
  bool operator()(const Tuple& a, const Tuple& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      // NULL-safe equality so grouping/dedup treat NULLs as one class.
      if (a[i].is_null() != b[i].is_null()) return false;
      if (!a[i].is_null() && !(a[i] == b[i])) return false;
    }
    return true;
  }
};

}  // namespace xnfdb

#endif  // XNFDB_EXEC_EXPR_EVAL_H_
