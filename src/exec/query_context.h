// Per-query resource governance (cooperative cancellation, deadlines,
// row/memory budgets).
//
// One QueryContext is shared by everything that runs on behalf of a single
// query: the executor's output passes, morsel workers, the recursive
// fixpoint evaluator, and plan-time spool/materialization builds. All state
// is atomic, so any thread may flip the cancellation flag (Database::Cancel,
// shell `.kill`) while worker threads are mid-pipeline; workers observe it
// at the next batch boundary and unwind by returning a typed Status
// (kCancelled / kDeadlineExceeded / kResourceExhausted) up the operator
// tree. No thread is ever interrupted preemptively — a governed query can
// therefore never leave a batch pool, spool, or bucket in a torn state.
//
// Check-point placement rules (DESIGN.md §11): the non-virtual
// Operator::Open/Next/NextBatch wrappers check automatically, so a new
// operator inherits governance for free; code that *materializes* rows
// outside the operator tree (spools, join build sides, sort buffers,
// fixpoint candidates, executor output buffers) must additionally charge
// ReserveBytes, and code that *emits* result rows must charge
// ChargeOutputRows.

#ifndef XNFDB_EXEC_QUERY_CONTEXT_H_
#define XNFDB_EXEC_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/value.h"
#include "obs/flight_recorder.h"

namespace xnfdb {

// Limits applied to one query. Zero means "no limit" throughout.
struct QueryLimits {
  int64_t deadline_us = 0;         // absolute steady-clock microseconds
  int64_t max_result_rows = 0;     // cap on rows produced into the answer
  int64_t mem_budget_bytes = 0;    // cap on bytes materialized server-side
};

// Rough heap footprint of one tuple: the Value slots plus owned string
// payloads. An estimate, not an allocator audit — budgets bound runaway
// materialization, they do not meter malloc.
inline int64_t ApproxTupleBytes(const Tuple& row) {
  int64_t bytes = static_cast<int64_t>(row.size() * sizeof(Value));
  for (const Value& v : row) {
    if (v.type() == DataType::kString) {
      bytes += static_cast<int64_t>(v.AsString().size());
    }
  }
  return bytes;
}

class QueryContext {
 public:
  QueryContext() : start_us_(NowUs()) {}
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  static int64_t NowUs() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  // Set once before execution starts (not thread-safe against checks).
  void SetLimits(const QueryLimits& limits) { limits_ = limits; }
  const QueryLimits& limits() const { return limits_; }

  // Requests cooperative termination; safe from any thread, idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  int64_t rows_produced() const {
    return rows_produced_.load(std::memory_order_relaxed);
  }
  int64_t bytes_reserved() const {
    return bytes_reserved_.load(std::memory_order_relaxed);
  }
  int64_t elapsed_us() const { return NowUs() - start_us_; }

  // Liveness heartbeat for the stuck-query watchdog: operator wrappers
  // tick at batch boundaries (every Open/NextBatch, and every ~1k rows on
  // the Volcano path). A running query whose tick count stops advancing is
  // stalled — wedged inside one call, not merely slow between rows.
  void Tick() { progress_ticks_.fetch_add(1, std::memory_order_relaxed); }
  int64_t progress_ticks() const {
    return progress_ticks_.load(std::memory_order_relaxed);
  }

  // Admission wait, recorded by Governor::Admit before execution starts
  // (profile capture reads it at query end).
  void set_queue_wait_us(int64_t us) {
    queue_wait_us_.store(us, std::memory_order_relaxed);
  }
  int64_t queue_wait_us() const {
    return queue_wait_us_.load(std::memory_order_relaxed);
  }

  // Cancellation only: one relaxed-ish atomic load, cheap enough for
  // per-row call sites.
  Status CheckCancelled() const {
    if (cancelled()) return TerminationStatus(StatusCode::kCancelled);
    return Status::Ok();
  }

  // Full cooperative check: cancellation plus deadline (one clock read,
  // skipped when no deadline is set). Called at batch boundaries.
  Status Check() const {
    if (cancelled()) return TerminationStatus(StatusCode::kCancelled);
    if (limits_.deadline_us != 0 && NowUs() > limits_.deadline_us) {
      return TerminationStatus(StatusCode::kDeadlineExceeded);
    }
    return Status::Ok();
  }

  // Accounts `n` rows produced toward the answer set; fails when the row
  // budget is exceeded.
  Status ChargeOutputRows(int64_t n) {
    int64_t total = rows_produced_.fetch_add(n, std::memory_order_relaxed) + n;
    if (limits_.max_result_rows != 0 && total > limits_.max_result_rows) {
      return TerminationStatus(StatusCode::kResourceExhausted,
                               "row budget of " +
                                   std::to_string(limits_.max_result_rows) +
                                   " rows exceeded");
    }
    return Status::Ok();
  }

  // Accounts `n` bytes materialized server-side (spools, build sides,
  // output buffers); fails when the memory budget is exceeded.
  Status ReserveBytes(int64_t n) {
    int64_t total =
        bytes_reserved_.fetch_add(n, std::memory_order_relaxed) + n;
    if (limits_.mem_budget_bytes != 0 && total > limits_.mem_budget_bytes) {
      return TerminationStatus(StatusCode::kResourceExhausted,
                               "memory budget of " +
                                   std::to_string(limits_.mem_budget_bytes) +
                                   " bytes exceeded");
    }
    return Status::Ok();
  }

 private:
  // Every termination reports how far execution got, so a client knows what
  // was discarded ("never a partial silent result").
  Status TerminationStatus(StatusCode code, std::string detail = "") const {
    // Detail is the code keyword only: every morsel worker of a cancelled
    // query lands here, and byte-identical events coalesce into one.
    obs::FlightRecorder::Default().Record(
        "governor", "warn", "query terminated",
        code == StatusCode::kCancelled          ? "reason=cancelled"
        : code == StatusCode::kDeadlineExceeded ? "reason=deadline"
                                                : "reason=budget");
    std::string m = detail.empty()
                        ? (code == StatusCode::kCancelled
                               ? std::string("query cancelled")
                               : std::string("query deadline exceeded"))
                        : std::move(detail);
    m += " after " + std::to_string(elapsed_us()) + "us, " +
         std::to_string(rows_produced()) + " rows produced, " +
         std::to_string(bytes_reserved()) + " bytes reserved";
    return Status(code, std::move(m));
  }

  std::atomic<bool> cancelled_{false};
  QueryLimits limits_;
  std::atomic<int64_t> rows_produced_{0};
  std::atomic<int64_t> bytes_reserved_{0};
  std::atomic<int64_t> progress_ticks_{0};
  std::atomic<int64_t> queue_wait_us_{0};
  int64_t start_us_ = 0;
};

}  // namespace xnfdb

#endif  // XNFDB_EXEC_QUERY_CONTEXT_H_
