#include "exec/expr_eval.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "common/str_util.h"

namespace xnfdb {

void Layout::Add(int quant_id, size_t offset, size_t arity) {
  for (Slot& s : slots_) {
    if (s.id == quant_id) {
      s.offset = offset;
      s.arity = arity;
      return;
    }
  }
  Slot slot{quant_id, offset, arity};
  auto it = std::lower_bound(
      slots_.begin(), slots_.end(), quant_id,
      [](const Slot& s, int id) { return s.id < id; });
  slots_.insert(it, slot);
}

size_t Layout::TotalWidth() const {
  size_t width = 0;
  for (const Slot& s : slots_) {
    width = std::max(width, s.offset + s.arity);
  }
  return width;
}

std::vector<int> Layout::QuantIds() const {
  std::vector<int> ids;
  for (const Slot& s : slots_) ids.push_back(s.id);
  return ids;
}

void Layout::Append(const Layout& other, size_t shift) {
  for (const Slot& s : other.slots_) {
    Add(s.id, s.offset + shift, s.arity);
  }
}

Result<Value> EvalExpr(const qgm::Expr& e, const Layout& layout,
                       const Tuple& row) {
  using Kind = qgm::Expr::Kind;
  switch (e.kind) {
    case Kind::kLiteral:
      return e.literal;
    case Kind::kColRef: {
      if (!layout.Has(e.quant_id)) {
        return Status::Internal("no slot for quantifier q" +
                                std::to_string(e.quant_id));
      }
      size_t idx = layout.Offset(e.quant_id) + e.column;
      if (idx >= row.size()) {
        return Status::Internal("column reference beyond combined row");
      }
      return row[idx];
    }
    case Kind::kBinary: {
      using BinOp = qgm::Expr::BinOp;
      XNFDB_ASSIGN_OR_RETURN(Value l, EvalExpr(*e.lhs, layout, row));
      XNFDB_ASSIGN_OR_RETURN(Value r, EvalExpr(*e.rhs, layout, row));
      switch (e.bin_op) {
        case BinOp::kAnd:
        case BinOp::kOr: {
          // Three-valued logic.
          bool lnull = l.is_null(), rnull = r.is_null();
          bool lv = !lnull && l.type() == DataType::kBool && l.AsBool();
          bool rv = !rnull && r.type() == DataType::kBool && r.AsBool();
          if (e.bin_op == BinOp::kAnd) {
            if (!lnull && !lv) return Value(false);
            if (!rnull && !rv) return Value(false);
            if (lnull || rnull) return Value::Null();
            return Value(true);
          }
          if (!lnull && lv) return Value(true);
          if (!rnull && rv) return Value(true);
          if (lnull || rnull) return Value::Null();
          return Value(false);
        }
        case BinOp::kAdd:
          return Value::Add(l, r);
        case BinOp::kSub:
          return Value::Sub(l, r);
        case BinOp::kMul:
          return Value::Mul(l, r);
        case BinOp::kDiv:
          return Value::Div(l, r);
        case BinOp::kCmp:
          return Value::Compare(l, r, e.cmp_op);
        case BinOp::kNone:
          break;
      }
      return Status::Internal("unresolved binary operator " + e.op);
    }
    case Kind::kUnary: {
      XNFDB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs, layout, row));
      if (e.op == "NOT") {
        if (v.is_null()) return Value::Null();
        if (v.type() != DataType::kBool) {
          return Status::ExecutionError("NOT applied to non-boolean");
        }
        return Value(!v.AsBool());
      }
      if (e.op == "-") {
        if (v.is_null()) return Value::Null();
        if (v.type() == DataType::kInt) return Value(-v.AsInt());
        if (v.type() == DataType::kDouble) return Value(-v.AsDouble());
        return Status::ExecutionError("unary minus on non-numeric");
      }
      return Status::Internal("unknown unary operator " + e.op);
    }
    case Kind::kLike: {
      XNFDB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e.lhs, layout, row));
      if (v.is_null()) return Value::Null();
      if (v.type() != DataType::kString) {
        return Status::ExecutionError("LIKE applied to non-string");
      }
      bool m = LikeMatch(v.AsString(), e.pattern);
      return Value(e.negated ? !m : m);
    }
    case Kind::kAgg:
      return Status::Internal(
          "aggregate expression evaluated outside aggregation");
    case Kind::kFunc: {
      XNFDB_ASSIGN_OR_RETURN(Value a, EvalExpr(*e.lhs, layout, row));
      Value b;
      if (e.rhs != nullptr) {
        XNFDB_ASSIGN_OR_RETURN(b, EvalExpr(*e.rhs, layout, row));
      }
      if (a.is_null() || (e.rhs != nullptr && b.is_null())) {
        return Value::Null();
      }
      if (e.op == "UPPER" || e.op == "LOWER") {
        if (a.type() != DataType::kString) {
          return Status::ExecutionError(e.op + " applied to non-string");
        }
        std::string s = a.AsString();
        for (char& c : s) {
          c = e.op == "UPPER" ? std::toupper(static_cast<unsigned char>(c))
                              : std::tolower(static_cast<unsigned char>(c));
        }
        return Value(std::move(s));
      }
      if (e.op == "LENGTH") {
        if (a.type() != DataType::kString) {
          return Status::ExecutionError("LENGTH applied to non-string");
        }
        return Value(static_cast<int64_t>(a.AsString().size()));
      }
      if (e.op == "ABS") {
        if (a.type() == DataType::kInt) {
          return Value(a.AsInt() < 0 ? -a.AsInt() : a.AsInt());
        }
        if (a.type() == DataType::kDouble) {
          return Value(std::fabs(a.AsDouble()));
        }
        return Status::ExecutionError("ABS applied to non-numeric");
      }
      if (e.op == "ROUND") {
        if (a.type() == DataType::kInt) return a;
        if (a.type() == DataType::kDouble) {
          return Value(static_cast<int64_t>(std::llround(a.AsDouble())));
        }
        return Status::ExecutionError("ROUND applied to non-numeric");
      }
      if (e.op == "MOD") {
        if (a.type() != DataType::kInt || b.type() != DataType::kInt) {
          return Status::ExecutionError("MOD requires integer arguments");
        }
        if (b.AsInt() == 0) {
          return Status::ExecutionError("MOD by zero");
        }
        return Value(a.AsInt() % b.AsInt());
      }
      if (e.op == "CONCAT") {
        if (a.type() != DataType::kString || b.type() != DataType::kString) {
          return Status::ExecutionError("CONCAT requires string arguments");
        }
        return Value(a.AsString() + b.AsString());
      }
      return Status::Internal("unknown scalar function " + e.op);
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<bool> EvalPredicate(const qgm::Expr& e, const Layout& layout,
                           const Tuple& row) {
  XNFDB_ASSIGN_OR_RETURN(Value v, EvalExpr(e, layout, row));
  if (v.is_null()) return false;
  if (v.type() != DataType::kBool) {
    return Status::ExecutionError("predicate did not evaluate to boolean");
  }
  return v.AsBool();
}

}  // namespace xnfdb
