// Physical operators of the Query Evaluation System (paper Sect. 3.1).
//
// Execution follows the Starburst "table queue" style: demand-driven,
// pipelined iterators (Open / Next / Close). Each QEP operator consumes one
// or more input streams and produces an output stream of tuples. Shared
// common subexpressions are realized by Spool buffers: a producer is run
// once and any number of readers iterate the materialized result.
//
// The public Open/Next/Close entry points are non-virtual wrappers that
// maintain per-operator actuals (loop and row counts always; inclusive wall
// time in analyze mode) for EXPLAIN ANALYZE; subclasses implement the
// protected *Impl hooks.

#ifndef XNFDB_EXEC_OPERATORS_H_
#define XNFDB_EXEC_OPERATORS_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/batch.h"
#include "exec/expr_eval.h"
#include "exec/query_context.h"
#include "qgm/qgm.h"
#include "storage/table.h"

namespace xnfdb {

class VirtualTableProvider;

namespace obs {
class MetricsRegistry;
}  // namespace obs

// A copyable atomic counter, so ExecStats can be both shared between
// parallel workers (paper Sect. 5.1/6: parallel CO extraction) and returned
// by value in QueryResult.
class StatCounter {
 public:
  StatCounter(int64_t v = 0) : value_(v) {}  // NOLINT
  StatCounter(const StatCounter& other) : value_(other.load()) {}
  StatCounter& operator=(const StatCounter& other) {
    value_.store(other.load(), std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator=(int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator++() {
    value_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  StatCounter& operator+=(int64_t v) {
    value_.fetch_add(v, std::memory_order_relaxed);
    return *this;
  }
  int64_t load() const { return value_.load(std::memory_order_relaxed); }
  operator int64_t() const { return load(); }  // NOLINT

 private:
  std::atomic<int64_t> value_;
};

// Execution counters, reported by benches and asserted on by tests.
struct ExecStats {
  StatCounter rows_scanned;       // base-table rows read
  StatCounter index_lookups;      // index probe operations
  StatCounter join_probes;        // hash/NL join probe rows
  StatCounter exists_probes;      // existential checks performed
  StatCounter spool_builds;       // common subexpressions materialized
  StatCounter spool_read_rows;    // rows served from spools
  StatCounter rows_output;        // rows leaving Top
  StatCounter operators_created;
  StatCounter batches_emitted;    // batches delivered into output streams
  StatCounter morsels_claimed;    // scan morsels claimed by workers
  // Per-operator-kind native batch counts (vectorization visibility).
  StatCounter batches_scan;
  StatCounter batches_spool;
  StatCounter batches_filter;
  StatCounter batches_project;
  StatCounter batches_join;
  StatCounter batches_exists;

  std::string ToString() const;
  // Adds every counter into `registry` under `exec.<counter>` (the unified
  // observability snapshot exposed by Database::MetricsJson).
  void PublishTo(obs::MetricsRegistry* registry) const;
};

class ScanOp;

// Shared morsel dispenser for one morsel-parallel scan (HyPer-style):
// worker threads claim fixed-size row ranges [m * rows_per_morsel,
// (m+1) * rows_per_morsel) from the atomic cursor. `bound` is the scan's
// rid bound, captured when the dispenser is created.
struct ScanMorsels {
  Rid bound = 0;
  Rid rows_per_morsel = 2048;
  std::atomic<uint64_t> next{0};

  uint64_t MorselCount() const {
    if (bound == 0 || rows_per_morsel == 0) return 0;
    return (bound + rows_per_morsel - 1) / rows_per_morsel;
  }
};

class Operator {
 public:
  virtual ~Operator() = default;

  // Non-virtual lifecycle entry points: delegate to the *Impl hooks while
  // maintaining this operator's actuals.
  Status Open();
  // Produces the next row into `*row`; returns false at end of stream.
  Result<bool> Next(Tuple* row);
  // Produces the next batch into `*out` (cleared first); returns false at
  // end of stream. A true return with ActiveCount() == 0 is a fully
  // filtered batch — keep pulling. Operators without a native batch
  // implementation fall back to looping NextImpl.
  Result<bool> NextBatch(TupleBatch* out);
  void Close();

  // Appends a one-line-per-operator rendering of this plan subtree to
  // `out`, indented by `depth` (EXPLAIN support). After an analyze-mode
  // execution each line carries "(actual rows=.. loops=.. time=..ms)".
  void Explain(int depth, std::string* out) const { ExplainImpl(depth, out); }

  // Per-operator execution totals. `ns` is inclusive of children (time is
  // measured around this operator's Next calls, which pull from children),
  // and is only collected in analyze mode; rows/loops are always counted.
  struct Actuals {
    int64_t loops = 0;    // Open calls
    int64_t rows = 0;     // rows produced, across all loops
    int64_t batches = 0;  // NextBatch calls that produced a batch
    int64_t ns = 0;       // inclusive wall time (analyze mode only)
  };
  const Actuals& actuals() const { return actuals_; }

  // Enables wall-time measurement for this operator and its subtree
  // (EXPLAIN ANALYZE).
  void EnableAnalyze();
  bool analyze_enabled() const { return analyze_; }

  // Always-on profiling (SYS$QUERY_PROFILES): like analyze mode but cheap —
  // wall time is measured only around Open/NextBatch (two clock reads per
  // ~1k-row batch), never around per-row Next calls. Rows pulled
  // row-at-a-time contribute counters but no time.
  void EnableProfile();
  bool profile_enabled() const { return profile_; }

  // Stable operator-class name ("scan", "hash_join", ...) used to aggregate
  // profiles and to roll self-time up into SYS$STATEMENTS broad classes.
  virtual const char* Kind() const { return "op"; }

  // The planner's estimated output cardinality for this operator (rows per
  // loop), stamped at plan build time; < 0 when no estimate was provided.
  // EXPLAIN prints it and the executor joins it against actuals for the
  // cardinality-feedback store (SYS$PLAN_FEEDBACK).
  void SetEstimatedRows(double est) { est_rows_ = est; }
  double estimated_rows() const { return est_rows_; }

  // Appends this operator's plan-shape token: the operator class plus its
  // access path (table/index), but never literals — so the token is stable
  // across parameter values and the shape hash detects genuine plan flips.
  virtual void ShapeToken(std::string* out) const { *out += Kind(); }

  // Attaches the query's resource-governance context to this operator and
  // its subtree. The non-virtual wrappers then check it cooperatively: a
  // full Check() (cancel + deadline) at every Open/NextBatch, a cheap
  // cancellation check per Next row with a full check every ~1k rows. `ctx`
  // must outlive execution; null detaches.
  void AttachContext(QueryContext* ctx);

  // Direct children of this operator in the plan tree.
  virtual std::vector<Operator*> Children() { return {}; }

  // Morsel-driven scan support: returns the base-table scan that drives
  // this pipeline by descending through order-preserving streaming
  // operators (filters, projections, existential filters, join probe
  // sides), or null when the pipeline has an order/dedup/aggregation
  // -sensitive breaker (sort, distinct, aggregate, limit, union) or a
  // non-scan source. Only that driver scan may be morselized — splitting a
  // join build side or a union branch across workers would compute wrong
  // results.
  virtual ScanOp* MorselDriver() { return nullptr; }

 protected:
  virtual Status OpenImpl() = 0;
  virtual Result<bool> NextImpl(Tuple* row) = 0;
  // Default adapter: loops NextImpl until the batch is full. Native batch
  // operators override this.
  virtual Result<bool> NextBatchImpl(TupleBatch* out);
  virtual void CloseImpl() = 0;
  virtual void ExplainImpl(int depth, std::string* out) const = 0;

  // Appends this operator's own EXPLAIN line, annotated with actuals when
  // analyze mode is on.
  void SelfLine(int depth, const std::string& text, std::string* out) const;

  // Governance context, for *Impl hooks that materialize rows internally
  // (join build sides, sort buffers) and must charge ReserveBytes / observe
  // cancellation inside their own loops. Null when the query is ungoverned.
  QueryContext* context() const { return ctx_; }

 private:
  bool analyze_ = false;
  bool profile_ = false;
  Actuals actuals_;
  double est_rows_ = -1.0;  // planner estimate; < 0 = none
  QueryContext* ctx_ = nullptr;
  int64_t gov_tick_ = 0;  // rows since the last full deadline check (Next)
};

// Explain helper: indented line.
void ExplainLine(int depth, const std::string& text, std::string* out);

// The canonical plan-shape text of the tree under `root`: pre-order,
// parenthesized, built from ShapeToken — e.g. "project(filter(scan:EMP))".
// Contains access paths but no literals, so it is stable across parameter
// values, batch sizes and worker counts. (Non-const: Children() is.)
std::string PlanShapeText(Operator* root);

// FNV-1a hash of `shape` — the plan hash SYS$PLAN_HISTORY keys on.
uint64_t PlanShapeHash(const std::string& shape);

using OperatorPtr = std::unique_ptr<Operator>;

// Drains `op` completely (Open/Next*/Close) into a vector. `batch_size`
// selects the pull granularity; <= 1 keeps the classic row loop. When `ctx`
// is set, every drained row's bytes are charged against its memory budget
// (drains materialize: spools, existential group builds).
Result<std::vector<Tuple>> DrainOperator(Operator* op, int batch_size = 1,
                                         QueryContext* ctx = nullptr);

// --- sources ---------------------------------------------------------------

// Full scan of a base table. Optionally driven by a shared ScanMorsels
// dispenser, in which case this instance only reads the row ranges it
// claims (several plan clones over the same dispenser cover the table
// exactly once, in parallel).
class ScanOp : public Operator {
 public:
  ScanOp(const Table* table, ExecStats* stats)
      : table_(table), stats_(stats) {}

  const Table* table() const { return table_; }

  // Attaches a shared morsel dispenser; call before Open.
  void ShareMorsels(std::shared_ptr<ScanMorsels> morsels) {
    morsels_ = std::move(morsels);
  }

  // Morsel id the most recently returned row/batch came from (-1 before
  // the first claim). Under morsel execution a batch never spans morsels.
  int64_t current_morsel() const { return current_morsel_; }

  // Morsels this instance claimed since Open (per-worker share of the scan;
  // the morsel-worker profile rows report it).
  int64_t claimed_morsels() const { return claimed_; }

  ScanOp* MorselDriver() override { return this; }
  const char* Kind() const override { return "scan"; }
  void ShapeToken(std::string* out) const override;

 protected:
  Status OpenImpl() override {
    rid_ = 0;
    morsel_end_ = 0;
    current_morsel_ = -1;
    claimed_ = 0;
    return Status::Ok();
  }
  Result<bool> NextImpl(Tuple* row) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override {}

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  // Claims the next morsel; false when the table is exhausted.
  bool ClaimMorsel();

  const Table* table_;
  ExecStats* stats_;
  Rid rid_ = 0;
  std::shared_ptr<ScanMorsels> morsels_;
  Rid morsel_end_ = 0;  // exclusive end of the claimed range (morsel mode)
  int64_t current_morsel_ = -1;
  int64_t claimed_ = 0;
};

// Scan over a virtual system table (storage/sysview.h): the provider's
// Generate() is materialized at Open, so one scan sees one consistent
// point-in-time snapshot of the engine state it exposes.
class VirtualScanOp : public Operator {
 public:
  VirtualScanOp(const VirtualTableProvider* provider, ExecStats* stats)
      : provider_(provider), stats_(stats) {}

  const char* Kind() const override { return "virtual_scan"; }
  void ShapeToken(std::string* out) const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* row) override;
  void CloseImpl() override { rows_.clear(); }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  const VirtualTableProvider* provider_;
  ExecStats* stats_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

// Hash-index equality lookup `column = key` on a base table.
class IndexScanOp : public Operator {
 public:
  IndexScanOp(const Table* table, int column, Value key, ExecStats* stats)
      : table_(table), column_(column), key_(std::move(key)), stats_(stats) {}

  const char* Kind() const override { return "index_scan"; }
  void ShapeToken(std::string* out) const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* row) override;
  void CloseImpl() override {}

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  const Table* table_;
  int column_;
  Value key_;
  ExecStats* stats_;
  const std::vector<Rid>* rids_ = nullptr;
  size_t pos_ = 0;
};

// Ordered-index range scan: rows with lo <=(=) column <=(=) hi.
class RangeScanOp : public Operator {
 public:
  RangeScanOp(const Table* table, int column, std::optional<Value> lo,
              bool lo_inclusive, std::optional<Value> hi, bool hi_inclusive,
              ExecStats* stats)
      : table_(table),
        column_(column),
        lo_(std::move(lo)),
        lo_inclusive_(lo_inclusive),
        hi_(std::move(hi)),
        hi_inclusive_(hi_inclusive),
        stats_(stats) {}

  const char* Kind() const override { return "range_scan"; }
  void ShapeToken(std::string* out) const override;

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* row) override;
  void CloseImpl() override {}

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  const Table* table_;
  int column_;
  std::optional<Value> lo_;
  bool lo_inclusive_;
  std::optional<Value> hi_;
  bool hi_inclusive_;
  ExecStats* stats_;
  std::vector<Rid> rids_;
  size_t pos_ = 0;
};

// Reader over a server-side materialized view (src/matview/): serves the
// stored rows of one output stream without re-running the join tree. Like
// MaterializedOp but with matview provenance: Kind/ShapeToken carry the
// view name, so SYS$PLAN_HISTORY witnesses the plan flip and EXPLAIN shows
// `matview=<name>`.
class MatViewScanOp : public Operator {
 public:
  MatViewScanOp(std::string view_name,
                std::shared_ptr<const std::vector<Tuple>> rows,
                ExecStats* stats)
      : view_name_(std::move(view_name)),
        rows_(std::move(rows)),
        stats_(stats) {}

  const char* Kind() const override { return "matview_scan"; }
  void ShapeToken(std::string* out) const override {
    *out += "matview_scan:" + view_name_;
  }

 protected:
  Status OpenImpl() override {
    pos_ = 0;
    return Status::Ok();
  }
  Result<bool> NextImpl(Tuple* row) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override {}

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  std::string view_name_;
  std::shared_ptr<const std::vector<Tuple>> rows_;
  ExecStats* stats_;
  size_t pos_ = 0;
};

// Reader over a materialized (spooled) buffer.
class MaterializedOp : public Operator {
 public:
  MaterializedOp(std::shared_ptr<const std::vector<Tuple>> rows,
                 ExecStats* stats)
      : rows_(std::move(rows)), stats_(stats) {}

  const char* Kind() const override { return "spool_read"; }

 protected:
  Status OpenImpl() override {
    pos_ = 0;
    return Status::Ok();
  }
  Result<bool> NextImpl(Tuple* row) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override {}

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  std::shared_ptr<const std::vector<Tuple>> rows_;
  ExecStats* stats_;
  size_t pos_ = 0;
};

// --- row transforms ----------------------------------------------------------

class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, std::vector<const qgm::Expr*> preds,
           Layout layout, ExecStats* stats = nullptr)
      : child_(std::move(child)),
        preds_(std::move(preds)),
        layout_(std::move(layout)),
        stats_(stats) {}

  std::vector<Operator*> Children() override { return {child_.get()}; }
  ScanOp* MorselDriver() override { return child_->MorselDriver(); }
  const char* Kind() const override { return "filter"; }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(Tuple* row) override;
  // Pulls the child's batch into `out` and deselects failing rows in the
  // selection vector — no row copies.
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override { child_->Close(); }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  OperatorPtr child_;
  std::vector<const qgm::Expr*> preds_;
  Layout layout_;
  ExecStats* stats_;
};

class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<const qgm::Expr*> exprs,
            Layout layout, ExecStats* stats = nullptr)
      : child_(std::move(child)),
        exprs_(std::move(exprs)),
        layout_(std::move(layout)),
        stats_(stats) {}

  std::vector<Operator*> Children() override { return {child_.get()}; }
  ScanOp* MorselDriver() override { return child_->MorselDriver(); }
  const char* Kind() const override { return "project"; }

 protected:
  Status OpenImpl() override { return child_->Open(); }
  Result<bool> NextImpl(Tuple* row) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override { child_->Close(); }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  OperatorPtr child_;
  std::vector<const qgm::Expr*> exprs_;
  Layout layout_;
  ExecStats* stats_;
  std::unique_ptr<TupleBatch> in_;  // child-side batch (batch mode only)
};

class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child) : child_(std::move(child)) {}

  std::vector<Operator*> Children() override { return {child_.get()}; }
  const char* Kind() const override { return "distinct"; }

 protected:
  Status OpenImpl() override {
    seen_.clear();
    return child_->Open();
  }
  Result<bool> NextImpl(Tuple* row) override;
  void CloseImpl() override { child_->Close(); }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  OperatorPtr child_;
  std::unordered_map<Tuple, bool, TupleHash, TupleEq> seen_;
};

class SortOp : public Operator {
 public:
  SortOp(OperatorPtr child, std::vector<std::pair<int, bool>> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}

  std::vector<Operator*> Children() override { return {child_.get()}; }
  const char* Kind() const override { return "sort"; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* row) override;
  void CloseImpl() override { child_->Close(); }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  OperatorPtr child_;
  std::vector<std::pair<int, bool>> keys_;  // (column, descending)
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
};

// Emits at most `limit` rows (-1 = unlimited) after skipping `offset`.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit, int64_t offset)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}

  std::vector<Operator*> Children() override { return {child_.get()}; }
  const char* Kind() const override { return "limit"; }

 protected:
  Status OpenImpl() override {
    emitted_ = 0;
    skipped_ = 0;
    return child_->Open();
  }
  Result<bool> NextImpl(Tuple* row) override;
  void CloseImpl() override { child_->Close(); }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  OperatorPtr child_;
  int64_t limit_;
  int64_t offset_;
  int64_t emitted_ = 0;
  int64_t skipped_ = 0;
};

// --- joins -------------------------------------------------------------------

// Hash equi-join; residual predicates evaluated over the combined row
// (left columns then right columns).
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right,
             std::vector<const qgm::Expr*> left_keys,
             std::vector<const qgm::Expr*> right_keys,
             std::vector<const qgm::Expr*> residual, Layout left_layout,
             Layout right_layout, Layout combined_layout, ExecStats* stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)),
        residual_(std::move(residual)),
        left_layout_(std::move(left_layout)),
        right_layout_(std::move(right_layout)),
        combined_layout_(std::move(combined_layout)),
        stats_(stats) {}

  std::vector<Operator*> Children() override {
    return {left_.get(), right_.get()};
  }
  // Probe (left) side only: the build side must be fully built by every
  // worker, so it is never morselized.
  ScanOp* MorselDriver() override { return left_->MorselDriver(); }
  const char* Kind() const override { return "hash_join"; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* row) override;
  // Probes one whole left batch per call, emitting every match (output may
  // exceed the nominal capacity — no probe state is carried across calls).
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override {
    left_->Close();
    right_->Close();
  }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  // Evaluates the probe-side key exprs against `row`; true result means a
  // usable (NULL-free) key in `*key`.
  Result<bool> ProbeKey(const Tuple& row, Tuple* key) const;
  // Emits all surviving build matches of left row `left` into `out`.
  Status ProbeInto(const Tuple& left, TupleBatch* out);

  OperatorPtr left_;
  OperatorPtr right_;  // build side
  std::vector<const qgm::Expr*> left_keys_;
  std::vector<const qgm::Expr*> right_keys_;
  std::vector<const qgm::Expr*> residual_;
  Layout left_layout_;
  Layout right_layout_;
  Layout combined_layout_;
  ExecStats* stats_;

  std::unordered_map<Tuple, std::vector<Tuple>, TupleHash, TupleEq> build_;
  // All-ColRef probe keys resolve to flat column offsets once at Open.
  std::vector<size_t> left_key_cols_;
  bool left_keys_flat_ = false;
  Tuple current_left_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_pos_ = 0;
  std::unique_ptr<TupleBatch> left_batch_;  // probe-side batch (batch mode)
};

// Nested-loop join (inner side materialized) for non-equi predicates.
class NLJoinOp : public Operator {
 public:
  NLJoinOp(OperatorPtr left, OperatorPtr right,
           std::vector<const qgm::Expr*> preds, Layout combined_layout,
           ExecStats* stats)
      : left_(std::move(left)),
        right_(std::move(right)),
        preds_(std::move(preds)),
        combined_layout_(std::move(combined_layout)),
        stats_(stats) {}

  std::vector<Operator*> Children() override {
    return {left_.get(), right_.get()};
  }
  const char* Kind() const override { return "nl_join"; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* row) override;
  void CloseImpl() override {
    left_->Close();
    right_->Close();
  }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<const qgm::Expr*> preds_;
  Layout combined_layout_;
  ExecStats* stats_;

  std::vector<Tuple> inner_;
  Tuple current_left_;
  size_t inner_pos_ = 0;
  bool left_valid_ = false;
};

// --- existential checks --------------------------------------------------------

// One alternative of a disjunctive existential predicate, pre-materialized.
struct GroupCheck {
  bool negated = false;  // NOT EXISTS / NOT IN semantics

  std::shared_ptr<const std::vector<Tuple>> rows;  // group-side joined rows
  Layout group_layout;    // offsets within a group row (unshifted)
  Layout combined_layout; // outer layout + group layout shifted

  // Extracted equi-correlation: outer keys (over the outer layout) matched
  // against inner keys (over the group layout). Empty => scan.
  std::vector<const qgm::Expr*> equi_outer;
  std::vector<const qgm::Expr*> equi_inner;
  // Remaining correlated predicates over the combined layout.
  std::vector<const qgm::Expr*> residual;

  // Hash over `rows` keyed by equi_inner, built lazily by the first probe
  // that reaches this group (morsel workers each own a full plan clone, so
  // a group is only ever probed — and built — by one thread).
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash, TupleEq> index;
  bool index_built = false;
};

// Existential filtering. In disjunctive mode an outer row qualifies when at
// least one group admits a matching group row (OR — XNF reachability via
// any relationship); in conjunctive mode every group must match (ordinary
// top-level EXISTS conjuncts). With `naive` set, hash indexes are disabled
// and each check scans the materialized group rows — the "straightforward
// execution strategy used in many DBMSs" of Sect. 3.2, kept for
// benchmarking the rewrite win.
class ExistsFilterOp : public Operator {
 public:
  ExistsFilterOp(OperatorPtr child, std::vector<GroupCheck> groups,
                 Layout outer_layout, bool disjunctive, bool naive,
                 ExecStats* stats)
      : child_(std::move(child)),
        groups_(std::move(groups)),
        outer_layout_(std::move(outer_layout)),
        disjunctive_(disjunctive),
        naive_(naive),
        stats_(stats) {}

  std::vector<Operator*> Children() override { return {child_.get()}; }
  ScanOp* MorselDriver() override { return child_->MorselDriver(); }
  const char* Kind() const override { return "exists"; }

 protected:
  // Opens only the child: group hash indexes are built lazily by the first
  // probe that needs them (EnsureIndex), so an empty probe side — or a
  // governor deadline/cancel that fires before the first row — never pays
  // the build cost.
  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* row) override;
  Result<bool> NextBatchImpl(TupleBatch* out) override;
  void CloseImpl() override { child_->Close(); }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  // Builds `g`'s hash index if not yet built; checks the governor before
  // and during the build so budget terminations fire first.
  Status EnsureIndex(GroupCheck* g);
  Result<bool> GroupMatches(GroupCheck* g, const Tuple& outer);
  Result<bool> RowPasses(const Tuple& row);

  OperatorPtr child_;
  std::vector<GroupCheck> groups_;
  Layout outer_layout_;
  bool disjunctive_;
  bool naive_;
  ExecStats* stats_;
};

// --- set operations ------------------------------------------------------------

class UnionOp : public Operator {
 public:
  explicit UnionOp(std::vector<OperatorPtr> children)
      : children_(std::move(children)) {}

  std::vector<Operator*> Children() override {
    std::vector<Operator*> out;
    out.reserve(children_.size());
    for (const OperatorPtr& c : children_) out.push_back(c.get());
    return out;
  }
  const char* Kind() const override { return "union"; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* row) override;
  void CloseImpl() override {
    for (auto& c : children_) c->Close();
  }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

// --- aggregation ----------------------------------------------------------------

// Output column of an aggregation: either a grouping expression or a bare
// aggregate over an argument expression.
struct AggSpec {
  bool is_agg = false;
  std::string func;            // COUNT/SUM/MIN/MAX/AVG
  const qgm::Expr* arg = nullptr;  // null => COUNT(*)
  const qgm::Expr* group_expr = nullptr;
};

class AggOp : public Operator {
 public:
  AggOp(OperatorPtr child, std::vector<const qgm::Expr*> group_by,
        std::vector<AggSpec> specs, Layout layout)
      : child_(std::move(child)),
        group_by_(std::move(group_by)),
        specs_(std::move(specs)),
        layout_(std::move(layout)) {}

  std::vector<Operator*> Children() override { return {child_.get()}; }
  const char* Kind() const override { return "agg"; }

 protected:
  Status OpenImpl() override;
  Result<bool> NextImpl(Tuple* row) override;
  void CloseImpl() override { child_->Close(); }

  void ExplainImpl(int depth, std::string* out) const override;

 private:
  OperatorPtr child_;
  std::vector<const qgm::Expr*> group_by_;
  std::vector<AggSpec> specs_;
  Layout layout_;
  std::vector<Tuple> results_;
  size_t pos_ = 0;
};

}  // namespace xnfdb

#endif  // XNFDB_EXEC_OPERATORS_H_
