// Top-level query execution: runs a (rewritten, NF) QGM graph and produces
// the answer set.
//
// For plain SQL the result is a single table. For XNF queries it is the
// heterogeneous collection of tuples of Sect. 5: each item is either a
// component row carrying a system-generated tuple identifier and a component
// number, or a connection tuple carrying the identifiers of the rows it
// connects ("A connection tuple contains the identifiers of the connected
// rows").

#ifndef XNFDB_EXEC_EXECUTOR_H_
#define XNFDB_EXEC_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "exec/operators.h"
#include "exec/query_context.h"
#include "obs/metrics.h"
#include "obs/plan_feedback.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "optimizer/planner.h"
#include "qgm/qgm.h"
#include "storage/catalog.h"

namespace xnfdb {

// Tuple identifier within one component stream.
using TupleId = int64_t;

// Description of one output stream of the answer set.
struct OutputDesc {
  std::string name;
  bool is_connection = false;
  Schema schema;                          // component row schema (projected)
  std::vector<std::string> partner_names;  // connection streams only
};

// One element of the heterogeneous answer stream.
struct StreamItem {
  enum class Kind { kRow, kConnection };

  Kind kind = Kind::kRow;
  int output = -1;            // index into QueryResult::outputs
  TupleId tid = -1;           // kRow
  Tuple values;               // kRow
  std::vector<TupleId> tids;  // kConnection: partner tids, parent first
};

struct QueryResult {
  std::vector<OutputDesc> outputs;
  std::vector<StreamItem> stream;
  // A consistent post-execution snapshot: the executor accumulates into a
  // private ExecStats while workers run and copies it here only after every
  // worker has joined, so parallel runs report exact counters.
  ExecStats stats;
  // EXPLAIN ANALYZE (ExecOptions::analyze): one rendered plan tree per
  // output, annotated with actual rows/loops/wall time per operator.
  std::vector<std::string> plan_texts;
  // Always-on execution profile (ExecOptions::collect_profile): per-operator
  // -class totals aggregated over every output's finished plan tree, plus
  // the morsel-worker breakdown. The executor fills ops/workers/rows_out;
  // the Database adds wall time, queue wait and the memory high-water before
  // capturing it into its QueryProfileStore.
  obs::QueryProfile profile;
  // Plan-quality feedback (ExecOptions::collect_feedback): the canonical
  // plan-shape text over every output ("NAME=op(op(scan:T));..."), its hash,
  // and the per-operator estimated-vs-actual comparison. The Database folds
  // these into its PlanFeedbackStore (SYS$PLAN_FEEDBACK / SYS$PLAN_HISTORY).
  uint64_t plan_hash = 0;
  std::string plan_shape;
  std::vector<obs::OpFeedback> feedback;
  // Pre-dedup derivation counts (ExecOptions::collect_dedup_counts), keyed
  // by output index: for an XNF component output, tid -> how many produced
  // rows interned to that tid; for a connection output, partner-tid tuple ->
  // how many produced rows resolved to it. The matview store's counting
  // algorithm (src/matview/) consumes these for incremental delete
  // maintenance; plain multiset outputs need none (every row counts once).
  std::map<int, std::map<TupleId, int64_t>> component_counts;
  std::map<int, std::map<std::vector<TupleId>, int64_t>> connection_counts;

  // Index of the output named `name`, or -1.
  int FindOutput(const std::string& name) const;
  // All rows of output `idx`, in stream order.
  std::vector<Tuple> RowsOf(int idx) const;
  // Convenience for single-table SQL results.
  std::vector<Tuple> rows() const { return RowsOf(0); }
  size_t RowCount(int idx) const;
  size_t ConnectionCount(int idx) const;
};

struct ExecOptions {
  PlanOptions plan;
  // Evaluate the Top box's output streams on up to this many threads
  // (paper Sect. 5.1/6: applying parallelism to set-oriented CO
  // extraction). 1 = sequential.
  int parallel_workers = 1;
  // Rows pulled per executor batch from every output's plan root (and used
  // for plan-time spool materialization). 0 = XNFDB_BATCH_SIZE env var or
  // 1024; 1 reproduces tuple-at-a-time execution exactly.
  int batch_size = 0;
  // Morsel-driven intra-plan parallelism: when > 1 and an output's plan is
  // a streaming scan pipeline (filters/projections/join probe sides over a
  // base-table scan), up to this many workers claim row-range morsels of
  // the driving scan. Output order stays identical to sequential execution
  // (per-morsel buckets are reassembled in morsel order). 0 =
  // XNFDB_MORSEL_WORKERS env var or 1. Disabled in analyze mode.
  int morsel_workers = 0;
  // Rows per claimed morsel. 0 = XNFDB_MORSEL_ROWS env var or 2048.
  int64_t morsel_rows = 0;
  // EXPLAIN ANALYZE: instrument operators with wall-time measurement and
  // fill QueryResult::plan_texts with annotated plan trees.
  bool analyze = false;
  // Always-on profiling: aggregate every finished plan tree's actuals into
  // QueryResult::profile, with batch-granularity wall time (Open/NextBatch
  // only — the per-row Next path is never timed). Cheap enough to leave on;
  // XNFDB_QUERY_PROFILES=0 turns it off via Database.
  bool collect_profile = true;
  // Cardinality feedback + plan-shape hashing: fill QueryResult::plan_hash,
  // plan_shape and feedback at query end (one tree walk per finished plan,
  // no per-row work). XNFDB_PLAN_FEEDBACK=0 turns it off via Database.
  bool collect_feedback = true;
  // Fill QueryResult::component_counts / connection_counts with pre-dedup
  // derivation counts. Off by default (one map bump per produced row); the
  // Database enables it only on executions whose result it is about to
  // materialize, so the counts can seed incremental delta maintenance.
  bool collect_dedup_counts = false;
  // Per-query resource limits, consumed by Database (api/governor.h) when
  // it builds the query's context: -1 = use the governor's env-derived
  // default, 0 = explicitly unlimited, > 0 = this limit. Ignored by
  // ExecuteGraph itself (it only honours `context`).
  int64_t timeout_ms = -1;
  int64_t max_result_rows = -1;
  int64_t mem_budget_bytes = -1;
  // Observability sinks; both optional. When set, the executor records
  // plan/execute/deliver spans and phase-latency histograms, and publishes
  // the run's ExecStats into `metrics` under `exec.*`. Database::Query
  // fills these with its own tracer/registry when left null.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  // Resource-governance context (exec/query_context.h). When set, every
  // operator, morsel worker, spool build, and output pass checks it
  // cooperatively and charges produced rows / materialized bytes against
  // its limits. Shared so Database::Cancel can flip the flag while the
  // executor owns it. Null = ungoverned (no per-row overhead beyond one
  // null check).
  std::shared_ptr<QueryContext> context;
};

// Executes a graph whose XNF box (if any) has already been rewritten away.
Result<QueryResult> ExecuteGraph(const Catalog& catalog,
                                 const qgm::QueryGraph& graph,
                                 const ExecOptions& options = {});

}  // namespace xnfdb

#endif  // XNFDB_EXEC_EXECUTOR_H_
