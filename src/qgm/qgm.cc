#include "qgm/qgm.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

#include "common/str_util.h"

namespace xnfdb {
namespace qgm {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColRef(int quant_id, int column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColRef;
  e->quant_id = quant_id;
  e->column = column;
  return e;
}

ExprPtr Expr::MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  if (op == "AND") {
    e->bin_op = BinOp::kAnd;
  } else if (op == "OR") {
    e->bin_op = BinOp::kOr;
  } else if (op == "+") {
    e->bin_op = BinOp::kAdd;
  } else if (op == "-") {
    e->bin_op = BinOp::kSub;
  } else if (op == "*") {
    e->bin_op = BinOp::kMul;
  } else if (op == "/") {
    e->bin_op = BinOp::kDiv;
  } else if (ParseCompareOp(op, &e->cmp_op)) {
    e->bin_op = BinOp::kCmp;
  }
  e->op = std::move(op);
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr Expr::MakeUnary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->op = std::move(op);
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::MakeLike(ExprPtr operand, std::string pattern, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLike;
  e->lhs = std::move(operand);
  e->pattern = std::move(pattern);
  e->negated = negated;
  return e;
}

ExprPtr Expr::MakeAgg(std::string func, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAgg;
  e->op = std::move(func);
  e->lhs = std::move(arg);
  return e;
}

ExprPtr Expr::MakeFunc(std::string func, ExprPtr a, ExprPtr b) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFunc;
  e->op = std::move(func);
  e->lhs = std::move(a);
  e->rhs = std::move(b);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->quant_id = quant_id;
  e->column = column;
  e->op = op;
  e->bin_op = bin_op;
  e->cmp_op = cmp_op;
  e->pattern = pattern;
  e->negated = negated;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  return e;
}

void Expr::CollectQuants(std::vector<int>* out) const {
  if (kind == Kind::kColRef) {
    if (std::find(out->begin(), out->end(), quant_id) == out->end()) {
      out->push_back(quant_id);
    }
    return;
  }
  if (lhs) lhs->CollectQuants(out);
  if (rhs) rhs->CollectQuants(out);
}

std::string Expr::ToString(const QueryGraph* graph) const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kColRef: {
      std::string qname = "q" + std::to_string(quant_id);
      std::string cname = "#" + std::to_string(column);
      if (graph != nullptr) {
        const Quantifier* q = graph->FindQuant(quant_id);
        if (q != nullptr && !q->name.empty()) qname = q->name;
        const Box* ranged = graph->RangedBox(quant_id);
        if (ranged != nullptr &&
            static_cast<size_t>(column) < ranged->HeadArity()) {
          cname = ranged->HeadName(column);
        }
      }
      return qname + "." + cname;
    }
    case Kind::kBinary:
      return "(" + lhs->ToString(graph) + " " + op + " " +
             rhs->ToString(graph) + ")";
    case Kind::kUnary:
      return op + "(" + lhs->ToString(graph) + ")";
    case Kind::kLike:
      return lhs->ToString(graph) + (negated ? " NOT LIKE '" : " LIKE '") +
             pattern + "'";
    case Kind::kAgg:
      return op + "(" + (lhs ? lhs->ToString(graph) : "*") + ")";
    case Kind::kFunc:
      return op + "(" + (lhs ? lhs->ToString(graph) : "") +
             (rhs ? ", " + rhs->ToString(graph) : "") + ")";
  }
  return "?";
}

Status RemapQuant(Expr* e, int from, int to,
                  const std::vector<int>& column_map) {
  if (e->kind == Expr::Kind::kColRef && e->quant_id == from) {
    if (e->column < 0 || static_cast<size_t>(e->column) >= column_map.size() ||
        column_map[e->column] < 0) {
      return Status::Internal("RemapQuant: column " +
                              std::to_string(e->column) +
                              " has no mapping");
    }
    e->quant_id = to;
    e->column = column_map[e->column];
    return Status::Ok();
  }
  if (e->lhs) XNFDB_RETURN_IF_ERROR(RemapQuant(e->lhs.get(), from, to, column_map));
  if (e->rhs) XNFDB_RETURN_IF_ERROR(RemapQuant(e->rhs.get(), from, to, column_map));
  return Status::Ok();
}

bool RefersToQuant(const Expr& e, int quant_id) {
  if (e.kind == Expr::Kind::kColRef) return e.quant_id == quant_id;
  if (e.lhs && RefersToQuant(*e.lhs, quant_id)) return true;
  if (e.rhs && RefersToQuant(*e.rhs, quant_id)) return true;
  return false;
}

void SplitConjuncts(ExprPtr e, std::vector<ExprPtr>* out) {
  if (e->kind == Expr::Kind::kBinary && e->op == "AND") {
    SplitConjuncts(std::move(e->lhs), out);
    SplitConjuncts(std::move(e->rhs), out);
    return;
  }
  out->push_back(std::move(e));
}

// ---------------------------------------------------------------------------
// Box
// ---------------------------------------------------------------------------

const char* BoxKindName(BoxKind kind) {
  switch (kind) {
    case BoxKind::kBaseTable:
      return "BaseTable";
    case BoxKind::kSelect:
      return "Select";
    case BoxKind::kUnion:
      return "Union";
    case BoxKind::kXnf:
      return "XNF";
    case BoxKind::kTop:
      return "Top";
  }
  return "?";
}

std::string Box::HeadName(size_t i) const {
  if (kind == BoxKind::kBaseTable) {
    return i < base_schema.size() ? base_schema.column(i).name : "?";
  }
  return i < head.size() ? head[i].name : "?";
}

const Quantifier* Box::FindQuant(int qid) const {
  for (const Quantifier& q : quants) {
    if (q.id == qid) return &q;
  }
  return nullptr;
}

Quantifier* Box::FindQuant(int qid) {
  return const_cast<Quantifier*>(
      static_cast<const Box*>(this)->FindQuant(qid));
}

std::vector<const Quantifier*> Box::ForeachQuants() const {
  std::vector<const Quantifier*> out;
  for (const Quantifier& q : quants) {
    if (q.kind == QuantKind::kForeach) out.push_back(&q);
  }
  return out;
}

XnfComponent* Box::FindComponent(const std::string& name) {
  for (XnfComponent& c : components) {
    if (IdentEquals(c.name, name)) return &c;
  }
  return nullptr;
}

const XnfComponent* Box::FindComponent(const std::string& name) const {
  return const_cast<Box*>(this)->FindComponent(name);
}

// ---------------------------------------------------------------------------
// QueryGraph
// ---------------------------------------------------------------------------

Box* QueryGraph::NewBox(BoxKind kind, std::string label) {
  auto box = std::make_unique<Box>();
  box->id = static_cast<int>(boxes_.size());
  box->kind = kind;
  box->label = std::move(label);
  Box* raw = box.get();
  boxes_.push_back(std::move(box));
  dead_.push_back(false);
  return raw;
}

void QueryGraph::RegisterQuant(int quant_id, int owner_box_id) {
  if (static_cast<size_t>(quant_id) >= quant_owner_.size()) {
    quant_owner_.resize(quant_id + 1, -1);
  }
  quant_owner_[quant_id] = owner_box_id;
}

int QuantOwnerBoxImplUnused();  // silence -Wunused in some toolchains

int QueryGraph::QuantOwnerBox(int quant_id) const {
  if (quant_id < 0 || static_cast<size_t>(quant_id) >= quant_owner_.size()) {
    return -1;
  }
  return quant_owner_[quant_id];
}

const Quantifier* QueryGraph::FindQuant(int quant_id) const {
  int owner = QuantOwnerBox(quant_id);
  if (owner < 0) return nullptr;
  return box(owner)->FindQuant(quant_id);
}

const Box* QueryGraph::RangedBox(int quant_id) const {
  const Quantifier* q = FindQuant(quant_id);
  if (q == nullptr || q->box_id < 0) return nullptr;
  return box(q->box_id);
}

std::vector<int> QueryGraph::Consumers(int box_id) const {
  std::vector<int> out;
  for (const auto& b : boxes_) {
    if (dead_[b->id]) continue;
    bool consumes = false;
    for (const Quantifier& q : b->quants) {
      if (q.box_id == box_id) consumes = true;
    }
    for (int in : b->union_inputs) {
      if (in == box_id) consumes = true;
    }
    if (b->kind == BoxKind::kTop) {
      for (const TopOutput& o : b->outputs) {
        if (o.box_id == box_id) consumes = true;
      }
    }
    if (b->kind == BoxKind::kXnf) {
      for (const XnfComponent& c : b->components) {
        if (c.box_id == box_id) consumes = true;
      }
    }
    if (consumes) out.push_back(b->id);
  }
  return out;
}

int QueryGraph::ConsumerRefCount(int box_id) const {
  int refs = 0;
  for (const auto& b : boxes_) {
    if (dead_[b->id]) continue;
    for (const Quantifier& q : b->quants) {
      if (q.box_id == box_id) ++refs;
    }
    for (int in : b->union_inputs) {
      if (in == box_id) ++refs;
    }
    for (const TopOutput& o : b->outputs) {
      if (o.box_id == box_id) ++refs;
    }
    for (const XnfComponent& c : b->components) {
      if (c.box_id == box_id) ++refs;
    }
  }
  return refs;
}

Result<DataType> QueryGraph::HeadType(int box_id, size_t i) const {
  const Box* b = box(box_id);
  if (b->kind == BoxKind::kBaseTable) {
    if (i >= b->base_schema.size()) {
      return Status::Internal("head column out of range");
    }
    return b->base_schema.column(i).type;
  }
  if (b->kind == BoxKind::kUnion) {
    if (b->union_inputs.empty()) {
      return Status::Internal("union box without inputs");
    }
    return HeadType(b->union_inputs[0], i);
  }
  if (i >= b->head.size()) {
    return Status::Internal("head column out of range");
  }
  if (b->head[i].expr == nullptr) {
    return Status::Internal("head column without expression");
  }
  return InferType(*b->head[i].expr);
}

Result<DataType> QueryGraph::InferType(const Expr& e) const {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal.type();
    case Expr::Kind::kColRef: {
      const Quantifier* q = FindQuant(e.quant_id);
      if (q == nullptr) {
        return Status::Internal("unresolvable quantifier q" +
                                std::to_string(e.quant_id));
      }
      return HeadType(q->box_id, e.column);
    }
    case Expr::Kind::kBinary: {
      if (e.op == "AND" || e.op == "OR" || e.op == "=" || e.op == "<>" ||
          e.op == "<" || e.op == "<=" || e.op == ">" || e.op == ">=") {
        return DataType::kBool;
      }
      XNFDB_ASSIGN_OR_RETURN(DataType lt, InferType(*e.lhs));
      XNFDB_ASSIGN_OR_RETURN(DataType rt, InferType(*e.rhs));
      if (e.op == "/") return DataType::kDouble;
      if (lt == DataType::kDouble || rt == DataType::kDouble) {
        return DataType::kDouble;
      }
      return lt == DataType::kNull ? rt : lt;
    }
    case Expr::Kind::kUnary:
      if (e.op == "NOT") return DataType::kBool;
      return InferType(*e.lhs);
    case Expr::Kind::kLike:
      return DataType::kBool;
    case Expr::Kind::kAgg: {
      if (e.op == "COUNT") return DataType::kInt;
      if (e.op == "AVG") return DataType::kDouble;
      if (e.lhs == nullptr) return DataType::kInt;
      return InferType(*e.lhs);
    }
    case Expr::Kind::kFunc: {
      if (e.op == "LENGTH") return DataType::kInt;
      if (e.op == "ABS" || e.op == "ROUND" || e.op == "MOD") {
        return e.lhs ? InferType(*e.lhs) : DataType::kInt;
      }
      return DataType::kString;  // UPPER/LOWER/CONCAT
    }
  }
  return Status::Internal("unknown expression kind");
}

namespace {

Status ValidateExpr(const QueryGraph& g, const Box& b, const Expr& e,
                    const std::vector<int>& visible_quants) {
  if (e.kind == Expr::Kind::kColRef) {
    if (std::find(visible_quants.begin(), visible_quants.end(), e.quant_id) ==
        visible_quants.end()) {
      return Status::Internal("box " + std::to_string(b.id) + " (" + b.label +
                              "): expression references q" +
                              std::to_string(e.quant_id) +
                              " which is not declared in its body");
    }
    const Quantifier* q = g.FindQuant(e.quant_id);
    if (q == nullptr) {
      return Status::Internal("unregistered quantifier q" +
                              std::to_string(e.quant_id));
    }
    const Box* ranged = g.box(q->box_id);
    if (e.column < 0 ||
        static_cast<size_t>(e.column) >= ranged->HeadArity()) {
      return Status::Internal(
          "column #" + std::to_string(e.column) + " out of range for box " +
          std::to_string(ranged->id) + " (" + ranged->label + ")");
    }
  }
  if (e.lhs) XNFDB_RETURN_IF_ERROR(ValidateExpr(g, b, *e.lhs, visible_quants));
  if (e.rhs) XNFDB_RETURN_IF_ERROR(ValidateExpr(g, b, *e.rhs, visible_quants));
  return Status::Ok();
}

}  // namespace

Status QueryGraph::Validate() const {
  for (const auto& bptr : boxes_) {
    const Box& b = *bptr;
    if (dead_[b.id]) continue;
    std::vector<int> visible;
    for (const Quantifier& q : b.quants) {
      visible.push_back(q.id);
      if (QuantOwnerBox(q.id) != b.id) {
        return Status::Internal("quantifier q" + std::to_string(q.id) +
                                " owner registry mismatch in box " +
                                std::to_string(b.id));
      }
      if (q.box_id < 0 || static_cast<size_t>(q.box_id) >= boxes_.size()) {
        return Status::Internal("quantifier over unknown box");
      }
      if (dead_[q.box_id]) {
        return Status::Internal("box " + std::to_string(b.id) + " (" +
                                b.label + ") ranges over dead box " +
                                std::to_string(q.box_id));
      }
    }
    for (const HeadColumn& h : b.head) {
      if (h.expr) XNFDB_RETURN_IF_ERROR(ValidateExpr(*this, b, *h.expr, visible));
    }
    for (const ExprPtr& p : b.preds) {
      XNFDB_RETURN_IF_ERROR(ValidateExpr(*this, b, *p, visible));
    }
    for (const ExistsGroup& grp : b.exists_groups) {
      for (int qid : grp.quant_ids) {
        if (b.FindQuant(qid) == nullptr) {
          return Status::Internal("exists-group quantifier q" +
                                  std::to_string(qid) +
                                  " not declared in box body");
        }
      }
      for (const ExprPtr& p : grp.preds) {
        XNFDB_RETURN_IF_ERROR(ValidateExpr(*this, b, *p, visible));
      }
    }
    for (const ExprPtr& gexpr : b.group_by) {
      XNFDB_RETURN_IF_ERROR(ValidateExpr(*this, b, *gexpr, visible));
    }
    if (b.kind == BoxKind::kUnion) {
      if (b.union_inputs.empty()) {
        return Status::Internal("union box without inputs");
      }
      size_t arity = box(b.union_inputs[0])->HeadArity();
      for (int in : b.union_inputs) {
        if (dead_[in]) return Status::Internal("union over dead box");
        if (box(in)->HeadArity() != arity) {
          return Status::Internal("union input arity mismatch");
        }
      }
    }
  }
  return Status::Ok();
}

std::string QueryGraph::ToString() const {
  std::ostringstream os;
  for (const auto& bptr : boxes_) {
    const Box& b = *bptr;
    if (dead_[b.id]) continue;
    os << "Box " << b.id << " [" << BoxKindName(b.kind) << "]";
    if (!b.label.empty()) os << " '" << b.label << "'";
    if (b.distinct) os << " DISTINCT";
    os << "\n";
    if (b.kind == BoxKind::kBaseTable) {
      os << "  table: " << b.table_name << " (" << b.base_schema.ToString()
         << ")\n";
      continue;
    }
    if (!b.head.empty()) {
      os << "  head:";
      for (const HeadColumn& h : b.head) {
        os << " " << h.name << "="
           << (h.expr ? h.expr->ToString(this) : "?");
      }
      os << "\n";
    }
    for (const Quantifier& q : b.quants) {
      bool in_group = false;
      for (const ExistsGroup& grp : b.exists_groups) {
        for (int qid : grp.quant_ids) {
          if (qid == q.id) in_group = true;
        }
      }
      os << "  quant q" << q.id << " '" << q.name << "' ["
         << (q.kind == QuantKind::kForeach ? "F" : "E")
         << (in_group ? ", grouped" : "") << "] over box " << q.box_id
         << "\n";
    }
    for (const ExprPtr& p : b.preds) {
      os << "  pred: " << p->ToString(this) << "\n";
    }
    for (size_t gi = 0; gi < b.exists_groups.size(); ++gi) {
      os << "  exists-group " << gi << ":";
      for (int qid : b.exists_groups[gi].quant_ids) os << " q" << qid;
      for (const ExprPtr& p : b.exists_groups[gi].preds) {
        os << " | " << p->ToString(this);
      }
      os << "\n";
    }
    for (const ExprPtr& gexpr : b.group_by) {
      os << "  group-by: " << gexpr->ToString(this) << "\n";
    }
    if (b.kind == BoxKind::kUnion) {
      os << "  union of boxes:";
      for (int in : b.union_inputs) os << " " << in;
      os << "\n";
    }
    for (const XnfComponent& c : b.components) {
      os << "  component '" << c.name << "'"
         << (c.is_relationship ? " [relationship]" : " [table]")
         << (c.reachable ? " R" : "") << (c.is_root ? " root" : "")
         << " box " << c.box_id;
      if (c.is_relationship) {
        os << " parent=" << c.parent << " children=" << Join(c.children, ",");
        if (!c.role.empty()) os << " via " << c.role;
      }
      os << "\n";
    }
    for (const TopOutput& o : b.outputs) {
      os << "  output '" << o.name << "' box " << o.box_id
         << (o.is_connection ? " [connection]" : "") << "\n";
    }
  }
  if (top_box_id_ >= 0) os << "Top box: " << top_box_id_ << "\n";
  return os.str();
}

int AddQuant(QueryGraph* graph, Box* box, QuantKind kind, int ranged_box,
             std::string name) {
  Quantifier q;
  q.id = graph->AllocQuantId();
  q.kind = kind;
  q.name = std::move(name);
  q.box_id = ranged_box;
  box->quants.push_back(std::move(q));
  graph->RegisterQuant(box->quants.back().id, box->id);
  return box->quants.back().id;
}

}  // namespace qgm
}  // namespace xnfdb
