#include "qgm/dot.h"

#include <set>
#include <sstream>
#include <vector>

namespace xnfdb {
namespace qgm {

namespace {

// DOT-escapes record-label text.
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\' || c == '{' || c == '}' || c == '|' ||
        c == '<' || c == '>') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

std::set<int> LiveBoxes(const QueryGraph& graph) {
  std::set<int> live;
  std::vector<int> work;
  if (graph.top_box_id() >= 0) {
    work.push_back(graph.top_box_id());
    // Before the XNF semantic rewrite the Top box has no outputs yet; the
    // XNF operator boxes anchor the graph instead.
    for (size_t i = 0; i < graph.box_count(); ++i) {
      const Box* b = graph.box(static_cast<int>(i));
      if (!graph.IsDead(b->id) && b->kind == BoxKind::kXnf) {
        work.push_back(b->id);
      }
    }
  } else {
    for (size_t i = 0; i < graph.box_count(); ++i) {
      if (!graph.IsDead(static_cast<int>(i))) {
        work.push_back(static_cast<int>(i));
      }
    }
  }
  while (!work.empty()) {
    int id = work.back();
    work.pop_back();
    if (id < 0 || graph.IsDead(id) || !live.insert(id).second) continue;
    const Box* b = graph.box(id);
    for (const Quantifier& q : b->quants) work.push_back(q.box_id);
    for (int in : b->union_inputs) work.push_back(in);
    for (const TopOutput& o : b->outputs) work.push_back(o.box_id);
    for (const XnfComponent& c : b->components) work.push_back(c.box_id);
  }
  return live;
}

}  // namespace

std::string ToDot(const QueryGraph& graph) {
  std::ostringstream os;
  os << "digraph qgm {\n"
     << "  rankdir=BT;\n"
     << "  node [shape=record, fontsize=10];\n";
  std::set<int> live = LiveBoxes(graph);

  for (int id : live) {
    const Box* b = graph.box(id);
    std::ostringstream label;
    label << BoxKindName(b->kind) << " " << id;
    if (!b->label.empty()) label << " '" << Escape(b->label) << "'";
    if (b->distinct) label << " DISTINCT";
    if (b->kind == BoxKind::kBaseTable) {
      label << "|" << Escape(b->table_name);
    }
    if (!b->head.empty()) {
      label << "|head:";
      for (size_t i = 0; i < b->head.size(); ++i) {
        if (i > 0) label << ", ";
        label << Escape(b->head[i].name);
      }
    }
    for (const ExprPtr& p : b->preds) {
      label << "|" << Escape(p->ToString(&graph));
    }
    for (size_t gi = 0; gi < b->exists_groups.size(); ++gi) {
      const ExistsGroup& g = b->exists_groups[gi];
      label << "|" << (g.negated ? "NOT " : "") << "EXISTS["
            << gi << "]";
      for (const ExprPtr& p : g.preds) {
        label << " " << Escape(p->ToString(&graph));
      }
    }
    for (const XnfComponent& c : b->components) {
      label << "|" << Escape(c.name)
            << (c.is_relationship ? " (rel)" : "")
            << (c.reachable ? " R" : "") << (c.is_root ? " root" : "");
    }
    os << "  b" << id << " [label=\"{" << label.str() << "}\"";
    if (b->kind == BoxKind::kXnf) os << ", style=filled, fillcolor=gray90";
    if (b->kind == BoxKind::kTop) os << ", style=bold";
    os << "];\n";
  }

  for (int id : live) {
    const Box* b = graph.box(id);
    for (const Quantifier& q : b->quants) {
      bool existential = q.kind == QuantKind::kExists;
      os << "  b" << id << " -> b" << q.box_id << " [label=\""
         << Escape(q.name) << (existential ? " (E)" : " (F)") << "\""
         << (existential ? ", style=dashed" : "") << "];\n";
    }
    for (int in : b->union_inputs) {
      os << "  b" << id << " -> b" << in << " [label=\"union\"];\n";
    }
    for (const TopOutput& o : b->outputs) {
      os << "  b" << id << " -> b" << o.box_id << " [label=\""
         << Escape(o.name) << (o.is_connection ? " (conn)" : "")
         << "\", style=bold];\n";
    }
    for (const XnfComponent& c : b->components) {
      os << "  b" << id << " -> b" << c.box_id << " [label=\""
         << Escape(c.name) << "\", color=gray50];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace qgm
}  // namespace xnfdb
