// Graphviz (DOT) rendering of a query graph — the tool-of-choice for
// visualizing the Fig. 3/4/5 box diagrams of the paper. Render with e.g.
// `dot -Tsvg graph.dot -o graph.svg`.

#ifndef XNFDB_QGM_DOT_H_
#define XNFDB_QGM_DOT_H_

#include <string>

#include "qgm/qgm.h"

namespace xnfdb {
namespace qgm {

// Renders all live boxes reachable from the Top box (or every live box if
// the graph has no Top). Boxes become record nodes listing head columns and
// predicates; quantifier edges are labelled F/E (dashed for existential),
// union inputs and Top outputs get their own edge styles, and XNF
// components are annotated with their reachability marks.
std::string ToDot(const QueryGraph& graph);

}  // namespace qgm
}  // namespace xnfdb

#endif  // XNFDB_QGM_DOT_H_
