// The Query Graph Model (QGM) — xnfdb's internal query representation,
// modelled after Starburst's QGM (paper Sect. 3.2, Fig. 3/4).
//
// A query is a graph of *boxes*. Each box has a *head* (the output columns it
// produces) and a *body* (how the output is derived): quantifiers ranging
// over other boxes plus predicates. Quantifier kinds follow Starburst:
//   F (ForEach)  — contributes rows (join semantics),
//   E (Exists)   — existential check (subquery semantics).
//
// Extensions for XNF (paper Sect. 4.1):
//  * a kXnf box whose body holds the component/relationship boxes of a
//    composite object together with reachability marks ('R' in Fig. 4), and
//  * a kTop box able to output several heterogeneous streams (component rows
//    and connection tuples) instead of a single table.
//
// Disjunctive reachability (a component reachable through *any* of several
// relationships, like xskills in Fig. 1) is modelled by `ExistsGroup`s: a row
// qualifies if all ordinary predicates hold AND at least one exists-group
// matches.

#ifndef XNFDB_QGM_QGM_H_
#define XNFDB_QGM_QGM_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace xnfdb {
namespace qgm {

class QueryGraph;

// ---------------------------------------------------------------------------
// Scalar expressions over quantifier columns
// ---------------------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kLiteral,
    kColRef,    // column `column` of quantifier `quant_id`
    kBinary,    // op in {AND OR = <> < <= > >= + - * /}
    kUnary,     // op in {NOT, -}
    kLike,
    kAgg,       // COUNT/SUM/MIN/MAX/AVG over lhs (lhs null => COUNT(*))
    kFunc,      // scalar function `op` over lhs [, rhs]
  };

  // Dispatch tag for kBinary, resolved from `op` once in MakeBinary so the
  // evaluator never string-matches the operator per row.
  enum class BinOp {
    kNone,  // non-binary node, or unrecognized `op` (evaluation error)
    kAnd,
    kOr,
    kCmp,  // cmp_op holds which comparison
    kAdd,
    kSub,
    kMul,
    kDiv,
  };

  Kind kind = Kind::kLiteral;

  Value literal;          // kLiteral
  int quant_id = -1;      // kColRef
  int column = -1;        // kColRef
  std::string op;         // kBinary / kUnary / kAgg (function name)
  BinOp bin_op = BinOp::kNone;          // kBinary
  CompareOp cmp_op = CompareOp::kEq;    // kBinary when bin_op == kCmp
  ExprPtr lhs;            // kBinary lhs, kUnary operand, kLike operand, kAgg arg
  ExprPtr rhs;            // kBinary rhs
  std::string pattern;    // kLike
  bool negated = false;   // kLike

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColRef(int quant_id, int column);
  static ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeUnary(std::string op, ExprPtr operand);
  static ExprPtr MakeLike(ExprPtr operand, std::string pattern, bool negated);
  static ExprPtr MakeAgg(std::string func, ExprPtr arg);
  static ExprPtr MakeFunc(std::string func, ExprPtr a, ExprPtr b = nullptr);

  ExprPtr Clone() const;

  // Collects the quantifier ids referenced anywhere in this expression.
  void CollectQuants(std::vector<int>* out) const;

  // Rendering like "q0.DNO = q1.EDNO" (uses quantifier names from `graph`).
  std::string ToString(const QueryGraph* graph) const;
};

// Replaces every reference to quantifier `from` by quantifier `to`,
// translating column indexes through `column_map` (column_map[i] is the
// column index in `to` corresponding to column i of `from`; -1 = invalid).
Status RemapQuant(Expr* e, int from, int to, const std::vector<int>& column_map);

// True if the expression references `quant_id`.
bool RefersToQuant(const Expr& e, int quant_id);

// ---------------------------------------------------------------------------
// Boxes and quantifiers
// ---------------------------------------------------------------------------

enum class QuantKind {
  kForeach,  // F — join semantics
  kExists,   // E — existential semantics (within an ExistsGroup)
};

struct Quantifier {
  int id = -1;
  QuantKind kind = QuantKind::kForeach;
  std::string name;  // range-variable name, for display
  int box_id = -1;   // the box this quantifier ranges over
};

// One alternative of a disjunctive existential predicate: the row qualifies
// if the E-quantifiers in `quant_ids` admit a binding satisfying `preds`.
// A negated group (NOT EXISTS / NOT IN) qualifies when NO binding exists.
struct ExistsGroup {
  std::vector<int> quant_ids;
  std::vector<ExprPtr> preds;
  bool negated = false;
};

struct HeadColumn {
  std::string name;
  ExprPtr expr;  // over the body's F-quantifiers
};

enum class BoxKind {
  kBaseTable,
  kSelect,
  kUnion,
  kXnf,
  kTop,
};

const char* BoxKindName(BoxKind kind);

// Metadata for one component of an XNF box (paper Fig. 4): either a
// component table (node) or a relationship (edge).
struct XnfComponent {
  std::string name;
  bool is_relationship = false;
  bool reachable = false;  // the 'R' mark: must be reachable from a parent
  bool is_root = false;    // anchor component
  bool taken = false;      // appears in TAKE (is an output)
  int box_id = -1;         // the box deriving this component

  // Set by the XNF semantic rewrite: the reachability-filtered derivation.
  int final_box_id = -1;

  // CO composition (closure): this component's candidates are the extent
  // of component `import_component` of the XNF box `import_xnf_box`
  // (an imported sub-view compiled into the same graph). `box_id` is then
  // an identity wrapper that the rewrite re-points at the import's final
  // derivation.
  int import_xnf_box = -1;
  std::string import_component;

  // Relationship-only fields.
  std::string parent;
  std::string role;
  std::vector<std::string> children;
  std::vector<std::string> take_columns;  // TAKE projection, empty = all
};

// One output stream of the TOP box (heterogeneous answer set, Sect. 4.1).
struct TopOutput {
  std::string name;       // component / relationship name
  int box_id = -1;        // box producing the stream
  bool is_connection = false;
  // True for XNF component-table streams: rows get system-generated tuple
  // ids and are deduplicated (object sharing, Sect. 2). False for plain SQL
  // results, which keep multiset semantics.
  bool xnf_component = false;

  // Component streams: projection (TAKE columns) as head indexes of box_id.
  std::vector<int> cols;

  // Connection streams: the head of `box_id` is the concatenation of the
  // partner components' columns. partner_names[i] identifies the component;
  // partner_cols[i] are the head indexes carrying that partner's (projected)
  // columns; partner_arity[i] == partner_cols[i].size().
  std::vector<std::string> partner_names;
  std::vector<int> partner_arity;
  std::vector<std::vector<int>> partner_cols;
};

struct Box {
  int id = -1;
  BoxKind kind = BoxKind::kSelect;
  std::string label;

  // kBaseTable.
  std::string table_name;
  Schema base_schema;

  // Head (kSelect, kUnion; base tables derive theirs from base_schema).
  std::vector<HeadColumn> head;
  bool distinct = false;

  // Body (kSelect, kTop).
  std::vector<Quantifier> quants;
  std::vector<ExprPtr> preds;  // conjunctive
  // Existential groups. With groups_disjunctive a row qualifies when ANY
  // group matches (OR — the shape of disjunctive XNF reachability and of
  // `EXISTS(..) OR EXISTS(..)`); otherwise ALL groups must match
  // (ordinary conjunctive EXISTS predicates).
  std::vector<ExistsGroup> exists_groups;
  bool groups_disjunctive = false;
  std::vector<ExprPtr> group_by;

  // Top-level ordering: pairs of (head column index, descending).
  std::vector<std::pair<int, bool>> order_by;

  // Row limiting, applied after ordering: emit at most `limit` rows
  // (-1 = unlimited) after skipping `offset`.
  int64_t limit = -1;
  int64_t offset = 0;

  // kUnion: input box ids; all heads must have equal arity.
  std::vector<int> union_inputs;

  // kXnf.
  std::vector<XnfComponent> components;

  // kTop.
  std::vector<TopOutput> outputs;

  // Number of output columns.
  size_t HeadArity() const {
    return kind == BoxKind::kBaseTable ? base_schema.size() : head.size();
  }
  // Output column name.
  std::string HeadName(size_t i) const;

  // The quantifier with `id` declared in this box's body (incl. exists
  // groups), or nullptr.
  const Quantifier* FindQuant(int id) const;
  Quantifier* FindQuant(int id);

  // F-quantifiers only (not part of any exists group).
  std::vector<const Quantifier*> ForeachQuants() const;

  // Finds the XNF component by name (kXnf boxes), or nullptr.
  XnfComponent* FindComponent(const std::string& name);
  const XnfComponent* FindComponent(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// The graph
// ---------------------------------------------------------------------------

class QueryGraph {
 public:
  QueryGraph() = default;
  QueryGraph(const QueryGraph&) = delete;
  QueryGraph& operator=(const QueryGraph&) = delete;

  Box* NewBox(BoxKind kind, std::string label = "");
  Box* box(int id) { return boxes_[id].get(); }
  const Box* box(int id) const { return boxes_[id].get(); }
  size_t box_count() const { return boxes_.size(); }

  // Boxes are never physically deleted (ids stay stable); dead boxes are
  // flagged and skipped by consumers/printers.
  void MarkDead(int id) { dead_[id] = true; }
  bool IsDead(int id) const { return dead_[id]; }

  int AllocQuantId() { return next_quant_id_++; }

  int top_box_id() const { return top_box_id_; }
  void set_top_box_id(int id) { top_box_id_ = id; }

  // Declares quantifier ownership so colrefs can be resolved globally.
  // Called by builders after adding a quantifier to a box body.
  void RegisterQuant(int quant_id, int owner_box_id);

  // The box that declares `quant_id` in its body, or -1.
  int QuantOwnerBox(int quant_id) const;
  // The box a quantifier ranges over, or nullptr.
  const Box* RangedBox(int quant_id) const;
  // The quantifier record, or nullptr.
  const Quantifier* FindQuant(int quant_id) const;

  // All live boxes having a quantifier (or union input) over `box_id`.
  std::vector<int> Consumers(int box_id) const;

  // Total number of live references to `box_id` (quantifiers, union
  // inputs, top outputs, XNF components). A self-join over one box counts
  // twice — the planner uses this to decide spooling.
  int ConsumerRefCount(int box_id) const;

  // Output type of head column `i` of `box_id` (resolving through colrefs).
  Result<DataType> HeadType(int box_id, size_t i) const;
  // Type of an expression evaluated in the context of any box.
  Result<DataType> InferType(const Expr& e) const;

  // Structural sanity checks: colrefs resolve, quantifier registry matches,
  // union arities agree, no dangling box references.
  Status Validate() const;

  // Multi-line rendering of the whole graph (Fig. 4-style, textual).
  std::string ToString() const;

 private:
  std::vector<std::unique_ptr<Box>> boxes_;
  std::vector<bool> dead_;
  std::vector<int> quant_owner_;  // quant id -> box id
  int next_quant_id_ = 0;
  int top_box_id_ = -1;
};

// Convenience: appends a fresh F/E quantifier over `ranged_box` to `box`'s
// body (not to an exists group) and registers it. Returns its id.
int AddQuant(QueryGraph* graph, Box* box, QuantKind kind, int ranged_box,
             std::string name);

// Splits a boolean expression into its top-level conjuncts.
void SplitConjuncts(ExprPtr e, std::vector<ExprPtr>* out);

}  // namespace qgm
}  // namespace xnfdb

#endif  // XNFDB_QGM_QGM_H_
