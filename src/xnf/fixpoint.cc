#include "xnf/fixpoint.h"

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "exec/expr_eval.h"
#include "optimizer/planner.h"

namespace xnfdb {

namespace {

using qgm::Box;
using qgm::BoxKind;
using qgm::QueryGraph;
using qgm::XnfComponent;

Result<const Box*> FindXnf(const QueryGraph& graph) {
  const Box* found = nullptr;
  for (size_t i = 0; i < graph.box_count(); ++i) {
    const Box* b = graph.box(static_cast<int>(i));
    if (graph.IsDead(b->id) || b->kind != BoxKind::kXnf) continue;
    if (found != nullptr) {
      return Status::Unsupported(
          "recursive XNF queries cannot use CO composition");
    }
    found = b;
  }
  if (found == nullptr) {
    return Status::InvalidArgument(
        "fixpoint evaluator requires a graph with an XNF box");
  }
  return found;
}

// Value-interned candidate rows of one component.
struct Candidates {
  std::vector<Tuple> rows;
  std::unordered_map<Tuple, size_t, TupleHash, TupleEq> index;
  std::vector<bool> reachable;

  size_t Intern(const Tuple& row) {
    auto [it, inserted] = index.emplace(row, rows.size());
    if (inserted) {
      rows.push_back(row);
      reachable.push_back(false);
    }
    return it->second;
  }
  // Index of `row` or npos.
  size_t Find(const Tuple& row) const {
    auto it = index.find(row);
    return it == index.end() ? static_cast<size_t>(-1) : it->second;
  }
};

// One candidate connection: partner row indexes, parent first.
struct CandidateConnection {
  std::vector<size_t> partners;
};

Result<std::vector<int>> ProjectionIndexes(const Box& box,
                                           const std::vector<std::string>& cols) {
  std::vector<int> out;
  if (cols.empty()) {
    for (size_t i = 0; i < box.HeadArity(); ++i) out.push_back(int(i));
    return out;
  }
  for (const std::string& name : cols) {
    int idx = -1;
    for (size_t i = 0; i < box.HeadArity(); ++i) {
      if (IdentEquals(box.HeadName(i), name)) {
        idx = static_cast<int>(i);
        break;
      }
    }
    if (idx < 0) {
      return Status::SemanticError("TAKE column '" + name +
                                   "' not found in component " + box.label);
    }
    out.push_back(idx);
  }
  return out;
}

Tuple Slice(const Tuple& row, size_t offset, size_t arity) {
  return Tuple(row.begin() + offset, row.begin() + offset + arity);
}

Tuple Project(const Tuple& row, const std::vector<int>& cols) {
  Tuple out;
  out.reserve(cols.size());
  for (int c : cols) out.push_back(row[c]);
  return out;
}

}  // namespace

Result<QueryResult> ExecuteXnfFixpoint(const Catalog& catalog,
                                       const QueryGraph& graph,
                                       const ExecOptions& options) {
  XNFDB_ASSIGN_OR_RETURN(const Box* xnf, FindXnf(graph));
  QueryResult result;
  QueryContext* ctx = options.context.get();
  PlanOptions plan_options = options.plan;
  plan_options.context = ctx;  // governs candidate materialization drains
  Planner planner(&catalog, &graph, plan_options, &result.stats);

  // 1. Materialize candidates per component table.
  std::map<std::string, Candidates> candidates;
  size_t total_candidates = 0;
  for (const XnfComponent& c : xnf->components) {
    if (c.is_relationship) continue;
    XNFDB_ASSIGN_OR_RETURN(auto rows, planner.MaterializeBox(c.box_id));
    Candidates& cand = candidates[c.name];
    for (const Tuple& row : *rows) {
      // The interning table holds a second copy of each candidate row on
      // top of the spool charged inside MaterializeBox.
      if (ctx != nullptr) {
        XNFDB_RETURN_IF_ERROR(ctx->ReserveBytes(ApproxTupleBytes(row)));
      }
      cand.Intern(row);
    }
    total_candidates += cand.rows.size();
    if (c.is_root || !c.reachable) {
      cand.reachable.assign(cand.rows.size(), true);
    }
    if (ctx != nullptr) XNFDB_RETURN_IF_ERROR(ctx->Check());
  }

  // 2. Materialize candidate connections per relationship.
  std::map<std::string, std::vector<CandidateConnection>> connections;
  for (const XnfComponent& r : xnf->components) {
    if (!r.is_relationship) continue;
    XNFDB_ASSIGN_OR_RETURN(auto rows, planner.MaterializeBox(r.box_id));
    std::vector<std::string> partners;
    partners.push_back(r.parent);
    for (const std::string& c : r.children) partners.push_back(c);
    std::vector<CandidateConnection>& conns = connections[r.name];
    for (const Tuple& row : *rows) {
      CandidateConnection conn;
      size_t offset = 0;
      bool ok = true;
      for (const std::string& partner : partners) {
        const XnfComponent* pc = xnf->FindComponent(partner);
        size_t arity = graph.box(pc->box_id)->HeadArity();
        Tuple part = Slice(row, offset, arity);
        offset += arity;
        size_t idx = candidates[partner].Find(part);
        if (idx == static_cast<size_t>(-1)) {
          ok = false;  // partner row filtered out of its candidates
          break;
        }
        conn.partners.push_back(idx);
      }
      if (ok) conns.push_back(std::move(conn));
    }
    if (ctx != nullptr) XNFDB_RETURN_IF_ERROR(ctx->Check());
  }

  // 3. Least fixpoint of the reachability rule. Each productive iteration
  // marks at least one new candidate reachable, so the fixpoint must settle
  // within total_candidates + 1 passes — exceeding that bound means the
  // monotonicity invariant broke and the loop would spin forever.
  const size_t max_iterations = total_candidates + 1;
  size_t iterations = 0;
  bool changed = true;
  while (changed) {
    if (ctx != nullptr) XNFDB_RETURN_IF_ERROR(ctx->Check());
    if (++iterations > max_iterations) {
      return Status::Internal(
          "fixpoint failed to converge after " +
          std::to_string(iterations - 1) + " iterations over " +
          std::to_string(total_candidates) + " candidate rows");
    }
    changed = false;
    for (const XnfComponent& r : xnf->components) {
      if (!r.is_relationship) continue;
      Candidates& parent_cand = candidates[r.parent];
      for (const CandidateConnection& conn : connections[r.name]) {
        if (!parent_cand.reachable[conn.partners[0]]) continue;
        for (size_t ci = 0; ci < r.children.size(); ++ci) {
          Candidates& child_cand = candidates[r.children[ci]];
          if (!child_cand.reachable[conn.partners[1 + ci]]) {
            child_cand.reachable[conn.partners[1 + ci]] = true;
            changed = true;
          }
        }
      }
    }
  }

  // 4. Emit the heterogeneous stream, mirroring the rewrite path's shape.
  struct TidMap {
    std::unordered_map<Tuple, TupleId, TupleHash, TupleEq> ids;
    TupleId next = 0;
  };
  std::map<std::string, TidMap> tids;
  std::map<std::string, std::vector<int>> take_cols;
  std::map<std::string, int> output_index;

  for (const XnfComponent& c : xnf->components) {
    if (c.is_relationship || !c.taken) continue;
    const Box* box = graph.box(c.box_id);
    XNFDB_ASSIGN_OR_RETURN(std::vector<int> cols,
                           ProjectionIndexes(*box, c.take_columns));
    take_cols[c.name] = cols;
    OutputDesc desc;
    desc.name = c.name;
    for (int col : cols) {
      Column column;
      column.name = box->HeadName(col);
      Result<DataType> t = graph.HeadType(c.box_id, col);
      column.type = t.ok() ? t.value() : DataType::kNull;
      desc.schema.AddColumn(std::move(column));
    }
    output_index[c.name] = static_cast<int>(result.outputs.size());
    result.outputs.push_back(std::move(desc));

    Candidates& cand = candidates[c.name];
    TidMap& map = tids[c.name];
    for (size_t i = 0; i < cand.rows.size(); ++i) {
      if (!cand.reachable[i]) continue;
      Tuple projected = Project(cand.rows[i], cols);
      auto [it, inserted] = map.ids.emplace(projected, map.next);
      if (!inserted) continue;
      ++map.next;
      if (ctx != nullptr) XNFDB_RETURN_IF_ERROR(ctx->ChargeOutputRows(1));
      StreamItem item;
      item.kind = StreamItem::Kind::kRow;
      item.output = output_index[c.name];
      item.tid = it->second;
      item.values = std::move(projected);
      ++result.stats.rows_output;
      result.stream.push_back(std::move(item));
    }
  }

  for (const XnfComponent& r : xnf->components) {
    if (!r.is_relationship || !r.taken) continue;
    std::vector<std::string> partners;
    partners.push_back(r.parent);
    for (const std::string& c : r.children) partners.push_back(c);
    OutputDesc desc;
    desc.name = r.name;
    desc.is_connection = true;
    desc.partner_names = partners;
    int out_idx = static_cast<int>(result.outputs.size());
    result.outputs.push_back(std::move(desc));

    std::set<std::vector<TupleId>> seen;
    for (const CandidateConnection& conn : connections[r.name]) {
      // A connection exists in the CO iff all its partners do.
      bool all_reachable = true;
      std::vector<TupleId> partner_tids;
      for (size_t pi = 0; pi < partners.size(); ++pi) {
        Candidates& cand = candidates[partners[pi]];
        if (!cand.reachable[conn.partners[pi]]) {
          all_reachable = false;
          break;
        }
        Tuple projected =
            Project(cand.rows[conn.partners[pi]], take_cols[partners[pi]]);
        auto it = tids[partners[pi]].ids.find(projected);
        if (it == tids[partners[pi]].ids.end()) {
          all_reachable = false;  // partner not taken/emitted
          break;
        }
        partner_tids.push_back(it->second);
      }
      if (!all_reachable) continue;
      if (!seen.insert(partner_tids).second) continue;
      if (ctx != nullptr) XNFDB_RETURN_IF_ERROR(ctx->ChargeOutputRows(1));
      StreamItem item;
      item.kind = StreamItem::Kind::kConnection;
      item.output = out_idx;
      item.tids = std::move(partner_tids);
      ++result.stats.rows_output;
      result.stream.push_back(std::move(item));
    }
  }

  if (options.metrics != nullptr) result.stats.PublishTo(options.metrics);
  return result;
}

}  // namespace xnfdb
