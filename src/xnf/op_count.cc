#include "xnf/op_count.h"

#include <set>
#include <sstream>
#include <vector>

namespace xnfdb {

std::string OpCounts::ToString() const {
  std::ostringstream os;
  os << "selections=" << selections << " joins=" << joins
     << " unions=" << unions << " total=" << Total();
  return os.str();
}

std::set<int> ReachableBoxes(const qgm::QueryGraph& graph, int from_box) {
  std::set<int> live;
  std::vector<int> work{from_box};
  while (!work.empty()) {
    int id = work.back();
    work.pop_back();
    if (id < 0 || !live.insert(id).second) continue;
    const qgm::Box* b = graph.box(id);
    for (const qgm::Quantifier& q : b->quants) work.push_back(q.box_id);
    for (int in : b->union_inputs) work.push_back(in);
    for (const qgm::TopOutput& o : b->outputs) work.push_back(o.box_id);
    for (const qgm::XnfComponent& c : b->components) work.push_back(c.box_id);
  }
  return live;
}

OpCounts CountBoxOps(const qgm::QueryGraph& graph, int box_id) {
  using qgm::Box;
  using qgm::BoxKind;
  using qgm::QuantKind;

  OpCounts counts;
  if (graph.IsDead(box_id)) return counts;
  const Box* b = graph.box(box_id);
  if (b->kind == BoxKind::kUnion) {
    ++counts.unions;
    ++counts.boxes;
    return counts;
  }
  if (b->kind != BoxKind::kSelect) return counts;
  ++counts.boxes;
  int fquants = 0;
  for (const qgm::Quantifier& q : b->quants) {
    if (q.kind == QuantKind::kForeach) ++fquants;
  }
  if (fquants > 1) counts.joins += fquants - 1;
  // A selection is predicate work of the box's own: a local predicate
  // (referencing at most one quantifier) or a reachability/existential
  // group. Pure join predicates are accounted for by the join count.
  bool has_local = !b->exists_groups.empty();
  for (const qgm::ExprPtr& p : b->preds) {
    std::vector<int> used;
    p->CollectQuants(&used);
    if (used.size() <= 1) has_local = true;
  }
  if (has_local) ++counts.selections;
  return counts;
}

OpCounts CountOps(const qgm::QueryGraph& graph) {
  std::set<int> live;
  if (graph.top_box_id() >= 0) {
    live = ReachableBoxes(graph, graph.top_box_id());
  } else {
    for (size_t i = 0; i < graph.box_count(); ++i) {
      live.insert(static_cast<int>(i));
    }
  }
  OpCounts counts;
  for (int id : live) {
    OpCounts c = CountBoxOps(graph, id);
    counts.selections += c.selections;
    counts.joins += c.joins;
    counts.unions += c.unions;
    counts.boxes += c.boxes;
  }
  return counts;
}

}  // namespace xnfdb
