// Fixpoint evaluation of XNF queries (paper Sect. 2: "An XNF query may also
// specify a recursive CO being identified by a cycle in the query's schema
// graph. This cycle basically defines a 'derivation rule' that iterates
// along the cycle's relationships to collect the tuples until a fixed point
// is reached").
//
// The evaluator materializes each component's candidate rows and each
// relationship's candidate connections with the ordinary relational engine,
// then computes the least fixpoint of the reachability rule:
//
//   reachable(root tuples);
//   reachable(child)  <-  connection(parent, child) and reachable(parent).
//
// For acyclic queries the result is identical to the XNF semantic rewrite
// path, which the test suite exploits for differential testing.

#ifndef XNFDB_XNF_FIXPOINT_H_
#define XNFDB_XNF_FIXPOINT_H_

#include "common/status.h"
#include "exec/executor.h"
#include "qgm/qgm.h"
#include "storage/catalog.h"

namespace xnfdb {

// Evaluates a graph still containing its XNF operator box (i.e. before the
// XNF semantic rewrite). Works for both cyclic and acyclic schema graphs.
Result<QueryResult> ExecuteXnfFixpoint(const Catalog& catalog,
                                       const qgm::QueryGraph& graph,
                                       const ExecOptions& options = {});

}  // namespace xnfdb

#endif  // XNFDB_XNF_FIXPOINT_H_
