#include "xnf/compiler.h"

#include <chrono>

#include "obs/phase.h"
#include "parser/fingerprint.h"
#include "parser/parser.h"
#include "semantics/builder.h"

namespace xnfdb {

namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Result<CompiledQuery> CompileSelect(const Catalog& catalog,
                                    const ast::SelectStmt& select,
                                    const CompileOptions& options) {
  CompiledQuery out;
  {
    Fingerprint fp = FingerprintSelect(select);
    out.normalized_text = std::move(fp.text);
    out.digest = fp.digest;
  }
  {
    obs::PhaseScope phase(options.tracer, options.metrics, "semantics");
    XNFDB_ASSIGN_OR_RETURN(out.graph, BuildSelect(catalog, select));
  }
  if (options.run_nf_rewrite) {
    obs::PhaseScope phase(options.tracer, options.metrics, "nf_rewrite");
    RuleEngine engine(MakeNfRules(options.nf));
    RuleEngineHooks hooks{options.tracer, options.metrics};
    XNFDB_ASSIGN_OR_RETURN(out.rewrite_stats,
                           engine.Run(out.graph.get(), 32, hooks));
  }
  return out;
}

Result<CompiledQuery> CompileXnf(const Catalog& catalog,
                                 const ast::XnfQuery& query,
                                 const CompileOptions& options) {
  CompiledQuery out;
  {
    Fingerprint fp = FingerprintXnf(query);
    out.normalized_text = std::move(fp.text);
    out.digest = fp.digest;
  }
  {
    obs::PhaseScope phase(options.tracer, options.metrics, "semantics");
    XNFDB_ASSIGN_OR_RETURN(out.graph, BuildXnf(catalog, query));
  }
  if (XnfHasCycle(*out.graph)) {
    out.needs_fixpoint = true;
    return out;
  }
  // The XNF semantic rewrite runs as one monolithic phase (same rule
  // *representation*, single engine pass); report it into the trace as a
  // pseudo-rule event so EXPLAIN REWRITE shows the whole pipeline.
  obs::RewriteEvent xnf_event;
  {
    obs::PhaseScope phase(options.tracer, options.metrics, "xnf_rewrite");
    xnf_event.rule = "XnfSemanticRewrite";
    xnf_event.pass = 0;
    xnf_event.fired = true;
    xnf_event.boxes_before = static_cast<int>(LiveBoxCount(*out.graph));
    const int64_t t0 = NowUs();
    XNFDB_RETURN_IF_ERROR(XnfSemanticRewrite(out.graph.get(), options.xnf));
    xnf_event.wall_us = NowUs() - t0;
    xnf_event.boxes_after = static_cast<int>(LiveBoxCount(*out.graph));
  }
  if (options.metrics != nullptr) {
    options.metrics->GetCounter("rewrite.rule.XnfSemanticRewrite.fired")
        ->Increment();
    options.metrics->GetCounter("rewrite.rule.XnfSemanticRewrite.us")
        ->Increment(xnf_event.wall_us);
  }
  if (options.run_nf_rewrite) {
    obs::PhaseScope phase(options.tracer, options.metrics, "nf_rewrite");
    RuleEngine engine(MakeNfRules(options.nf));
    RuleEngineHooks hooks{options.tracer, options.metrics};
    XNFDB_ASSIGN_OR_RETURN(out.rewrite_stats,
                           engine.Run(out.graph.get(), 32, hooks));
  }
  // engine.Run replaced rewrite_stats wholesale; prepend the semantic
  // rewrite so trace order matches execution order.
  out.rewrite_stats.firings.insert(
      out.rewrite_stats.firings.begin(),
      RuleFiring{xnf_event.rule, 1, 0, xnf_event.wall_us});
  out.rewrite_stats.total_us += xnf_event.wall_us;
  out.rewrite_stats.trace.events.insert(
      out.rewrite_stats.trace.events.begin(), std::move(xnf_event));
  return out;
}

Result<CompiledQuery> CompileQueryString(const Catalog& catalog,
                                         const std::string& text,
                                         const CompileOptions& options) {
  // A bare identifier names a stored view.
  std::string trimmed;
  for (char c : text) {
    if (!isspace(static_cast<unsigned char>(c))) trimmed += c;
  }
  bool is_ident = !trimmed.empty();
  for (char c : trimmed) {
    if (!isalnum(static_cast<unsigned char>(c)) && c != '_') is_ident = false;
  }
  if (is_ident && catalog.HasView(trimmed)) {
    XNFDB_ASSIGN_OR_RETURN(const ViewDef* view, catalog.GetView(trimmed));
    if (view->is_xnf) {
      std::unique_ptr<ast::XnfQuery> q;
      {
        obs::PhaseScope phase(options.tracer, options.metrics, "parse");
        XNFDB_ASSIGN_OR_RETURN(q, ParseXnfQuery(view->definition));
      }
      return CompileXnf(catalog, *q, options);
    }
    std::unique_ptr<ast::SelectStmt> s;
    {
      obs::PhaseScope phase(options.tracer, options.metrics, "parse");
      XNFDB_ASSIGN_OR_RETURN(s, ParseSelectQuery(view->definition));
    }
    return CompileSelect(catalog, *s, options);
  }

  ast::StatementPtr stmt;
  {
    obs::PhaseScope phase(options.tracer, options.metrics, "parse");
    XNFDB_ASSIGN_OR_RETURN(stmt, ParseStatement(text));
  }
  switch (stmt->kind) {
    case ast::Statement::Kind::kSelect:
      return CompileSelect(
          catalog, *static_cast<ast::SelectStatement*>(stmt.get())->select,
          options);
    case ast::Statement::Kind::kXnfQuery:
      return CompileXnf(catalog,
                        *static_cast<ast::XnfStatement*>(stmt.get())->query,
                        options);
    default:
      return Status::InvalidArgument(
          "expected a SELECT or OUT OF query, or a view name");
  }
}

Result<std::unique_ptr<ast::XnfQuery>> LoadXnfView(const Catalog& catalog,
                                                   const std::string& name) {
  XNFDB_ASSIGN_OR_RETURN(const ViewDef* view, catalog.GetView(name));
  if (!view->is_xnf) {
    return Status::InvalidArgument("view " + view->name +
                                   " is not an XNF view");
  }
  return ParseXnfQuery(view->definition);
}

}  // namespace xnfdb
