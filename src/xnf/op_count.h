// QGM operation counting for the Table 1 reproduction.
//
// Methodology (documented in EXPERIMENTS.md): every live SELECT box that is
// reachable from the Top box contributes
//   * one JOIN per F-quantifier beyond the first, and
//   * one SELECTION if it applies any predicate work of its own (local
//     predicates or existential reachability groups).
// UNION boxes contribute one UNION each. Base-table, projection-only and
// Top boxes contribute nothing. This matches the paper's informal counting
// where e.g. the final deps_ARC XNF graph costs "6 join operations and 1
// selection".

#ifndef XNFDB_XNF_OP_COUNT_H_
#define XNFDB_XNF_OP_COUNT_H_

#include <set>
#include <string>

#include "qgm/qgm.h"

namespace xnfdb {

struct OpCounts {
  int selections = 0;
  int joins = 0;
  int unions = 0;
  int boxes = 0;  // live select/union boxes counted

  int Total() const { return selections + joins + unions; }
  std::string ToString() const;
};

// Counts over all live boxes reachable from the Top box (or all live boxes
// if the graph has no Top).
OpCounts CountOps(const qgm::QueryGraph& graph);

// The operation contribution of one box alone.
OpCounts CountBoxOps(const qgm::QueryGraph& graph, int box_id);

// All live box ids reachable from `from_box` (inclusive) through
// quantifiers, union inputs, outputs and XNF components.
std::set<int> ReachableBoxes(const qgm::QueryGraph& graph, int from_box);

}  // namespace xnfdb

#endif  // XNFDB_XNF_OP_COUNT_H_
