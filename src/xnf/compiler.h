// The XNF/SQL compiler driver: parse -> semantic analysis -> XNF semantic
// rewrite -> NF rewrite -> (plan optimization happens lazily at execution).
// This is the compile-time path of Fig. 2/Fig. 7.

#ifndef XNFDB_XNF_COMPILER_H_
#define XNFDB_XNF_COMPILER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parser/ast.h"
#include "qgm/qgm.h"
#include "rewrite/nf_rules.h"
#include "rewrite/rule.h"
#include "rewrite/xnf_rewrite.h"
#include "storage/catalog.h"

namespace xnfdb {

struct CompileOptions {
  XnfRewriteOptions xnf;
  NfRewriteOptions nf;
  bool run_nf_rewrite = true;  // false: stop after XNF semantic rewrite
  // Observability sinks; both optional. When set, the compiler records
  // parse / semantics / xnf_rewrite / nf_rewrite spans and the matching
  // `phase.<name>.us` latency histograms.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

struct CompiledQuery {
  std::unique_ptr<qgm::QueryGraph> graph;
  RewriteStats rewrite_stats;
  // True when the query is a recursive CO that the box rewrite cannot
  // lower; it must be evaluated with the fixpoint evaluator instead.
  bool needs_fixpoint = false;
  // Statement fingerprint (parser/fingerprint.h): the AST's shape with
  // literals normalized to `?`, and its 64-bit digest. Feeds the
  // per-statement statistics behind sys$statements and the slow-query log.
  std::string normalized_text;
  uint64_t digest = 0;
};

// Compiles a plain SQL SELECT.
Result<CompiledQuery> CompileSelect(const Catalog& catalog,
                                    const ast::SelectStmt& select,
                                    const CompileOptions& options = {});

// Compiles an XNF query. For recursive COs the graph is left in XNF form
// with `needs_fixpoint` set.
Result<CompiledQuery> CompileXnf(const Catalog& catalog,
                                 const ast::XnfQuery& query,
                                 const CompileOptions& options = {});

// Parses + compiles a query string (SELECT or OUT OF form, or the name of a
// stored view).
Result<CompiledQuery> CompileQueryString(const Catalog& catalog,
                                         const std::string& text,
                                         const CompileOptions& options = {});

// Loads and parses a stored XNF view definition.
Result<std::unique_ptr<ast::XnfQuery>> LoadXnfView(const Catalog& catalog,
                                                   const std::string& name);

}  // namespace xnfdb

#endif  // XNFDB_XNF_COMPILER_H_
